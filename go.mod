module hetpipe

go 1.24
