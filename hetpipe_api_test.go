package hetpipe

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// allSentinels is the package's complete exported Err* surface, in
// declaration order. TestNewSentinelErrors checks the table below against it,
// so adding a sentinel without a reachability case is a test failure.
var allSentinels = map[string]error{
	"ErrUnknownModel":    ErrUnknownModel,
	"ErrUnknownCluster":  ErrUnknownCluster,
	"ErrUnknownPolicy":   ErrUnknownPolicy,
	"ErrUnknownBackend":  ErrUnknownBackend,
	"ErrUnknownTask":     ErrUnknownTask,
	"ErrNoAllocation":    ErrNoAllocation,
	"ErrUnknownSchedule": ErrUnknownSchedule,
	"ErrBadFaultPlan":    ErrBadFaultPlan,
	"ErrBadInterleave":   ErrBadInterleave,
	"ErrBadTraffic":      ErrBadTraffic,
	"ErrNoTraffic":       ErrNoTraffic,
}

func TestNewSentinelErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want error
	}{
		{"unknown model", []Option{WithModel("nope"), WithPolicy("ED")}, ErrUnknownModel},
		{"empty model", []Option{WithPolicy("ED")}, ErrUnknownModel},
		{"unknown cluster", []Option{WithModel("vgg19"), WithCluster("dgx"), WithPolicy("ED")}, ErrUnknownCluster},
		{"unknown policy", []Option{WithModel("vgg19"), WithPolicy("XX")}, ErrUnknownPolicy},
		{"unknown task", []Option{WithModel("vgg19"), WithPolicy("ED"), WithTrainTask("gpt")}, ErrUnknownTask},
		{"no allocation", []Option{WithModel("vgg19")}, ErrNoAllocation},
		{"unknown schedule", []Option{WithModel("vgg19"), WithPolicy("ED"), WithSchedule("nope")}, ErrUnknownSchedule},
		{"negative interleave", []Option{WithModel("vgg19"), WithPolicy("ED"), WithInterleave(-1)}, ErrBadInterleave},
		{"interleave on non-interleaved schedule", []Option{WithModel("vgg19"), WithPolicy("ED"), WithSchedule("gpipe"), WithInterleave(2)}, ErrBadInterleave},
		{"bad fault plan", []Option{WithModel("vgg19"), WithPolicy("ED"), WithFaults("not-a-plan")}, ErrBadFaultPlan},
		{"bad traffic kind", []Option{WithModel("vgg19"), WithPolicy("ED"), WithTraffic("warp:r10:n5")}, ErrBadTraffic},
		{"bad traffic rate", []Option{WithModel("vgg19"), WithPolicy("ED"), WithTraffic("poisson:r0:n5")}, ErrBadTraffic},
	}
	covered := map[error]bool{}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.opts...); !errors.Is(err, c.want) {
				t.Errorf("New() error = %v, want errors.Is %v", err, c.want)
			}
		})
		covered[c.want] = true
	}
	// ErrUnknownBackend is the one sentinel outside New's option surface:
	// the backend is chosen by Config.Backend on the Run path.
	if _, err := Run(Config{Model: "vgg19", Policy: "ED", Backend: "warp"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("Run(bad backend) error = %v, want errors.Is ErrUnknownBackend", err)
	}
	covered[ErrUnknownBackend] = true
	// ErrNoTraffic is reported at Serve time: the deployment resolved fine,
	// it just has no traffic to serve.
	dep, err := New(WithModel("vgg19"), WithPolicy("ED"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.Serve(context.Background()); !errors.Is(err, ErrNoTraffic) {
		t.Errorf("Serve() without traffic error = %v, want errors.Is ErrNoTraffic", err)
	}
	covered[ErrNoTraffic] = true
	for name, sentinel := range allSentinels {
		if !covered[sentinel] {
			t.Errorf("sentinel %s has no reachability case in this test", name)
		}
	}
}

func TestRunSentinelErrors(t *testing.T) {
	if _, err := Run(Config{Model: "vgg19", Policy: "ED", Backend: "warp"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("unknown backend error = %v, want errors.Is ErrUnknownBackend", err)
	}
	if _, err := Run(Config{Model: "nope", Policy: "ED"}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model error = %v, want errors.Is ErrUnknownModel", err)
	}
	if _, err := Horovod("nope", "", 32); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Horovod unknown model error = %v, want errors.Is ErrUnknownModel", err)
	}
	if _, err := Horovod("vgg19", "dgx", 32); !errors.Is(err, ErrUnknownCluster) {
		t.Errorf("Horovod unknown cluster error = %v, want errors.Is ErrUnknownCluster", err)
	}
}

func TestDeploymentInspectionAndReuse(t *testing.T) {
	dep, err := New(WithModel("vgg19"), WithPolicy("ED"), WithLocalPlacement(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.Model(); got != "vgg19" {
		t.Errorf("Model() = %q", got)
	}
	if got := dep.ClusterName(); got != "paper" {
		t.Errorf("ClusterName() = %q, want paper (default)", got)
	}
	if got := dep.Batch(); got != 32 {
		t.Errorf("Batch() = %d, want default 32", got)
	}
	vws := dep.VirtualWorkers()
	if len(vws) != 4 {
		t.Fatalf("VirtualWorkers() = %v, want 4 VWs", vws)
	}
	for _, vw := range vws {
		if vw != "VRGQ" {
			t.Errorf("ED VW = %s, want VRGQ", vw)
		}
	}
	if len(dep.Plans()) != 4 {
		t.Errorf("Plans() = %d entries, want 4", len(dep.Plans()))
	}
	if want := dep.Nm() - 1; dep.SLocal() != want {
		t.Errorf("SLocal() = %d, want Nm-1 = %d", dep.SLocal(), want)
	}
	if want := (dep.D()+1)*dep.Nm() + dep.Nm() - 2; dep.SGlobal() != want {
		t.Errorf("SGlobal() = %d, want %d", dep.SGlobal(), want)
	}

	// The deployment is resolved once and runnable many times; repeated
	// simulations are deterministic and independent.
	a, err := dep.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := dep.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Waiting != b.Waiting || a.Pushes != b.Pushes {
		t.Errorf("repeated Simulate diverged: %+v vs %+v", a, b)
	}
	if a.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestSimulateObserverStream(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventKind]int{}
	dep, err := New(
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithMinibatchesPerVW(16),
		WithObserver(func(e Event) {
			if e.Backend != "sim" {
				t.Errorf("sim event backend = %q", e.Backend)
			}
			mu.Lock()
			counts[e.Kind]++
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 16; counts[EventMinibatch] != want {
		t.Errorf("minibatch events = %d, want %d", counts[EventMinibatch], want)
	}
	if counts[EventPush] != res.Pushes {
		t.Errorf("push events = %d, want Result.Pushes = %d", counts[EventPush], res.Pushes)
	}
	if counts[EventPull] != res.Pulls {
		t.Errorf("pull events = %d, want Result.Pulls = %d", counts[EventPull], res.Pulls)
	}
	if counts[EventClockAdvance] == 0 {
		t.Error("no clock-advance events")
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	dep, err := New(WithModel("vgg19"), WithPolicy("ED"), WithNm(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := dep.Simulate(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Simulate(cancelled) = %v, want context.Canceled", err)
	}
	// The deployment is still usable after an aborted run.
	if _, err := dep.Simulate(context.Background()); err != nil {
		t.Errorf("Simulate after cancellation failed: %v", err)
	}
}

func TestTrainLiveWithObserver(t *testing.T) {
	var mu sync.Mutex
	counts := map[EventKind]int{}
	dep, err := New(
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithMinibatchesPerVW(16),
		WithObserver(func(e Event) {
			if e.Backend != "live" {
				t.Errorf("live event backend = %q", e.Backend)
			}
			mu.Lock()
			counts[e.Kind]++
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := dep.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 16; sum.Minibatches != want {
		t.Errorf("live minibatches = %d, want %d", sum.Minibatches, want)
	}
	if want := 4 * 16 / 2; sum.Pushes != want {
		t.Errorf("live pushes = %d, want %d (one per wave)", sum.Pushes, want)
	}
	if sum.GlobalClock != 8 {
		t.Errorf("global clock = %d, want 8 complete waves", sum.GlobalClock)
	}
	if sum.MaxClockDistance > 2 {
		t.Errorf("live clock distance %d exceeds D+1=2", sum.MaxClockDistance)
	}
	if counts[EventMinibatch] != sum.Minibatches {
		t.Errorf("minibatch events = %d, want %d", counts[EventMinibatch], sum.Minibatches)
	}
	if counts[EventPush] != sum.Pushes {
		t.Errorf("push events = %d, want %d", counts[EventPush], sum.Pushes)
	}
	if counts[EventPull] != sum.Pulls {
		t.Errorf("pull events = %d, want %d", counts[EventPull], sum.Pulls)
	}
}

// waitForGoroutines polls until the goroutine count drops back to within
// slack of the baseline, failing the test if it never does — the
// no-leaked-goroutines assertion for cancelled live runs.
func waitForGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after cancelled run: %d > baseline %d + %d\n%s",
				n, baseline, slack, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTrainCancelReapsEverything(t *testing.T) {
	// A TCP run with a budget far beyond what the cancellation window
	// allows: the run must be cut short mid-flight, return context.Canceled,
	// and leave no worker goroutines, serve loops, or sockets behind.
	dep, err := New(
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithMinibatchesPerVW(500_000),
		WithTCP(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := dep.Train(ctx)
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Train(cancelled) = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Train did not return")
	}
	waitForGoroutines(t, baseline, 2)
}

func TestTrainDeadlineInProcess(t *testing.T) {
	dep, err := New(
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithMinibatchesPerVW(500_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := dep.Train(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Train(deadline) = %v, want context.DeadlineExceeded", err)
	}
	waitForGoroutines(t, baseline, 2)
}

func TestDeploymentGanttUsesConfiguredBatch(t *testing.T) {
	dep, err := New(WithModel("vgg19"), WithSpecs("VVVV"), WithNm(4), WithBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Batch() != 16 {
		t.Fatalf("Batch() = %d, want 16", dep.Batch())
	}
	g, err := dep.Gantt(0, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	if g == "" {
		t.Fatal("empty gantt chart")
	}
	if _, err := dep.Gantt(7, 10, 80); err == nil {
		t.Error("out-of-range VW accepted")
	}
}
