// Schedules: sweep one deployment across all four pipeline schedules and
// show what the schedule choice changes — steady-state throughput, the
// per-stage activation-memory footprint, and the shape of the pipeline
// schedule itself (Gantt charts of the first virtual worker).
//
// The paper fixes one discipline (hetpipe-fifo, Section 4) and names
// communication/computation overlap as future work (Section 9);
// "hetpipe-overlap" is that improvement, "gpipe" and "1f1b" are the
// fill-drain and one-forward-one-backward disciplines from the PipeDream /
// GPipe line of work. 1F1B's smaller activation footprint is visible
// directly: on a memory-constrained worker it admits a larger Nm than FIFO
// (compare the stage-0 memory columns).
package main

import (
	"context"
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	fmt.Println("VGG-19, paper cluster, ED allocation, Nm=2, D=0 — one run per schedule:")
	fmt.Println()
	for _, name := range hetpipe.Schedules() {
		dep, err := hetpipe.New(
			hetpipe.WithModel("vgg19"),
			hetpipe.WithPolicy("ED"),
			hetpipe.WithNm(2),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Simulate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		// The partition plan carries the schedule's memory model: stage 0
		// stashes the most activations, so it shows the spread best.
		stage0 := dep.Plans()[0].Stages[0]
		fmt.Printf("%-16s %7.0f samples/s   stage-0 memory %5.2f GiB\n",
			name, res.Throughput, float64(stage0.MemoryBytes)/float64(1<<30))
	}

	// 1F1B's memory advantage, end to end: a two-GPU RTX 2060 worker of the
	// "mini" cluster cannot hold ResNet-152 at Nm=4 under FIFO (stage 0
	// would stash Nm activations' worth of the round trip), but 1F1B caps
	// the stash at stage depth, so the same worker admits the larger Nm.
	fmt.Println("\nmemory-constrained worker (mini cluster, GG, ResNet-152, Nm=4):")
	for _, name := range []string{"hetpipe-fifo", "1f1b"} {
		_, err := hetpipe.New(
			hetpipe.WithModel("resnet152"),
			hetpipe.WithCluster("mini"),
			hetpipe.WithSpecs("GG"),
			hetpipe.WithNm(4),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			fmt.Printf("%-16s infeasible: %v\n", name, err)
			continue
		}
		fmt.Printf("%-16s deploys fine — the smaller activation footprint admits Nm=4\n", name)
	}

	// The schedule shapes the pipeline itself: render the first virtual
	// worker's schedule under the paper's discipline and under 1F1B.
	for _, name := range []string{"hetpipe-fifo", "1f1b"} {
		dep, err := hetpipe.New(
			hetpipe.WithModel("vgg19"),
			hetpipe.WithSpecs("VRGQ"),
			hetpipe.WithNm(4),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			log.Fatal(err)
		}
		g, err := dep.Gantt(0, 12, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npipeline schedule under %s (VRGQ, Nm=4):\n%s", name, g)
	}
}
