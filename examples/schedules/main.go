// Schedules: sweep one deployment across all six pipeline schedules and
// show what the schedule choice changes — steady-state throughput, the
// per-stage activation-memory footprint, and the shape of the pipeline
// schedule itself (Gantt charts of the first virtual worker).
//
// The paper fixes one discipline (hetpipe-fifo, Section 4) and names
// communication/computation overlap as future work (Section 9);
// "hetpipe-overlap" is that improvement, "gpipe" and "1f1b" are the
// fill-drain and one-forward-one-backward disciplines from the PipeDream /
// GPipe line of work, "2bw" is PipeDream-2BW's double-buffered weight
// stashing, and "interleaved" is Megatron-LM's virtual-stage placement
// (pair with WithInterleave). 1F1B's smaller activation footprint is
// visible directly: on a memory-constrained worker it admits a larger Nm
// than FIFO (compare the stage-0 memory columns); 2BW's shows up against
// GPipe in the per-stage memory table, and the interleaved Gantt shows
// each GPU cycling through its V model chunks.
package main

import (
	"context"
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	fmt.Println("VGG-19, paper cluster, ED allocation, Nm=2, D=0 — one run per schedule:")
	fmt.Println()
	for _, name := range hetpipe.Schedules() {
		dep, err := hetpipe.New(
			hetpipe.WithModel("vgg19"),
			hetpipe.WithPolicy("ED"),
			hetpipe.WithNm(2),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Simulate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		// The partition plan carries the schedule's memory model: stage 0
		// stashes the most activations, so it shows the spread best.
		stage0 := dep.Plans()[0].Stages[0]
		fmt.Printf("%-16s %7.0f samples/s   stage-0 memory %5.2f GiB\n",
			name, res.Throughput, float64(stage0.MemoryBytes)/float64(1<<30))
	}

	// 1F1B's memory advantage, end to end: a two-GPU RTX 2060 worker of the
	// "mini" cluster cannot hold ResNet-152 at Nm=4 under FIFO (stage 0
	// would stash Nm activations' worth of the round trip), but 1F1B caps
	// the stash at stage depth, so the same worker admits the larger Nm.
	fmt.Println("\nmemory-constrained worker (mini cluster, GG, ResNet-152, Nm=4):")
	for _, name := range []string{"hetpipe-fifo", "1f1b"} {
		_, err := hetpipe.New(
			hetpipe.WithModel("resnet152"),
			hetpipe.WithCluster("mini"),
			hetpipe.WithSpecs("GG"),
			hetpipe.WithNm(4),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			fmt.Printf("%-16s infeasible: %v\n", name, err)
			continue
		}
		fmt.Printf("%-16s deploys fine — the smaller activation footprint admits Nm=4\n", name)
	}

	// The schedule shapes the pipeline itself: render the first virtual
	// worker's schedule under the paper's discipline and under 1F1B.
	for _, name := range []string{"hetpipe-fifo", "1f1b"} {
		dep, err := hetpipe.New(
			hetpipe.WithModel("vgg19"),
			hetpipe.WithSpecs("VRGQ"),
			hetpipe.WithNm(4),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			log.Fatal(err)
		}
		g, err := dep.Gantt(0, 12, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npipeline schedule under %s (VRGQ, Nm=4):\n%s", name, g)
	}

	// Interleaved virtual stages: at V=2 each GPU hosts two non-contiguous
	// model chunks (GPU g runs chunks g and g+4), so the Gantt shows every
	// row alternating between its chunks while boundary transfers overlap
	// with compute — Megatron-LM's placement on the paper's ED worker.
	dep, err := hetpipe.New(
		hetpipe.WithModel("resnet152"),
		hetpipe.WithSpecs("VRGQ"),
		hetpipe.WithNm(8),
		hetpipe.WithSchedule("interleaved"),
		hetpipe.WithInterleave(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterleaved V=2 chunk sets (ResNet-152, VRGQ, Nm=8):")
	for s, st := range dep.Plans()[0].Stages {
		fmt.Printf("  GPU %d: layers", s)
		for _, c := range st.Chunks {
			fmt.Printf(" [%d,%d)", c[0], c[1])
		}
		fmt.Println()
	}
	g, err := dep.Gantt(0, 12, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline schedule under interleaved V=2 (VRGQ, Nm=8):\n%s", g)

	// 2BW's memory trade, per stage: GPipe stashes a full fill's worth of
	// activations (Nm per stage); 2BW keeps 1F1B's depth-capped stash and
	// pays two weight versions plus a gradient buffer instead. Once Nm
	// exceeds the stage depth the swap is a strict win at every stage.
	fmt.Println("\nper-stage memory, gpipe vs 2bw (VGG-19, VRGQ, Nm=8):")
	fmt.Println("  stage      gpipe        2bw")
	plans := map[string]*hetpipe.Deployment{}
	for _, name := range []string{"gpipe", "2bw"} {
		d, err := hetpipe.New(
			hetpipe.WithModel("vgg19"),
			hetpipe.WithSpecs("VRGQ"),
			hetpipe.WithNm(8),
			hetpipe.WithSchedule(name),
		)
		if err != nil {
			log.Fatal(err)
		}
		plans[name] = d
	}
	gp, tb := plans["gpipe"].Plans()[0], plans["2bw"].Plans()[0]
	for s := range gp.Stages {
		fmt.Printf("  %5d  %6.2f GiB  %6.2f GiB\n", s,
			float64(gp.Stages[s].MemoryBytes)/float64(1<<30),
			float64(tb.Stages[s].MemoryBytes)/float64(1<<30))
	}
}
