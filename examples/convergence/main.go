// Convergence study (the Figure 6 scenario): real numeric SGD under the WSP
// synchronization schedule, co-simulated with cluster timing. Compares
// Horovod against HetPipe at several clock-distance bounds D and prints the
// loss trajectory of each run, through the public experiment catalog
// (hetpipe.RunExperiment).
package main

import (
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	out, err := hetpipe.RunExperiment("figure6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Println()
	out, err = hetpipe.RunExperiment("syncoverhead")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
