// Partitioning study: how the Section 7 partitioner splits ResNet-152 and
// VGG-19 across heterogeneous virtual workers, and how the memory pressure
// of deeper pipelines (larger Nm) reshapes the split — the effect that bounds
// Maxm on whimpy GPUs. Each (model, spec, Nm) point is resolved as a
// single-VW deployment with hetpipe.New and its plan read back with Plans.
package main

import (
	"fmt"

	"hetpipe"
)

func main() {
	for _, model := range []string{"resnet152", "vgg19"} {
		for _, spec := range []string{"VVVV", "VRGQ", "GGGG"} {
			for _, nm := range []int{1, 4, 7} {
				dep, err := hetpipe.New(
					hetpipe.WithModel(model),
					hetpipe.WithSpecs(spec),
					hetpipe.WithNm(nm),
				)
				if err != nil {
					fmt.Printf("%s on %s, Nm=%d: %v\n\n", model, spec, nm, err)
					continue
				}
				plan := dep.Plans()[0]
				fmt.Printf("%s on %s, Nm=%d  (bottleneck %.1f ms => at most %.0f samples/s)\n",
					model, spec, nm, plan.Bottleneck*1e3, float64(dep.Batch())/plan.Bottleneck)
				for i, st := range plan.Stages {
					fmt.Printf("  stage %d %-10s layers [%3d,%3d)  exec %6.1f ms  mem %5.2f/%5.2f GiB\n",
						i+1, st.GPU, st.Layers[0], st.Layers[1], st.ExecTime*1e3,
						float64(st.MemoryBytes)/float64(1<<30), float64(st.MemoryCap)/float64(1<<30))
				}
				fmt.Println()
			}
		}
	}
}
