// Quickstart: train VGG-19 on the paper's 16-GPU heterogeneous cluster with
// the ED allocation policy and local parameter placement (the paper's best
// configuration), and compare against the Horovod baseline.
package main

import (
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	res, err := hetpipe.Run(hetpipe.Config{
		Model:          "vgg19",
		Policy:         "ED",
		LocalPlacement: true,
		D:              0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HetPipe ED-local VGG-19: %.0f samples/s aggregate (Nm=%d)\n", res.Throughput, res.Nm)
	for i, tp := range res.PerVW {
		fmt.Printf("  virtual worker %d [%s]: %.0f samples/s\n", i+1, res.VirtualWorkers[i], tp)
	}

	base, err := hetpipe.Horovod("vgg19", "", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Horovod baseline: %.0f samples/s over %d workers\n", base.Throughput, base.Workers)
	fmt.Printf("speedup: %.2fx\n", res.Throughput/base.Throughput)
}
