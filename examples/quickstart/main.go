// Quickstart: resolve a deployment of VGG-19 on the paper's 16-GPU
// heterogeneous cluster with the ED allocation policy and local parameter
// placement (the paper's best configuration), inspect it, simulate it, and
// compare against the Horovod baseline.
package main

import (
	"context"
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	// New resolves everything once: model, cluster, allocation, per-VW
	// partition plans, and the throughput-maximizing Nm. The deployment can
	// then be inspected and run any number of times.
	dep, err := hetpipe.New(
		hetpipe.WithModel("vgg19"),
		hetpipe.WithPolicy("ED"),
		hetpipe.WithLocalPlacement(true),
		hetpipe.WithD(0),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %s on %s, %d virtual workers, Nm=%d, slocal=%d, sglobal=%d\n",
		dep.Model(), dep.ClusterName(), len(dep.VirtualWorkers()), dep.Nm(), dep.SLocal(), dep.SGlobal())

	res, err := dep.Simulate(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HetPipe ED-local VGG-19: %.0f samples/s aggregate\n", res.Throughput)
	for i, tp := range res.PerVW {
		fmt.Printf("  virtual worker %d [%s]: %.0f samples/s\n", i+1, res.VirtualWorkers[i], tp)
	}

	base, err := hetpipe.Horovod("vgg19", "", 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Horovod baseline: %.0f samples/s over %d workers\n", base.Throughput, base.Workers)
	fmt.Printf("speedup: %.2fx\n", res.Throughput/base.Throughput)
}
