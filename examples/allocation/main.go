// Allocation study (the Figure 4 scenario): how the choice of resource
// allocation policy — NP, ED, ED with local parameter placement, HD —
// changes aggregate throughput relative to Horovod, for both evaluation
// models, at D=0. Each configuration is resolved once with hetpipe.New and
// then simulated.
package main

import (
	"context"
	"fmt"
	"log"

	"hetpipe"
)

func main() {
	ctx := context.Background()
	for _, model := range []string{"resnet152", "vgg19"} {
		fmt.Printf("%s:\n", model)
		base, err := hetpipe.Horovod(model, "", 32)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if len(base.Excluded) > 0 {
			note = fmt.Sprintf("  (%d GPUs excluded: model too large)", len(base.Excluded))
		}
		fmt.Printf("  %-9s %7.0f samples/s%s\n", "Horovod", base.Throughput, note)

		for _, cfg := range []struct {
			label  string
			policy string
			local  bool
		}{
			{"NP", "NP", false},
			{"ED", "ED", false},
			{"ED-local", "ED", true},
			{"HD", "HD", false},
		} {
			dep, err := hetpipe.New(
				hetpipe.WithModel(model),
				hetpipe.WithPolicy(cfg.policy),
				hetpipe.WithLocalPlacement(cfg.local),
			)
			if err != nil {
				fmt.Printf("  %-9s failed: %v\n", cfg.label, err)
				continue
			}
			res, err := dep.Simulate(ctx)
			if err != nil {
				fmt.Printf("  %-9s failed: %v\n", cfg.label, err)
				continue
			}
			fmt.Printf("  %-9s %7.0f samples/s  (Nm=%d, waiting %.1fs, idle %.1fs)\n",
				cfg.label, res.Throughput, res.Nm, res.Waiting, res.Idle)
		}
		fmt.Println()
	}
}
