// Fault-tolerance walkthrough: inject a straggler and watch the observer
// report it, crash a live worker and watch checkpoint recovery replay it, and
// finally kill a whole training run after a persisted shard checkpoint and
// resume it — with final metrics identical to a never-interrupted run.
//
// Everything here is deterministic: fault plans are seedable data
// (hetpipe.WithFaults), WSP numerics are timing-independent, and recovery
// replays clock-versioned parameter-server snapshots, so faults degrade
// throughput and exercise recovery without ever changing the learned weights.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hetpipe"
)

func main() {
	ctx := context.Background()

	// --- 1. A straggler in the simulator -------------------------------
	// Virtual worker 1 computes 3x slower. Under WSP with D=1, its peers may
	// run at most D+1 waves ahead before the clock-distance bound couples
	// them to the straggler's pace.
	fmt.Println("== straggler simulation (slow:w1:x3, D=1) ==")
	clean := simulate("")
	slowed := simulate("slow:w1:x3")
	fmt.Printf("fault-free: %6.0f samples/s\n", clean.Throughput)
	fmt.Printf("straggler:  %6.0f samples/s  (%.1f%% degradation, %d injection)\n",
		slowed.Throughput, (clean.Throughput-slowed.Throughput)/clean.Throughput*100,
		slowed.FaultInjections)

	// --- 2. Crash and checkpoint recovery in the live runtime ----------
	// Worker 1 crashes when about to start minibatch 9. With checkpoints
	// every 2 waves the runtime restores its last worker-state checkpoint
	// and replays forward; pushes the servers already hold are suppressed,
	// so the final weights match a crash-free run bit for bit.
	fmt.Println("\n== live crash + recovery (crash:w1:mb9, checkpoints every 2 waves) ==")
	crashDep, err := hetpipe.New(
		hetpipe.WithModel("vgg19"), hetpipe.WithPolicy("ED"),
		hetpipe.WithNm(2), hetpipe.WithD(1), hetpipe.WithMinibatchesPerVW(16),
		hetpipe.WithSeed(11),
		hetpipe.WithFaults("crash:w1:mb9:down0.01"),
		hetpipe.WithCheckpoint(2),
		hetpipe.WithObserver(func(e hetpipe.Event) {
			switch e.Kind {
			case hetpipe.EventFaultInject:
				fmt.Printf("  t=%6.3fs  FAULT injected: %s\n", e.Time, e.Fault)
			case hetpipe.EventRecover:
				fmt.Printf("  t=%6.3fs  VW%d recovered: checkpoint clock %d, replaying from minibatch %d\n",
					e.Time, e.VW+1, e.Clock, e.Minibatch)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	crashed, err := crashDep.Train(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  crashes=%d recoveries=%d replayed=%d checkpoints=%d\n",
		crashed.Crashes, crashed.Recoveries, crashed.ReplayedMinibatches, crashed.Checkpoints)

	control, err := train(ctx, 16, hetpipe.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  final loss with crash %.6f, without %.6f -> identical: %v\n",
		crashed.FinalLoss, control.FinalLoss, crashed.FinalLoss == control.FinalLoss)

	// --- 3. Checkpoint, kill, resume -----------------------------------
	// Leg 1 trains half the budget while persisting atomic, clock-cut shard
	// checkpoints, then the "process dies". Leg 2 resumes from the file with
	// the full budget; its final state matches an uninterrupted full run.
	fmt.Println("\n== checkpoint, kill, resume ==")
	dir, err := os.MkdirTemp("", "hetpipe-faults")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "shards.ckpt")

	leg1, err := train(ctx, 8, hetpipe.WithSeed(11),
		hetpipe.WithCheckpoint(2), hetpipe.WithCheckpointPath(ckpt))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  leg 1: trained to global clock %d, checkpoint persisted -> killed\n", leg1.GlobalClock)

	resumed, err := train(ctx, 16, hetpipe.WithSeed(11), hetpipe.WithResumeFrom(ckpt))
	if err != nil {
		log.Fatal(err)
	}
	full, err := train(ctx, 16, hetpipe.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  leg 2: resumed at clock %d, finished at clock %d\n", resumed.ResumedClock, resumed.GlobalClock)
	fmt.Printf("  resumed loss %.6f, uninterrupted loss %.6f -> identical: %v\n",
		resumed.FinalLoss, full.FinalLoss, resumed.FinalLoss == full.FinalLoss)
}

// simulate runs the ED/vgg19 deployment under a fault spec.
func simulate(faults string) *hetpipe.Result {
	dep, err := hetpipe.New(
		hetpipe.WithModel("vgg19"), hetpipe.WithPolicy("ED"),
		hetpipe.WithNm(2), hetpipe.WithD(1), hetpipe.WithMinibatchesPerVW(24),
		hetpipe.WithFaults(faults),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dep.Simulate(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// train runs the live backend for mbs minibatches per virtual worker.
func train(ctx context.Context, mbs int, extra ...hetpipe.Option) (*hetpipe.LiveSummary, error) {
	opts := append([]hetpipe.Option{
		hetpipe.WithModel("vgg19"), hetpipe.WithPolicy("ED"),
		hetpipe.WithNm(2), hetpipe.WithD(1), hetpipe.WithMinibatchesPerVW(mbs),
	}, extra...)
	dep, err := hetpipe.New(opts...)
	if err != nil {
		return nil, err
	}
	return dep.Train(ctx)
}
