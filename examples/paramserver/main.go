// Parameter-server demo: real WSP traffic over the TCP sharded
// parameter-server substrate, driven through the public API. A VGG-19 ED
// deployment is resolved once with hetpipe.New, then trained live
// (Deployment.Train): one goroutine per virtual worker pushes one aggregated
// update per wave and pulls lazily under the clock-distance bound D, over
// real loopback sockets with gob encoding. An observer streams every push,
// pull, and observed clock advance; a context deadline shows that a live
// TCP run cancels cleanly, with all goroutines and sockets reaped.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"hetpipe"
)

func main() {
	observer := func(e hetpipe.Event) {
		switch e.Kind {
		case hetpipe.EventPush:
			fmt.Printf("  t=%7.3fs  worker %d pushed wave %2d\n", e.Time, e.VW, e.Wave)
		case hetpipe.EventPull:
			fmt.Printf("  t=%7.3fs  worker %d pulled at global clock %2d\n", e.Time, e.VW, e.Clock)
		case hetpipe.EventClockAdvance:
			fmt.Printf("  t=%7.3fs  global clock -> %2d\n", e.Time, e.Clock)
		}
	}
	dep, err := hetpipe.New(
		hetpipe.WithModel("vgg19"),
		hetpipe.WithPolicy("ED"),
		hetpipe.WithNm(4), // wave size 4, slocal = 3
		hetpipe.WithD(1),
		hetpipe.WithMinibatchesPerVW(48), // 12 waves per worker
		hetpipe.WithTCP(true),
		hetpipe.WithObserver(observer),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live TCP WSP training: %d workers (one per virtual worker), D=%d, wave size %d\n",
		len(dep.VirtualWorkers()), dep.D(), dep.Nm())

	sum, err := dep.Train(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: global clock %d, %d pushes, %d pulls, max clock distance %d (bound %d), accuracy %.3f\n",
		sum.GlobalClock, sum.Pushes, sum.Pulls, sum.MaxClockDistance, dep.D()+1, sum.FinalAccuracy)

	// The same deployment, run again under a deadline that cannot be met:
	// the run aborts mid-flight with context.DeadlineExceeded and every
	// worker goroutine, blocked pull, and TCP socket is reaped.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := dep.Train(ctx); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("deadlined rerun: cancelled cleanly with context.DeadlineExceeded")
	} else {
		fmt.Printf("deadlined rerun: unexpected result: %v\n", err)
	}
}
