// Parameter-server demo: the TCP-based sharded parameter server substrate
// carrying real WSP traffic. Four simulated virtual workers (goroutines)
// push one aggregated update per wave and pull lazily under the
// clock-distance bound D, over real sockets with gob encoding.
//
// This example exercises internal machinery directly (it lives in the same
// module), showing the substrate the simulations model.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"hetpipe/internal/ps"
	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

const (
	workers  = 4
	waves    = 12
	waveSize = 4 // slocal + 1
	dim      = 1 << 16
	d        = 1 // clock distance bound
)

func main() {
	server, err := ps.NewServer(workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.Register("weights", make([]float64, dim)); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go ps.Serve(l, server)
	fmt.Printf("parameter server listening on %s (%d-float shard)\n", l.Addr(), dim)

	params := wsp.Params{SLocal: waveSize - 1, D: d, Workers: workers}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := ps.Dial(l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()
			lastPulled := 0
			for wave := 0; wave < waves; wave++ {
				// One aggregated update per wave (all-ones scaled by the
				// wave size, standing in for -lr * sum of gradients).
				update := tensor.NewVector(dim)
				for i := range update {
					update[i] = 1.0 / dim * float64(waveSize)
				}
				clock, err := client.Push(w, map[string]tensor.Vector{"weights": update})
				if err != nil {
					log.Fatal(err)
				}
				// Lazy pull: only when the next wave's gate demands it.
				req := params.RequiredGlobalClock((wave + 2) * waveSize)
				if req > lastPulled {
					_, got, err := client.Pull([]string{"weights"}, req)
					if err != nil {
						log.Fatal(err)
					}
					lastPulled = got
					fmt.Printf("worker %d: wave %2d pushed (clock %2d), pulled at global clock %2d\n",
						w, wave, clock, got)
				}
			}
		}()
	}
	wg.Wait()

	weights, clock, err := server.Pull([]string{"weights"}, waves)
	if err != nil {
		log.Fatal(err)
	}
	pushes, pulls := server.Stats()
	fmt.Printf("final: global clock %d, weights[0] = %.4f (expect %.4f), %d pushes, %d pulls\n",
		clock, weights["weights"][0], float64(workers*waves*waveSize)/dim, pushes, pulls)
}
