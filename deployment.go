package hetpipe

import (
	"context"
	"fmt"
	"io"

	"hetpipe/internal/cluster"
	"hetpipe/internal/core"
	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/pipeline"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/serve"
	"hetpipe/internal/trace"
	"hetpipe/internal/train"
)

// Deployment is a fully-resolved HetPipe configuration: the model, cluster,
// allocation, per-virtual-worker partition plans, and the chosen Nm, bound
// together once by New. It is the plan/execute split of the paper's Section 5
// deployment flow made explicit: resolution happens exactly once, the result
// is inspectable (Plans, SGlobal, VirtualWorkers), and the deployment can
// then be run any number of times — Simulate drives the discrete-event
// co-simulation, Train drives the live sharded parameter-server runtime —
// each run independently cancellable through its context.
//
// A Deployment is immutable after New and safe for concurrent use: multiple
// Simulate and Train calls may run at the same time.
type Deployment struct {
	set settings
	sys *core.System
	cl  *hw.Cluster
	// clusterName is the catalog key actually resolved ("paper" when the
	// options left it empty).
	clusterName string
	alloc       *hw.Allocation
	dep         *core.Deployment
	// faults is the parsed WithFaults plan; nil or empty means fault-free.
	faults *fault.Plan
	// traffic is the parsed WithTraffic spec; nil means serving is not
	// configured and Serve reports ErrNoTraffic.
	traffic *serve.Traffic
}

// New resolves a deployment from functional options: the model graph, the
// cluster inventory, the resource allocation (policy or explicit specs), the
// per-virtual-worker partition plans, and the concurrent-minibatch count Nm.
// All validation happens here — unknown names are reported through the
// package's sentinel errors (ErrUnknownModel, ErrUnknownCluster, ...), so
// callers can errors.Is them.
func New(opts ...Option) (*Deployment, error) {
	set := defaultSettings()
	for _, opt := range opts {
		if opt != nil {
			opt(&set)
		}
	}

	m, err := model.ByName(set.model)
	if err != nil {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownModel, set.model, Models())
	}
	cl, clusterName, err := clusterByName(set.cluster)
	if err != nil {
		return nil, err
	}
	schedule, err := sched.ByName(set.schedule)
	if err != nil {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownSchedule, set.schedule, Schedules())
	}
	set.schedule = schedule.Name()
	if set.interleave < 0 {
		return nil, fmt.Errorf("%w: %d (must be >= 0)", ErrBadInterleave, set.interleave)
	}
	if set.interleave > 1 && !schedule.SupportsInterleave() {
		return nil, fmt.Errorf("%w: schedule %q cannot run V=%d (use %q)",
			ErrBadInterleave, schedule.Name(), set.interleave, sched.NameInterleaved)
	}
	switch set.task {
	case "logreg", "mlp":
	default:
		return nil, fmt.Errorf("%w %q (want logreg or mlp)", ErrUnknownTask, set.task)
	}
	if set.warmup < 0 {
		return nil, fmt.Errorf("hetpipe: warmup must be >= 0, got %d", set.warmup)
	}
	if set.ckptEvery < 0 {
		return nil, fmt.Errorf("hetpipe: checkpoint interval must be >= 0, got %d (WithCheckpoint)", set.ckptEvery)
	}
	if set.stepTime < 0 {
		return nil, fmt.Errorf("hetpipe: step time must be >= 0, got %v (WithStepTime)", set.stepTime)
	}
	faults, err := fault.Parse(set.faultSpec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFaultPlan, err)
	}
	var traffic *serve.Traffic
	if set.traffic != "" {
		traffic, err = serve.ParseTraffic(set.traffic)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTraffic, err)
		}
	}
	batch := set.batch
	if batch == 0 {
		batch = 32
		set.batch = batch
	}
	sys, err := core.NewSystemSched(cl, m, profile.Default(), batch, schedule)
	if err != nil {
		return nil, err
	}
	sys.Interleave = set.interleave

	var alloc *hw.Allocation
	switch {
	case len(set.specs) > 0:
		alloc, err = hw.AllocateByTypes(cl, set.specs)
	case set.policy != "":
		p, perr := hw.PolicyByName(set.policy)
		if perr != nil {
			return nil, fmt.Errorf("%w %q (want NP, ED, or HD)", ErrUnknownPolicy, set.policy)
		}
		alloc, err = hw.Allocate(cl, p)
	default:
		return nil, fmt.Errorf("%w: use WithPolicy or WithSpecs", ErrNoAllocation)
	}
	if err != nil {
		return nil, err
	}

	placement := core.PlacementDefault
	if set.local {
		placement = core.PlacementLocal
	}
	dep, err := sys.Deploy(alloc, set.nm, set.d, placement)
	if err != nil {
		return nil, err
	}
	// Fault plans name concrete workers; check them against the resolved
	// virtual-worker count here so a bad index fails at New, not mid-run.
	if _, err := faults.Materialize(len(dep.VWs)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFaultPlan, err)
	}
	return &Deployment{set: set, sys: sys, cl: cl, clusterName: clusterName, alloc: alloc, dep: dep, faults: faults, traffic: traffic}, nil
}

// Model reports the deployed model's zoo key, as given to WithModel.
func (d *Deployment) Model() string { return d.set.model }

// ClusterName reports the cluster-catalog key the deployment resolved
// ("paper" when none was given).
func (d *Deployment) ClusterName() string { return d.clusterName }

// Batch reports the per-minibatch sample count (default 32), used
// consistently by partitioning, simulation, and the gantt renderer.
func (d *Deployment) Batch() int { return d.sys.Batch }

// Nm reports the concurrent-minibatch count per virtual worker, resolved
// from WithNm or chosen to maximize throughput.
func (d *Deployment) Nm() int { return d.dep.Nm }

// Schedule reports the pipeline schedule the deployment runs, resolved from
// WithSchedule ("hetpipe-fifo" when none was given).
func (d *Deployment) Schedule() string { return d.dep.ScheduleName() }

// Interleave reports the interleave degree V the deployment's plans were cut
// for (WithInterleave); 1 means the classic contiguous placement.
func (d *Deployment) Interleave() int {
	if d.set.interleave < 1 {
		return 1
	}
	return d.set.interleave
}

// D reports the WSP clock-distance bound.
func (d *Deployment) D() int { return d.dep.D }

// Faults reports the deployment's fault plan in canonical spec form; ""
// means fault-free.
func (d *Deployment) Faults() string { return d.faults.String() }

// CheckpointEvery reports the checkpoint cadence in waves (0 = disabled).
func (d *Deployment) CheckpointEvery() int { return d.set.ckptEvery }

// SLocal reports the local staleness bound, Nm-1 (Section 4).
func (d *Deployment) SLocal() int { return d.dep.SLocal() }

// SGlobal reports the WSP global staleness bound, (D+1)*Nm + Nm - 2
// (Section 5.2).
func (d *Deployment) SGlobal() int { return d.dep.SGlobal() }

// VirtualWorkers lists each virtual worker's GPU mix as a type string, e.g.
// "VRGQ".
func (d *Deployment) VirtualWorkers() []string {
	out := make([]string, 0, len(d.dep.VWs))
	for _, vp := range d.dep.VWs {
		out = append(out, vp.VW.TypeString())
	}
	return out
}

// Plans returns a read-only view of every virtual worker's partition plan.
func (d *Deployment) Plans() []*PlanView {
	out := make([]*PlanView, 0, len(d.dep.VWs))
	for _, vp := range d.dep.VWs {
		out = append(out, planView(vp.Plan))
	}
	return out
}

// minibatchBudget resolves the per-VW run length.
func (d *Deployment) minibatchBudget() int {
	if d.set.minibatches != 0 {
		return d.set.minibatches
	}
	return d.dep.DefaultMinibatches()
}

// Simulate runs the deployment through the discrete-event co-simulation and
// reports throughput, staleness bounds, and synchronization overhead. The
// run is aborted with ctx.Err() when ctx is cancelled or its deadline
// passes; a configured observer (WithObserver) streams events in virtual
// time while the run is in flight. Simulate may be called many times; runs
// are deterministic and independent.
func (d *Deployment) Simulate(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mr, err := d.dep.SimulateWSPFaults(ctx, d.minibatchBudget(), 4*d.dep.Nm, d.set.obsFunc(), d.faults, d.set.ckptEvery)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Throughput:       mr.Aggregate,
		PerVW:            mr.PerVW,
		Nm:               d.dep.Nm,
		SGlobal:          d.dep.SGlobal(),
		Waiting:          mr.Waiting,
		Idle:             mr.Idle,
		Pushes:           mr.Pushes,
		Pulls:            mr.Pulls,
		MaxClockDistance: mr.MaxClockDistance,
		FaultInjections:  mr.FaultInjections,
	}
	res.VirtualWorkers = d.VirtualWorkers()
	res.Plans = d.Plans()
	return res, nil
}

// newTask instantiates the live backend's training task from the settings.
// Task names are validated in New, so an error here is a task-construction
// failure, not a lookup failure.
func (d *Deployment) newTask() (train.Task, error) {
	switch d.set.task {
	case "mlp":
		return train.DefaultMLPTask(d.set.seed)
	default:
		return train.DefaultTask(d.set.seed)
	}
}

// Train executes the deployment's WSP schedule on the live sharded
// parameter-server runtime: one goroutine per virtual worker training a real
// numeric task (WithTrainTask) against one shard host per cluster node, with
// the clock-distance bound D enforced by blocking pulls, in process or over
// TCP (WithTCP). Cancelling ctx aborts the run cleanly — every worker
// goroutine, blocked pull, TCP connection, and listener is reaped — and
// Train returns ctx.Err(). A configured observer streams protocol events in
// wall-clock time. Train may be called many times; each run stands up and
// tears down its own servers.
func (d *Deployment) Train(ctx context.Context) (*LiveSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	task, err := d.newTask()
	if err != nil {
		return nil, err
	}
	live, err := cluster.Run(ctx, cluster.Config{
		Task:            task,
		Workers:         len(d.dep.VWs),
		Servers:         len(d.cl.Nodes), // one PS shard host per node, as deployed in the paper
		SLocal:          d.dep.Nm - 1,
		D:               d.dep.D,
		LR:              d.set.lr,
		MaxMinibatches:  d.minibatchBudget(),
		Chunks:          d.set.chunks,
		TCP:             d.set.tcp,
		Observer:        d.set.obsFunc(),
		Faults:          d.faults,
		CheckpointEvery: d.set.ckptEvery,
		CheckpointPath:  d.set.ckptPath,
		ResumeFrom:      d.set.resume,
		StepTime:        d.set.stepTime,
	})
	if err != nil {
		return nil, err
	}
	return &LiveSummary{
		Minibatches:         live.Minibatches,
		Pushes:              live.Pushes,
		Pulls:               live.Pulls,
		GlobalClock:         live.GlobalClock,
		MaxClockDistance:    live.MaxClockDistance,
		FinalAccuracy:       task.Accuracy(live.FinalWeights),
		FinalLoss:           task.Loss(live.FinalWeights),
		WallSeconds:         live.Elapsed.Seconds(),
		Crashes:             live.Crashes,
		Recoveries:          live.Recoveries,
		ReplayedMinibatches: live.ReplayedMinibatches,
		Checkpoints:         live.Checkpoints,
		ResumedClock:        live.ResumedClock,
	}, nil
}

// soloTrace simulates virtual worker vw's pipeline alone under the
// deployment's schedule and returns the recorded execution trace. The
// warmup comes from WithWarmup (default 1) and is validated against the
// minibatch count here, where the run length is finally known.
func (d *Deployment) soloTrace(vw, minibatches int) (*trace.Trace, error) {
	if vw < 0 || vw >= len(d.dep.VWs) {
		return nil, fmt.Errorf("hetpipe: virtual worker %d out of range [0,%d)", vw, len(d.dep.VWs))
	}
	if minibatches <= 0 {
		minibatches = 4 * d.dep.Nm
	}
	if d.set.warmup >= minibatches {
		return nil, fmt.Errorf("hetpipe: warmup %d must be below the %d rendered minibatches (WithWarmup)",
			d.set.warmup, minibatches)
	}
	plan := d.dep.VWs[vw].Plan
	tr := trace.New(len(plan.Stages))
	if _, err := pipeline.Run(pipeline.Config{
		Plan: plan, Cluster: d.sys.Cluster, Perf: d.sys.Perf, Schedule: d.sys.Schedule,
		Minibatches: minibatches, Warmup: d.set.warmup, Trace: tr,
	}); err != nil {
		return nil, err
	}
	return tr, nil
}

// Gantt simulates virtual worker vw's pipeline alone and renders its
// schedule as an ASCII chart (the Figure 1 view), using the deployment's own
// partition plan, schedule, and batch size — the batch set through WithBatch
// (default 32) rather than a hard-coded one. width is the chart width in
// columns; minibatches <= 0 defaults to 4*Nm. The warmup minibatches
// excluded from the underlying measurement come from WithWarmup (default 1)
// and must be below the rendered minibatch count.
func (d *Deployment) Gantt(vw, minibatches, width int) (string, error) {
	tr, err := d.soloTrace(vw, minibatches)
	if err != nil {
		return "", err
	}
	return tr.Gantt(width), nil
}

// WriteChromeTrace simulates virtual worker vw's pipeline alone (like Gantt)
// and writes the schedule as chrome://tracing / Perfetto JSON: one thread
// per stage, one complete event per forward, backward, and (under the
// overlap schedule) transfer span. minibatches <= 0 defaults to 4*Nm.
func (d *Deployment) WriteChromeTrace(w io.Writer, vw, minibatches int) error {
	tr, err := d.soloTrace(vw, minibatches)
	if err != nil {
		return err
	}
	return tr.WriteChromeTrace(w)
}
