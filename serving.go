package hetpipe

import (
	"context"
	"fmt"

	"hetpipe/internal/serve"
)

// LatencySummary condenses a serving latency population: nearest-rank
// percentiles over the recorded per-request latencies, in seconds. All
// fields are zero when Count is 0.
type LatencySummary struct {
	// Count is the population size.
	Count int
	// Mean is the arithmetic mean latency.
	Mean float64
	// P50, P95, and P99 are nearest-rank percentiles.
	P50, P95, P99 float64
	// Max is the largest latency observed.
	Max float64
}

// String renders the summary in a stable, byte-comparable form.
func (l LatencySummary) String() string { return serve.LatencySummary(l).String() }

// ServeReplica summarizes one virtual worker's share of a serving run.
type ServeReplica struct {
	// Replica is the 0-based virtual worker index.
	Replica int
	// Type is the replica's GPU mix, e.g. "VVVV".
	Type string
	// Requests and Batches count the work served.
	Requests, Batches int
	// MeanFill is the mean number of requests coalesced per microbatch.
	MeanFill float64
	// Utilization is the busiest GPU's busy fraction over the run.
	Utilization float64
}

// ServeRequest is one request's lifecycle in a serving run, in virtual
// seconds.
type ServeRequest struct {
	// At and Done bound the request: latency is Done - At.
	At, Done float64
	// Replica is the virtual worker that served it.
	Replica int
	// Critical marks latency-critical traffic.
	Critical bool
}

// ServeResult reports a completed Serve run.
type ServeResult struct {
	// Traffic is the canonical spec of the generator that drove the run.
	Traffic string
	// Offered and Served count requests; a drained run serves its whole
	// offer.
	Offered, Served int
	// Duration is the virtual time of the last reply; ThroughputRPS is
	// Served / Duration.
	Duration, ThroughputRPS float64
	// Batches counts admitted microbatches; MeanBatchFill is the mean
	// requests coalesced per microbatch.
	Batches       int
	MeanBatchFill float64
	// Latency summarizes all requests; Critical and Bulk split it by
	// traffic class.
	Latency, Critical, Bulk LatencySummary
	// Replicas holds the per-virtual-worker splits.
	Replicas []ServeReplica
	// FaultInjections, Crashes, and Recoveries surface the WithFaults
	// plan's effect on the run.
	FaultInjections, Crashes, Recoveries int
	// Trace is the per-request lifecycle, indexed by request id.
	Trace []ServeRequest
}

// Traffic reports the canonical WithTraffic spec the deployment serves, or
// "" when serving is not configured.
func (d *Deployment) Traffic() string {
	if d.traffic == nil {
		return ""
	}
	return d.traffic.String()
}

// Serve runs the deployment as an inference-serving system: the WithTraffic
// generator offers requests, a continuous-batching admission layer coalesces
// them into forward-only microbatches bounded by the deployment's batch size
// and the schedule's in-flight cap, and a router spreads them across the
// virtual workers — each acting as a serving replica — preferring fast
// replicas for latency-critical traffic. The WithFaults plan applies:
// slowdowns stretch the affected replica's stage times, crashes charge their
// downtime and surface in the recovery counters, link degradations stretch
// inter-stage transfers (an empty plan is bit-identical to the fault-free
// path). The run is aborted with ctx.Err() when ctx is cancelled; a
// configured observer streams arrivals, admissions, and replies in virtual
// time. Serve is deterministic: the same options reproduce an identical
// ServeResult on every call. It reports ErrNoTraffic when the deployment was
// resolved without WithTraffic.
func (d *Deployment) Serve(ctx context.Context) (*ServeResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d.traffic == nil {
		return nil, fmt.Errorf("%w: use WithTraffic", ErrNoTraffic)
	}
	res, err := serve.Run(ctx, d.dep, d.traffic, serve.Options{
		Faults: d.faults,
		Obs:    d.set.obsFunc(),
	})
	if err != nil {
		return nil, err
	}
	out := &ServeResult{
		Traffic:         res.Traffic,
		Offered:         res.Offered,
		Served:          res.Served,
		Duration:        res.Duration,
		ThroughputRPS:   res.ThroughputRPS,
		Batches:         res.Batches,
		MeanBatchFill:   res.MeanBatchFill,
		Latency:         LatencySummary(res.Latency),
		Critical:        LatencySummary(res.Critical),
		Bulk:            LatencySummary(res.Bulk),
		FaultInjections: res.FaultInjections,
		Crashes:         res.Crashes,
		Recoveries:      res.Recoveries,
	}
	for _, r := range res.Replicas {
		out.Replicas = append(out.Replicas, ServeReplica(r))
	}
	for _, t := range res.Trace {
		out.Trace = append(out.Trace, ServeRequest{
			At: t.At, Done: t.Done, Replica: t.Replica, Critical: t.Critical,
		})
	}
	return out, nil
}
