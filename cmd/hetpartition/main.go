// Command hetpartition prints the Section 7 partition plan for a model on a
// virtual worker GPU mix, at one or more Nm values.
//
// Usage:
//
//	hetpartition -model resnet152 -spec VRGQ -nm 1,4,7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetpipe"
)

func main() {
	modelName := flag.String("model", "vgg19", "DNN model: vgg19 or resnet152")
	spec := flag.String("spec", "VRGQ", "virtual worker GPU types, e.g. VVQQ")
	nms := flag.String("nm", "1,4", "comma-separated Nm values")
	batch := flag.Int("batch", 32, "minibatch size")
	flag.Parse()

	for _, raw := range strings.Split(*nms, ",") {
		nm, err := strconv.Atoi(strings.TrimSpace(raw))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad Nm %q: %v\n", raw, err)
			os.Exit(1)
		}
		plan, err := hetpipe.Plan(*modelName, *spec, nm, *batch)
		if err != nil {
			fmt.Printf("%s on %s, Nm=%d: %v\n", *modelName, *spec, nm, err)
			continue
		}
		fmt.Printf("%s on %s, Nm=%d (bottleneck %.1f ms, upper bound %.0f samples/s):\n",
			*modelName, *spec, nm, plan.Bottleneck*1e3, float64(*batch)/plan.Bottleneck)
		for s, st := range plan.Stages {
			fmt.Printf("  stage %d on %-10s layers [%3d,%3d)  exec %6.1f ms  mem %5.2f/%5.2f GiB\n",
				s+1, st.GPU, st.Layers[0], st.Layers[1], st.ExecTime*1e3,
				float64(st.MemoryBytes)/float64(1<<30), float64(st.MemoryCap)/float64(1<<30))
		}
	}
}
