// Command hetlive runs WSP training for real: virtual workers as goroutines
// against real parameter-server shards (internal/cluster), with the
// clock-distance bound D enforced by blocking pulls on the servers. Ctrl-C
// cancels a run in flight — every worker goroutine and socket is reaped.
//
// Three modes:
//
//   - Conformance (the default): runs one protocol-level configuration
//     through both the discrete-event simulator (train.RunWSP) and the live
//     runtime and prints the differential-conformance report — matching
//     minibatch/push/pull counts, the D-bound, and final-weight agreement.
//   - Raw (-conform=false): the live runtime alone, with explicit worker and
//     shard counts.
//   - Deploy (-deploy): resolves a real model deployment through the public
//     API (hetpipe.New) and executes it on the live runtime
//     (Deployment.Train), streaming per-wave progress with -progress.
//
// Usage:
//
//	hetlive                                  # 4 workers, 2 shards, conformance on
//	hetlive -task mlp -workers 3 -shards 2 -d 1 -nm 4
//	hetlive -tcp                             # workers reach the shards over TCP
//	hetlive -conform=false -mb 200           # live run only, bigger budget
//	hetlive -deploy -model vgg19 -policy ED -d 1 -nm 2 -progress
//	hetlive -faults crash:w1:mb40 -checkpoint-every 2        # crash-recover conformance
//	hetlive -conform=false -checkpoint-every 2 -checkpoint-path run.ckpt
//	hetlive -conform=false -resume run.ckpt -mb 192          # resume & extend a run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"hetpipe"
	"hetpipe/internal/cluster"
	"hetpipe/internal/fault"
	"hetpipe/internal/train"
)

func main() {
	taskName := flag.String("task", "logreg", "training task: logreg (convex) or mlp (non-convex)")
	workers := flag.Int("workers", 4, "virtual workers N, one goroutine each (conformance/raw modes)")
	shards := flag.Int("shards", 2, "parameter-server shard hosts M (conformance/raw modes)")
	d := flag.Int("d", 1, "WSP clock distance bound D")
	nm := flag.Int("nm", 4, "concurrent minibatches per worker (wave size, slocal = Nm-1)")
	tcp := flag.Bool("tcp", false, "reach the shards over real TCP sockets instead of in-process")
	lr := flag.Float64("lr", 0.2, "SGD step size")
	mb := flag.Int("mb", 96, "minibatch budget per worker")
	chunks := flag.Int("chunks", 0, "parameter chunks spread over the shards (0 = 4 per shard)")
	seed := flag.Int64("seed", 13, "task seed")
	tol := flag.Float64("tol", 1e-6, "final-weight conformance tolerance (negative = exact bit-equality)")
	conform := flag.Bool("conform", true, "also run the simulator and report conformance")
	deploy := flag.Bool("deploy", false, "resolve a model deployment via hetpipe.New and run Deployment.Train")
	modelName := flag.String("model", "vgg19", "DNN model for -deploy mode (see hetpipe.Models)")
	clusterName := flag.String("cluster", "paper", "cluster-catalog shape for -deploy mode")
	policy := flag.String("policy", "ED", "allocation policy for -deploy mode")
	schedule := flag.String("schedule", "", "pipeline schedule for -deploy mode (see hetpipe.Schedules; empty = hetpipe-fifo)")
	interleave := flag.Int("interleave", 0, "interleave degree V for -deploy mode (requires -schedule interleaved when > 1)")
	progress := flag.Bool("progress", false, "stream push/pull/clock events while training (-deploy mode)")
	faultSpec := flag.String("faults", "", "fault-injection plan, e.g. slow:w0:x2,crash:w1:mb40 (conformance keeps the sim fault-free)")
	ckptEvery := flag.Int("checkpoint-every", 0, "worker/shard checkpoint cadence in waves (0 = crashes replay from scratch)")
	ckptPath := flag.String("checkpoint-path", "", "persist atomic shard checkpoints to this file (raw/deploy modes)")
	resume := flag.String("resume", "", "resume the shard servers from this checkpoint file (raw/deploy modes)")
	step := flag.Duration("step", 0, "emulated per-minibatch compute time; slow/link faults scale it (0 = as fast as possible)")
	flag.Parse()

	if *nm < 1 {
		fatalf("-nm must be >= 1")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	plan, err := fault.Parse(*faultSpec)
	if err != nil {
		fatalf("%v", err)
	}

	if *deploy {
		runDeploy(ctx, deployOpts{
			model: *modelName, cluster: *clusterName, policy: *policy,
			schedule: *schedule, interleave: *interleave, task: *taskName,
			d: *d, nm: *nm, mb: *mb, chunks: *chunks, seed: *seed, lr: *lr,
			tcp: *tcp, progress: *progress,
			faults: *faultSpec, ckptEvery: *ckptEvery, ckptPath: *ckptPath, resume: *resume,
			step: *step,
		})
		return
	}

	var task train.Task
	switch *taskName {
	case "logreg":
		task, err = train.DefaultTask(*seed)
	case "mlp":
		task, err = train.DefaultMLPTask(*seed)
	default:
		err = fmt.Errorf("unknown task %q (want logreg or mlp)", *taskName)
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *conform {
		report, err := cluster.RunConformance(ctx, cluster.ConformanceConfig{
			Task: task, Workers: *workers, SLocal: *nm - 1, D: *d,
			LR: *lr, MaxMinibatches: *mb,
			Servers: *shards, Chunks: *chunks, TCP: *tcp,
			Seed: *seed, Tolerance: *tol,
			Faults: plan, CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(report)
		if err := report.Err(); err != nil {
			os.Exit(1)
		}
		return
	}

	stats, err := cluster.Run(ctx, cluster.Config{
		Task: task, Workers: *workers, Servers: *shards,
		SLocal: *nm - 1, D: *d, LR: *lr,
		MaxMinibatches: *mb, Chunks: *chunks, TCP: *tcp,
		Faults: plan, CheckpointEvery: *ckptEvery,
		CheckpointPath: *ckptPath, ResumeFrom: *resume,
		StepTime: *step,
	})
	if err != nil {
		fatalf("%v", err)
	}
	mode := "in-process"
	if *tcp {
		mode = "TCP"
	}
	fmt.Printf("live WSP run (%s): %d workers x %d minibatches over %d shards, Nm=%d D=%d\n",
		mode, *workers, *mb, *shards, *nm, *d)
	fmt.Printf("minibatches=%d pushes=%d pulls=%d globalClock=%d maxClockDistance=%d (bound %d)\n",
		stats.Minibatches, stats.Pushes, stats.Pulls, stats.GlobalClock, stats.MaxClockDistance, *d+1)
	fmt.Printf("data plane: shard ops %d pushes / %d pulls, %d malformed requests rejected\n",
		stats.ShardPushes, stats.ShardPulls, stats.ShardMalformed)
	printFaultSummary(stats)
	fmt.Printf("final accuracy=%.3f loss=%.4f wall=%.3fs\n",
		task.Accuracy(stats.FinalWeights), task.Loss(stats.FinalWeights), stats.Elapsed.Seconds())
}

// printFaultSummary reports recovery and checkpoint activity, if any.
func printFaultSummary(stats *cluster.Stats) {
	if stats.ResumedClock > 0 {
		fmt.Printf("resumed from shard checkpoint at global clock %d\n", stats.ResumedClock)
	}
	if stats.Crashes > 0 || stats.Checkpoints > 0 {
		fmt.Printf("faults: %d crashes, %d recoveries, %d minibatches replayed, %d checkpoints taken\n",
			stats.Crashes, stats.Recoveries, stats.ReplayedMinibatches, stats.Checkpoints)
	}
}

// deployOpts carries the -deploy mode's flag values.
type deployOpts struct {
	model, cluster, policy, schedule, task string
	interleave                             int
	d, nm, mb, chunks                      int
	seed                                   int64
	lr                                     float64
	tcp, progress                          bool
	faults                                 string
	ckptEvery                              int
	ckptPath, resume                       string
	step                                   time.Duration
}

// runDeploy resolves a deployment through the public API and trains it live:
// worker and shard counts come from the deployment (one worker per virtual
// worker, one shard host per cluster node), exactly as hetpipe.Run's live
// backend deploys them.
func runDeploy(ctx context.Context, o deployOpts) {
	opts := []hetpipe.Option{
		hetpipe.WithModel(o.model),
		hetpipe.WithCluster(o.cluster),
		hetpipe.WithPolicy(o.policy),
		hetpipe.WithSchedule(o.schedule),
		hetpipe.WithInterleave(o.interleave),
		hetpipe.WithD(o.d),
		hetpipe.WithNm(o.nm),
		hetpipe.WithMinibatchesPerVW(o.mb),
		hetpipe.WithTrainTask(o.task),
		hetpipe.WithSeed(o.seed),
		hetpipe.WithLearningRate(o.lr),
		hetpipe.WithTCP(o.tcp),
		hetpipe.WithChunks(o.chunks),
		hetpipe.WithFaults(o.faults),
		hetpipe.WithCheckpoint(o.ckptEvery),
		hetpipe.WithCheckpointPath(o.ckptPath),
		hetpipe.WithResumeFrom(o.resume),
		hetpipe.WithStepTime(o.step),
	}
	if o.progress {
		opts = append(opts, hetpipe.WithObserver(func(e hetpipe.Event) {
			switch e.Kind {
			case hetpipe.EventPush:
				fmt.Printf("  t=%7.3fs  VW%d pushed wave %d\n", e.Time, e.VW+1, e.Wave)
			case hetpipe.EventPull:
				fmt.Printf("  t=%7.3fs  VW%d pulled at global clock %d\n", e.Time, e.VW+1, e.Clock)
			case hetpipe.EventClockAdvance:
				fmt.Printf("  t=%7.3fs  global clock -> %d\n", e.Time, e.Clock)
			case hetpipe.EventFaultInject:
				fmt.Printf("  t=%7.3fs  FAULT injected: %s\n", e.Time, e.Fault)
			case hetpipe.EventRecover:
				fmt.Printf("  t=%7.3fs  VW%d recovered from checkpoint (clock %d, replaying from minibatch %d)\n",
					e.Time, e.VW+1, e.Clock, e.Minibatch)
			}
		}))
	}
	dep, err := hetpipe.New(opts...)
	if err != nil {
		fatalf("%v", err)
	}
	mode := "in-process"
	if o.tcp {
		mode = "TCP"
	}
	fmt.Printf("live deployment (%s): %s on %s/%s, %d VWs [%s], schedule=%s, Nm=%d D=%d, %d minibatches per VW\n",
		mode, dep.Model(), dep.ClusterName(), o.policy,
		len(dep.VirtualWorkers()), dep.VirtualWorkers()[0], dep.Schedule(), dep.Nm(), dep.D(), o.mb)
	if f := dep.Faults(); f != "" {
		fmt.Printf("fault plan: %s (checkpoint every %d waves)\n", f, dep.CheckpointEvery())
	}
	sum, err := dep.Train(ctx)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("minibatches=%d pushes=%d pulls=%d globalClock=%d maxClockDistance=%d (bound %d)\n",
		sum.Minibatches, sum.Pushes, sum.Pulls, sum.GlobalClock, sum.MaxClockDistance, dep.D()+1)
	if sum.ResumedClock > 0 {
		fmt.Printf("resumed from shard checkpoint at global clock %d\n", sum.ResumedClock)
	}
	if sum.Crashes > 0 || sum.Checkpoints > 0 {
		fmt.Printf("faults: %d crashes, %d recoveries, %d minibatches replayed, %d checkpoints taken\n",
			sum.Crashes, sum.Recoveries, sum.ReplayedMinibatches, sum.Checkpoints)
	}
	fmt.Printf("final accuracy=%.3f loss=%.4f wall=%.3fs\n",
		sum.FinalAccuracy, sum.FinalLoss, sum.WallSeconds)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hetlive: "+format+"\n", args...)
	os.Exit(1)
}
