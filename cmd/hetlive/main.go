// Command hetlive runs WSP training for real: N virtual workers as
// goroutines against M real parameter-server shards (internal/cluster), with
// the clock-distance bound D enforced by blocking pulls on the servers. By
// default it also runs the same configuration through the discrete-event
// simulator (train.RunWSP) and prints the differential-conformance report —
// matching minibatch/push/pull counts, the D-bound, and final-weight
// agreement.
//
// Usage:
//
//	hetlive                                  # 4 workers, 2 shards, conformance on
//	hetlive -model mlp -workers 3 -shards 2 -d 1 -nm 4
//	hetlive -tcp                             # workers reach the shards over TCP
//	hetlive -conform=false -mb 200           # live run only, bigger budget
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpipe/internal/cluster"
	"hetpipe/internal/train"
)

func main() {
	modelName := flag.String("model", "logreg", "training task: logreg (convex) or mlp (non-convex)")
	workers := flag.Int("workers", 4, "virtual workers N (one goroutine each)")
	shards := flag.Int("shards", 2, "parameter-server shard hosts M")
	d := flag.Int("d", 1, "WSP clock distance bound D")
	nm := flag.Int("nm", 4, "concurrent minibatches per worker (wave size, slocal = Nm-1)")
	tcp := flag.Bool("tcp", false, "reach the shards over real TCP sockets instead of in-process")
	lr := flag.Float64("lr", 0.2, "SGD step size")
	mb := flag.Int("mb", 96, "minibatch budget per worker")
	chunks := flag.Int("chunks", 0, "parameter chunks spread over the shards (0 = 4 per shard)")
	seed := flag.Int64("seed", 13, "task seed")
	tol := flag.Float64("tol", 1e-6, "final-weight conformance tolerance (negative = exact bit-equality)")
	conform := flag.Bool("conform", true, "also run the simulator and report conformance")
	flag.Parse()

	if *nm < 1 {
		fatalf("-nm must be >= 1")
	}
	var task train.Task
	var err error
	switch *modelName {
	case "logreg":
		task, err = train.DefaultTask(*seed)
	case "mlp":
		task, err = train.DefaultMLPTask(*seed)
	default:
		err = fmt.Errorf("unknown model %q (want logreg or mlp)", *modelName)
	}
	if err != nil {
		fatalf("%v", err)
	}

	if *conform {
		report, err := cluster.RunConformance(cluster.ConformanceConfig{
			Task: task, Workers: *workers, SLocal: *nm - 1, D: *d,
			LR: *lr, MaxMinibatches: *mb,
			Servers: *shards, Chunks: *chunks, TCP: *tcp,
			Seed: *seed, Tolerance: *tol,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(report)
		if err := report.Err(); err != nil {
			os.Exit(1)
		}
		return
	}

	stats, err := cluster.Run(cluster.Config{
		Task: task, Workers: *workers, Servers: *shards,
		SLocal: *nm - 1, D: *d, LR: *lr,
		MaxMinibatches: *mb, Chunks: *chunks, TCP: *tcp,
	})
	if err != nil {
		fatalf("%v", err)
	}
	mode := "in-process"
	if *tcp {
		mode = "TCP"
	}
	fmt.Printf("live WSP run (%s): %d workers x %d minibatches over %d shards, Nm=%d D=%d\n",
		mode, *workers, *mb, *shards, *nm, *d)
	fmt.Printf("minibatches=%d pushes=%d pulls=%d globalClock=%d maxClockDistance=%d (bound %d)\n",
		stats.Minibatches, stats.Pushes, stats.Pulls, stats.GlobalClock, stats.MaxClockDistance, *d+1)
	fmt.Printf("final accuracy=%.3f loss=%.4f wall=%.3fs\n",
		task.Accuracy(stats.FinalWeights), task.Loss(stats.FinalWeights), stats.Elapsed.Seconds())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hetlive: "+format+"\n", args...)
	os.Exit(1)
}
