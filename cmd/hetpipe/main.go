// Command hetpipe simulates one HetPipe deployment on the paper's 16-GPU
// heterogeneous cluster and reports throughput, partition plans, and
// synchronization overhead.
//
// Usage:
//
//	hetpipe -model vgg19 -policy ED -local -d 4
//	hetpipe -model resnet152 -specs VRQ,VRQ,VRQ,VRQ -nm 4
//	hetpipe -model resnet152 -cluster paper-x2 -policy HD
//	hetpipe -model vgg19 -horovod
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hetpipe"
)

func main() {
	modelName := flag.String("model", "vgg19", "DNN model (see hetpipe.Models: vgg19, resnet152, ...)")
	clusterName := flag.String("cluster", "paper", "cluster-catalog shape (see hetsweep -list)")
	policy := flag.String("policy", "ED", "allocation policy: NP, ED, or HD")
	specs := flag.String("specs", "", "explicit VW specs, comma separated (e.g. VRQ,VRQ,VRQ,VRQ); overrides -policy")
	nm := flag.Int("nm", 0, "concurrent minibatches per VW (0 = auto)")
	d := flag.Int("d", 0, "WSP clock distance bound D")
	batch := flag.Int("batch", 32, "minibatch size")
	local := flag.Bool("local", false, "use local parameter placement (ED only)")
	horovod := flag.Bool("horovod", false, "run the Horovod baseline instead")
	gantt := flag.Bool("gantt", false, "print the pipeline schedule of VW 0")
	flag.Parse()

	if *horovod {
		b, err := hetpipe.Horovod(*modelName, *clusterName, *batch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Horovod %s: %.0f samples/s over %d workers\n", *modelName, b.Throughput, b.Workers)
		if len(b.Excluded) > 0 {
			fmt.Printf("excluded (model too large): %s\n", strings.Join(b.Excluded, ", "))
		}
		return
	}

	cfg := hetpipe.Config{
		Model:          *modelName,
		Cluster:        *clusterName,
		Policy:         *policy,
		Batch:          *batch,
		Nm:             *nm,
		D:              *d,
		LocalPlacement: *local,
	}
	if *specs != "" {
		cfg.Specs = strings.Split(*specs, ",")
		cfg.Policy = ""
	}
	res, err := hetpipe.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("HetPipe %s: %.0f samples/s aggregate (Nm=%d, slocal=%d, D=%d, sglobal=%d)\n",
		*modelName, res.Throughput, res.Nm, res.Nm-1, *d, res.SGlobal)
	for i, tp := range res.PerVW {
		fmt.Printf("  VW%d [%s]: %.0f samples/s\n", i+1, res.VirtualWorkers[i], tp)
	}
	fmt.Printf("  waiting %.1fs, idle %.1fs across VWs\n", res.Waiting, res.Idle)
	for i, plan := range res.Plans {
		fmt.Printf("  VW%d partition (bottleneck %.1f ms):\n", i+1, plan.Bottleneck*1e3)
		for s, st := range plan.Stages {
			fmt.Printf("    stage %d on %-10s layers [%3d,%3d)  exec %6.1f ms  mem %5.2f/%5.2f GiB\n",
				s+1, st.GPU, st.Layers[0], st.Layers[1], st.ExecTime*1e3,
				float64(st.MemoryBytes)/float64(1<<30), float64(st.MemoryCap)/float64(1<<30))
		}
	}
	if *gantt {
		spec := res.VirtualWorkers[0]
		g, err := hetpipe.Gantt(*modelName, *clusterName, spec, res.Nm, 4*res.Nm, 110)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("\npipeline schedule (VW 1):")
		fmt.Print(g)
	}
}
