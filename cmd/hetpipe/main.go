// Command hetpipe simulates one HetPipe deployment on the paper's 16-GPU
// heterogeneous cluster and reports throughput, partition plans, and
// synchronization overhead. Ctrl-C cancels a run in flight.
//
// Usage:
//
//	hetpipe -model vgg19 -policy ED -local -d 4
//	hetpipe -model resnet152 -specs VRQ,VRQ,VRQ,VRQ -nm 4
//	hetpipe -model resnet152 -cluster paper-x2 -policy HD
//	hetpipe -model vgg19 -policy ED -schedule 1f1b         # pipeline schedule
//	hetpipe -model vgg19 -policy ED -gantt -trace-out t.json  # chrome://tracing
//	hetpipe -model vgg19 -policy ED -progress   # stream wave/clock events
//	hetpipe -model vgg19 -policy ED -d 1 -faults slow:w0:x2          # straggler
//	hetpipe -model vgg19 -policy ED -faults crash:w1:mb24 -checkpoint-every 2
//	hetpipe -model vgg19 -horovod
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"hetpipe"
)

func main() {
	modelName := flag.String("model", "vgg19", "DNN model (see hetpipe.Models: vgg19, resnet152, ...)")
	clusterName := flag.String("cluster", "paper", "cluster-catalog shape (see hetsweep -list)")
	policy := flag.String("policy", "ED", "allocation policy: NP, ED, or HD")
	specs := flag.String("specs", "", "explicit VW specs, comma separated (e.g. VRQ,VRQ,VRQ,VRQ); overrides -policy")
	nm := flag.Int("nm", 0, "concurrent minibatches per VW (0 = auto)")
	d := flag.Int("d", 0, "WSP clock distance bound D")
	batch := flag.Int("batch", 32, "minibatch size")
	local := flag.Bool("local", false, "use local parameter placement (ED only)")
	horovod := flag.Bool("horovod", false, "run the Horovod baseline instead")
	gantt := flag.Bool("gantt", false, "print the pipeline schedule of VW 1")
	schedule := flag.String("schedule", "", "pipeline schedule: "+strings.Join(hetpipe.Schedules(), ", ")+" (empty = hetpipe-fifo)")
	interleave := flag.Int("interleave", 0, "interleave degree V: chunks per GPU (requires -schedule interleaved when > 1)")
	warmup := flag.Int("warmup", 1, "warmup minibatches excluded from -gantt/-trace-out rendering")
	traceOut := flag.String("trace-out", "", "write VW 1's pipeline schedule as chrome://tracing JSON to this path")
	progress := flag.Bool("progress", false, "stream wave-push and clock-advance events while simulating")
	faults := flag.String("faults", "", "fault-injection plan, e.g. slow:w0:x2,crash:w1:mb40 (see hetpipe.WithFaults)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in waves; prices crash replay (0 = replay from scratch)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *horovod {
		b, err := hetpipe.Horovod(*modelName, *clusterName, *batch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Horovod %s: %.0f samples/s over %d workers\n", *modelName, b.Throughput, b.Workers)
		if len(b.Excluded) > 0 {
			fmt.Printf("excluded (model too large): %s\n", strings.Join(b.Excluded, ", "))
		}
		return
	}

	opts := []hetpipe.Option{
		hetpipe.WithModel(*modelName),
		hetpipe.WithCluster(*clusterName),
		hetpipe.WithBatch(*batch),
		hetpipe.WithNm(*nm),
		hetpipe.WithD(*d),
		hetpipe.WithLocalPlacement(*local),
		hetpipe.WithSchedule(*schedule),
		hetpipe.WithInterleave(*interleave),
		hetpipe.WithWarmup(*warmup),
		hetpipe.WithFaults(*faults),
		hetpipe.WithCheckpoint(*ckptEvery),
	}
	if *specs != "" {
		opts = append(opts, hetpipe.WithSpecs(strings.Split(*specs, ",")...))
	} else {
		opts = append(opts, hetpipe.WithPolicy(*policy))
	}
	if *progress {
		opts = append(opts, hetpipe.WithObserver(func(e hetpipe.Event) {
			switch e.Kind {
			case hetpipe.EventPush:
				fmt.Printf("  t=%8.2fs  VW%d pushed wave %d (global clock %d)\n", e.Time, e.VW+1, e.Wave, e.Clock)
			case hetpipe.EventClockAdvance:
				fmt.Printf("  t=%8.2fs  global clock -> %d\n", e.Time, e.Clock)
			case hetpipe.EventFaultInject:
				fmt.Printf("  t=%8.2fs  FAULT injected: %s\n", e.Time, e.Fault)
			case hetpipe.EventRecover:
				fmt.Printf("  t=%8.2fs  VW%d recovered (%s)\n", e.Time, e.VW+1, e.Fault)
			}
		}))
	}

	dep, err := hetpipe.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := dep.Simulate(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("HetPipe %s: %.0f samples/s aggregate (schedule=%s, Nm=%d, slocal=%d, D=%d, sglobal=%d)\n",
		*modelName, res.Throughput, dep.Schedule(), res.Nm, res.Nm-1, *d, res.SGlobal)
	for i, tp := range res.PerVW {
		fmt.Printf("  VW%d [%s]: %.0f samples/s\n", i+1, res.VirtualWorkers[i], tp)
	}
	fmt.Printf("  waiting %.1fs, idle %.1fs across VWs; %d pushes, %d pulls, max clock distance %d\n",
		res.Waiting, res.Idle, res.Pushes, res.Pulls, res.MaxClockDistance)
	if res.FaultInjections > 0 {
		fmt.Printf("  faults injected: %d (plan %q, checkpoint every %d waves)\n",
			res.FaultInjections, dep.Faults(), dep.CheckpointEvery())
	}
	for i, plan := range res.Plans {
		fmt.Printf("  VW%d partition (bottleneck %.1f ms):\n", i+1, plan.Bottleneck*1e3)
		for s, st := range plan.Stages {
			span := fmt.Sprintf("layers [%3d,%3d)", st.Layers[0], st.Layers[1])
			if len(st.Chunks) > 1 {
				var parts []string
				for _, c := range st.Chunks {
					parts = append(parts, fmt.Sprintf("%d-%d", c[0], c[1]))
				}
				span = "chunks " + strings.Join(parts, "+")
			}
			fmt.Printf("    stage %d on %-10s %s  exec %6.1f ms  mem %5.2f/%5.2f GiB\n",
				s+1, st.GPU, span, st.ExecTime*1e3,
				float64(st.MemoryBytes)/float64(1<<30), float64(st.MemoryCap)/float64(1<<30))
		}
	}
	if *gantt {
		g, err := dep.Gantt(0, 4*res.Nm, 110)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("\npipeline schedule (VW 1):")
		fmt.Print(g)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := dep.WriteChromeTrace(f, 0, 4*res.Nm)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote chrome://tracing schedule of VW 1 to %s\n", *traceOut)
	}
}
