// Command hetbench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	hetbench -list
//	hetbench -exp figure4
//	hetbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpipe/internal/experiment"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, d := range experiment.Defs() {
			fmt.Printf("%-20s %-12s %s\n", d.Name, d.Paper, d.Title)
		}
		return
	}
	if *exp == "all" {
		reports, err := experiment.RunAll()
		for _, r := range reports {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	r, err := experiment.Run(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}
