// Command hetbench regenerates the paper's tables and figures on the
// simulated cluster, through the public experiment catalog
// (hetpipe.ExperimentCatalog / hetpipe.RunExperiment).
//
// Usage:
//
//	hetbench -list
//	hetbench -exp figure4
//	hetbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpipe"
)

func main() {
	exp := flag.String("exp", "all", "experiment name (see -list) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, d := range hetpipe.ExperimentCatalog() {
			fmt.Printf("%-20s %-12s %s\n", d.Name, d.Paper, d.Title)
		}
		return
	}
	if *exp == "all" {
		for _, d := range hetpipe.ExperimentCatalog() {
			r, err := hetpipe.RunExperiment(d.Name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(r)
		}
		return
	}
	r, err := hetpipe.RunExperiment(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(r)
}
