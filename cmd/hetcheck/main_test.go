package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "good", "more.go"), "package good\n")
	write(t, filepath.Join(dir, "bad", "a.go"), "package bad\n")
	// An external test package's comment must not count for the package
	// under test.
	write(t, filepath.Join(dir, "bad", "a_test.go"), "// Package bad_test is not the package.\npackage bad_test\n")
	write(t, filepath.Join(dir, "testdata", "skip.go"), "package skipped\n")

	findings, err := checkPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "bad") {
		t.Fatalf("findings = %v, want exactly the bad package", findings)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "exists.md"), "target\n")
	write(t, filepath.Join(dir, "doc.md"), strings.Join([]string{
		"[ok](exists.md)",
		"[ok anchor](exists.md#section)",
		"[external](https://example.com/missing.md)",
		"[anchor only](#here)",
		"[broken](missing.md)",
		"```",
		"[in code fence](also-missing.md)",
		"```",
		"`[inline code](inline-missing.md)`",
	}, "\n"))

	findings, err := checkMarkdownLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "missing.md") {
		t.Fatalf("findings = %v, want exactly the one broken link", findings)
	}
}

func TestDotPrefixedRootIsStillScanned(t *testing.T) {
	// A walk root whose own name starts with a dot (".." being the everyday
	// case) must not trip the hidden-directory skip — only subdirectories
	// are pruned. Regression: both checks used to vacuously pass for such
	// roots, scanning zero files.
	dir := t.TempDir()
	write(t, filepath.Join(dir, ".hidden-root", "bad", "a.go"), "package bad\n")
	write(t, filepath.Join(dir, ".hidden-root", "doc.md"), "[broken](missing.md)\n")
	root := filepath.Join(dir, ".hidden-root")

	findings, err := checkPackageDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Errorf("pkgdoc findings = %v, want the undocumented package", findings)
	}
	findings, err = checkMarkdownLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Errorf("link findings = %v, want the broken link", findings)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The repository itself must pass both checks — the same invariant CI
	// enforces with `hetcheck -pkgdoc -links`.
	root := filepath.Join("..", "..")
	if findings, err := checkPackageDocs(root); err != nil || len(findings) > 0 {
		t.Errorf("package docs: err=%v findings=%v", err, findings)
	}
	if findings, err := checkMarkdownLinks(root); err != nil || len(findings) > 0 {
		t.Errorf("markdown links: err=%v findings=%v", err, findings)
	}
}

const benchBaselineJSON = `{
  "benchmarks": [
    {"name": "BenchmarkPipelineSchedules/hetpipe-fifo", "ns_per_op": 33000, "bytes_per_op": 4432, "allocs_per_op": 62},
    {"name": "BenchmarkPipelineSchedules/gpipe", "ns_per_op": 35000, "bytes_per_op": 3712, "allocs_per_op": 54}
  ]
}`

func TestCheckBenchClean(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	write(t, base, benchBaselineJSON)
	// At par, slightly faster, and within the 25% ns/op headroom: no findings.
	// The GOMAXPROCS suffix and extra unbaselined benchmarks are ignored.
	out := strings.Join([]string{
		"goos: linux",
		"BenchmarkPipelineSchedules/hetpipe-fifo-16   2000   36000 ns/op   4432 B/op   62 allocs/op",
		"BenchmarkPipelineSchedules/gpipe-16          2000   20000 ns/op   3712 B/op   54 allocs/op",
		"BenchmarkSomethingElse-16                    2000   99999999 ns/op   1 B/op   1 allocs/op",
		"PASS",
	}, "\n")
	findings, err := checkBench(strings.NewReader(out), base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("findings = %v, want none", findings)
	}
}

func TestCheckBenchRegressions(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	write(t, base, benchBaselineJSON)
	// fifo blows the ns/op threshold; gpipe grows allocs; both are findings.
	out := strings.Join([]string{
		"BenchmarkPipelineSchedules/hetpipe-fifo-16   2000   50000 ns/op   4432 B/op   62 allocs/op",
		"BenchmarkPipelineSchedules/gpipe-16          2000   35000 ns/op   9999 B/op   80 allocs/op",
	}, "\n")
	findings, err := checkBench(strings.NewReader(out), base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want 2", findings)
	}
	if !strings.Contains(findings[0], "hetpipe-fifo ns/op regressed") {
		t.Errorf("finding 0 = %q, want fifo ns/op regression", findings[0])
	}
	if !strings.Contains(findings[1], "gpipe allocs/op regressed") {
		t.Errorf("finding 1 = %q, want gpipe allocs regression", findings[1])
	}
}

func TestCheckBenchMissingAndNoMem(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	write(t, base, benchBaselineJSON)
	// fifo absent from the output entirely; gpipe present but run without
	// -benchmem, so its allocs cannot be checked.
	out := "BenchmarkPipelineSchedules/gpipe-16   2000   35000 ns/op\n"
	findings, err := checkBench(strings.NewReader(out), base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want 2", findings)
	}
	if !strings.Contains(findings[0], "hetpipe-fifo missing") {
		t.Errorf("finding 0 = %q, want missing fifo", findings[0])
	}
	if !strings.Contains(findings[1], "-benchmem") {
		t.Errorf("finding 1 = %q, want -benchmem hint", findings[1])
	}
}

func TestCheckBenchBadBaseline(t *testing.T) {
	// Every malformed baseline must be a hard error whose message names the
	// problem — never a silently green gate.
	cases := []struct {
		name    string
		content string
		wantErr string
	}{
		{"empty list", `{"benchmarks": []}`, "lists no benchmarks"},
		{"truncated json", `{"benchmarks": [{"name": "BenchmarkX",`, "malformed"},
		{"not json at all", "BenchmarkX 2000 33000 ns/op\n", "malformed"},
		{"nameless entry", `{"benchmarks": [{"ns_per_op": 10}]}`, "has no name"},
		{"wrong prefix", `{"benchmarks": [{"name": "X", "ns_per_op": 10}]}`, "does not start with Benchmark"},
		{"zero ns_per_op", `{"benchmarks": [{"name": "BenchmarkX"}]}`, "non-positive ns_per_op"},
		{"negative allocs", `{"benchmarks": [{"name": "BenchmarkX", "ns_per_op": 10, "allocs_per_op": -1}]}`, "negative bytes_per_op or allocs_per_op"},
		{"duplicate entry", `{"benchmarks": [
			{"name": "BenchmarkX", "ns_per_op": 10},
			{"name": "BenchmarkX", "ns_per_op": 20}]}`, "duplicate entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "base.json")
			write(t, path, tc.content)
			_, err := checkBench(strings.NewReader(""), path, 0.25)
			if err == nil {
				t.Fatalf("baseline %q accepted", tc.content)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	if _, err := checkBench(strings.NewReader(""), filepath.Join(t.TempDir(), "absent.json"), 0.25); err == nil {
		t.Error("missing baseline file accepted")
	} else if !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("error %q does not say the baseline is missing", err)
	}
}

func TestCheckBenchMultipleBaselines(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	write(t, a, benchBaselineJSON)
	write(t, b, `{"benchmarks": [
		{"name": "BenchmarkOther/op", "ns_per_op": 1000, "bytes_per_op": 16, "allocs_per_op": 2}
	]}`)
	// One combined stream gated against both files: the regression in the
	// second baseline's benchmark is found and attributed to that file.
	out := strings.Join([]string{
		"BenchmarkPipelineSchedules/hetpipe-fifo-16   2000   33000 ns/op   4432 B/op   62 allocs/op",
		"BenchmarkPipelineSchedules/gpipe-16          2000   35000 ns/op   3712 B/op   54 allocs/op",
		"BenchmarkOther/op-16                         2000    9000 ns/op   16 B/op   2 allocs/op",
	}, "\n")
	findings, err := checkBench(strings.NewReader(out), a+","+b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	if !strings.Contains(findings[0], "b.json") || !strings.Contains(findings[0], "BenchmarkOther/op ns/op regressed") {
		t.Errorf("finding = %q, want BenchmarkOther regression attributed to b.json", findings[0])
	}
}

func TestCheckBenchCrossFileDuplicate(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	write(t, a, benchBaselineJSON)
	write(t, b, benchBaselineJSON)
	_, err := checkBench(strings.NewReader(""), a+","+b, 0.25)
	if err == nil {
		t.Fatal("duplicate benchmark across baseline files accepted")
	}
	if !strings.Contains(err.Error(), "both pin") {
		t.Errorf("error %q does not name the cross-file duplicate", err)
	}
}

func TestRepoBaselineIsValid(t *testing.T) {
	// The committed baselines themselves must satisfy the validation the
	// gate applies to them, and must not pin overlapping benchmarks.
	root := filepath.Join("..", "..")
	if _, err := loadBaselines([]string{
		filepath.Join(root, "BENCH_pipeline.json"),
		filepath.Join(root, "BENCH_ps.json"),
		filepath.Join(root, "BENCH_serve.json"),
	}); err != nil {
		t.Error(err)
	}
}
