package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "good", "more.go"), "package good\n")
	write(t, filepath.Join(dir, "bad", "a.go"), "package bad\n")
	// An external test package's comment must not count for the package
	// under test.
	write(t, filepath.Join(dir, "bad", "a_test.go"), "// Package bad_test is not the package.\npackage bad_test\n")
	write(t, filepath.Join(dir, "testdata", "skip.go"), "package skipped\n")

	findings, err := checkPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "bad") {
		t.Fatalf("findings = %v, want exactly the bad package", findings)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "exists.md"), "target\n")
	write(t, filepath.Join(dir, "doc.md"), strings.Join([]string{
		"[ok](exists.md)",
		"[ok anchor](exists.md#section)",
		"[external](https://example.com/missing.md)",
		"[anchor only](#here)",
		"[broken](missing.md)",
		"```",
		"[in code fence](also-missing.md)",
		"```",
		"`[inline code](inline-missing.md)`",
	}, "\n"))

	findings, err := checkMarkdownLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "missing.md") {
		t.Fatalf("findings = %v, want exactly the one broken link", findings)
	}
}

func TestDotPrefixedRootIsStillScanned(t *testing.T) {
	// A walk root whose own name starts with a dot (".." being the everyday
	// case) must not trip the hidden-directory skip — only subdirectories
	// are pruned. Regression: both checks used to vacuously pass for such
	// roots, scanning zero files.
	dir := t.TempDir()
	write(t, filepath.Join(dir, ".hidden-root", "bad", "a.go"), "package bad\n")
	write(t, filepath.Join(dir, ".hidden-root", "doc.md"), "[broken](missing.md)\n")
	root := filepath.Join(dir, ".hidden-root")

	findings, err := checkPackageDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Errorf("pkgdoc findings = %v, want the undocumented package", findings)
	}
	findings, err = checkMarkdownLinks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Errorf("link findings = %v, want the broken link", findings)
	}
}

func TestRepoIsClean(t *testing.T) {
	// The repository itself must pass both checks — the same invariant CI
	// enforces with `hetcheck -pkgdoc -links`.
	root := filepath.Join("..", "..")
	if findings, err := checkPackageDocs(root); err != nil || len(findings) > 0 {
		t.Errorf("package docs: err=%v findings=%v", err, findings)
	}
	if findings, err := checkMarkdownLinks(root); err != nil || len(findings) > 0 {
		t.Errorf("markdown links: err=%v findings=%v", err, findings)
	}
}
