// Command hetcheck runs the repository's documentation hygiene checks, the
// ones CI enforces next to go vet:
//
//   - -pkgdoc parses every Go package (go/parser, AST-level like a vet
//     analyzer) and fails if any package lacks a package comment, so godoc
//     never shows an undocumented package;
//   - -links extracts relative links from every Markdown file and fails on
//     links whose target file does not exist, so the docs cannot silently rot
//     as files move;
//   - -bench reads `go test -bench -benchmem` output on stdin and fails if
//     any benchmark named in a committed baseline (-baseline, default
//     BENCH_pipeline.json,BENCH_ps.json,BENCH_serve.json; comma-separate
//     several files to gate
//     one stream against multiple packages' baselines) regressed: ns/op beyond
//     -bench-threshold (default 0.25, the documented >25%% rule — headroom
//     for machine noise) or allocs/op beyond 5%% (allocation counts are
//     deterministic, so any real growth is a leak on the pooled hot path).
//     A benchmark pinned by two baseline files is rejected outright.
//
// Usage:
//
//	hetcheck -pkgdoc -links            # both checks over the current module
//	hetcheck -pkgdoc -links -root ..   # explicit module root
//	go test -run '^$' -bench . -benchmem -benchtime 2000x \
//	  ./internal/pipeline ./internal/ps ./internal/serve |
//	  hetcheck -bench                  # benchmark regression gate
//	go test -run '^$' -bench . -benchmem ./internal/ps |
//	  hetcheck -bench -baseline BENCH_ps.json   # one package's baseline only
//
// Exit status is non-zero when any check fails; findings are listed one per
// line as file: message.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to scan")
	pkgdoc := flag.Bool("pkgdoc", false, "check that every Go package has a package comment")
	links := flag.Bool("links", false, "check that relative Markdown links resolve")
	bench := flag.Bool("bench", false, "compare `go test -bench -benchmem` output on stdin against the baseline")
	baseline := flag.String("baseline", "BENCH_pipeline.json,BENCH_ps.json,BENCH_serve.json", "comma-separated benchmark baseline files for -bench")
	benchThreshold := flag.Float64("bench-threshold", 0.25, "fractional ns/op growth tolerated by -bench")
	flag.Parse()
	if !*pkgdoc && !*links && !*bench {
		fmt.Fprintln(os.Stderr, "hetcheck: nothing to do (pass -pkgdoc, -links, and/or -bench)")
		os.Exit(2)
	}

	var findings []string
	if *pkgdoc {
		f, err := checkPackageDocs(*root)
		if err != nil {
			fatalf("%v", err)
		}
		findings = append(findings, f...)
	}
	if *links {
		f, err := checkMarkdownLinks(*root)
		if err != nil {
			fatalf("%v", err)
		}
		findings = append(findings, f...)
	}
	if *bench {
		paths := strings.Split(*baseline, ",")
		for i, p := range paths {
			paths[i] = filepath.Join(*root, strings.TrimSpace(p))
		}
		f, err := checkBench(os.Stdin, strings.Join(paths, ","), *benchThreshold)
		if err != nil {
			fatalf("%v", err)
		}
		findings = append(findings, f...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "hetcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("hetcheck: ok")
}

// checkPackageDocs walks every directory containing Go files and reports the
// packages whose files all lack a package comment. Test files can carry the
// comment too (doc.go is just a convention), but an external _test package
// does not document the package under test.
func checkPackageDocs(root string) ([]string, error) {
	perDir := map[string]bool{} // dir -> has a package comment
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return skipDir(root, path, d)
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, seen := perDir[dir]; !seen {
			perDir[dir] = false
			dirs = append(dirs, dir)
		}
		if perDir[dir] {
			return nil
		}
		// Parse the file's header only: cheap, and the package comment is
		// by definition attached to the package clause.
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			return nil
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			perDir[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, dir := range dirs {
		if !perDir[dir] {
			findings = append(findings, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}
	return findings, nil
}

// skipDir prunes hidden, testdata, and vendor directories from a walk. The
// walk root itself is never pruned, whatever it is named — a root of ".."
// (or any dot-prefixed path) must still be scanned, not silently skipped.
func skipDir(root, path string, d fs.DirEntry) error {
	if path == root {
		return nil
	}
	name := d.Name()
	if strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor" {
		return filepath.SkipDir
	}
	return nil
}

// linkRe matches inline Markdown links and images: [text](target). Reference
// definitions and autolinks are out of scope — the repo does not use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks reports relative links in *.md files whose target does
// not exist on disk. External schemes and pure in-page anchors are skipped;
// a relative link's own #anchor suffix is stripped before the check.
func checkMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return skipDir(root, path, d)
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for _, m := range linkRe.FindAllStringSubmatch(stripCodeBlocks(string(raw)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, serr := os.Stat(resolved); serr != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	return findings, err
}

// stripCodeBlocks blanks fenced code blocks and inline code spans so link
// syntax inside examples is not checked.
func stripCodeBlocks(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			out.WriteString("\n")
			continue
		}
		if inFence {
			out.WriteString("\n")
			continue
		}
		// Blank inline code spans on the line.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + strings.Repeat(" ", j+2) + line[i+1+j+1:]
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String()
}

// benchBaseline mirrors the committed BENCH_pipeline.json layout.
type benchBaseline struct {
	Benchmarks []benchEntry `json:"benchmarks"`
}

// benchEntry is one baseline benchmark record.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLineRe matches one `go test -bench -benchmem` result line, e.g.
// "BenchmarkX/case-16  2000  33101 ns/op  4432 B/op  62 allocs/op". The
// trailing -N of the name is the GOMAXPROCS suffix, stripped before matching
// against the baseline.
var benchLineRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// allocsThreshold is the fractional allocs/op growth tolerated by -bench.
// Allocation counts are deterministic — unlike ns/op they do not move with
// machine load — so the tolerance only absorbs counting differences across Go
// releases, not real regressions on the pooled hot path.
const allocsThreshold = 0.05

// checkBench compares benchmark results read from r against the committed
// baselines: a baseline-listed benchmark missing from the input, growing
// its ns/op beyond threshold, or growing its allocs/op beyond
// allocsThreshold is a finding. Benchmarks absent from every baseline are
// ignored, so the gate composes with `-bench .` runs that cover more than
// the pinned set. baselineArg is a comma-separated list of baseline files
// (one `go test -bench` stream can then be gated against several packages'
// baselines in a single invocation); a benchmark listed by two files is a
// hard error, since the gate could not tell which record to enforce.
func checkBench(r io.Reader, baselineArg string, threshold float64) ([]string, error) {
	entries, err := loadBaselines(strings.Split(baselineArg, ","))
	if err != nil {
		return nil, err
	}
	type got struct{ ns, allocs float64 }
	results := map[string]got{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLineRe.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		allocs := -1.0
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		results[m[1]] = got{ns: ns, allocs: allocs}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var findings []string
	for _, e := range entries {
		b := e.benchEntry
		g, ok := results[b.Name]
		if !ok {
			findings = append(findings, fmt.Sprintf("%s: %s missing from benchmark output", e.path, b.Name))
			continue
		}
		if limit := b.NsPerOp * (1 + threshold); g.ns > limit {
			findings = append(findings, fmt.Sprintf("%s: %s ns/op regressed %.0f -> %.0f (>%d%% over baseline)",
				e.path, b.Name, b.NsPerOp, g.ns, int(threshold*100)))
		}
		if g.allocs < 0 {
			findings = append(findings, fmt.Sprintf("%s: %s has no allocs/op (run with -benchmem)", e.path, b.Name))
			continue
		}
		if limit := b.AllocsPerOp * (1 + allocsThreshold); g.allocs > limit {
			findings = append(findings, fmt.Sprintf("%s: %s allocs/op regressed %.0f -> %.0f (>%d%% over baseline)",
				e.path, b.Name, b.AllocsPerOp, g.allocs, int(allocsThreshold*100)))
		}
	}
	return findings, nil
}

// sourcedEntry is a baseline record together with the file that pinned it,
// so findings name the baseline that must be updated.
type sourcedEntry struct {
	benchEntry
	path string
}

// loadBaselines loads and validates every baseline file, rejecting a
// benchmark pinned by more than one file.
func loadBaselines(paths []string) ([]sourcedEntry, error) {
	var entries []sourcedEntry
	pinnedBy := map[string]string{}
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("empty baseline path in -baseline list")
		}
		base, err := loadBaseline(p)
		if err != nil {
			return nil, err
		}
		for _, b := range base.Benchmarks {
			if prev, dup := pinnedBy[b.Name]; dup {
				return nil, fmt.Errorf("benchmark baselines %s and %s both pin %s", prev, p, b.Name)
			}
			pinnedBy[b.Name] = p
			entries = append(entries, sourcedEntry{benchEntry: b, path: p})
		}
	}
	return entries, nil
}

// loadBaseline reads and validates the committed baseline. The gate trusts
// this file completely — a malformed entry would make every comparison
// vacuous — so a baseline that is missing, unparsable, empty, or carries a
// nonsense record (blank or non-Benchmark name, duplicate name, non-positive
// ns/op, negative counters) is a hard error with a message naming the bad
// entry, not a silently green gate.
func loadBaseline(path string) (*benchBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("benchmark baseline %s does not exist; commit one or point -baseline at it", path)
		}
		return nil, fmt.Errorf("reading benchmark baseline: %w", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("benchmark baseline %s is malformed: %v", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchmark baseline %s lists no benchmarks", path)
	}
	seen := make(map[string]bool, len(base.Benchmarks))
	for i, b := range base.Benchmarks {
		switch {
		case b.Name == "":
			return nil, fmt.Errorf("benchmark baseline %s: entry %d has no name", path, i)
		case !strings.HasPrefix(b.Name, "Benchmark"):
			return nil, fmt.Errorf("benchmark baseline %s: entry %d name %q does not start with Benchmark", path, i, b.Name)
		case seen[b.Name]:
			return nil, fmt.Errorf("benchmark baseline %s: duplicate entry for %s", path, b.Name)
		case b.NsPerOp <= 0:
			return nil, fmt.Errorf("benchmark baseline %s: %s has non-positive ns_per_op %v", path, b.Name, b.NsPerOp)
		case b.BytesPerOp < 0 || b.AllocsPerOp < 0:
			return nil, fmt.Errorf("benchmark baseline %s: %s has negative bytes_per_op or allocs_per_op", path, b.Name)
		}
		seen[b.Name] = true
	}
	return &base, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hetcheck: "+format+"\n", args...)
	os.Exit(1)
}
