// Command hetcheck runs the repository's documentation hygiene checks, the
// ones CI enforces next to go vet:
//
//   - -pkgdoc parses every Go package (go/parser, AST-level like a vet
//     analyzer) and fails if any package lacks a package comment, so godoc
//     never shows an undocumented package;
//   - -links extracts relative links from every Markdown file and fails on
//     links whose target file does not exist, so the docs cannot silently rot
//     as files move.
//
// Usage:
//
//	hetcheck -pkgdoc -links            # both checks over the current module
//	hetcheck -pkgdoc -links -root ..   # explicit module root
//
// Exit status is non-zero when any check fails; findings are listed one per
// line as file: message.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to scan")
	pkgdoc := flag.Bool("pkgdoc", false, "check that every Go package has a package comment")
	links := flag.Bool("links", false, "check that relative Markdown links resolve")
	flag.Parse()
	if !*pkgdoc && !*links {
		fmt.Fprintln(os.Stderr, "hetcheck: nothing to do (pass -pkgdoc and/or -links)")
		os.Exit(2)
	}

	var findings []string
	if *pkgdoc {
		f, err := checkPackageDocs(*root)
		if err != nil {
			fatalf("%v", err)
		}
		findings = append(findings, f...)
	}
	if *links {
		f, err := checkMarkdownLinks(*root)
		if err != nil {
			fatalf("%v", err)
		}
		findings = append(findings, f...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "hetcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("hetcheck: ok")
}

// checkPackageDocs walks every directory containing Go files and reports the
// packages whose files all lack a package comment. Test files can carry the
// comment too (doc.go is just a convention), but an external _test package
// does not document the package under test.
func checkPackageDocs(root string) ([]string, error) {
	perDir := map[string]bool{} // dir -> has a package comment
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return skipDir(root, path, d)
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, seen := perDir[dir]; !seen {
			perDir[dir] = false
			dirs = append(dirs, dir)
		}
		if perDir[dir] {
			return nil
		}
		// Parse the file's header only: cheap, and the package comment is
		// by definition attached to the package clause.
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			return nil
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			perDir[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, dir := range dirs {
		if !perDir[dir] {
			findings = append(findings, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}
	return findings, nil
}

// skipDir prunes hidden, testdata, and vendor directories from a walk. The
// walk root itself is never pruned, whatever it is named — a root of ".."
// (or any dot-prefixed path) must still be scanned, not silently skipped.
func skipDir(root, path string, d fs.DirEntry) error {
	if path == root {
		return nil
	}
	name := d.Name()
	if strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor" {
		return filepath.SkipDir
	}
	return nil
}

// linkRe matches inline Markdown links and images: [text](target). Reference
// definitions and autolinks are out of scope — the repo does not use them.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks reports relative links in *.md files whose target does
// not exist on disk. External schemes and pure in-page anchors are skipped;
// a relative link's own #anchor suffix is stripped before the check.
func checkMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return skipDir(root, path, d)
		}
		if !strings.HasSuffix(strings.ToLower(path), ".md") {
			return nil
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for _, m := range linkRe.FindAllStringSubmatch(stripCodeBlocks(string(raw)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, serr := os.Stat(resolved); serr != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	return findings, err
}

// stripCodeBlocks blanks fenced code blocks and inline code spans so link
// syntax inside examples is not checked.
func stripCodeBlocks(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			out.WriteString("\n")
			continue
		}
		if inFence {
			out.WriteString("\n")
			continue
		}
		// Blank inline code spans on the line.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + strings.Repeat(" ", j+2) + line[i+1+j+1:]
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hetcheck: "+format+"\n", args...)
	os.Exit(1)
}
