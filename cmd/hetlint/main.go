// Command hetlint runs the repository's determinism and hot-path analyzers
// (internal/analysis) over Go packages. It runs two ways:
//
//	hetlint ./...                         # direct: loads packages itself
//	go vet -vettool=$(which hetlint) ./... # as a cmd/go vettool
//
// Direct mode shells out to `go list -export` and analyzes every matched
// non-test package. Vettool mode speaks cmd/go's unitchecker protocol: the
// go command hands hetlint one JSON config per package (source files plus
// the import map and export data of the package's dependencies), which also
// covers test packages; the analyzers themselves exempt *_test.go files.
//
// Exit status: 0 clean, 1 operational error, 2 findings.
//
// The suite (see docs/ARCHITECTURE.md "Enforced invariants"):
//
//	detwalltime   no wall-clock reads in deterministic packages
//	detrand       no global/unseeded math/rand outside tests
//	mapiter       no map-iteration-ordered output in deterministic packages
//	hotpathalloc  no allocating constructs in //hetlint:hotpath functions
//	senterr       %w wrapping and errors.Is matching for Err* sentinels
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/driver"
)

// version participates in cmd/go's tool-ID handshake (`hetlint -V=full`);
// the content only needs to be stable per build for vet caching.
const version = "hetlint version 1"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go vettool protocol entry points, checked before normal flag
	// parsing: `-V=full` asks for a version line and `-flags` for the
	// supported analyzer flags (none).
	for _, a := range args {
		if a == "-V=full" || a == "-V" || strings.HasPrefix(a, "-V=") {
			fmt.Println(version)
			return 0
		}
		if a == "-flags" {
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}

	fs := flag.NewFlagSet("hetlint", flag.ExitOnError)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	dir := fs.String("C", ".", "directory to run `go list` from")
	fs.Parse(args)

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
		return 1
	}
	return report(pkgs, analyzers)
}

// selectAnalyzers resolves a -checks list against the suite.
func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// report runs the analyzers and prints findings go-vet style.
func report(pkgs []*driver.Package, analyzers []*analysis.Analyzer) int {
	diags, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig is the JSON configuration cmd/go writes for each package when
// hetlint runs as a vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a cmd/go vet config file.
func unitcheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hetlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// hetlint computes no cross-package facts, but cmd/go expects the facts
	// file to exist for caching; write it before any early exit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := driver.NewImporter(fset, cfg.PackageFile, nil)
	imp.SetRemap(cfg.ImportMap)
	pkg, err := driver.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "hetlint: %v\n", err)
		return 1
	}
	return report([]*driver.Package{pkg}, analysis.All())
}
