// Command hetsweep explores HetPipe configuration grids in parallel: it
// expands a scenario grid (models x clusters x allocation policies x sync
// modes x D x Nm), simulates every scenario on a bounded worker pool, writes
// structured JSON and CSV results, and prints a ranked best-configuration
// summary.
//
// Usage:
//
//	hetsweep                                  # default 24-scenario grid
//	hetsweep -workers 1                       # same grid, serial (identical output)
//	hetsweep -models vgg19 -clusters paper,mini -policies ED -d 0,1,2,4 -nm 1,2,4
//	hetsweep -sync wsp,horovod -placements default,local
//	hetsweep -schedules hetpipe-fifo,1f1b,hetpipe-overlap   # pipeline-schedule axis
//	hetsweep -schedules interleaved -interleaves 1,2,4      # virtual-stage degree axis
//	hetsweep -faults ';slow:w0:x2;rand:0.5:seed7'           # fault axis (';'-separated,
//	                                          leading empty entry = fault-free baseline)
//	hetsweep -traffics 'poisson:r60:n2000;poisson:r120:n2000'  # serving axis: each spec
//	                                          turns its scenarios into inference-serving
//	                                          runs (requests/sec + latency percentiles)
//	hetsweep -list                            # show the available axis values
//
// Results land in -json and -csv (set either to "" to skip). With -stream the
// sweep aggregates on the fly instead of materializing a row per scenario —
// memory stays bounded by the grid's axes, so 10^5+ cell grids are practical;
// -json then receives the aggregate summary (counts, throughput percentiles,
// per-pair ranking) and -csv is skipped. The output is deterministic either
// way: for a given grid, every worker count produces byte-identical files.
// Scenarios differing only in D, Nm, placement, or faults share resolved
// state (model profiling and allocation run once per family; partitioning
// and auto-Nm once per Nm/placement variant), each worker reuses one warm
// discrete-event engine across its scenarios, and Ctrl-C cancels the sweep
// cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/sched"
	"hetpipe/internal/sweep"
)

func main() {
	def := sweep.DefaultGrid()
	models := flag.String("models", strings.Join(def.Models, ","), "comma-separated model-zoo keys")
	clusters := flag.String("clusters", strings.Join(def.Clusters, ","), "comma-separated cluster-catalog keys")
	policies := flag.String("policies", strings.Join(def.Policies, ","), "comma-separated allocation policies (NP, ED, HD)")
	syncModes := flag.String("sync", "wsp", "comma-separated sync modes (wsp, horovod)")
	placements := flag.String("placements", "default", "comma-separated parameter placements (default, local)")
	schedules := flag.String("schedules", sched.Default().Name(), "comma-separated pipeline schedules ("+strings.Join(sched.Names(), ", ")+")")
	interleaves := flag.String("interleaves", "1", "comma-separated interleave degrees V (schedules without interleave support collapse to V=1)")
	faults := flag.String("faults", "", "semicolon-separated fault-plan specs (fault grammar: slow:w0:x2,crash:w1:mb40,...); an empty entry is the fault-free baseline")
	traffics := flag.String("traffics", "", "semicolon-separated serving traffic specs (serve grammar: poisson:r120:n2000, diurnal:r120:a0.5:p60:n2000, bursty:r60:x4:on2:off8:n2000, closed:u64:t0.05:n2000); an empty entry is the training baseline")
	dValues := flag.String("d", intsJoin(def.DValues), "comma-separated WSP clock-distance bounds")
	nmValues := flag.String("nm", "0", "comma-separated concurrent-minibatch counts (0 = auto)")
	batch := flag.Int("batch", 0, "minibatch size (0 = 32)")
	mbs := flag.Int("mbs", 0, "minibatches per virtual worker per scenario (0 = D-aware default, at least 24 waves)")
	workers := flag.Int("workers", 0, "max concurrent scenario simulations (0 = GOMAXPROCS)")
	stream := flag.Bool("stream", false, "aggregate results on the fly (bounded memory; -json gets the summary, -csv is skipped)")
	jsonPath := flag.String("json", "hetsweep.json", "JSON results path (empty = skip)")
	csvPath := flag.String("csv", "hetsweep.csv", "CSV results path (empty = skip)")
	list := flag.Bool("list", false, "list the available axis values and exit")
	quiet := flag.Bool("quiet", false, "suppress per-scenario progress lines")
	flag.Parse()

	if *list {
		fmt.Println("models:")
		for _, m := range model.Names() {
			fmt.Printf("  %s\n", m)
		}
		fmt.Println("clusters:")
		for _, c := range hw.ClusterCatalog() {
			fmt.Printf("  %-10s %s\n", c.Name, c.Description)
		}
		fmt.Println("policies: NP, ED, HD")
		fmt.Println("sync modes: wsp, horovod")
		fmt.Println("placements: default, local")
		fmt.Println("schedules:")
		for _, n := range sched.Names() {
			s, _ := sched.ByName(n)
			fmt.Printf("  %-16s %s\n", n, s.Description())
		}
		fmt.Println("fault clauses (combine with commas inside one spec):")
		fmt.Println("  slow:w<N>:x<f>[:mb<a>-<b>]   straggler slowdown")
		fmt.Println("  crash:w<N>:mb<M>[:down<s>]   crash + checkpoint recovery")
		fmt.Println("  stall:s<S>:c<C>:<seconds>    PS shard stall at a clock advance")
		fmt.Println("  link:w<N>:x<f>               degraded PS link")
		fmt.Println("  rand:<rate>[:seed<N>]        seeded random straggler population")
		fmt.Println("traffic specs (serving axis; all seedable with :seed<N>, classed with :crit<f>):")
		fmt.Println("  poisson:r<rate>:n<N>                  open-loop Poisson arrivals")
		fmt.Println("  diurnal:r<rate>:a<amp>:p<period>:n<N> sinusoidally modulated rate")
		fmt.Println("  bursty:r<rate>:x<factor>:on<s>:off<s>:n<N>  on/off burst windows")
		fmt.Println("  closed:u<users>:t<think>:n<N>         closed-loop think-time users")
		return
	}

	grid := sweep.Grid{
		Models:           splitList(*models),
		Clusters:         splitList(*clusters),
		Policies:         splitList(*policies),
		SyncModes:        splitList(*syncModes),
		Placements:       splitList(*placements),
		Schedules:        splitList(*schedules),
		Faults:           splitSpecs(*faults),
		Traffics:         splitSpecs(*traffics),
		Batch:            *batch,
		MinibatchesPerVW: *mbs,
	}
	var err error
	if grid.DValues, err = splitInts(*dValues); err != nil {
		fatalf("-d: %v", err)
	}
	if grid.NmValues, err = splitInts(*nmValues); err != nil {
		fatalf("-nm: %v", err)
	}
	if grid.Interleaves, err = splitInts(*interleaves); err != nil {
		fatalf("-interleaves: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	scenarios, err := grid.Expand()
	if err != nil {
		fatalf("%v", err)
	}
	opt := sweep.Options{Workers: *workers}
	fmt.Printf("sweeping %d scenarios (workers=%d)\n", len(scenarios), opt.ResolvedWorkers(len(scenarios)))

	done := 0
	if !*quiet {
		opt.OnResult = func(r sweep.Result) {
			done++
			unit := "samples/s"
			if r.Scenario.Traffic != "" {
				unit = "req/s"
			}
			status := fmt.Sprintf("%8.0f %s", r.Throughput, unit)
			if r.Error != "" {
				status = "error: " + r.Error
			}
			fmt.Printf("  [%*d/%d] %-45s %s\n", digits(len(scenarios)), done, len(scenarios), r.Scenario.ID(), status)
		}
	}
	if *stream {
		summary, err := sweep.RunStream(ctx, grid, opt)
		if err != nil {
			fatalf("%v", err)
		}
		if *jsonPath != "" {
			if err := writeFile(*jsonPath, func(f *os.File) error {
				enc := json.NewEncoder(f)
				enc.SetIndent("", "  ")
				return enc.Encode(summary)
			}); err != nil {
				fatalf("writing %s: %v", *jsonPath, err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		if *csvPath != "" {
			fmt.Println("per-scenario CSV not available in -stream mode (rows are not materialized)")
		}
		fmt.Println()
		if err := sweep.WriteStreamSummary(os.Stdout, summary); err != nil {
			fatalf("%v", err)
		}
		if summary.Failures > 0 {
			fmt.Printf("\n%d of %d scenarios failed\n", summary.Failures, summary.Scenarios)
		}
		return
	}

	set, err := sweep.Run(ctx, grid, opt)
	if err != nil {
		fatalf("%v", err)
	}

	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f *os.File) error { return sweep.WriteJSON(f, set) }); err != nil {
			fatalf("writing %s: %v", *jsonPath, err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error { return sweep.WriteCSV(f, set) }); err != nil {
			fatalf("writing %s: %v", *csvPath, err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	fmt.Println()
	if err := sweep.WriteSummary(os.Stdout, set); err != nil {
		fatalf("%v", err)
	}
	if n := set.Failures(); n > 0 {
		fmt.Printf("\n%d of %d scenarios failed (see the error column)\n", n, len(set.Results))
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitSpecs splits a spec axis (faults, traffics) on ';' — the specs
// themselves use ',' and ':' internally. Empty entries are kept as the
// axis's baseline value, so ";slow:w0:x2" sweeps baseline-vs-straggler and
// ";poisson:r60:n500" training-vs-serving; an empty flag means no axis at
// all.
func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ";")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func intsJoin(vs []int) string {
	var parts []string
	for _, v := range vs {
		parts = append(parts, strconv.Itoa(v))
	}
	return strings.Join(parts, ",")
}

func digits(n int) int { return len(strconv.Itoa(n)) }

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hetsweep: "+format+"\n", args...)
	os.Exit(1)
}
