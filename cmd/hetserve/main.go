// Command hetserve runs the inference-serving plane over a resolved HetPipe
// deployment: every virtual worker becomes a serving replica running its
// partition plan forward-only under the chosen pipeline schedule, a seedable
// traffic generator offers requests, the admission layer coalesces them into
// microbatches (continuous batching), and the run reports served
// requests/sec with nearest-rank latency percentiles, split by traffic
// class and by replica.
//
// Usage:
//
//	hetserve -traffic poisson:r120:n2000                  # one serving run
//	hetserve -traffic poisson:r120:n2000:crit0.2 -policy NP
//	hetserve -traffic closed:u64:t0.05:n2000              # closed-loop users
//	hetserve -traffic poisson:r60:n1000 -faults slow:w0:x2,crash:w1:mb5:down0.5
//	hetserve -traffic poisson:r60:n1000 -rates 30,60,120,240,480
//	                                   # latency-vs-offered-throughput curve
//	hetserve -traffic poisson:r60:n500 -trace             # per-request lifecycle
//
// The traffic grammar (internal/serve) is seedable with :seed<N> and classed
// with :crit<f>: "poisson:r<rate>:n<N>", "diurnal:r<rate>:a<amp>:p<period>:n<N>",
// "bursty:r<rate>:x<factor>:on<s>:off<s>:n<N>", "closed:u<users>:t<think>:n<N>".
// Runs are deterministic: the same flags reproduce byte-identical output.
// In -rates mode the spec's rate is re-bound per point (open-loop kinds
// only) on one warm engine, tracing the saturation knee directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"hetpipe/internal/core"
	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/serve"
)

func main() {
	modelName := flag.String("model", "vgg19", "model-zoo key ("+strings.Join(model.Names(), ", ")+")")
	clusterName := flag.String("cluster", "paper", "cluster-catalog key")
	policy := flag.String("policy", "NP", "allocation policy (NP, ED, HD)")
	scheduleName := flag.String("schedule", sched.Default().Name(), "pipeline schedule ("+strings.Join(sched.Names(), ", ")+")")
	placement := flag.String("placement", "default", "parameter placement (default, local); serving only shapes transfer profiling")
	interleave := flag.Int("interleave", 1, "partitioner interleave degree V")
	nm := flag.Int("nm", 0, "concurrent-minibatch count shaping the in-flight cap (0 = auto)")
	batch := flag.Int("batch", 0, "microbatch capacity in requests (0 = 32)")
	traffic := flag.String("traffic", "", "traffic spec (required), e.g. poisson:r120:n2000:crit0.2")
	faults := flag.String("faults", "", "fault-plan spec (fault grammar: slow:w0:x2,crash:w1:mb5:down0.5,...)")
	rates := flag.String("rates", "", "comma-separated offered rates: sweep the spec across them and print a latency-vs-throughput curve")
	trace := flag.Bool("trace", false, "print the per-request lifecycle trace")
	jsonPath := flag.String("json", "", "write the full result (curve mode: result list) as JSON (empty = skip)")
	flag.Parse()

	if *traffic == "" {
		fatalf("-traffic is required (e.g. -traffic poisson:r120:n2000)")
	}
	if *batch == 0 {
		*batch = 32
	}
	tr, err := serve.ParseTraffic(*traffic)
	if err != nil {
		fatalf("%v", err)
	}
	plan, err := fault.Parse(*faults)
	if err != nil {
		fatalf("%v", err)
	}
	dep, err := resolve(*modelName, *clusterName, *policy, *scheduleName, *placement, *interleave, *nm, *batch)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opt := serve.Options{Faults: plan}

	if *rates != "" {
		points, err := splitFloats(*rates)
		if err != nil {
			fatalf("-rates: %v", err)
		}
		results, err := serve.Curve(ctx, dep, tr, points, opt)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%10s %8s %10s %10s %10s %10s %10s\n",
			"RATE", "SERVED", "REQ/S", "P50", "P95", "P99", "FILL")
		for i, r := range results {
			fmt.Printf("%10s %8d %10.1f %10.4g %10.4g %10.4g %10.2f\n",
				ftoa(points[i]), r.Served, r.ThroughputRPS,
				r.Latency.P50, r.Latency.P95, r.Latency.P99, r.MeanBatchFill)
		}
		writeJSON(*jsonPath, results)
		return
	}

	res, err := serve.Run(ctx, dep, tr, opt)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("traffic   %s\n", res.Traffic)
	fmt.Printf("served    %d/%d in %.4gs virtual (%.1f req/s)\n",
		res.Served, res.Offered, res.Duration, res.ThroughputRPS)
	fmt.Printf("batches   %d (mean fill %.2f of cap %d)\n", res.Batches, res.MeanBatchFill, dep.Sys.Batch)
	fmt.Printf("latency   %s\n", res.Latency)
	if res.Critical.Count > 0 {
		fmt.Printf("critical  %s\n", res.Critical)
		fmt.Printf("bulk      %s\n", res.Bulk)
	}
	if res.FaultInjections > 0 {
		fmt.Printf("faults    %d injected, %d crashes, %d recoveries\n",
			res.FaultInjections, res.Crashes, res.Recoveries)
	}
	fmt.Printf("%-8s %-10s %9s %8s %6s %6s\n", "REPLICA", "GPUS", "REQUESTS", "BATCHES", "FILL", "UTIL")
	for _, rs := range res.Replicas {
		fmt.Printf("w%-7d %-10s %9d %8d %6.2f %6.2f\n",
			rs.Replica, rs.Type, rs.Requests, rs.Batches, rs.MeanFill, rs.Utilization)
	}
	if *trace {
		fmt.Print(res.TraceString())
	}
	writeJSON(*jsonPath, res)
}

// resolve builds the serving deployment the same way the sweep does for a
// scenario: profiled system, allocation by policy, and Deploy with the
// requested Nm (D is irrelevant to serving and fixed at 0).
func resolve(modelName, clusterName, policy, scheduleName, placement string, interleave, nm, batch int) (*core.Deployment, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, err
	}
	cluster, err := hw.ClusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	schedule, err := sched.ByName(scheduleName)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystemSched(cluster, m, profile.Default(), batch, schedule)
	if err != nil {
		return nil, err
	}
	sys.Interleave = interleave
	pol, err := hw.PolicyByName(policy)
	if err != nil {
		return nil, err
	}
	alloc, err := hw.Allocate(cluster, pol)
	if err != nil {
		return nil, err
	}
	pl := core.PlacementDefault
	switch placement {
	case "default":
	case "local":
		pl = core.PlacementLocal
	default:
		return nil, fmt.Errorf("unknown placement %q (want default or local)", placement)
	}
	return sys.Deploy(alloc, nm, 0, pl)
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeJSON(path string, v interface{}) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("writing %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "hetserve: "+format+"\n", args...)
	os.Exit(1)
}
