package hetpipe

import (
	"strings"
	"testing"
)

func TestRunEDLocal(t *testing.T) {
	res, err := Run(Config{Model: "vgg19", Policy: "ED", LocalPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("non-positive throughput")
	}
	if len(res.PerVW) != 4 || len(res.VirtualWorkers) != 4 || len(res.Plans) != 4 {
		t.Fatalf("expected 4 VWs, got %d/%d/%d", len(res.PerVW), len(res.VirtualWorkers), len(res.Plans))
	}
	for _, vw := range res.VirtualWorkers {
		if vw != "VRGQ" {
			t.Errorf("ED VW = %s, want VRGQ", vw)
		}
	}
	if res.Nm < 1 {
		t.Errorf("Nm = %d", res.Nm)
	}
	// sglobal = (D+1)(slocal+1) + slocal - 1 with D=0.
	if want := res.Nm + res.Nm - 2; res.SGlobal != want {
		t.Errorf("sglobal = %d, want %d", res.SGlobal, want)
	}
}

func TestRunWithSpecs(t *testing.T) {
	res, err := Run(Config{Model: "resnet152", Specs: []string{"VR", "VR"}, Nm: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVW) != 2 {
		t.Fatalf("VWs = %d, want 2", len(res.PerVW))
	}
	if res.Nm != 2 {
		t.Errorf("Nm = %d, want 2 (forced)", res.Nm)
	}
}

func TestRunLiveBackend(t *testing.T) {
	res, err := Run(Config{
		Model: "vgg19", Policy: "ED", D: 1, Nm: 2,
		MinibatchesPerVW: 16, Backend: "live",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil {
		t.Fatal("live backend produced no live summary")
	}
	if want := 4 * 16; res.Live.Minibatches != want {
		t.Errorf("live minibatches = %d, want %d", res.Live.Minibatches, want)
	}
	if res.Live.Pushes != 4*16/2 {
		t.Errorf("live pushes = %d, want %d (one per wave)", res.Live.Pushes, 4*16/2)
	}
	if res.Live.MaxClockDistance > 2 {
		t.Errorf("live clock distance %d exceeds D+1=2", res.Live.MaxClockDistance)
	}
	if res.Live.WallSeconds <= 0 {
		t.Error("live run reported no wall time")
	}
	// The simulated deployment is still fully reported alongside.
	if res.Throughput <= 0 || len(res.Plans) != 4 {
		t.Error("live backend dropped the simulated deployment results")
	}
	if _, err := Run(Config{Model: "vgg19", Policy: "ED", Backend: "warp"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Model: "vgg19"}); err == nil {
		t.Error("missing policy and specs accepted")
	}
	if _, err := Run(Config{Model: "nope", Policy: "ED"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Run(Config{Model: "vgg19", Policy: "XX"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Run(Config{Model: "vgg19", Policy: "NP", LocalPlacement: true}); err == nil {
		t.Error("local placement under NP accepted")
	}
}

func TestHorovodBaseline(t *testing.T) {
	b, err := Horovod("resnet152", "", 32)
	if err != nil {
		t.Fatal(err)
	}
	if b.Workers != 12 || len(b.Excluded) != 4 {
		t.Errorf("ResNet-152 Horovod workers=%d excluded=%d, want 12/4", b.Workers, len(b.Excluded))
	}
	if b.Throughput <= 0 {
		t.Error("non-positive baseline throughput")
	}
}

func TestPlanView(t *testing.T) {
	plan, err := Plan("vgg19", "VRGQ", 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(plan.Stages))
	}
	last := 0
	for i, st := range plan.Stages {
		if st.Layers[0] != last {
			t.Errorf("stage %d starts at %d, want %d", i, st.Layers[0], last)
		}
		last = st.Layers[1]
		if st.MemoryBytes > st.MemoryCap {
			t.Errorf("stage %d memory over cap", i)
		}
	}
	if plan.Bottleneck <= 0 {
		t.Error("zero bottleneck")
	}
	// Defaults: nm=0 -> 1, batch=0 -> 32.
	if _, err := Plan("resnet152", "VV", 0, 0); err != nil {
		t.Errorf("defaulted plan failed: %v", err)
	}
}

func TestGanttOutput(t *testing.T) {
	g, err := Gantt("vgg19", "", "VVVV", 4, 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g, "GPU1") || !strings.Contains(g, "GPU4") {
		t.Errorf("gantt missing stage rows:\n%s", g)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) < 10 {
		t.Fatalf("experiments = %d, want >= 10", len(names))
	}
	out, err := RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TITAN V") {
		t.Error("table1 output missing GPU names")
	}
	if _, err := RunExperiment("unknown"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
