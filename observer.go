package hetpipe

import "hetpipe/internal/obs"

// EventKind discriminates run-observation events.
type EventKind int

const (
	// EventMinibatch fires when a virtual worker completes one minibatch.
	EventMinibatch EventKind = iota + 1
	// EventPush fires when a virtual worker's per-wave aggregated update
	// reaches the parameter servers.
	EventPush
	// EventPull fires when a virtual worker's gated pull of the global
	// weights is satisfied.
	EventPull
	// EventClockAdvance fires when the WSP global clock is observed to
	// advance.
	EventClockAdvance
	// EventFaultInject fires when a WithFaults plan entry takes effect: a
	// straggler slowdown's first affected minibatch, a crash, a shard stall,
	// or a link degradation. Event.Fault names the fault.
	EventFaultInject
	// EventRecover fires when a crashed worker has been restored from its
	// last checkpoint and is about to replay; Event.Minibatch is the replay
	// start and (under Train) Event.Clock the checkpoint's pushed-wave count.
	EventRecover
	// EventArrive fires when a serving request enters the system and is
	// routed (Serve); Event.Request is the request id and Event.VW the
	// chosen replica.
	EventArrive
	// EventAdmit fires when the serving admission layer coalesces queued
	// requests into a microbatch; Event.Batch is the replica-local batch
	// sequence and Event.Request the number of requests coalesced.
	EventAdmit
	// EventReply fires when a serving request's microbatch completes the
	// pipeline; Event.Request is the request id and Event.Batch its batch.
	EventReply
)

func (k EventKind) String() string {
	switch k {
	case EventMinibatch:
		return "minibatch"
	case EventPush:
		return "push"
	case EventPull:
		return "pull"
	case EventClockAdvance:
		return "clock"
	case EventFaultInject:
		return "fault-inject"
	case EventRecover:
		return "recover"
	case EventArrive:
		return "arrive"
	case EventAdmit:
		return "admit"
	case EventReply:
		return "reply"
	default:
		return "unknown"
	}
}

// Event is one observation from an in-flight run. Fields that do not apply
// to a kind are zero.
type Event struct {
	// Backend names the emitting substrate: "sim" (Simulate), "live"
	// (Train), or "serve" (Serve) — useful when one observer watches
	// several.
	Backend string
	// Kind discriminates the event.
	Kind EventKind
	// VW is the 0-based virtual worker index; -1 for cluster-wide events.
	VW int
	// Minibatch is the VW's 1-based minibatch number (EventMinibatch).
	Minibatch int
	// Wave is the 0-based wave index (EventMinibatch, EventPush).
	Wave int
	// Clock is the global clock after the event, where the emitting backend
	// knows it (clock advances and pulls always; sim pushes too).
	Clock int
	// Time is seconds since run start: virtual seconds under Simulate,
	// wall-clock seconds under Train.
	Time float64
	// Fault names the injected fault for EventFaultInject and EventRecover,
	// in the WithFaults spec language (e.g. "crash:w2:mb40").
	Fault string
	// Request is the 0-based serving request id (EventArrive, EventReply);
	// for EventAdmit it carries the number of requests coalesced instead.
	Request int
	// Batch is the replica-local 1-based microbatch sequence number
	// (EventAdmit, EventReply, and Serve-side EventRecover).
	Batch int
}

// Observer receives the event stream of a run (see WithObserver). All
// backends serialize their calls, so an Observer needs no internal locking;
// it runs on the hot path, so it should return quickly (hand expensive work
// to a channel or goroutine of your own).
type Observer func(Event)

// kindOf maps the internal event vocabulary onto the public one.
func kindOf(k obs.Kind) EventKind {
	switch k {
	case obs.KindMinibatch:
		return EventMinibatch
	case obs.KindPush:
		return EventPush
	case obs.KindPull:
		return EventPull
	case obs.KindClock:
		return EventClockAdvance
	case obs.KindFaultInject:
		return EventFaultInject
	case obs.KindRecover:
		return EventRecover
	case obs.KindArrive:
		return EventArrive
	case obs.KindAdmit:
		return EventAdmit
	case obs.KindReply:
		return EventReply
	default:
		return 0
	}
}

// obsFunc adapts the configured Observer to the internal backends' callback,
// or nil when no observer is configured (backends skip emission entirely).
func (s *settings) obsFunc() obs.Func {
	o := s.observer
	if o == nil {
		return nil
	}
	return func(e obs.Event) {
		o(Event{
			Backend:   e.Backend,
			Kind:      kindOf(e.Kind),
			VW:        e.VW,
			Minibatch: e.Minibatch,
			Wave:      e.Wave,
			Clock:     e.Clock,
			Time:      e.Time,
			Fault:     e.Fault,
			Request:   e.Request,
			Batch:     e.Batch,
		})
	}
}
