package hetpipe

import (
	"context"
	"reflect"
	"testing"
)

// TestServeEndToEnd drives the public serving surface: WithTraffic resolves
// at New, Serve drains the offer deterministically, and the observer sees
// the serving event vocabulary.
func TestServeEndToEnd(t *testing.T) {
	var events []EventKind
	dep, err := New(
		WithModel("vgg19"),
		WithPolicy("NP"),
		WithNm(4),
		WithTraffic("poisson:r60:n200:crit0.2"),
		WithObserver(func(e Event) {
			if e.Backend != "serve" {
				t.Fatalf("serving event from backend %q", e.Backend)
			}
			events = append(events, e.Kind)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.Traffic(); got != "poisson:r60:n200:crit0.2" {
		t.Errorf("Traffic() = %q", got)
	}
	res, err := dep.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 200 || res.Offered != 200 {
		t.Fatalf("served %d of %d", res.Served, res.Offered)
	}
	if res.ThroughputRPS <= 0 || res.Latency.Count != 200 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Critical.Count+res.Bulk.Count != res.Latency.Count {
		t.Fatalf("class split %d+%d != %d", res.Critical.Count, res.Bulk.Count, res.Latency.Count)
	}
	if len(res.Replicas) != 4 || len(res.Trace) != 200 {
		t.Fatalf("replicas=%d trace=%d", len(res.Replicas), len(res.Trace))
	}
	var arrive, admit, reply bool
	for _, k := range events {
		switch k {
		case EventArrive:
			arrive = true
		case EventAdmit:
			admit = true
		case EventReply:
			reply = true
		}
	}
	if !arrive || !admit || !reply {
		t.Fatalf("observer missed serving kinds: arrive=%t admit=%t reply=%t", arrive, admit, reply)
	}
	for _, k := range []EventKind{EventArrive, EventAdmit, EventReply} {
		if k.String() == "unknown" {
			t.Errorf("EventKind %d has no String case", k)
		}
	}

	// Repeated Serve calls are deterministic and independent.
	quiet, err := New(WithModel("vgg19"), WithPolicy("NP"), WithNm(4),
		WithTraffic("poisson:r60:n200:crit0.2"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := quiet.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := quiet.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated Serve diverged")
	}
	if a.Latency.String() != b.Latency.String() {
		t.Fatal("latency summaries diverged")
	}
}

// TestServeWithFaults pins the acceptance criterion that fault-plan serving
// runs complete with recovery counters surfaced through the public API.
func TestServeWithFaults(t *testing.T) {
	dep, err := New(
		WithModel("vgg19"),
		WithPolicy("ED"),
		WithNm(4),
		WithTraffic("poisson:r60:n150"),
		WithFaults("crash:w1:mb2:down0.5,slow:w0:x2"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dep.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 150 {
		t.Fatalf("faulted run served %d of 150", res.Served)
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("crash counters: %d crashes, %d recoveries", res.Crashes, res.Recoveries)
	}
	if res.FaultInjections < 2 {
		t.Fatalf("fault injections = %d, want crash + slowdown", res.FaultInjections)
	}
}
