package hetpipe

import (
	"errors"
	"time"
)

// Sentinel errors returned by New, Run, and the Deployment methods. They are
// always wrapped with context (the offending name, the valid values), so
// match them with errors.Is rather than string comparison.
var (
	// ErrUnknownModel reports a model name outside the zoo (see Models).
	ErrUnknownModel = errors.New("hetpipe: unknown model")
	// ErrUnknownCluster reports a cluster name outside the catalog (see
	// Clusters).
	ErrUnknownCluster = errors.New("hetpipe: unknown cluster")
	// ErrUnknownPolicy reports an allocation policy other than NP, ED, HD.
	ErrUnknownPolicy = errors.New("hetpipe: unknown policy")
	// ErrUnknownBackend reports a Config.Backend other than "", "sim", "live".
	ErrUnknownBackend = errors.New("hetpipe: unknown backend")
	// ErrUnknownTask reports a live-training task other than logreg or mlp.
	ErrUnknownTask = errors.New("hetpipe: unknown training task")
	// ErrNoAllocation reports a deployment with neither a policy nor
	// explicit virtual-worker specs.
	ErrNoAllocation = errors.New("hetpipe: no allocation policy or specs")
	// ErrUnknownSchedule reports a pipeline schedule outside the registry
	// (see Schedules).
	ErrUnknownSchedule = errors.New("hetpipe: unknown schedule")
	// ErrBadFaultPlan reports a WithFaults spec that does not parse or
	// validate (see the fault spec grammar in WithFaults).
	ErrBadFaultPlan = errors.New("hetpipe: bad fault plan")
	// ErrBadInterleave reports a WithInterleave degree that is negative or
	// that the selected schedule cannot run (only "interleaved" supports
	// V > 1).
	ErrBadInterleave = errors.New("hetpipe: bad interleave degree")
	// ErrBadTraffic reports a WithTraffic spec that does not parse or
	// validate (see the traffic spec grammar in WithTraffic).
	ErrBadTraffic = errors.New("hetpipe: bad traffic spec")
	// ErrNoTraffic reports a Serve call on a deployment that was resolved
	// without WithTraffic.
	ErrNoTraffic = errors.New("hetpipe: no traffic configured")
)

// settings is the resolved option set behind New. Zero values mean "default";
// defaults are applied once, in New, so every entry point sees the same ones
// (batch in particular defaults to 32 exactly once — partitioning, the
// system model, and the gantt renderer can no longer disagree on it).
type settings struct {
	model       string
	cluster     string
	policy      string
	specs       []string
	batch       int
	nm          int
	d           int
	local       bool
	minibatches int
	schedule    string
	interleave  int
	warmup      int

	// Fault-tolerance knobs (both backends).
	faultSpec string
	ckptEvery int

	// Serving knob (Serve backend).
	traffic string

	// Live-backend (Train) knobs.
	task     string
	lr       float64
	seed     int64
	tcp      bool
	chunks   int
	ckptPath string
	resume   string
	stepTime time.Duration

	observer Observer
}

func defaultSettings() settings {
	return settings{task: "logreg", lr: 0.2, seed: 1, warmup: 1}
}

// An Option configures a deployment under construction; pass them to New.
// Options replace the flat Config struct of the compatibility API — see the
// field-by-field migration table in the README.
type Option func(*settings)

// WithModel selects the DNN by zoo key, e.g. "vgg19" or "resnet152" (see
// Models). A model is required; there is no default.
func WithModel(name string) Option { return func(s *settings) { s.model = name } }

// WithCluster selects a cluster-catalog shape (see Clusters). Empty means
// "paper", the Section 8.1 testbed.
func WithCluster(name string) Option { return func(s *settings) { s.cluster = name } }

// WithPolicy selects a Table 3 allocation policy: "NP", "ED", or "HD".
// Ignored when WithSpecs is also given.
func WithPolicy(name string) Option { return func(s *settings) { s.policy = name } }

// WithSpecs pins explicit virtual-worker GPU type strings (e.g. "VRQ",
// "VRQ"), overriding any policy.
func WithSpecs(specs ...string) Option {
	return func(s *settings) { s.specs = append([]string(nil), specs...) }
}

// WithBatch sets the per-minibatch sample count; 0 (the default) means 32.
func WithBatch(n int) Option { return func(s *settings) { s.batch = n } }

// WithNm fixes the number of concurrent minibatches per virtual worker;
// 0 (the default) picks the throughput-maximizing value automatically.
func WithNm(n int) Option { return func(s *settings) { s.nm = n } }

// WithD sets the WSP clock-distance bound (0 = BSP-like waves).
func WithD(d int) Option { return func(s *settings) { s.d = d } }

// WithLocalPlacement co-locates parameter shards with pipeline stages (the
// paper's ED-local policy). Requires ED-style stage/node alignment.
func WithLocalPlacement(on bool) Option { return func(s *settings) { s.local = on } }

// WithMinibatchesPerVW sizes each run; 0 (the default) picks a D-aware
// default of at least 24 waves per virtual worker.
func WithMinibatchesPerVW(n int) Option { return func(s *settings) { s.minibatches = n } }

// WithSchedule selects the pipeline execution discipline every virtual
// worker runs (see Schedules): "hetpipe-fifo" (the paper's Section 4
// behavior, the default), "gpipe" (fill-drain waves), "1f1b" (strict
// one-forward-one-backward, the smallest activation footprint),
// "hetpipe-overlap" (FIFO with communication/computation overlap, the
// Section 9 improvement), "interleaved" (Megatron-LM virtual stages: each
// GPU hosts several model chunks, shrinking the pipeline bubble by the
// WithInterleave degree), or "2bw" (PipeDream-2BW: 1F1B timing with
// double-buffered weight versions instead of activation-sized stashes). The
// schedule shapes the partitioner's per-stage memory model — a
// memory-constrained worker can admit a larger Nm under "1f1b" — as well as
// the simulated task graph and the Gantt rendering.
func WithSchedule(name string) Option { return func(s *settings) { s.schedule = name } }

// WithInterleave sets the interleave degree V: the partitioner cuts each
// virtual worker's model into k*V chunks and assigns GPU g the chunks g,
// g+k, ..., g+(V-1)k, so the pipeline fill/drain bubble shrinks by V.
// 0 (the default) and 1 keep the classic one-contiguous-range-per-GPU
// placement; V > 1 requires the "interleaved" schedule (New reports
// ErrBadInterleave otherwise).
func WithInterleave(v int) Option { return func(s *settings) { s.interleave = v } }

// WithWarmup sets how many leading minibatches Gantt and WriteChromeTrace
// runs exclude from their steady-state measurement (default 1). It must be
// non-negative and smaller than the rendered minibatch count; both are
// validated — New rejects negative values, the render calls reject a warmup
// that swallows the whole run.
func WithWarmup(n int) Option { return func(s *settings) { s.warmup = n } }

// WithObserver streams run events (minibatch completions, wave pushes, pulls,
// global-clock advances, serving arrivals/admissions/replies, fault
// injections and recoveries) to o while Simulate, Train, or Serve is in
// flight — the hook progress bars and metrics exporters attach to. All
// backends call the observer from a serialized context, so it needs no
// locking of its own.
func WithObserver(o Observer) Option { return func(s *settings) { s.observer = o } }

// WithTraffic attaches an inference-serving traffic spec and enables the
// Serve backend. The grammar is colon-separated, in the style of WithFaults:
//
//	poisson:r120:n2000             open loop: 120 req/s Poisson, 2000 requests
//	diurnal:r120:a0.5:p60:n2000    sinusoidal 60..180 req/s, period 60 s
//	bursty:r60:x4:on2:off8:n2000   60 req/s with 4x bursts, 2 s on / 8 s off
//	closed:u64:t0.05:n2000         closed loop: 64 users, 50 ms mean think
//
// Every kind accepts optional trailing fields seed<k> (default seed1) and
// crit<f> (the fraction of requests marked latency-critical, which the
// serving router steers to fast replicas), e.g.
// "poisson:r120:n2000:seed7:crit0.2". Traffic generation is fully
// deterministic: the same spec reproduces a byte-identical request trace and
// latency summary on every Serve run. A spec that does not parse or validate
// is reported by New through ErrBadTraffic.
func WithTraffic(spec string) Option { return func(s *settings) { s.traffic = spec } }

// WithFaults attaches a deterministic fault-injection plan, written in the
// compact spec language of internal/fault. Comma-separated clauses:
//
//	slow:w0:x2              worker 0 computes 2x slower for the whole run
//	slow:w1:x1.5:mb8-24     worker 1 is 1.5x slower for minibatches 8..24
//	crash:w2:mb40           worker 2 crashes when about to start minibatch 40
//	crash:w2:mb40:down2.5   ... and stays down 2.5 seconds
//	stall:s0:c3:0.05        shard 0 stalls the clock-3 advance by 50 ms
//	link:w3:x4              worker 3's PS transfers take 4x longer
//	rand:0.5:seed7          each worker straggles with probability 0.5
//
// Simulate applies the plan to the virtual timeline (slowdowns scale stage
// timings, crashes charge downtime plus checkpoint replay); Train executes
// it for real (timing faults become wall-clock sleeps, crashes kill and
// recover the worker goroutine from its last checkpoint). WSP numerics are
// timing-independent, so a fault plan never changes the final weights — with
// an empty spec both backends are bit-identical to a fault-free run. A spec
// that does not parse is reported by New through ErrBadFaultPlan.
func WithFaults(spec string) Option { return func(s *settings) { s.faultSpec = spec } }

// WithCheckpoint takes a fault-tolerance checkpoint every `everyWaves` pushed
// waves (0, the default, disables periodic checkpoints). Train checkpoints
// each worker's local state at that cadence — the state a crashed worker is
// recovered from; with no checkpoint it replays from minibatch 1 — and, with
// WithCheckpointPath, persists consistent shard-server checkpoints too.
// Simulate uses the cadence to price a crash's replay time.
func WithCheckpoint(everyWaves int) Option { return func(s *settings) { s.ckptEvery = everyWaves } }

// WithCheckpointPath makes Train persist atomic, clock-cut checkpoints of the
// parameter-server shards to the given file: at every WithCheckpoint cadence
// point and once more at the end of a successful run. The file is always a
// consistent, resumable prefix of the run (see WithResumeFrom).
func WithCheckpointPath(path string) Option { return func(s *settings) { s.ckptPath = path } }

// WithStepTime makes Train emulate per-minibatch compute time as a
// wall-clock sleep of d per minibatch. Straggler slowdowns multiply it and
// link degradations scale the per-transfer share, so timing faults become
// visible on the wall clock; 0 (the default) runs as fast as possible, in
// which case slowdown and link faults still fire their observer events but
// cost no time (crash downtime and shard stalls always sleep for real).
func WithStepTime(d time.Duration) Option { return func(s *settings) { s.stepTime = d } }

// WithResumeFrom makes Train restore the parameter-server shards from a
// checkpoint file written by WithCheckpointPath before training. Workers
// deterministically replay their minibatch streams, re-pushing only the
// waves the checkpoint does not hold, so the resumed run's final weights are
// bit-identical to an uninterrupted run of the same budget.
func WithResumeFrom(path string) Option { return func(s *settings) { s.resume = path } }

// WithTrainTask selects the live backend's numeric training task: "logreg"
// (convex, the default) or "mlp" (non-convex).
func WithTrainTask(name string) Option { return func(s *settings) { s.task = name } }

// WithLearningRate sets the live backend's SGD step size (default 0.2).
func WithLearningRate(lr float64) Option { return func(s *settings) { s.lr = lr } }

// WithSeed seeds the live backend's task data (default 1).
func WithSeed(seed int64) Option { return func(s *settings) { s.seed = seed } }

// WithTCP makes Train reach the parameter-server shards over real loopback
// sockets instead of in-process calls.
func WithTCP(on bool) Option { return func(s *settings) { s.tcp = on } }

// WithChunks sets how many named parameter shards Train spreads over the
// shard servers; 0 (the default) picks 4 per server.
func WithChunks(n int) Option { return func(s *settings) { s.chunks = n } }
