package hetpipe

// One benchmark per paper table and figure: each regenerates the experiment
// end to end on the simulated cluster, so `go test -bench=.` reproduces the
// whole evaluation and times it. The convergence studies (Figures 5 and 6)
// run real numeric SGD and take seconds per iteration; the throughput
// studies are discrete-event simulations and take milliseconds.

import (
	"testing"

	"hetpipe/internal/experiment"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Lines) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
	}
}

// BenchmarkTable1 regenerates the GPU catalog (Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable3 regenerates the allocation policy table (Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFigure1 regenerates the pipeline schedule chart (Figure 1).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "figure1") }

// BenchmarkFigure3 regenerates the single-virtual-worker Nm sweep
// (Figure 3): 7 configurations x 2 models x Nm in 1..7.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3") }

// BenchmarkFigure4 regenerates the allocation-policy comparison at D=0
// (Figure 4), including the Horovod baseline and the WSP multi-VW
// simulation for NP/ED/ED-local/HD.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4") }

// BenchmarkTable4 regenerates the whimpy-GPU scaling study (Table 4).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFigure5 regenerates the ResNet-152 convergence comparison
// (Figure 5): real numeric SGD co-simulated with cluster timing.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, "figure5") }

// BenchmarkFigure6 regenerates the VGG-19 convergence comparison across
// D = 0/4/32 (Figure 6).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "figure6") }

// BenchmarkSyncOverhead regenerates the Section 8.4 waiting/idle analysis.
func BenchmarkSyncOverhead(b *testing.B) { benchExperiment(b, "syncoverhead") }

// BenchmarkTheorem1 measures regret under the WSP schedule against the
// Section 6 bound.
func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "theorem1") }

// BenchmarkTraffic regenerates the Section 8.3 cross-node traffic
// accounting.
func BenchmarkTraffic(b *testing.B) { benchExperiment(b, "traffic") }

// BenchmarkAblationWavePush quantifies wave-aggregated pushes.
func BenchmarkAblationWavePush(b *testing.B) { benchExperiment(b, "ablation-wavepush") }

// BenchmarkAblationMemAware contrasts memory-aware and uniform partitioning.
func BenchmarkAblationMemAware(b *testing.B) { benchExperiment(b, "ablation-memaware") }

// BenchmarkAblationNmSweep sweeps the forced Nm under ED-local.
func BenchmarkAblationNmSweep(b *testing.B) { benchExperiment(b, "ablation-nmsweep") }

// BenchmarkAblationDSweep sweeps the clock-distance bound D under NP.
func BenchmarkAblationDSweep(b *testing.B) { benchExperiment(b, "ablation-dsweep") }
