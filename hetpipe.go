// Package hetpipe is a reproduction of "HetPipe: Enabling Large DNN Training
// on (Whimpy) Heterogeneous GPU Clusters through Integration of Pipelined
// Model Parallelism and Data Parallelism" (Park et al., USENIX ATC 2020) as
// a Go library over a discrete-event cluster simulator and a live sharded
// parameter-server runtime.
//
// The library models the paper's heterogeneous testbed (four nodes of TITAN
// V / TITAN RTX / GeForce RTX 2060 / Quadro P4000 GPUs), partitions DNN
// models (full VGG-19 and ResNet-152 graphs ship in the model zoo) across
// virtual workers of possibly whimpy GPUs, executes pipelined model
// parallelism within each virtual worker, and synchronizes virtual workers
// through the Wave Synchronous Parallel (WSP) protocol with a configurable
// clock-distance bound D.
//
// The API follows the paper's plan/execute split: New resolves a deployment
// once — model, cluster, allocation, partition plans, Nm — and the resulting
// Deployment is inspectable and runnable many times:
//
//	dep, err := hetpipe.New(
//		hetpipe.WithModel("vgg19"),
//		hetpipe.WithPolicy("ED"),
//		hetpipe.WithLocalPlacement(true),
//	)
//	if err != nil { ... }
//	res, err := dep.Simulate(ctx)  // discrete-event co-simulation
//	sum, err := dep.Train(ctx)     // live sharded-PS runtime, real goroutines/sockets
//
// Both run methods honor context cancellation and deadlines — a cancelled
// live run reaps every worker goroutine, blocked pull, and TCP socket and
// returns ctx.Err() — and stream in-flight progress to an observer attached
// with WithObserver.
//
// Runs tolerate faults: WithFaults attaches a deterministic injection plan
// (straggler slowdowns, worker crashes, shard stalls, link degradations),
// WithCheckpoint sets the checkpoint cadence crash recovery restores from,
// and WithCheckpointPath/WithResumeFrom persist and resume whole runs
// through atomic parameter-server checkpoints. WSP's numerics are
// timing-independent, so faults degrade throughput and exercise recovery
// without ever changing the final weights.
//
// Every functional option and every exported sentinel error
// (ErrUnknownModel, ErrUnknownCluster, ..., ErrBadFaultPlan — all matchable
// with errors.Is) is defined and documented in one place: options.go.
//
// Run and Config remain as a thin compatibility wrapper over New for
// existing callers.
//
// See examples/ for complete programs (examples/faults walks the
// fault-injection and checkpoint-recovery story), cmd/hetbench for the
// experiment harness, cmd/hetlive for the live runtime and its sim-vs-live
// conformance harness, and cmd/hetsweep for parallel exploration of
// configuration grids (internal/sweep) across the model zoo, the cluster
// catalog, and the fault axis. docs/ARCHITECTURE.md maps the whole system.
package hetpipe

import (
	"context"
	"fmt"

	"hetpipe/internal/core"
	"hetpipe/internal/experiment"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// Config selects a HetPipe deployment on a cataloged cluster (the paper's
// 16-GPU testbed by default).
//
// Config and Run are the package's compatibility surface: they are a thin
// wrapper over New and Deployment, which new code should use directly for
// cancellation, observability, and plan-once/run-many reuse. Each Config
// field maps to one functional option (see the README migration table).
type Config struct {
	// Model names the DNN, e.g. "vgg19" or "resnet152" (see Models for the
	// full zoo). Maps to WithModel.
	Model string
	// Cluster names a cluster-catalog shape (see Clusters); empty means
	// "paper", the Section 8.1 testbed. Maps to WithCluster.
	Cluster string
	// Policy selects a Table 3 allocation: "NP", "ED", or "HD". Leave empty
	// to use Specs instead. Maps to WithPolicy.
	Policy string
	// Specs gives explicit virtual-worker GPU type strings (e.g.
	// ["VRQ","VRQ","VRQ","VRQ"]), overriding Policy. Maps to WithSpecs.
	Specs []string
	// Batch is the per-minibatch sample count; 0 defaults to 32. Maps to
	// WithBatch.
	Batch int
	// Nm is the number of concurrent minibatches per virtual worker;
	// 0 picks the throughput-maximizing value automatically. Maps to WithNm.
	Nm int
	// D is the WSP clock-distance bound (0 = BSP-like waves). Maps to WithD.
	D int
	// LocalPlacement co-locates parameter shards with pipeline stages
	// (the paper's ED-local policy). Requires stage/node alignment. Maps to
	// WithLocalPlacement.
	LocalPlacement bool
	// MinibatchesPerVW sizes the simulation; 0 picks a D-aware default of
	// at least 24 waves. Maps to WithMinibatchesPerVW.
	MinibatchesPerVW int
	// Schedule selects the pipeline execution discipline (see Schedules);
	// empty means "hetpipe-fifo", the paper's own. Maps to WithSchedule.
	Schedule string
	// Backend selects the execution substrate. "" or "sim" runs the
	// discrete-event co-simulation (Deployment.Simulate). "live"
	// additionally drives the internal/cluster runtime
	// (Deployment.Train) — Result.Live then carries the measured counts.
	Backend string
}

// options translates the flat Config into the option list New consumes.
func (c Config) options() []Option {
	opts := []Option{
		WithModel(c.Model),
		WithCluster(c.Cluster),
		WithBatch(c.Batch),
		WithNm(c.Nm),
		WithD(c.D),
		WithLocalPlacement(c.LocalPlacement),
		WithMinibatchesPerVW(c.MinibatchesPerVW),
		WithSchedule(c.Schedule),
	}
	if len(c.Specs) > 0 {
		opts = append(opts, WithSpecs(c.Specs...))
	} else if c.Policy != "" {
		opts = append(opts, WithPolicy(c.Policy))
	}
	return opts
}

// Result summarizes a simulated HetPipe deployment.
type Result struct {
	// Throughput is the aggregate samples/second across virtual workers.
	Throughput float64
	// PerVW lists each virtual worker's throughput.
	PerVW []float64
	// Nm is the concurrent-minibatch count used (auto-chosen when
	// Config.Nm was 0); SLocal = Nm-1 is the local staleness bound.
	Nm int
	// SGlobal is the WSP global staleness bound for this configuration.
	SGlobal int
	// Waiting and Idle decompose synchronization overhead (seconds summed
	// over virtual workers; idle is the unhidden part).
	Waiting, Idle float64
	// Pushes and Pulls count parameter-server synchronization actions over
	// the simulated run; both shrink as D grows.
	Pushes, Pulls int
	// MaxClockDistance is the largest clock skew observed between virtual
	// workers (bounded by D+1).
	MaxClockDistance int
	// FaultInjections counts fault-plan entries (WithFaults) that took
	// effect during the simulation; zero for a fault-free run.
	FaultInjections int
	// VirtualWorkers describes each VW's GPU mix.
	VirtualWorkers []string
	// Plans carries the per-VW partition plans for inspection.
	Plans []*PlanView
	// Live summarizes the live sharded-PS run when Config.Backend is
	// "live"; nil for the pure simulation.
	Live *LiveSummary
}

// LiveSummary reports what the live training runtime actually did.
type LiveSummary struct {
	// Minibatches, Pushes, Pulls are protocol-action counts summed over
	// workers.
	Minibatches, Pushes, Pulls int
	// GlobalClock is the final global clock (complete waves per worker).
	GlobalClock int
	// MaxClockDistance is the largest clock spread any shard observed
	// (bounded by D+1).
	MaxClockDistance int
	// FinalAccuracy and FinalLoss evaluate the numeric task on the final
	// server-held weights.
	FinalAccuracy float64
	FinalLoss     float64
	// WallSeconds is the measured wall-clock duration of the worker phase.
	WallSeconds float64
	// Crashes and Recoveries count injected worker crashes (WithFaults) and
	// completed checkpoint recoveries; ReplayedMinibatches counts the work
	// re-executed between a restored checkpoint and its crash point. The
	// final weights are unaffected — recovery replays deterministically.
	Crashes, Recoveries, ReplayedMinibatches int
	// Checkpoints counts worker-state checkpoints taken (WithCheckpoint).
	Checkpoints int
	// ResumedClock is the checkpoint's global clock when the run resumed
	// from a file (WithResumeFrom); 0 otherwise.
	ResumedClock int
}

// PlanView is a read-only view of one virtual worker's partition plan.
type PlanView struct {
	GPUs       []string
	Stages     []StageView
	Bottleneck float64
}

// StageView describes one pipeline stage.
type StageView struct {
	GPU string
	// Layers is the stage's layer envelope [lo, hi). For contiguous plans
	// (interleave degree 1) the stage owns exactly this range; for
	// interleaved plans it only brackets the chunk set — see Chunks.
	Layers [2]int // [lo, hi)
	// Chunks lists the stage's layer ranges, one [lo, hi) pair per chunk in
	// virtual-stage order. Contiguous stages have exactly one chunk.
	Chunks      [][2]int
	ExecTime    float64
	MemoryBytes int64
	MemoryCap   int64
}

// clusterByName resolves a cluster-catalog key, defaulting to the paper
// testbed when empty; it reports the name it actually looked up.
func clusterByName(name string) (*hw.Cluster, string, error) {
	if name == "" {
		name = "paper"
	}
	c, err := hw.ClusterByName(name)
	if err != nil {
		return nil, name, fmt.Errorf("%w %q (have %v)", ErrUnknownCluster, name, Clusters())
	}
	return c, name, nil
}

// Run deploys and simulates the configuration; with Config.Backend "live"
// it also executes the deployment's WSP schedule on the real sharded
// parameter-server runtime.
//
// Run is the compatibility path: it resolves a Deployment with New, runs
// Simulate, and (for the live backend) Train, all under
// context.Background(). Callers that need cancellation, deadlines, run
// observation, or plan-once/run-many reuse should use New directly.
func Run(c Config) (*Result, error) {
	switch c.Backend {
	case "", "sim", "live":
	default:
		return nil, fmt.Errorf("%w %q (want sim or live)", ErrUnknownBackend, c.Backend)
	}
	dep, err := New(c.options()...)
	if err != nil {
		return nil, err
	}
	res, err := dep.Simulate(context.Background())
	if err != nil {
		return nil, err
	}
	if c.Backend == "live" {
		live, err := dep.Train(context.Background())
		if err != nil {
			return nil, err
		}
		res.Live = live
	}
	return res, nil
}

func planView(p *partition.Plan) *PlanView {
	v := &PlanView{Bottleneck: p.Bottleneck}
	for i := range p.Stages {
		s := &p.Stages[i]
		v.GPUs = append(v.GPUs, s.GPU.Name())
		chunks := make([][2]int, len(s.Chunks))
		for ci := range s.Chunks {
			chunks[ci] = [2]int{s.Chunks[ci].Lo, s.Chunks[ci].Hi}
		}
		v.Stages = append(v.Stages, StageView{
			GPU:         s.GPU.Name(),
			Layers:      [2]int{s.Lo(), s.Hi()},
			Chunks:      chunks,
			ExecTime:    s.ExecTime(),
			MemoryBytes: s.MemoryBytes,
			MemoryCap:   s.MemoryCap,
		})
	}
	return v
}

// Baseline summarizes the Horovod (all-reduce BSP) comparison point.
type Baseline struct {
	Throughput float64
	Workers    int
	// Excluded lists GPUs whose memory cannot hold the whole model.
	Excluded []string
}

// Horovod evaluates the DP baseline for a model on every GPU of a cataloged
// cluster (empty clusterName means "paper").
func Horovod(modelName, clusterName string, batch int) (*Baseline, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownModel, modelName, Models())
	}
	if batch == 0 {
		batch = 32
	}
	cluster, _, err := clusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cluster, m, profile.Default(), batch)
	if err != nil {
		return nil, err
	}
	hr, err := sys.Horovod(nil)
	if err != nil {
		return nil, err
	}
	b := &Baseline{Throughput: hr.Throughput, Workers: len(hr.Workers)}
	for _, g := range hr.Excluded {
		b.Excluded = append(b.Excluded, g.Name())
	}
	return b, nil
}

// Plan partitions a model onto a single virtual worker described by a GPU
// type string (e.g. "VRGQ") with Nm concurrent minibatches, without running
// a simulation — the partitioning-study entry point.
func Plan(modelName, spec string, nm, batch int) (*PlanView, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownModel, modelName, Models())
	}
	if batch == 0 {
		batch = 32
	}
	if nm == 0 {
		nm = 1
	}
	cluster := hw.Paper()
	alloc, err := hw.AllocateByTypes(cluster, []string{spec})
	if err != nil {
		return nil, err
	}
	plan, err := partition.New(profile.Default()).Partition(cluster, m, alloc.VWs[0], nm, batch)
	if err != nil {
		return nil, err
	}
	return planView(plan), nil
}

// Gantt simulates one virtual worker on a cataloged cluster (empty
// clusterName means "paper") and renders its pipeline schedule as an ASCII
// chart (the Figure 1 view). width is the chart width in columns.
//
// Gantt is a convenience over New: it resolves a single-VW deployment for
// spec and calls Deployment.Gantt, so the batch size is the consistent
// package default (32) rather than a separate hard-coded value. Use
// New(WithBatch(...)) and Deployment.Gantt to render at another batch size.
func Gantt(modelName, clusterName, spec string, nm, minibatches, width int) (string, error) {
	dep, err := New(
		WithModel(modelName),
		WithCluster(clusterName),
		WithSpecs(spec),
		WithNm(nm),
	)
	if err != nil {
		return "", err
	}
	return dep.Gantt(0, minibatches, width)
}

// Models lists the model-zoo keys Config.Model accepts.
func Models() []string { return model.Names() }

// Clusters lists the cluster-catalog keys Config.Cluster accepts.
func Clusters() []string { return hw.ClusterNames() }

// Schedules lists the pipeline-schedule names WithSchedule accepts:
// "hetpipe-fifo" (the paper's Section 4 discipline, the default), "gpipe"
// (fill-drain waves), "1f1b" (strict one-forward-one-backward), "2bw"
// (PipeDream-2BW: 1F1B with double-buffered weight versions),
// "hetpipe-overlap" (FIFO with communication/computation overlap), and
// "interleaved" (Megatron-LM virtual stages; pair with WithInterleave).
func Schedules() []string { return sched.Names() }

// Experiments lists the paper-reproduction experiments available through
// RunExperiment (tables, figures, and analyses of Section 8).
func Experiments() []string { return experiment.Names() }

// ExperimentInfo describes one registered paper-reproduction experiment.
type ExperimentInfo struct {
	// Name is the registry key RunExperiment accepts, e.g. "figure4".
	Name string
	// Paper cites the reproduced artifact, e.g. "Figure 4" or "Section 8.4".
	Paper string
	// Title describes the experiment in one line.
	Title string
}

// ExperimentCatalog lists every registered experiment's metadata in name
// order — the structured counterpart of Experiments.
func ExperimentCatalog() []ExperimentInfo {
	defs := experiment.Defs()
	out := make([]ExperimentInfo, 0, len(defs))
	for _, d := range defs {
		out = append(out, ExperimentInfo{Name: d.Name, Paper: d.Paper, Title: d.Title})
	}
	return out
}

// RunExperiment regenerates one paper table or figure and returns its
// formatted report.
func RunExperiment(name string) (string, error) {
	r, err := experiment.Run(name)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
