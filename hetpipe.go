// Package hetpipe is a reproduction of "HetPipe: Enabling Large DNN Training
// on (Whimpy) Heterogeneous GPU Clusters through Integration of Pipelined
// Model Parallelism and Data Parallelism" (Park et al., USENIX ATC 2020) as
// a Go library over a discrete-event cluster simulator.
//
// The library models the paper's heterogeneous testbed (four nodes of TITAN
// V / TITAN RTX / GeForce RTX 2060 / Quadro P4000 GPUs), partitions DNN
// models (full VGG-19 and ResNet-152 graphs ship in the model zoo) across
// virtual workers of possibly whimpy GPUs, executes pipelined model
// parallelism within each virtual worker, and synchronizes virtual workers
// through the Wave Synchronous Parallel (WSP) protocol with a configurable
// clock-distance bound D. A Horovod-style all-reduce BSP baseline, real
// numeric convergence co-simulation, and regenerators for every table and
// figure of the paper's evaluation are included.
//
// Quick start:
//
//	res, err := hetpipe.Run(hetpipe.Config{
//		Model:          "vgg19",
//		Policy:         "ED",
//		LocalPlacement: true,
//	})
//
// See examples/ for complete programs, cmd/hetbench for the experiment
// harness, and cmd/hetsweep for parallel exploration of configuration grids
// (internal/sweep) across the model zoo and the cluster catalog.
package hetpipe

import (
	"fmt"

	"hetpipe/internal/cluster"
	"hetpipe/internal/core"
	"hetpipe/internal/experiment"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/pipeline"
	"hetpipe/internal/profile"
	"hetpipe/internal/trace"
	"hetpipe/internal/train"
)

// Config selects a HetPipe deployment on a cataloged cluster (the paper's
// 16-GPU testbed by default).
type Config struct {
	// Model names the DNN, e.g. "vgg19" or "resnet152" (see Models for the
	// full zoo).
	Model string
	// Cluster names a cluster-catalog shape (see Clusters); empty means
	// "paper", the Section 8.1 testbed.
	Cluster string
	// Policy selects a Table 3 allocation: "NP", "ED", or "HD". Leave empty
	// to use Specs instead.
	Policy string
	// Specs gives explicit virtual-worker GPU type strings (e.g.
	// ["VRQ","VRQ","VRQ","VRQ"]), overriding Policy.
	Specs []string
	// Batch is the per-minibatch sample count; 0 defaults to 32.
	Batch int
	// Nm is the number of concurrent minibatches per virtual worker;
	// 0 picks the throughput-maximizing value automatically.
	Nm int
	// D is the WSP clock-distance bound (0 = BSP-like waves).
	D int
	// LocalPlacement co-locates parameter shards with pipeline stages
	// (the paper's ED-local policy). Requires stage/node alignment.
	LocalPlacement bool
	// MinibatchesPerVW sizes the simulation; 0 picks a D-aware default of
	// at least 24 waves.
	MinibatchesPerVW int
	// Backend selects the execution substrate. "" or "sim" runs the
	// discrete-event co-simulation. "live" additionally drives the
	// internal/cluster runtime: one goroutine per virtual worker training a
	// real numeric task against one parameter-server shard host per cluster
	// node, with the D-bound enforced by blocking pulls — Result.Live then
	// carries the measured counts. The two backends are conformance-tested
	// against each other (see cmd/hetlive).
	Backend string
}

// Result summarizes a simulated HetPipe deployment.
type Result struct {
	// Throughput is the aggregate samples/second across virtual workers.
	Throughput float64
	// PerVW lists each virtual worker's throughput.
	PerVW []float64
	// Nm is the concurrent-minibatch count used (auto-chosen when
	// Config.Nm was 0); SLocal = Nm-1 is the local staleness bound.
	Nm int
	// SGlobal is the WSP global staleness bound for this configuration.
	SGlobal int
	// Waiting and Idle decompose synchronization overhead (seconds summed
	// over virtual workers; idle is the unhidden part).
	Waiting, Idle float64
	// VirtualWorkers describes each VW's GPU mix.
	VirtualWorkers []string
	// Plans carries the per-VW partition plans for inspection.
	Plans []*PlanView
	// Live summarizes the live sharded-PS run when Config.Backend is
	// "live"; nil for the pure simulation.
	Live *LiveSummary
}

// LiveSummary reports what the live training runtime actually did.
type LiveSummary struct {
	// Minibatches, Pushes, Pulls are protocol-action counts summed over
	// workers.
	Minibatches, Pushes, Pulls int
	// MaxClockDistance is the largest clock spread any shard observed
	// (bounded by D+1).
	MaxClockDistance int
	// FinalAccuracy is the numeric task's held-out accuracy on the final
	// server-held weights.
	FinalAccuracy float64
	// WallSeconds is the measured wall-clock duration of the worker phase.
	WallSeconds float64
}

// PlanView is a read-only view of one virtual worker's partition plan.
type PlanView struct {
	GPUs       []string
	Stages     []StageView
	Bottleneck float64
}

// StageView describes one pipeline stage.
type StageView struct {
	GPU         string
	Layers      [2]int // [lo, hi)
	ExecTime    float64
	MemoryBytes int64
	MemoryCap   int64
}

// clusterByName resolves a cluster-catalog key, defaulting to the paper
// testbed when empty.
func clusterByName(name string) (*hw.Cluster, error) {
	if name == "" {
		name = "paper"
	}
	return hw.ClusterByName(name)
}

func (c *Config) system() (*core.System, *hw.Allocation, error) {
	m, err := model.ByName(c.Model)
	if err != nil {
		return nil, nil, err
	}
	batch := c.Batch
	if batch == 0 {
		batch = 32
	}
	cluster, err := clusterByName(c.Cluster)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewSystem(cluster, m, profile.Default(), batch)
	if err != nil {
		return nil, nil, err
	}
	var alloc *hw.Allocation
	switch {
	case len(c.Specs) > 0:
		alloc, err = hw.AllocateByTypes(cluster, c.Specs)
	case c.Policy != "":
		p, perr := hw.PolicyByName(c.Policy)
		if perr != nil {
			return nil, nil, perr
		}
		alloc, err = hw.Allocate(cluster, p)
	default:
		return nil, nil, fmt.Errorf("hetpipe: set Policy or Specs")
	}
	if err != nil {
		return nil, nil, err
	}
	return sys, alloc, nil
}

// Run deploys and simulates the configuration; with Config.Backend "live"
// it also executes the deployment's WSP schedule on the real sharded
// parameter-server runtime.
func Run(c Config) (*Result, error) {
	switch c.Backend {
	case "", "sim", "live":
	default:
		return nil, fmt.Errorf("hetpipe: unknown backend %q (want sim or live)", c.Backend)
	}
	sys, alloc, err := c.system()
	if err != nil {
		return nil, err
	}
	placement := core.PlacementDefault
	if c.LocalPlacement {
		placement = core.PlacementLocal
	}
	dep, err := sys.Deploy(alloc, c.Nm, c.D, placement)
	if err != nil {
		return nil, err
	}
	mbs := c.MinibatchesPerVW
	if mbs == 0 {
		mbs = dep.DefaultMinibatches()
	}
	mr, err := dep.SimulateWSP(mbs, 4*dep.Nm)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Throughput: mr.Aggregate,
		PerVW:      mr.PerVW,
		Nm:         dep.Nm,
		SGlobal:    dep.SGlobal(),
		Waiting:    mr.Waiting,
		Idle:       mr.Idle,
	}
	for _, vp := range dep.VWs {
		res.VirtualWorkers = append(res.VirtualWorkers, vp.VW.TypeString())
		res.Plans = append(res.Plans, planView(vp.Plan))
	}
	if c.Backend == "live" {
		cl, err := clusterByName(c.Cluster)
		if err != nil {
			return nil, err
		}
		task, err := train.DefaultTask(1)
		if err != nil {
			return nil, err
		}
		live, err := cluster.Run(cluster.Config{
			Task:           task,
			Workers:        len(dep.VWs),
			Servers:        len(cl.Nodes), // one PS shard host per node, as deployed in the paper
			SLocal:         dep.Nm - 1,
			D:              c.D,
			LR:             0.2,
			MaxMinibatches: mbs,
		})
		if err != nil {
			return nil, err
		}
		res.Live = &LiveSummary{
			Minibatches:      live.Minibatches,
			Pushes:           live.Pushes,
			Pulls:            live.Pulls,
			MaxClockDistance: live.MaxClockDistance,
			FinalAccuracy:    task.Accuracy(live.FinalWeights),
			WallSeconds:      live.Elapsed.Seconds(),
		}
	}
	return res, nil
}

func planView(p *partition.Plan) *PlanView {
	v := &PlanView{Bottleneck: p.Bottleneck}
	for i := range p.Stages {
		s := &p.Stages[i]
		v.GPUs = append(v.GPUs, s.GPU.Name())
		v.Stages = append(v.Stages, StageView{
			GPU:         s.GPU.Name(),
			Layers:      [2]int{s.Lo, s.Hi},
			ExecTime:    s.ExecTime(),
			MemoryBytes: s.MemoryBytes,
			MemoryCap:   s.MemoryCap,
		})
	}
	return v
}

// Baseline summarizes the Horovod (all-reduce BSP) comparison point.
type Baseline struct {
	Throughput float64
	Workers    int
	// Excluded lists GPUs whose memory cannot hold the whole model.
	Excluded []string
}

// Horovod evaluates the DP baseline for a model on every GPU of a cataloged
// cluster (empty clusterName means "paper").
func Horovod(modelName, clusterName string, batch int) (*Baseline, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, err
	}
	if batch == 0 {
		batch = 32
	}
	cluster, err := clusterByName(clusterName)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(cluster, m, profile.Default(), batch)
	if err != nil {
		return nil, err
	}
	hr, err := sys.Horovod(nil)
	if err != nil {
		return nil, err
	}
	b := &Baseline{Throughput: hr.Throughput, Workers: len(hr.Workers)}
	for _, g := range hr.Excluded {
		b.Excluded = append(b.Excluded, g.Name())
	}
	return b, nil
}

// Plan partitions a model onto a single virtual worker described by a GPU
// type string (e.g. "VRGQ") with Nm concurrent minibatches, without running
// a simulation — the partitioning-study entry point.
func Plan(modelName, spec string, nm, batch int) (*PlanView, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return nil, err
	}
	if batch == 0 {
		batch = 32
	}
	if nm == 0 {
		nm = 1
	}
	cluster := hw.Paper()
	alloc, err := hw.AllocateByTypes(cluster, []string{spec})
	if err != nil {
		return nil, err
	}
	plan, err := partition.New(profile.Default()).Partition(cluster, m, alloc.VWs[0], nm, batch)
	if err != nil {
		return nil, err
	}
	return planView(plan), nil
}

// Gantt simulates one virtual worker on a cataloged cluster (empty
// clusterName means "paper") and renders its pipeline schedule as an ASCII
// chart (the Figure 1 view). width is the chart width in columns.
func Gantt(modelName, clusterName, spec string, nm, minibatches, width int) (string, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return "", err
	}
	cluster, err := clusterByName(clusterName)
	if err != nil {
		return "", err
	}
	sys, err := core.NewSystem(cluster, m, profile.Default(), 32)
	if err != nil {
		return "", err
	}
	alloc, err := hw.AllocateByTypes(cluster, []string{spec})
	if err != nil {
		return "", err
	}
	plan, err := partition.New(profile.Default()).Partition(cluster, m, alloc.VWs[0], nm, 32)
	if err != nil {
		return "", err
	}
	tr := trace.New(len(plan.Stages))
	if _, err := pipeline.Run(pipeline.Config{
		Plan: plan, Cluster: cluster, Perf: sys.Perf,
		Minibatches: minibatches, Warmup: 1, Trace: tr,
	}); err != nil {
		return "", err
	}
	return tr.Gantt(width), nil
}

// Models lists the model-zoo keys Config.Model accepts.
func Models() []string { return model.Names() }

// Clusters lists the cluster-catalog keys Config.Cluster accepts.
func Clusters() []string { return hw.ClusterNames() }

// Experiments lists the paper-reproduction experiments available through
// RunExperiment (tables, figures, and analyses of Section 8).
func Experiments() []string { return experiment.Names() }

// RunExperiment regenerates one paper table or figure and returns its
// formatted report.
func RunExperiment(name string) (string, error) {
	r, err := experiment.Run(name)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
