package hetpipe

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func TestWithFaultsBadSpec(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"unknown kind", []Option{WithFaults("boom:w0:x2")}},
		{"bad factor", []Option{WithFaults("slow:w0:x0.5")}},
		{"worker out of range", []Option{WithFaults("slow:w99:x2")}},
		{"negative checkpoint", []Option{WithCheckpoint(-1)}},
	}
	for _, tc := range cases {
		opts := append([]Option{WithModel("vgg19"), WithPolicy("ED"), WithNm(2)}, tc.opts...)
		_, err := New(opts...)
		if err == nil {
			t.Errorf("%s: New accepted it", tc.name)
			continue
		}
		if tc.name != "negative checkpoint" && !errors.Is(err, ErrBadFaultPlan) {
			t.Errorf("%s: error %v not ErrBadFaultPlan", tc.name, err)
		}
	}
}

func TestSimulateEmptyFaultPlanBitIdentical(t *testing.T) {
	base, err := New(WithModel("vgg19"), WithPolicy("ED"), WithNm(2), WithD(1), WithMinibatchesPerVW(16))
	if err != nil {
		t.Fatal(err)
	}
	withEmpty, err := New(WithModel("vgg19"), WithPolicy("ED"), WithNm(2), WithD(1), WithMinibatchesPerVW(16),
		WithFaults(""), WithCheckpoint(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := base.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := withEmpty.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("empty fault plan changed the simulation:\n%+v\nvs\n%+v", a, b)
	}
	if base.Faults() != "" {
		t.Errorf("Faults() = %q, want empty", base.Faults())
	}
}

func TestSimulateWithStragglerReportsInjection(t *testing.T) {
	dep, err := New(WithModel("vgg19"), WithPolicy("ED"), WithNm(2), WithD(1), WithMinibatchesPerVW(16),
		WithFaults("slow:w0:x2"))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Faults() != "slow:w0:x2" {
		t.Errorf("Faults() = %q", dep.Faults())
	}
	var injects int
	ob := func(e Event) {
		if e.Kind == EventFaultInject {
			injects++
			if e.Fault == "" {
				t.Error("inject event lacks a fault description")
			}
		}
	}
	res, err := New2Simulate(t, dep, ob)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultInjections != 1 || injects != 1 {
		t.Errorf("injections: result %d, observer %d, want 1", res.FaultInjections, injects)
	}

	clean, err := New(WithModel("vgg19"), WithPolicy("ED"), WithNm(2), WithD(1), WithMinibatchesPerVW(16))
	if err != nil {
		t.Fatal(err)
	}
	cr, err := clean.Simulate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput >= cr.Throughput {
		t.Errorf("straggler throughput %g not below clean %g", res.Throughput, cr.Throughput)
	}
}

// New2Simulate re-resolves dep's options with an observer attached and
// simulates; Deployments are immutable, so an observer must be given at New.
func New2Simulate(t *testing.T, dep *Deployment, ob Observer) (*Result, error) {
	t.Helper()
	d2, err := New(
		WithModel(dep.Model()), WithPolicy("ED"),
		WithNm(dep.Nm()), WithD(dep.D()), WithMinibatchesPerVW(16),
		WithFaults(dep.Faults()), WithObserver(ob),
	)
	if err != nil {
		return nil, err
	}
	return d2.Simulate(context.Background())
}

func TestTrainCrashRecoversAndConforms(t *testing.T) {
	common := []Option{
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithMinibatchesPerVW(16),
		WithSeed(7),
	}
	clean, err := New(common...)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := clean.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var recovers int
	opts := append(append([]Option{}, common...),
		WithFaults("crash:w1:mb9:down0.01"), WithCheckpoint(2),
		WithObserver(func(e Event) {
			if e.Kind == EventRecover {
				recovers++
			}
		}))
	faulted, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faulted.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fs.Crashes != 1 || fs.Recoveries != 1 || recovers != 1 {
		t.Fatalf("crashes=%d recoveries=%d observer=%d, want 1/1/1", fs.Crashes, fs.Recoveries, recovers)
	}
	if fs.Checkpoints == 0 {
		t.Error("no checkpoints were taken")
	}
	// Recovery is numerically invisible: same protocol counts, same final
	// weights (hence identical accuracy and loss).
	if fs.Minibatches != cs.Minibatches || fs.Pushes != cs.Pushes || fs.Pulls != cs.Pulls {
		t.Errorf("counts diverge: %d/%d/%d vs %d/%d/%d",
			fs.Minibatches, fs.Pushes, fs.Pulls, cs.Minibatches, cs.Pushes, cs.Pulls)
	}
	if fs.FinalLoss != cs.FinalLoss || fs.FinalAccuracy != cs.FinalAccuracy {
		t.Errorf("final metrics diverge: loss %v vs %v, acc %v vs %v",
			fs.FinalLoss, cs.FinalLoss, fs.FinalAccuracy, cs.FinalAccuracy)
	}
}

func TestTrainCheckpointAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ckpt")
	common := []Option{
		WithModel("vgg19"), WithPolicy("ED"),
		WithNm(2), WithD(1), WithSeed(3),
	}
	leg1, err := New(append(append([]Option{}, common...),
		WithMinibatchesPerVW(8), WithCheckpoint(2), WithCheckpointPath(path))...)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := leg1.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s1.GlobalClock == 0 {
		t.Fatal("leg 1 made no progress")
	}

	leg2, err := New(append(append([]Option{}, common...),
		WithMinibatchesPerVW(16), WithResumeFrom(path))...)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := leg2.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2.ResumedClock != s1.GlobalClock {
		t.Errorf("resumed at clock %d, want %d", s2.ResumedClock, s1.GlobalClock)
	}

	control, err := New(append(append([]Option{}, common...), WithMinibatchesPerVW(16))...)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := control.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2.FinalLoss != cs.FinalLoss || s2.GlobalClock != cs.GlobalClock {
		t.Errorf("resumed run diverges: loss %v vs %v, clock %d vs %d",
			s2.FinalLoss, cs.FinalLoss, s2.GlobalClock, cs.GlobalClock)
	}
}
