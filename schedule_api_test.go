package hetpipe

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// goldenGantt is the exact VRGQ/vgg19/Nm=4 Gantt chart the pre-refactor
// executor rendered (16 minibatches, width 100, warmup 1): the default
// schedule must keep reproducing it byte for byte.
const goldenGantt = `GPU1 |12#34##.......[1]#5#[2]#6[3]#7#[4]#8[5]#[6]#910[7]#[8]#112#.[9]13[10]1[11]15[12]1[13][14]#[15]#.[16]|
GPU2 |.1#23#4#....[1]..[2]5#[3]6#[4].7[5]#8[6]#..[79#1[8].....1[9]12[1013.[114#[1215[1316[14..[15..[16]...|
GPU3 |..1#2#3#4#[1].[2]#..[35##[46##[57##[68##[7]#.[8]9#10#..[911#[112#[1113[1214#[115#[116#[15..[16......|
GPU4 |....1##[12##[23##[3]4#[4]5#[5]6##[67##[78##[8]....9#[9]10#[111#[112#[113#[1314[1415[1516[16]........|
      0                                                                                           T=2.950s
`

func ganttDeployment(t *testing.T, opts ...Option) *Deployment {
	t.Helper()
	dep, err := New(append([]Option{
		WithModel("vgg19"),
		WithSpecs("VRGQ"),
		WithNm(4),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestGanttGoldenDefaultSchedule(t *testing.T) {
	dep := ganttDeployment(t)
	if dep.Schedule() != "hetpipe-fifo" {
		t.Errorf("default schedule = %q, want hetpipe-fifo", dep.Schedule())
	}
	g, err := dep.Gantt(0, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g != goldenGantt {
		t.Errorf("default-schedule Gantt drifted from the pre-refactor golden:\ngot:\n%s\nwant:\n%s", g, goldenGantt)
	}
}

func TestWithScheduleChangesGantt(t *testing.T) {
	for _, name := range Schedules() {
		dep := ganttDeployment(t, WithSchedule(name))
		if dep.Schedule() != name {
			t.Errorf("Schedule() = %q, want %q", dep.Schedule(), name)
		}
		g, err := dep.Gantt(0, 16, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "hetpipe-fifo" && name != "hetpipe-overlap" && g == goldenGantt {
			// gpipe and 1f1b reorder execution; their charts must differ.
			t.Errorf("%s: Gantt identical to hetpipe-fifo", name)
		}
		res, err := dep.Simulate(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Throughput <= 0 {
			t.Errorf("%s: throughput %g", name, res.Throughput)
		}
	}
}

func TestUnknownScheduleError(t *testing.T) {
	_, err := New(WithModel("vgg19"), WithPolicy("ED"), WithSchedule("pipedream-2bw"))
	if !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("err = %v, want ErrUnknownSchedule", err)
	}
	if err == nil || !strings.Contains(err.Error(), "hetpipe-fifo") {
		t.Errorf("error %v should list the valid schedules", err)
	}
}

func TestRunConfigScheduleCompat(t *testing.T) {
	res, err := Run(Config{Model: "vgg19", Policy: "ED", Nm: 2, Schedule: "1f1b"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput %g", res.Throughput)
	}
	if _, err := Run(Config{Model: "vgg19", Policy: "ED", Schedule: "bogus"}); !errors.Is(err, ErrUnknownSchedule) {
		t.Errorf("compat Run err = %v, want ErrUnknownSchedule", err)
	}
}

func TestGanttWarmupOption(t *testing.T) {
	// Warmup must be validated against the rendered minibatch count.
	dep := ganttDeployment(t, WithWarmup(16))
	if _, err := dep.Gantt(0, 16, 100); err == nil {
		t.Error("warmup == minibatches should be rejected")
	}
	if _, err := dep.Gantt(0, 17, 100); err != nil {
		t.Errorf("warmup below minibatches rejected: %v", err)
	}
	// Negative warmup is rejected at New.
	if _, err := New(WithModel("vgg19"), WithPolicy("ED"), WithWarmup(-1)); err == nil {
		t.Error("negative warmup accepted by New")
	}
	// Warmup 0 is a valid, previously unreachable configuration.
	dep0 := ganttDeployment(t, WithWarmup(0))
	if _, err := dep0.Gantt(0, 8, 80); err != nil {
		t.Errorf("warmup 0: %v", err)
	}
}

func TestWriteChromeTraceAPI(t *testing.T) {
	dep := ganttDeployment(t)
	var buf bytes.Buffer
	if err := dep.WriteChromeTrace(&buf, 0, 8); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 4 thread names + at least one span per stage per minibatch.
	if len(out.TraceEvents) < 4+8 {
		t.Errorf("trace events = %d, want at least 12", len(out.TraceEvents))
	}
	if err := dep.WriteChromeTrace(&buf, 9, 8); err == nil {
		t.Error("out-of-range virtual worker accepted")
	}
}
