package data

import (
	"testing"
	"testing/quick"
)

func TestSyntheticDeterminism(t *testing.T) {
	a, err := SyntheticClassification(7, 100, 5, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticClassification(7, 100, 5, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("labels diverge at %d", i)
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("features diverge at %d/%d", i, j)
			}
		}
	}
	c, err := SyntheticClassification(8, 100, 5, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		if a.Y[i] != c.Y[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical label sequences")
	}
}

func TestSyntheticShapeAndBalance(t *testing.T) {
	d, err := SyntheticClassification(1, 300, 8, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 300 || d.Dim != 8 || d.Classes != 3 {
		t.Fatalf("shape = %d/%d/%d", d.Len(), d.Dim, d.Classes)
	}
	counts := make(map[int]int)
	for _, y := range d.Y {
		if y < 0 || y >= 3 {
			t.Fatalf("label out of range: %d", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Errorf("class %d has %d samples, want 100", c, n)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := SyntheticClassification(1, 1, 4, 3, 0.5); err == nil {
		t.Error("n < classes accepted")
	}
	if _, err := SyntheticClassification(1, 10, 0, 3, 0.5); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := SyntheticClassification(1, 10, 4, 1, 0.5); err == nil {
		t.Error("single class accepted")
	}
	if _, err := SyntheticClassification(1, 10, 4, 3, 0); err == nil {
		t.Error("zero noise accepted")
	}
}

func TestSplit(t *testing.T) {
	d, _ := SyntheticClassification(1, 100, 4, 2, 0.5)
	tr, ev, err := d.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 80 || ev.Len() != 20 {
		t.Fatalf("split = %d/%d", tr.Len(), ev.Len())
	}
	if _, _, err := d.Split(0); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, _, err := d.Split(1); err == nil {
		t.Error("unit fraction accepted")
	}
}

func TestBatchWrapsAround(t *testing.T) {
	d, _ := SyntheticClassification(1, 10, 2, 2, 0.5)
	idx := d.Batch(0, 4)
	if len(idx) != 4 || idx[0] != 0 || idx[3] != 3 {
		t.Fatalf("batch 0 = %v", idx)
	}
	// Batch 2 starts at sample 8 and wraps to 0,1.
	idx = d.Batch(2, 4)
	if idx[0] != 8 || idx[2] != 0 || idx[3] != 1 {
		t.Fatalf("batch 2 = %v", idx)
	}
}

// Property: every batch index is valid and batches of consecutive numbers
// tile the dataset.
func TestBatchProperty(t *testing.T) {
	d, _ := SyntheticClassification(3, 97, 3, 2, 0.4)
	prop := func(b uint16, szRaw uint8) bool {
		size := 1 + int(szRaw)%32
		idx := d.Batch(int(b), size)
		if len(idx) != size {
			return false
		}
		for _, i := range idx {
			if i < 0 || i >= d.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
