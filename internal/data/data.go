// Package data generates deterministic synthetic classification datasets for
// the convergence experiments. ImageNet is out of reach without the paper's
// testbed (and irrelevant to the staleness semantics under study), so the
// trainers learn a Gaussian-mixture classification task instead: class
// centers on a sphere, isotropic noise, fixed seeds. Accuracy targets in the
// experiments are task-relative analogs of the paper's 74%/67% top-1 goals.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/tensor"
)

// Dataset is a labeled feature matrix.
type Dataset struct {
	X       []tensor.Vector
	Y       []int
	Classes int
	Dim     int
}

// Len reports the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// SyntheticClassification draws n samples from a mixture of `classes`
// Gaussians with the given noise standard deviation. The same seed always
// yields the same dataset.
func SyntheticClassification(seed int64, n, dim, classes int, noise float64) (*Dataset, error) {
	if n < classes || dim < 1 || classes < 2 {
		return nil, fmt.Errorf("data: invalid shape n=%d dim=%d classes=%d", n, dim, classes)
	}
	if noise <= 0 {
		return nil, fmt.Errorf("data: noise must be positive, got %g", noise)
	}
	rng := rand.New(rand.NewSource(seed))
	centers := make([]tensor.Vector, classes)
	for c := range centers {
		centers[c] = tensor.NewVector(dim)
		var norm float64
		for i := range centers[c] {
			centers[c][i] = rng.NormFloat64()
			norm += centers[c][i] * centers[c][i]
		}
		norm = math.Sqrt(norm)
		for i := range centers[c] {
			centers[c][i] /= norm // unit-sphere centers
		}
	}
	d := &Dataset{Classes: classes, Dim: dim}
	for s := 0; s < n; s++ {
		c := s % classes // balanced classes
		x := tensor.NewVector(dim)
		for i := range x {
			x[i] = centers[c][i] + noise*rng.NormFloat64()
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	// Shuffle deterministically so minibatches mix classes.
	rng.Shuffle(n, func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
	return d, nil
}

// Split partitions the dataset into a training prefix and evaluation suffix.
func (d *Dataset) Split(trainFrac float64) (train, eval *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("data: train fraction must be in (0,1), got %g", trainFrac)
	}
	cut := int(float64(d.Len()) * trainFrac)
	if cut == 0 || cut == d.Len() {
		return nil, nil, fmt.Errorf("data: split produces an empty side (n=%d, frac=%g)", d.Len(), trainFrac)
	}
	train = &Dataset{X: d.X[:cut], Y: d.Y[:cut], Classes: d.Classes, Dim: d.Dim}
	eval = &Dataset{X: d.X[cut:], Y: d.Y[cut:], Classes: d.Classes, Dim: d.Dim}
	return train, eval, nil
}

// Batch returns the half-open index range of minibatch b of the given size,
// wrapping around the dataset (epochs).
func (d *Dataset) Batch(b, size int) []int {
	if size < 1 {
		panic("data: batch size must be positive")
	}
	idx := make([]int, size)
	start := (b * size) % d.Len()
	for i := range idx {
		idx[i] = (start + i) % d.Len()
	}
	return idx
}
