package pipeline

import (
	"sort"
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

func planFor(t *testing.T, m *model.Model, spec string, nm, batch int) (*hw.Cluster, *partition.Plan) {
	t.Helper()
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{spec})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.New(profile.Default()).Partition(c, m, a.VWs[0], nm, batch)
	if err != nil {
		t.Fatal(err)
	}
	return c, plan
}

func TestPipelineCompletesAllMinibatches(t *testing.T) {
	c, plan := planFor(t, model.VGG19(), "VVVV", 4, 32)
	res, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 20, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 20 {
		t.Fatalf("completions = %d, want 20", len(res.Completions))
	}
	if !sort.SliceIsSorted(res.Completions, func(i, j int) bool { return res.Completions[i] < res.Completions[j] }) {
		t.Error("completions out of order")
	}
	if res.Throughput <= 0 {
		t.Error("throughput must be positive")
	}
}

func TestPipelineNm1MatchesSerialExecution(t *testing.T) {
	// With Nm=1 the pipeline degenerates to naive model parallelism: the
	// time per minibatch is the sum of all stage and transfer times.
	c, plan := planFor(t, model.VGG19(), "VVVV", 1, 32)
	res, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 4, Warmup: 0})
	if err != nil {
		t.Fatal(err)
	}
	var per float64
	perf := profile.Default()
	for i, s := range plan.Stages {
		per += s.FwdTime + s.BwdTime
		if i+1 < len(plan.Stages) {
			kind := c.LinkBetween(plan.Stages[i].GPU, plan.Stages[i+1].GPU)
			per += 2 * perf.TransferTime(plan.Model.BoundaryBytes(s.Hi()-1, 32), kind)
		}
	}
	want := 4 * per
	got := float64(res.Elapsed)
	if diff := got/want - 1; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Nm=1 elapsed = %v, want %v (serial)", got, want)
	}
}

func TestPipelineThroughputImprovesWithNm(t *testing.T) {
	// The core Figure 3 behaviour: larger Nm increases throughput.
	var prev float64
	for _, nm := range []int{1, 2, 4} {
		c, plan := planFor(t, model.ResNet152(), "RRRR", nm, 32)
		res, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 40, Warmup: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= prev {
			t.Errorf("Nm=%d throughput %.1f <= previous %.1f", nm, res.Throughput, prev)
		}
		prev = res.Throughput
	}
}

func TestPipelineUtilizationImprovesWithNm(t *testing.T) {
	c1, plan1 := planFor(t, model.ResNet152(), "VVVV", 1, 32)
	r1, err := Run(Config{Plan: plan1, Cluster: c1, Perf: profile.Default(), Minibatches: 40, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	c4, plan4 := planFor(t, model.ResNet152(), "VVVV", 4, 32)
	r4, err := Run(Config{Plan: plan4, Cluster: c4, Perf: profile.Default(), Minibatches: 40, Warmup: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r4.MaxGPUUtil <= r1.MaxGPUUtil {
		t.Errorf("utilization should grow with Nm: Nm=1 %.2f, Nm=4 %.2f", r1.MaxGPUUtil, r4.MaxGPUUtil)
	}
	// With Nm=1 only one GPU works at a time; utilization stays low.
	if r1.MaxGPUUtil > 0.6 {
		t.Errorf("Nm=1 max utilization = %.2f, expected < 0.6", r1.MaxGPUUtil)
	}
}

func TestPipelineThroughputBoundedByBottleneck(t *testing.T) {
	c, plan := planFor(t, model.VGG19(), "VRGQ", 4, 32)
	res, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 60, Warmup: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ub := plan.ThroughputUpperBound(); res.Throughput > ub*1.001 {
		t.Errorf("throughput %.1f exceeds bottleneck bound %.1f", res.Throughput, ub)
	}
}

func TestPipelineSchedulingRules(t *testing.T) {
	// Conditions 1 and 2 of Section 4: per stage, forward passes execute in
	// minibatch order and backward passes execute in minibatch order.
	tr := trace.New(4)
	c, plan := planFor(t, model.ResNet152(), "VVQQ", 4, 32)
	_, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 24, Warmup: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		spans := tr.StageSpans(s)
		lastFwd, lastBwd := 0, 0
		for _, sp := range spans {
			switch sp.Kind {
			case trace.Forward:
				if sp.Minibatch != lastFwd+1 {
					t.Fatalf("stage %d: forward %d after forward %d", s, sp.Minibatch, lastFwd)
				}
				lastFwd = sp.Minibatch
			case trace.Backward:
				if sp.Minibatch != lastBwd+1 {
					t.Fatalf("stage %d: backward %d after backward %d", s, sp.Minibatch, lastBwd)
				}
				lastBwd = sp.Minibatch
			}
		}
		if lastFwd != 24 || lastBwd != 24 {
			t.Fatalf("stage %d: saw %d fwd, %d bwd spans, want 24 each", s, lastFwd, lastBwd)
		}
	}
}

func TestPipelineNoDeviceOverlap(t *testing.T) {
	// A GPU executes one task at a time.
	tr := trace.New(4)
	c, plan := planFor(t, model.VGG19(), "VVVV", 4, 32)
	_, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 16, Warmup: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		spans := tr.StageSpans(s)
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End-1e-12 {
				t.Fatalf("stage %d: span %d overlaps predecessor", s, i)
			}
		}
	}
}

func TestPipelineInflightNeverExceedsNm(t *testing.T) {
	for _, nm := range []int{1, 2, 3, 5} {
		c, plan := planFor(t, model.ResNet152(), "RRRR", nm, 32)
		eng := sim.New()
		pl, err := New(eng, Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 20, Warmup: 0})
		if err != nil {
			t.Fatal(err)
		}
		maxInflight := 0
		probe := func() {}
		probe = func() {
			if pl.inflight > maxInflight {
				maxInflight = pl.inflight
			}
			if pl.completed < 20 {
				eng.After(1e-3, "probe", probe)
			}
		}
		pl.Start()
		eng.After(0, "probe", probe)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if maxInflight > nm {
			t.Errorf("Nm=%d: observed %d in flight", nm, maxInflight)
		}
		if maxInflight != nm {
			t.Errorf("Nm=%d: pipeline never filled (max %d)", nm, maxInflight)
		}
	}
}

func TestPipelineInjectGate(t *testing.T) {
	// A gate that blocks minibatch 5 until released must stall the pipeline
	// at 4 completions, then Poke resumes it.
	c, plan := planFor(t, model.ResNet152(), "VVVV", 2, 32)
	eng := sim.New()
	allow := 4
	var pl *Pipeline
	var err error
	pl, err = New(eng, Config{
		Plan: plan, Cluster: c, Perf: profile.Default(),
		Minibatches: 8, Warmup: 0,
		InjectGate: func(p int) bool { return p <= allow },
	})
	if err != nil {
		t.Fatal(err)
	}
	pl.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.Completed() != 4 {
		t.Fatalf("completed = %d, want 4 (gated)", pl.Completed())
	}
	if !pl.Waiting() {
		t.Fatal("pipeline should report waiting on gate")
	}
	allow = 8
	pl.Poke()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if pl.Completed() != 8 {
		t.Fatalf("completed = %d, want 8 after release", pl.Completed())
	}
}

func TestPipelineOnComplete(t *testing.T) {
	c, plan := planFor(t, model.VGG19(), "RRRR", 3, 32)
	var order []int
	_, err := Run(Config{
		Plan: plan, Cluster: c, Perf: profile.Default(),
		Minibatches: 9, Warmup: 0,
		OnComplete: func(p int, at sim.Time) { order = append(order, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range order {
		if p != i+1 {
			t.Fatalf("completion order %v, want 1..9 in order", order)
		}
	}
}

func TestPipelineSingleGPUVW(t *testing.T) {
	// k=1: the whole model on one GPU, fused fwd+bwd per minibatch.
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"V"})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := partition.New(profile.Default()).Partition(c, model.VGG19(), a.VWs[0], 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 10, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Single V GPU on VGG-19: the 131 img/s anchor, no comm.
	if res.Throughput < 125 || res.Throughput > 135 {
		t.Errorf("single-GPU throughput = %.1f, want ~131", res.Throughput)
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	c, plan := planFor(t, model.VGG19(), "VVVV", 2, 32)
	if _, err := Run(Config{Plan: nil, Cluster: c, Perf: profile.Default(), Minibatches: 4}); err == nil {
		t.Error("nil plan should fail")
	}
	if _, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 0}); err == nil {
		t.Error("zero minibatches should fail")
	}
	if _, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 4, Warmup: 4}); err == nil {
		t.Error("warmup >= total should fail")
	}
}

func TestGanttRenders(t *testing.T) {
	tr := trace.New(4)
	c, plan := planFor(t, model.VGG19(), "VVVV", 4, 32)
	_, err := Run(Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 8, Warmup: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	g := tr.Gantt(100)
	if len(g) == 0 || g == "(empty trace)\n" {
		t.Fatal("empty gantt")
	}
}
