package pipeline

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
)

// BenchmarkPipelineSimulation measures the discrete-event cost of simulating
// 100 minibatches through a 4-stage heterogeneous pipeline.
func BenchmarkPipelineSimulation(b *testing.B) {
	c := hw.Paper()
	alloc, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := partition.New(profile.Default()).Partition(c, model.ResNet152(), alloc.VWs[0], 4, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Plan: plan, Cluster: c, Perf: profile.Default(),
			Minibatches: 100, Warmup: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
