package pipeline

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// BenchmarkPipelineSimulation measures the discrete-event cost of simulating
// 100 minibatches through a 4-stage heterogeneous pipeline.
func BenchmarkPipelineSimulation(b *testing.B) {
	c := hw.Paper()
	alloc, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := partition.New(profile.Default()).Partition(c, model.ResNet152(), alloc.VWs[0], 4, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Plan: plan, Cluster: c, Perf: profile.Default(),
			Minibatches: 100, Warmup: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSchedules measures the same 100-minibatch simulation
// under each schedule executor, so a regression in any runner's event count
// or allocation profile shows up against the committed BENCH_pipeline.json
// baseline.
func BenchmarkPipelineSchedules(b *testing.B) {
	c := hw.Paper()
	alloc, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		b.Fatal(err)
	}
	perf := profile.Default()
	for _, name := range sched.Names() {
		s, err := sched.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		pt := partition.NewSched(perf, s)
		if name == sched.NameInterleaved {
			// Bench the chunk routing proper, not its V=1 degenerate case.
			pt = partition.NewInterleaved(perf, s, 2)
		}
		plan, err := pt.Partition(c, model.ResNet152(), alloc.VWs[0], 4, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(Config{
					Plan: plan, Cluster: c, Perf: perf, Schedule: s,
					Minibatches: 100, Warmup: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
