package pipeline

import (
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// gpipeRunner is the gpipe schedule: fill-drain with a sync barrier per
// Nm-wave. A wave of up to Nm minibatches is injected, every forward runs to
// the last stage (receives serialize with compute, as in the paper's cost
// model), and only when the whole wave's forwards have finished does the
// drain start — backwards propagate from the last stage to the first, in
// minibatch order so the WSP wave-end push still fires after its
// predecessors complete. The next wave is injected only once the pipeline
// has fully drained, which is exactly why every stage stashes the whole
// wave's activations (sched.GPipe.StashCount == Nm) and why the pipeline
// idles during each fill and drain ramp.
//
// Completions run through two handlers registered once at construction, so
// the steady state schedules without allocating.
type gpipeRunner struct {
	pl    *Pipeline
	idFwd int32
	idBwd int32

	// waveTarget is the size of the open wave (0 = none open); waveStartP is
	// its first 1-based minibatch; waveInjected counts members injected so
	// far (the gate can defer the rest of a wave); fwdDone counts members
	// whose forward reached the end of the pipeline.
	waveTarget   int
	waveStartP   int
	waveInjected int
	fwdDone      int
}

func newGPipeRunner(pl *Pipeline) *gpipeRunner {
	r := &gpipeRunner{pl: pl}
	r.idFwd = pl.register(r.forwardDone)
	r.idBwd = pl.register(r.backwardDone)
	return r
}

func (r *gpipeRunner) poke() {
	pl := r.pl
	for {
		if r.waveTarget > 0 && r.waveInjected == r.waveTarget && pl.inflight == 0 {
			r.waveTarget = 0 // the wave has fully drained
		}
		if r.waveTarget == 0 {
			if pl.injected >= pl.cfg.Minibatches || pl.inflight > 0 {
				return
			}
			r.waveTarget = pl.cfg.Minibatches - pl.injected
			if r.waveTarget > pl.nm {
				r.waveTarget = pl.nm
			}
			r.waveStartP = pl.injected + 1
			r.waveInjected, r.fwdDone = 0, 0
		}
		for r.waveInjected < r.waveTarget {
			p := pl.injected + 1
			if pl.cfg.InjectGate != nil && !pl.cfg.InjectGate(p) {
				pl.waiting = true
				return
			}
			pl.waiting = false
			pl.injected++
			pl.inflight++
			r.waveInjected++
			r.forward(p, 0)
		}
		return
	}
}

// forward schedules the fill-phase forward of minibatch p on stage s; the
// duration includes receiving the input activations (serialized, like the
// paper's model).
//
//hetlint:hotpath
func (r *gpipeRunner) forward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	dur := pl.dur(p, s, st.RecvActTime+st.FwdTime)
	pl.gpus[s].SubmitID(dur, r.idFwd, int32(p), int32(s))
}

// forwardDone fires when a fill-phase forward finishes. When the last member
// of the wave finishes its forward on the last stage, the drain phase begins.
//
//hetlint:hotpath
func (r *gpipeRunner) forwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	if s == pl.k-1 {
		r.fwdDone++
		if r.fwdDone == r.waveTarget {
			// Fill barrier reached: drain the wave. Backwards enter the last
			// stage in minibatch order; each stage's FIFO queue keeps them
			// ordered on the way up.
			for q := r.waveStartP; q < r.waveStartP+r.waveTarget; q++ {
				r.backward(q, pl.k-1)
			}
		}
		return
	}
	r.forward(p, s+1)
}

// backward schedules the drain-phase backward of minibatch p on stage s; the
// duration includes receiving the boundary gradients (zero on the last
// stage, whose loss is local).
//
//hetlint:hotpath
func (r *gpipeRunner) backward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	dur := pl.dur(p, s, st.RecvGradTime+st.BwdTime)
	pl.gpus[s].SubmitID(dur, r.idBwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *gpipeRunner) backwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Backward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	if s == 0 {
		pl.complete(p)
		return
	}
	r.backward(p, s-1)
}
