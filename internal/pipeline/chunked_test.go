package pipeline

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/sim"
)

// planInterleaved partitions m for one VW under the interleaved schedule at
// degree v.
func planInterleaved(t *testing.T, cl *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, v, nm, batch int) *partition.Plan {
	t.Helper()
	plan, err := partition.NewInterleaved(profile.Default(), sched.Interleaved, v).Partition(cl, m, vw, nm, batch)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestInterleavedEpochAtMostFIFOOnPaperCluster is the Megatron-LM bubble
// claim made checkable on the paper cluster: cutting each GPU's model share
// into V chunks deepens the virtual pipeline (more round-trip boundary
// transfers, all overlapped with computation) while shrinking the per-device
// occupancy gaps, so with the WSP window wide enough to fill the deeper pipe
// (Nm = 2k) an interleaved V = 2 epoch finishes no later than the paper's
// serialized FIFO discipline.
//
// The claim is bandwidth-conditional, exactly as in Megatron: it holds where
// boundary activations are cheap relative to chunk compute. The two pinned
// instances were found by scanning the zoo x worker grid on the paper
// cluster — ResNet-152 (slim boundaries) on the cross-node ED worker VRGQ,
// and VGG-19 on the node-local QQQQ worker whose intra-node links absorb the
// fat early-conv activations. VGG-19 across the ED worker's IB links is the
// documented counterexample: 40-80 ms transfers dwarf 8-60 ms chunks and
// interleaving loses outright, which is why this test does not assert it.
func TestInterleavedEpochAtMostFIFOOnPaperCluster(t *testing.T) {
	perf := profile.Default()
	c := hw.Paper()
	cases := []struct {
		worker, model string
	}{
		{"VRGQ", "resnet152"},
		{"QQQQ", "vgg19"},
	}
	for _, tc := range cases {
		a, err := hw.AllocateByTypes(c, []string{tc.worker})
		if err != nil {
			t.Fatal(err)
		}
		vw := a.VWs[0]
		m, err := model.ByName(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		// One simulated epoch: enough minibatches that the fill/drain
		// transient does not decide the comparison either way.
		nm, epoch := 2*len(vw.GPUs), 192
		fifoPlan := planSched(t, c, m, vw, sched.FIFO, nm, 32)
		fifoRes, err := Run(Config{
			Plan: fifoPlan, Cluster: c, Perf: perf, Schedule: sched.FIFO,
			Minibatches: epoch,
		})
		if err != nil {
			t.Fatalf("%s/%s/fifo: %v", tc.worker, tc.model, err)
		}
		const v = 2
		plan := planInterleaved(t, c, m, vw, v, nm, 32)
		if plan.InterleaveDegree() != v {
			t.Fatalf("%s/%s: plan degree = %d, want %d", tc.worker, tc.model, plan.InterleaveDegree(), v)
		}
		res, err := Run(Config{
			Plan: plan, Cluster: c, Perf: perf, Schedule: sched.Interleaved,
			Minibatches: epoch,
		})
		if err != nil {
			t.Fatalf("%s/%s/interleaved v%d: %v", tc.worker, tc.model, v, err)
		}
		if float64(res.Elapsed) > float64(fifoRes.Elapsed)*(1+1e-12) {
			t.Errorf("%s/%s: interleaved v%d epoch %.4fs > fifo %.4fs",
				tc.worker, tc.model, v, float64(res.Elapsed), float64(fifoRes.Elapsed))
		}
	}
}

// TestTwoBWPeakMemoryBelowGPipe is the PipeDream-2BW memory claim made
// checkable: once Nm exceeds the stage depth, trading GPipe's Nm
// activation stashes for one extra weight version (2 versions + gradient
// buffer vs full-fill stashing) lowers the peak per-stage working set.
func TestTwoBWPeakMemoryBelowGPipe(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	vw := a.VWs[0]
	m := model.VGG19()
	perf := profile.Default()
	// Nm comfortably above the stage depth k=4, bounded by what GPipe's
	// full-fill stash can still fit on the paper worker.
	nm := partition.NewSched(perf, sched.GPipe).MaxNm(c, m, vw, 32, 8)
	if nm <= len(vw.GPUs) {
		t.Fatalf("gpipe MaxNm = %d, need > stage depth %d for the claim to bind", nm, len(vw.GPUs))
	}
	peak := func(s sched.Schedule) int64 {
		plan := planSched(t, c, m, vw, s, nm, 32)
		var max int64
		for i := range plan.Stages {
			if plan.Stages[i].MemoryBytes > max {
				max = plan.Stages[i].MemoryBytes
			}
		}
		return max
	}
	gpipePeak, twobwPeak := peak(sched.GPipe), peak(sched.TwoBW)
	if twobwPeak > gpipePeak {
		t.Errorf("2bw peak stage memory %d > gpipe %d at Nm=%d", twobwPeak, gpipePeak, nm)
	}
}

// TestEveryScheduleSteadyStateAllocFree asserts the pooled-engine contract
// for all six runners, the two chunked ones included: after a warmup run has
// grown the engine arena and the per-stage rings, re-running the pipeline
// allocates a fixed amount independent of the minibatch count — the steady
// state schedules without allocating.
func TestEveryScheduleSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not representative under the race detector")
	}
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	vw := a.VWs[0]
	m := model.VGG19()
	for _, name := range sched.Names() {
		s, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plan := planSched(t, c, m, vw, s, 4, 32)
		if name == sched.NameInterleaved {
			// Exercise the chunk routing proper, not its V=1 degenerate case.
			plan = planInterleaved(t, c, m, vw, 2, 4, 32)
		}
		measure := func(mbs int) float64 {
			eng := sim.New()
			cfg := Config{
				Plan: plan, Cluster: c, Perf: profile.Default(), Schedule: s,
				Minibatches: mbs, Warmup: 4,
			}
			if _, err := RunOn(eng, cfg); err != nil {
				t.Fatalf("%s: warm run: %v", name, err)
			}
			return testing.AllocsPerRun(5, func() {
				if _, err := RunOn(eng, cfg); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			})
		}
		short, long := measure(40), measure(120)
		if long > short {
			t.Errorf("%s: allocations grow with minibatch count (%.0f at 40 mbs, %.0f at 120)",
				name, short, long)
		}
	}
}
