package pipeline

import (
	"fmt"

	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// overlapRunner is the hetpipe-overlap schedule: HetPipe's FIFO injection
// discipline with PipeDream-style communication/computation overlap — the
// Section 9 improvement the paper leaves on the table. A receive no longer
// occupies the receiving GPU: the transfer runs as a pure delay (the link is
// modeled as a dedicated DMA channel), and only the compute time is charged
// to the stage's device. Transfers from a stage complete in minibatch order
// and take constant time per boundary, so compute tasks still arrive at each
// FIFO device queue in minibatch order — conditions 1–3 of Section 4 hold
// unchanged, which is why the same Nm and gate semantics apply.
type overlapRunner struct{ pl *Pipeline }

func (r *overlapRunner) poke() {
	r.pl.inject(func(p int) { r.forward(p, 0) })
}

// forward delivers minibatch p's activations to stage s (a pure transfer
// delay when s > 0) and then enqueues the compute-only forward task.
func (r *overlapRunner) forward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	compute := func() {
		if s == pl.k-1 {
			// Last partition: fused forward+backward, compute only.
			dur := pl.dur(p, s, st.FwdTime+st.BwdTime)
			pl.gpus[s].Submit(dur, fmt.Sprintf("fb%d", p), func() {
				mid := pl.eng.Now() - sim.Time(pl.time(p, s, st.BwdTime))
				pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(dur), mid)
				pl.traceAdd(s, p, trace.Backward, mid, pl.eng.Now())
				if s == 0 {
					pl.complete(p)
					return
				}
				r.backward(p, s-1)
			})
			return
		}
		dur := pl.dur(p, s, st.FwdTime)
		pl.gpus[s].Submit(dur, fmt.Sprintf("f%d", p), func() {
			pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(dur), pl.eng.Now())
			r.forward(p, s+1)
		})
	}
	if s > 0 && st.RecvActTime > 0 {
		start := pl.eng.Now()
		pl.eng.After(pl.dur(p, s, st.RecvActTime), fmt.Sprintf("recvA%d.%d", p, s), func() {
			pl.traceAdd(s, p, trace.Transfer, start, pl.eng.Now())
			compute()
		})
		return
	}
	compute()
}

// backward delivers minibatch p's boundary gradients to stage s and enqueues
// the compute-only backward task.
func (r *overlapRunner) backward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	compute := func() {
		dur := pl.dur(p, s, st.BwdTime)
		pl.gpus[s].Submit(dur, fmt.Sprintf("b%d", p), func() {
			pl.traceAdd(s, p, trace.Backward, pl.eng.Now()-sim.Time(dur), pl.eng.Now())
			if s == 0 {
				pl.complete(p)
				return
			}
			r.backward(p, s-1)
		})
	}
	if st.RecvGradTime > 0 {
		start := pl.eng.Now()
		pl.eng.After(pl.dur(p, s, st.RecvGradTime), fmt.Sprintf("recvG%d.%d", p, s), func() {
			pl.traceAdd(s, p, trace.Transfer, start, pl.eng.Now())
			compute()
		})
		return
	}
	compute()
}
