package pipeline

import (
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// overlapRunner is the hetpipe-overlap schedule: HetPipe's FIFO injection
// discipline with PipeDream-style communication/computation overlap — the
// Section 9 improvement the paper leaves on the table. A receive no longer
// occupies the receiving GPU: the transfer runs as a pure delay (the link is
// modeled as a dedicated DMA channel), and only the compute time is charged
// to the stage's device. Transfers from a stage complete in minibatch order
// and take constant time per boundary, so compute tasks still arrive at each
// FIFO device queue in minibatch order — conditions 1–3 of Section 4 hold
// unchanged, which is why the same Nm and gate semantics apply.
//
// Transfer arrivals run through two handlers registered on the engine at
// construction — a transfer event carries its own start time in the x
// payload so the Transfer trace span needs no closure — and task completions
// through three handlers registered once on every stage device.
type overlapRunner struct {
	pl      *Pipeline
	startFn func(p int)
	idAct   int32 // engine handler id: activation transfer arrival
	idGrad  int32 // engine handler id: gradient transfer arrival
	idFwd   int32
	idBwd   int32
	idFused int32
}

func newOverlapRunner(pl *Pipeline) *overlapRunner {
	r := &overlapRunner{pl: pl}
	r.startFn = r.start
	r.idAct = pl.eng.Register(r.actArrived)
	r.idGrad = pl.eng.Register(r.gradArrived)
	r.idFwd = pl.register(r.forwardDone)
	r.idBwd = pl.register(r.backwardDone)
	r.idFused = pl.register(r.fusedDone)
	return r
}

func (r *overlapRunner) poke() { r.pl.inject(r.startFn) }

func (r *overlapRunner) start(p int) { r.forward(p, 0) }

// forward delivers minibatch p's activations to stage s (a pure transfer
// delay when s > 0) and then enqueues the compute-only forward task.
//
//hetlint:hotpath
func (r *overlapRunner) forward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	if s > 0 && st.RecvActTime > 0 {
		start := pl.eng.Now()
		pl.eng.AfterID(pl.dur(p, s, st.RecvActTime), r.idAct, int32(p), int32(s), float64(start))
		return
	}
	r.computeForward(p, s)
}

//hetlint:hotpath
func (r *overlapRunner) actArrived(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Transfer, sim.Time(x), pl.eng.Now())
	r.computeForward(p, s)
}

// computeForward enqueues the compute-only forward task (fused with the
// backward on the last partition).
//
//hetlint:hotpath
func (r *overlapRunner) computeForward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	if s == pl.k-1 {
		dur := pl.dur(p, s, st.FwdTime+st.BwdTime)
		pl.gpus[s].SubmitID(dur, r.idFused, int32(p), int32(s))
		return
	}
	dur := pl.dur(p, s, st.FwdTime)
	pl.gpus[s].SubmitID(dur, r.idFwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *overlapRunner) fusedDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	mid := pl.eng.Now() - sim.Time(pl.time(p, s, pl.cfg.Plan.Stages[s].BwdTime))
	pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), mid)
	pl.traceAdd(s, p, trace.Backward, mid, pl.eng.Now())
	if s == 0 {
		pl.complete(p)
		return
	}
	r.backward(p, s-1)
}

//hetlint:hotpath
func (r *overlapRunner) forwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	r.forward(p, s+1)
}

// backward delivers minibatch p's boundary gradients to stage s and enqueues
// the compute-only backward task.
//
//hetlint:hotpath
func (r *overlapRunner) backward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	if st.RecvGradTime > 0 {
		start := pl.eng.Now()
		pl.eng.AfterID(pl.dur(p, s, st.RecvGradTime), r.idGrad, int32(p), int32(s), float64(start))
		return
	}
	r.computeBackward(p, s)
}

//hetlint:hotpath
func (r *overlapRunner) gradArrived(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Transfer, sim.Time(x), pl.eng.Now())
	r.computeBackward(p, s)
}

//hetlint:hotpath
func (r *overlapRunner) computeBackward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	dur := pl.dur(p, s, st.BwdTime)
	pl.gpus[s].SubmitID(dur, r.idBwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *overlapRunner) backwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	pl.traceAdd(s, p, trace.Backward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	if s == 0 {
		pl.complete(p)
		return
	}
	r.backward(p, s-1)
}
