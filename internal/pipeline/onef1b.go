package pipeline

import (
	"fmt"

	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// oneF1BRunner is the 1f1b schedule: strict one-forward-one-backward
// (PipeDream / Narayanan et al.). Each stage s admits at most k-s forwards
// before it must retire a backward — the per-stage warmup is k-s-1 forwards
// deep, after which the stage alternates backward and forward work
// (backward-first when both are ready, which is what produces the strict
// alternation in steady state). The bound is what shrinks the activation
// footprint to at most stage-depth stashes (sched.OneF1B.StashCount) and
// lets a memory-constrained virtual worker admit a larger Nm than under
// HetPipe's FIFO. Receives serialize with compute, as in the paper's cost
// model; the last stage fuses forward and backward like the FIFO executor.
type oneF1BRunner struct {
	pl     *Pipeline
	stages []f1bStage
}

// f1bStage is one stage's scheduling state. pendingF and pendingB hold
// minibatches whose inputs have arrived, in arrival (== minibatch) order;
// outstanding counts forwards run but not yet retired by a backward here.
type f1bStage struct {
	busy        bool
	outstanding int
	pendingF    []int
	pendingB    []int
}

func newOneF1BRunner(pl *Pipeline) *oneF1BRunner {
	return &oneF1BRunner{pl: pl, stages: make([]f1bStage, pl.k)}
}

func (r *oneF1BRunner) poke() {
	r.pl.inject(func(p int) {
		r.stages[0].pendingF = append(r.stages[0].pendingF, p)
	})
	r.trySchedule(0)
}

// trySchedule picks the next task for stage s under the 1F1B discipline:
// backward if one is ready (retiring a stash), otherwise a forward as long
// as the stage stays within its k-s outstanding bound.
func (r *oneF1BRunner) trySchedule(s int) {
	pl := r.pl
	st := &r.stages[s]
	if st.busy {
		return
	}
	switch {
	case len(st.pendingB) > 0:
		p := st.pendingB[0]
		st.pendingB = st.pendingB[1:]
		r.runBackward(p, s)
	case len(st.pendingF) > 0 && st.outstanding < pl.k-s:
		p := st.pendingF[0]
		st.pendingF = st.pendingF[1:]
		r.runForward(p, s)
	}
}

// runForward executes minibatch p's forward on stage s (fused with the
// backward on the last stage); the duration includes receiving the input
// activations.
func (r *oneF1BRunner) runForward(p, s int) {
	pl := r.pl
	st := &r.stages[s]
	stage := &pl.cfg.Plan.Stages[s]
	st.busy = true
	if s == pl.k-1 {
		dur := pl.dur(p, s, stage.RecvActTime+stage.FwdTime+stage.BwdTime)
		pl.gpus[s].Submit(dur, fmt.Sprintf("fb%d", p), func() {
			mid := pl.eng.Now() - sim.Time(pl.time(p, s, stage.BwdTime))
			pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(dur), mid)
			pl.traceAdd(s, p, trace.Backward, mid, pl.eng.Now())
			st.busy = false
			if s == 0 {
				pl.complete(p)
			} else {
				r.stages[s-1].pendingB = append(r.stages[s-1].pendingB, p)
				r.trySchedule(s - 1)
			}
			r.trySchedule(s)
		})
		return
	}
	dur := pl.dur(p, s, stage.RecvActTime+stage.FwdTime)
	pl.gpus[s].Submit(dur, fmt.Sprintf("f%d", p), func() {
		pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(dur), pl.eng.Now())
		st.busy = false
		st.outstanding++
		r.stages[s+1].pendingF = append(r.stages[s+1].pendingF, p)
		r.trySchedule(s + 1)
		r.trySchedule(s)
	})
}

// runBackward executes minibatch p's backward on stage s (s < k-1); the
// duration includes receiving the boundary gradients.
func (r *oneF1BRunner) runBackward(p, s int) {
	pl := r.pl
	st := &r.stages[s]
	stage := &pl.cfg.Plan.Stages[s]
	st.busy = true
	dur := pl.dur(p, s, stage.RecvGradTime+stage.BwdTime)
	pl.gpus[s].Submit(dur, fmt.Sprintf("b%d", p), func() {
		pl.traceAdd(s, p, trace.Backward, pl.eng.Now()-sim.Time(dur), pl.eng.Now())
		st.busy = false
		st.outstanding--
		if s == 0 {
			pl.complete(p)
		} else {
			r.stages[s-1].pendingB = append(r.stages[s-1].pendingB, p)
			r.trySchedule(s - 1)
		}
		r.trySchedule(s)
	})
}
