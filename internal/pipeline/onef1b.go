package pipeline

import (
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// oneF1BRunner is the 1f1b schedule: strict one-forward-one-backward
// (PipeDream / Narayanan et al.). Each stage s admits at most k-s forwards
// before it must retire a backward — the per-stage warmup is k-s-1 forwards
// deep, after which the stage alternates backward and forward work
// (backward-first when both are ready, which is what produces the strict
// alternation in steady state). The bound is what shrinks the activation
// footprint to at most stage-depth stashes (sched.OneF1B.StashCount) and
// lets a memory-constrained virtual worker admit a larger Nm than under
// HetPipe's FIFO. Receives serialize with compute, as in the paper's cost
// model; the last stage fuses forward and backward like the FIFO executor.
//
// Completions run through three handlers registered once at construction,
// and the per-stage pending lists are head-indexed rings over reusable
// backing slices, so the steady state schedules without allocating.
type oneF1BRunner struct {
	pl      *Pipeline
	stages  []f1bStage
	startFn func(p int)
	idFwd   int32
	idBwd   int32
	idFused int32
}

// f1bStage is one stage's scheduling state. pendingF and pendingB hold
// minibatches whose inputs have arrived, in arrival (== minibatch) order,
// as head-indexed rings; outstanding counts forwards run but not yet
// retired by a backward here.
type f1bStage struct {
	busy        bool
	outstanding int
	pendingF    []int32
	fHead       int
	pendingB    []int32
	bHead       int
}

func (st *f1bStage) pushF(p int32) { st.pendingF = append(st.pendingF, p) }
func (st *f1bStage) pushB(p int32) { st.pendingB = append(st.pendingB, p) }
func (st *f1bStage) lenF() int     { return len(st.pendingF) - st.fHead }
func (st *f1bStage) lenB() int     { return len(st.pendingB) - st.bHead }

func (st *f1bStage) popF() int32 {
	p := st.pendingF[st.fHead]
	st.fHead++
	if st.fHead == len(st.pendingF) {
		st.pendingF = st.pendingF[:0]
		st.fHead = 0
	}
	return p
}

func (st *f1bStage) popB() int32 {
	p := st.pendingB[st.bHead]
	st.bHead++
	if st.bHead == len(st.pendingB) {
		st.pendingB = st.pendingB[:0]
		st.bHead = 0
	}
	return p
}

func newOneF1BRunner(pl *Pipeline) *oneF1BRunner {
	r := &oneF1BRunner{pl: pl, stages: make([]f1bStage, pl.k)}
	r.startFn = r.start
	r.idFwd = pl.register(r.forwardDone)
	r.idBwd = pl.register(r.backwardDone)
	r.idFused = pl.register(r.fusedDone)
	return r
}

func (r *oneF1BRunner) poke() {
	r.pl.inject(r.startFn)
	r.trySchedule(0)
}

func (r *oneF1BRunner) start(p int) { r.stages[0].pushF(int32(p)) }

// trySchedule picks the next task for stage s under the 1F1B discipline:
// backward if one is ready (retiring a stash), otherwise a forward as long
// as the stage stays within its k-s outstanding bound.
//
//hetlint:hotpath
func (r *oneF1BRunner) trySchedule(s int) {
	pl := r.pl
	st := &r.stages[s]
	if st.busy {
		return
	}
	switch {
	case st.lenB() > 0:
		r.runBackward(int(st.popB()), s)
	case st.lenF() > 0 && st.outstanding < pl.k-s:
		r.runForward(int(st.popF()), s)
	}
}

// runForward executes minibatch p's forward on stage s (fused with the
// backward on the last stage); the duration includes receiving the input
// activations.
//
//hetlint:hotpath
func (r *oneF1BRunner) runForward(p, s int) {
	pl := r.pl
	st := &r.stages[s]
	stage := &pl.cfg.Plan.Stages[s]
	st.busy = true
	if s == pl.k-1 {
		dur := pl.dur(p, s, stage.RecvActTime+stage.FwdTime+stage.BwdTime)
		pl.gpus[s].SubmitID(dur, r.idFused, int32(p), int32(s))
		return
	}
	dur := pl.dur(p, s, stage.RecvActTime+stage.FwdTime)
	pl.gpus[s].SubmitID(dur, r.idFwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *oneF1BRunner) fusedDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	st := &r.stages[s]
	mid := pl.eng.Now() - sim.Time(pl.time(p, s, pl.cfg.Plan.Stages[s].BwdTime))
	pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), mid)
	pl.traceAdd(s, p, trace.Backward, mid, pl.eng.Now())
	st.busy = false
	if s == 0 {
		pl.complete(p)
	} else {
		r.stages[s-1].pushB(int32(p))
		r.trySchedule(s - 1)
	}
	r.trySchedule(s)
}

//hetlint:hotpath
func (r *oneF1BRunner) forwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	st := &r.stages[s]
	pl.traceAdd(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	st.busy = false
	st.outstanding++
	r.stages[s+1].pushF(int32(p))
	r.trySchedule(s + 1)
	r.trySchedule(s)
}

// runBackward executes minibatch p's backward on stage s (s < k-1); the
// duration includes receiving the boundary gradients.
//
//hetlint:hotpath
func (r *oneF1BRunner) runBackward(p, s int) {
	pl := r.pl
	st := &r.stages[s]
	stage := &pl.cfg.Plan.Stages[s]
	st.busy = true
	dur := pl.dur(p, s, stage.RecvGradTime+stage.BwdTime)
	pl.gpus[s].SubmitID(dur, r.idBwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *oneF1BRunner) backwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	st := &r.stages[s]
	pl.traceAdd(s, p, trace.Backward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	st.busy = false
	st.outstanding--
	if s == 0 {
		pl.complete(p)
	} else {
		r.stages[s-1].pushB(int32(p))
		r.trySchedule(s - 1)
	}
	r.trySchedule(s)
}
