// Package pipeline executes Pipelined Model Parallelism within one virtual
// worker on the discrete-event simulator. The execution discipline is
// pluggable (Config.Schedule, see internal/sched); the default is the
// paper's own, following Section 4:
//
//   - up to Nm minibatches are in flight concurrently; a new minibatch is
//     injected as soon as one completes (and any external gate admits it);
//   - forward passes of a stage execute in minibatch order, as do backward
//     passes (conditions 1 and 2), with FIFO scheduling among ready tasks
//     (condition 3) — the natural consequence of FIFO device queues fed by
//     in-order upstream completions;
//   - on the last partition, the forward and backward passes of a minibatch
//     run as a single fused task;
//   - activations flow downstream and local gradients upstream; receiving a
//     transfer serializes with computation on the receiving GPU, matching
//     the paper's partition cost model (Section 7 defines a partition's
//     execution time as computation plus the time to *receive* activations
//     and gradients, and Section 9 notes that PipeDream-style
//     communication/computation overlap would be a further improvement —
//     i.e. HetPipe does not overlap them).
//
// Five further schedules relax those choices: "gpipe" runs fill-drain waves
// with a sync barrier between fill and drain, "1f1b" runs the strict
// one-forward-one-backward steady state (holding at most stage-depth
// activations), "hetpipe-overlap" keeps the FIFO discipline but overlaps
// receives with computation — the Section 9 improvement — "interleaved" runs
// Megatron-LM's virtual-stage 1F1B over the plan's k*V chunk placement with
// overlapped transfers, and "2bw" runs PipeDream-2BW's double-buffered
// variant of 1F1B (its divergence from 1f1b is the memory model, not the
// task graph). Every schedule honors the same InjectGate/OnComplete
// contract, so WSP couples them all.
//
// The package reports steady-state throughput, per-GPU utilization, and an
// optional execution trace (Figure 1).
package pipeline

import (
	"fmt"

	"hetpipe/internal/hw"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// Config parameterizes one virtual worker's pipeline run.
type Config struct {
	// Plan is the stage assignment from the partitioner.
	Plan *partition.Plan
	// Cluster classifies links between stage GPUs.
	Cluster *hw.Cluster
	// Perf supplies transfer times.
	Perf *profile.Perf
	// Schedule selects the execution discipline; nil means sched.Default()
	// (hetpipe-fifo, the paper's Section 4 behavior).
	Schedule sched.Schedule
	// Minibatches is the total number of minibatches to process.
	Minibatches int
	// Warmup minibatches are excluded from the throughput measurement.
	Warmup int
	// Trace, when non-nil, records the execution schedule.
	Trace *trace.Trace
	// TaskTime, when non-nil, adjusts the duration of every scheduled stage
	// task (and overlap-schedule transfer) of minibatch p on stage s: it
	// receives the schedule's base duration in seconds and returns the one to
	// use. Fault injection (internal/fault) threads straggler slowdowns and
	// crash downtime through this hook; nil means identity, and every
	// schedule produces bit-identical timings with a nil or identity hook.
	TaskTime func(p, s int, base float64) float64
	// InjectGate, when non-nil, is consulted before injecting minibatch p
	// (1-based). Returning false defers the injection until Poke is called;
	// WSP uses this to enforce the clock-distance bound D.
	InjectGate func(p int) bool
	// OnComplete, when non-nil, fires when minibatch p finishes its backward
	// pass on the first stage (the minibatch's completion point).
	OnComplete func(p int, at sim.Time)
}

// Result summarizes a pipeline run.
type Result struct {
	// Throughput is samples/second measured after warmup.
	Throughput float64
	// Elapsed is the simulated time at the last completion.
	Elapsed sim.Time
	// GPUUtil is per-stage device utilization over the whole run.
	GPUUtil []float64
	// MaxGPUUtil is the maximum entry of GPUUtil — the Figure 3 metric.
	MaxGPUUtil float64
	// Completions holds each minibatch's completion time, in order.
	Completions []sim.Time
}

// runner is the schedule-specific injection-and-task-graph strategy behind a
// Pipeline. poke drives the injection loop (initial fill, gate retries, and
// refills after completions); the shared bookkeeping lives on Pipeline.
type runner interface {
	poke()
}

// Pipeline is the live simulation object for one virtual worker.
type Pipeline struct {
	cfg   Config
	eng   *sim.Engine
	k     int
	nm    int // in-flight cap: Schedule.InFlightCap(k*V, Plan.Nm)
	batch int

	gpus []*sim.Resource // compute engine per stage

	injected  int // minibatches injected so far
	completed int // minibatches fully done
	inflight  int
	waiting   bool // an injection is blocked on the gate
	finished  []sim.Time

	run runner
}

// New builds the pipeline on the engine. Start must be called to begin.
func New(eng *sim.Engine, cfg Config) (*Pipeline, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("pipeline: nil plan")
	}
	if cfg.Minibatches < 1 {
		return nil, fmt.Errorf("pipeline: need at least one minibatch")
	}
	if cfg.Warmup >= cfg.Minibatches {
		return nil, fmt.Errorf("pipeline: warmup %d >= total %d", cfg.Warmup, cfg.Minibatches)
	}
	cfg.Schedule = sched.Or(cfg.Schedule)
	k := len(cfg.Plan.Stages)
	if cfg.Plan.InterleaveDegree() > 1 && !cfg.Schedule.SupportsInterleave() {
		return nil, fmt.Errorf("pipeline: schedule %q cannot run an interleaved plan (V=%d)",
			cfg.Schedule.Name(), cfg.Plan.InterleaveDegree())
	}
	pl := &Pipeline{
		cfg:   cfg,
		eng:   eng,
		k:     k,
		nm:    cfg.Schedule.InFlightCap(k*cfg.Plan.InterleaveDegree(), cfg.Plan.Nm),
		batch: cfg.Plan.Batch,
	}
	pl.gpus = make([]*sim.Resource, 0, k)
	pl.finished = make([]sim.Time, 0, cfg.Minibatches)
	for s := 0; s < k; s++ {
		pl.gpus = append(pl.gpus, sim.NewResource(eng, fmt.Sprintf("gpu%d", s)))
	}
	switch cfg.Schedule.Name() {
	case sched.NameFIFO:
		pl.run = newFifoRunner(pl)
	case sched.NameOverlap:
		pl.run = newOverlapRunner(pl)
	case sched.NameGPipe:
		pl.run = newGPipeRunner(pl)
	case sched.NameOneF1B:
		pl.run = newOneF1BRunner(pl)
	case sched.NameInterleaved:
		pl.run = newChunkRunner(pl, true)
	case sched.NameTwoBW:
		pl.run = newChunkRunner(pl, false)
	default:
		return nil, fmt.Errorf("pipeline: no executor for schedule %q", cfg.Schedule.Name())
	}
	return pl, nil
}

// Schedule reports the resolved execution discipline.
func (pl *Pipeline) Schedule() sched.Schedule { return pl.cfg.Schedule }

// Start injects the initial window of minibatches.
func (pl *Pipeline) Start() { pl.Poke() }

// Poke retries a gated injection; WSP calls it when global state advances.
func (pl *Pipeline) Poke() { pl.run.poke() }

// Waiting reports whether an injection is currently blocked on the gate.
func (pl *Pipeline) Waiting() bool { return pl.waiting }

// Completed reports how many minibatches have fully finished.
func (pl *Pipeline) Completed() int { return pl.completed }

// InFlight reports how many minibatches are currently in the pipeline.
func (pl *Pipeline) InFlight() int { return pl.inflight }

// inject runs the shared gated-injection loop: while the in-flight window
// has room and minibatches remain, consult the gate, account the waiting
// flag, and hand each admitted minibatch to start. Every runner except
// gpipe (whose wave barrier changes the loop condition) drives its poke
// through this, so gate semantics cannot silently diverge per schedule.
func (pl *Pipeline) inject(start func(p int)) {
	for pl.inflight < pl.nm && pl.injected < pl.cfg.Minibatches {
		p := pl.injected + 1 // 1-based minibatch number
		if pl.cfg.InjectGate != nil && !pl.cfg.InjectGate(p) {
			pl.waiting = true
			return
		}
		pl.waiting = false
		pl.injected++
		pl.inflight++
		start(p)
	}
}

// complete marks minibatch p done: its backward pass reached stage 0 and the
// virtual worker applied the local update (Section 4's wlocal += up).
//
//hetlint:hotpath
func (pl *Pipeline) complete(p int) {
	pl.completed++
	pl.inflight--
	pl.finished = append(pl.finished, pl.eng.Now())
	if pl.cfg.OnComplete != nil {
		pl.cfg.OnComplete(p, pl.eng.Now())
	}
	pl.Poke()
}

// time resolves the actual duration of a stage task through the TaskTime
// hook; with no hook installed the base duration passes through unchanged.
func (pl *Pipeline) time(p, s int, base float64) float64 {
	if pl.cfg.TaskTime == nil {
		return base
	}
	return pl.cfg.TaskTime(p, s, base)
}

// dur is time as a sim.Duration, for Submit and After sites.
func (pl *Pipeline) dur(p, s int, base float64) sim.Duration {
	return sim.Duration(pl.time(p, s, base))
}

// register binds a completion handler on every stage device. Handlers are
// registered in the same order on every resource, so the returned id is
// valid for all of them.
func (pl *Pipeline) register(fn sim.EventFunc) int32 {
	var id int32
	for _, g := range pl.gpus {
		id = g.Register(fn)
	}
	return id
}

// traceAdd records a span when tracing is enabled.
func (pl *Pipeline) traceAdd(stage, p int, kind trace.SpanKind, start, end sim.Time) {
	if pl.cfg.Trace != nil {
		pl.cfg.Trace.Add(stage, p, kind, start, end)
	}
}

// Result summarizes the run; call after the engine has drained.
func (pl *Pipeline) Result() (*Result, error) {
	if pl.completed != pl.cfg.Minibatches {
		return nil, fmt.Errorf("pipeline: %d of %d minibatches completed (deadlock or gate starvation)",
			pl.completed, pl.cfg.Minibatches)
	}
	r := &Result{Completions: pl.finished, Elapsed: pl.finished[len(pl.finished)-1]}
	for s, g := range pl.gpus {
		u := float64(g.BusyTime()) / float64(r.Elapsed)
		r.GPUUtil = append(r.GPUUtil, u)
		if u > r.MaxGPUUtil {
			r.MaxGPUUtil = u
		}
		_ = s
	}
	// Steady-state throughput: samples completed after warmup over the time
	// from the warmup-th completion to the last.
	w := pl.cfg.Warmup
	if w == 0 {
		r.Throughput = float64(pl.cfg.Minibatches*pl.batch) / float64(r.Elapsed)
		return r, nil
	}
	span := float64(r.Completions[len(r.Completions)-1] - r.Completions[w-1])
	if span <= 0 {
		return nil, fmt.Errorf("pipeline: degenerate measurement window")
	}
	r.Throughput = float64((pl.cfg.Minibatches-w)*pl.batch) / span
	return r, nil
}

// Run is the one-shot convenience: build, start, drain, summarize.
func Run(cfg Config) (*Result, error) {
	return RunOn(sim.New(), cfg)
}

// RunOn is Run on a caller-provided engine, which is Reset first: a warm
// engine keeps its grown event arena and heap across runs, so sweeps that
// re-simulate thousands of configurations pay the allocation cost once.
// Results are identical to Run on a fresh engine.
func RunOn(eng *sim.Engine, cfg Config) (*Result, error) {
	eng.Reset()
	eng.SetStepLimit(uint64(cfg.Minibatches)*1000 + 100000)
	pl, err := New(eng, cfg)
	if err != nil {
		return nil, err
	}
	pl.Start()
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return pl.Result()
}

// fifoRunner is the paper's Section 4 discipline — the original executor,
// kept numerically identical: same scheduling order, same fused last stage.
// All task completions flow through three handlers registered once at
// construction, so the steady state schedules without allocating; the x
// payload of each completion is the task's exact submitted duration, from
// which the trace reconstructs span starts bit-identically.
type fifoRunner struct {
	pl      *Pipeline
	startFn func(p int)
	idFwd   int32
	idBwd   int32
	idFused int32
}

func newFifoRunner(pl *Pipeline) *fifoRunner {
	r := &fifoRunner{pl: pl}
	r.startFn = r.start
	r.idFwd = pl.register(r.forwardDone)
	r.idBwd = pl.register(r.backwardDone)
	r.idFused = pl.register(r.fusedDone)
	return r
}

func (r *fifoRunner) poke() { r.pl.inject(r.startFn) }

func (r *fifoRunner) start(p int) { r.forward(p, 0) }

// forward schedules the forward pass of minibatch p on stage s. The task's
// duration includes the time to receive the input activations from the
// previous stage (RecvActTime), which serializes with computation.
//
//hetlint:hotpath
func (r *fifoRunner) forward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	if s == pl.k-1 {
		// Last partition: forward immediately followed by backward, one task.
		dur := pl.dur(p, s, st.RecvActTime+st.FwdTime+st.BwdTime)
		pl.gpus[s].SubmitID(dur, r.idFused, int32(p), int32(s))
		return
	}
	dur := pl.dur(p, s, st.RecvActTime+st.FwdTime)
	pl.gpus[s].SubmitID(dur, r.idFwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *fifoRunner) fusedDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	if pl.cfg.Trace != nil {
		now := pl.eng.Now()
		mid := now - sim.Time(pl.time(p, s, pl.cfg.Plan.Stages[s].BwdTime))
		pl.cfg.Trace.Add(s, p, trace.Forward, now-sim.Time(x), mid)
		pl.cfg.Trace.Add(s, p, trace.Backward, mid, now)
	}
	r.sendGrad(p, s)
}

//hetlint:hotpath
func (r *fifoRunner) forwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	if pl.cfg.Trace != nil {
		pl.cfg.Trace.Add(s, p, trace.Forward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	}
	// The send itself is asynchronous for the sender; the receive cost is
	// charged to the downstream stage's task.
	r.forward(p, s+1)
}

// backward schedules the backward pass of minibatch p on stage s (s < k-1;
// the last stage's backward is fused into its forward task). The task's
// duration includes receiving the gradients from the next stage.
//
//hetlint:hotpath
func (r *fifoRunner) backward(p, s int) {
	pl := r.pl
	st := &pl.cfg.Plan.Stages[s]
	dur := pl.dur(p, s, st.RecvGradTime+st.BwdTime)
	pl.gpus[s].SubmitID(dur, r.idBwd, int32(p), int32(s))
}

//hetlint:hotpath
func (r *fifoRunner) backwardDone(a, b int32, x float64) {
	pl := r.pl
	p, s := int(a), int(b)
	if pl.cfg.Trace != nil {
		pl.cfg.Trace.Add(s, p, trace.Backward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	}
	if s == 0 {
		pl.complete(p)
		return
	}
	r.sendGrad(p, s)
}

// sendGrad propagates minibatch p's boundary gradients from stage s to s-1.
//
//hetlint:hotpath
func (r *fifoRunner) sendGrad(p, s int) {
	if s == 0 {
		r.pl.complete(p)
		return
	}
	r.backward(p, s-1)
}
