//go:build !race

package pipeline

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation-count pins are meaningless under it.
const raceEnabled = false
