package pipeline

import (
	"sort"
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// planSched partitions m for one VW of the allocation under a schedule.
func planSched(t *testing.T, cl *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, s sched.Schedule, nm, batch int) *partition.Plan {
	t.Helper()
	plan, err := partition.NewSched(profile.Default(), s).Partition(cl, m, vw, nm, batch)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestFIFOGoldenSolo pins the hetpipe-fifo schedule to the exact numbers the
// pre-refactor monolithic executor produced (captured at the commit that
// introduced the schedule subsystem): the refactor must be bit-identical for
// the paper's own discipline.
func TestFIFOGoldenSolo(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSched(t, c, model.VGG19(), a.VWs[0], sched.FIFO, 4, 32)
	wantMem := []int64{8119902720, 1244667904, 978325504, 2008962880}
	for i, m := range wantMem {
		if plan.Stages[i].MemoryBytes != m {
			t.Errorf("stage %d memory = %d, want %d", i, plan.Stages[i].MemoryBytes, m)
		}
	}
	res, err := Run(Config{
		Plan: plan, Cluster: c, Perf: profile.Default(), Schedule: sched.FIFO,
		Minibatches: 24, Warmup: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != 196.23656852453149 {
		t.Errorf("throughput = %.17g, want 196.23656852453149 (golden)", res.Throughput)
	}
	if float64(res.Elapsed) != 4.2950657465036963 {
		t.Errorf("elapsed = %.17g, want 4.2950657465036963 (golden)", float64(res.Elapsed))
	}
	if res.MaxGPUUtil != 0.89348123376989608 {
		t.Errorf("max util = %.17g, want 0.89348123376989608 (golden)", res.MaxGPUUtil)
	}
}

// TestNilScheduleIsFIFO checks that leaving Config.Schedule nil runs the
// paper's discipline, bit-identical to naming it explicitly.
func TestNilScheduleIsFIFO(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	plan := planSched(t, c, model.VGG19(), a.VWs[0], nil, 4, 32)
	if plan.Schedule != sched.NameFIFO {
		t.Errorf("plan schedule = %q, want %q", plan.Schedule, sched.NameFIFO)
	}
	base := Config{Plan: plan, Cluster: c, Perf: profile.Default(), Minibatches: 16, Warmup: 2}
	implicit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withFIFO := base
	withFIFO.Schedule = sched.FIFO
	explicit, err := Run(withFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Throughput != explicit.Throughput || implicit.Elapsed != explicit.Elapsed {
		t.Errorf("nil schedule (%.17g, %v) differs from explicit FIFO (%.17g, %v)",
			implicit.Throughput, implicit.Elapsed, explicit.Throughput, explicit.Elapsed)
	}
}

// TestEveryScheduleCompletesInOrder runs each schedule over a heterogeneous
// pipeline and checks the shared executor contract: every minibatch
// completes, completion times are monotone, and throughput is positive.
func TestEverySchedulesCompletesInOrder(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sched.Names() {
		s, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plan := planSched(t, c, model.VGG19(), a.VWs[0], s, 4, 32)
		res, err := Run(Config{
			Plan: plan, Cluster: c, Perf: profile.Default(), Schedule: s,
			Minibatches: 20, Warmup: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Completions) != 20 {
			t.Errorf("%s: completions = %d, want 20", name, len(res.Completions))
		}
		if !sort.SliceIsSorted(res.Completions, func(i, j int) bool { return res.Completions[i] < res.Completions[j] }) {
			t.Errorf("%s: completions out of order", name)
		}
		if res.Throughput <= 0 {
			t.Errorf("%s: throughput %g, want > 0", name, res.Throughput)
		}
	}
}

// TestSchedulesOnSingleStageWorker exercises the k=1 degenerate pipeline
// (an NP-style single-GPU virtual worker) under every schedule.
func TestSchedulesOnSingleStageWorker(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"V"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range sched.Names() {
		s, _ := sched.ByName(name)
		plan := planSched(t, c, model.ResNet50(), a.VWs[0], s, 2, 32)
		res, err := Run(Config{
			Plan: plan, Cluster: c, Perf: profile.Default(), Schedule: s,
			Minibatches: 8, Warmup: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Completions) != 8 {
			t.Errorf("%s: completions = %d, want 8", name, len(res.Completions))
		}
	}
}

// TestOverlapAtLeastFIFOOnEveryCatalogCluster is the Section 9 claim made
// checkable: communication/computation overlap never loses to serialized
// receives — on every catalog cluster, for both paper models, the overlap
// schedule's solo throughput is at least FIFO's at the same plan and Nm.
func TestOverlapAtLeastFIFOOnEveryCatalogCluster(t *testing.T) {
	perf := profile.Default()
	for _, ci := range hw.ClusterCatalog() {
		cl, err := hw.ClusterByName(ci.Name)
		if err != nil {
			t.Fatal(err)
		}
		var alloc *hw.Allocation
		for _, pol := range hw.Policies() {
			if a, err := hw.Allocate(cl, pol); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Fatalf("%s: no feasible allocation policy", ci.Name)
		}
		compared := 0
		for _, mn := range []string{"vgg19", "resnet152"} {
			m, err := model.ByName(mn)
			if err != nil {
				t.Fatal(err)
			}
			vw := alloc.VWs[0]
			nm := partition.NewSched(perf, sched.FIFO).MaxNm(cl, m, vw, 32, 4)
			if nm == 0 {
				continue // model does not fit this worker at any Nm
			}
			plan := planSched(t, cl, m, vw, sched.FIFO, nm, 32)
			run := func(s sched.Schedule) float64 {
				res, err := Run(Config{
					Plan: plan, Cluster: cl, Perf: perf, Schedule: s,
					Minibatches: 40, Warmup: 8,
				})
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", ci.Name, mn, s.Name(), err)
				}
				return res.Throughput
			}
			fifoTP, overlapTP := run(sched.FIFO), run(sched.Overlap)
			if overlapTP < fifoTP*(1-1e-12) {
				t.Errorf("%s/%s: overlap %.6g < fifo %.6g samples/s", ci.Name, mn, overlapTP, fifoTP)
			}
			compared++
		}
		if compared == 0 {
			t.Errorf("%s: no model fit the first virtual worker; comparison skipped", ci.Name)
		}
	}
}

// TestOneF1BUsesLessMemoryThanFIFO checks the in-flight-activation model end
// to end: at the same Nm, the 1F1B plan's first-stage working set is no
// larger than FIFO's, and strictly smaller once Nm exceeds the stage depth.
func TestOneF1BUsesLessMemoryThanFIFO(t *testing.T) {
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		t.Fatal(err)
	}
	fifoPlan := planSched(t, c, model.VGG19(), a.VWs[0], sched.FIFO, 6, 32)
	f1bPlan := planSched(t, c, model.VGG19(), a.VWs[0], sched.OneF1B, 6, 32)
	if f1bPlan.Schedule != sched.NameOneF1B {
		t.Errorf("plan schedule = %q, want %q", f1bPlan.Schedule, sched.NameOneF1B)
	}
	if f1bPlan.Stages[0].MemoryBytes >= fifoPlan.Stages[0].MemoryBytes {
		t.Errorf("1f1b stage0 memory %d not below fifo %d at Nm=6",
			f1bPlan.Stages[0].MemoryBytes, fifoPlan.Stages[0].MemoryBytes)
	}
}
