package pipeline

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/trace"
)

// updateGoldens regenerates the committed golden files instead of comparing
// against them:
//
//	go test ./internal/pipeline -run TestScheduleGoldens -update
//
// The files were captured on the pre-refactor container/heap engine; the
// pooled indexed engine must reproduce them byte for byte, so -update should
// only ever be needed when the simulated physics (not the engine mechanics)
// deliberately changes.
var updateGoldens = flag.Bool("update", false, "rewrite golden testdata files")

// scheduleGolden pins one solo pipeline run: every float is the shortest
// round-trip decimal ('g', -1), so comparison is bit-exact, and the
// completion and Gantt digests cover the full per-minibatch and per-span
// timelines without committing megabytes of spans.
type scheduleGolden struct {
	Cluster     string `json:"cluster"`
	Model       string `json:"model"`
	Schedule    string `json:"schedule"`
	Nm          int    `json:"nm"`
	Error       string `json:"error,omitempty"`
	Throughput  string `json:"throughput,omitempty"`
	Elapsed     string `json:"elapsed,omitempty"`
	MaxGPUUtil  string `json:"maxGPUUtil,omitempty"`
	Completions string `json:"completionsDigest,omitempty"`
	GanttDigest string `json:"ganttDigest,omitempty"`
}

func ftoa17(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// digestFloats folds a float sequence into an FNV-1a hex digest over the
// round-trip decimal forms, so any single-bit timing drift changes it.
func digestFloats(vals ...float64) string {
	h := fnv.New64a()
	for _, v := range vals {
		h.Write([]byte(ftoa17(v)))
		h.Write([]byte{','})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// digestTrace folds every span (stage, minibatch, kind, start, end) of a
// trace into a digest, in recording order — the per-stage Gantt timeline
// including transfer spans, bit-exact and order-exact.
func digestTrace(tr *trace.Trace) string {
	h := fnv.New64a()
	for _, sp := range tr.Spans {
		fmt.Fprintf(h, "%d/%d/%d/%s/%s;", sp.Stage, sp.Minibatch, sp.Kind,
			ftoa17(float64(sp.Start)), ftoa17(float64(sp.End)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenCases enumerates the schedule x catalog-cluster grid: every schedule
// on every catalog cluster's first feasible virtual worker, VGG-19 at the
// largest Nm up to 4 the FIFO memory model admits (the shared plan keeps the
// comparison apples-to-apples across schedules, as in the overlap-vs-fifo
// test).
func goldenSoloRuns(t *testing.T) []scheduleGolden {
	t.Helper()
	perf := profile.Default()
	m := model.VGG19()
	var out []scheduleGolden
	for _, ci := range hw.ClusterCatalog() {
		cl, err := hw.ClusterByName(ci.Name)
		if err != nil {
			t.Fatal(err)
		}
		var alloc *hw.Allocation
		for _, pol := range hw.Policies() {
			if a, err := hw.Allocate(cl, pol); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Fatalf("%s: no feasible allocation policy", ci.Name)
		}
		vw := alloc.VWs[0]
		for _, name := range sched.Names() {
			s, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			g := scheduleGolden{Cluster: ci.Name, Model: "vgg19", Schedule: name}
			nm := partition.NewSched(perf, s).MaxNm(cl, m, vw, 32, 4)
			if nm == 0 {
				g.Error = "model does not fit at any Nm"
				out = append(out, g)
				continue
			}
			g.Nm = nm
			plan, err := partition.NewSched(perf, s).Partition(cl, m, vw, nm, 32)
			if err != nil {
				g.Error = err.Error()
				out = append(out, g)
				continue
			}
			tr := trace.New(len(plan.Stages))
			res, err := Run(Config{
				Plan: plan, Cluster: cl, Perf: perf, Schedule: s,
				Minibatches: 24, Warmup: 4, Trace: tr,
			})
			if err != nil {
				g.Error = err.Error()
				out = append(out, g)
				continue
			}
			g.Throughput = ftoa17(res.Throughput)
			g.Elapsed = ftoa17(float64(res.Elapsed))
			g.MaxGPUUtil = ftoa17(res.MaxGPUUtil)
			comps := make([]float64, len(res.Completions))
			for i, c := range res.Completions {
				comps[i] = float64(c)
			}
			g.Completions = digestFloats(comps...)
			g.GanttDigest = digestTrace(tr)
			out = append(out, g)
		}
	}
	return out
}

// TestScheduleGoldens pins every schedule's solo simulation — throughput,
// elapsed time, utilization, the full completion timeline, and the per-stage
// Gantt spans — on every catalog cluster to the values the pre-refactor
// container/heap engine produced. The pooled indexed engine must reproduce
// all of them bit for bit; this is the test wall the hot-path overhaul is
// measured against.
func TestScheduleGoldens(t *testing.T) {
	got := goldenSoloRuns(t)
	path := filepath.Join("testdata", "schedule_goldens.json")
	if *updateGoldens {
		writeGoldenFile(t, path, got)
		return
	}
	var want []scheduleGolden
	readGoldenFile(t, path, &want)
	if len(got) != len(want) {
		t.Fatalf("golden entries = %d, want %d (regenerate with -update only for deliberate physics changes)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("golden mismatch for %s/%s/%s:\n  got  %+v\n  want %+v",
				want[i].Cluster, want[i].Model, want[i].Schedule, got[i], want[i])
		}
	}
}

func writeGoldenFile(t *testing.T, path string, v interface{}) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

func readGoldenFile(t *testing.T, path string, v interface{}) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (generate with -update)", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatal(err)
	}
}
