package pipeline

import (
	"hetpipe/internal/sim"
	"hetpipe/internal/trace"
)

// chunkRunner executes the chunk-capable 1F1B-family disciplines over the
// plan's K = k*V virtual stages:
//
//   - "interleaved" (Megatron-LM): each GPU hosts V chunks, transfers run as
//     pure delays (asynchronous point-to-point sends), and the 1F1B
//     discipline runs over the virtual depth — the fill bubble shrinks by V
//     because a GPU starts computing as soon as its first 1/V-sized chunk's
//     input arrives.
//   - "2bw" (PipeDream-2BW): the same 1F1B task graph at V = 1 with
//     serialized receives; the discipline's double-buffered weight updates
//     change the memory model (sched.TwoBW.WeightVersions == 3), not the
//     timing, so the runner's contribution is exactly 1F1B's.
//
// Each GPU is a single-server queue multiplexing its V chunks: when it goes
// idle it first retires the deepest pending backward (deepest chunk first —
// closest to completion, fastest stash retirement), then the deepest
// admissible forward, where virtual stage vs admits at most K-vs outstanding
// forwards — the 1F1B bound that caps the stash at sched ChunkStash.
//
// Task completions run through three handlers registered once per device and
// transfer arrivals through two engine handlers; per-virtual-stage pending
// lists are head-indexed rings (f1bStage), so the steady state schedules
// without allocating. Completion payloads carry (minibatch, virtual stage)
// and the submitted duration, from which trace spans are reconstructed on
// the hosting GPU's row.
type chunkRunner struct {
	pl *Pipeline
	k  int // GPUs (stages)
	v  int // chunks per GPU (interleave degree)
	kv int // virtual pipeline depth k*v

	// overlap selects transfer handling: pure engine delays (interleaved)
	// versus receive time folded into the task duration (2bw).
	overlap bool

	startFn func(p int)
	vstages []f1bStage // per virtual stage; busy is tracked per GPU instead
	busy    []bool     // per GPU

	idAct   int32 // engine handler id: activation transfer arrival
	idGrad  int32 // engine handler id: gradient transfer arrival
	idFwd   int32
	idBwd   int32
	idFused int32
}

func newChunkRunner(pl *Pipeline, overlapRecv bool) *chunkRunner {
	v := pl.cfg.Plan.InterleaveDegree()
	r := &chunkRunner{
		pl: pl, k: pl.k, v: v, kv: pl.k * v,
		overlap: overlapRecv,
		vstages: make([]f1bStage, pl.k*v),
		busy:    make([]bool, pl.k),
	}
	r.startFn = r.start
	r.idAct = pl.eng.Register(r.actArrived)
	r.idGrad = pl.eng.Register(r.gradArrived)
	r.idFwd = pl.register(r.forwardDone)
	r.idBwd = pl.register(r.backwardDone)
	r.idFused = pl.register(r.fusedDone)
	return r
}

func (r *chunkRunner) poke() {
	r.pl.inject(r.startFn)
	r.tryGPU(0)
}

func (r *chunkRunner) start(p int) { r.vstages[0].pushF(int32(p)) }

// tryGPU picks the next task for GPU g across its chunk set: the deepest
// pending backward first, then the deepest admissible forward. Depth-first
// selection drives the frontier minibatch toward completion, which is what
// retires stashes fastest and reproduces Megatron's interleaved steady state.
//
//hetlint:hotpath
func (r *chunkRunner) tryGPU(g int) {
	if r.busy[g] {
		return
	}
	for c := r.v - 1; c >= 0; c-- {
		vs := g + c*r.k
		if r.vstages[vs].lenB() > 0 {
			r.runBackward(int(r.vstages[vs].popB()), vs)
			return
		}
	}
	for c := r.v - 1; c >= 0; c-- {
		vs := g + c*r.k
		st := &r.vstages[vs]
		if st.lenF() > 0 && st.outstanding < r.kv-vs {
			r.runForward(int(st.popF()), vs)
			return
		}
	}
}

// runForward executes minibatch p's forward on virtual stage vs (fused with
// the backward on the last virtual stage). Under serialized receives the
// duration includes the chunk's input transfer; under overlap the transfer
// already ran as a pure delay.
//
//hetlint:hotpath
func (r *chunkRunner) runForward(p, vs int) {
	pl := r.pl
	g := vs % r.k
	ch := pl.cfg.Plan.ChunkAt(vs)
	r.busy[g] = true
	base := ch.FwdTime
	if !r.overlap {
		base = ch.RecvActTime + ch.FwdTime
	}
	if vs == r.kv-1 {
		dur := pl.dur(p, g, base+ch.BwdTime)
		pl.gpus[g].SubmitID(dur, r.idFused, int32(p), int32(vs))
		return
	}
	dur := pl.dur(p, g, base)
	pl.gpus[g].SubmitID(dur, r.idFwd, int32(p), int32(vs))
}

//hetlint:hotpath
func (r *chunkRunner) forwardDone(a, b int32, x float64) {
	pl := r.pl
	p, vs := int(a), int(b)
	g := vs % r.k
	pl.traceAdd(g, p, trace.Forward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	r.busy[g] = false
	r.vstages[vs].outstanding++
	r.deliverF(p, vs+1)
	r.tryGPU(g)
}

// deliverF routes minibatch p's activations to virtual stage vs: a pure
// transfer delay under overlap, an immediate enqueue otherwise (the receive
// is charged to the task duration).
//
//hetlint:hotpath
func (r *chunkRunner) deliverF(p, vs int) {
	pl := r.pl
	ch := pl.cfg.Plan.ChunkAt(vs)
	if r.overlap && ch.RecvActTime > 0 {
		start := pl.eng.Now()
		pl.eng.AfterID(pl.dur(p, vs%r.k, ch.RecvActTime), r.idAct, int32(p), int32(vs), float64(start))
		return
	}
	r.vstages[vs].pushF(int32(p))
	r.tryGPU(vs % r.k)
}

//hetlint:hotpath
func (r *chunkRunner) actArrived(a, b int32, x float64) {
	pl := r.pl
	p, vs := int(a), int(b)
	pl.traceAdd(vs%r.k, p, trace.Transfer, sim.Time(x), pl.eng.Now())
	r.vstages[vs].pushF(int32(p))
	r.tryGPU(vs % r.k)
}

//hetlint:hotpath
func (r *chunkRunner) fusedDone(a, b int32, x float64) {
	pl := r.pl
	p, vs := int(a), int(b)
	g := vs % r.k
	mid := pl.eng.Now() - sim.Time(pl.time(p, g, pl.cfg.Plan.ChunkAt(vs).BwdTime))
	pl.traceAdd(g, p, trace.Forward, pl.eng.Now()-sim.Time(x), mid)
	pl.traceAdd(g, p, trace.Backward, mid, pl.eng.Now())
	r.busy[g] = false
	if r.kv == 1 {
		pl.complete(p)
	} else {
		r.deliverB(p, r.kv-2)
	}
	r.tryGPU(g)
}

// runBackward executes minibatch p's backward on virtual stage vs (vs <
// kv-1; the last virtual stage's backward is fused into its forward task).
//
//hetlint:hotpath
func (r *chunkRunner) runBackward(p, vs int) {
	pl := r.pl
	g := vs % r.k
	ch := pl.cfg.Plan.ChunkAt(vs)
	r.busy[g] = true
	base := ch.BwdTime
	if !r.overlap {
		base = ch.RecvGradTime + ch.BwdTime
	}
	dur := pl.dur(p, g, base)
	pl.gpus[g].SubmitID(dur, r.idBwd, int32(p), int32(vs))
}

//hetlint:hotpath
func (r *chunkRunner) backwardDone(a, b int32, x float64) {
	pl := r.pl
	p, vs := int(a), int(b)
	g := vs % r.k
	pl.traceAdd(g, p, trace.Backward, pl.eng.Now()-sim.Time(x), pl.eng.Now())
	r.busy[g] = false
	r.vstages[vs].outstanding--
	if vs == 0 {
		pl.complete(p)
	} else {
		r.deliverB(p, vs-1)
	}
	r.tryGPU(g)
}

// deliverB routes minibatch p's boundary gradients to virtual stage vs; see
// deliverF.
//
//hetlint:hotpath
func (r *chunkRunner) deliverB(p, vs int) {
	pl := r.pl
	ch := pl.cfg.Plan.ChunkAt(vs)
	if r.overlap && ch.RecvGradTime > 0 {
		start := pl.eng.Now()
		pl.eng.AfterID(pl.dur(p, vs%r.k, ch.RecvGradTime), r.idGrad, int32(p), int32(vs), float64(start))
		return
	}
	r.vstages[vs].pushB(int32(p))
	r.tryGPU(vs % r.k)
}

//hetlint:hotpath
func (r *chunkRunner) gradArrived(a, b int32, x float64) {
	pl := r.pl
	p, vs := int(a), int(b)
	pl.traceAdd(vs%r.k, p, trace.Transfer, sim.Time(x), pl.eng.Now())
	r.vstages[vs].pushB(int32(p))
	r.tryGPU(vs % r.k)
}
