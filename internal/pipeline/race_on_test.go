//go:build race

package pipeline

const raceEnabled = true
