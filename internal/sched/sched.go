// Package sched defines the pipeline-schedule subsystem: the execution
// discipline a virtual worker uses to drive minibatches through its stages.
//
// HetPipe (Section 4) fixes a single discipline — FIFO injection with up to
// Nm minibatches in flight and receives that serialize with computation —
// and Section 9 names PipeDream-style communication/computation overlap as
// the improvement it leaves on the table. The schedule choice changes both
// steady-state throughput and, critically, peak activation memory: GPipe's
// fill-drain stashes a whole wave of activations on every stage, while
// strict 1F1B holds at most stage-depth activations, so a memory-constrained
// virtual worker can admit a larger Nm under 1F1B than under HetPipe's FIFO.
//
// A Schedule is pure identity plus the analytical models every layer needs:
// the partitioner and profile use StashCount/ChunkStash and WeightVersions to
// size per-stage memory, the executor (internal/pipeline) uses InFlightCap
// and OverlapRecv to shape the discrete-event task graph, and the public API
// and sweep grids carry the Name. The package has no dependencies so that
// profile, partition, pipeline, core, sweep, and the root API can all import
// it.
//
// Two post-HetPipe disciplines generalize the stage model from one
// contiguous layer range to a set of chunks: "interleaved" (Megatron-LM
// virtual stages — each worker holds V non-contiguous chunks, shrinking the
// pipeline bubble by a factor of V) and "2bw" (PipeDream-2BW — 1F1B timing
// with double-buffered weight updates, trading one extra weight copy for
// 1F1B's small activation footprint without pipeline flushes). Schedules
// whose discipline is chunk-aware report SupportsInterleave; the stash model
// is expressed per virtual stage through ChunkStash, of which StashCount is
// the contiguous V=1 view.
package sched

import (
	"fmt"
	"sort"
)

// Schedule names, as accepted by ByName, hetpipe.WithSchedule, the
// -schedule CLI flags, and sweep grids.
const (
	// NameFIFO is the paper's own discipline (Section 4): FIFO injection
	// with up to Nm minibatches in flight, receives serialized with compute.
	NameFIFO = "hetpipe-fifo"
	// NameGPipe is fill-drain: inject a wave of Nm forwards, barrier, then
	// drain all backwards before the next wave starts.
	NameGPipe = "gpipe"
	// NameOneF1B is strict one-forward-one-backward: after a per-stage
	// warmup, each stage alternates forward and backward work, holding at
	// most stage-depth activations.
	NameOneF1B = "1f1b"
	// NameOverlap is HetPipe's FIFO discipline with PipeDream-style
	// communication/computation overlap: receives no longer occupy the
	// receiving GPU (the Section 9 improvement).
	NameOverlap = "hetpipe-overlap"
	// NameInterleaved is the Megatron-LM interleaved virtual-stage schedule:
	// the model is cut into k*V chunks, worker g hosts chunks g, g+k, ...,
	// g+(V-1)k, and the 1F1B discipline runs over the k*V virtual stages with
	// overlapped point-to-point transfers. The fill bubble shrinks by the
	// interleave degree V at the cost of V times the boundary traffic.
	NameInterleaved = "interleaved"
	// NameTwoBW is PipeDream-2BW: 1F1B timing with double-buffered weight
	// updates — each stage keeps two weight versions plus a coalesced
	// gradient buffer, so updates never flush the pipeline.
	NameTwoBW = "2bw"
)

// Schedule is one pipeline execution discipline. Implementations are
// stateless values; the executor instantiates per-run state itself.
type Schedule interface {
	// Name is the registry key, e.g. "hetpipe-fifo".
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// StashCount bounds how many minibatches' activations stage (0-based)
	// of a k-stage pipeline holds concurrently when nm minibatches are in
	// flight — the schedule's in-flight-activation model, always >= 1. It is
	// the contiguous view of ChunkStash: StashCount(s, k, nm) ==
	// ChunkStash(s, k, nm).
	StashCount(stage, k, nm int) int
	// ChunkStash bounds the activation stashes held by virtual stage vs
	// (0-based) of a vstages-deep virtual pipeline when nm minibatches are in
	// flight. For a chunked plan with k workers at interleave degree V,
	// chunk c of worker g is virtual stage g + c*k of vstages = k*V; a
	// contiguous plan is the degenerate vstages = k case.
	ChunkStash(vs, vstages, nm int) int
	// WeightVersions is the number of weight-sized buffers each stage keeps
	// resident: 2 for the single-version disciplines (weights + gradient
	// buffer, the paper's memory model), 3 for 2BW's double-buffered updates
	// (two weight versions + the coalesced gradient buffer).
	WeightVersions() int
	// SupportsInterleave reports whether the discipline is defined for
	// chunked plans with interleave degree V > 1 (each worker hosting V
	// non-contiguous chunks). The partitioner and executor reject V > 1
	// under schedules that return false.
	SupportsInterleave() bool
	// OverlapRecv reports whether receiving activations/gradients overlaps
	// with computation on the receiving GPU (PipeDream-style) instead of
	// serializing with it (the paper's partition cost model).
	OverlapRecv() bool
	// InFlightCap bounds how many minibatches the executor actually keeps in
	// flight for a pipeline of vstages virtual stages configured with Nm:
	// 1F1B-family disciplines cannot use more than the virtual depth, the
	// others use Nm. Contiguous plans pass vstages = k.
	InFlightCap(vstages, nm int) int
}

// fifo is the paper's Section 4 discipline.
type fifo struct{}

func (fifo) Name() string { return NameFIFO }
func (fifo) Description() string {
	return "HetPipe FIFO (Section 4): Nm in flight, serialized receives"
}
func (fifo) StashCount(stage, k, nm int) int {
	// min(Nm, 2*(k-stage)-1): the last stage finishes each minibatch
	// immediately (forward and backward run back to back) so it holds one;
	// the first stage holds activations for the whole round trip — the
	// Figure 1 memory-variance observation.
	return clampStash(2*(k-stage)-1, nm)
}
func (f fifo) ChunkStash(vs, vstages, nm int) int { return f.StashCount(vs, vstages, nm) }
func (fifo) WeightVersions() int                  { return 2 }
func (fifo) SupportsInterleave() bool             { return false }
func (fifo) OverlapRecv() bool                    { return false }
func (fifo) InFlightCap(k, nm int) int            { return nm }

// gpipe is fill-drain with a sync barrier per Nm-wave.
type gpipe struct{}

func (gpipe) Name() string { return NameGPipe }
func (gpipe) Description() string {
	return "GPipe fill-drain: wave of Nm forwards, barrier, Nm backwards"
}
func (gpipe) StashCount(stage, k, nm int) int {
	// Every stage completes all Nm forwards before any backward frees a
	// stash, so every stage holds the whole wave.
	return clampStash(nm, nm)
}
func (g gpipe) ChunkStash(vs, vstages, nm int) int { return g.StashCount(vs, vstages, nm) }
func (gpipe) WeightVersions() int                  { return 2 }
func (gpipe) SupportsInterleave() bool             { return false }
func (gpipe) OverlapRecv() bool                    { return false }
func (gpipe) InFlightCap(k, nm int) int            { return nm }

// onef1b is strict one-forward-one-backward.
type onef1b struct{}

func (onef1b) Name() string { return NameOneF1B }
func (onef1b) Description() string {
	return "strict 1F1B: per-stage warmup then alternate, <= stage-depth stashes"
}
func (onef1b) StashCount(stage, k, nm int) int {
	// Stage s admits at most k-s forwards before it must retire a backward,
	// so it stashes at most min(Nm, k-stage) activations — strictly below
	// FIFO's 2*(k-stage)-1 on every stage but the last, which is what lets
	// a memory-constrained virtual worker admit a larger Nm.
	return clampStash(k-stage, nm)
}
func (o onef1b) ChunkStash(vs, vstages, nm int) int { return o.StashCount(vs, vstages, nm) }
func (onef1b) WeightVersions() int                  { return 2 }
func (onef1b) SupportsInterleave() bool             { return false }
func (onef1b) OverlapRecv() bool                    { return false }
func (onef1b) InFlightCap(k, nm int) int {
	if nm > k {
		return k
	}
	return nm
}

// overlap is FIFO with communication/computation overlap on receives.
type overlap struct{}

func (overlap) Name() string { return NameOverlap }
func (overlap) Description() string {
	return "HetPipe FIFO with PipeDream-style comm/compute overlap (Section 9)"
}
func (overlap) StashCount(stage, k, nm int) int {
	// Same injection discipline as FIFO, so the same stash bound; the
	// in-transfer activation is charged to the receiver like a stash.
	return clampStash(2*(k-stage)-1, nm)
}
func (o overlap) ChunkStash(vs, vstages, nm int) int { return o.StashCount(vs, vstages, nm) }
func (overlap) WeightVersions() int                  { return 2 }
func (overlap) SupportsInterleave() bool             { return false }
func (overlap) OverlapRecv() bool                    { return true }
func (overlap) InFlightCap(k, nm int) int            { return nm }

// interleaved is the Megatron-LM interleaved virtual-stage schedule: 1F1B
// over k*V virtual stages with overlapped transfers. Each worker hosts V
// non-contiguous chunks, so the fill ramp covers only 1/V of the model per
// worker and the pipeline bubble shrinks accordingly; the price is V times
// as many boundary transfers, which is why the discipline mandates
// comm/compute overlap (Megatron's asynchronous point-to-point sends).
type interleaved struct{}

func (interleaved) Name() string { return NameInterleaved }
func (interleaved) Description() string {
	return "Megatron-LM interleaved: 1F1B over k*V virtual stages, overlapped transfers"
}
func (i interleaved) StashCount(stage, k, nm int) int { return i.ChunkStash(stage, k, nm) }
func (interleaved) ChunkStash(vs, vstages, nm int) int {
	// The 1F1B bound over the virtual depth: virtual stage vs admits at most
	// vstages-vs forwards before it must retire a backward. Deep chunks of a
	// worker therefore stash less than its shallow ones, which is what makes
	// interleaving affordable in memory.
	return clampStash(vstages-vs, nm)
}
func (interleaved) WeightVersions() int      { return 2 }
func (interleaved) SupportsInterleave() bool { return true }
func (interleaved) OverlapRecv() bool        { return true }
func (interleaved) InFlightCap(vstages, nm int) int {
	if nm > vstages {
		return vstages
	}
	return nm
}

// twobw is PipeDream-2BW: the 1F1B discipline with double-buffered weight
// updates. Timing-wise it is 1F1B — the innovation is the memory/update
// model: each stage keeps two weight versions plus a coalesced gradient
// buffer (WeightVersions == 3), so weight updates never flush the pipeline
// and the activation footprint stays at 1F1B's stage-depth bound.
type twobw struct{}

func (twobw) Name() string { return NameTwoBW }
func (twobw) Description() string {
	return "PipeDream-2BW: 1F1B timing, double-buffered weights (2 versions + grad buffer)"
}
func (t twobw) StashCount(stage, k, nm int) int { return t.ChunkStash(stage, k, nm) }
func (twobw) ChunkStash(vs, vstages, nm int) int {
	return clampStash(vstages-vs, nm)
}
func (twobw) WeightVersions() int      { return 3 }
func (twobw) SupportsInterleave() bool { return false }
func (twobw) OverlapRecv() bool        { return false }
func (twobw) InFlightCap(vstages, nm int) int {
	if nm > vstages {
		return vstages
	}
	return nm
}

// clampStash applies the common min(nm, bound) >= 1 clamp.
func clampStash(bound, nm int) int {
	if nm < bound {
		bound = nm
	}
	if bound < 1 {
		bound = 1
	}
	return bound
}

// Exported schedule values, for callers that want to avoid the registry.
var (
	FIFO        Schedule = fifo{}
	GPipe       Schedule = gpipe{}
	OneF1B      Schedule = onef1b{}
	Overlap     Schedule = overlap{}
	Interleaved Schedule = interleaved{}
	TwoBW       Schedule = twobw{}
)

// registry maps names to schedules.
var registry = map[string]Schedule{
	NameFIFO:        FIFO,
	NameGPipe:       GPipe,
	NameOneF1B:      OneF1B,
	NameOverlap:     Overlap,
	NameInterleaved: Interleaved,
	NameTwoBW:       TwoBW,
}

// Default is the schedule used when none is named: the paper's own
// discipline, hetpipe-fifo.
func Default() Schedule { return FIFO }

// ByName resolves a schedule name; the empty string resolves to Default.
func ByName(name string) (Schedule, error) {
	if name == "" {
		return Default(), nil
	}
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown schedule %q (have %v)", name, Names())
	}
	return s, nil
}

// Names lists the registered schedule names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Or returns s, or Default when s is nil — the standard defaulting helper
// for structs that carry an optional Schedule field.
func Or(s Schedule) Schedule {
	if s == nil {
		return Default()
	}
	return s
}
