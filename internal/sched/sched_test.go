package sched

import "testing"

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
		if s.Description() == "" {
			t.Errorf("%s: empty description", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if s, err := ByName(""); err != nil || s.Name() != NameFIFO {
		t.Errorf("ByName(\"\") = %v, %v; want default %s", s, err, NameFIFO)
	}
	if Or(nil).Name() != NameFIFO {
		t.Error("Or(nil) should be the default schedule")
	}
	if Or(GPipe).Name() != NameGPipe {
		t.Error("Or(GPipe) should pass through")
	}
}

func TestStashCountModels(t *testing.T) {
	const k = 4
	for _, s := range []Schedule{FIFO, GPipe, OneF1B, Overlap} {
		for stage := 0; stage < k; stage++ {
			for nm := 1; nm <= 8; nm++ {
				c := s.StashCount(stage, k, nm)
				if c < 1 || c > nm {
					t.Errorf("%s: StashCount(%d,%d,%d) = %d outside [1,%d]", s.Name(), stage, k, nm, c, nm)
				}
			}
		}
	}
	// FIFO reproduces the paper's min(Nm, 2*(k-stage)-1) model.
	if got := FIFO.StashCount(0, 4, 8); got != 7 {
		t.Errorf("FIFO stage0 stash = %d, want 7", got)
	}
	if got := FIFO.StashCount(3, 4, 8); got != 1 {
		t.Errorf("FIFO last-stage stash = %d, want 1", got)
	}
	// GPipe stashes the whole wave on every stage.
	if got := GPipe.StashCount(0, 4, 8); got != 8 {
		t.Errorf("GPipe stash = %d, want 8", got)
	}
	// 1F1B holds at most stage-depth activations — strictly below FIFO on
	// every stage but the last whenever Nm is large enough.
	for stage := 0; stage < k; stage++ {
		f, o := FIFO.StashCount(stage, k, 8), OneF1B.StashCount(stage, k, 8)
		if o > f {
			t.Errorf("stage %d: 1F1B stash %d > FIFO %d", stage, o, f)
		}
		if stage < k-1 && o >= f {
			t.Errorf("stage %d: 1F1B stash %d not strictly below FIFO %d", stage, o, f)
		}
	}
	if got := OneF1B.StashCount(0, 4, 8); got != 4 {
		t.Errorf("1F1B stage0 stash = %d, want 4 (stage depth)", got)
	}
}

func TestInFlightCap(t *testing.T) {
	if got := OneF1B.InFlightCap(4, 8); got != 4 {
		t.Errorf("1F1B InFlightCap(4,8) = %d, want 4", got)
	}
	if got := OneF1B.InFlightCap(4, 2); got != 2 {
		t.Errorf("1F1B InFlightCap(4,2) = %d, want 2", got)
	}
	for _, s := range []Schedule{FIFO, GPipe, Overlap} {
		if got := s.InFlightCap(4, 8); got != 8 {
			t.Errorf("%s InFlightCap(4,8) = %d, want 8", s.Name(), got)
		}
	}
	if !Overlap.OverlapRecv() {
		t.Error("overlap schedule must overlap receives")
	}
	for _, s := range []Schedule{FIFO, GPipe, OneF1B} {
		if s.OverlapRecv() {
			t.Errorf("%s must serialize receives", s.Name())
		}
	}
}
