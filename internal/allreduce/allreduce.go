// Package allreduce implements bandwidth-optimal ring all-reduce (Patarasuk
// & Yuan), the collective underlying the paper's Horovod baseline. It
// provides both a real, channel-based implementation for N in-process ranks
// (used by the numeric BSP trainer and exercised by tests) and the standard
// analytic cost model used by the cluster simulator: 2(N-1) steps, each
// moving 1/N of the payload over the slowest link.
package allreduce

import (
	"fmt"
	"sync"

	"hetpipe/internal/profile"
	"hetpipe/internal/tensor"
)

// Ring coordinates ring all-reduce across n in-process ranks. Construct one
// Ring per group and call AllReduce from exactly n goroutines per round.
type Ring struct {
	n  int
	ch []chan tensor.Vector // ch[i]: messages into rank i from rank i-1
	mu sync.Mutex
	// round sanity-checks that callers keep lengths consistent per round.
	lens map[int]int
}

// NewRing creates a group of n ranks.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("allreduce: need at least one rank, got %d", n)
	}
	r := &Ring{n: n, ch: make([]chan tensor.Vector, n), lens: make(map[int]int)}
	for i := range r.ch {
		r.ch[i] = make(chan tensor.Vector, 1)
	}
	return r, nil
}

// Ranks reports the group size.
func (r *Ring) Ranks() int { return r.n }

// AllReduce sums data element-wise across all ranks, in place: when every
// rank's call returns, each rank's slice holds the global sum. The vector
// length must be identical across ranks and at least n (each of the n chunks
// must be non-empty); lengths below n fall back to a gather-free variant.
func (r *Ring) AllReduce(rank int, data tensor.Vector) error {
	if rank < 0 || rank >= r.n {
		return fmt.Errorf("allreduce: rank %d out of range [0,%d)", rank, r.n)
	}
	if r.n == 1 {
		return nil
	}
	r.mu.Lock()
	if l, ok := r.lens[rank]; ok && l != 0 {
		r.mu.Unlock()
		return fmt.Errorf("allreduce: rank %d re-entered before round completed", rank)
	}
	r.lens[rank] = len(data)
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.lens, rank)
		r.mu.Unlock()
	}()

	n := r.n
	// chunk returns the half-open element range of chunk c.
	chunk := func(c int) (int, int) {
		c = ((c % n) + n) % n
		base := len(data) / n
		rem := len(data) % n
		lo := c*base + min(c, rem)
		size := base
		if c < rem {
			size++
		}
		return lo, lo + size
	}
	send := r.ch[(rank+1)%n]
	recv := r.ch[rank]

	// Reduce-scatter: after n-1 steps, rank i holds the fully reduced
	// chunk (i+1) mod n.
	for s := 0; s < n-1; s++ {
		lo, hi := chunk(rank - s)
		out := data[lo:hi].Clone()
		send <- out
		in := <-recv
		lo, hi = chunk(rank - s - 1)
		if len(in) != hi-lo {
			return fmt.Errorf("allreduce: rank %d step %d: got %d elems, want %d (mismatched lengths across ranks?)",
				rank, s, len(in), hi-lo)
		}
		data[lo:hi].AddInPlace(in)
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		lo, hi := chunk(rank + 1 - s)
		send <- data[lo:hi].Clone()
		in := <-recv
		lo, hi = chunk(rank - s)
		if len(in) != hi-lo {
			return fmt.Errorf("allreduce: rank %d gather step %d: got %d elems, want %d",
				rank, s, len(in), hi-lo)
		}
		copy(data[lo:hi], in)
	}
	return nil
}

// AllReduceMean is AllReduce followed by division by the rank count — the
// gradient averaging Horovod performs.
func (r *Ring) AllReduceMean(rank int, data tensor.Vector) error {
	if err := r.AllReduce(rank, data); err != nil {
		return err
	}
	data.Scale(1 / float64(r.n))
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Time predicts one ring all-reduce of the given payload over n workers
// whose slowest interconnect is described by link: 2(N-1) steps, each
// carrying bytes/N plus the per-step latency. With one worker there is
// nothing to do.
func Time(bytes int64, n int, link profile.LinkModel) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	perStep := link.Latency + float64(bytes)/float64(n)/link.EffectiveBPS()
	return float64(2*(n-1)) * perStep
}

// BusBandwidthVolume reports the per-worker bytes actually moved on the wire
// for an all-reduce of the payload: 2(N-1)/N * bytes — the figure the paper
// quotes when comparing Horovod's 515 MB against ED-local's 103 MB for
// VGG-19.
func BusBandwidthVolume(bytes int64, n int) int64 {
	if n <= 1 {
		return 0
	}
	return 2 * int64(n-1) * bytes / int64(n)
}
