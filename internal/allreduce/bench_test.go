package allreduce

import (
	"sync"
	"testing"

	"hetpipe/internal/tensor"
)

// BenchmarkRingAllReduce measures the real channel-based ring all-reduce
// across 4 in-process ranks on a 64k-element vector.
func BenchmarkRingAllReduce(b *testing.B) {
	const ranks = 4
	const dim = 1 << 16
	r, err := NewRing(ranks)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]tensor.Vector, ranks)
	for i := range data {
		data[i] = tensor.NewVector(dim)
	}
	b.SetBytes(int64(dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for rank := 0; rank < ranks; rank++ {
			rank := rank
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := r.AllReduce(rank, data[rank]); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
