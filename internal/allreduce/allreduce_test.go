package allreduce

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"hetpipe/internal/profile"
	"hetpipe/internal/tensor"
)

// run executes one all-reduce round across n goroutines and returns the
// per-rank results.
func run(t *testing.T, n, dim int, fill func(rank, i int) float64) []tensor.Vector {
	t.Helper()
	r, err := NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]tensor.Vector, n)
	for rank := range data {
		data[rank] = tensor.NewVector(dim)
		for i := range data[rank] {
			data[rank][i] = fill(rank, i)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[rank] = r.AllReduce(rank, data[rank])
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return data
}

func TestAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		dim := 40
		data := run(t, n, dim, func(rank, i int) float64 { return float64(rank + i) })
		for rank := 0; rank < n; rank++ {
			for i := 0; i < dim; i++ {
				want := float64(n*i) + float64(n*(n-1)/2)
				if math.Abs(data[rank][i]-want) > 1e-9 {
					t.Fatalf("n=%d rank=%d elem %d = %v, want %v", n, rank, i, data[rank][i], want)
				}
			}
		}
	}
}

func TestAllReduceUnevenChunks(t *testing.T) {
	// Length not divisible by rank count exercises the remainder chunks.
	data := run(t, 4, 10, func(rank, i int) float64 { return float64(rank*100 + i) })
	for i := 0; i < 10; i++ {
		want := float64(0+100+200+300) + 4*float64(i)
		if data[2][i] != want {
			t.Fatalf("elem %d = %v, want %v", i, data[2][i], want)
		}
	}
}

func TestAllReduceMean(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]tensor.Vector, 4)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		rank := rank
		data[rank] = tensor.Vector{float64(rank), 8}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.AllReduceMean(rank, data[rank]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for rank := 0; rank < 4; rank++ {
		if data[rank][0] != 1.5 || data[rank][1] != 8 {
			t.Fatalf("rank %d mean = %v, want [1.5 8]", rank, data[rank])
		}
	}
}

func TestAllReduceConsecutiveRounds(t *testing.T) {
	// The same ring must serve many rounds (per-iteration gradient sync).
	r, _ := NewRing(3)
	var wg sync.WaitGroup
	results := make([]tensor.Vector, 3)
	for rank := 0; rank < 3; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				v := tensor.Vector{1, 2, 3, 4}
				if err := r.AllReduce(rank, v); err != nil {
					t.Error(err)
					return
				}
				results[rank] = v
			}
		}()
	}
	wg.Wait()
	for rank := 0; rank < 3; rank++ {
		if results[rank][0] != 3 || results[rank][3] != 12 {
			t.Fatalf("rank %d = %v", rank, results[rank])
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("zero ranks accepted")
	}
	r, _ := NewRing(2)
	if err := r.AllReduce(5, tensor.Vector{1}); err == nil {
		t.Error("out-of-range rank accepted")
	}
	// Single-rank reduce is the identity and never blocks.
	one, _ := NewRing(1)
	v := tensor.Vector{7}
	if err := one.AllReduce(0, v); err != nil || v[0] != 7 {
		t.Errorf("single-rank reduce: %v %v", v, err)
	}
}

// Property: all-reduce equals the naive sum for random inputs.
func TestAllReduceMatchesNaiveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		dim := n + rng.Intn(20)
		inputs := make([]tensor.Vector, n)
		want := tensor.NewVector(dim)
		for rank := range inputs {
			inputs[rank] = tensor.NewVector(dim)
			for i := range inputs[rank] {
				inputs[rank][i] = rng.NormFloat64()
				want[i] += inputs[rank][i]
			}
		}
		r, err := NewRing(n)
		if err != nil {
			return false
		}
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for rank := 0; rank < n; rank++ {
			rank := rank
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := r.AllReduce(rank, inputs[rank]); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		for rank := 0; rank < n; rank++ {
			for i := 0; i < dim; i++ {
				if math.Abs(inputs[rank][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	link := profile.LinkModel{PeakBPS: 10e9, Efficiency: 0.5, Latency: 1e-4}
	if got := Time(1<<20, 1, link); got != 0 {
		t.Errorf("single worker time = %v, want 0", got)
	}
	t4 := Time(100<<20, 4, link)
	t8 := Time(100<<20, 8, link)
	if t4 <= 0 {
		t.Fatal("cost must be positive")
	}
	// Bandwidth term is nearly n-independent (2(n-1)/n approaches 2);
	// latency term grows with n. For small latency the times are close.
	if t8 < t4 {
		t.Errorf("8-worker ring (%v) should not beat 4-worker (%v) on latency-bound terms", t8, t4)
	}
}

func TestBusBandwidthVolume(t *testing.T) {
	// The paper's Horovod VGG-19 figure: ~515 MB moved per worker for a
	// 548 MB parameter set on 16 workers: 2*15/16*548 = 1027 MB total,
	// 515 MB each direction.
	param := int64(548e6)
	vol := BusBandwidthVolume(param, 16)
	if vol/2 < 500e6 || vol/2 > 530e6 {
		t.Errorf("one-way volume = %d MB, want ~515 MB", vol/2/1e6)
	}
	if BusBandwidthVolume(param, 1) != 0 {
		t.Error("single worker moves nothing")
	}
}
