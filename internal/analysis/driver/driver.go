// Package driver loads type-checked packages for hetlint without any
// dependency outside the standard library.
//
// The loader shells out to `go list -export -deps -json`, which compiles
// (or reuses from the build cache) each dependency's export data, then
// parses the target packages from source and type-checks them against that
// export data through go/importer's gc importer. This is the same division
// of labor as cmd/go's own vet driver: source + comments for the packages
// under analysis, compiled export summaries for everything they import.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"hetpipe/internal/analysis"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ListedPackage is the subset of `go list -json` output the loader reads.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// List runs `go list -export -deps -json` over the patterns in dir and
// returns the decoded package records (targets and dependencies).
func List(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports extracts the import path -> export data file map from a listing.
func Exports(pkgs []ListedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// StdExports lists the given import paths (typically standard library
// packages fixtures import) and returns their export data map, dependencies
// included.
func StdExports(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	pkgs, err := List(dir, paths...)
	if err != nil {
		return nil, err
	}
	return Exports(pkgs), nil
}

// Load lists the patterns and returns every non-dependency, non-standard
// package parsed (with comments — hetlint directives live there) and
// type-checked against its dependencies' export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, Exports(listed), nil)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		pkg, err := CheckFiles(fset, imp, lp.ImportPath, fileJoin(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func fileJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// CheckFiles parses the named files and type-checks them as import path,
// returning the analysis-ready package.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the full types.Info the analyzers expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Check type-checks already-parsed files (the analysistest harness's entry
// point; fixtures are parsed from testdata, not go list).
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Importer resolves imports from compiled export data, with an optional
// overlay of locally type-checked packages (fixture dependencies) consulted
// first. It satisfies types.ImporterFrom.
type Importer struct {
	base   types.ImporterFrom
	locals map[string]*types.Package
	// remap translates source import paths to canonical ones before export
	// lookup (the vettool protocol's ImportMap); nil means identity.
	remap map[string]string
}

// NewImporter builds an Importer over an import path -> export data file
// map and an optional local package overlay.
func NewImporter(fset *token.FileSet, exports map[string]string, locals map[string]*types.Package) *Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base, _ := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &Importer{base: base, locals: locals}
}

// SetRemap installs a source-path -> canonical-path translation (vettool
// ImportMap).
func (i *Importer) SetRemap(m map[string]string) { i.remap = m }

// Import implements types.Importer.
func (i *Importer) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (i *Importer) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := i.locals[path]; ok {
		return p, nil
	}
	if canon, ok := i.remap[path]; ok {
		path = canon
	}
	if i.base == nil {
		return nil, fmt.Errorf("importer unavailable for %q", path)
	}
	return i.base.ImportFrom(path, dir, mode)
}

// Run applies each analyzer to each package and returns the findings in
// deterministic (file, line, column, analyzer) order.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
