package analysis_test

import (
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/analysistest"
)

func TestDetWallTime(t *testing.T) {
	analysistest.Run(t, analysis.DetWallTime,
		analysistest.Package{Path: "fix/internal/sim", Dir: "testdata/detwalltime/det"},
	)
}

// TestDetWallTimeLivePackage proves the analyzer is scoped: wall-clock calls
// in a non-deterministic package produce no diagnostics.
func TestDetWallTimeLivePackage(t *testing.T) {
	analysistest.Run(t, analysis.DetWallTime,
		analysistest.Package{Path: "fix/live", Dir: "testdata/detwalltime/live"},
	)
}
