package analysis_test

import (
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/analysistest"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysis.MapIter,
		analysistest.Package{Path: "fix/internal/sweep", Dir: "testdata/mapiter/det"},
	)
}
