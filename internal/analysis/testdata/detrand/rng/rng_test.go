// Test files are exempt from detrand: ad-hoc randomness in tests does not
// affect production determinism.
package rng

import "math/rand"

func helperForTests() int {
	return rand.Intn(10)
}
