// Package rng is a detrand fixture: global math/rand draws and unauditable
// sources are flagged everywhere outside tests.
package rng

import "math/rand"

// fixed is a custom Source whose determinism the analyzer cannot prove.
type fixed struct{}

func (fixed) Int63() int64 { return 42 }
func (fixed) Seed(int64)   {}

func BadGlobal() int {
	return rand.Intn(10) // want `shared process-wide source`
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `shared process-wide source`
}

func BadNew() *rand.Rand {
	return rand.New(fixed{}) // want `not a direct rand.NewSource`
}

// AllowedNew is a vetted deterministic source, waved through explicitly.
func AllowedNew() *rand.Rand {
	//hetlint:allow rand
	return rand.New(fixed{})
}

// Good is the required idiom: a fresh generator over a config-carried seed.
func Good(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
