// Package use consumes fix/errs sentinels; outside the defining package
// identity comparison and non-%w wrapping are flagged.
package use

import (
	"errors"
	"fmt"

	"fix/errs"
)

func BadCompare(err error) bool {
	return err == errs.ErrBad // want `use errors.Is`
}

func BadNotEqual(err error) bool {
	return err != errs.ErrWorse // want `use errors.Is`
}

func BadWrap() error {
	return fmt.Errorf("resolving model: %v", errs.ErrBad) // want `without %w`
}

func BadSwitch(err error) string {
	switch err {
	case errs.ErrWorse: // want `use errors.Is`
		return "worse"
	}
	return ""
}

func Good(err error) bool {
	return errors.Is(err, errs.ErrBad)
}

func GoodWrap() error {
	return fmt.Errorf("resolving model: %w", errs.ErrBad)
}

func GoodNilCheck(err error) bool {
	return err == nil
}
