// Package errs is the senterr fixture's sentinel-defining package.
package errs

import "errors"

// ErrBad and ErrWorse are exported sentinels in the options.go style.
var (
	ErrBad   = errors.New("errs: bad")
	ErrWorse = errors.New("errs: worse")
)

// IsBad compares by identity inside the defining package, which is
// legitimate: this package knows it never wrapped the value.
func IsBad(err error) bool { return err == ErrBad }
