// Package det is a detwalltime fixture type-checked under a deterministic
// package path (fix/internal/sim).
package det

import "time"

func Bad() time.Time {
	return time.Now() // want `wall-clock call time.Now`
}

func BadSleep() {
	time.Sleep(time.Millisecond) // want `wall-clock call time.Sleep`
}

func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock call time.Since`
}

func BadTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `wall-clock call time.NewTicker`
}

// AllowedSeam models a vetted live-runtime seam inside a deterministic
// package: the directive suppresses the finding.
func AllowedSeam() time.Time {
	//hetlint:allow walltime
	return time.Now()
}

// PureValues uses package time only for constants and types, which observe
// no clock.
func PureValues() time.Duration {
	return 5 * time.Millisecond
}
