// Package live is a detwalltime fixture under a non-deterministic path:
// wall-clock reads are the live runtime's business.
package live

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

func Now() time.Time {
	return time.Now()
}
