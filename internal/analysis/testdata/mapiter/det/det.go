// Package det is a mapiter fixture type-checked under a deterministic
// package path (fix/internal/sweep).
package det

import "sort"

func BadAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `ordered output \(slice append\)`
		out = append(out, v)
	}
	return out
}

func BadFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `ordered output \(float accumulation\)`
		sum += v
	}
	return sum
}

type sink struct{}

func (sink) Emit(string, int) {}

func BadObserver(m map[string]int, s sink) {
	for k, v := range m { // want `ordered output \(call to Emit\)`
		s.Emit(k, v)
	}
}

// GoodCollectSort is the sanctioned idiom: collect keys, sort, then iterate
// the slice.
func GoodCollectSort(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// GoodCommutative bodies (max, integer counting, map writes, deletes) are
// order-insensitive and stay unflagged.
func GoodCommutative(m map[string]int, other map[string]bool) int {
	n := 0
	for k, v := range m {
		if v > n {
			n = v
		}
		other[k] = true
	}
	return n
}

// AllowedIter demonstrates the explicit escape hatch.
func AllowedIter(m map[string]int) []int {
	var out []int
	//hetlint:allow mapiter
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
