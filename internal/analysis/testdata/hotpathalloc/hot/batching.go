package hot

import "fmt"

// batcher mirrors the serving plane's continuous-batching admission path
// (internal/serve): head-indexed receiver-owned rings that amortize to zero
// allocations, with compaction instead of re-slicing from fresh arrays. The
// Good functions are the sanctioned idiom; each Bad variant is a tempting
// rewrite the analyzer must keep out of the hot path.
type batcher struct {
	pending []int32
	head    int
	members []int32
	counts  []int32
}

// GoodEnqueue pushes onto a receiver-owned ring and compacts the consumed
// head in place — the batching idiom: no fresh backing arrays once warm.
//
//hetlint:hotpath
func (b *batcher) GoodEnqueue(id int32) {
	b.pending = append(b.pending, id)
	if b.head >= 16 && b.head >= len(b.pending)-b.head {
		n := copy(b.pending, b.pending[b.head:])
		b.pending = b.pending[:n]
		b.head = 0
	}
}

// GoodAdmit coalesces queued ids into the receiver's member and count rings.
//
//hetlint:hotpath
func (b *batcher) GoodAdmit(capacity int) int {
	n := 0
	for b.head < len(b.pending) && n < capacity {
		b.members = append(b.members, b.pending[b.head])
		b.head++
		n++
	}
	if n > 0 {
		b.counts = append(b.counts, int32(n))
	}
	return n
}

// BadFreshBatch materializes each microbatch as a fresh slice.
//
//hetlint:hotpath
func (b *batcher) BadFreshBatch() []int32 {
	batch := []int32{}                          // want `slice literal`
	return append(batch, b.pending[b.head:]...) // want `non-receiver slice`
}

// BadLocalAppend drains into a caller-supplied slice: every admit grows a
// backing array the receiver cannot reuse.
//
//hetlint:hotpath
func (b *batcher) BadLocalAppend(out []int32) []int32 {
	return append(out, b.pending[b.head:]...) // want `non-receiver slice`
}

// BadDeferredAdmit captures the batch in a closure per admission.
//
//hetlint:hotpath
func (b *batcher) BadDeferredAdmit(capacity int) func() int {
	return func() int { return b.GoodAdmit(capacity) } // want `closure literal`
}

// BadAdmitLog formats a progress line per admitted batch.
//
//hetlint:hotpath
func (b *batcher) BadAdmitLog(n int) string {
	return fmt.Sprintf("admitted %d", n) // want `fmt.Sprintf call allocates`
}
