// Package hot is a hotpathalloc fixture: only functions annotated
// //hetlint:hotpath are checked, and each allocating construct is flagged.
package hot

import "fmt"

type iface interface{ M() }

type val struct{ n int }

func (val) M() {}

func sink(i iface) { _ = i }

type ring struct {
	buf  []int
	name string
}

//hetlint:hotpath
func (r *ring) BadClosure(n int) func() {
	return func() { _ = n } // want `closure literal`
}

//hetlint:hotpath
func (r *ring) BadLiterals() {
	m := map[int]int{} // want `map literal`
	s := []int{1, 2}   // want `slice literal`
	_, _ = m, s
}

//hetlint:hotpath
func (r *ring) BadAppend(xs []int) []int {
	return append(xs, 1) // want `non-receiver slice`
}

// GoodAppend grows a receiver-owned buffer: amortized, allowed.
//
//hetlint:hotpath
func (r *ring) GoodAppend(v int) {
	r.buf = append(r.buf, v)
}

//hetlint:hotpath
func (r *ring) BadFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf call allocates`
}

//hetlint:hotpath
func (r *ring) BadConcat(a, b string) string {
	return a + b // want `string concatenation`
}

//hetlint:hotpath
func (r *ring) BadBox(v val) {
	sink(v) // want `interface conversion of non-pointer value`
}

// GoodPointerBox passes a pointer: it fits the interface word, no box.
//
//hetlint:hotpath
func (r *ring) GoodPointerBox(v *val) {
	sink(v)
}

// GoodConstPanic: constant panic messages live in static data.
//
//hetlint:hotpath
func (r *ring) GoodConstPanic() {
	if len(r.buf) > 1<<30 {
		panic("ring: overflow")
	}
}

//hetlint:hotpath
func Standalone(xs []int) []int {
	return append(xs, 1) // want `non-receiver slice`
}

// Cold functions may allocate freely.
func (r *ring) Cold() string {
	return fmt.Sprintf("%v", r.buf)
}

// AllowedCold carries an explicit waiver for a cold branch inside a hot
// function.
//
//hetlint:hotpath
func (r *ring) AllowedCold() {
	//hetlint:allow alloc
	r.name = fmt.Sprintf("ring%d", len(r.buf))
}
