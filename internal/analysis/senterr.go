package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the sentinel-error contract around the exported Err*
// variables (ErrUnknownModel … ErrBadInterleave and any future siblings).
//
// Two rules:
//
//  1. A fmt.Errorf that mentions a sentinel must wrap it with %w, otherwise
//     the added context silently severs the errors.Is chain the public API
//     documents — callers match hetpipe.ErrUnknownModel through wrapped
//     returns, and a %v/%s wrap makes that test false without any compile
//     error.
//  2. Outside the sentinel's defining package, comparisons must go through
//     errors.Is: `err == pkg.ErrX` (or a switch case on err) is false for
//     every wrapped return, which is exactly the bug rule 1 exists to keep
//     impossible.
//
// Inside the defining package, identity comparison of an unwrapped sentinel
// is legitimate (that package knows which errors it never wrapped).
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "require %w wrapping and errors.Is matching for exported Err* sentinels",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n.OpPos, n.Op.String(), n.X, n.Y)
				}
			case *ast.SwitchStmt:
				checkErrorSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that mention a sentinel but whose
// constant format string never uses %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	pkg, name, ok := pkgFunc(pass.Info, call.Fun)
	if !ok || pkg != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	var sentinels []string
	for _, arg := range call.Args[1:] {
		if v := sentinelOf(pass, arg); v != nil {
			sentinels = append(sentinels, v.Name())
		}
	}
	if len(sentinels) == 0 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to prove mechanically
	}
	if !strings.Contains(constant.StringVal(tv.Value), "%w") {
		pass.Reportf(call.Pos(), "senterr",
			"fmt.Errorf carries sentinel %s without %%w; the added context severs the errors.Is chain",
			sentinels[0])
	}
}

// checkSentinelCompare flags ==/!= against a sentinel defined in another
// package.
func checkSentinelCompare(pass *Pass, pos token.Pos, op string, x, y ast.Expr) {
	for _, e := range []ast.Expr{x, y} {
		v := sentinelOf(pass, e)
		if v == nil || v.Pkg() == pass.Pkg {
			continue
		}
		pass.Reportf(pos, "senterr",
			"%s against sentinel %s.%s is false for every wrapped error; use errors.Is",
			op, v.Pkg().Name(), v.Name())
	}
}

// checkErrorSwitch flags `switch err { case pkg.ErrX: }` — the same identity
// comparison as ==, spelled as a switch.
func checkErrorSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.Info.TypeOf(sw.Tag); t == nil || !isErrorType(t) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinelOf(pass, e); v != nil && v.Pkg() != pass.Pkg {
				pass.Reportf(e.Pos(), "senterr",
					"switch case on sentinel %s.%s is an identity comparison; use errors.Is",
					v.Pkg().Name(), v.Name())
			}
		}
	}
}

// sentinelOf resolves an expression to an exported package-level Err*
// variable of error type, or nil.
func sentinelOf(pass *Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		obj = pass.Info.ObjectOf(e.Sel)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.Exported() || v.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	// Package-level only: locals named ErrX are not sentinels.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isErrorType(t types.Type) bool {
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}
