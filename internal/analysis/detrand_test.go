package analysis_test

import (
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/analysistest"
)

func TestDetRand(t *testing.T) {
	analysistest.Run(t, analysis.DetRand,
		analysistest.Package{Path: "fix/rng", Dir: "testdata/detrand/rng"},
	)
}
