// Package analysistest runs a hetlint analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library alone.
//
// A fixture is a directory of Go files under testdata. Each expected
// diagnostic is declared on the offending line:
//
//	time.Now() // want `wall-clock`
//
// The quoted text (backquoted or double-quoted, several per comment allowed)
// is a regular expression matched against the diagnostic message. A fixture
// line with no want comment must produce no diagnostic, and every want must
// be matched — so each fixture proves true positives and true negatives in
// one pass.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/driver"
)

// Package names one fixture package: the directory holding its files and
// the import path to type-check it under. The path matters — analyzers
// classify deterministic packages by path segment — so fixtures choose
// paths like "fix/internal/sim" or "fix/live" to select the regime under
// test.
type Package struct {
	Path string
	Dir  string
}

// Run loads the fixture packages in order (earlier packages are importable
// by later ones), applies the analyzer to every one, and reports mismatches
// between diagnostics and want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Package) {
	t.Helper()
	fset := token.NewFileSet()
	locals := make(map[string]*types.Package)

	type parsedPkg struct {
		Package
		files []*ast.File
	}
	var (
		parsed []parsedPkg
		std    []string
		stdSet = make(map[string]bool)
		local  = make(map[string]bool)
	)
	for _, p := range pkgs {
		local[p.Path] = true
	}
	for _, p := range pkgs {
		files, err := parseDir(fset, p.Dir)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", p.Dir, err)
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !local[path] && !stdSet[path] {
					stdSet[path] = true
					std = append(std, path)
				}
			}
		}
		parsed = append(parsed, parsedPkg{Package: p, files: files})
	}

	exports, err := stdExports(std)
	if err != nil {
		t.Fatalf("resolving standard library exports: %v", err)
	}
	imp := driver.NewImporter(fset, exports, locals)

	var checked []*driver.Package
	for _, p := range parsed {
		pkg, err := driver.Check(fset, imp, p.Path, p.files)
		if err != nil {
			t.Fatalf("fixture %s: %v", p.Dir, err)
		}
		locals[p.Path] = pkg.Types
		checked = append(checked, pkg)
	}

	diags, err := driver.Run(checked, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	matchWants(t, fset, checked, diags)
}

// want is one expectation: a regexp pinned to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the quoted expectations from a want comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

// quotedRe splits the expectation list into individual quoted strings.
var quotedRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func matchWants(t *testing.T, fset *token.FileSet, pkgs []*driver.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						text := q[1 : len(q)-1]
						if q[0] == '"' {
							if u, err := strconv.Unquote(q); err == nil {
								text = u
							}
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches, reporting whether one existed.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseDir parses every .go file in dir, sorted by name for determinism.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// stdExports caches `go list -export` results across Run calls so each test
// binary shells out once per new import path set.
var (
	stdMu    sync.Mutex
	stdCache = map[string]string{}
	stdSeen  = map[string]bool{}
)

func stdExports(paths []string) (map[string]string, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	var missing []string
	for _, p := range paths {
		if !stdSeen[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		m, err := driver.StdExports(".", missing...)
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			stdCache[k] = v
		}
		for _, p := range missing {
			stdSeen[p] = true
		}
	}
	out := make(map[string]string, len(stdCache))
	for k, v := range stdCache {
		out[k] = v
	}
	return out, nil
}
