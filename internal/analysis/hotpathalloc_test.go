package analysis_test

import (
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotPathAlloc,
		analysistest.Package{Path: "fix/hot", Dir: "testdata/hotpathalloc/hot"},
	)
}
