package analysis

import (
	"go/ast"
)

// DetRand forbids the global math/rand source and unseeded generators in
// production code.
//
// Every stochastic choice in the system — fault plans, synthetic data,
// training shuffles — must draw from a rand.New(rand.NewSource(seed)) whose
// seed travels through the config, or sweeps stop being reproducible and
// the conformance harness can no longer compare sim against live. The
// package-level rand.Intn etc. share a process-global source that other
// code can reseed or advance, and a rand.New over anything but a direct
// rand.NewSource(seed) cannot be audited for determinism mechanically;
// wrap genuinely deterministic custom sources with `//hetlint:allow rand`.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand functions and unseeded rand.New outside tests",
	Run:  runDetRand,
}

// randPkgs are the math/rand variants the check covers.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// globalRandFuncs are the package-level draws on the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkg, name, ok := pkgFunc(pass.Info, n); ok && randPkgs[pkg] && globalRandFuncs[name] {
					pass.Reportf(n.Pos(), "rand",
						"global rand.%s draws from the shared process-wide source; use rand.New(rand.NewSource(seed)) with a config-carried seed",
						name)
				}
			case *ast.CallExpr:
				if pkg, name, ok := pkgFunc(pass.Info, n.Fun); ok && randPkgs[pkg] && name == "New" {
					if !seededSource(pass, n) {
						pass.Reportf(n.Pos(), "rand",
							"rand.New source is not a direct rand.NewSource(seed); determinism cannot be audited (//hetlint:allow rand for vetted deterministic sources)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// seededSource reports whether every source argument of a rand.New call is
// itself a direct call to a source constructor of the same rand package
// (NewSource for math/rand, NewPCG/NewChaCha8 for math/rand/v2).
func seededSource(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	for _, arg := range call.Args {
		inner, ok := arg.(*ast.CallExpr)
		if !ok {
			return false
		}
		pkg, name, ok := pkgFunc(pass.Info, inner.Fun)
		if !ok || !randPkgs[pkg] {
			return false
		}
		if name != "NewSource" && name != "NewPCG" && name != "NewChaCha8" {
			return false
		}
	}
	return true
}
