// Package analysis is hetlint's analyzer suite: five vet-style static
// checks that turn the repository's two load-bearing conventions —
// bit-identical determinism and allocation-free steady-state hot paths —
// into mechanically enforced properties.
//
// The framework mirrors the golang.org/x/tools/go/analysis shape (an
// Analyzer runs over a type-checked Pass and reports Diagnostics) but is
// built on the standard library alone, so the module stays dependency-free.
// Packages are loaded either directly (driver subpackage, `hetlint ./...`)
// or through cmd/go's vettool protocol (`go vet -vettool=hetlint ./...`);
// the analyzers are agnostic to how the Pass was produced.
//
// Analyzers consult three source directives:
//
//	//hetlint:hotpath        — marks a function steady-state hot; the
//	                           hotpathalloc analyzer forbids allocation-
//	                           inducing constructs inside it
//	//hetlint:allow <check>  — suppresses one check (walltime, rand,
//	                           mapiter, alloc, senterr) on the directive's
//	                           line or the line directly below it
//
// Test files (*_test.go) are exempt from every check: determinism and
// allocation discipline are production-code invariants, and tests routinely
// use wall clocks, ad-hoc randomness, and fmt freely.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Analyzer is one static check. Run inspects the Pass and reports findings
// through pass.Reportf; a non-nil error aborts the whole hetlint run (it
// signals a broken analyzer, not a finding).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks selections.
	Name string
	// Doc is the one-line description shown by `hetlint -list`.
	Doc string
	// Run performs the check on one type-checked package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way go vet does:
// file:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report receives each finding; the driver aggregates across passes.
	Report func(Diagnostic)

	// directives maps file -> line -> the hetlint directives on that line,
	// built lazily from the files' comments.
	directives map[string]map[int][]string
}

// Reportf reports a finding at pos unless an `//hetlint:allow <check>`
// directive suppresses it. check is the allow-key (e.g. "walltime"), which
// is not always the analyzer name: one analyzer may own several keys.
func (p *Pass) Reportf(pos token.Pos, check, format string, args ...any) {
	if p.Allowed(check, pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether an `//hetlint:allow check` directive covers pos:
// the directive suppresses findings on its own line (trailing comment) and
// on the line directly below it (standalone comment above the statement).
func (p *Pass) Allowed(check string, pos token.Pos) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	want := "allow " + check
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, d := range lines[l] {
			if d == want {
				return true
			}
		}
	}
	return false
}

// directivePrefix introduces a hetlint source directive. Like go:directives,
// the comment must have no space after the slashes.
const directivePrefix = "//hetlint:"

func (p *Pass) buildDirectives() {
	p.directives = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				position := p.Fset.Position(c.Pos())
				lines := p.directives[position.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.directives[position.Filename] = lines
				}
				lines[position.Line] = append(lines[position.Line], strings.TrimSpace(text))
			}
		}
	}
}

// HasDirective reports whether the function declaration carries the given
// hetlint directive (e.g. "hotpath") in its doc comment.
func HasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok &&
			strings.TrimSpace(text) == directive {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file a node belongs to is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(filepath.Base(p.Fset.Position(pos).Filename), "_test.go")
}

// deterministicPkgs are the path segments naming packages whose outputs are
// golden-pinned or conformance-checked: any wall-clock read, unseeded random
// draw, or map-iteration-ordered output inside them breaks byte-identical
// sweeps and the sim-vs-live weight conformance.
var deterministicPkgs = map[string]bool{
	"sim":       true,
	"core":      true,
	"pipeline":  true,
	"sched":     true,
	"partition": true,
	"sweep":     true,
	"fault":     true,
	"wsp":       true,
	"serve":     true,
}

// IsDeterministic reports whether the import path names one of the
// deterministic packages (matched per path segment, so fixtures and forks
// under any module prefix classify the same way).
func IsDeterministic(pkgPath string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		if deterministicPkgs[seg] {
			return true
		}
	}
	return false
}

// pkgFunc resolves a selector expression like time.Now to (package path,
// name) when it denotes a package-level object of an imported package.
func pkgFunc(info *types.Info, e ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DetWallTime,
		DetRand,
		MapIter,
		HotPathAlloc,
		SentErr,
	}
}
