package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags map iteration whose body feeds ordered output in the
// deterministic packages.
//
// Go randomizes map iteration order per run, so a `range m` that appends to
// a slice, accumulates floats (float addition does not commute bitwise),
// writes to an encoder or builder, or emits observer events produces output
// that differs run to run — exactly what the byte-identical sweep tests and
// golden schedules forbid. Commutative bodies (integer counting, max/min,
// writes into another map, delete) are fine and are not flagged.
//
// The one sanctioned iteration idiom passes unflagged: collect the keys (or
// values) into a slice and sort it before use,
//
//	keys := make([]string, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// anything else needs `//hetlint:allow mapiter` with a justification.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding ordered output in deterministic packages",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	if !IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.Info.TypeOf(rng.X); t == nil {
					return true
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fn, rng)
				return true
			})
		}
	}
	return nil
}

// checkMapRange classifies one map-range body and reports it when ordered
// output is reachable and the collect-then-sort idiom does not apply.
func checkMapRange(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	var (
		triggers []string
		appends  []*types.Var // targets of `s = append(s, ...)` statements
		onlyApp  = true       // every trigger is a plain collect-append
	)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if v, plain := collectAppend(pass, n); plain {
				appends = append(appends, v)
				triggers = append(triggers, "slice append")
				return true
			}
			if floatAccumulate(pass, n) {
				triggers = append(triggers, "float accumulation")
				onlyApp = false
			}
			if stringAccumulate(pass, n) {
				triggers = append(triggers, "string concatenation")
				onlyApp = false
			}
		case *ast.CallExpr:
			if isAppendCall(pass, n) {
				// An append not captured as a plain collect-assign above
				// (e.g. nested in an expression or targeting a field).
				if !partOfCollect(pass, n) {
					triggers = append(triggers, "slice append")
					onlyApp = false
				}
			} else if name, ok := orderedWriterCall(pass, n); ok {
				triggers = append(triggers, "call to "+name)
				onlyApp = false
			}
		case *ast.SendStmt:
			triggers = append(triggers, "channel send")
			onlyApp = false
		}
		return true
	})
	if len(triggers) == 0 {
		return
	}
	if onlyApp && len(appends) > 0 && allSortedAfter(pass, fn, rng, appends) {
		return // the sanctioned collect-then-sort idiom
	}
	pass.Reportf(rng.Pos(), "mapiter",
		"map iteration order is random but the loop body reaches ordered output (%s); sort the keys first",
		triggers[0])
}

// collectAppend matches the collect idiom statement `v = append(v, ...)`
// where v is a plain local variable, returning its object.
func collectAppend(pass *Pass, as *ast.AssignStmt) (*types.Var, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return nil, false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isAppendCall(pass, call) || len(call.Args) == 0 {
		return nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.Info.ObjectOf(first) != pass.Info.ObjectOf(lhs) {
		return nil, false
	}
	v, ok := pass.Info.ObjectOf(lhs).(*types.Var)
	return v, ok
}

// partOfCollect reports whether the append call is the RHS of a statement
// collectAppend accepts, so the CallExpr branch does not double-count it.
func partOfCollect(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	_, isVar := pass.Info.ObjectOf(first).(*types.Var)
	return isVar
}

func isAppendCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// floatAccumulate matches `x op= y` (or x = x op y is out of scope) where x
// is floating point: float addition order changes low bits.
func floatAccumulate(pass *Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	t := pass.Info.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// stringAccumulate matches `s += ...` on a string.
func stringAccumulate(pass *Pass, as *ast.AssignStmt) bool {
	if as.Tok != token.ADD_ASSIGN {
		return false
	}
	t := pass.Info.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// orderedWriterTypes are receiver types whose method calls produce ordered
// output byte by byte.
var orderedWriterTypes = map[string]bool{
	"strings.Builder":       true,
	"bytes.Buffer":          true,
	"bufio.Writer":          true,
	"encoding/json.Encoder": true,
	"encoding/csv.Writer":   true,
}

// orderedWriterPrefixes are method-name prefixes treated as ordered emission
// (encoders, observers, loggers). Add/Insert-style names stay exempt: they
// commonly target commutative structures (sets, maps, counters).
var orderedWriterPrefixes = []string{
	"Write", "Emit", "Encode", "Print", "Fprint", "Observe", "Record", "Log", "Send",
}

// orderedWriterCall reports whether the call is a function or method call
// that writes ordered output, returning a short description.
func orderedWriterCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Method call on a known byte-ordered writer type; package-qualified
	// calls (fmt.Fprintf, ...) fall through to the name-prefix rule.
	isPkgQualified := false
	if id, ok := sel.X.(*ast.Ident); ok {
		_, isPkgQualified = pass.Info.Uses[id].(*types.PkgName)
	}
	if !isPkgQualified {
		if t := pass.Info.TypeOf(sel.X); t != nil {
			if name := typeName(t); orderedWriterTypes[name] {
				return name + "." + sel.Sel.Name, true
			}
		}
	}
	for _, p := range orderedWriterPrefixes {
		if strings.HasPrefix(sel.Sel.Name, p) {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// typeName renders a (possibly pointer) named type as pkgpath.Name with the
// package path shortened to match orderedWriterTypes keys.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// allSortedAfter reports whether every collect-append target is passed to a
// sort/slices call after the range statement within the enclosing function.
func allSortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, targets []*types.Var) bool {
	for _, v := range targets {
		if !sortedAfter(pass, fn, rng.End(), v) {
			return false
		}
	}
	return true
}

func sortedAfter(pass *Pass, fn *ast.FuncDecl, after token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		pkg, _, ok := pkgFunc(pass.Info, call.Fun)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.Info.ObjectOf(id) == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
