package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc forbids allocation-inducing constructs in functions marked
// `//hetlint:hotpath`.
//
// The event engine's steady state runs allocation-free (BENCH_pipeline.json
// pins allocs/op, and the bench gate fails CI on >5% growth), but the bench
// gate only catches a regression after it lands and only on benchmarked
// configurations. This analyzer rejects the constructs that silently
// re-introduce steady-state allocation at compile-review time, inside any
// annotated function:
//
//   - closure literals (the pooled EventFunc path exists precisely to avoid
//     per-event closures);
//   - map and slice composite literals;
//   - append to a slice not rooted at the method receiver (receiver-owned
//     buffers amortize; fresh slices grow every call);
//   - string concatenation;
//   - any fmt.* call;
//   - implicit or explicit interface conversions of non-pointer,
//     non-constant values (boxing).
//
// Cold paths inside a hot function (panics with constant messages are fine
// as-is) can carry `//hetlint:allow alloc` with a justification.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //hetlint:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn, "hotpath") {
				continue
			}
			checkHotPath(pass, fn)
		}
	}
	return nil
}

func checkHotPath(pass *Pass, fn *ast.FuncDecl) {
	recv := receiverVar(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "alloc",
				"closure literal allocates in hot path %s (register a pooled handler instead)", fn.Name.Name)
			return false // the closure's own body is off the hot path now
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "alloc", "map literal allocates in hot path %s", fn.Name.Name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "alloc", "slice literal allocates in hot path %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, recv, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.TypeOf(n)) && pass.Info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "alloc", "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.Info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "alloc", "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		}
		return true
	})
}

// checkHotCall applies the call-shaped rules: append targets, fmt calls,
// explicit interface conversions, and implicit boxing at argument passing.
func checkHotCall(pass *Pass, fn *ast.FuncDecl, recv *types.Var, call *ast.CallExpr) {
	if isAppendCall(pass, call) {
		if len(call.Args) > 0 && !rootedAtReceiver(pass, recv, call.Args[0]) {
			pass.Reportf(call.Pos(), "alloc",
				"append to non-receiver slice in hot path %s grows a fresh backing array; use a receiver-owned buffer", fn.Name.Name)
		}
		return
	}
	if pkg, name, ok := pkgFunc(pass.Info, call.Fun); ok && pkg == "fmt" {
		pass.Reportf(call.Pos(), "alloc", "fmt.%s call allocates in hot path %s", name, fn.Name.Name)
		return
	}
	// Explicit conversion I(x) to an interface type.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "alloc",
				"interface conversion of non-pointer value allocates in hot path %s", fn.Name.Name)
		}
		return
	}
	// Implicit boxing: a non-pointer concrete argument passed for an
	// interface-typed parameter.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		p := paramType(sig, i)
		if p == nil || !types.IsInterface(p) {
			continue
		}
		if boxes(pass, arg) {
			pass.Reportf(arg.Pos(), "alloc",
				"interface conversion of non-pointer value allocates in hot path %s", fn.Name.Name)
		}
	}
}

// paramType resolves the static parameter type for argument i, unrolling
// the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether converting the expression to an interface allocates:
// true for non-constant values of non-pointer-shaped concrete types.
// Pointers, channels, maps, funcs, and unsafe.Pointers fit in the interface
// word; constants can live in static data; interfaces just re-box headers.
func boxes(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

// receiverVar returns the method receiver's variable, or nil for functions.
func receiverVar(pass *Pass, fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.Info.ObjectOf(fn.Recv.List[0].Names[0]).(*types.Var)
	return v
}

// rootedAtReceiver reports whether the expression is a selector/index chain
// whose base identifier is the method receiver (e.g. e.heap, r.queue[i:]).
func rootedAtReceiver(pass *Pass, recv *types.Var, e ast.Expr) bool {
	if recv == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x) == recv
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
