package analysis_test

import (
	"testing"

	"hetpipe/internal/analysis"
	"hetpipe/internal/analysis/analysistest"
)

// TestSentErr loads the sentinel-defining package first so the consuming
// package can import it; identity comparison inside fix/errs itself must
// stay clean while fix/use is flagged.
func TestSentErr(t *testing.T) {
	analysistest.Run(t, analysis.SentErr,
		analysistest.Package{Path: "fix/errs", Dir: "testdata/senterr/errs"},
		analysistest.Package{Path: "fix/use", Dir: "testdata/senterr/use"},
	)
}
