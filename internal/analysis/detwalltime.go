package analysis

import (
	"go/ast"
)

// DetWallTime forbids wall-clock reads in the deterministic packages.
//
// The simulator's clock is virtual (sim.Time); the golden schedule tests and
// the sim-vs-live conformance harness depend on runs being bit-identical
// across machines and re-runs. One time.Now in internal/sim, core, pipeline,
// sched, partition, sweep, fault, or wsp silently couples results to the
// host clock. The live runtime (internal/cluster, cmd) legitimately reads
// wall time and is outside the deterministic set; a deterministic package
// hosting a genuinely wall-clock-facing seam marks the site with
// `//hetlint:allow walltime`.
var DetWallTime = &Analyzer{
	Name: "detwalltime",
	Doc:  "forbid time.Now/Sleep/Since and friends in deterministic packages",
	Run:  runDetWallTime,
}

// wallClockFuncs are the package time functions that observe or depend on
// the wall clock. Conversions and constants (time.Duration, time.Millisecond)
// remain fine: they are pure values.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runDetWallTime(pass *Pass) error {
	if !IsDeterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := pkgFunc(pass.Info, sel); ok && pkg == "time" && wallClockFuncs[name] {
				pass.Reportf(sel.Pos(), "walltime",
					"wall-clock call time.%s in deterministic package %s (use virtual sim.Time; //hetlint:allow walltime for live-runtime seams)",
					name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
