// Package profile is the Section 7 performance model: it predicts per-layer
// computation times on each GPU type, communication times over PCIe and
// InfiniBand, and per-stage memory requirements.
//
// The paper obtains these predictions by profiling each DNN on each GPU type
// and fitting simple link models (peak PCIe bandwidth scaled down by a
// measured constant, a linear regression for InfiniBand). Without the
// physical testbed, this package anchors the compute model on the paper's own
// published single-virtual-worker measurements (Figure 3, Nm=1: homogeneous
// four-stage pipelines whose stage times sum to the whole-model time) and
// keeps the same link-model structure with representative constants.
//
// Layer times scale with each layer's share of the model's total FLOPs; the
// backward pass costs twice the forward pass, the standard ratio for
// convolutional training.
package profile

import (
	"fmt"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/sched"
)

// LinkModel predicts a transfer time as latency + bytes / effective
// bandwidth, where effective bandwidth is the peak scaled by a constant — the
// paper's "scaling-down constant" methodology for PCIe and the linear
// (intercept + slope) regression for InfiniBand.
type LinkModel struct {
	Name       string
	PeakBPS    float64 // peak bandwidth, bytes/second
	Efficiency float64 // fraction of peak achievable in practice
	Latency    float64 // per-transfer fixed cost, seconds
}

// Time predicts the one-way transfer time for a payload of the given size.
func (l LinkModel) Time(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + float64(bytes)/(l.PeakBPS*l.Efficiency)
}

// EffectiveBPS is the usable bandwidth after scaling down.
func (l LinkModel) EffectiveBPS() float64 { return l.PeakBPS * l.Efficiency }

// Perf is the full performance model.
type Perf struct {
	// PCIe is the intra-node link model (peak 15.75 GB/s scaled down).
	PCIe LinkModel
	// IB is the inter-node InfiniBand model (56 Gbps, linear regression).
	IB LinkModel
	// BwdFwdRatio is backward-pass cost relative to forward (typically 2).
	BwdFwdRatio float64
	// WorkspaceBytes is the fixed per-GPU framework overhead (CUDA context,
	// cuDNN workspaces) charged against device memory.
	WorkspaceBytes int64
	// PSProcBPS is the parameter-server processing rate in bytes/second:
	// serializing, applying, and re-serializing a shard costs shard-bytes /
	// PSProcBPS on top of the wire transfer. TensorFlow parameter servers
	// are CPU-bound at roughly this rate for large dense tensors.
	PSProcBPS float64
	// anchors maps model name -> GPU code -> whole-model training throughput
	// in images/sec for one GPU running every layer (compute only).
	anchors map[string]map[byte]float64
	// genericFLOPS maps GPU code -> effective training FLOP/s used for
	// models without a calibration anchor (synthetic test models).
	genericFLOPS map[byte]float64
}

// Default returns the model calibrated against the paper's testbed.
//
// Compute anchors start from the Figure 3 Nm=1 homogeneous measurements
// (VVVV/RRRR/GGGG/QQQQ absolute throughput) and are raised ~10% to account
// for the intra-node communication those measurements include, so that
// simulating the same configuration lands near the paper's number.
func Default() *Perf {
	return &Perf{
		PCIe: LinkModel{
			Name:       "pcie3x16",
			PeakBPS:    hw.PCIePeakBytes,
			Efficiency: 0.70, // measured scaling-down constant analog
			Latency:    15e-6,
		},
		IB: LinkModel{
			Name:       "ib-56g",
			PeakBPS:    hw.InfiniBandPeakBytes,
			Efficiency: 0.18, // TensorFlow gRPC over IPoIB reaches a small
			// fraction of line rate; this slope reproduces the paper's
			// heterogeneous Nm=1 anchors (e.g. VRGQ ResNet-152 at 42 img/s).
			Latency: 300e-6,
		},
		BwdFwdRatio:    2.0,
		WorkspaceBytes: 768 << 20,
		PSProcBPS:      1.5e9,
		anchors: map[string]map[byte]float64{
			"ResNet-152": {'V': 106, 'R': 96, 'G': 64, 'Q': 47},
			"VGG-19":     {'V': 131, 'R': 118, 'G': 68, 'Q': 56},
		},
		genericFLOPS: map[byte]float64{
			'V': 7.0e12, 'R': 6.3e12, 'G': 4.2e12, 'Q': 3.1e12,
		},
	}
}

// SetAnchor overrides or installs the compute anchor for (model, GPU code):
// whole-model images/sec on a single device.
func (p *Perf) SetAnchor(modelName string, code byte, imagesPerSec float64) {
	if p.anchors == nil {
		p.anchors = make(map[string]map[byte]float64)
	}
	if p.anchors[modelName] == nil {
		p.anchors[modelName] = make(map[byte]float64)
	}
	p.anchors[modelName][code] = imagesPerSec
}

// WholeModelTime predicts the fwd+bwd compute time for one minibatch if a
// single GPU of type g executed every layer of m.
func (p *Perf) WholeModelTime(m *model.Model, g *hw.GPUType, batch int) (float64, error) {
	if a, ok := p.anchors[m.Name]; ok {
		if rate, ok := a[g.Code]; ok && rate > 0 {
			return float64(batch) / rate, nil
		}
	}
	flops, ok := p.genericFLOPS[g.Code]
	if !ok {
		return 0, fmt.Errorf("profile: no anchor or generic rate for GPU %q", string(g.Code))
	}
	perSample := m.TotalFwdFLOPs() * (1 + p.BwdFwdRatio)
	return float64(batch) * perSample / flops, nil
}

// LayerTime predicts forward and backward compute times for layer li of m on
// GPU type g, for a full minibatch. Each layer's share of the whole-model
// time follows its share of total FLOPs.
func (p *Perf) LayerTime(m *model.Model, li int, g *hw.GPUType, batch int) (fwd, bwd float64, err error) {
	whole, err := p.WholeModelTime(m, g, batch)
	if err != nil {
		return 0, 0, err
	}
	total := m.TotalFwdFLOPs()
	if total <= 0 {
		return 0, 0, fmt.Errorf("profile: model %s has zero FLOPs", m.Name)
	}
	share := m.Layers[li].FwdFLOPs / total
	layer := whole * share
	fwd = layer / (1 + p.BwdFwdRatio)
	bwd = layer - fwd
	return fwd, bwd, nil
}

// ChunkTime predicts forward and backward compute times for one chunk — the
// contiguous layer range [lo, hi) — of m on GPU type g, for a full
// minibatch. A contiguous stage is the single-chunk case, so StageTime
// delegates here; chunked stages sum ChunkTime over their chunk set.
func (p *Perf) ChunkTime(m *model.Model, lo, hi int, g *hw.GPUType, batch int) (fwd, bwd float64, err error) {
	return p.StageTime(m, lo, hi, g, batch)
}

// StageTime predicts forward and backward compute times for the layer range
// [lo, hi) of m on GPU type g, for a full minibatch.
func (p *Perf) StageTime(m *model.Model, lo, hi int, g *hw.GPUType, batch int) (fwd, bwd float64, err error) {
	whole, err := p.WholeModelTime(m, g, batch)
	if err != nil {
		return 0, 0, err
	}
	total := m.TotalFwdFLOPs()
	var flops float64
	for i := lo; i < hi; i++ {
		flops += m.Layers[i].FwdFLOPs
	}
	stage := whole * flops / total
	fwd = stage / (1 + p.BwdFwdRatio)
	bwd = stage - fwd
	return fwd, bwd, nil
}

// TransferTime predicts a one-way transfer over the given interconnect.
func (p *Perf) TransferTime(bytes int64, kind hw.LinkKind) float64 {
	switch kind {
	case hw.LinkLocal:
		return 0
	case hw.LinkPCIe:
		return p.PCIe.Time(bytes)
	case hw.LinkInfiniBand:
		return p.IB.Time(bytes)
	default:
		panic(fmt.Sprintf("profile: unknown link kind %v", kind))
	}
}

// BoundaryTime predicts the time to move the activations (forward) or local
// gradients (backward) across the cut after layer cutAfter, for one
// minibatch. The two directions carry the same payload size.
func (p *Perf) BoundaryTime(m *model.Model, cutAfter, batch int, kind hw.LinkKind) float64 {
	return p.TransferTime(m.BoundaryBytes(cutAfter, batch), kind)
}

// StashCount bounds how many minibatches' activations stage (0-based) of a
// k-stage pipeline holds concurrently when Nm minibatches are in flight
// under the paper's own FIFO schedule: min(Nm, 2*(k-stage)-1). The last
// stage finishes each minibatch immediately (its forward and backward run
// back to back), so it holds one; the first stage holds activations for the
// whole round trip — the Figure 1 memory-variance observation that drives
// memory-aware partitioning. Other schedules have their own in-flight
// models; see sched.Schedule.StashCount and StageMemorySched.
func (p *Perf) StashCount(stage, k, nm int) int {
	return sched.FIFO.StashCount(stage, k, nm)
}

// StageMemory predicts the device memory stage (0-based, of k) needs to run
// layers [lo,hi) with Nm in-flight minibatches at the given batch size under
// the default hetpipe-fifo schedule: weights + gradient buffers + stashed
// activations + fixed workspace.
func (p *Perf) StageMemory(m *model.Model, lo, hi, stage, k, nm, batch int) int64 {
	return p.StageMemorySched(sched.Default(), m, lo, hi, stage, k, nm, batch)
}

// StageMemorySched is StageMemory under an explicit pipeline schedule: the
// weight, gradient, and workspace terms are schedule-independent, but the
// stashed-activation term follows the schedule's in-flight-activation model
// — GPipe's fill-drain stashes the whole Nm-wave on every stage, HetPipe's
// FIFO holds min(Nm, 2*(k-stage)-1), and strict 1F1B holds at most
// stage-depth (min(Nm, k-stage)) activations, which is what lets the
// partitioner admit a larger Nm under 1F1B on memory-constrained workers.
// The weight term scales with the schedule's WeightVersions: 2 buffers
// (weights + gradients) for the single-version disciplines, 3 for
// PipeDream-2BW's double-buffered updates.
func (p *Perf) StageMemorySched(s sched.Schedule, m *model.Model, lo, hi, stage, k, nm, batch int) int64 {
	return p.ChunkMemory(s, m, lo, hi, stage, k, nm, batch)
}

// ChunkMemory predicts the device memory one chunk [lo, hi) needs when it
// runs as virtual stage vs of a vstages-deep virtual pipeline: WeightVersions
// weight-sized buffers, the per-chunk activation stash under the schedule's
// ChunkStash bound, plus the fixed per-GPU workspace. A contiguous stage is
// the degenerate vs = stage, vstages = k case (StageMemorySched).
func (p *Perf) ChunkMemory(s sched.Schedule, m *model.Model, lo, hi, vs, vstages, nm, batch int) int64 {
	sc := sched.Or(s)
	var weights, stash int64
	for i := lo; i < hi; i++ {
		weights += m.Layers[i].WeightBytes()
		stash += m.Layers[i].StashElems * model.BytesPerElem
	}
	c := int64(sc.ChunkStash(vs, vstages, nm))
	return int64(sc.WeightVersions())*weights + stash*int64(batch)*c + p.WorkspaceBytes
}

// StageMemoryChunks predicts the device memory a worker stage needs to host
// a chunk set: chunk c (the contiguous layer range chunks[c] = [lo, hi))
// runs as virtual stage stage + c*k of the vstages = k*V virtual pipeline,
// so each chunk carries its own stash bound, while the fixed workspace is
// charged once per device. A single-chunk set with vstages = k reduces to
// StageMemorySched exactly.
func (p *Perf) StageMemoryChunks(s sched.Schedule, m *model.Model, chunks [][2]int, stage, k, vstages, nm, batch int) int64 {
	sc := sched.Or(s)
	wv := int64(sc.WeightVersions())
	total := p.WorkspaceBytes
	for c, ch := range chunks {
		var weights, stash int64
		for i := ch[0]; i < ch[1]; i++ {
			weights += m.Layers[i].WeightBytes()
			stash += m.Layers[i].StashElems * model.BytesPerElem
		}
		cnt := int64(sc.ChunkStash(stage+c*k, vstages, nm))
		total += wv*weights + stash*int64(batch)*cnt
	}
	return total
}
