package profile

import (
	"math"
	"testing"
	"testing/quick"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
)

func TestLinkModelTime(t *testing.T) {
	l := LinkModel{Name: "t", PeakBPS: 10e9, Efficiency: 0.5, Latency: 1e-3}
	if got := l.Time(0); got != 0 {
		t.Errorf("zero bytes = %v, want 0", got)
	}
	// 5e9 bytes at 5 GB/s effective = 1s, plus 1ms latency.
	if got := l.Time(5e9); math.Abs(got-1.001) > 1e-9 {
		t.Errorf("transfer = %v, want 1.001", got)
	}
	if got := l.EffectiveBPS(); got != 5e9 {
		t.Errorf("effective = %v, want 5e9", got)
	}
}

func TestWholeModelTimeAnchored(t *testing.T) {
	p := Default()
	m := model.VGG19()
	sec, err := p.WholeModelTime(m, hw.TitanV, 32)
	if err != nil {
		t.Fatal(err)
	}
	// 131 images/sec anchor: 32 images take 32/131 s.
	if want := 32.0 / 131.0; math.Abs(sec-want) > 1e-9 {
		t.Errorf("whole-model time = %v, want %v", sec, want)
	}
}

func TestWholeModelTimeGenericFallback(t *testing.T) {
	p := Default()
	m := model.Synthetic("syn", 4, 100, 1e9, 10)
	sec, err := p.WholeModelTime(m, hw.TitanV, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 GFLOPs fwd * 3 (fwd+bwd) / 7 TFLOPs.
	if want := 4e9 * 3 / 7e12; math.Abs(sec-want) > 1e-12 {
		t.Errorf("generic time = %v, want %v", sec, want)
	}
}

func TestSetAnchor(t *testing.T) {
	p := Default()
	m := model.Synthetic("syn", 4, 100, 1e9, 10)
	p.SetAnchor("syn", 'V', 64)
	sec, err := p.WholeModelTime(m, hw.TitanV, 32)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5; math.Abs(sec-want) > 1e-9 {
		t.Errorf("anchored time = %v, want %v", sec, want)
	}
}

func TestLayerTimesSumToWholeModel(t *testing.T) {
	p := Default()
	for _, m := range model.PaperModels() {
		whole, err := p.WholeModelTime(m, hw.TitanRTX, 32)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := range m.Layers {
			fwd, bwd, err := p.LayerTime(m, i, hw.TitanRTX, 32)
			if err != nil {
				t.Fatal(err)
			}
			if fwd < 0 || bwd < fwd {
				t.Errorf("%s layer %d: fwd=%v bwd=%v want bwd = 2*fwd >= 0", m.Name, i, fwd, bwd)
			}
			sum += fwd + bwd
		}
		if math.Abs(sum-whole)/whole > 1e-9 {
			t.Errorf("%s: layer times sum %v != whole %v", m.Name, sum, whole)
		}
	}
}

func TestStageTimeMatchesLayerSum(t *testing.T) {
	p := Default()
	m := model.VGG19()
	lo, hi := 3, 17
	sf, sb, err := p.StageTime(m, lo, hi, hw.QuadroP4000, 32)
	if err != nil {
		t.Fatal(err)
	}
	var wf, wb float64
	for i := lo; i < hi; i++ {
		f, b, err := p.LayerTime(m, i, hw.QuadroP4000, 32)
		if err != nil {
			t.Fatal(err)
		}
		wf += f
		wb += b
	}
	if math.Abs(sf-wf) > 1e-12 || math.Abs(sb-wb) > 1e-12 {
		t.Errorf("stage time (%v,%v) != layer sum (%v,%v)", sf, sb, wf, wb)
	}
}

func TestTransferTimeByKind(t *testing.T) {
	p := Default()
	if got := p.TransferTime(1<<20, hw.LinkLocal); got != 0 {
		t.Errorf("local transfer = %v, want 0", got)
	}
	pcie := p.TransferTime(100<<20, hw.LinkPCIe)
	ib := p.TransferTime(100<<20, hw.LinkInfiniBand)
	if pcie <= 0 || ib <= 0 {
		t.Fatal("transfers must take time")
	}
	if ib <= pcie {
		t.Errorf("InfiniBand (%v) should be slower than PCIe (%v)", ib, pcie)
	}
}

func TestStashCount(t *testing.T) {
	p := Default()
	k := 4
	// Last stage always holds one minibatch.
	if got := p.StashCount(3, k, 7); got != 1 {
		t.Errorf("last stage stash = %d, want 1", got)
	}
	// First stage holds up to 2k-1, capped by Nm.
	if got := p.StashCount(0, k, 7); got != 7 {
		t.Errorf("first stage stash (Nm=7) = %d, want 7", got)
	}
	if got := p.StashCount(0, k, 3); got != 3 {
		t.Errorf("first stage stash (Nm=3) = %d, want 3", got)
	}
	// Monotone decreasing across stages.
	prev := math.MaxInt32
	for s := 0; s < k; s++ {
		c := p.StashCount(s, k, 10)
		if c > prev {
			t.Errorf("stash count increased at stage %d", s)
		}
		prev = c
	}
}

func TestStageMemoryGrowsWithNm(t *testing.T) {
	p := Default()
	m := model.ResNet152()
	k := 4
	cut := len(m.Layers) / 4
	m1 := p.StageMemory(m, 0, cut, 0, k, 1, 32)
	m4 := p.StageMemory(m, 0, cut, 0, k, 4, 32)
	if m4 <= m1 {
		t.Errorf("stage-0 memory should grow with Nm: Nm=1 %d, Nm=4 %d", m1, m4)
	}
	// Last stage memory is Nm-independent once Nm >= 1.
	l1 := p.StageMemory(m, 3*cut, len(m.Layers), k-1, k, 1, 32)
	l4 := p.StageMemory(m, 3*cut, len(m.Layers), k-1, k, 4, 32)
	if l1 != l4 {
		t.Errorf("last-stage memory should not depend on Nm: %d vs %d", l1, l4)
	}
}

// Property: transfer time is monotone in payload size for both links.
func TestTransferMonotoneProperty(t *testing.T) {
	p := Default()
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return p.TransferTime(x, hw.LinkPCIe) <= p.TransferTime(y, hw.LinkPCIe) &&
			p.TransferTime(x, hw.LinkInfiniBand) <= p.TransferTime(y, hw.LinkInfiniBand)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stage memory is additive-consistent — a larger layer range never
// needs less memory (same stage position).
func TestStageMemoryMonotoneProperty(t *testing.T) {
	p := Default()
	m := model.VGG19()
	n := len(m.Layers)
	prop := func(a, b uint8) bool {
		lo := int(a) % n
		hi := lo + 1 + int(b)%(n-lo)
		mid := lo + (hi-lo)/2
		if mid == lo {
			return true
		}
		whole := p.StageMemory(m, lo, hi, 0, 4, 4, 32)
		part := p.StageMemory(m, lo, mid, 0, 4, 4, 32)
		return whole >= part
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAnchorOrderingMatchesPaper(t *testing.T) {
	// Compute power ordering from the paper: V > R > G > Q for both models.
	p := Default()
	for _, m := range model.PaperModels() {
		var prev float64 = math.Inf(1)
		for _, g := range hw.Catalog() {
			sec, err := p.WholeModelTime(m, g, 32)
			if err != nil {
				t.Fatal(err)
			}
			rate := 32.0 / sec
			if rate >= prev {
				t.Errorf("%s: rate ordering violated at %s", m.Name, g.Name)
			}
			prev = rate
		}
	}
}
