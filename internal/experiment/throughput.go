package experiment

import (
	"fmt"

	"hetpipe/internal/core"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/pipeline"
	"hetpipe/internal/profile"
	"hetpipe/internal/trace"
)

const batchSize = 32

func init() {
	register("table1", "Table 1", "Heterogeneous GPUs (hardware catalog)", Table1)
	register("table3", "Table 3", "Resource allocation per policy (Table 3)", Table3)
	register("figure1", "Figure 1", "Pipelined execution of minibatches within a virtual worker (Figure 1)", Figure1)
	register("figure3", "Figure 3", "Single virtual worker: throughput and max GPU utilization vs Nm (Figure 3)", Figure3)
	register("figure4", "Figure 4", "Throughput of allocation policies vs Horovod, D=0 (Figure 4)", Figure4)
	register("table4", "Table 4", "Adding whimpy GPUs (Table 4)", Table4)
}

// Table1 prints the GPU catalog.
func Table1(r *Report) error {
	r.addf("%-18s %-7s %9s %11s %11s %12s", "GPU", "Arch", "CUDACore", "Boost(MHz)", "Memory(GB)", "MemBW(GB/s)")
	for _, g := range hw.Catalog() {
		r.addf("%-18s %-7s %9d %11d %11d %12.0f",
			g.Name, g.Arch, g.CUDACores, g.BoostMHz, g.MemoryBytes>>30, g.MemBandwidth/1e9)
	}
	return nil
}

// Table3 prints the resource allocation of the three policies.
func Table3(r *Report) error {
	c := hw.Paper()
	r.addf("%-5s %-16s %-18s %-18s", "", "NodePartition", "EqualDistribution", "HybridDistribution")
	allocs := map[hw.Policy]*hw.Allocation{}
	for _, p := range hw.Policies() {
		a, err := hw.Allocate(c, p)
		if err != nil {
			return err
		}
		allocs[p] = a
	}
	for i := 0; i < 4; i++ {
		r.addf("VW%d   %-16s %-18s %-18s", i+1,
			allocs[hw.NodePartition].VWs[i].TypeString(),
			allocs[hw.EqualDistribution].VWs[i].TypeString(),
			allocs[hw.HybridDistribution].VWs[i].TypeString())
	}
	return nil
}

// Figure1 renders the pipelined execution schedule of one virtual worker
// (VGG-19 on VVVV, Nm=4) as an ASCII Gantt chart.
func Figure1(r *Report) error {
	s, err := core.NewSystem(hw.Paper(), model.VGG19(), profile.Default(), batchSize)
	if err != nil {
		return err
	}
	alloc, err := hw.AllocateByTypes(s.Cluster, []string{"VVVV"})
	if err != nil {
		return err
	}
	vp, _, err := s.SoloVW(alloc.VWs[0], 4, 12, 1)
	if err != nil {
		return err
	}
	tr := trace.New(4)
	if _, err := pipeline.Run(pipeline.Config{
		Plan: vp.Plan, Cluster: s.Cluster, Perf: s.Perf,
		Minibatches: 12, Warmup: 1, Trace: tr,
	}); err != nil {
		return err
	}
	for _, line := range splitLines(tr.Gantt(110)) {
		r.addf("%s", line)
	}
	r.notef("numbers are forward passes, bracketed numbers backward passes; dots are idle time")
	return nil
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// Figure3 sweeps Nm for the seven single-virtual-worker configurations and
// reports absolute and normalized throughput plus the maximum per-GPU
// utilization.
func Figure3(r *Report) error {
	paperNm1 := map[string]map[string]float64{
		"ResNet-152": {"VVVV": 96, "RRRR": 87, "GGGG": 58, "QQQQ": 43, "VRGQ": 42, "VVQQ": 53, "RRGG": 58},
		"VGG-19":     {"VVVV": 119, "RRRR": 107, "GGGG": 62, "QQQQ": 51, "VRGQ": 60, "VVQQ": 116, "RRGG": 68},
	}
	for _, m := range model.PaperModels() {
		r.addf("%s:", m.Name)
		for _, spec := range hw.SingleVWConfigs() {
			s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
			if err != nil {
				return err
			}
			alloc, err := hw.AllocateByTypes(s.Cluster, []string{spec})
			if err != nil {
				return err
			}
			var base float64
			row := fmt.Sprintf("  %-5s paperNm1=%-4.0f", spec, paperNm1[m.Name][spec])
			for nm := 1; nm <= 7; nm++ {
				vp, res, err := s.SoloVW(alloc.VWs[0], nm, 50+10*nm, 10+2*nm)
				if err != nil {
					row += fmt.Sprintf(" nm%d=--", nm)
					continue
				}
				if nm == 1 {
					base = vp.Throughput
					row += fmt.Sprintf(" nm1=%.0f(u%.2f)", vp.Throughput, res.MaxGPUUtil)
					continue
				}
				row += fmt.Sprintf(" nm%d=%.2fx(u%.2f)", nm, vp.Throughput/base, res.MaxGPUUtil)
			}
			r.addf("%s", row)
		}
	}
	r.notef("normalized throughput is relative to Nm=1 for the same configuration, as in the paper")
	r.notef("'--' marks memory-infeasible Nm values (Maxm exceeded)")
	return nil
}

// figure4Deployment runs one policy deployment and returns its aggregate
// throughput and Nm.
func figure4Deployment(s *core.System, policy hw.Policy, placement core.PlacementKind) (*core.Deployment, *core.MultiResult, error) {
	alloc, err := hw.Allocate(s.Cluster, policy)
	if err != nil {
		return nil, nil, err
	}
	dep, err := s.Deploy(alloc, 0, 0, placement)
	if err != nil {
		return nil, nil, err
	}
	res, err := dep.SimulateWSP(24*dep.Nm, 4*dep.Nm)
	if err != nil {
		return nil, nil, err
	}
	return dep, res, nil
}

// Figure4 compares the three allocation policies (plus ED-local) against
// Horovod at D=0.
func Figure4(r *Report) error {
	paper := map[string]map[string]float64{
		"ResNet-152": {"Horovod": 415, "NP": 380, "ED": 570, "ED-local": 580, "HD": 570},
		"VGG-19":     {"Horovod": 339, "NP": 260, "ED": 280, "ED-local": 610, "HD": 310},
	}
	for _, m := range model.PaperModels() {
		s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
		if err != nil {
			return err
		}
		hr, err := s.Horovod(nil)
		if err != nil {
			return err
		}
		r.addf("%s:", m.Name)
		r.addf("  %-9s %8.0f img/s  (paper ~%3.0f; %d workers, %d excluded)",
			"Horovod", hr.Throughput, paper[m.Name]["Horovod"], len(hr.Workers), len(hr.Excluded))
		type cfg struct {
			label     string
			policy    hw.Policy
			placement core.PlacementKind
		}
		for _, c := range []cfg{
			{"NP", hw.NodePartition, core.PlacementDefault},
			{"ED", hw.EqualDistribution, core.PlacementDefault},
			{"ED-local", hw.EqualDistribution, core.PlacementLocal},
			{"HD", hw.HybridDistribution, core.PlacementDefault},
		} {
			dep, res, err := figure4Deployment(s, c.policy, c.placement)
			if err != nil {
				r.addf("  %-9s failed: %v", c.label, err)
				continue
			}
			r.addf("  %-9s %8.0f img/s  (paper ~%3.0f; Nm=%d, waiting %.1fs, idle %.1fs)",
				c.label, res.Aggregate, paper[m.Name][c.label], dep.Nm, res.Waiting, res.Idle)
		}
	}
	r.notef("paper reference values are read off Figure 4's bars (approximate)")
	return nil
}

// Table4 measures throughput as whimpy GPUs are added: Horovod vs HetPipe
// with ED-local-style placement over the Table 4 GPU sets.
func Table4(r *Report) error {
	paper := map[string]map[string]float64{
		"VGG-19":     {"4 GPUs 4[V]": 300, "8 GPUs 4[VR]": 530, "12 GPUs 4[VRQ]": 572, "16 GPUs 4[VRQG]": 606},
		"ResNet-152": {"4 GPUs 4[V]": 256, "8 GPUs 4[VR]": 516, "12 GPUs 4[VRQ]": 538, "16 GPUs 4[VRQG]": 580},
	}
	paperHorovod := map[string]map[string]float64{
		"VGG-19":     {"4 GPUs 4[V]": 164, "8 GPUs 4[VR]": 205, "12 GPUs 4[VRQ]": 265, "16 GPUs 4[VRQG]": 339},
		"ResNet-152": {"4 GPUs 4[V]": 233, "8 GPUs 4[VR]": 353, "12 GPUs 4[VRQ]": 415},
	}
	for _, m := range model.PaperModels() {
		r.addf("%s:", m.Name)
		for _, set := range hw.Table4Sets() {
			s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
			if err != nil {
				return err
			}
			// Horovod on exactly the set's GPUs.
			alloc, err := hw.AllocateByTypes(s.Cluster, set.Specs)
			if err != nil {
				return err
			}
			var gpus []*hw.GPU
			for _, vw := range alloc.VWs {
				gpus = append(gpus, vw.GPUs...)
			}
			horovod := "X"
			if hr, err := s.Horovod(gpus); err == nil && len(hr.Excluded) == 0 {
				horovod = fmt.Sprintf("%.0f", hr.Throughput)
			}
			// HetPipe with local-style placement when stage/node alignment
			// holds (it does for all Table 4 sets), default otherwise.
			placement := core.PlacementLocal
			dep, err := s.Deploy(alloc, 0, 0, placement)
			if err != nil {
				dep, err = s.Deploy(alloc, 0, 0, core.PlacementDefault)
				if err != nil {
					r.addf("  %-16s HetPipe failed: %v", set.Name, err)
					continue
				}
			}
			res, err := dep.SimulateWSP(24*dep.Nm, 4*dep.Nm)
			if err != nil {
				r.addf("  %-16s simulation failed: %v", set.Name, err)
				continue
			}
			concurrent := dep.Nm * len(dep.VWs)
			r.addf("  %-16s Horovod %6s (paper %4.0f)   HetPipe %6.0f (%d) (paper %4.0f (%s))",
				set.Name, horovod, paperHorovod[m.Name][set.Name],
				res.Aggregate, concurrent, paper[m.Name][set.Name], paperConcurrent(m.Name, set.Name))
		}
	}
	r.notef("(n) is the total number of concurrent minibatches across virtual workers; X marks infeasible Horovod")
	return nil
}

func paperConcurrent(modelName, setName string) string {
	table := map[string]map[string]string{
		"VGG-19":     {"4 GPUs 4[V]": "5", "8 GPUs 4[VR]": "16", "12 GPUs 4[VRQ]": "20", "16 GPUs 4[VRQG]": "20"},
		"ResNet-152": {"4 GPUs 4[V]": "5", "8 GPUs 4[VR]": "20", "12 GPUs 4[VRQ]": "24", "16 GPUs 4[VRQG]": "28"},
	}
	if v, ok := table[modelName][setName]; ok {
		return v
	}
	return "?"
}
