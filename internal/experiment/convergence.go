package experiment

import (
	"fmt"

	"hetpipe/internal/convergence"
	"hetpipe/internal/core"
	"hetpipe/internal/data"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/train"
)

func init() {
	register("figure5", "Figure 5", "ResNet-152 accuracy over time (Figure 5): Horovod vs HetPipe 12/16 GPUs, D=0", Figure5)
	register("figure6", "Figure 6", "VGG-19 accuracy over time (Figure 6): Horovod vs HetPipe D=0/4/32, ED-local", Figure6)
	register("syncoverhead", "Section 8.4", "Synchronization overhead vs D (Section 8.4), VGG-19 ED-local", SyncOverhead)
	register("theorem1", "Theorem 1", "WSP convergence: measured regret vs Theorem 1 bound", Theorem1)
	register("traffic", "Section 8.3", "Cross-node traffic per minibatch (Section 8.3)", Traffic)
}

// Convergence-study constants: the synthetic task's analog of the paper's
// top-1 targets (74% ResNet-152, 67% VGG-19 on ImageNet). The task is sized
// so that reaching the target takes thousands of minibatches per worker —
// long enough for staleness and waiting dynamics to shape the outcome, as
// they do over the paper's multi-day ImageNet runs.
const (
	// targetLoss plays the role of the paper's top-1 targets: the task's
	// accuracy saturates early (softmax argmax is scale-invariant), so the
	// training loss is the sharper convergence criterion; it descends
	// smoothly across the whole run and is sensitive to staleness.
	targetLoss     = 0.50
	convergeLR     = 0.01
	convergeJitter = 0.08
	convergeSeed   = 42
	maxMBPerWorker = 12000
	evalEvery      = 128
)

// convergenceTask builds the shared objective: a 12-class, 48-dimensional
// Gaussian mixture with enough noise that the decision boundary takes many
// epochs to sharpen.
func convergenceTask() (*train.LogReg, error) {
	ds, err := data.SyntheticClassification(convergeSeed, 12000, 48, 12, 0.34)
	if err != nil {
		return nil, err
	}
	tr, ev, err := ds.Split(0.8)
	if err != nil {
		return nil, err
	}
	return train.NewLogReg(tr, ev, batchSize)
}

// speedSkew gives virtual worker w of n a persistent speed offset (+-4%),
// modeling the sustained rate differences real clusters exhibit (thermal
// throttling, data loading, network congestion) that the paper's waiting
// time measurements reflect.
func speedSkew(w, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 + 0.08*(float64(w)/float64(n-1)-0.5)
}

// hetpipeTimings deploys HetPipe on the given VW specs and extracts the
// co-simulation timing inputs.
func hetpipeTimings(m *model.Model, specs []string, d int) (*core.Deployment, train.WSPConfig, error) {
	s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
	if err != nil {
		return nil, train.WSPConfig{}, err
	}
	alloc, err := hw.AllocateByTypes(s.Cluster, specs)
	if err != nil {
		return nil, train.WSPConfig{}, err
	}
	dep, err := s.Deploy(alloc, 0, d, core.PlacementLocal)
	if err != nil {
		return nil, train.WSPConfig{}, err
	}
	task, err := convergenceTask()
	if err != nil {
		return nil, train.WSPConfig{}, err
	}
	cfg := train.WSPConfig{
		Task:           task,
		Workers:        len(dep.VWs),
		SLocal:         dep.SLocal(),
		D:              d,
		LR:             convergeLR,
		Jitter:         convergeJitter,
		Seed:           convergeSeed,
		MaxMinibatches: maxMBPerWorker,
		EvalEvery:      evalEvery,
		TargetLoss:     targetLoss,
	}
	n := len(dep.VWs)
	for w, vp := range dep.VWs {
		cfg.Periods = append(cfg.Periods, vp.Period*speedSkew(w, n))
		cfg.FillLatency = append(cfg.FillLatency, vp.FillLatency)
		cfg.PushTime = append(cfg.PushTime, dep.PushTime[w])
		cfg.PullTime = append(cfg.PullTime, dep.PullTime[w])
	}
	return dep, cfg, nil
}

// horovodRun builds and runs the numeric Horovod baseline for a model.
func horovodRun(m *model.Model) (*train.RunStats, int, error) {
	s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
	if err != nil {
		return nil, 0, err
	}
	periods, ar, err := s.HorovodPeriods(nil)
	if err != nil {
		return nil, 0, err
	}
	task, err := convergenceTask()
	if err != nil {
		return nil, 0, err
	}
	// Horovod averages N gradients per step (effective batch 32N); scale
	// the learning rate linearly with N, the standard large-batch practice
	// (Goyal et al., the paper's reference [13] for LR tuning) — this keeps
	// the baseline's per-sample statistical efficiency on par with
	// HetPipe's sequential small-batch updates.
	n := len(periods)
	stats, err := train.RunBSP(train.BSPConfig{
		Task: task, Periods: periods, AllReduceTime: ar,
		LR: convergeLR * float64(n), Jitter: convergeJitter, Seed: convergeSeed,
		MaxIterations: maxMBPerWorker, EvalEvery: evalEvery / 8,
		TargetLoss: targetLoss,
	})
	return stats, n, err
}

func describeRun(label string, st *train.RunStats, baseline float64) string {
	t := "did not reach target"
	if st.ReachedTarget {
		t = fmt.Sprintf("target in %7.1fs", st.TimeToTarget)
		if baseline > 0 && st.TimeToTarget > 0 {
			t += fmt.Sprintf(" (%+.0f%% vs Horovod)", 100*(st.TimeToTarget-baseline)/baseline)
		}
	}
	return fmt.Sprintf("%-18s %s  loss=%.3f acc=%.3f  mb=%d waits=%.0fs idle=%.0fs pulls=%d",
		label, t, st.FinalLoss, st.FinalAccuracy, st.Minibatches, st.Waiting, st.Idle, st.Pulls)
}

// Figure5 reproduces the ResNet-152 convergence comparison: Horovod on 12
// GPUs (the G parts cannot hold the model) versus HetPipe on the same 12
// GPUs and on all 16, D=0.
func Figure5(r *Report) error {
	m := model.ResNet152()
	hv, workers, err := horovodRun(m)
	if err != nil {
		return err
	}
	r.addf("%s", describeRun(fmt.Sprintf("Horovod (%d GPUs)", workers), hv, 0))
	base := hv.TimeToTarget
	for _, c := range []struct {
		label string
		specs []string
	}{
		{"HetPipe 12 GPUs", []string{"VRQ", "VRQ", "VRQ", "VRQ"}},
		{"HetPipe 16 GPUs", []string{"VRQG", "VRQG", "VRQG", "VRQG"}},
	} {
		_, cfg, err := hetpipeTimings(m, c.specs, 0)
		if err != nil {
			return err
		}
		st, err := train.RunWSP(cfg)
		if err != nil {
			return err
		}
		r.addf("%s", describeRun(c.label, st, base))
	}
	r.notef("paper: HetPipe-12 converges 35%% faster and HetPipe-16 39%% faster than Horovod-12")
	r.notef("convergence target is training loss <= %.2f, the task-relative analog of the paper's 74%% top-1", targetLoss)
	return nil
}

// Figure6 reproduces the VGG-19 convergence comparison on 16 GPUs with
// ED-local: Horovod versus HetPipe at D = 0, 4, and 32.
func Figure6(r *Report) error {
	m := model.VGG19()
	hv, workers, err := horovodRun(m)
	if err != nil {
		return err
	}
	r.addf("%s", describeRun(fmt.Sprintf("Horovod (%d GPUs)", workers), hv, 0))
	base := hv.TimeToTarget
	for _, d := range []int{0, 4, 32} {
		_, cfg, err := hetpipeTimings(m, []string{"VRGQ", "VRGQ", "VRGQ", "VRGQ"}, d)
		if err != nil {
			return err
		}
		st, err := train.RunWSP(cfg)
		if err != nil {
			return err
		}
		r.addf("%s", describeRun(fmt.Sprintf("HetPipe D=%d", d), st, base))
	}
	r.notef("paper: D=0 converges 29%% faster than Horovod, D=4 49%% faster; D=32 degrades 4.7%% vs D=4")
	return nil
}

// SyncOverhead reproduces the Section 8.4 analysis: waiting time shrinks as
// D grows, and pipelining hides most of the wait (idle << waiting).
func SyncOverhead(r *Report) error {
	m := model.VGG19()
	var waitD0 float64
	for _, d := range []int{0, 4, 32} {
		_, cfg, err := hetpipeTimings(m, []string{"VRGQ", "VRGQ", "VRGQ", "VRGQ"}, d)
		if err != nil {
			return err
		}
		cfg.TargetAccuracy = 0 // fixed budget: compare equal work
		cfg.MaxMinibatches = 2000
		st, err := train.RunWSP(cfg)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("D=%-3d waiting=%7.1fs idle=%6.1fs (%.0f%% of waiting) pulls=%d pushes=%d",
			d, st.Waiting, st.Idle, safePct(st.Idle, st.Waiting), st.Pulls, st.Pushes)
		if d == 0 {
			waitD0 = st.Waiting
		} else if waitD0 > 0 {
			line += fmt.Sprintf("  waiting=%.0f%% of D=0", 100*st.Waiting/waitD0)
		}
		r.addf("%s", line)
	}
	r.notef("paper: average waiting time at D=4 is 62%% of D=0, and idle time is 18%% of waiting")
	return nil
}

func safePct(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * num / den
}

// Theorem1 measures regret under the real WSP schedule on a convex problem
// and compares against the Section 6 bound.
func Theorem1(r *Report) error {
	configs := []convergence.Config{
		{Workers: 1, SLocal: 0, D: 0, T: 4000, Dim: 12, Seed: 1},
		{Workers: 1, SLocal: 3, D: 0, T: 4000, Dim: 12, Seed: 2},
		{Workers: 4, SLocal: 3, D: 0, T: 8000, Dim: 12, Seed: 3},
		{Workers: 4, SLocal: 3, D: 4, T: 8000, Dim: 12, Seed: 4},
		{Workers: 4, SLocal: 6, D: 32, T: 8000, Dim: 12, Seed: 5},
	}
	for _, cfg := range configs {
		res, err := convergence.Measure(cfg)
		if err != nil {
			return err
		}
		r.addf("N=%d slocal=%d D=%d sglobal=%-3d T=%-5d regret=%8.5f bound=%8.5f  %s",
			cfg.Workers, cfg.SLocal, cfg.D, res.SGlobal, res.T, res.Regret, res.Bound, verdict(res.Regret <= res.Bound))
	}
	r.notef("the bound is R[W] <= 4ML*sqrt((2*sglobal+slocal+1)*N/T) with measured M and L=1")
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "HOLDS"
	}
	return "VIOLATED"
}

// Traffic reproduces the Section 8.3 cross-node traffic accounting.
func Traffic(r *Report) error {
	paper := map[string]struct{ horovod, edlocal float64 }{
		"VGG-19":     {515, 103},
		"ResNet-152": {211, 298},
	}
	for _, m := range model.PaperModels() {
		s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
		if err != nil {
			return err
		}
		hr, err := s.Horovod(nil)
		if err != nil {
			return err
		}
		alloc, err := hw.Allocate(s.Cluster, hw.EqualDistribution)
		if err != nil {
			return err
		}
		dep, err := s.Deploy(alloc, 0, 0, core.PlacementLocal)
		if err != nil {
			return err
		}
		r.addf("%-11s Horovod %4.0f MB/worker (paper %3.0f)   ED-local %4.0f MB/VW (paper %3.0f)",
			m.Name,
			float64(hr.CrossNodeBytesPerWorker)/1e6, paper[m.Name].horovod,
			float64(dep.CrossNodeBytesPerMinibatch())/1e6, paper[m.Name].edlocal)
	}
	r.notef("ED-local moves only pipeline activations across nodes; parameters sync within each node")
	return nil
}
