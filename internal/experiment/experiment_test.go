package experiment

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryListsAllExperiments(t *testing.T) {
	want := []string{
		"table1", "table3", "table4",
		"figure1", "figure3", "figure4", "figure5", "figure6",
		"syncoverhead", "theorem1", "traffic",
		"ablation-wavepush", "ablation-memaware", "ablation-nmsweep", "ablation-dsweep",
	}
	names := Names()
	have := make(map[string]bool)
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q not registered", w)
		}
	}
	if !strings.Contains(strings.Join(names, ","), "figure4") {
		t.Error("names missing figure4")
	}
}

func TestDefsCarryMetadata(t *testing.T) {
	defs := Defs()
	if len(defs) != len(Names()) {
		t.Fatalf("defs = %d, names = %d", len(defs), len(Names()))
	}
	for _, d := range defs {
		if d.Name == "" || d.Paper == "" || d.Title == "" || d.Run == nil {
			t.Errorf("incomplete def: %+v", d)
		}
	}
}

// TestCatalogDocumentsEveryExperiment keeps EXPERIMENTS.md in lockstep with
// the registry: every registered experiment must have a catalog section.
func TestCatalogDocumentsEveryExperiment(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("EXPERIMENTS.md missing: %v", err)
	}
	for _, name := range Names() {
		if !strings.Contains(string(doc), fmt.Sprintf("`%s`", name)) {
			t.Errorf("EXPERIMENTS.md does not document %q", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// Fast experiments run end to end in tests; the convergence studies
// (figure5/figure6) are exercised by the benchmark harness instead.
func TestFastExperimentsProduceRows(t *testing.T) {
	for _, name := range []string{"table1", "table3", "figure1", "theorem1", "traffic",
		"ablation-wavepush", "ablation-memaware"} {
		r, err := Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Lines) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if !strings.Contains(r.String(), r.Title) {
			t.Errorf("%s: rendering missing title", name)
		}
	}
}

func TestTable1MatchesCatalog(t *testing.T) {
	r, err := Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Lines, "\n")
	for _, gpu := range []string{"TITAN V", "TITAN RTX", "GeForce RTX 2060", "Quadro P4000"} {
		if !strings.Contains(joined, gpu) {
			t.Errorf("table1 missing %s", gpu)
		}
	}
}

func TestTheorem1AllHold(t *testing.T) {
	r, err := Run("theorem1")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range r.Lines {
		if strings.Contains(line, "VIOLATED") {
			t.Errorf("regret bound violated: %s", line)
		}
	}
}

func TestTrafficShapesHold(t *testing.T) {
	r, err := Run("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Lines) != 2 {
		t.Fatalf("traffic rows = %d, want 2", len(r.Lines))
	}
}

func TestFigure4ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("figure4 runs many simulations")
	}
	r, err := Run("figure4")
	if err != nil {
		t.Fatal(err)
	}
	// The decisive paper shape: ED-local beats every other policy for both
	// models, and for VGG-19 the default-placement policies fall below
	// Horovod.
	var vggSection bool
	vals := map[string]float64{}
	for _, line := range r.Lines {
		if strings.Contains(line, "VGG-19") {
			vggSection = true
			continue
		}
		if !vggSection {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		label := fields[0]
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			vals[label] = v
		}
	}
	if vals["ED-local"] == 0 || vals["Horovod"] == 0 {
		t.Fatalf("could not parse figure4 rows: %v", vals)
	}
	if vals["ED-local"] <= vals["Horovod"] {
		t.Errorf("ED-local (%v) should beat Horovod (%v) for VGG-19", vals["ED-local"], vals["Horovod"])
	}
	if vals["ED"] >= vals["Horovod"] {
		t.Errorf("ED default (%v) should trail Horovod (%v) for VGG-19", vals["ED"], vals["Horovod"])
	}
	if vals["NP"] >= vals["ED-local"] {
		t.Errorf("NP (%v) should trail ED-local (%v)", vals["NP"], vals["ED-local"])
	}
}
