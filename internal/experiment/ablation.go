package experiment

import (
	"fmt"

	"hetpipe/internal/core"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/profile"
)

func init() {
	register("ablation-wavepush", "Section 5", "Ablation: per-wave vs per-minibatch push traffic", AblationWavePush)
	register("ablation-memaware", "Section 7", "Ablation: memory-aware vs uniform partitioning (ResNet-152 on GGGG, 6 GiB GPUs)", AblationMemoryAwarePartitioning)
	register("ablation-nmsweep", "Section 4", "Ablation: aggregate throughput vs forced Nm (ED-local)", AblationNmSweep)
	register("ablation-dsweep", "Section 5", "Ablation: throughput and waiting vs D (ResNet-152, NP)", AblationDSweep)
}

// AblationWavePush quantifies WSP's wave-aggregated push against SSP-style
// per-minibatch pushes: the communication volume shrinks by the wave size.
func AblationWavePush(r *Report) error {
	for _, m := range model.PaperModels() {
		s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
		if err != nil {
			return err
		}
		alloc, err := hw.Allocate(s.Cluster, hw.EqualDistribution)
		if err != nil {
			return err
		}
		dep, err := s.Deploy(alloc, 0, 0, core.PlacementLocal)
		if err != nil {
			return err
		}
		perWave := float64(m.ParamBytes()) / 1e6
		perMB := perWave * float64(dep.Nm)
		r.addf("%-11s Nm=%d: push volume per wave %7.0f MB (WSP) vs %7.0f MB (per-minibatch, SSP-style) — %dx reduction",
			m.Name, dep.Nm, perWave, perMB, dep.Nm)
	}
	r.notef("Section 5: pushing u~ once per wave instead of per minibatch cuts PS traffic by the wave size")
	return nil
}

// AblationMemoryAwarePartitioning contrasts the Section 7 memory-aware
// partitioner against a naive uniform-layer split on memory-poor GPUs.
func AblationMemoryAwarePartitioning(r *Report) error {
	m := model.ResNet152()
	perf := profile.Default()
	cluster := hw.Paper()
	alloc, err := hw.AllocateByTypes(cluster, []string{"GGGG"})
	if err != nil {
		return err
	}
	vw := alloc.VWs[0]
	k := len(vw.GPUs)
	for _, nm := range []int{1, 2, 4} {
		// Uniform split: equal layer counts per stage, ignoring memory.
		L := len(m.Layers)
		violated := 0
		var worst float64
		for stg := 0; stg < k; stg++ {
			lo, hi := stg*L/k, (stg+1)*L/k
			mem := perf.StageMemory(m, lo, hi, stg, k, nm, batchSize)
			over := float64(mem) / float64(vw.GPUs[stg].Type.MemoryBytes)
			if over > 1 {
				violated++
			}
			if over > worst {
				worst = over
			}
		}
		// Memory-aware split from the real partitioner.
		plan, perr := partition.New(perf).Partition(cluster, m, vw, nm, batchSize)
		aware := "infeasible"
		if perr == nil {
			aware = fmt.Sprintf("feasible, bottleneck %.0f ms", plan.Bottleneck*1e3)
		}
		r.addf("Nm=%d: uniform split violates memory on %d/%d stages (worst %.2fx cap); memory-aware: %s",
			nm, violated, k, worst, aware)
	}
	r.notef("the Figure 1 memory-variance observation: early stages stash more in-flight activations")
	return nil
}

// AblationNmSweep shows aggregate ED-local throughput versus the forced Nm,
// demonstrating why HetPipe picks Nm by measured throughput rather than
// simply maximizing concurrency.
func AblationNmSweep(r *Report) error {
	for _, m := range model.PaperModels() {
		s, err := core.NewSystem(hw.Paper(), m, profile.Default(), batchSize)
		if err != nil {
			return err
		}
		row := m.Name + ":"
		for nm := 1; nm <= 8; nm++ {
			alloc, err := hw.Allocate(s.Cluster, hw.EqualDistribution)
			if err != nil {
				return err
			}
			dep, err := s.Deploy(alloc, nm, 0, core.PlacementLocal)
			if err != nil {
				row += fmt.Sprintf(" nm%d=--", nm)
				continue
			}
			res, err := dep.SimulateWSP(24*nm, 4*nm)
			if err != nil {
				row += fmt.Sprintf(" nm%d=!!", nm)
				continue
			}
			row += fmt.Sprintf(" nm%d=%.0f", nm, res.Aggregate)
		}
		r.addf("%s", row)
	}
	r.notef("throughput rises with pipelining then falls when memory pressure unbalances the partitions")
	return nil
}

// AblationDSweep shows throughput and waiting versus the clock-distance
// bound D under the straggler-prone NP allocation.
func AblationDSweep(r *Report) error {
	s, err := core.NewSystem(hw.Paper(), model.ResNet152(), profile.Default(), batchSize)
	if err != nil {
		return err
	}
	for _, d := range []int{0, 1, 2, 4, 8} {
		alloc, err := hw.Allocate(s.Cluster, hw.NodePartition)
		if err != nil {
			return err
		}
		dep, err := s.Deploy(alloc, 0, d, core.PlacementDefault)
		if err != nil {
			return err
		}
		res, err := dep.SimulateWSP(30*dep.Nm, 5*dep.Nm)
		if err != nil {
			return err
		}
		r.addf("D=%d: %4.0f img/s aggregate, waiting %6.1fs, idle %5.1fs, max clock distance %d",
			d, res.Aggregate, res.Waiting, res.Idle, res.MaxClockDistance)
	}
	r.notef("larger D absorbs the straggler VW's lag until the budget, not the bound, limits skew")
	return nil
}
