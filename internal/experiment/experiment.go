// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 8) on the simulated cluster: Figure 1 (pipeline
// schedule), Table 1 (GPU specs), Table 3 (allocation policies), Figure 3
// (single virtual worker scaling with Nm), Figure 4 (allocation policies vs
// Horovod at D=0), Table 4 (adding whimpy GPUs), Figures 5 and 6
// (convergence over time for ResNet-152 and VGG-19), the Section 8.4
// synchronization-overhead analysis, and the Theorem 1 regret check.
//
// Experiments are registered as Defs — name, paper reference, title, and a
// Runner that fills in a pre-built Report — so the registry doubles as a
// machine-readable catalog: cmd/hetbench's -list and the EXPERIMENTS.md
// document are both views of Defs. Each Runner produces structured rows plus
// notes; Report.String renders them as the text cmd/hetbench prints.
// EXPERIMENTS.md records the paper-versus-measured comparison for every row.
//
// Grid-shaped studies beyond the paper's fixed tables live in
// internal/sweep, which generalizes these hand-enumerated configurations
// into declarative scenario grids.
package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's output.
type Report struct {
	// Name is the registry key, e.g. "figure4".
	Name string
	// Paper cites the reproduced artifact, e.g. "Figure 4" or "Section 8.4".
	Paper string
	// Title describes the experiment.
	Title string
	// Lines are formatted result rows.
	Lines []string
	// Notes carry caveats and paper-comparison remarks.
	Notes []string
}

// String renders the report as indented text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.Name, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  # %s\n", n)
	}
	return b.String()
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner fills a pre-built report whose Name, Paper, and Title are already
// set from the experiment's Def.
type Runner func(*Report) error

// Def is one registered experiment: the registry metadata plus its runner.
// Defs are the single source of truth behind Names, Run, cmd/hetbench's
// -list output, and the EXPERIMENTS.md catalog.
type Def struct {
	// Name is the registry key, e.g. "figure4".
	Name string
	// Paper cites the reproduced artifact, e.g. "Figure 4" or "Section 8.4".
	Paper string
	// Title describes the experiment in one line.
	Title string
	// Run fills the report.
	Run Runner
}

var registry = map[string]*Def{}

func register(name, paper, title string, fn Runner) {
	if _, dup := registry[name]; dup {
		panic("experiment: duplicate registration of " + name)
	}
	registry[name] = &Def{Name: name, Paper: paper, Title: title, Run: fn}
}

// Names lists registered experiments in sorted order.
func Names() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Defs lists the registered experiments' metadata in name order.
func Defs() []Def {
	var out []Def
	for _, name := range Names() {
		out = append(out, *registry[name])
	}
	return out
}

// Run executes one experiment by name.
func Run(name string) (*Report, error) {
	def, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	r := &Report{Name: def.Name, Paper: def.Paper, Title: def.Title}
	if err := def.Run(r); err != nil {
		return nil, err
	}
	return r, nil
}

// RunAll executes every registered experiment in name order.
func RunAll() ([]*Report, error) {
	var out []*Report
	for _, name := range Names() {
		r, err := Run(name)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
