// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 8) on the simulated cluster: Figure 1 (pipeline
// schedule), Table 1 (GPU specs), Table 3 (allocation policies), Figure 3
// (single virtual worker scaling with Nm), Figure 4 (allocation policies vs
// Horovod at D=0), Table 4 (adding whimpy GPUs), Figures 5 and 6
// (convergence over time for ResNet-152 and VGG-19), the Section 8.4
// synchronization-overhead analysis, and the Theorem 1 regret check.
//
// Each experiment returns a Report: structured rows plus a formatted text
// rendering that cmd/hetbench prints. EXPERIMENTS.md records the
// paper-versus-measured comparison for every row.
package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's output.
type Report struct {
	// Name is the registry key, e.g. "figure4".
	Name string
	// Title describes the experiment.
	Title string
	// Lines are formatted result rows.
	Lines []string
	// Notes carry caveats and paper-comparison remarks.
	Notes []string
}

// String renders the report as indented text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.Name, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  # %s\n", n)
	}
	return b.String()
}

func (r *Report) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner produces a report.
type Runner func() (*Report, error)

var registry = map[string]Runner{}

func register(name string, fn Runner) {
	if _, dup := registry[name]; dup {
		panic("experiment: duplicate registration of " + name)
	}
	registry[name] = fn
}

// Names lists registered experiments in sorted order.
func Names() []string {
	var out []string
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string) (*Report, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return fn()
}

// RunAll executes every registered experiment in name order.
func RunAll() ([]*Report, error) {
	var out []*Report
	for _, name := range Names() {
		r, err := Run(name)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
