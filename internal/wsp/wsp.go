// Package wsp implements the Wave Synchronous Parallel model (Section 5),
// the paper's parameter-synchronization scheme for data parallelism over
// pipelined virtual workers.
//
// A wave is a sequence of slocal+1 minibatches processed concurrently inside
// one virtual worker; within a wave a later minibatch never waits for an
// earlier one (local staleness threshold slocal = Nm-1). At the end of every
// wave — one clock — the virtual worker pushes a single aggregated update to
// the parameter server, cutting push traffic by a factor of the wave size.
// The parameter server advances the global clock to c+1 once every virtual
// worker has pushed wave c. A virtual worker may run ahead of the global
// clock by at most D waves (the clock distance bound): the *last* minibatch
// of wave w may only start once the global clock has reached w-D, i.e. every
// other virtual worker has pushed wave w-D-1. While blocked, the virtual
// worker still processes the first slocal minibatches of the next wave —
// pipelined execution overlaps the wait, which is why WSP's idle time is a
// small fraction of its waiting time (Section 8.4).
//
// The package is a pure protocol state machine: the discrete-event
// coordinator (internal/core) and the numeric trainer (internal/train) both
// drive it, so protocol invariants are tested once, here.
package wsp

import "fmt"

// Params fixes a WSP configuration.
type Params struct {
	// SLocal is the local staleness threshold, Nm-1.
	SLocal int
	// D is the clock distance bound between the fastest and slowest
	// virtual workers. D=0 gives BSP-like behaviour with pipelined overlap.
	D int
	// Workers is the number of virtual workers, N.
	Workers int
}

// Validate checks the configuration.
func (p Params) Validate() error {
	if p.SLocal < 0 {
		return fmt.Errorf("wsp: slocal must be >= 0, got %d", p.SLocal)
	}
	if p.D < 0 {
		return fmt.Errorf("wsp: D must be >= 0, got %d", p.D)
	}
	if p.Workers < 1 {
		return fmt.Errorf("wsp: need at least one worker, got %d", p.Workers)
	}
	return nil
}

// WaveSize is the number of minibatches per wave, slocal+1 = Nm.
func (p Params) WaveSize() int { return p.SLocal + 1 }

// SGlobal is the global staleness bound of Section 5:
// (D+1)*(slocal+1) + slocal - 1. A minibatch beyond the initial window must
// see every other worker's updates up to minibatch p-(SGlobal+1).
func (p Params) SGlobal() int { return (p.D+1)*(p.SLocal+1) + p.SLocal - 1 }

// Wave reports the 0-based wave index of 1-based minibatch p.
func (p Params) Wave(mb int) int {
	if mb < 1 {
		panic(fmt.Sprintf("wsp: minibatch numbers are 1-based, got %d", mb))
	}
	return (mb - 1) / p.WaveSize()
}

// PosInWave reports the 0-based position of minibatch mb within its wave.
func (p Params) PosInWave(mb int) int { return (mb - 1) % p.WaveSize() }

// IsWaveEnd reports whether minibatch mb is the last of its wave — the one
// whose start is gated on the global clock.
func (p Params) IsWaveEnd(mb int) bool { return p.PosInWave(mb) == p.SLocal }

// RequiredGlobalClock reports the minimum global clock needed before
// minibatch mb may start: the last minibatch of wave w requires global clock
// >= w-D (every worker has pushed wave w-D-1); all other minibatches are
// admitted by pipelining. Results <= 0 mean "no requirement".
func (p Params) RequiredGlobalClock(mb int) int {
	if !p.IsWaveEnd(mb) {
		return 0
	}
	req := p.Wave(mb) - p.D
	if req < 0 {
		return 0
	}
	return req
}

// LocalVisibleThrough reports the newest local minibatch whose update is
// reflected in the weights minibatch mb trains with: mb-(slocal+1). The
// first slocal+1 minibatches run on the initial weights (result <= 0).
func (p Params) LocalVisibleThrough(mb int) int { return mb - p.WaveSize() }

// CompleteWaves reports how many full waves fit in a per-worker budget of
// maxMB minibatches — the number of pushes a worker performs over the run.
func (p Params) CompleteWaves(maxMB int) int { return maxMB / p.WaveSize() }

// GatedPulls reports how many lazy pulls a worker performs over a budget of
// maxMB minibatches: one per wave-end whose required global clock is
// positive. Waves 0..D need no pull, so the count is CompleteWaves-(D+1),
// clamped at zero. Both the simulator and the live sharded-PS runtime must
// match this number exactly — the conformance harness asserts it.
func (p Params) GatedPulls(maxMB int) int {
	n := p.CompleteWaves(maxMB) - (p.D + 1)
	// A partial trailing wave can still contain a gated wave-end only if it
	// is complete, which it is not by definition; wave-ends beyond the last
	// complete wave exceed maxMB.
	if n < 0 {
		return 0
	}
	return n
}

// Coordinator tracks per-worker wave progress and the global clock, and
// answers gate queries. It enforces the protocol ordering rules and panics
// on out-of-order pushes, which are always caller bugs.
type Coordinator struct {
	params Params
	// pushed[w] is the number of waves worker w has pushed (its clock).
	pushed []int
	// started[w] is the highest minibatch worker w has started.
	started []int
	// maxDistance records the largest observed clock distance.
	maxDistance int
}

// NewCoordinator validates p and returns a fresh coordinator.
func NewCoordinator(p Params) (*Coordinator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Coordinator{
		params:  p,
		pushed:  make([]int, p.Workers),
		started: make([]int, p.Workers),
	}, nil
}

// Params returns the configuration.
func (c *Coordinator) Params() Params { return c.params }

// GlobalClock is the parameter server's clock: the minimum pushed-wave count
// across workers.
func (c *Coordinator) GlobalClock() int {
	min := c.pushed[0]
	for _, p := range c.pushed[1:] {
		if p < min {
			min = p
		}
	}
	return min
}

// Clock reports worker w's local clock (waves pushed).
func (c *Coordinator) Clock(w int) int { return c.pushed[w] }

// MaxClockDistance reports the largest clock distance observed so far.
func (c *Coordinator) MaxClockDistance() int { return c.maxDistance }

// CanStart reports whether worker w may start minibatch mb now. Minibatches
// must be started in order; gating applies only to wave-end minibatches.
func (c *Coordinator) CanStart(w, mb int) bool {
	if mb != c.started[w]+1 {
		panic(fmt.Sprintf("wsp: worker %d starting minibatch %d out of order (last started %d)",
			w, mb, c.started[w]))
	}
	return c.GlobalClock() >= c.params.RequiredGlobalClock(mb)
}

// Start records that worker w started minibatch mb. It panics if the gate
// would have refused — callers must consult CanStart first.
func (c *Coordinator) Start(w, mb int) {
	if !c.CanStart(w, mb) {
		panic(fmt.Sprintf("wsp: worker %d started gated minibatch %d (global clock %d < %d)",
			w, mb, c.GlobalClock(), c.params.RequiredGlobalClock(mb)))
	}
	c.started[w] = mb
}

// Push records that worker w pushed the aggregated update of its next wave
// and returns the worker's new clock. Pushing wave c requires having started
// (and by protocol completed) all its minibatches.
func (c *Coordinator) Push(w int) int {
	wave := c.pushed[w] // the wave being pushed
	lastMB := (wave + 1) * c.params.WaveSize()
	if c.started[w] < lastMB {
		panic(fmt.Sprintf("wsp: worker %d pushing wave %d before starting minibatch %d", w, wave, lastMB))
	}
	c.pushed[w]++
	if d := c.distance(); d > c.maxDistance {
		c.maxDistance = d
	}
	return c.pushed[w]
}

func (c *Coordinator) distance() int {
	min, max := c.pushed[0], c.pushed[0]
	for _, p := range c.pushed[1:] {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	return max - min
}

// BlockedWorkers lists workers whose next minibatch is currently gated.
func (c *Coordinator) BlockedWorkers() []int {
	var out []int
	g := c.GlobalClock()
	for w := range c.pushed {
		if g < c.params.RequiredGlobalClock(c.started[w]+1) {
			out = append(out, w)
		}
	}
	return out
}
