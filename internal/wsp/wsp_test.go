package wsp

import (
	"testing"
	"testing/quick"
)

func params(sl, d, n int) Params { return Params{SLocal: sl, D: d, Workers: n} }

func TestParamsValidate(t *testing.T) {
	if err := params(3, 0, 4).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, p := range []Params{params(-1, 0, 1), params(0, -1, 1), params(0, 0, 0)} {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params %+v accepted", p)
		}
	}
}

func TestSGlobalFormula(t *testing.T) {
	// Section 5: sglobal = (D+1)(slocal+1) + slocal - 1.
	cases := []struct{ sl, d, want int }{
		{3, 0, 6},    // the paper's running example: D=0, slocal=3
		{3, 4, 22},   // (5)(4)+3-1
		{0, 0, 0},    // degenerate: sequential worker, BSP
		{6, 32, 236}, // D=32 with Nm=7: (33)(7)+6-1
	}
	for _, c := range cases {
		if got := params(c.sl, c.d, 4).SGlobal(); got != c.want {
			t.Errorf("sglobal(sl=%d,D=%d) = %d, want %d", c.sl, c.d, got, c.want)
		}
	}
}

func TestWaveArithmetic(t *testing.T) {
	p := params(3, 0, 4) // wave size 4
	if p.WaveSize() != 4 {
		t.Fatalf("wave size = %d, want 4", p.WaveSize())
	}
	// Figure 1: wave 0 = minibatches 1..4, wave 1 = 5..8, wave 2 = 9..12.
	for mb, want := range map[int]int{1: 0, 4: 0, 5: 1, 8: 1, 9: 2, 12: 2} {
		if got := p.Wave(mb); got != want {
			t.Errorf("wave(%d) = %d, want %d", mb, got, want)
		}
	}
	for mb, want := range map[int]bool{1: false, 4: true, 7: false, 8: true} {
		if got := p.IsWaveEnd(mb); got != want {
			t.Errorf("isWaveEnd(%d) = %v, want %v", mb, got, want)
		}
	}
}

func TestRequiredGlobalClockPaperExample(t *testing.T) {
	// The Section 5 example: D=0, slocal=3. After pushing wave 0 the VW
	// waits for every VW to complete wave 0 before minibatch 8, but starts
	// 5, 6, 7 freely.
	p := params(3, 0, 4)
	for mb, want := range map[int]int{
		1: 0, 4: 0, 5: 0, 6: 0, 7: 0, // wave 0 and early wave 1: free
		8:  1, // last of wave 1: all must have pushed wave 0
		12: 2, // last of wave 2: all must have pushed wave 1
	} {
		if got := p.RequiredGlobalClock(mb); got != want {
			t.Errorf("required(%d) = %d, want %d", mb, got, want)
		}
	}
}

func TestRequiredGlobalClockWithD(t *testing.T) {
	// With D=4, the first D+1 waves need no pull at all; the last minibatch
	// of wave 5 requires global clock >= 1.
	p := params(3, 4, 4)
	waveSize := p.WaveSize()
	for w := 0; w <= 4; w++ {
		mb := (w + 1) * waveSize
		if got := p.RequiredGlobalClock(mb); got != 0 {
			t.Errorf("wave %d end gated at %d, want free (D=4)", w, got)
		}
	}
	if got := p.RequiredGlobalClock(6 * waveSize); got != 1 {
		t.Errorf("wave 5 end requires %d, want 1", got)
	}
}

func TestLocalVisibleThrough(t *testing.T) {
	// Section 4: minibatch p sees local updates 1..p-(slocal+1).
	p := params(3, 0, 1)
	if got := p.LocalVisibleThrough(11); got != 7 {
		t.Errorf("visible(11) = %d, want 7", got)
	}
	if got := p.LocalVisibleThrough(2); got > 0 {
		t.Errorf("visible(2) = %d, want <= 0 (initial weights)", got)
	}
}

func TestCompleteWavesAndGatedPulls(t *testing.T) {
	cases := []struct {
		slocal, d, maxMB     int
		wantWaves, wantPulls int
	}{
		{3, 0, 400, 100, 99}, // every wave past the first is gated
		{3, 1, 400, 100, 98},
		{3, 4, 400, 100, 95},
		{0, 0, 10, 10, 9},    // Nm=1: every minibatch is a wave
		{3, 0, 402, 100, 99}, // trailing partial wave never pushes or pulls
		{3, 10, 8, 2, 0},     // short run: no wave-end is ever gated
	}
	for _, c := range cases {
		p := params(c.slocal, c.d, 2)
		if got := p.CompleteWaves(c.maxMB); got != c.wantWaves {
			t.Errorf("slocal=%d D=%d maxMB=%d: waves = %d, want %d", c.slocal, c.d, c.maxMB, got, c.wantWaves)
		}
		if got := p.GatedPulls(c.maxMB); got != c.wantPulls {
			t.Errorf("slocal=%d D=%d maxMB=%d: pulls = %d, want %d", c.slocal, c.d, c.maxMB, got, c.wantPulls)
		}
	}
	// Cross-check GatedPulls against a direct count over the wave-ends.
	p := params(2, 1, 3)
	direct := 0
	for mb := 1; mb <= 100; mb++ {
		if p.RequiredGlobalClock(mb) > 0 {
			direct++
		}
	}
	if got := p.GatedPulls(100); got != direct {
		t.Errorf("GatedPulls(100) = %d, direct count %d", got, direct)
	}
}

func TestCoordinatorBSPLikeD0(t *testing.T) {
	// Two workers, D=0: neither may finish wave 1 before both push wave 0.
	c, err := NewCoordinator(params(3, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	ws := c.Params().WaveSize()
	// Worker 0 starts wave 0 and the first slocal of wave 1 freely.
	for mb := 1; mb <= ws+3; mb++ {
		if !c.CanStart(0, mb) {
			t.Fatalf("worker 0 blocked at minibatch %d before any gating point", mb)
		}
		c.Start(0, mb)
	}
	c.Push(0) // worker 0 pushes wave 0
	// Minibatch 8 (last of wave 1) must be blocked: worker 1 has not pushed.
	if c.CanStart(0, 2*ws) {
		t.Fatal("worker 0 not gated at wave-1 end while worker 1 lags")
	}
	// Worker 1 catches up through wave 0.
	for mb := 1; mb <= ws; mb++ {
		c.Start(1, mb)
	}
	c.Push(1)
	if c.GlobalClock() != 1 {
		t.Fatalf("global clock = %d, want 1", c.GlobalClock())
	}
	if !c.CanStart(0, 2*ws) {
		t.Fatal("worker 0 still gated after worker 1 pushed wave 0")
	}
}

func TestCoordinatorDistanceBound(t *testing.T) {
	// A fast worker and a stalled worker: the fast worker can push at most
	// D+1 waves before blocking.
	for _, d := range []int{0, 1, 4} {
		c, err := NewCoordinator(params(2, d, 2))
		if err != nil {
			t.Fatal(err)
		}
		ws := c.Params().WaveSize()
		pushes := 0
		mb := 0
		for {
			if !c.CanStart(0, mb+1) {
				break
			}
			mb++
			c.Start(0, mb)
			if c.Params().IsWaveEnd(mb) {
				c.Push(0)
				pushes++
			}
			if pushes > 10*d+20 {
				t.Fatalf("D=%d: runaway worker (never gated)", d)
			}
			_ = ws
		}
		if pushes != d+1 {
			t.Errorf("D=%d: fast worker pushed %d waves before blocking, want %d", d, pushes, d+1)
		}
		if got := c.MaxClockDistance(); got != d+1 {
			t.Errorf("D=%d: max clock distance %d, want %d", d, got, d+1)
		}
	}
}

func TestCoordinatorBlockedWorkers(t *testing.T) {
	c, err := NewCoordinator(params(1, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	ws := c.Params().WaveSize()
	// Worker 0 completes wave 0 and the free part of wave 1.
	for mb := 1; mb <= ws; mb++ {
		c.Start(0, mb)
	}
	c.Push(0)
	for mb := ws + 1; mb < 2*ws; mb++ {
		c.Start(0, mb)
	}
	blocked := c.BlockedWorkers()
	if len(blocked) != 1 || blocked[0] != 0 {
		t.Errorf("blocked = %v, want [0]", blocked)
	}
}

func TestCoordinatorPanicsOnProtocolViolations(t *testing.T) {
	c, _ := NewCoordinator(params(3, 0, 2))
	t.Run("out of order start", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on out-of-order start")
			}
		}()
		c.CanStart(0, 2)
	})
	t.Run("push before wave completes", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on premature push")
			}
		}()
		c2, _ := NewCoordinator(params(3, 0, 2))
		c2.Push(0)
	})
}

// Property: for any (slocal, D) and any fair round-robin schedule, the clock
// distance never exceeds D+1 and the global clock never exceeds any worker's
// local clock.
func TestCoordinatorInvariantProperty(t *testing.T) {
	prop := func(slRaw, dRaw uint8, schedule []uint8) bool {
		sl := int(slRaw % 4)
		d := int(dRaw % 5)
		p := params(sl, d, 3)
		c, err := NewCoordinator(p)
		if err != nil {
			return false
		}
		next := make([]int, 3)
		for _, pick := range schedule {
			w := int(pick) % 3
			mb := next[w] + 1
			if !c.CanStart(w, mb) {
				continue // blocked; try another worker
			}
			c.Start(w, mb)
			next[w] = mb
			if p.IsWaveEnd(mb) {
				c.Push(w)
			}
			if c.MaxClockDistance() > d+1 {
				return false
			}
			for w2 := 0; w2 < 3; w2++ {
				if c.GlobalClock() > c.Clock(w2) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the global staleness bound holds — when a worker starts
// minibatch mb, every other worker has pushed updates covering at least
// minibatch mb-(sglobal+1).
func TestGlobalStalenessBoundProperty(t *testing.T) {
	prop := func(slRaw, dRaw uint8, schedule []uint8) bool {
		sl := int(slRaw % 4)
		d := int(dRaw % 4)
		p := params(sl, d, 2)
		c, err := NewCoordinator(p)
		if err != nil {
			return false
		}
		sg := p.SGlobal()
		next := make([]int, 2)
		for _, pick := range schedule {
			w := int(pick) % 2
			mb := next[w] + 1
			if !c.CanStart(w, mb) {
				continue
			}
			// Check the bound before starting: all other workers must have
			// pushed through minibatch mb-(sg+1).
			if mb > (d+1)*p.WaveSize()+sl {
				needMB := mb - (sg + 1)
				for o := 0; o < 2; o++ {
					if o == w {
						continue
					}
					coveredMB := c.Clock(o) * p.WaveSize()
					if coveredMB < needMB {
						return false
					}
				}
			}
			c.Start(w, mb)
			next[w] = mb
			if p.IsWaveEnd(mb) {
				c.Push(w)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
