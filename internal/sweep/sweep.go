// Package sweep is the parallel configuration-exploration engine: it expands
// a scenario grid — model zoo x cluster catalog x allocation policy x sync
// mode x pipeline schedule x fault plan x serving traffic x staleness bound
// D x concurrent-minibatch count Nm — into concrete simulation runs and
// executes
// them on a bounded worker pool, one deterministic discrete-event engine per
// goroutine. Faulted scenarios report their throughput degradation against
// the fault-free twin of the same configuration.
//
// HetPipe's contribution is itself a search over heterogeneous
// configurations (which allocation policy, which D, which Nm for a given
// model and cluster), and the paper's evaluation walks exactly such grids by
// hand. This package makes that search a first-class, parallel operation:
// scenarios in the same grid-cell family (same model, cluster, policy,
// placement, Nm, batch) share one resolved deployment — partitioning and the
// auto-Nm sweep run once per family, not once per D value — while each
// scenario's WSP simulation runs on its own deterministic discrete-event
// engine, so a grid run with workers=8 produces byte-identical results to
// the same grid run serially — only faster.
//
// Typical use:
//
//	set, err := sweep.Run(ctx, sweep.DefaultGrid(), sweep.Options{Workers: 8})
//	sweep.WriteJSON(os.Stdout, set)
//
// cmd/hetsweep wraps this package in a CLI.
package sweep

import (
	"fmt"

	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/sched"
	"hetpipe/internal/serve"
)

// Sync-mode axis values.
const (
	// SyncWSP runs HetPipe proper: pipelined virtual workers coupled through
	// the Wave Synchronous Parallel protocol (Section 5).
	SyncWSP = "wsp"
	// SyncHorovod runs the all-reduce BSP baseline the paper compares
	// against. Policy, placement, D, and Nm do not apply; the grid collapses
	// those axes to a single scenario per model and cluster.
	SyncHorovod = "horovod"
)

// Placement axis values.
const (
	// PlacementDefault spreads parameter shards round-robin over all nodes.
	PlacementDefault = "default"
	// PlacementLocal co-locates each stage's shard with the stage's node
	// (the paper's ED-local; requires ED-style stage/node alignment).
	PlacementLocal = "local"
)

// Grid declares one axis list per configuration dimension. Expand takes the
// cross product. Empty optional axes fall back to single-element defaults
// (see Expand); Models, Clusters, and Policies must be non-empty.
type Grid struct {
	// Models lists model-zoo keys (model.Names), e.g. "vgg19".
	Models []string `json:"models"`
	// Clusters lists cluster-catalog keys (hw.ClusterNames), e.g. "paper".
	Clusters []string `json:"clusters"`
	// Policies lists allocation policies: "NP", "ED", "HD".
	Policies []string `json:"policies"`
	// SyncModes lists synchronization modes: SyncWSP and/or SyncHorovod.
	// Empty means [SyncWSP].
	SyncModes []string `json:"syncModes,omitempty"`
	// Placements lists parameter placements: PlacementDefault and/or
	// PlacementLocal. Empty means [PlacementDefault].
	Placements []string `json:"placements,omitempty"`
	// Schedules lists pipeline schedules (sched.Names: "hetpipe-fifo",
	// "gpipe", "1f1b", "hetpipe-overlap"). Empty means the default
	// schedule only. Horovod scenarios collapse this axis like the other
	// WSP-only ones.
	Schedules []string `json:"schedules,omitempty"`
	// Interleaves lists interleave degrees V for the partitioner's chunked
	// placement. Empty means [1] — the classic contiguous stages. Schedules
	// that cannot run V > 1 (every schedule but "interleaved") collapse this
	// axis to a single V=1 scenario, like Horovod collapses the WSP-only
	// axes.
	Interleaves []int `json:"interleaves,omitempty"`
	// Faults lists fault-plan specs in the internal/fault grammar (e.g.
	// "slow:w0:x2" or "rand:0.5:seed7"); "" is the fault-free baseline.
	// Empty means [""] — no fault axis. Every non-baseline scenario's CSV
	// row reports its throughput degradation against the fault-free twin of
	// the same configuration, so include "" in the axis when sweeping
	// faults. Horovod scenarios collapse this axis like the other WSP-only
	// ones.
	Faults []string `json:"faults,omitempty"`
	// Traffics lists serving traffic specs in the internal/serve grammar
	// (e.g. "poisson:r120:n2000" or "closed:u64:t0.05:n2000"); "" is the
	// training workload. Empty means [""] — no serving axis. A non-empty
	// spec turns the scenario into an inference-serving run: the same
	// resolved deployment is driven by the request generator instead of the
	// WSP training simulation, Result.Throughput carries served
	// requests/sec, and the latency percentiles fill in. Serving ignores
	// the WSP clock bound, so serving scenarios collapse the D axis to a
	// single D=0 cell the way Horovod collapses the WSP-only axes. Mixing
	// "" and serving specs in one grid ranks samples/sec against
	// requests/sec within a model/cluster pair — keep grids single-workload
	// when the summary ranking matters.
	Traffics []string `json:"traffics,omitempty"`
	// DValues lists WSP clock-distance bounds (>= 0). Empty means [0].
	DValues []int `json:"dValues,omitempty"`
	// NmValues lists concurrent-minibatch counts; 0 lets the deployment pick
	// the throughput-maximizing Nm. Empty means [0].
	NmValues []int `json:"nmValues,omitempty"`
	// Batch is the per-minibatch sample count; 0 means 32.
	Batch int `json:"batch,omitempty"`
	// MinibatchesPerVW sizes each simulation; 0 picks a D-aware default of
	// at least 24 waves per virtual worker.
	MinibatchesPerVW int `json:"minibatchesPerVW,omitempty"`
}

// DefaultGrid is the out-of-the-box exploration: both paper models, the
// paper cluster and its doubled variant, all three allocation policies, WSP
// at D=0 and D=4 with automatic Nm — 24 scenarios.
func DefaultGrid() Grid {
	return Grid{
		Models:   []string{"vgg19", "resnet152"},
		Clusters: []string{"paper", "paper-x2"},
		Policies: []string{"NP", "ED", "HD"},
		DValues:  []int{0, 4},
	}
}

// Scenario is one fully-specified simulation run: a single point of the
// grid's cross product.
type Scenario struct {
	// Index is the scenario's position in expansion order (dense from 0).
	Index int `json:"index"`
	// Model is the model-zoo key.
	Model string `json:"model"`
	// Cluster is the cluster-catalog key.
	Cluster string `json:"cluster"`
	// SyncMode is SyncWSP or SyncHorovod.
	SyncMode string `json:"sync"`
	// Policy is the allocation policy; empty for Horovod scenarios.
	Policy string `json:"policy,omitempty"`
	// Placement is the parameter placement; empty for Horovod scenarios.
	Placement string `json:"placement,omitempty"`
	// Schedule is the pipeline schedule; empty for Horovod scenarios.
	Schedule string `json:"schedule,omitempty"`
	// Interleave is the partitioner's interleave degree V; 0 and 1 both mean
	// the classic contiguous placement.
	Interleave int `json:"interleave,omitempty"`
	// Faults is the fault-plan spec; empty for fault-free (and Horovod)
	// scenarios.
	Faults string `json:"faults,omitempty"`
	// Traffic is the serving traffic spec; empty for training scenarios.
	Traffic string `json:"traffic,omitempty"`
	// D is the WSP clock-distance bound.
	D int `json:"d"`
	// Nm is the requested concurrent-minibatch count (0 = auto).
	Nm int `json:"nm"`
	// Batch is the per-minibatch sample count.
	Batch int `json:"batch"`
	// MinibatchesPerVW sizes the simulation (0 = D-aware default).
	MinibatchesPerVW int `json:"minibatchesPerVW,omitempty"`
}

// ID renders a compact, unique scenario label, e.g.
// "vgg19/paper/wsp/hetpipe-fifo/ED/default/d0/nm-auto". Faulted scenarios
// gain a trailing "/f:<spec>" segment and serving scenarios a "/t:<spec>"
// segment; fault-free training ones keep the bare form.
func (s *Scenario) ID() string {
	if s.SyncMode == SyncHorovod {
		return fmt.Sprintf("%s/%s/%s", s.Model, s.Cluster, s.SyncMode)
	}
	nm := fmt.Sprintf("nm%d", s.Nm)
	if s.Nm == 0 {
		nm = "nm-auto"
	}
	schedule := s.Schedule
	if s.Interleave > 1 {
		// The V segment appears only for chunked placements, so every
		// pre-interleave scenario ID (and baselineID) is unchanged.
		schedule = fmt.Sprintf("%s-v%d", s.Schedule, s.Interleave)
	}
	id := fmt.Sprintf("%s/%s/%s/%s/%s/%s/d%d/%s",
		s.Model, s.Cluster, s.SyncMode, schedule, s.Policy, s.Placement, s.D, nm)
	if s.Faults != "" {
		id += "/f:" + s.Faults
	}
	if s.Traffic != "" {
		id += "/t:" + s.Traffic
	}
	return id
}

// baselineID is the scenario's ID with the fault axis stripped — the key a
// faulted scenario's degradation is computed against.
func (s *Scenario) baselineID() string {
	c := *s
	c.Faults = ""
	return c.ID()
}

// Expand validates every axis value and returns the grid's scenarios in
// deterministic order (model-major, then cluster, sync mode, schedule,
// interleave, policy, placement, faults, traffic, D, Nm). Repeated axis
// values are deduplicated, Horovod scenarios collapse the schedule,
// interleave, policy, placement, faults, traffic, D, and Nm axes (exactly
// one baseline run per model and cluster), schedules without interleave
// support collapse the interleave axis to V=1, and serving scenarios
// (non-empty Traffic) collapse the D axis to a single D=0 cell.
func (g Grid) Expand() ([]Scenario, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	syncModes := dedup(g.SyncModes)
	if len(syncModes) == 0 {
		syncModes = []string{SyncWSP}
	}
	placements := dedup(g.Placements)
	if len(placements) == 0 {
		placements = []string{PlacementDefault}
	}
	schedules := dedup(g.Schedules)
	if len(schedules) == 0 {
		schedules = []string{sched.Default().Name()}
	}
	interleaves := dedup(g.Interleaves)
	if len(interleaves) == 0 {
		interleaves = []int{1}
	}
	faults := dedup(g.Faults)
	if len(faults) == 0 {
		faults = []string{""}
	}
	traffics := dedup(g.Traffics)
	if len(traffics) == 0 {
		traffics = []string{""}
	}
	dValues := dedup(g.DValues)
	if len(dValues) == 0 {
		dValues = []int{0}
	}
	nmValues := dedup(g.NmValues)
	if len(nmValues) == 0 {
		nmValues = []int{0}
	}
	batch := g.Batch
	if batch == 0 {
		batch = 32
	}
	var out []Scenario
	for _, m := range dedup(g.Models) {
		for _, cl := range dedup(g.Clusters) {
			for _, sync := range syncModes {
				if sync == SyncHorovod {
					out = append(out, Scenario{
						Index: len(out), Model: m, Cluster: cl,
						SyncMode: SyncHorovod, Batch: batch,
					})
					continue
				}
				for _, sc := range schedules {
					vs := interleaves
					if s, err := sched.ByName(sc); err == nil && !s.SupportsInterleave() {
						// A schedule that cannot run chunked placements gets
						// exactly one V=1 cell, not a duplicate per degree.
						vs = []int{1}
					}
					for _, v := range vs {
						if v == 1 {
							// Normalize the default degree to the zero value so
							// V=1 scenarios serialize exactly as before the
							// interleave axis existed.
							v = 0
						}
						for _, pol := range dedup(g.Policies) {
							for _, pl := range placements {
								for _, fs := range faults {
									for _, tf := range traffics {
										ds := dValues
										if tf != "" {
											// Serving runs no WSP protocol, so the
											// clock bound never shapes the timeline;
											// one D=0 cell per serving spec, not a
											// duplicate per D value.
											ds = []int{0}
										}
										for _, d := range ds {
											for _, nm := range nmValues {
												out = append(out, Scenario{
													Index: len(out), Model: m, Cluster: cl,
													SyncMode: sync, Schedule: sc,
													Interleave: v,
													Policy:     pol, Placement: pl,
													Faults: fs, Traffic: tf,
													D: d, Nm: nm, Batch: batch,
													MinibatchesPerVW: g.MinibatchesPerVW,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// dedup drops repeated axis values, keeping first-occurrence order, so a
// grid like DValues: [0,4,0] cannot emit duplicate scenarios (Scenario.ID
// stays unique and Summarize's candidate counts stay honest).
func dedup[T comparable](vals []T) []T {
	seen := make(map[T]bool, len(vals))
	var out []T
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// validate rejects unknown or out-of-range axis values before any
// simulation starts, so a typo fails the whole sweep instead of producing a
// grid of per-scenario errors.
func (g Grid) validate() error {
	if len(g.Models) == 0 {
		return fmt.Errorf("sweep: grid needs at least one model (have %v)", model.Names())
	}
	if len(g.Clusters) == 0 {
		return fmt.Errorf("sweep: grid needs at least one cluster (have %v)", hw.ClusterNames())
	}
	for _, m := range g.Models {
		if _, err := model.ByName(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, c := range g.Clusters {
		if _, err := hw.ClusterByName(c); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	wsp := len(g.SyncModes) == 0
	for _, s := range g.SyncModes {
		switch s {
		case SyncWSP:
			wsp = true
		case SyncHorovod:
		default:
			return fmt.Errorf("sweep: unknown sync mode %q (want %q or %q)", s, SyncWSP, SyncHorovod)
		}
	}
	if wsp && len(g.Policies) == 0 {
		return fmt.Errorf("sweep: WSP scenarios need at least one policy (want NP, ED, or HD)")
	}
	for _, p := range g.Policies {
		if _, err := hw.PolicyByName(p); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, p := range g.Placements {
		if p != PlacementDefault && p != PlacementLocal {
			return fmt.Errorf("sweep: unknown placement %q (want %q or %q)", p, PlacementDefault, PlacementLocal)
		}
	}
	for _, s := range g.Schedules {
		if _, err := sched.ByName(s); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, v := range g.Interleaves {
		if v < 1 {
			return fmt.Errorf("sweep: interleave degree must be >= 1, got %d", v)
		}
	}
	for _, f := range g.Faults {
		if _, err := fault.Parse(f); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, tf := range g.Traffics {
		if tf == "" {
			continue
		}
		if _, err := serve.ParseTraffic(tf); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, d := range g.DValues {
		if d < 0 {
			return fmt.Errorf("sweep: D must be >= 0, got %d", d)
		}
	}
	for _, nm := range g.NmValues {
		if nm < 0 {
			return fmt.Errorf("sweep: Nm must be >= 0 (0 = auto), got %d", nm)
		}
	}
	if g.Batch < 0 {
		return fmt.Errorf("sweep: batch must be >= 0 (0 = 32), got %d", g.Batch)
	}
	if g.MinibatchesPerVW < 0 {
		return fmt.Errorf("sweep: minibatches per VW must be >= 0 (0 = D-aware default), got %d", g.MinibatchesPerVW)
	}
	return nil
}
