package sweep

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"hetpipe/internal/sim"
)

// ThroughputStats is the throughput distribution over a sweep's successful
// scenarios: extremes, mean, and nearest-rank percentiles.
type ThroughputStats struct {
	// N counts successful scenarios.
	N int `json:"n"`
	// Min, Max, and Mean summarize the distribution; zero when N == 0.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// P50, P90, and P99 are nearest-rank percentiles (the smallest observed
	// throughput with at least that fraction of scenarios at or below it).
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// PairRank ranks one model/cluster pair's best configuration, the streaming
// counterpart of SummaryRow: only the winner's identity and throughput are
// retained, not its full Result.
type PairRank struct {
	Model   string `json:"model"`
	Cluster string `json:"cluster"`
	// BestID is the winning scenario's ID; empty when every scenario of the
	// pair failed.
	BestID string `json:"bestId,omitempty"`
	// BestThroughput is the winner's aggregate samples/sec.
	BestThroughput float64 `json:"bestThroughput,omitempty"`
	// Candidates counts the pair's scenarios; Failed counts those that ended
	// in an error.
	Candidates int `json:"candidates"`
	Failed     int `json:"failed"`
}

// StreamSummary is the bounded-memory outcome of RunStream: counts, the
// throughput distribution, and the per-pair ranking — everything the summary
// views need, with no per-scenario rows. It is byte-for-byte reproducible:
// the same grid yields the same serialized summary at any worker count.
type StreamSummary struct {
	// Scenarios counts the grid's cells; Failures those that errored.
	Scenarios int `json:"scenarios"`
	Failures  int `json:"failures"`
	// Throughput summarizes the successful scenarios' aggregate throughput.
	Throughput ThroughputStats `json:"throughput"`
	// Pairs ranks each model/cluster pair's best configuration, best pair
	// first (failed-only pairs last), as Summarize does.
	Pairs []PairRank `json:"pairs"`
}

// RunStream expands the grid and simulates every scenario like Run, but
// aggregates on the fly instead of materializing a Result row per scenario:
// memory stays bounded by the grid's axes (scenarios, families, pairs) rather
// than by rows carrying partition plans and per-VW vectors, so grids with
// 10^5+ cells sweep in a fixed footprint. Per-scenario failures are counted,
// not recorded; Options.OnResult still observes every transient Result for
// progress reporting. Degradation against fault-free twins is a row-level
// metric and is not part of the summary.
//
// Determinism guarantee: aggregation is deferred to a final pass in scenario
// index order, so the summary is identical — bit for bit — whatever
// Options.Workers is, exactly like Run's row output.
func RunStream(ctx context.Context, g Grid, opt Options) (*StreamSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scenarios, err := g.Expand()
	if err != nil {
		return nil, err
	}
	workers := opt.ResolvedWorkers(len(scenarios))
	// One throughput and one failure flag per scenario is the whole retained
	// state: the Result rows themselves live only inside their worker's loop
	// iteration.
	thr := make([]float64, len(scenarios))
	failed := make([]bool, len(scenarios))
	res := newResolver()
	var notify sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := sim.New()
			for i := range jobs {
				r := runScenario(ctx, scenarios[i], res, eng)
				thr[i] = r.Throughput
				failed[i] = r.Error != ""
				if opt.OnResult != nil {
					notify.Lock()
					opt.OnResult(r)
					notify.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range scenarios {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return summarizeStream(scenarios, thr, failed), nil
}

// Aggregate reduces a materialized sweep to the same summary RunStream
// produces, from identical inputs in identical (index) order — the two are
// byte-for-byte interchangeable, which is what lets tests pin the streaming
// path against the materialized one.
func Aggregate(set *Set) *StreamSummary {
	scenarios := make([]Scenario, len(set.Results))
	thr := make([]float64, len(set.Results))
	failed := make([]bool, len(set.Results))
	for i := range set.Results {
		r := &set.Results[i]
		scenarios[i] = r.Scenario
		thr[i] = r.Throughput
		failed[i] = r.Error != ""
	}
	return summarizeStream(scenarios, thr, failed)
}

// summarizeStream is the shared deterministic reduction: a single pass in
// scenario index order plus one sort of the successful throughputs.
func summarizeStream(scenarios []Scenario, thr []float64, failed []bool) *StreamSummary {
	out := &StreamSummary{Scenarios: len(scenarios)}
	type pairKey struct{ model, cluster string }
	byPair := map[pairKey]int{}
	var ok []float64
	sum := 0.0
	for i := range scenarios {
		sc := &scenarios[i]
		k := pairKey{sc.Model, sc.Cluster}
		pi, seen := byPair[k]
		if !seen {
			pi = len(out.Pairs)
			byPair[k] = pi
			out.Pairs = append(out.Pairs, PairRank{Model: k.model, Cluster: k.cluster})
		}
		p := &out.Pairs[pi]
		p.Candidates++
		if failed[i] {
			out.Failures++
			p.Failed++
			continue
		}
		ok = append(ok, thr[i])
		sum += thr[i]
		if p.BestID == "" || thr[i] > p.BestThroughput {
			p.BestID = sc.ID()
			p.BestThroughput = thr[i]
		}
	}
	if n := len(ok); n > 0 {
		sort.Float64s(ok)
		out.Throughput = ThroughputStats{
			N: n, Min: ok[0], Max: ok[n-1], Mean: sum / float64(n),
			P50: percentile(ok, 50), P90: percentile(ok, 90), P99: percentile(ok, 99),
		}
	}
	sort.SliceStable(out.Pairs, func(i, j int) bool {
		ti, tj := -1.0, -1.0
		if out.Pairs[i].BestID != "" {
			ti = out.Pairs[i].BestThroughput
		}
		if out.Pairs[j].BestID != "" {
			tj = out.Pairs[j].BestThroughput
		}
		return ti > tj
	})
	return out
}

// percentile returns the nearest-rank p-th percentile of ascending-sorted
// values.
func percentile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// WriteStreamSummary renders the streaming summary as a text table: overall
// counts, the throughput distribution, and the per-pair ranking.
func WriteStreamSummary(w io.Writer, s *StreamSummary) error {
	if _, err := fmt.Fprintf(w, "scenarios=%d failures=%d\n", s.Scenarios, s.Failures); err != nil {
		return err
	}
	t := s.Throughput
	if t.N > 0 {
		if _, err := fmt.Fprintf(w, "throughput: n=%d min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g mean=%.4g\n",
			t.N, t.Min, t.P50, t.P90, t.P99, t.Max, t.Mean); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-11s %-9s %-62s %12s %8s\n",
		"MODEL", "CLUSTER", "BEST CONFIG", "SAMPLES/S", "OK/ALL"); err != nil {
		return err
	}
	for _, p := range s.Pairs {
		cfg, rate := p.BestID, fmt.Sprintf("%.0f", p.BestThroughput)
		if cfg == "" {
			cfg, rate = "(all scenarios failed)", "-"
		}
		if _, err := fmt.Fprintf(w, "%-11s %-9s %-62s %12s %5d/%-3d\n",
			p.Model, p.Cluster, cfg, rate, p.Candidates-p.Failed, p.Candidates); err != nil {
			return err
		}
	}
	return nil
}
