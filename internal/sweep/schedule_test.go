package sweep

import (
	"context"
	"strings"
	"testing"

	"hetpipe/internal/sched"
)

// TestScheduleAxisExpansion checks that the schedule axis multiplies WSP
// scenarios, collapses for Horovod, and defaults to hetpipe-fifo.
func TestScheduleAxisExpansion(t *testing.T) {
	g := Grid{
		Models:    []string{"vgg19"},
		Clusters:  []string{"paper"},
		Policies:  []string{"ED"},
		SyncModes: []string{SyncWSP, SyncHorovod},
		Schedules: []string{sched.NameFIFO, sched.NameOneF1B, sched.NameOverlap},
		NmValues:  []int{2},
	}
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 3 schedules x 1 policy x 1 placement x 1 D x 1 Nm + 1 Horovod.
	if len(scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(scenarios))
	}
	seen := map[string]bool{}
	for _, sc := range scenarios {
		if sc.SyncMode == SyncHorovod {
			if sc.Schedule != "" {
				t.Errorf("horovod scenario carries schedule %q", sc.Schedule)
			}
			continue
		}
		seen[sc.Schedule] = true
		if !strings.Contains(sc.ID(), sc.Schedule) {
			t.Errorf("scenario ID %q does not name its schedule %q", sc.ID(), sc.Schedule)
		}
	}
	for _, want := range []string{sched.NameFIFO, sched.NameOneF1B, sched.NameOverlap} {
		if !seen[want] {
			t.Errorf("schedule %s missing from expansion", want)
		}
	}

	// Empty axis defaults to the default schedule.
	g.Schedules = nil
	scenarios, err = g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		if sc.SyncMode == SyncWSP && sc.Schedule != sched.Default().Name() {
			t.Errorf("default schedule = %q, want %q", sc.Schedule, sched.Default().Name())
		}
	}

	// Unknown schedules are rejected before any simulation.
	g.Schedules = []string{"bogus"}
	if _, err := g.Expand(); err == nil {
		t.Error("unknown schedule accepted by Expand")
	}
}

// TestScheduleSweepRuns sweeps one configuration across all four schedules
// and checks every scenario simulates, that schedules resolve distinct
// deployment families, and that overlap beats or matches fifo.
func TestScheduleSweepRuns(t *testing.T) {
	g := Grid{
		Models:    []string{"vgg19"},
		Clusters:  []string{"paper"},
		Policies:  []string{"ED"},
		Schedules: sched.Names(),
		NmValues:  []int{2},
	}
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, res, err := run(context.Background(), g, scenarios, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.resolutions.Load(); got != int64(len(sched.Names())) {
		t.Errorf("deployment resolutions = %d, want %d (one per schedule family)", got, len(sched.Names()))
	}
	byShed := map[string]float64{}
	for i := range set.Results {
		r := &set.Results[i]
		if r.Error != "" {
			t.Fatalf("%s: %s", r.Scenario.ID(), r.Error)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: throughput %g", r.Scenario.ID(), r.Throughput)
		}
		byShed[r.Scenario.Schedule] = r.Throughput
	}
	// In this sync-bound configuration every non-gpipe schedule lands at the
	// same WSP-gated rate; allow float noise but no real regression.
	if byShed[sched.NameOverlap] < byShed[sched.NameFIFO]*(1-1e-12) {
		t.Errorf("overlap %.6g < fifo %.6g in sweep", byShed[sched.NameOverlap], byShed[sched.NameFIFO])
	}
}
