package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"hetpipe/internal/core"
	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/serve"
	"hetpipe/internal/sim"
)

// Options tunes a sweep run.
type Options struct {
	// Workers bounds the number of scenarios simulated concurrently;
	// <= 0 means GOMAXPROCS. Each worker goroutine owns its scenario's
	// discrete-event engine, so results are independent of the worker count.
	Workers int
	// OnResult, when non-nil, observes each finished scenario. Calls are
	// serialized but arrive in completion order, not scenario order.
	OnResult func(Result)
}

// Result is the structured outcome of one scenario.
type Result struct {
	// Scenario is the configuration that produced this result.
	Scenario Scenario `json:"scenario"`
	// Error is the failure message for infeasible scenarios (e.g. a model
	// that fits no partition of a whimpy virtual worker); empty on success.
	Error string `json:"error,omitempty"`
	// Throughput is the aggregate steady-state samples/sec for training
	// scenarios and served requests/sec for serving ones (Scenario.Traffic
	// non-empty).
	Throughput float64 `json:"throughput,omitempty"`
	// PerVW is each virtual worker's throughput (WSP only).
	PerVW []float64 `json:"perVW,omitempty"`
	// Workers counts data-parallel workers: virtual workers under WSP,
	// participating GPUs under Horovod.
	Workers int `json:"workers,omitempty"`
	// Excluded lists GPUs the Horovod baseline had to drop because the
	// whole model exceeds their memory.
	Excluded []string `json:"excluded,omitempty"`
	// Nm is the concurrent-minibatch count actually used (resolved from 0
	// = auto).
	Nm int `json:"nmResolved,omitempty"`
	// SLocal and SGlobal are the staleness bounds implied by Nm and D.
	SLocal  int `json:"slocal,omitempty"`
	SGlobal int `json:"sglobal,omitempty"`
	// Waiting and Idle decompose synchronization overhead in seconds
	// summed over virtual workers; Idle is the unhidden part.
	Waiting float64 `json:"waiting,omitempty"`
	Idle    float64 `json:"idle,omitempty"`
	// Pushes counts wave pushes to the parameter servers.
	Pushes int `json:"pushes,omitempty"`
	// MaxClockDistance is the largest observed clock skew between virtual
	// workers.
	MaxClockDistance int `json:"maxClockDistance,omitempty"`
	// FaultInjections counts fault-plan entries that took effect.
	FaultInjections int `json:"faultInjections,omitempty"`
	// Served counts drained requests and P50/P95/P99 are nearest-rank
	// request latencies in virtual seconds; MeanBatchFill is the mean
	// number of requests the admission layer coalesced per microbatch.
	// Serving scenarios only.
	Served        int     `json:"served,omitempty"`
	P50           float64 `json:"p50Sec,omitempty"`
	P95           float64 `json:"p95Sec,omitempty"`
	P99           float64 `json:"p99Sec,omitempty"`
	MeanBatchFill float64 `json:"meanBatchFill,omitempty"`
	// DegradationPct is the throughput lost to the scenario's fault plan,
	// in percent of the fault-free twin's throughput (same configuration
	// with an empty Faults spec). Zero for fault-free scenarios and when
	// the sweep has no fault-free twin to compare against.
	DegradationPct float64 `json:"degradationPct,omitempty"`
	// Plans carries each virtual worker's partition plan (Plans[i].GPUs is
	// virtual worker i's GPU mix).
	Plans []PlanSummary `json:"plans,omitempty"`
}

// PlanSummary is one virtual worker's partition plan in a serializable form.
type PlanSummary struct {
	// GPUs is the VW's GPU mix as a type string, e.g. "VVQQ".
	GPUs string `json:"gpus"`
	// Stages lists the per-stage layer assignments.
	Stages []StageSummary `json:"stages"`
	// BottleneckSec is the slowest stage's per-minibatch time.
	BottleneckSec float64 `json:"bottleneckSec"`
}

// StageSummary is one pipeline stage of a partition plan.
type StageSummary struct {
	// GPU names the hosting device, e.g. "n1g2(R)".
	GPU string `json:"gpu"`
	// Lo and Hi bound the stage's layer envelope [Lo, Hi): the exact range
	// for contiguous stages, the outer bracket of the chunk set for
	// interleaved ones.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Chunks renders the stage's chunk set as "lo-hi" ranges joined with
	// "+", e.g. "0-5+12-17"; only present for interleaved stages (more than
	// one chunk).
	Chunks string `json:"chunks,omitempty"`
	// ExecSec is the stage's per-minibatch execution time.
	ExecSec float64 `json:"execSec"`
	// MemoryBytes is the stage's working set; MemoryCapBytes the device
	// capacity it must fit in.
	MemoryBytes    int64 `json:"memoryBytes"`
	MemoryCapBytes int64 `json:"memoryCapBytes"`
}

// Set is a completed sweep: the grid and one result per scenario, in
// expansion order. The layout is deliberately free of wall-clock timestamps
// and worker counts so that serialized output is reproducible run-to-run.
type Set struct {
	// Grid is the declaration that was expanded.
	Grid Grid `json:"grid"`
	// Results holds one entry per scenario, indexed by Scenario.Index.
	Results []Result `json:"results"`
}

// Failures counts scenarios that ended in an error.
func (s *Set) Failures() int {
	n := 0
	for i := range s.Results {
		if s.Results[i].Error != "" {
			n++
		}
	}
	return n
}

// ResolvedWorkers reports the pool size Run will actually use for a sweep of
// n scenarios: Options.Workers, defaulted to GOMAXPROCS and capped at n.
func (o Options) ResolvedWorkers(n int) int {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// sysKey identifies a deployment super-family: scenarios that share the
// profiled System and the GPU allocation. Nm, placement, D, and faults are
// all absent — a grid whose cells differ only in those axes builds the model
// graph, profiles it against the cluster, and allocates virtual workers
// exactly once.
type sysKey struct {
	model, cluster, policy, schedule string
	interleave, batch                int
}

// sysEntry is one super-family's lazily-built System and Allocation.
type sysEntry struct {
	once  sync.Once
	sys   *core.System
	alloc *hw.Allocation
	err   error
}

// deployKey identifies a grid-cell family: scenarios that share everything a
// deployment resolution depends on. D is deliberately absent — partition
// plans, Nm selection, and sync transfer times are all D-independent, so one
// resolved deployment serves every D value of the family via
// core.Deployment.WithD. Nm and placement are present (the partition memory
// model depends on Nm; sync transfer times on placement), but families
// differing only in them still share the profiled System and Allocation
// through the sysKey level. The schedule is present at both levels: it shapes
// the partition plans (per-schedule memory model) and the simulated task
// graph.
type deployKey struct {
	model, cluster, policy, placement, schedule string
	interleave, nm, batch                       int
}

// deployEntry is one family's lazily-resolved deployment.
type deployEntry struct {
	once sync.Once
	dep  *core.Deployment
	err  error
}

// resolver caches per-super-family Systems/Allocations and per-family
// deployments. Deployment resolution — model graph, cluster inventory,
// allocation, per-VW partitioning, and the Nm sweep when Nm is auto —
// dominates a scenario's cost, and a grid with a D axis of k values would
// otherwise repeat it k times per family; an Nm axis additionally re-profiles
// the model without the sysKey level. The cache is safe for concurrent
// scenario workers (the per-entry once serializes resolution; the resolved
// values are read-only during simulation) and does not affect determinism:
// resolution is a pure function of the key.
type resolver struct {
	mu      sync.Mutex
	systems map[sysKey]*sysEntry
	entries map[deployKey]*deployEntry
	// resolutions counts actual (non-cached) deployment resolutions, and
	// sysResolutions actual System builds — the reuse observability hooks the
	// tests assert on.
	resolutions    atomic.Int64
	sysResolutions atomic.Int64
}

func newResolver() *resolver {
	return &resolver{
		systems: make(map[sysKey]*sysEntry),
		entries: make(map[deployKey]*deployEntry),
	}
}

// system returns the super-family System and Allocation for sc, building
// them on first use.
func (r *resolver) system(sc Scenario) (*core.System, *hw.Allocation, error) {
	key := sysKey{
		model: sc.Model, cluster: sc.Cluster,
		policy: sc.Policy, schedule: sc.Schedule,
		interleave: sc.Interleave, batch: sc.Batch,
	}
	r.mu.Lock()
	e := r.systems[key]
	if e == nil {
		e = &sysEntry{}
		r.systems[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		r.sysResolutions.Add(1)
		e.sys, e.alloc, e.err = resolveSystem(sc)
	})
	return e.sys, e.alloc, e.err
}

// deployment returns the family deployment for sc, resolving it on first
// use, re-bound to the scenario's D.
func (r *resolver) deployment(sc Scenario) (*core.Deployment, error) {
	key := deployKey{
		model: sc.Model, cluster: sc.Cluster,
		policy: sc.Policy, placement: sc.Placement,
		schedule:   sc.Schedule,
		interleave: sc.Interleave,
		nm:         sc.Nm, batch: sc.Batch,
	}
	r.mu.Lock()
	e := r.entries[key]
	if e == nil {
		e = &deployEntry{}
		r.entries[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		sys, alloc, err := r.system(sc)
		if err != nil {
			e.err = err
			return
		}
		r.resolutions.Add(1)
		placement := core.PlacementDefault
		if sc.Placement == PlacementLocal {
			placement = core.PlacementLocal
		}
		e.dep, e.err = sys.Deploy(alloc, sc.Nm, 0, placement)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.dep.WithD(sc.D)
}

// resolveSystem builds one super-family's profiled System and GPU allocation
// from scratch; everything here is independent of Nm, placement, D, and the
// fault plan.
func resolveSystem(sc Scenario) (*core.System, *hw.Allocation, error) {
	m, err := model.ByName(sc.Model)
	if err != nil {
		return nil, nil, err
	}
	cluster, err := hw.ClusterByName(sc.Cluster)
	if err != nil {
		return nil, nil, err
	}
	schedule, err := sched.ByName(sc.Schedule)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewSystemSched(cluster, m, profile.Default(), sc.Batch, schedule)
	if err != nil {
		return nil, nil, err
	}
	sys.Interleave = sc.Interleave
	pol, err := hw.PolicyByName(sc.Policy)
	if err != nil {
		return nil, nil, err
	}
	alloc, err := hw.Allocate(cluster, pol)
	if err != nil {
		return nil, nil, err
	}
	return sys, alloc, nil
}

// Run expands the grid and simulates every scenario on a bounded worker
// pool. Per-scenario failures are recorded in Result.Error rather than
// aborting the sweep; Run itself fails on an invalid grid or when ctx is
// cancelled (no partial Set is returned — a cancelled sweep's output would
// not be reproducible).
//
// Scenarios sharing a grid-cell family — same model, cluster, policy,
// placement, Nm, and batch — reuse one resolved deployment (partition plans
// and the auto-Nm choice are computed once per family, not once per D
// value); only the per-scenario WSP simulation runs fresh.
//
// Determinism guarantee: deployment resolution is a pure function of the
// family key and every scenario runs on its own single-goroutine
// discrete-event engine, so Results is identical — bit for bit — whatever
// Options.Workers is.
func Run(ctx context.Context, g Grid, opt Options) (*Set, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scenarios, err := g.Expand()
	if err != nil {
		return nil, err
	}
	set, _, err := run(ctx, g, scenarios, opt)
	return set, err
}

// run is the shared engine behind Run; it also reports the resolver so
// tests can assert on deployment reuse.
func run(ctx context.Context, g Grid, scenarios []Scenario, opt Options) (*Set, *resolver, error) {
	workers := opt.ResolvedWorkers(len(scenarios))
	results := make([]Result, len(scenarios))
	res := newResolver()
	var notify sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One warm discrete-event engine per worker goroutine: its arena
			// and heap grow to the sweep's peak once and are reused (via
			// Reset) for every scenario this worker draws.
			eng := sim.New()
			for i := range jobs {
				results[i] = runScenario(ctx, scenarios[i], res, eng)
				if opt.OnResult != nil {
					notify.Lock()
					opt.OnResult(results[i])
					notify.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range scenarios {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, res, err
	}
	fillDegradation(results)
	return &Set{Grid: g, Results: results}, res, nil
}

// fillDegradation computes each faulted scenario's throughput loss against
// its fault-free twin (same configuration, empty Faults spec), when the grid
// includes one. A pure post-pass over the finished results, so it cannot
// perturb determinism.
func fillDegradation(results []Result) {
	baseline := make(map[string]float64)
	for i := range results {
		r := &results[i]
		if r.Scenario.Faults == "" && r.Error == "" && r.Scenario.SyncMode == SyncWSP {
			baseline[r.Scenario.ID()] = r.Throughput
		}
	}
	for i := range results {
		r := &results[i]
		if r.Scenario.Faults == "" || r.Error != "" {
			continue
		}
		if base, ok := baseline[r.Scenario.baselineID()]; ok && base > 0 {
			r.DegradationPct = (base - r.Throughput) / base * 100
		}
	}
}

// runScenario simulates one scenario: the shared family deployment (via the
// resolver) plus a scenario-local discrete-event simulation on the worker's
// warm engine.
func runScenario(ctx context.Context, sc Scenario, res *resolver, eng *sim.Engine) Result {
	out := Result{Scenario: sc}
	fail := func(err error) Result {
		out.Error = err.Error()
		return out
	}
	if sc.SyncMode == SyncHorovod {
		m, err := model.ByName(sc.Model)
		if err != nil {
			return fail(err)
		}
		cluster, err := hw.ClusterByName(sc.Cluster)
		if err != nil {
			return fail(err)
		}
		sys, err := core.NewSystem(cluster, m, profile.Default(), sc.Batch)
		if err != nil {
			return fail(err)
		}
		hr, err := sys.Horovod(nil)
		if err != nil {
			return fail(err)
		}
		out.Throughput = hr.Throughput
		out.Workers = len(hr.Workers)
		for _, g := range hr.Excluded {
			out.Excluded = append(out.Excluded, g.Name())
		}
		return out
	}
	dep, err := res.deployment(sc)
	if err != nil {
		return fail(err)
	}
	// The fault plan is scenario-local: it shapes the simulated timeline but
	// not the resolved deployment, which is why it is absent from the family
	// key and the resolver's reuse is unaffected. The same holds for the
	// traffic spec: a serving scenario drives the shared deployment with a
	// request generator instead of the WSP training simulation.
	plan, err := fault.Parse(sc.Faults)
	if err != nil {
		return fail(err)
	}
	if sc.Traffic != "" {
		tr, err := serve.ParseTraffic(sc.Traffic)
		if err != nil {
			return fail(err)
		}
		sr, err := serve.RunOn(ctx, eng, dep, tr, serve.Options{Faults: plan})
		if err != nil {
			return fail(err)
		}
		out.Throughput = sr.ThroughputRPS
		out.Workers = len(dep.VWs)
		out.Nm = dep.Nm
		out.Served = sr.Served
		out.P50 = sr.Latency.P50
		out.P95 = sr.Latency.P95
		out.P99 = sr.Latency.P99
		out.MeanBatchFill = sr.MeanBatchFill
		out.FaultInjections = sr.FaultInjections
		fillPlans(&out, dep)
		return out
	}
	mbs := sc.MinibatchesPerVW
	if mbs == 0 {
		mbs = dep.DefaultMinibatches()
	}
	mr, err := dep.SimulateWSPFaultsOn(ctx, eng, mbs, 4*dep.Nm, nil, plan, 0)
	if err != nil {
		return fail(err)
	}
	out.Throughput = mr.Aggregate
	out.PerVW = mr.PerVW
	out.Workers = len(dep.VWs)
	out.Nm = dep.Nm
	out.SLocal = dep.SLocal()
	out.SGlobal = dep.SGlobal()
	out.Waiting = mr.Waiting
	out.Idle = mr.Idle
	out.Pushes = mr.Pushes
	out.MaxClockDistance = mr.MaxClockDistance
	out.FaultInjections = mr.FaultInjections
	fillPlans(&out, dep)
	return out
}

// fillPlans copies the deployment's per-virtual-worker partition plans into
// the result's serializable summaries; training and serving scenarios share
// it, so both row kinds report the same plan shape.
func fillPlans(out *Result, dep *core.Deployment) {
	for _, vp := range dep.VWs {
		ps := PlanSummary{GPUs: vp.VW.TypeString(), BottleneckSec: vp.Plan.Bottleneck}
		for i := range vp.Plan.Stages {
			st := &vp.Plan.Stages[i]
			ps.Stages = append(ps.Stages, StageSummary{
				GPU: st.GPU.Name(), Lo: st.Lo(), Hi: st.Hi(),
				Chunks:         chunkSpec(st),
				ExecSec:        st.ExecTime(),
				MemoryBytes:    st.MemoryBytes,
				MemoryCapBytes: st.MemoryCap,
			})
		}
		out.Plans = append(out.Plans, ps)
	}
}
