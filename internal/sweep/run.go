package sweep

import (
	"runtime"
	"sync"

	"hetpipe/internal/core"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
)

// Options tunes a sweep run.
type Options struct {
	// Workers bounds the number of scenarios simulated concurrently;
	// <= 0 means GOMAXPROCS. Each worker goroutine owns its scenario's
	// entire simulation — cluster inventory, model graph, discrete-event
	// engine — so results are independent of the worker count.
	Workers int
	// OnResult, when non-nil, observes each finished scenario. Calls are
	// serialized but arrive in completion order, not scenario order.
	OnResult func(Result)
}

// Result is the structured outcome of one scenario.
type Result struct {
	// Scenario is the configuration that produced this result.
	Scenario Scenario `json:"scenario"`
	// Error is the failure message for infeasible scenarios (e.g. a model
	// that fits no partition of a whimpy virtual worker); empty on success.
	Error string `json:"error,omitempty"`
	// Throughput is the aggregate steady-state samples/sec.
	Throughput float64 `json:"throughput,omitempty"`
	// PerVW is each virtual worker's throughput (WSP only).
	PerVW []float64 `json:"perVW,omitempty"`
	// Workers counts data-parallel workers: virtual workers under WSP,
	// participating GPUs under Horovod.
	Workers int `json:"workers,omitempty"`
	// Excluded lists GPUs the Horovod baseline had to drop because the
	// whole model exceeds their memory.
	Excluded []string `json:"excluded,omitempty"`
	// Nm is the concurrent-minibatch count actually used (resolved from 0
	// = auto).
	Nm int `json:"nmResolved,omitempty"`
	// SLocal and SGlobal are the staleness bounds implied by Nm and D.
	SLocal  int `json:"slocal,omitempty"`
	SGlobal int `json:"sglobal,omitempty"`
	// Waiting and Idle decompose synchronization overhead in seconds
	// summed over virtual workers; Idle is the unhidden part.
	Waiting float64 `json:"waiting,omitempty"`
	Idle    float64 `json:"idle,omitempty"`
	// Pushes counts wave pushes to the parameter servers.
	Pushes int `json:"pushes,omitempty"`
	// MaxClockDistance is the largest observed clock skew between virtual
	// workers.
	MaxClockDistance int `json:"maxClockDistance,omitempty"`
	// Plans carries each virtual worker's partition plan (Plans[i].GPUs is
	// virtual worker i's GPU mix).
	Plans []PlanSummary `json:"plans,omitempty"`
}

// PlanSummary is one virtual worker's partition plan in a serializable form.
type PlanSummary struct {
	// GPUs is the VW's GPU mix as a type string, e.g. "VVQQ".
	GPUs string `json:"gpus"`
	// Stages lists the per-stage layer assignments.
	Stages []StageSummary `json:"stages"`
	// BottleneckSec is the slowest stage's per-minibatch time.
	BottleneckSec float64 `json:"bottleneckSec"`
}

// StageSummary is one pipeline stage of a partition plan.
type StageSummary struct {
	// GPU names the hosting device, e.g. "n1g2(R)".
	GPU string `json:"gpu"`
	// Lo and Hi bound the stage's layer range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// ExecSec is the stage's per-minibatch execution time.
	ExecSec float64 `json:"execSec"`
	// MemoryBytes is the stage's working set; MemoryCapBytes the device
	// capacity it must fit in.
	MemoryBytes    int64 `json:"memoryBytes"`
	MemoryCapBytes int64 `json:"memoryCapBytes"`
}

// Set is a completed sweep: the grid and one result per scenario, in
// expansion order. The layout is deliberately free of wall-clock timestamps
// and worker counts so that serialized output is reproducible run-to-run.
type Set struct {
	// Grid is the declaration that was expanded.
	Grid Grid `json:"grid"`
	// Results holds one entry per scenario, indexed by Scenario.Index.
	Results []Result `json:"results"`
}

// Failures counts scenarios that ended in an error.
func (s *Set) Failures() int {
	n := 0
	for i := range s.Results {
		if s.Results[i].Error != "" {
			n++
		}
	}
	return n
}

// ResolvedWorkers reports the pool size Run will actually use for a sweep of
// n scenarios: Options.Workers, defaulted to GOMAXPROCS and capped at n.
func (o Options) ResolvedWorkers(n int) int {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Run expands the grid and simulates every scenario on a bounded worker
// pool. Per-scenario failures are recorded in Result.Error rather than
// aborting the sweep; Run itself fails only on an invalid grid.
//
// Determinism guarantee: every scenario builds its own system (fresh
// cluster, model, performance profile) and runs on its own single-goroutine
// discrete-event engine, so Results is identical — bit for bit — whatever
// Options.Workers is.
func Run(g Grid, opt Options) (*Set, error) {
	scenarios, err := g.Expand()
	if err != nil {
		return nil, err
	}
	workers := opt.ResolvedWorkers(len(scenarios))
	results := make([]Result, len(scenarios))
	var notify sync.Mutex
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = runScenario(scenarios[i])
				if opt.OnResult != nil {
					notify.Lock()
					opt.OnResult(results[i])
					notify.Unlock()
				}
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return &Set{Grid: g, Results: results}, nil
}

// runScenario simulates one scenario from scratch. Everything it touches is
// scenario-local: the cluster inventory, the model graph, the performance
// profile, and the event engine inside SimulateWSP.
func runScenario(sc Scenario) Result {
	res := Result{Scenario: sc}
	fail := func(err error) Result {
		res.Error = err.Error()
		return res
	}
	m, err := model.ByName(sc.Model)
	if err != nil {
		return fail(err)
	}
	cluster, err := hw.ClusterByName(sc.Cluster)
	if err != nil {
		return fail(err)
	}
	sys, err := core.NewSystem(cluster, m, profile.Default(), sc.Batch)
	if err != nil {
		return fail(err)
	}
	if sc.SyncMode == SyncHorovod {
		hr, err := sys.Horovod(nil)
		if err != nil {
			return fail(err)
		}
		res.Throughput = hr.Throughput
		res.Workers = len(hr.Workers)
		for _, g := range hr.Excluded {
			res.Excluded = append(res.Excluded, g.Name())
		}
		return res
	}
	pol, err := hw.PolicyByName(sc.Policy)
	if err != nil {
		return fail(err)
	}
	alloc, err := hw.Allocate(cluster, pol)
	if err != nil {
		return fail(err)
	}
	placement := core.PlacementDefault
	if sc.Placement == PlacementLocal {
		placement = core.PlacementLocal
	}
	dep, err := sys.Deploy(alloc, sc.Nm, sc.D, placement)
	if err != nil {
		return fail(err)
	}
	mbs := sc.MinibatchesPerVW
	if mbs == 0 {
		mbs = dep.DefaultMinibatches()
	}
	mr, err := dep.SimulateWSP(mbs, 4*dep.Nm)
	if err != nil {
		return fail(err)
	}
	res.Throughput = mr.Aggregate
	res.PerVW = mr.PerVW
	res.Workers = len(dep.VWs)
	res.Nm = dep.Nm
	res.SLocal = dep.SLocal()
	res.SGlobal = dep.SGlobal()
	res.Waiting = mr.Waiting
	res.Idle = mr.Idle
	res.Pushes = mr.Pushes
	res.MaxClockDistance = mr.MaxClockDistance
	for _, vp := range dep.VWs {
		ps := PlanSummary{GPUs: vp.VW.TypeString(), BottleneckSec: vp.Plan.Bottleneck}
		for i := range vp.Plan.Stages {
			st := &vp.Plan.Stages[i]
			ps.Stages = append(ps.Stages, StageSummary{
				GPU: st.GPU.Name(), Lo: st.Lo, Hi: st.Hi,
				ExecSec:        st.ExecTime(),
				MemoryBytes:    st.MemoryBytes,
				MemoryCapBytes: st.MemoryCap,
			})
		}
		res.Plans = append(res.Plans, ps)
	}
	return res
}
