package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func summaryJSON(t *testing.T, s *StreamSummary) []byte {
	t.Helper()
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The streaming path must be byte-for-byte interchangeable with aggregating
// a materialized sweep of the same grid.
func TestStreamMatchesMaterialized(t *testing.T) {
	grid := testGrid()
	set, err := Run(context.Background(), grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStream(context.Background(), grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, got := summaryJSON(t, Aggregate(set)), summaryJSON(t, stream)
	if !bytes.Equal(want, got) {
		t.Errorf("streaming summary differs from materialized aggregate:\nmaterialized: %s\nstreaming:    %s", want, got)
	}
	if stream.Scenarios != len(set.Results) || stream.Failures != set.Failures() {
		t.Errorf("counts: scenarios=%d failures=%d, want %d, %d",
			stream.Scenarios, stream.Failures, len(set.Results), set.Failures())
	}
	// The pair ranking must agree with Summarize's winners.
	rows := Summarize(set)
	if len(rows) != len(stream.Pairs) {
		t.Fatalf("pairs = %d, want %d", len(stream.Pairs), len(rows))
	}
	for i, row := range rows {
		p := stream.Pairs[i]
		if p.Model != row.Model || p.Cluster != row.Cluster {
			t.Errorf("pair %d = %s/%s, want %s/%s", i, p.Model, p.Cluster, row.Model, row.Cluster)
		}
		if row.Best != nil && (p.BestID != row.Best.Scenario.ID() || p.BestThroughput != row.Best.Throughput) {
			t.Errorf("pair %d winner = %s (%g), want %s (%g)",
				i, p.BestID, p.BestThroughput, row.Best.Scenario.ID(), row.Best.Throughput)
		}
	}
	var buf bytes.Buffer
	if err := WriteStreamSummary(&buf, stream); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BEST CONFIG") {
		t.Error("stream summary table missing header")
	}
}

func TestStreamParallelMatchesSerial(t *testing.T) {
	grid := testGrid()
	serial, err := RunStream(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunStream(context.Background(), grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := summaryJSON(t, serial), summaryJSON(t, parallel); !bytes.Equal(s, p) {
		t.Errorf("stream summary differs between workers=1 and workers=8:\nserial:   %s\nparallel: %s", s, p)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {90, 9}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(vals, c.p); got != c.want {
			t.Errorf("percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile([]float64{42}, 50); got != 42 {
		t.Errorf("percentile of singleton = %g, want 42", got)
	}
}

// scaleGrid expands to exactly 100,000 cells: one cheap family (alexnet on
// the mini cluster) swept across a wide fault axis and two D values, so every
// cell reuses the single resolved deployment and only the discrete-event
// simulation runs per cell.
func scaleGrid() Grid {
	faults := make([]string, 25000)
	for i := 1; i < len(faults); i++ {
		faults[i] = fmt.Sprintf("slow:w0:x1.%04d", i)
	}
	return Grid{
		Models:           []string{"alexnet"},
		Clusters:         []string{"mini"},
		Policies:         []string{"NP"},
		NmValues:         []int{1, 2},
		DValues:          []int{0, 1},
		Faults:           faults,
		MinibatchesPerVW: 8,
	}
}

// TestStreamScale is the 10^5-cell wall: the streaming sweep must agree with
// the materialized aggregate and with its own serial run bit for bit, and its
// retained heap must stay bounded by the grid's axes — not by 10^5 rows of
// plans and per-VW vectors.
func TestStreamScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-cell sweep; skipped with -short")
	}
	grid := scaleGrid()
	scenarios, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 100000 {
		t.Fatalf("grid expands to %d cells, want 100000", len(scenarios))
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stream, err := RunStream(context.Background(), grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	// The summary plus transient state must stay far below what 10^5
	// materialized Result rows occupy (hundreds of MB): everything RunStream
	// retains is O(axes), so 64 MB is generous headroom for the expanded
	// scenario list itself.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 64<<20 {
		t.Errorf("streaming sweep retained %d MB of heap, want < 64 MB", grew>>20)
	}
	if stream.Scenarios != len(scenarios) {
		t.Fatalf("summary covers %d scenarios, want %d", stream.Scenarios, len(scenarios))
	}
	if stream.Failures != 0 {
		t.Errorf("%d of %d scenarios failed", stream.Failures, stream.Scenarios)
	}
	if stream.Throughput.N != stream.Scenarios ||
		stream.Throughput.Min <= 0 ||
		stream.Throughput.P50 < stream.Throughput.Min ||
		stream.Throughput.P90 < stream.Throughput.P50 ||
		stream.Throughput.P99 < stream.Throughput.P90 ||
		stream.Throughput.Max < stream.Throughput.P99 {
		t.Errorf("implausible throughput stats: %+v", stream.Throughput)
	}

	serial, err := RunStream(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := summaryJSON(t, serial), summaryJSON(t, stream); !bytes.Equal(s, p) {
		t.Errorf("10^5-cell stream summary differs between workers=1 and parallel:\nserial:   %s\nparallel: %s", s, p)
	}

	set, err := Run(context.Background(), grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w, g := summaryJSON(t, Aggregate(set)), summaryJSON(t, stream); !bytes.Equal(w, g) {
		t.Errorf("10^5-cell streaming summary differs from materialized aggregate:\nmaterialized: %s\nstreaming:    %s", w, g)
	}
}
