package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// servingGrid crosses the serving axis with training baselines, a fault
// axis, and a D axis that only the training scenarios may expand.
func servingGrid() Grid {
	return Grid{
		Models:   []string{"vgg19"},
		Clusters: []string{"paper"},
		Policies: []string{"NP", "ED"},
		Faults:   []string{"", "slow:w0:x4"},
		Traffics: []string{"", "poisson:r120:n400:crit0.2", "closed:u16:t0.02:n300"},
		DValues:  []int{0, 2},
		NmValues: []int{2},
		// Keep the training cells short; the serving cells are sized by the
		// traffic specs' request counts.
		MinibatchesPerVW: 8,
	}
}

func TestServingAxisExpansion(t *testing.T) {
	scenarios, err := servingGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per policy and fault value: training at 2 D values + 2 serving specs
	// collapsed to D=0 = 4 cells; 2 policies x 2 faults = 16 scenarios.
	if len(scenarios) != 16 {
		t.Fatalf("scenarios = %d, want 16", len(scenarios))
	}
	ids := map[string]bool{}
	for _, sc := range scenarios {
		if ids[sc.ID()] {
			t.Errorf("duplicate scenario ID %s", sc.ID())
		}
		ids[sc.ID()] = true
		if sc.Traffic != "" && sc.D != 0 {
			t.Errorf("%s: serving scenario kept D=%d, want collapsed to 0", sc.ID(), sc.D)
		}
		if sc.Traffic != "" && !strings.Contains(sc.ID(), "/t:"+sc.Traffic) {
			t.Errorf("%s: ID missing /t: segment", sc.ID())
		}
	}
	// A faulted serving scenario carries both suffixes, fault first, and its
	// degradation baseline is the fault-free serving twin.
	sc := Scenario{
		Model: "vgg19", Cluster: "paper", SyncMode: SyncWSP,
		Schedule: "hetpipe-fifo", Policy: "NP", Placement: PlacementDefault,
		Faults: "slow:w0:x4", Traffic: "poisson:r120:n400", Nm: 2, Batch: 32,
	}
	if got := sc.ID(); !strings.HasSuffix(got, "/f:slow:w0:x4/t:poisson:r120:n400") {
		t.Errorf("faulted serving ID = %s", got)
	}
	if got := sc.baselineID(); !strings.HasSuffix(got, "/nm2/t:poisson:r120:n400") {
		t.Errorf("baseline ID = %s", got)
	}
}

func TestGridRejectsBadTraffic(t *testing.T) {
	g := servingGrid()
	g.Traffics = []string{"warp:r10:n5"}
	if _, err := g.Expand(); err == nil {
		t.Error("Expand accepted an unknown traffic kind")
	}
	g.Traffics = []string{"poisson:r0:n5"}
	if _, err := g.Expand(); err == nil {
		t.Error("Expand accepted a zero-rate traffic spec")
	}
}

// TestServingSweepDeterminism extends the worker-count determinism guarantee
// to the traffic axis: a grid mixing training, open-loop serving,
// closed-loop serving, and faulted twins serializes to identical bytes at
// any worker count, and the streaming aggregation stays interchangeable
// with the materialized one.
func TestServingSweepDeterminism(t *testing.T) {
	grid := servingGrid()
	serial, err := Run(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sj, pj, sc, pc bytes.Buffer
	if err := WriteJSON(&sj, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&pj, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Error("JSON output differs between workers=1 and workers=8")
	}
	if err := WriteCSV(&sc, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&pc, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc.Bytes(), pc.Bytes()) {
		t.Error("CSV output differs between workers=1 and workers=8")
	}
	stream, err := RunStream(context.Background(), grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summaryJSON(t, stream), summaryJSON(t, Aggregate(serial)); !bytes.Equal(got, want) {
		t.Error("streaming summary diverges from materialized aggregation on a serving grid")
	}

	// The serving rows carry the latency surface and drain their offer.
	serving := 0
	for i := range serial.Results {
		r := &serial.Results[i]
		if r.Error != "" {
			t.Errorf("%s: %s", r.Scenario.ID(), r.Error)
			continue
		}
		if r.Scenario.Traffic == "" {
			if r.Served != 0 || r.P99 != 0 {
				t.Errorf("%s: training row carries serving fields", r.Scenario.ID())
			}
			continue
		}
		serving++
		wantN := 400
		if strings.HasPrefix(r.Scenario.Traffic, "closed") {
			wantN = 300
		}
		if r.Served != wantN {
			t.Errorf("%s: served %d of %d", r.Scenario.ID(), r.Served, wantN)
		}
		if !(r.P50 > 0 && r.P50 <= r.P95 && r.P95 <= r.P99) {
			t.Errorf("%s: percentiles p50=%g p95=%g p99=%g", r.Scenario.ID(), r.P50, r.P95, r.P99)
		}
		if r.Throughput <= 0 || r.MeanBatchFill < 1 {
			t.Errorf("%s: throughput=%g fill=%g", r.Scenario.ID(), r.Throughput, r.MeanBatchFill)
		}
		if len(r.Plans) != r.Workers || r.Workers == 0 {
			t.Errorf("%s: plans=%d workers=%d", r.Scenario.ID(), len(r.Plans), r.Workers)
		}
		if r.Scenario.Faults != "" {
			if r.FaultInjections < 1 {
				t.Errorf("%s: no fault injections", r.Scenario.ID())
			}
			// A straggler can only delay replies, so the fault-free serving
			// twin's requests/sec bounds the faulted row's from above.
			if r.DegradationPct < 0 {
				t.Errorf("%s: degradation %g%% < 0", r.Scenario.ID(), r.DegradationPct)
			}
		}
	}
	if serving != 8 {
		t.Errorf("serving rows = %d, want 8", serving)
	}
}
