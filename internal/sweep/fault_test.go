package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"
)

// faultGrid is a small grid with a fault axis: the fault-free baseline and a
// 3x straggler on VW 0, on the mini cluster so it stays fast.
func faultGrid() Grid {
	return Grid{
		Models:   []string{"resnet152"},
		Clusters: []string{"mini"},
		Policies: []string{"ED"},
		Faults:   []string{"", "slow:w0:x3"},
		DValues:  []int{0},
		NmValues: []int{2},
	}
}

func TestGridFaultAxisExpansion(t *testing.T) {
	g := faultGrid()
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2", len(scs))
	}
	if scs[0].Faults != "" || scs[1].Faults != "slow:w0:x3" {
		t.Fatalf("fault axis order wrong: %q then %q", scs[0].Faults, scs[1].Faults)
	}
	if scs[0].ID() == scs[1].ID() {
		t.Fatal("faulted and baseline scenarios share an ID")
	}
	if !strings.Contains(scs[1].ID(), "/f:slow:w0:x3") {
		t.Errorf("faulted ID lacks the fault segment: %q", scs[1].ID())
	}

	// Horovod collapses the fault axis.
	g.SyncModes = []string{SyncHorovod}
	scs, err = g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("horovod expanded %d scenarios, want 1", len(scs))
	}

	// A bad spec fails the whole grid up front.
	bad := faultGrid()
	bad.Faults = []string{"boom:w0"}
	if _, err := bad.Expand(); err == nil {
		t.Error("Expand accepted a bad fault spec")
	}
}

func TestSweepFaultDegradation(t *testing.T) {
	set, err := Run(context.Background(), faultGrid(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := set.Failures(); n != 0 {
		t.Fatalf("%d scenarios failed", n)
	}
	base, faulted := &set.Results[0], &set.Results[1]
	if base.DegradationPct != 0 {
		t.Errorf("baseline degradation %g, want 0", base.DegradationPct)
	}
	if faulted.Throughput >= base.Throughput {
		t.Errorf("straggler throughput %g not below baseline %g", faulted.Throughput, base.Throughput)
	}
	want := (base.Throughput - faulted.Throughput) / base.Throughput * 100
	if faulted.DegradationPct != want {
		t.Errorf("degradation %g, want %g", faulted.DegradationPct, want)
	}
	if faulted.FaultInjections == 0 {
		t.Error("faulted scenario recorded no injections")
	}

	// The CSV carries the fault columns.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("CSV lacks column %q", name)
		return -1
	}
	fc, dc := col("faults"), col("degradation_pct")
	if rows[2][fc] != "slow:w0:x3" {
		t.Errorf("faults cell %q", rows[2][fc])
	}
	if rows[1][dc] != "0" {
		t.Errorf("baseline degradation cell %q, want 0", rows[1][dc])
	}
	if rows[2][dc] == "0" || rows[2][dc] == "" {
		t.Errorf("faulted degradation cell %q, want non-zero", rows[2][dc])
	}
}

func TestSweepFaultAxisDeterministic(t *testing.T) {
	g := faultGrid()
	a, err := Run(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := WriteJSON(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("fault-axis sweep output depends on the worker count")
	}
}
