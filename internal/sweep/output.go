package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hetpipe/internal/metrics"
	"hetpipe/internal/partition"
)

// chunkSpec renders a stage's chunk set as "lo-hi" ranges joined with "+",
// e.g. "0-5+12-17"; empty for contiguous single-chunk stages, whose Lo/Hi
// already carry the range.
func chunkSpec(st *partition.Stage) string {
	if len(st.Chunks) <= 1 {
		return ""
	}
	parts := make([]string, len(st.Chunks))
	for i := range st.Chunks {
		parts[i] = fmt.Sprintf("%d-%d", st.Chunks[i].Lo, st.Chunks[i].Hi)
	}
	return strings.Join(parts, "+")
}

// WriteJSON serializes the full sweep — grid, scenarios, structured results,
// partition plans — as indented JSON. The encoding is deterministic: the
// same grid always produces the same bytes, regardless of worker count.
func WriteJSON(w io.Writer, set *Set) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(set)
}

// csvHeader lists the flat per-scenario columns of WriteCSV. The faults and
// degradation_pct columns make the fault axis plottable directly: filter on
// faults, plot degradation_pct against the fault rate or factor. The traffic
// and latency columns do the same for the serving axis: filter on traffic,
// plot p50_sec/p95_sec/p99_sec against throughput (requests/sec for serving
// rows) for the latency-vs-offered-load curve.
var csvHeader = []string{
	"index", "id", "model", "cluster", "sync", "schedule", "interleave", "policy", "placement",
	"faults", "traffic", "d", "nm_requested", "batch", "error",
	"throughput", "degradation_pct", "fault_injections",
	"served", "p50_sec", "p95_sec", "p99_sec", "mean_batch_fill",
	"workers", "nm", "slocal", "sglobal",
	"waiting", "idle", "pushes", "max_clock_distance",
	"vw_types", "per_vw_throughput", "stage_layers",
}

// WriteCSV serializes one flat row per scenario (see csvHeader for the
// columns). List-valued fields are joined with ';' inside the cell; floats
// use the shortest round-trip decimal form, so the encoding is deterministic.
func WriteCSV(w io.Writer, set *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range set.Results {
		r := &set.Results[i]
		sc := &r.Scenario
		var perVW []string
		for _, v := range r.PerVW {
			perVW = append(perVW, ftoa(v))
		}
		var vwTypes, stages []string
		for _, p := range r.Plans {
			vwTypes = append(vwTypes, p.GPUs)
			var parts []string
			for _, st := range p.Stages {
				if st.Chunks != "" {
					parts = append(parts, st.Chunks)
					continue
				}
				parts = append(parts, fmt.Sprintf("%d-%d", st.Lo, st.Hi))
			}
			stages = append(stages, strings.Join(parts, "|"))
		}
		interleave := sc.Interleave
		if interleave < 1 {
			interleave = 1
		}
		row := []string{
			strconv.Itoa(sc.Index), sc.ID(), sc.Model, sc.Cluster,
			sc.SyncMode, sc.Schedule, strconv.Itoa(interleave), sc.Policy, sc.Placement,
			sc.Faults, sc.Traffic,
			strconv.Itoa(sc.D), strconv.Itoa(sc.Nm), strconv.Itoa(sc.Batch),
			r.Error,
			ftoa(r.Throughput), ftoa(r.DegradationPct), strconv.Itoa(r.FaultInjections),
			strconv.Itoa(r.Served),
			ftoa(r.P50), ftoa(r.P95), ftoa(r.P99), ftoa(r.MeanBatchFill),
			strconv.Itoa(r.Workers), strconv.Itoa(r.Nm),
			strconv.Itoa(r.SLocal), strconv.Itoa(r.SGlobal),
			ftoa(r.Waiting), ftoa(r.Idle),
			strconv.Itoa(r.Pushes), strconv.Itoa(r.MaxClockDistance),
			strings.Join(vwTypes, ";"),
			strings.Join(perVW, ";"),
			strings.Join(stages, ";"),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SummaryRow ranks the best configuration found for one model/cluster pair.
type SummaryRow struct {
	// Model and Cluster identify the pair.
	Model, Cluster string
	// Best is the winning scenario's result.
	Best *Result
	// Candidates counts the scenarios tried for the pair; Failed counts
	// those that ended in an error.
	Candidates, Failed int
	// PerVW summarizes the winning configuration's per-virtual-worker
	// throughput (zero Summary for Horovod winners).
	PerVW metrics.Summary
}

// Summarize ranks each model/cluster pair's best configuration by aggregate
// throughput, best pair first. Pairs whose every scenario failed appear at
// the end with a nil Best.
func Summarize(set *Set) []SummaryRow {
	type key struct{ model, cluster string }
	byPair := map[key]*SummaryRow{}
	var order []key
	for i := range set.Results {
		r := &set.Results[i]
		k := key{r.Scenario.Model, r.Scenario.Cluster}
		row, ok := byPair[k]
		if !ok {
			row = &SummaryRow{Model: k.model, Cluster: k.cluster}
			byPair[k] = row
			order = append(order, k)
		}
		row.Candidates++
		if r.Error != "" {
			row.Failed++
			continue
		}
		if row.Best == nil || r.Throughput > row.Best.Throughput {
			row.Best = r
		}
	}
	var rows []SummaryRow
	for _, k := range order {
		row := byPair[k]
		if row.Best != nil {
			row.PerVW = metrics.Summarize(row.Best.PerVW)
		}
		rows = append(rows, *row)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ti, tj := -1.0, -1.0
		if rows[i].Best != nil {
			ti = rows[i].Best.Throughput
		}
		if rows[j].Best != nil {
			tj = rows[j].Best.Throughput
		}
		return ti > tj
	})
	return rows
}

// WriteSummary renders the Summarize ranking as a text table: the winning
// configuration per model/cluster pair, its throughput, staleness bounds,
// and the per-virtual-worker throughput spread.
func WriteSummary(w io.Writer, set *Set) error {
	rows := Summarize(set)
	// The config column fits the longest WSP scenario ID: model + cluster +
	// sync + schedule + policy + placement + D + Nm segments.
	if _, err := fmt.Fprintf(w, "%-11s %-9s %-62s %12s %8s %8s  %s\n",
		"MODEL", "CLUSTER", "BEST CONFIG", "SAMPLES/S", "SGLOBAL", "OK/ALL", "PER-VW THROUGHPUT"); err != nil {
		return err
	}
	for _, row := range rows {
		ok := row.Candidates - row.Failed
		if row.Best == nil {
			if _, err := fmt.Fprintf(w, "%-11s %-9s %-62s %12s %8s %5d/%-3d\n",
				row.Model, row.Cluster, "(all scenarios failed)", "-", "-", ok, row.Candidates); err != nil {
				return err
			}
			continue
		}
		sc := &row.Best.Scenario
		sglobal := "-"
		perVW := "single straggler-paced BSP group"
		if sc.SyncMode != SyncHorovod {
			sglobal = strconv.Itoa(row.Best.SGlobal)
			perVW = fmt.Sprintf("%v spread=%.3g", row.PerVW, row.PerVW.Spread())
		}
		if _, err := fmt.Fprintf(w, "%-11s %-9s %-62s %12.0f %8s %5d/%-3d  %s\n",
			row.Model, row.Cluster, sc.ID(), row.Best.Throughput, sglobal,
			ok, row.Candidates, perVW); err != nil {
			return err
		}
	}
	return nil
}
