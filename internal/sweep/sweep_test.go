package sweep

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// testGrid is small enough to simulate in well under a second but still
// crosses every axis: 2 clusters x 3 policies x 2 D x fixed Nm, plus the
// Horovod baseline per model/cluster.
func testGrid() Grid {
	return Grid{
		Models:    []string{"vgg19"},
		Clusters:  []string{"paper", "mini"},
		Policies:  []string{"NP", "ED", "HD"},
		SyncModes: []string{SyncWSP, SyncHorovod},
		DValues:   []int{0, 1},
		NmValues:  []int{2},
	}
}

func TestExpandCountsAndOrder(t *testing.T) {
	scenarios, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Per cluster: 1 Horovod + 3 policies x 2 D x 1 Nm = 7; two clusters.
	if len(scenarios) != 14 {
		t.Fatalf("scenarios = %d, want 14", len(scenarios))
	}
	for i, sc := range scenarios {
		if sc.Index != i {
			t.Errorf("scenario %d has index %d", i, sc.Index)
		}
		if sc.Batch != 32 {
			t.Errorf("%s: batch = %d, want default 32", sc.ID(), sc.Batch)
		}
	}
	// Horovod collapses the policy/placement/D/Nm axes.
	horovod := 0
	for _, sc := range scenarios {
		if sc.SyncMode == SyncHorovod {
			horovod++
			if sc.Policy != "" || sc.Placement != "" || sc.D != 0 || sc.Nm != 0 {
				t.Errorf("horovod scenario %s carries WSP axes", sc.ID())
			}
		}
	}
	if horovod != 2 {
		t.Errorf("horovod scenarios = %d, want 2 (one per model/cluster)", horovod)
	}
}

func TestExpandDeduplicatesAxes(t *testing.T) {
	g := testGrid()
	g.Models = []string{"vgg19", "vgg19"}
	g.DValues = []int{0, 1, 0}
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 14 {
		t.Fatalf("scenarios = %d, want 14 (duplicates not collapsed)", len(scenarios))
	}
	ids := map[string]bool{}
	for _, sc := range scenarios {
		if ids[sc.ID()] {
			t.Errorf("duplicate scenario ID %s", sc.ID())
		}
		ids[sc.ID()] = true
	}
}

// TestShortSimulationStaysFeasible guards the warmup sizing: a user-supplied
// minibatch budget smaller than the usual four-wave warmup must still
// simulate rather than fail inside the pipeline.
func TestShortSimulationStaysFeasible(t *testing.T) {
	set, err := Run(context.Background(), Grid{
		Models: []string{"vgg19"}, Clusters: []string{"paper"},
		Policies: []string{"ED"}, NmValues: []int{2}, DValues: []int{1},
		MinibatchesPerVW: 8,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set.Results {
		if r.Error != "" {
			t.Errorf("%s: %s", r.Scenario.ID(), r.Error)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: no throughput measured", r.Scenario.ID())
		}
	}
}

func TestExpandRejectsInvalidAxes(t *testing.T) {
	base := testGrid()
	cases := []struct {
		name   string
		mutate func(*Grid)
	}{
		{"no models", func(g *Grid) { g.Models = nil }},
		{"unknown model", func(g *Grid) { g.Models = []string{"lenet"} }},
		{"no clusters", func(g *Grid) { g.Clusters = nil }},
		{"unknown cluster", func(g *Grid) { g.Clusters = []string{"dgx"} }},
		{"unknown policy", func(g *Grid) { g.Policies = []string{"XX"} }},
		{"no policies for wsp", func(g *Grid) { g.Policies = nil }},
		{"unknown sync mode", func(g *Grid) { g.SyncModes = []string{"ssp"} }},
		{"unknown placement", func(g *Grid) { g.Placements = []string{"remote"} }},
		{"negative D", func(g *Grid) { g.DValues = []int{0, -1} }},
		{"negative Nm", func(g *Grid) { g.NmValues = []int{-2} }},
		{"negative batch", func(g *Grid) { g.Batch = -1 }},
		{"negative minibatches", func(g *Grid) { g.MinibatchesPerVW = -1 }},
	}
	for _, c := range cases {
		g := base
		c.mutate(&g)
		if _, err := g.Expand(); err == nil {
			t.Errorf("%s: Expand accepted an invalid grid", c.name)
		}
	}
	// A Horovod-only grid is valid without policies.
	g := base
	g.SyncModes = []string{SyncHorovod}
	g.Policies = nil
	scenarios, err := g.Expand()
	if err != nil {
		t.Errorf("horovod-only grid rejected: %v", err)
	}
	if len(scenarios) != 2 {
		t.Errorf("horovod-only scenarios = %d, want 2", len(scenarios))
	}
}

// TestParallelMatchesSerial is the core determinism guarantee: a grid run on
// eight workers serializes to exactly the bytes of a serial run.
func TestParallelMatchesSerial(t *testing.T) {
	grid := testGrid()
	serial, err := Run(context.Background(), grid, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), grid, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sj, pj, sc, pc bytes.Buffer
	if err := WriteJSON(&sj, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&pj, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Error("JSON output differs between workers=1 and workers=8")
	}
	if err := WriteCSV(&sc, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&pc, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc.Bytes(), pc.Bytes()) {
		t.Error("CSV output differs between workers=1 and workers=8")
	}
	if serial.Failures() != 0 {
		for _, r := range serial.Results {
			if r.Error != "" {
				t.Errorf("%s failed: %s", r.Scenario.ID(), r.Error)
			}
		}
	}
}

func TestResultsCarryStructure(t *testing.T) {
	set, err := Run(context.Background(), testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Results {
		r := &set.Results[i]
		if r.Error != "" {
			t.Errorf("%s: %s", r.Scenario.ID(), r.Error)
			continue
		}
		if r.Throughput <= 0 {
			t.Errorf("%s: throughput %g", r.Scenario.ID(), r.Throughput)
		}
		if r.Scenario.SyncMode != SyncWSP {
			continue
		}
		if len(r.PerVW) != r.Workers || len(r.Plans) != r.Workers {
			t.Errorf("%s: perVW=%d plans=%d workers=%d", r.Scenario.ID(), len(r.PerVW), len(r.Plans), r.Workers)
		}
		if r.Nm != 2 || r.SLocal != 1 {
			t.Errorf("%s: nm=%d slocal=%d, want 2/1", r.Scenario.ID(), r.Nm, r.SLocal)
		}
		if want := (r.Scenario.D+1)*r.Nm + r.Nm - 2; r.SGlobal != want {
			t.Errorf("%s: sglobal=%d, want %d", r.Scenario.ID(), r.SGlobal, want)
		}
		for _, p := range r.Plans {
			if len(p.Stages) == 0 {
				t.Errorf("%s: empty partition plan", r.Scenario.ID())
			}
		}
	}
}

func TestOnResultObservesEveryScenario(t *testing.T) {
	seen := map[int]bool{}
	set, err := Run(context.Background(), testGrid(), Options{Workers: 4, OnResult: func(r Result) {
		if seen[r.Scenario.Index] {
			t.Errorf("scenario %d observed twice", r.Scenario.Index)
		}
		seen[r.Scenario.Index] = true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(set.Results) {
		t.Errorf("observed %d scenarios, want %d", len(seen), len(set.Results))
	}
}

func TestSummarizeRanksPairs(t *testing.T) {
	set, err := Run(context.Background(), testGrid(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := Summarize(set)
	if len(rows) != 2 {
		t.Fatalf("summary rows = %d, want 2 (vgg19 x {paper, mini})", len(rows))
	}
	for i, row := range rows {
		if row.Best == nil {
			t.Fatalf("row %d has no winner", i)
		}
		if row.Candidates != 7 {
			t.Errorf("row %d candidates = %d, want 7", i, row.Candidates)
		}
		if i > 0 && rows[i-1].Best.Throughput < row.Best.Throughput {
			t.Errorf("summary not ranked: row %d (%g) beats row %d (%g)",
				i, row.Best.Throughput, i-1, rows[i-1].Best.Throughput)
		}
		// The winner is the global maximum over the pair's scenarios,
		// Horovod baseline included.
		for _, r := range set.Results {
			if r.Scenario.Model == row.Model && r.Scenario.Cluster == row.Cluster &&
				r.Scenario.SyncMode == SyncHorovod && r.Throughput > row.Best.Throughput {
				t.Errorf("%s/%s: winner %s (%g) loses to %s (%g)", row.Model, row.Cluster,
					row.Best.Scenario.ID(), row.Best.Throughput, r.Scenario.ID(), r.Throughput)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, set); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BEST CONFIG") {
		t.Error("summary table missing header")
	}
}

func TestCSVShape(t *testing.T) {
	set, err := Run(context.Background(), Grid{
		Models: []string{"vgg19"}, Clusters: []string{"paper"},
		Policies: []string{"ED"}, NmValues: []int{2},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(set.Results) {
		t.Fatalf("CSV lines = %d, want %d", len(lines), 1+len(set.Results))
	}
	wantCols := len(strings.Split(lines[0], ","))
	if wantCols != len(csvHeader) {
		t.Fatalf("CSV header has %d columns, want %d", wantCols, len(csvHeader))
	}
}

func TestDeploymentReusePerFamily(t *testing.T) {
	// testGrid has 2 clusters x 3 policies = 6 WSP families, each swept at
	// 2 D values (12 WSP scenarios): exactly one deployment resolution per
	// family, never one per scenario.
	g := testGrid()
	scenarios, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	set, res, err := run(context.Background(), g, scenarios, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.resolutions.Load(); got != 6 {
		t.Errorf("deployment resolutions = %d, want 6 (one per family)", got)
	}
	// The reused deployment is re-bound per scenario: staleness bounds
	// still reflect each scenario's own D.
	for i := range set.Results {
		r := &set.Results[i]
		if r.Scenario.SyncMode != SyncWSP || r.Error != "" {
			continue
		}
		if want := (r.Scenario.D+1)*r.Nm + r.Nm - 2; r.SGlobal != want {
			t.Errorf("%s: sglobal = %d, want %d", r.Scenario.ID(), r.SGlobal, want)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testGrid(), Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("Run(cancelled) = %v, want context.Canceled", err)
	}
}
