// Package partition implements the Section 7 partitioning algorithm: divide
// a model's layers into k contiguous partitions, one per (possibly
// heterogeneous) GPU of a virtual worker, minimizing the maximum partition
// execution time subject to each partition fitting its GPU's memory while
// processing Nm concurrent minibatches.
//
// The paper feeds this problem to CPLEX; layer counts here are small enough
// (tens of layers, k <= 8) that an exact dynamic program over prefixes finds
// the optimum directly. A partition's execution time follows the paper's
// definition: the sum of its layers' computation time plus the time to
// receive activations (forward) and local gradients (backward) across its
// boundaries.
package partition

import (
	"fmt"
	"math"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// Stage is one pipeline stage of a plan: a contiguous layer range bound to
// one GPU.
type Stage struct {
	// GPU hosts the stage.
	GPU *hw.GPU
	// Lo and Hi bound the layer range [Lo, Hi).
	Lo, Hi int
	// FwdTime and BwdTime are per-minibatch compute times.
	FwdTime, BwdTime float64
	// RecvActTime is the time to receive input activations from the
	// previous stage (zero for the first stage).
	RecvActTime float64
	// RecvGradTime is the time to receive gradients from the next stage
	// (zero for the last stage).
	RecvGradTime float64
	// MemoryBytes is the predicted device memory requirement.
	MemoryBytes int64
	// MemoryCap is the hosting GPU's capacity.
	MemoryCap int64
}

// ExecTime is the paper's partition execution time: computation plus the
// communication needed to receive activations and gradients.
func (s *Stage) ExecTime() float64 {
	return s.FwdTime + s.BwdTime + s.RecvActTime + s.RecvGradTime
}

// Layers reports the number of layers assigned to the stage.
func (s *Stage) Layers() int { return s.Hi - s.Lo }

// Plan is a complete partitioning of a model onto a virtual worker.
type Plan struct {
	Model *model.Model
	Batch int
	// Nm is the number of concurrent minibatches the plan supports.
	Nm     int
	Stages []Stage
	// Schedule names the pipeline schedule the plan was sized for (its
	// in-flight-activation model decided the memory feasibility), e.g.
	// "hetpipe-fifo" or "1f1b".
	Schedule string
	// Bottleneck is the maximum stage execution time; the pipeline's
	// steady-state period can never beat it.
	Bottleneck float64
}

// ThroughputUpperBound is the steady-state throughput limit implied by the
// bottleneck stage, in samples/second.
func (p *Plan) ThroughputUpperBound() float64 {
	if p.Bottleneck <= 0 {
		return 0
	}
	return float64(p.Batch) / p.Bottleneck
}

// Validate checks structural invariants: stages cover every layer exactly
// once, in order, and respect their memory caps.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("partition: empty plan")
	}
	next := 0
	for i := range p.Stages {
		s := &p.Stages[i]
		if s.Lo != next {
			return fmt.Errorf("partition: stage %d starts at %d, want %d", i, s.Lo, next)
		}
		if s.Hi <= s.Lo {
			return fmt.Errorf("partition: stage %d empty", i)
		}
		if s.MemoryBytes > s.MemoryCap {
			return fmt.Errorf("partition: stage %d needs %d bytes, cap %d", i, s.MemoryBytes, s.MemoryCap)
		}
		next = s.Hi
	}
	if next != len(p.Model.Layers) {
		return fmt.Errorf("partition: stages cover %d layers, model has %d", next, len(p.Model.Layers))
	}
	return nil
}

// Partitioner computes plans using a performance model.
type Partitioner struct {
	Perf *profile.Perf
	// Sched is the pipeline schedule the plans are sized for; nil means
	// sched.Default() (hetpipe-fifo). The schedule's in-flight-activation
	// model decides memory feasibility — 1F1B's smaller footprint admits
	// splits (and Nm values, see MaxNm) that FIFO cannot.
	Sched sched.Schedule
}

// New returns a partitioner over the given performance model, sized for the
// default hetpipe-fifo schedule.
func New(perf *profile.Perf) *Partitioner {
	return &Partitioner{Perf: perf}
}

// NewSched returns a partitioner whose memory model follows the given
// pipeline schedule.
func NewSched(perf *profile.Perf, s sched.Schedule) *Partitioner {
	return &Partitioner{Perf: perf, Sched: s}
}

// schedule resolves the partitioner's schedule, defaulting to hetpipe-fifo.
func (pt *Partitioner) schedule() sched.Schedule { return sched.Or(pt.Sched) }

// Partition computes the optimal plan for running m on the virtual worker's
// GPUs (in stage order) with Nm concurrent minibatches. The cluster provides
// interconnect classification between adjacent stages. It returns an error
// when no memory-feasible split exists.
func (pt *Partitioner) Partition(c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, nm, batch int) (*Plan, error) {
	k := len(vw.GPUs)
	L := len(m.Layers)
	switch {
	case k == 0:
		return nil, fmt.Errorf("partition: virtual worker has no GPUs")
	case nm < 1:
		return nil, fmt.Errorf("partition: Nm must be >= 1, got %d", nm)
	case batch < 1:
		return nil, fmt.Errorf("partition: batch must be >= 1, got %d", batch)
	case L < k:
		return nil, fmt.Errorf("partition: model %s has %d layers, fewer than %d stages", m.Name, L, k)
	}

	// links[s] classifies the interconnect between stages s-1 and s.
	links := make([]hw.LinkKind, k)
	for s := 1; s < k; s++ {
		links[s] = c.LinkBetween(vw.GPUs[s-1], vw.GPUs[s])
	}

	// cost returns the execution time of layers [lo,hi) as stage s, or +Inf
	// when it violates stage s's memory cap. The memory term follows the
	// partitioner's schedule; the time term keeps the paper's Section 7
	// definition (compute plus serialized receives) for every schedule, so
	// plans stay comparable across schedules and overlap's gains show up in
	// the executor rather than being double-counted here.
	cost := func(lo, hi, s int) float64 {
		mem := pt.Perf.StageMemorySched(pt.schedule(), m, lo, hi, s, k, nm, batch)
		if mem > vw.GPUs[s].Type.MemoryBytes {
			return math.Inf(1)
		}
		fwd, bwd, err := pt.Perf.StageTime(m, lo, hi, vw.GPUs[s].Type, batch)
		if err != nil {
			return math.Inf(1)
		}
		t := fwd + bwd
		if s > 0 {
			t += pt.Perf.BoundaryTime(m, lo-1, batch, links[s])
		}
		if s < k-1 {
			t += pt.Perf.BoundaryTime(m, hi-1, batch, links[s+1])
		}
		return t
	}

	// Dynamic program over prefixes: best[i][s] = minimal bottleneck for
	// placing the first i layers onto stages 0..s (stage s ends at i).
	const unset = -1
	best := make([][]float64, L+1)
	choice := make([][]int, L+1)
	for i := range best {
		best[i] = make([]float64, k)
		choice[i] = make([]int, k)
		for s := range best[i] {
			best[i][s] = math.Inf(1)
			choice[i][s] = unset
		}
	}
	for i := 1; i <= L-(k-1); i++ {
		best[i][0] = cost(0, i, 0)
		choice[i][0] = 0
	}
	for s := 1; s < k; s++ {
		// Stage s must leave at least one layer for each later stage and
		// each earlier stage must have had one.
		for i := s + 1; i <= L-(k-1-s); i++ {
			for j := s; j < i; j++ {
				if math.IsInf(best[j][s-1], 1) {
					continue
				}
				b := math.Max(best[j][s-1], cost(j, i, s))
				if b < best[i][s] {
					best[i][s] = b
					choice[i][s] = j
				}
			}
		}
	}
	if math.IsInf(best[L][k-1], 1) {
		return nil, fmt.Errorf("partition: no memory-feasible %d-way split of %s for Nm=%d batch=%d on %s",
			k, m.Name, nm, batch, vw.TypeString())
	}

	// Reconstruct the cut points.
	cuts := make([]int, k+1)
	cuts[k] = L
	for s := k - 1; s > 0; s-- {
		cuts[s] = choice[cuts[s+1]][s]
	}

	plan := &Plan{Model: m, Batch: batch, Nm: nm, Schedule: pt.schedule().Name()}
	for s := 0; s < k; s++ {
		lo, hi := cuts[s], cuts[s+1]
		fwd, bwd, err := pt.Perf.StageTime(m, lo, hi, vw.GPUs[s].Type, batch)
		if err != nil {
			return nil, err
		}
		st := Stage{
			GPU: vw.GPUs[s], Lo: lo, Hi: hi,
			FwdTime: fwd, BwdTime: bwd,
			MemoryBytes: pt.Perf.StageMemorySched(pt.schedule(), m, lo, hi, s, k, nm, batch),
			MemoryCap:   vw.GPUs[s].Type.MemoryBytes,
		}
		if s > 0 {
			st.RecvActTime = pt.Perf.BoundaryTime(m, lo-1, batch, links[s])
		}
		if s < k-1 {
			st.RecvGradTime = pt.Perf.BoundaryTime(m, hi-1, batch, links[s+1])
		}
		plan.Stages = append(plan.Stages, st)
		if t := st.ExecTime(); t > plan.Bottleneck {
			plan.Bottleneck = t
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("partition: internal error: %v", err)
	}
	return plan, nil
}

// MaxNm finds the largest Nm in [1, cap] for which a memory-feasible plan
// exists — the paper's Maxm for the virtual worker — under the
// partitioner's schedule. A 1F1B partitioner admits a larger Maxm than a
// FIFO one on memory-constrained workers because its per-stage stash stops
// growing once Nm exceeds the stage depth. It returns 0 when even Nm=1 does
// not fit.
func (pt *Partitioner) MaxNm(c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, batch, cap int) int {
	lo, hi := 1, cap
	if _, err := pt.Partition(c, m, vw, 1, batch); err != nil {
		return 0
	}
	// Feasibility is monotone in Nm (memory grows with Nm), so binary search.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, err := pt.Partition(c, m, vw, mid, batch); err == nil {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
