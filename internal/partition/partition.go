// Package partition implements the Section 7 partitioning algorithm: divide
// a model's layers into k contiguous partitions, one per (possibly
// heterogeneous) GPU of a virtual worker, minimizing the maximum partition
// execution time subject to each partition fitting its GPU's memory while
// processing Nm concurrent minibatches.
//
// The paper feeds this problem to CPLEX; layer counts here are small enough
// (tens of layers, k <= 8) that an exact dynamic program over prefixes finds
// the optimum directly. A partition's execution time follows the paper's
// definition: the sum of its layers' computation time plus the time to
// receive activations (forward) and local gradients (backward) across its
// boundaries.
//
// A stage is a set of chunks, not a single contiguous range: under the
// Megatron-LM interleaved schedule each worker hosts V non-contiguous
// chunks (worker g gets chunks g, g+k, ..., g+(V-1)k of the k*V virtual
// stages), and the same DP runs over the k*V virtual pipeline with the
// GPU assignment wrapping round-robin. Contiguous plans are the degenerate
// V=1 case and take the identical code path.
package partition

import (
	"fmt"
	"math"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// Chunk is one contiguous layer range [Lo, Hi) of a stage's chunk set,
// running as one virtual stage of the pipeline.
type Chunk struct {
	// Lo and Hi bound the layer range [Lo, Hi).
	Lo, Hi int
	// FwdTime and BwdTime are per-minibatch compute times for this chunk.
	FwdTime, BwdTime float64
	// RecvActTime is the time to receive input activations from the previous
	// virtual stage (zero for the first).
	RecvActTime float64
	// RecvGradTime is the time to receive gradients from the next virtual
	// stage (zero for the last).
	RecvGradTime float64
}

// Layers reports the number of layers in the chunk.
func (c *Chunk) Layers() int { return c.Hi - c.Lo }

// ExecTime is the chunk's execution time: computation plus the serialized
// receives across its boundaries.
func (c *Chunk) ExecTime() float64 {
	return c.FwdTime + c.BwdTime + c.RecvActTime + c.RecvGradTime
}

// Stage is one pipeline stage of a plan: a set of model chunks bound to one
// GPU. Contiguous plans carry exactly one chunk per stage; interleaved plans
// carry V, with chunk c running as virtual stage (stage index) + c*k.
type Stage struct {
	// GPU hosts the stage.
	GPU *hw.GPU
	// Chunks is the stage's chunk set in virtual-stage order (model order).
	Chunks []Chunk
	// FwdTime and BwdTime are per-minibatch compute times summed over the
	// chunk set.
	FwdTime, BwdTime float64
	// RecvActTime is the total time to receive input activations across the
	// chunk set's leading boundaries.
	RecvActTime float64
	// RecvGradTime is the total time to receive gradients across the chunk
	// set's trailing boundaries.
	RecvGradTime float64
	// MemoryBytes is the predicted device memory requirement (weights and
	// stashes per chunk, workspace once).
	MemoryBytes int64
	// MemoryCap is the hosting GPU's capacity.
	MemoryCap int64
}

// ExecTime is the paper's partition execution time: computation plus the
// communication needed to receive activations and gradients, summed over the
// stage's chunk set.
func (s *Stage) ExecTime() float64 {
	return s.FwdTime + s.BwdTime + s.RecvActTime + s.RecvGradTime
}

// Layers reports the number of layers assigned to the stage across all its
// chunks.
func (s *Stage) Layers() int {
	n := 0
	for i := range s.Chunks {
		n += s.Chunks[i].Layers()
	}
	return n
}

// Lo is the first layer of the stage's first chunk. Together with Hi it
// bounds the contiguous range [Lo, Hi) for single-chunk stages; for
// interleaved stages the pair is only the envelope of the chunk set.
func (s *Stage) Lo() int { return s.Chunks[0].Lo }

// Hi is the last chunk's upper bound; see Lo.
func (s *Stage) Hi() int { return s.Chunks[len(s.Chunks)-1].Hi }

// Contiguous reports whether the stage is a single contiguous range.
func (s *Stage) Contiguous() bool { return len(s.Chunks) == 1 }

// Plan is a complete partitioning of a model onto a virtual worker.
type Plan struct {
	Model *model.Model
	Batch int
	// Nm is the number of concurrent minibatches the plan supports.
	Nm     int
	Stages []Stage
	// Schedule names the pipeline schedule the plan was sized for (its
	// in-flight-activation model decided the memory feasibility), e.g.
	// "hetpipe-fifo" or "1f1b".
	Schedule string
	// Interleave is the interleave degree V the plan was cut for: every
	// stage holds V chunks and the pipeline runs k*V virtual stages. 0 and 1
	// both mean contiguous single-chunk stages.
	Interleave int
	// Bottleneck is the maximum stage execution time; the pipeline's
	// steady-state period can never beat it.
	Bottleneck float64
}

// InterleaveDegree is the plan's interleave degree V, normalizing the
// zero value to 1 (contiguous).
func (p *Plan) InterleaveDegree() int {
	if p.Interleave < 1 {
		return 1
	}
	return p.Interleave
}

// VirtualStages is the depth of the virtual pipeline: k stages times the
// interleave degree.
func (p *Plan) VirtualStages() int { return len(p.Stages) * p.InterleaveDegree() }

// ChunkAt returns the chunk running as virtual stage vs: chunk vs/k of
// stage vs%k.
func (p *Plan) ChunkAt(vs int) *Chunk {
	k := len(p.Stages)
	return &p.Stages[vs%k].Chunks[vs/k]
}

// ThroughputUpperBound is the steady-state throughput limit implied by the
// bottleneck stage, in samples/second.
func (p *Plan) ThroughputUpperBound() float64 {
	if p.Bottleneck <= 0 {
		return 0
	}
	return float64(p.Batch) / p.Bottleneck
}

// Validate checks structural invariants: every stage holds exactly V chunks,
// the k*V virtual stages cover every layer exactly once in model order, and
// every stage respects its memory cap.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("partition: empty plan")
	}
	k, v := len(p.Stages), p.InterleaveDegree()
	for i := range p.Stages {
		if len(p.Stages[i].Chunks) != v {
			return fmt.Errorf("partition: stage %d holds %d chunks, want %d", i, len(p.Stages[i].Chunks), v)
		}
	}
	next := 0
	for j := 0; j < k*v; j++ {
		ch := p.ChunkAt(j)
		if ch.Lo != next {
			return fmt.Errorf("partition: virtual stage %d starts at %d, want %d", j, ch.Lo, next)
		}
		if ch.Hi <= ch.Lo {
			return fmt.Errorf("partition: virtual stage %d empty", j)
		}
		next = ch.Hi
	}
	if next != len(p.Model.Layers) {
		return fmt.Errorf("partition: stages cover %d layers, model has %d", next, len(p.Model.Layers))
	}
	for i := range p.Stages {
		s := &p.Stages[i]
		if s.MemoryBytes > s.MemoryCap {
			return fmt.Errorf("partition: stage %d needs %d bytes, cap %d", i, s.MemoryBytes, s.MemoryCap)
		}
	}
	return nil
}

// Partitioner computes plans using a performance model.
type Partitioner struct {
	Perf *profile.Perf
	// Sched is the pipeline schedule the plans are sized for; nil means
	// sched.Default() (hetpipe-fifo). The schedule's in-flight-activation
	// model decides memory feasibility — 1F1B's smaller footprint admits
	// splits (and Nm values, see MaxNm) that FIFO cannot.
	Sched sched.Schedule
	// Interleave is the interleave degree V: each stage is cut into V
	// chunks and the DP runs over k*V virtual stages. 0 and 1 both mean
	// contiguous stages; V > 1 requires a schedule with SupportsInterleave.
	Interleave int
}

// New returns a partitioner over the given performance model, sized for the
// default hetpipe-fifo schedule.
func New(perf *profile.Perf) *Partitioner {
	return &Partitioner{Perf: perf}
}

// NewSched returns a partitioner whose memory model follows the given
// pipeline schedule.
func NewSched(perf *profile.Perf, s sched.Schedule) *Partitioner {
	return &Partitioner{Perf: perf, Sched: s}
}

// NewInterleaved returns a partitioner that cuts each stage into v chunks
// under the given schedule (which must support interleaving when v > 1).
func NewInterleaved(perf *profile.Perf, s sched.Schedule, v int) *Partitioner {
	return &Partitioner{Perf: perf, Sched: s, Interleave: v}
}

// schedule resolves the partitioner's schedule, defaulting to hetpipe-fifo.
func (pt *Partitioner) schedule() sched.Schedule { return sched.Or(pt.Sched) }

// interleave resolves the partitioner's interleave degree, defaulting to 1.
func (pt *Partitioner) interleave() int {
	if pt.Interleave < 1 {
		return 1
	}
	return pt.Interleave
}

// Partition computes the optimal plan for running m on the virtual worker's
// GPUs (in stage order) with Nm concurrent minibatches. The cluster provides
// interconnect classification between adjacent virtual stages. It returns an
// error when no memory-feasible split exists.
//
// At interleave degree V the DP runs over K = k*V virtual stages with the
// GPU assignment wrapping round-robin (virtual stage j runs on GPU j%k), so
// worker g ends up with the non-contiguous chunk set g, g+k, ..., g+(V-1)k —
// the Megatron-LM placement. V = 1 is the degenerate contiguous case and
// executes the identical sequence of cost evaluations.
func (pt *Partitioner) Partition(c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, nm, batch int) (*Plan, error) {
	k := len(vw.GPUs)
	L := len(m.Layers)
	V := pt.interleave()
	K := k * V
	switch {
	case k == 0:
		return nil, fmt.Errorf("partition: virtual worker has no GPUs")
	case nm < 1:
		return nil, fmt.Errorf("partition: Nm must be >= 1, got %d", nm)
	case batch < 1:
		return nil, fmt.Errorf("partition: batch must be >= 1, got %d", batch)
	case V > 1 && !pt.schedule().SupportsInterleave():
		return nil, fmt.Errorf("partition: schedule %q does not support interleave degree %d", pt.schedule().Name(), V)
	case L < K:
		return nil, fmt.Errorf("partition: model %s has %d layers, fewer than %d virtual stages (%d stages x interleave %d)",
			m.Name, L, K, k, V)
	}

	// links[j] classifies the interconnect between virtual stages j-1 and j;
	// for j%k == 0 that is the wrap link from the last GPU back to the first.
	gpu := func(j int) *hw.GPU { return vw.GPUs[j%k] }
	links := make([]hw.LinkKind, K)
	for j := 1; j < K; j++ {
		links[j] = c.LinkBetween(gpu(j-1), gpu(j))
	}

	// chunkCap[j] is the memory budget one chunk may use as virtual stage j:
	// the full device capacity at V=1, and an even 1/V split of the
	// post-workspace capacity at V>1 (chunk memory includes the workspace
	// once, so a chunk passes iff its workspace-free footprint fits the
	// slice). The per-chunk budget keeps per-GPU totals sound — V chunks
	// each within their slice sum to at most the device capacity — while
	// staying monotone in Nm, which MaxNm's binary search depends on.
	chunkCap := make([]int64, K)
	for j := 0; j < K; j++ {
		cap := gpu(j).Type.MemoryBytes
		chunkCap[j] = (cap-pt.Perf.WorkspaceBytes)/int64(V) + pt.Perf.WorkspaceBytes
	}

	// cost returns the execution time of layers [lo,hi) as virtual stage j,
	// or +Inf when it violates the stage's memory budget. The memory term
	// follows the partitioner's schedule; the time term keeps the paper's
	// Section 7 definition (compute plus serialized receives) at V = 1, so
	// contiguous plans stay comparable across schedules and overlap's gains
	// show up in the executor rather than being double-counted here.
	//
	// At V > 1 a chunk is throughput-critical on two separate axes: its GPU
	// hosts V chunks (occupancy ~ V * compute), and the minibatch round trip
	// threads every chunk's compute plus its overlapped transfers (the
	// interleaved in-flight window is K, so the per-chunk round-trip share is
	// compute + receives). The cost is the max of the two, which degenerates
	// to exactly the V = 1 expression above — compute-plus-receive alone
	// would steer the DP toward near-empty chunks that exist only to carry a
	// cheap boundary, while compute alone lets the round trip blow up.
	cost := func(lo, hi, j int) float64 {
		mem := pt.Perf.ChunkMemory(pt.schedule(), m, lo, hi, j, K, nm, batch)
		if mem > chunkCap[j] {
			return math.Inf(1)
		}
		fwd, bwd, err := pt.Perf.ChunkTime(m, lo, hi, gpu(j).Type, batch)
		if err != nil {
			return math.Inf(1)
		}
		t := fwd + bwd
		if j > 0 {
			t += pt.Perf.BoundaryTime(m, lo-1, batch, links[j])
		}
		if j < K-1 {
			t += pt.Perf.BoundaryTime(m, hi-1, batch, links[j+1])
		}
		return math.Max(float64(V)*(fwd+bwd), t)
	}

	// Dynamic program over prefixes: best[i][j] = minimal bottleneck for
	// placing the first i layers onto virtual stages 0..j (stage j ends at i).
	const unset = -1
	best := make([][]float64, L+1)
	choice := make([][]int, L+1)
	for i := range best {
		best[i] = make([]float64, K)
		choice[i] = make([]int, K)
		for j := range best[i] {
			best[i][j] = math.Inf(1)
			choice[i][j] = unset
		}
	}
	for i := 1; i <= L-(K-1); i++ {
		best[i][0] = cost(0, i, 0)
		choice[i][0] = 0
	}
	for j := 1; j < K; j++ {
		// Virtual stage j must leave at least one layer for each later stage
		// and each earlier stage must have had one.
		for i := j + 1; i <= L-(K-1-j); i++ {
			for cut := j; cut < i; cut++ {
				if math.IsInf(best[cut][j-1], 1) {
					continue
				}
				b := math.Max(best[cut][j-1], cost(cut, i, j))
				if b < best[i][j] {
					best[i][j] = b
					choice[i][j] = cut
				}
			}
		}
	}
	if math.IsInf(best[L][K-1], 1) {
		return nil, fmt.Errorf("partition: no memory-feasible %d-way split of %s for Nm=%d batch=%d on %s",
			K, m.Name, nm, batch, vw.TypeString())
	}

	// Reconstruct the cut points.
	cuts := make([]int, K+1)
	cuts[K] = L
	for j := K - 1; j > 0; j-- {
		cuts[j] = choice[cuts[j+1]][j]
	}

	plan := &Plan{Model: m, Batch: batch, Nm: nm, Schedule: pt.schedule().Name(), Interleave: V}
	plan.Stages = make([]Stage, k)
	for s := 0; s < k; s++ {
		plan.Stages[s].GPU = vw.GPUs[s]
		plan.Stages[s].MemoryCap = vw.GPUs[s].Type.MemoryBytes
		plan.Stages[s].Chunks = make([]Chunk, 0, V)
	}
	chunkRanges := make([][][2]int, k)
	for j := 0; j < K; j++ {
		lo, hi := cuts[j], cuts[j+1]
		fwd, bwd, err := pt.Perf.ChunkTime(m, lo, hi, gpu(j).Type, batch)
		if err != nil {
			return nil, err
		}
		ch := Chunk{Lo: lo, Hi: hi, FwdTime: fwd, BwdTime: bwd}
		if j > 0 {
			ch.RecvActTime = pt.Perf.BoundaryTime(m, lo-1, batch, links[j])
		}
		if j < K-1 {
			ch.RecvGradTime = pt.Perf.BoundaryTime(m, hi-1, batch, links[j+1])
		}
		st := &plan.Stages[j%k]
		st.Chunks = append(st.Chunks, ch)
		st.FwdTime += fwd
		st.BwdTime += bwd
		st.RecvActTime += ch.RecvActTime
		st.RecvGradTime += ch.RecvGradTime
		chunkRanges[j%k] = append(chunkRanges[j%k], [2]int{lo, hi})
	}
	for s := 0; s < k; s++ {
		st := &plan.Stages[s]
		st.MemoryBytes = pt.Perf.StageMemoryChunks(pt.schedule(), m, chunkRanges[s], s, k, K, nm, batch)
		if t := st.ExecTime(); t > plan.Bottleneck {
			plan.Bottleneck = t
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("partition: internal error: %v", err)
	}
	return plan, nil
}

// MaxNm finds the largest Nm in [1, cap] for which a memory-feasible plan
// exists — the paper's Maxm for the virtual worker — under the
// partitioner's schedule and interleave degree. A 1F1B partitioner admits a
// larger Maxm than a FIFO one on memory-constrained workers because its
// per-stage stash stops growing once Nm exceeds the stage depth; an
// interleaved partitioner's stash bound runs over the k*V virtual depth. It
// returns 0 when even Nm=1 does not fit.
func (pt *Partitioner) MaxNm(c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, batch, cap int) int {
	lo, hi := 1, cap
	if _, err := pt.Partition(c, m, vw, 1, batch); err != nil {
		return 0
	}
	// Feasibility is monotone in Nm (memory grows with Nm), so binary search.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if _, err := pt.Partition(c, m, vw, mid, batch); err == nil {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
