package partition

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// TestOneF1BAdmitsLargerMaxNm is the schedule-subsystem differential: on a
// memory-constrained zoo/cluster pair, strict 1F1B's smaller activation
// footprint (at most stage-depth stashes instead of FIFO's 2*(k-stage)-1)
// admits a strictly larger Maxm. The pinned pair — ResNet-152 on a
// two-GPU RTX 2060 worker of the "mini" cluster — was found by scanning the
// zoo x catalog grid: FIFO tops out at Nm=2 while 1F1B runs to the cap
// because its stash stops growing once Nm exceeds the stage depth.
func TestOneF1BAdmitsLargerMaxNm(t *testing.T) {
	perf := profile.Default()
	cl, err := hw.ClusterByName("mini")
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := hw.AllocateByTypes(cl, []string{"GG"})
	if err != nil {
		t.Fatal(err)
	}
	m := model.ResNet152()
	vw := alloc.VWs[0]
	fifoMax := NewSched(perf, sched.FIFO).MaxNm(cl, m, vw, 32, 16)
	f1bMax := NewSched(perf, sched.OneF1B).MaxNm(cl, m, vw, 32, 16)
	if fifoMax != 2 {
		t.Errorf("fifo MaxNm = %d, want 2 (memory-constrained pair drifted; re-scan the grid)", fifoMax)
	}
	if f1bMax <= fifoMax {
		t.Errorf("1f1b MaxNm = %d, not strictly above fifo's %d", f1bMax, fifoMax)
	}
	// The larger Nm is real: a 1F1B plan at a Nm FIFO cannot host must
	// partition successfully, and the same Nm must fail under FIFO.
	if _, err := NewSched(perf, sched.OneF1B).Partition(cl, m, vw, fifoMax+1, 32); err != nil {
		t.Errorf("1f1b partition at Nm=%d failed: %v", fifoMax+1, err)
	}
	if _, err := NewSched(perf, sched.FIFO).Partition(cl, m, vw, fifoMax+1, 32); err == nil {
		t.Errorf("fifo partition at Nm=%d unexpectedly feasible", fifoMax+1)
	}
}

// TestMaxNmMatchesBruteForce is the property test for the MaxNm binary
// search: across the model zoo x cluster catalog (first virtual worker of
// the first feasible allocation policy; FIFO, 1F1B, 2BW, and interleaved at
// V in {1,2,4}), the binary search must agree with a brute-force linear scan
// — the property holds because chunk memory is monotone non-decreasing in
// Nm, so feasibility is a prefix of [1, cap]. The chunked partitioners ride
// the same argument: the per-chunk budget (cap-workspace)/V + workspace is
// Nm-independent and ChunkStash is monotone in nm.
func TestMaxNmMatchesBruteForce(t *testing.T) {
	perf := profile.Default()
	const cap = 8
	bruteForce := func(t *testing.T, pt *Partitioner, c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, batch int) int {
		// Scan the whole range rather than stopping at the first failure:
		// this both finds the true maximum and checks the prefix property
		// the binary search depends on.
		best, failed := 0, false
		for nm := 1; nm <= cap; nm++ {
			if _, err := pt.Partition(c, m, vw, nm, batch); err == nil {
				if failed {
					t.Errorf("%s/%s: feasibility not monotone — Nm=%d feasible after a smaller Nm failed",
						m.Name, pt.schedule().Name(), nm)
				}
				best = nm
			} else {
				failed = true
			}
		}
		return best
	}
	for _, ci := range hw.ClusterCatalog() {
		cl, err := hw.ClusterByName(ci.Name)
		if err != nil {
			t.Fatal(err)
		}
		var alloc *hw.Allocation
		for _, pol := range hw.Policies() {
			if a, err := hw.Allocate(cl, pol); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Fatalf("%s: no feasible allocation policy", ci.Name)
		}
		vw := alloc.VWs[0]
		for _, mn := range model.Names() {
			m, err := model.ByName(mn)
			if err != nil {
				t.Fatal(err)
			}
			pts := []*Partitioner{
				NewSched(perf, sched.FIFO),
				NewSched(perf, sched.OneF1B),
				NewSched(perf, sched.TwoBW),
				NewInterleaved(perf, sched.Interleaved, 1),
				NewInterleaved(perf, sched.Interleaved, 2),
				NewInterleaved(perf, sched.Interleaved, 4),
			}
			for _, pt := range pts {
				got := pt.MaxNm(cl, m, vw, 32, cap)
				want := bruteForce(t, pt, cl, m, vw, 32)
				if got != want {
					t.Errorf("%s/%s/%s(v%d): MaxNm binary search = %d, brute force = %d",
						ci.Name, mn, pt.schedule().Name(), pt.interleave(), got, want)
				}
			}
		}
	}
}
