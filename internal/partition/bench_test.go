package partition

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
)

// BenchmarkPartitionResNet152 measures the DP partitioner on the deepest
// paper model (58 schedulable layers onto 4 heterogeneous GPUs).
func BenchmarkPartitionResNet152(b *testing.B) {
	c := hw.Paper()
	alloc, err := hw.AllocateByTypes(c, []string{"VRGQ"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.ResNet152()
	pt := New(profile.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pt.Partition(c, m, alloc.VWs[0], 4, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxNm measures the binary search for the memory-feasibility bound.
func BenchmarkMaxNm(b *testing.B) {
	c := hw.Paper()
	alloc, err := hw.AllocateByTypes(c, []string{"GGGG"})
	if err != nil {
		b.Fatal(err)
	}
	m := model.ResNet152()
	pt := New(profile.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nm := pt.MaxNm(c, m, alloc.VWs[0], 32, 8); nm < 1 {
			b.Fatal("infeasible")
		}
	}
}
