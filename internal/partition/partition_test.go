package partition

import (
	"math"
	"testing"
	"testing/quick"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
)

func vwFor(t *testing.T, spec string) (*hw.Cluster, *hw.VirtualWorker) {
	t.Helper()
	c := hw.Paper()
	a, err := hw.AllocateByTypes(c, []string{spec})
	if err != nil {
		t.Fatal(err)
	}
	return c, a.VWs[0]
}

func TestPartitionPaperModels(t *testing.T) {
	pt := New(profile.Default())
	for _, m := range model.PaperModels() {
		for _, spec := range hw.SingleVWConfigs() {
			c, vw := vwFor(t, spec)
			plan, err := pt.Partition(c, m, vw, 1, 32)
			if err != nil {
				t.Errorf("%s on %s: %v", m.Name, spec, err)
				continue
			}
			if err := plan.Validate(); err != nil {
				t.Errorf("%s on %s: %v", m.Name, spec, err)
			}
			if plan.Bottleneck <= 0 {
				t.Errorf("%s on %s: zero bottleneck", m.Name, spec)
			}
		}
	}
}

func TestPartitionBalancesHomogeneous(t *testing.T) {
	// On four identical GPUs with a uniform model and no comm cost
	// differences, the optimal split is even.
	pt := New(profile.Default())
	m := model.Synthetic("uniform", 16, 1000, 1e9, 1000)
	c, vw := vwFor(t, "VVVV")
	plan, err := pt.Partition(c, m, vw, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.Stages {
		if s.Layers() != 4 {
			t.Errorf("stage %d has %d layers, want 4 (plan cuts: %+v)", i, s.Layers(), plan.Stages)
		}
	}
}

func TestPartitionSkewsTowardFastGPUs(t *testing.T) {
	// A V GPU is faster than a Q; on a VQ virtual worker the V stage should
	// get at least as many uniform layers as the Q stage.
	pt := New(profile.Default())
	m := model.Synthetic("uniform", 12, 1000, 1e9, 1000)
	c, vw := vwFor(t, "VQ")
	plan, err := pt.Partition(c, m, vw, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages[0].Layers() < plan.Stages[1].Layers() {
		t.Errorf("V stage got %d layers, Q stage %d; want V >= Q",
			plan.Stages[0].Layers(), plan.Stages[1].Layers())
	}
}

func TestPartitionRespectsMemory(t *testing.T) {
	pt := New(profile.Default())
	// ResNet-152 at Nm=4 on GGGG (6 GiB parts): every stage must fit.
	c, vw := vwFor(t, "GGGG")
	m := model.ResNet152()
	nm := pt.MaxNm(c, m, vw, 32, 8)
	if nm < 1 {
		t.Fatalf("GGGG cannot host ResNet-152 at all; memory model too strict")
	}
	plan, err := pt.Partition(c, m, vw, nm, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.Stages {
		if s.MemoryBytes > s.MemoryCap {
			t.Errorf("stage %d: %d > cap %d", i, s.MemoryBytes, s.MemoryCap)
		}
	}
	// And Nm+1 must be infeasible (MaxNm is tight) unless it hit the cap.
	if nm < 8 {
		if _, err := pt.Partition(c, m, vw, nm+1, 32); err == nil {
			t.Errorf("MaxNm=%d but Nm=%d is feasible", nm, nm+1)
		}
	}
}

func TestMaxNmMonotoneInMemory(t *testing.T) {
	pt := New(profile.Default())
	m := model.ResNet152()
	// RRRR (24 GiB) supports at least as many concurrent minibatches as
	// GGGG (6 GiB).
	cR, vwR := vwFor(t, "RRRR")
	cG, vwG := vwFor(t, "GGGG")
	nmR := pt.MaxNm(cR, m, vwR, 32, 16)
	nmG := pt.MaxNm(cG, m, vwG, 32, 16)
	if nmR < nmG {
		t.Errorf("MaxNm RRRR=%d < GGGG=%d", nmR, nmG)
	}
	if nmG < 1 {
		t.Errorf("GGGG MaxNm = %d, want >= 1", nmG)
	}
}

func TestPartitionErrors(t *testing.T) {
	pt := New(profile.Default())
	c, vw := vwFor(t, "VV")
	m := model.Synthetic("tiny", 1, 10, 1e6, 10)
	if _, err := pt.Partition(c, m, vw, 1, 32); err == nil {
		t.Error("fewer layers than stages should fail")
	}
	m2 := model.Synthetic("ok", 4, 10, 1e6, 10)
	if _, err := pt.Partition(c, m2, vw, 0, 32); err == nil {
		t.Error("Nm=0 should fail")
	}
	if _, err := pt.Partition(c, m2, vw, 1, 0); err == nil {
		t.Error("batch=0 should fail")
	}
}

func TestPartitionInfeasibleMemory(t *testing.T) {
	pt := New(profile.Default())
	// A model whose single layer stash dwarfs any GPU: infeasible.
	m := model.Synthetic("huge", 4, 10, 1e6, 1<<31)
	c, vw := vwFor(t, "GGGG")
	if _, err := pt.Partition(c, m, vw, 4, 32); err == nil {
		t.Error("infeasible memory should fail")
	}
}

// bruteForce finds the optimal bottleneck by enumerating every cut, for
// cross-checking the DP. Only usable for small L and k.
func bruteForce(pt *Partitioner, c *hw.Cluster, m *model.Model, vw *hw.VirtualWorker, nm, batch int) float64 {
	k := len(vw.GPUs)
	L := len(m.Layers)
	links := make([]hw.LinkKind, k)
	for s := 1; s < k; s++ {
		links[s] = c.LinkBetween(vw.GPUs[s-1], vw.GPUs[s])
	}
	cost := func(lo, hi, s int) float64 {
		mem := pt.Perf.StageMemory(m, lo, hi, s, k, nm, batch)
		if mem > vw.GPUs[s].Type.MemoryBytes {
			return math.Inf(1)
		}
		fwd, bwd, _ := pt.Perf.StageTime(m, lo, hi, vw.GPUs[s].Type, batch)
		t := fwd + bwd
		if s > 0 {
			t += pt.Perf.BoundaryTime(m, lo-1, batch, links[s])
		}
		if s < k-1 {
			t += pt.Perf.BoundaryTime(m, hi-1, batch, links[s+1])
		}
		return t
	}
	best := math.Inf(1)
	var rec func(start, s int, cur float64)
	rec = func(start, s int, cur float64) {
		if s == k-1 {
			b := math.Max(cur, cost(start, L, s))
			if b < best {
				best = b
			}
			return
		}
		for hi := start + 1; hi <= L-(k-1-s); hi++ {
			rec(hi, s+1, math.Max(cur, cost(start, hi, s)))
		}
	}
	rec(0, 0, 0)
	return best
}

func TestPartitionMatchesBruteForce(t *testing.T) {
	pt := New(profile.Default())
	specs := []string{"VQ", "VRG", "VVQQ", "RRGG"}
	for _, spec := range specs {
		c, vw := vwFor(t, spec)
		m := model.Skewed("skew", []float64{5, 1, 9, 2, 2, 7, 1, 4, 3, 6}, 1000, 2000)
		plan, err := pt.Partition(c, m, vw, 2, 8)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		want := bruteForce(pt, c, m, vw, 2, 8)
		if math.Abs(plan.Bottleneck-want) > 1e-12 {
			t.Errorf("%s: DP bottleneck %v, brute force %v", spec, plan.Bottleneck, want)
		}
	}
}

// Property: for random skewed models the DP bottleneck equals brute force.
func TestPartitionOptimalProperty(t *testing.T) {
	pt := New(profile.Default())
	c, vw := vwFor(t, "VRQ")
	prop := func(ws [6]uint8) bool {
		weights := make([]float64, 6)
		for i, w := range ws {
			weights[i] = float64(w%50) + 1
		}
		m := model.Skewed("p", weights, 100, 100)
		plan, err := pt.Partition(c, m, vw, 1, 4)
		if err != nil {
			return false
		}
		return math.Abs(plan.Bottleneck-bruteForce(pt, c, m, vw, 1, 4)) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputUpperBound(t *testing.T) {
	pt := New(profile.Default())
	c, vw := vwFor(t, "VVVV")
	plan, err := pt.Partition(c, model.VGG19(), vw, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	ub := plan.ThroughputUpperBound()
	// Four V GPUs can at best quadruple one V's 131 img/s anchor; the
	// bound must sit between the single-GPU rate and the ideal 4x.
	if ub < 119 || ub > 4*131 {
		t.Errorf("throughput upper bound = %.1f img/s, want within (119, 524)", ub)
	}
}
