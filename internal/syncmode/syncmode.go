// Package syncmode provides the classical parameter-synchronization clock
// models the paper builds on and compares against: Bulk Synchronous Parallel
// (BSP), Asynchronous Parallel (ASP), and Stale Synchronous Parallel (SSP,
// Ho et al.). WSP itself lives in internal/wsp; these reference models back
// the Horovod/SSP baselines and the convergence trainers.
package syncmode

import "fmt"

// Kind selects a synchronization model.
type Kind int

const (
	// BSP: every worker waits for all others at every clock boundary.
	BSP Kind = iota
	// ASP: workers never wait (no convergence guarantee).
	ASP
	// SSP: a worker may run ahead of the slowest worker by at most the
	// staleness threshold.
	SSP
)

func (k Kind) String() string {
	switch k {
	case BSP:
		return "BSP"
	case ASP:
		return "ASP"
	case SSP:
		return "SSP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CanProceed reports whether a worker whose local clock is c may begin its
// next iteration, given the minimum clock among all workers and the staleness
// threshold s (ignored except for SSP).
//
// Under SSP a worker with clock c may use a stale weight version missing at
// most the s most recent clocks: it may proceed while c - min <= s. BSP is
// SSP with s = 0; ASP never blocks.
func CanProceed(k Kind, c, min, s int) bool {
	switch k {
	case BSP:
		return c == min
	case ASP:
		return true
	case SSP:
		return c-min <= s
	default:
		panic(fmt.Sprintf("syncmode: unknown kind %v", k))
	}
}

// Tracker maintains per-worker clocks for a synchronization model and
// enforces CanProceed on every tick.
type Tracker struct {
	kind      Kind
	staleness int
	clocks    []int
}

// NewTracker creates a tracker for n workers, all at clock zero.
func NewTracker(k Kind, n, staleness int) (*Tracker, error) {
	if n < 1 {
		return nil, fmt.Errorf("syncmode: need at least one worker, got %d", n)
	}
	if staleness < 0 {
		return nil, fmt.Errorf("syncmode: negative staleness %d", staleness)
	}
	return &Tracker{kind: k, staleness: staleness, clocks: make([]int, n)}, nil
}

// Clock reports worker w's clock.
func (t *Tracker) Clock(w int) int { return t.clocks[w] }

// Min reports the minimum clock across workers.
func (t *Tracker) Min() int {
	min := t.clocks[0]
	for _, c := range t.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// CanTick reports whether worker w may advance its clock now.
func (t *Tracker) CanTick(w int) bool {
	return CanProceed(t.kind, t.clocks[w], t.Min(), t.staleness)
}

// Tick advances worker w's clock; it returns an error when the model forbids
// the advance (the caller should have consulted CanTick).
func (t *Tracker) Tick(w int) (int, error) {
	if !t.CanTick(w) {
		return t.clocks[w], fmt.Errorf("syncmode: worker %d blocked at clock %d (min %d, %v s=%d)",
			w, t.clocks[w], t.Min(), t.kind, t.staleness)
	}
	t.clocks[w]++
	return t.clocks[w], nil
}
