package syncmode

import (
	"testing"
	"testing/quick"
)

func TestCanProceed(t *testing.T) {
	cases := []struct {
		kind   Kind
		c, min int
		s      int
		want   bool
	}{
		{BSP, 0, 0, 0, true},
		{BSP, 1, 0, 0, false},
		{ASP, 100, 0, 0, true},
		{SSP, 3, 0, 3, true},
		{SSP, 4, 0, 3, false},
		{SSP, 4, 1, 3, true},
	}
	for _, c := range cases {
		if got := CanProceed(c.kind, c.c, c.min, c.s); got != c.want {
			t.Errorf("CanProceed(%v, c=%d, min=%d, s=%d) = %v, want %v",
				c.kind, c.c, c.min, c.s, got, c.want)
		}
	}
}

func TestBSPIsSSPZero(t *testing.T) {
	prop := func(c, min uint8) bool {
		cc, mm := int(c%10), int(min%10)
		if mm > cc {
			mm = cc
		}
		return CanProceed(BSP, cc, mm, 0) == CanProceed(SSP, cc, mm, 0)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerBSPLockstep(t *testing.T) {
	tr, err := NewTracker(BSP, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Tick(0); err != nil {
		t.Fatal(err)
	}
	// Worker 0 is now ahead; it must block until the others tick.
	if tr.CanTick(0) {
		t.Error("BSP worker ticked twice without peers")
	}
	if _, err := tr.Tick(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Tick(2); err != nil {
		t.Fatal(err)
	}
	if !tr.CanTick(0) {
		t.Error("BSP worker still blocked after peers caught up")
	}
}

func TestTrackerSSPBoundedLead(t *testing.T) {
	tr, err := NewTracker(SSP, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	for tr.CanTick(0) {
		if _, err := tr.Tick(0); err != nil {
			t.Fatal(err)
		}
		ticks++
		if ticks > 100 {
			t.Fatal("SSP worker never blocked")
		}
	}
	if ticks != 4 {
		t.Errorf("SSP lead = %d ticks, want staleness+1 = 4", ticks)
	}
	if _, err := tr.Tick(0); err == nil {
		t.Error("forced tick past staleness bound should error")
	}
}

func TestTrackerErrors(t *testing.T) {
	if _, err := NewTracker(BSP, 0, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewTracker(SSP, 2, -1); err == nil {
		t.Error("negative staleness accepted")
	}
}

// Property: ASP never blocks; SSP blocks exactly when lead exceeds s.
func TestTrackerProperty(t *testing.T) {
	prop := func(schedule []uint8) bool {
		asp, _ := NewTracker(ASP, 2, 0)
		ssp, _ := NewTracker(SSP, 2, 2)
		for _, pick := range schedule {
			w := int(pick) % 2
			if !asp.CanTick(w) {
				return false
			}
			asp.Tick(w)
			if ssp.CanTick(w) {
				ssp.Tick(w)
			}
			if lead := ssp.Clock(0) - ssp.Min(); lead > 3 {
				return false
			}
			if lead := ssp.Clock(1) - ssp.Min(); lead > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
