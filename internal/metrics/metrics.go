// Package metrics holds small measurement helpers shared by the experiment
// harness: time series (accuracy-over-time curves) and summaries.
package metrics

import (
	"fmt"
	"sort"
)

// Point is one sample of a time series.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a sample; time must not regress.
func (s *Series) Append(t, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("metrics: series %q time regressed: %g after %g", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the most recent sample.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// FirstTimeAtOrAbove reports the earliest time the series reaches the
// threshold.
func (s *Series) FirstTimeAtOrAbove(v float64) (float64, bool) {
	for _, p := range s.Points {
		if p.V >= v {
			return p.T, true
		}
	}
	return 0, false
}

// At linearly interpolates the series value at time t (clamped to the ends).
func (s *Series) At(t float64) (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= t })
	switch {
	case i == 0:
		return s.Points[0].V, true
	case i == len(s.Points):
		return s.Points[len(s.Points)-1].V, true
	}
	a, b := s.Points[i-1], s.Points[i]
	if b.T == a.T {
		return b.V, true
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V), true
}

// Summary aggregates a slice of values.
type Summary struct {
	N              int
	Min, Max, Mean float64
}

// String renders the summary compactly, e.g. "n=4 min=1.2 mean=2.0 max=3.1".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g mean=%.4g max=%.4g", s.N, s.Min, s.Mean, s.Max)
}

// Spread reports Max-Min: the absolute imbalance across the summarized
// values (e.g. the straggler gap between virtual-worker throughputs).
func (s Summary) Spread() float64 { return s.Max - s.Min }

// Summarize computes a summary; empty input yields a zero Summary.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: vals[0], Max: vals[0]}
	var sum float64
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	return s
}
