package metrics

import (
	"math"
	"testing"
)

func TestSeriesAppendAndLast(t *testing.T) {
	var s Series
	if _, ok := s.Last(); ok {
		t.Error("empty series has a last point")
	}
	s.Append(1, 10)
	s.Append(2, 20)
	p, ok := s.Last()
	if !ok || p.T != 2 || p.V != 20 {
		t.Errorf("last = %+v, %v", p, ok)
	}
}

func TestSeriesRejectsTimeRegression(t *testing.T) {
	var s Series
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("time regression did not panic")
		}
	}()
	s.Append(4, 1)
}

func TestFirstTimeAtOrAbove(t *testing.T) {
	var s Series
	s.Append(0, 0.1)
	s.Append(10, 0.5)
	s.Append(20, 0.9)
	at, ok := s.FirstTimeAtOrAbove(0.5)
	if !ok || at != 10 {
		t.Errorf("first = %v, %v", at, ok)
	}
	if _, ok := s.FirstTimeAtOrAbove(0.95); ok {
		t.Error("unreached threshold reported reached")
	}
}

func TestAtInterpolates(t *testing.T) {
	var s Series
	s.Append(0, 0)
	s.Append(10, 100)
	v, ok := s.At(5)
	if !ok || math.Abs(v-50) > 1e-12 {
		t.Errorf("At(5) = %v, %v", v, ok)
	}
	// Clamping at the ends.
	if v, _ := s.At(-5); v != 0 {
		t.Errorf("At(-5) = %v, want 0", v)
	}
	if v, _ := s.At(50); v != 100 {
		t.Errorf("At(50) = %v, want 100", v)
	}
	var empty Series
	if _, ok := empty.At(1); ok {
		t.Error("empty series interpolated")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}
