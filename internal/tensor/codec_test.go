package tensor

import (
	"bytes"
	"math"
	"testing"
)

// TestCodecFastPathMatchesPortable holds the unsafe bulk path to the
// portable per-element encoding byte for byte, including non-finite and
// quiet/signaling NaN bit patterns.
func TestCodecFastPathMatchesPortable(t *testing.T) {
	v := Vector{
		0, math.Copysign(0, -1), 1.5, -2.25,
		math.Inf(1), math.Inf(-1),
		math.Float64frombits(0x7ff8000000000001), // quiet NaN with payload
		math.Float64frombits(0x7ff0000000000001), // signaling NaN
		math.MaxFloat64, math.SmallestNonzeroFloat64,
	}

	fast := make([]byte, 8*len(v))
	portable := make([]byte, 8*len(v))
	PutLE(fast, v)
	putLEPortable(portable, v)
	if !bytes.Equal(fast, portable) {
		t.Fatalf("PutLE fast path differs from portable:\nfast     %x\nportable %x", fast, portable)
	}

	gotFast := make(Vector, len(v))
	gotPortable := make(Vector, len(v))
	GetLE(gotFast, fast)
	getLEPortable(gotPortable, fast)
	for i := range v {
		if math.Float64bits(gotFast[i]) != math.Float64bits(v[i]) {
			t.Errorf("GetLE[%d] = %x, want %x", i, math.Float64bits(gotFast[i]), math.Float64bits(v[i]))
		}
		if math.Float64bits(gotPortable[i]) != math.Float64bits(v[i]) {
			t.Errorf("getLEPortable[%d] = %x, want %x", i, math.Float64bits(gotPortable[i]), math.Float64bits(v[i]))
		}
	}
}

func TestCodecEmptyVector(t *testing.T) {
	// Zero-length vectors must not touch dst/src at all (both may be nil).
	PutLE(nil, nil)
	GetLE(nil, nil)
}
