package tensor

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Codec helpers: bulk conversion between Vector values and their wire form
// (each float64's IEEE-754 bits, little-endian). The PS wire protocol moves
// tens of kilobytes of weights per frame, so the conversion runs at memcpy
// speed on little-endian hosts by reinterpreting the vector's backing array
// as bytes; other hosts take a portable per-element path. Both paths are
// bit-transparent (NaN payloads and signed zeros survive), which the
// conformance harness's bit-identical-weights check depends on.

// hostLittleEndian reports whether float64 memory order already matches the
// wire order. Computed once at init from an observation, not a build tag,
// so the portable path stays compiled and testable everywhere.
var hostLittleEndian = func() bool {
	var x uint64 = 0x0102030405060708
	b := (*[8]byte)(unsafe.Pointer(&x))
	return b[0] == 0x08
}()

// PutLE writes v's wire encoding into dst, which must hold 8*len(v) bytes.
//
//hetlint:hotpath
func PutLE(dst []byte, v Vector) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		copy(dst[:8*len(v)], unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)))
		return
	}
	putLEPortable(dst, v)
}

// GetLE fills v from 8*len(v) bytes of wire encoding in src.
//
//hetlint:hotpath
func GetLE(v Vector, src []byte) {
	if len(v) == 0 {
		return
	}
	if hostLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)), src[:8*len(v)])
		return
	}
	getLEPortable(v, src)
}

//hetlint:hotpath
func putLEPortable(dst []byte, v Vector) {
	_ = dst[8*len(v)-1]
	for i, f := range v {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(f))
	}
}

//hetlint:hotpath
func getLEPortable(v Vector, src []byte) {
	_ = src[8*len(v)-1]
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
