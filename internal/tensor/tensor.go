// Package tensor provides the small dense linear-algebra kernels the numeric
// trainer needs: float64 vectors with the usual BLAS-1 operations plus a
// row-major matrix-vector product and softmax utilities. Everything is plain
// Go over the standard library — adequate for the convergence studies, which
// use modest dimensionalities.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// CloneFast returns an independent copy built with append instead of
// make+copy: for a pointer-free element type the runtime then skips
// zero-initializing the new array (it is fully overwritten by the copy),
// so the clone writes each byte once. Worth it only on hot paths cloning
// large vectors; elsewhere prefer Clone.
func (v Vector) CloneFast() Vector {
	return append(Vector(nil), v...)
}

// Zero sets every element to zero, in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// AddCopy computes acc += src and dst = src in one pass over src — the
// parameter server's push kernel (accumulate the delta into the live
// weights while retaining a copy for snapshot folding), fused so src is
// traversed once instead of twice.
//
//hetlint:hotpath
func AddCopy(acc, dst, src Vector) {
	checkLen(len(acc), len(src))
	checkLen(len(dst), len(src))
	for i, x := range src {
		acc[i] += x
		dst[i] = x
	}
}

// AddInPlace computes v += w.
func (v Vector) AddInPlace(w Vector) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// AXPY computes v += alpha*w.
func (v Vector) AXPY(alpha float64, w Vector) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Scale computes v *= alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product <v, w>.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// DistanceSquared returns 0.5*||v-w||^2, the D(w||w') of the paper's
// convergence analysis (Assumption 2).
func (v Vector) DistanceSquared(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return 0.5 * s
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", a, b))
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len Rows*Cols
}

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) Vector { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// MulVec computes out = M * x. out must have length Rows.
func (m *Matrix) MulVec(x, out Vector) {
	checkLen(len(x), m.Cols)
	checkLen(len(out), m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Row(r).Dot(x)
	}
}

// Softmax overwrites v with softmax(v), numerically stabilized.
func Softmax(v Vector) {
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i := range v {
		v[i] = math.Exp(v[i] - max)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// Argmax returns the index of the largest element (-1 for empty input).
func Argmax(v Vector) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Clip bounds every element to [-c, c]; the convergence analysis assumes
// bounded (sub)gradients (Assumption 1), and clipping enforces it.
func Clip(v Vector, c float64) {
	if c <= 0 {
		panic("tensor: clip bound must be positive")
	}
	for i := range v {
		if v[i] > c {
			v[i] = c
		} else if v[i] < -c {
			v[i] = -c
		}
	}
}
