package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); !almostEq(got, 32) {
		t.Errorf("dot = %v, want 32", got)
	}
	u := v.Clone()
	u.AddInPlace(w)
	if !almostEq(u[0], 5) || !almostEq(u[2], 9) {
		t.Errorf("add = %v", u)
	}
	u = v.Clone()
	u.AXPY(2, w)
	if !almostEq(u[1], 12) {
		t.Errorf("axpy = %v", u)
	}
	u.Scale(0.5)
	if !almostEq(u[1], 6) {
		t.Errorf("scale = %v", u)
	}
	d := w.Sub(v)
	if !almostEq(d[0], 3) {
		t.Errorf("sub = %v", d)
	}
	if got := (Vector{3, 4}).Norm2(); !almostEq(got, 5) {
		t.Errorf("norm = %v, want 5", got)
	}
	u.Zero()
	if u[0] != 0 || u[2] != 0 {
		t.Errorf("zero = %v", u)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("clone aliases original")
	}
}

func TestDistanceSquared(t *testing.T) {
	v := Vector{1, 0}
	w := Vector{0, 1}
	if got := v.DistanceSquared(w); !almostEq(got, 1) {
		t.Errorf("distance = %v, want 1", got)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Row(0), Vector{1, 2, 3})
	copy(m.Row(1), Vector{4, 5, 6})
	out := NewVector(2)
	m.MulVec(Vector{1, 1, 1}, out)
	if !almostEq(out[0], 6) || !almostEq(out[1], 15) {
		t.Errorf("mulvec = %v, want [6 15]", out)
	}
}

func TestSoftmax(t *testing.T) {
	v := Vector{1, 2, 3}
	Softmax(v)
	var sum float64
	for _, x := range v {
		if x <= 0 || x >= 1 {
			t.Errorf("softmax out of range: %v", v)
		}
		sum += x
	}
	if !almostEq(sum, 1) {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if !(v[2] > v[1] && v[1] > v[0]) {
		t.Errorf("softmax not monotone: %v", v)
	}
	// Large values must not overflow.
	big := Vector{1000, 1001}
	Softmax(big)
	if math.IsNaN(big[0]) || math.IsInf(big[1], 0) {
		t.Errorf("softmax unstable: %v", big)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax(Vector{1, 5, 3}); got != 1 {
		t.Errorf("argmax = %d, want 1", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("argmax(nil) = %d, want -1", got)
	}
}

func TestClip(t *testing.T) {
	v := Vector{-10, 0.5, 10}
	Clip(v, 1)
	if v[0] != -1 || v[1] != 0.5 || v[2] != 1 {
		t.Errorf("clip = %v", v)
	}
}

// Property: dot is symmetric and AXPY matches its definition.
func TestVectorAlgebraProperty(t *testing.T) {
	prop := func(a, b [8]int8, alphaRaw int8) bool {
		v, w := NewVector(8), NewVector(8)
		for i := range v {
			v[i] = float64(a[i])
			w[i] = float64(b[i])
		}
		alpha := float64(alphaRaw)
		if !almostEq(v.Dot(w), w.Dot(v)) {
			return false
		}
		u := v.Clone()
		u.AXPY(alpha, w)
		for i := range u {
			if !almostEq(u[i], v[i]+alpha*w[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution.
func TestSoftmaxProperty(t *testing.T) {
	prop := func(raw [6]int8) bool {
		v := NewVector(6)
		for i := range v {
			v[i] = float64(raw[i]) / 8
		}
		Softmax(v)
		var sum float64
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
