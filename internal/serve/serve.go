package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"hetpipe/internal/core"
	"hetpipe/internal/fault"
	"hetpipe/internal/obs"
	"hetpipe/internal/sched"
	"hetpipe/internal/sim"
)

// Options tunes a serving run beyond the deployment and traffic spec.
type Options struct {
	// Faults is a deterministic fault-injection plan (internal/fault). A nil
	// or empty plan takes exactly the fault-free code path, so its results
	// are bit-identical to a run without one. Slowdowns scale the affected
	// replica's stage times per microbatch, crashes charge the crash
	// downtime to the crashed microbatch (serving holds no optimizer state,
	// so there is nothing to replay), and link degradations stretch the
	// replica's inter-stage activation transfers. PS-shard stalls are inert:
	// inference runs no parameter synchronization.
	Faults *fault.Plan
	// Obs streams serving events (arrivals, admissions, replies, fault
	// injections and recoveries) in virtual time; nil disables emission.
	Obs obs.Func
}

// RequestTrace is one request's lifecycle, in seconds of virtual time.
type RequestTrace struct {
	// At is the arrival time.
	At float64
	// Done is the reply time; latency is Done - At.
	Done float64
	// Replica is the virtual worker that served the request.
	Replica int
	// Critical marks latency-critical traffic.
	Critical bool
}

// ReplicaStats summarizes one virtual worker's share of a serving run.
type ReplicaStats struct {
	// Replica is the 0-based virtual worker index.
	Replica int
	// Type is the replica's GPU mix, e.g. "VVVV".
	Type string
	// Requests and Batches count the work served.
	Requests, Batches int
	// MeanFill is the mean number of requests coalesced per microbatch.
	MeanFill float64
	// Utilization is the busiest GPU's busy fraction over the run.
	Utilization float64
}

// Result reports a completed serving run.
type Result struct {
	// Traffic is the canonical spec of the generator that drove the run.
	Traffic string
	// Offered and Served count requests; a drained run serves its whole
	// offer.
	Offered, Served int
	// Duration is the virtual time of the last reply.
	Duration float64
	// ThroughputRPS is Served / Duration.
	ThroughputRPS float64
	// Batches counts admitted microbatches across all replicas; MeanBatchFill
	// is the mean requests coalesced per microbatch.
	Batches       int
	MeanBatchFill float64
	// Latency summarizes all requests; Critical and Bulk split it by traffic
	// class (zero-valued when a class is empty).
	Latency, Critical, Bulk LatencySummary
	// Replicas holds the per-virtual-worker splits.
	Replicas []ReplicaStats
	// FaultInjections counts fault-plan entries that took effect; Crashes
	// and Recoveries count crash events and their completed recoveries.
	FaultInjections, Crashes, Recoveries int
	// Trace is the per-request lifecycle, indexed by request id.
	Trace []RequestTrace
}

// TraceString renders the request trace in a stable byte-comparable form —
// one line per request — for the seed-determinism pins.
func (r *Result) TraceString() string {
	var b strings.Builder
	b.Grow(len(r.Trace) * 48)
	for i, t := range r.Trace {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(' ')
		b.WriteString(gfmt(t.At))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(t.Replica))
		b.WriteByte(' ')
		b.WriteString(gfmt(t.Done))
		if t.Critical {
			b.WriteString(" crit")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// replica is one virtual worker acting as an inference server: its partition
// plan's virtual stages run forward-only on its GPUs, with up to cap
// microbatches in flight under the deployment's pipeline schedule.
type replica struct {
	srv *server
	w   int

	gpus    []*sim.Resource
	stageID int32 // per-resource completion handler id (same on every GPU)
	xferID  int32 // engine handler id for overlapped activation transfers

	vstages  int
	k        int
	cap      int       // schedule's in-flight microbatch bound
	svc      []float64 // per-virtual-stage forward compute time
	recv     []float64 // per-virtual-stage activation receive time (link-scaled)
	overlap  bool      // receives overlap with compute (schedule's OverlapRecv)
	bottle   float64   // per-microbatch time on the busiest GPU (routing)
	fill     float64   // serial traversal time of the whole pipeline (routing)
	inFlight int

	// pending holds routed, unadmitted request ids; members holds admitted
	// ids in admission order; counts holds per-microbatch request counts.
	// All three are head-indexed rings over reusable backing arrays, so the
	// steady-state admission path allocates nothing.
	pending  []int32
	pendHead int
	members  []int32
	memHead  int
	counts   []int32
	cntHead  int

	admitSeq int // microbatches admitted (1-based seq of the latest)
	requests int // requests served

	// Fault bookkeeping (all inert under an empty plan).
	crash        *fault.Crash
	crashCharged bool
	slowEmitted  bool
	linkEmitted  bool
}

// server is one serving run's state: the request tables, the replicas, and
// the generators' runtime side.
type server struct {
	eng *sim.Engine
	dep *core.Deployment
	tr  *Traffic
	fp  *fault.Plan
	ob  obs.Func

	faulty   bool
	batchCap int
	replicas []*replica

	// Per-request tables, indexed by request id (preallocated to the offer).
	at     []float64
	crit   []bool
	rep    []int32
	doneAt []float64

	arriveID int32

	// Closed-loop state: each user's private think/class stream and each
	// request's user.
	users  []*rand.Rand
	user   []int32
	issued int

	served  int
	batches int
	fillSum int
	rec     *Recorder

	faultInjections, crashes, recoveries int
}

// Run serves the traffic against the deployment on a fresh engine. See RunOn.
func Run(ctx context.Context, dep *core.Deployment, tr *Traffic, opt Options) (*Result, error) {
	return RunOn(ctx, sim.New(), dep, tr, opt)
}

// RunOn serves the traffic against the deployment on a caller-owned engine
// (Reset first, so a warm engine re-serves without re-growing its arena).
// Every virtual worker becomes a serving replica running its partition
// plan's virtual stages forward-only under the deployment's pipeline
// schedule: the schedule's InFlightCap bounds concurrent microbatches per
// replica, OverlapRecv decides whether inter-stage activation receives
// occupy the receiving GPU, and the admission layer coalesces queued
// requests into microbatches of up to the deployment's batch size the
// moment an in-flight slot frees — continuous batching, never waiting for a
// full batch. Requests are routed at arrival to the replica with the
// smallest estimated drain time; latency-critical requests additionally
// charge the candidate's pipeline fill time, steering them to fast
// replicas. A microbatch's per-stage cost is the plan's per-minibatch
// forward time regardless of how full it is, which is exactly what makes
// coalescing profitable.
//
// The run is deterministic: the same deployment, traffic spec, and fault
// plan reproduce a byte-identical Result (trace and summaries included) on
// every run and any engine.
func RunOn(ctx context.Context, eng *sim.Engine, dep *core.Deployment, tr *Traffic, opt Options) (*Result, error) {
	if tr == nil {
		return nil, fmt.Errorf("serve: nil traffic")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(dep.VWs) == 0 {
		return nil, fmt.Errorf("serve: empty deployment")
	}
	if tr.Kind == KindClosed && tr.Users > tr.N {
		return nil, fmt.Errorf("serve: closed loop with %d users needs at least that many requests, got n%d", tr.Users, tr.N)
	}
	eng.Reset()
	fp, err := opt.Faults.Materialize(len(dep.VWs))
	if err != nil {
		return nil, err
	}
	s := &server{
		eng:      eng,
		dep:      dep,
		tr:       tr,
		fp:       fp,
		ob:       opt.Obs,
		faulty:   !fp.Empty(),
		batchCap: dep.Sys.Batch,
		at:       make([]float64, tr.N),
		crit:     make([]bool, tr.N),
		rep:      make([]int32, tr.N),
		doneAt:   make([]float64, tr.N),
		rec:      NewRecorder(tr.N),
	}
	if s.batchCap < 1 {
		s.batchCap = 1
	}
	s.arriveID = eng.Register(s.arriveEvent)
	disc := sched.Or(dep.Sys.Schedule)
	for w, vp := range dep.VWs {
		plan := vp.Plan
		k := len(plan.Stages)
		vstages := plan.VirtualStages()
		r := &replica{
			srv:     s,
			w:       w,
			k:       k,
			vstages: vstages,
			overlap: disc.OverlapRecv(),
			cap:     disc.InFlightCap(vstages, dep.Nm),
			svc:     make([]float64, vstages),
			recv:    make([]float64, vstages),
			gpus:    make([]*sim.Resource, k),
		}
		if r.cap < 1 {
			r.cap = 1
		}
		link := 1.0
		if s.faulty {
			link = fp.LinkScale(w)
		}
		perGPU := make([]float64, k)
		for vs := 0; vs < vstages; vs++ {
			c := plan.ChunkAt(vs)
			r.svc[vs] = c.FwdTime
			r.recv[vs] = c.RecvActTime * link
			r.fill += r.svc[vs] + r.recv[vs]
			perGPU[vs%k] += r.svc[vs]
			if !r.overlap {
				perGPU[vs%k] += r.recv[vs]
			}
		}
		for _, t := range perGPU {
			if t > r.bottle {
				r.bottle = t
			}
		}
		for g := range r.gpus {
			r.gpus[g] = sim.NewResource(eng, fmt.Sprintf("serve/w%d/g%d", w, g))
			r.stageID = r.gpus[g].Register(r.stageDone)
		}
		r.xferID = eng.Register(r.xferDone)
		if s.faulty {
			r.crash = fp.CrashFor(w)
		}
		s.replicas = append(s.replicas, r)
	}
	eng.SetStepLimit(uint64(tr.N)*uint64(8*maxVstages(s.replicas)+16) + 1_000_000)

	if tr.Open() {
		arr := tr.Arrivals()
		for i, a := range arr {
			s.at[i] = a.At
			s.crit[i] = a.Critical
		}
		eng.AtID(sim.Time(s.at[0]), s.arriveID, 0, 0, 0)
		s.issued = tr.N
	} else {
		s.users = make([]*rand.Rand, tr.Users)
		for u := range s.users {
			s.users[u] = tr.userStream(u)
		}
		s.user = make([]int32, tr.N)
		for u := 0; u < tr.Users && s.issued < tr.N; u++ {
			s.issueNext(int32(u))
		}
	}

	if err := eng.RunContext(ctx); err != nil {
		return nil, err
	}
	if s.served != tr.N {
		return nil, fmt.Errorf("serve: run stalled at %d of %d requests served", s.served, tr.N)
	}
	return s.result(), nil
}

func maxVstages(rs []*replica) int {
	m := 1
	for _, r := range rs {
		if r.vstages > m {
			m = r.vstages
		}
	}
	return m
}

// result assembles the Result after the engine has drained.
func (s *server) result() *Result {
	res := &Result{
		Traffic:         s.tr.String(),
		Offered:         s.tr.N,
		Served:          s.served,
		Duration:        float64(s.eng.Now()),
		Batches:         s.batches,
		FaultInjections: s.faultInjections,
		Crashes:         s.crashes,
		Recoveries:      s.recoveries,
		Trace:           make([]RequestTrace, s.tr.N),
	}
	if res.Duration > 0 {
		res.ThroughputRPS = float64(res.Served) / res.Duration
	}
	if res.Batches > 0 {
		res.MeanBatchFill = float64(s.fillSum) / float64(res.Batches)
	}
	res.Latency, res.Critical, res.Bulk = s.rec.Summary()
	for i := range res.Trace {
		res.Trace[i] = RequestTrace{
			At:       s.at[i],
			Done:     s.doneAt[i],
			Replica:  int(s.rep[i]),
			Critical: s.crit[i],
		}
	}
	for _, r := range s.replicas {
		st := ReplicaStats{
			Replica:  r.w,
			Type:     s.dep.VWs[r.w].VW.TypeString(),
			Requests: r.requests,
			Batches:  r.admitSeq,
		}
		if r.admitSeq > 0 {
			st.MeanFill = float64(r.requests) / float64(r.admitSeq)
		}
		for _, g := range r.gpus {
			if u := g.Utilization(); u > st.Utilization {
				st.Utilization = u
			}
		}
		res.Replicas = append(res.Replicas, st)
	}
	return res
}

// issueNext schedules user u's next request: its class and arrival time come
// from the user's private stream (see Traffic.userStream), so they are
// independent of how the users' requests interleave.
//
//hetlint:hotpath
func (s *server) issueNext(u int32) {
	id := int32(s.issued)
	s.issued++
	rng := s.users[u]
	at := float64(s.eng.Now()) + rng.ExpFloat64()*s.tr.Think
	s.at[id] = at
	s.crit[id] = rng.Float64() < s.tr.Crit
	s.user[id] = u
	s.eng.AtID(sim.Time(at), s.arriveID, id, 0, 0)
}

// arriveEvent is the engine handler for request arrivals: route, enqueue,
// admit, and (open-loop) chain the next arrival so the event heap holds at
// most one future arrival.
//
//hetlint:hotpath
func (s *server) arriveEvent(id, _ int32, _ float64) {
	w := s.route(s.crit[id])
	s.rep[id] = int32(w)
	if s.ob != nil {
		s.emit(obs.Event{Kind: obs.KindArrive, VW: w, Request: int(id)})
	}
	r := s.replicas[w]
	r.enqueue(id)
	r.admit()
	if s.tr.Kind != KindClosed {
		if next := int(id) + 1; next < s.tr.N {
			s.eng.AtID(sim.Time(s.at[next]), s.arriveID, int32(next), 0, 0)
		}
	}
}

// route picks the serving replica: the smallest estimated drain time, where
// a critical request also pays the candidate's pipeline fill — so critical
// traffic prefers fast replicas while bulk traffic spreads by backlog. Ties
// break to the lowest index, keeping the choice deterministic.
//
//hetlint:hotpath
func (s *server) route(critical bool) int {
	best := 0
	bestEst := 0.0
	for w, r := range s.replicas {
		backlog := r.inFlight + (r.queued()+s.batchCap-1)/s.batchCap
		est := float64(backlog) * r.bottle
		if critical {
			est += r.fill
		}
		if w == 0 || est < bestEst {
			best, bestEst = w, est
		}
	}
	return best
}

// emit stamps and forwards one observer event; callers check s.ob first so
// the fault-free, observer-free hot path skips the call entirely.
func (s *server) emit(e obs.Event) {
	e.Backend = "serve"
	e.Time = float64(s.eng.Now())
	s.ob(e)
}

// queued reports the replica's unadmitted backlog.
//
//hetlint:hotpath
func (r *replica) queued() int { return len(r.pending) - r.pendHead }

// enqueue appends a routed request to the pending ring, compacting the dead
// prefix once it dominates (the engine-queue idiom) so a backlog that never
// fully drains still reuses its backing array.
//
//hetlint:hotpath
func (r *replica) enqueue(id int32) {
	if r.pendHead >= 16 && r.pendHead >= len(r.pending)-r.pendHead {
		n := copy(r.pending, r.pending[r.pendHead:])
		r.pending = r.pending[:n]
		r.pendHead = 0
	}
	r.pending = append(r.pending, id)
}

// admit is the continuous-batching admission layer: whenever the replica has
// a free in-flight slot and a backlog, it coalesces up to batchCap queued
// requests into one microbatch and injects it at virtual stage 0 — it never
// waits for a batch to fill.
//
//hetlint:hotpath
func (r *replica) admit() {
	s := r.srv
	for r.inFlight < r.cap && r.queued() > 0 {
		n := r.queued()
		if n > s.batchCap {
			n = s.batchCap
		}
		if r.memHead >= 16 && r.memHead >= len(r.members)-r.memHead {
			m := copy(r.members, r.members[r.memHead:])
			r.members = r.members[:m]
			r.memHead = 0
		}
		for i := 0; i < n; i++ {
			r.members = append(r.members, r.pending[r.pendHead])
			r.pendHead++
		}
		if r.cntHead >= 16 && r.cntHead >= len(r.counts)-r.cntHead {
			m := copy(r.counts, r.counts[r.cntHead:])
			r.counts = r.counts[:m]
			r.cntHead = 0
		}
		r.counts = append(r.counts, int32(n))
		r.admitSeq++
		r.inFlight++
		s.batches++
		s.fillSum += n
		if s.faulty {
			r.injectStarts(r.admitSeq)
		}
		if s.ob != nil {
			s.emit(obs.Event{Kind: obs.KindAdmit, VW: r.w, Batch: r.admitSeq, Request: n})
		}
		r.submit(0, int32(r.admitSeq), 0)
	}
}

// submit queues microbatch seq's work at virtual stage vs on the owning GPU.
// recvPart is the serialized receive share of the duration (zero at stage 0
// and under overlapping schedules).
//
//hetlint:hotpath
func (r *replica) submit(vs int, seq int32, recvPart float64) {
	s := r.srv
	dur := recvPart + r.svc[vs]
	if s.faulty {
		dur *= s.fp.ComputeScale(r.w, int(seq))
		// The crash charge lands once, on the crashed microbatch's first
		// stage task — the replica-local stall. Serving holds no optimizer
		// state, so recovery is the downtime alone: no checkpoint replay.
		if r.crash != nil && vs == 0 && int(seq) == r.crash.AtMinibatch && !r.crashCharged {
			r.crashCharged = true
			dur += fault.CrashDowntime(r.crash)
		}
	}
	r.gpus[vs%r.k].SubmitID(sim.Duration(dur), r.stageID, int32(vs), seq)
}

// stageDone fires when a microbatch finishes a virtual stage: hand it to the
// next stage (through an overlapped transfer when the schedule allows) or
// complete it.
//
//hetlint:hotpath
func (r *replica) stageDone(vs, seq int32, _ float64) {
	next := int(vs) + 1
	if next == r.vstages {
		r.batchDone(seq)
		return
	}
	if d := r.recv[next]; r.overlap && d > 0 {
		// The transfer rides the interconnect, not the receiving GPU; the
		// next stage's compute is queued when it lands.
		r.srv.eng.AfterID(sim.Duration(d), r.xferID, int32(next), seq, 0)
		return
	}
	r.submit(next, seq, r.recv[next])
}

// xferDone lands an overlapped activation transfer: queue the receiving
// stage's compute.
//
//hetlint:hotpath
func (r *replica) xferDone(vs, seq int32, _ float64) {
	r.submit(int(vs), seq, 0)
}

// batchDone completes a microbatch: stamp every member's reply, free the
// in-flight slot, and re-run admission. Per-replica stages are FIFO, so
// microbatches complete in admission order and the member ring pops exactly
// the requests this batch carried.
//
//hetlint:hotpath
func (r *replica) batchDone(seq int32) {
	s := r.srv
	r.inFlight--
	n := int(r.counts[r.cntHead])
	r.cntHead++
	now := float64(s.eng.Now())
	for i := 0; i < n; i++ {
		id := r.members[r.memHead]
		r.memHead++
		s.doneAt[id] = now
		s.served++
		r.requests++
		s.rec.Add(now-s.at[id], s.crit[id])
		if s.ob != nil {
			s.emit(obs.Event{Kind: obs.KindReply, VW: r.w, Request: int(id), Batch: int(seq)})
		}
		if s.tr.Kind == KindClosed && s.issued < s.tr.N {
			s.issueNext(s.user[id])
		}
	}
	if s.faulty && r.crash != nil && int(seq) == r.crash.AtMinibatch {
		// The charged downtime elapsed inside this batch; the replica is back.
		r.recoverEmit(seq)
	}
	r.admit()
}

// injectStarts emits the one-shot fault injections owed when microbatch seq
// is admitted on the replica: the slowdown's first affected batch, the link
// degradation's first use, and the crash itself. Cold path — each fires at
// most once per run.
func (r *replica) injectStarts(seq int) {
	s := r.srv
	if sc := s.fp.ComputeScale(r.w, seq); sc > 1 && !r.slowEmitted {
		r.slowEmitted = true
		s.inject(r.w, fmt.Sprintf("slow:w%d:x%g", r.w, sc))
	}
	if lk := s.fp.LinkScale(r.w); lk > 1 && !r.linkEmitted {
		r.linkEmitted = true
		s.inject(r.w, fmt.Sprintf("link:w%d:x%g", r.w, lk))
	}
	if r.crash != nil && seq == r.crash.AtMinibatch {
		s.crashes++
		s.inject(r.w, fmt.Sprintf("crash:w%d:mb%d", r.w, seq))
	}
}

// recoverEmit counts and reports a crashed replica's return to service.
func (r *replica) recoverEmit(seq int32) {
	s := r.srv
	s.recoveries++
	if s.ob != nil {
		s.emit(obs.Event{Kind: obs.KindRecover, VW: r.w, Batch: int(seq),
			Fault: fmt.Sprintf("crash:w%d:mb%d", r.w, int(seq))})
	}
}

// inject counts and reports one fault activation.
func (s *server) inject(vw int, f string) {
	s.faultInjections++
	if s.ob != nil {
		s.emit(obs.Event{Kind: obs.KindFaultInject, VW: vw, Fault: f})
	}
}

// Curve runs the same open-loop traffic at each offered rate and returns the
// per-rate results — the latency-vs-offered-throughput curve of the serving
// evaluation. The runs share one warm engine; each point is independently
// deterministic.
func Curve(ctx context.Context, dep *core.Deployment, tr *Traffic, rates []float64, opt Options) ([]*Result, error) {
	eng := sim.New()
	out := make([]*Result, 0, len(rates))
	for _, rate := range rates {
		res, err := RunOn(ctx, eng, dep, tr.WithRate(rate), opt)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
