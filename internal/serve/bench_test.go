package serve

import (
	"context"
	"testing"

	"hetpipe/internal/core"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/sim"
)

// benchDeployment resolves the paper-cluster ED deployment the serving
// benchmarks drive.
func benchDeployment(b *testing.B, schedule string) *core.Deployment {
	b.Helper()
	disc, err := sched.ByName(schedule)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystemSched(hw.Paper(), model.VGG19(), profile.Default(), 32, disc)
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := hw.Allocate(sys.Cluster, hw.EqualDistribution)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := sys.Deploy(alloc, 4, 0, core.PlacementDefault)
	if err != nil {
		b.Fatal(err)
	}
	return dep
}

// BenchmarkServePoisson measures one serving run end to end — 500 Poisson
// requests through the continuous-batching admission layer across 4 replicas
// — on one warm engine, so a regression in the admission or routing hot path
// shows up against the committed BENCH_serve.json baseline.
func BenchmarkServePoisson(b *testing.B) {
	dep := benchDeployment(b, sched.NameFIFO)
	tr, err := ParseTraffic("poisson:r100:n500:crit0.2")
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.New()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOn(ctx, eng, dep, tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeClosedLoop measures the closed-loop generator's runtime
// side: 500 requests from a 32-user population with pre-drawn think times.
func BenchmarkServeClosedLoop(b *testing.B) {
	dep := benchDeployment(b, sched.NameFIFO)
	tr, err := ParseTraffic("closed:u32:t0.01:n500")
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.New()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOn(ctx, eng, dep, tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeOverlap exercises the overlapped-receive path, whose
// transfers ride engine timers instead of the stage resources.
func BenchmarkServeOverlap(b *testing.B) {
	dep := benchDeployment(b, sched.NameOverlap)
	tr, err := ParseTraffic("poisson:r100:n500")
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.New()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunOn(ctx, eng, dep, tr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
