package serve

import (
	"context"
	"strconv"
	"testing"

	"hetpipe/internal/core"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// TestGoldenPercentiles pins the nearest-rank latency percentiles of one
// paper-cluster serving scenario per pipeline schedule, to the full float64
// digit. Any change to the serving cost model, the admission layer, the
// router, the traffic generators, or the engine's event ordering moves these
// bytes — the golden values are the regression wall for the whole serving
// plane.
//
// The non-overlap schedules (hetpipe-fifo, gpipe, 1f1b, 2bw) share one
// timeline here: at Nm=4 over the 4-stage paper partitions their in-flight
// caps coincide and receives fold into stage time identically, so equal
// values are expected, not suspicious. The overlap schedules
// (hetpipe-overlap, interleaved at V=1) chain transfers off the compute
// path and land on their own shared timeline.
//
// Regenerate by running the scenario below per schedule and pasting
// Latency.P50/P95/P99 via strconv.FormatFloat(v, 'g', -1, 64).
func TestGoldenPercentiles(t *testing.T) {
	golden := []struct {
		schedule      string
		p50, p95, p99 string
	}{
		{"1f1b", "0.13691371497365934", "0.21087101963395138", "0.2481840296903286"},
		{"2bw", "0.13691371497365934", "0.21087101963395138", "0.2481840296903286"},
		{"gpipe", "0.13691371497365934", "0.21087101963395138", "0.2481840296903286"},
		{"hetpipe-fifo", "0.13691371497365934", "0.21087101963395138", "0.2481840296903286"},
		{"hetpipe-overlap", "0.1208161861900674", "0.2091625415873022", "0.248436845319012"},
		{"interleaved", "0.1208161861900674", "0.2091625415873022", "0.248436845319012"},
	}
	if len(golden) != len(sched.Names()) {
		t.Fatalf("golden table covers %d schedules, registry has %d (%v)",
			len(golden), len(sched.Names()), sched.Names())
	}
	for _, tc := range golden {
		t.Run(tc.schedule, func(t *testing.T) {
			disc, err := sched.ByName(tc.schedule)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.NewSystemSched(hw.Paper(), model.VGG19(), profile.Default(), 32, disc)
			if err != nil {
				t.Fatal(err)
			}
			pol, err := hw.PolicyByName("NP")
			if err != nil {
				t.Fatal(err)
			}
			alloc, err := hw.Allocate(hw.Paper(), pol)
			if err != nil {
				t.Fatal(err)
			}
			dep, err := sys.Deploy(alloc, 4, 0, core.PlacementDefault)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := ParseTraffic("poisson:r120:n1000:seed7:crit0.2")
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), dep, tr, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Served != 1000 {
				t.Fatalf("served %d of 1000", res.Served)
			}
			g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
			if got := g(res.Latency.P50); got != tc.p50 {
				t.Errorf("p50 = %s, want %s", got, tc.p50)
			}
			if got := g(res.Latency.P95); got != tc.p95 {
				t.Errorf("p95 = %s, want %s", got, tc.p95)
			}
			if got := g(res.Latency.P99); got != tc.p99 {
				t.Errorf("p99 = %s, want %s", got, tc.p99)
			}
		})
	}
}
