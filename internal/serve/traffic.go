// Package serve runs a resolved HetPipe deployment as an inference-serving
// system: seedable open- and closed-loop request generators stand in for
// heavy user traffic, a continuous-batching admission layer coalesces queued
// requests into forward-only microbatches, and a router spreads them across
// the deployment's heterogeneous virtual workers, preferring fast replicas
// for latency-critical requests.
//
// The serving plane reuses the training substrate wholesale: the virtual
// workers' partition plans supply the per-virtual-stage forward and transfer
// times, the pipeline schedule (internal/sched) bounds how many microbatches
// a replica keeps in flight through InFlightCap and decides whether receives
// overlap with compute (OverlapRecv), the pooled event engine (internal/sim)
// drives the run in virtual time, and fault plans (internal/fault) shape the
// timing deterministically. Everything is seed-deterministic: the same
// traffic spec reproduces a byte-identical request trace and latency summary
// on every run, on a fresh or warm engine — the property the serving test
// wall pins.
package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Traffic generator kinds, as accepted by ParseTraffic and carried in
// Traffic.Kind.
const (
	// KindPoisson is an open-loop homogeneous Poisson arrival process.
	KindPoisson = "poisson"
	// KindDiurnal is an open-loop inhomogeneous Poisson process whose rate
	// follows a sinusoidal day/night cycle — the load shape of a
	// user-facing service.
	KindDiurnal = "diurnal"
	// KindBursty is an open-loop on/off process replaying a bursty trace:
	// the base rate multiplied by a burst factor during "on" windows.
	KindBursty = "bursty"
	// KindClosed is a closed-loop generator: a fixed population of users,
	// each thinking an exponential time between its reply and its next
	// request, so offered load self-throttles with latency.
	KindClosed = "closed"
)

// Traffic is a parsed, validated traffic specification. Build one with
// ParseTraffic; the zero value is not runnable.
type Traffic struct {
	// Kind is one of the Kind* generator names.
	Kind string
	// Rate is the open-loop base arrival rate in requests/second.
	Rate float64
	// Amp is the diurnal modulation amplitude in [0, 1): the rate swings
	// between Rate*(1-Amp) and Rate*(1+Amp).
	Amp float64
	// Period is the diurnal cycle length in seconds.
	Period float64
	// Burst is the bursty rate multiplier (> 1) applied during "on" windows.
	Burst float64
	// On and Off are the bursty window lengths in seconds.
	On, Off float64
	// Users is the closed-loop population size.
	Users int
	// Think is the closed-loop mean think time in seconds.
	Think float64
	// N is the total request budget of the run.
	N int
	// Seed seeds every random draw the generator makes (default 1).
	Seed int64
	// Crit is the fraction of requests marked latency-critical in [0, 1];
	// the router prefers fast replicas for them.
	Crit float64
}

// Request is one generated request: an arrival time and a traffic class.
type Request struct {
	// At is the arrival time in seconds from run start.
	At float64
	// Critical marks the request latency-critical for routing.
	Critical bool
}

// ParseTraffic parses a traffic spec. The grammar is colon-separated, in the
// style of the fault spec language:
//
//	poisson:r120:n2000             120 req/s Poisson, 2000 requests
//	diurnal:r120:a0.5:p60:n2000    sinusoidal 60..180 req/s, period 60 s
//	bursty:r60:x4:on2:off8:n2000   60 req/s, 4x bursts 2 s on / 8 s off
//	closed:u64:t0.05:n2000         64 users, 50 ms mean think time
//
// Every kind accepts two optional trailing fields: seed<k> (default seed1)
// and crit<f> (fraction of latency-critical requests, default 0), e.g.
// "poisson:r120:n2000:seed7:crit0.2". The parsed spec is validated; the
// canonical form round-trips through String.
func ParseTraffic(spec string) (*Traffic, error) {
	fields := strings.Split(strings.TrimSpace(spec), ":")
	if len(fields) == 0 || fields[0] == "" {
		return nil, fmt.Errorf("serve: empty traffic spec")
	}
	t := &Traffic{Kind: fields[0], Seed: 1}
	rest, err := t.parseBody(fields[1:])
	if err != nil {
		return nil, err
	}
	for _, f := range rest {
		switch {
		case strings.HasPrefix(f, "seed"):
			s, err := strconv.ParseInt(f[len("seed"):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serve: bad seed %q in traffic spec", f)
			}
			t.Seed = s
		case strings.HasPrefix(f, "crit"):
			c, err := strconv.ParseFloat(f[len("crit"):], 64)
			if err != nil {
				return nil, fmt.Errorf("serve: bad crit fraction %q in traffic spec", f)
			}
			t.Crit = c
		default:
			return nil, fmt.Errorf("serve: unknown traffic field %q", f)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseBody consumes the kind-specific positional fields and returns the
// remaining (optional) ones.
func (t *Traffic) parseBody(fields []string) ([]string, error) {
	var err error
	switch t.Kind {
	case KindPoisson:
		if len(fields) < 2 {
			return nil, fmt.Errorf("serve: poisson wants poisson:r<rate>:n<count>")
		}
		if t.Rate, err = prefFloat(fields[0], "r"); err != nil {
			return nil, err
		}
		if t.N, err = prefInt(fields[1], "n"); err != nil {
			return nil, err
		}
		return fields[2:], nil
	case KindDiurnal:
		if len(fields) < 4 {
			return nil, fmt.Errorf("serve: diurnal wants diurnal:r<rate>:a<amp>:p<period>:n<count>")
		}
		if t.Rate, err = prefFloat(fields[0], "r"); err != nil {
			return nil, err
		}
		if t.Amp, err = prefFloat(fields[1], "a"); err != nil {
			return nil, err
		}
		if t.Period, err = prefFloat(fields[2], "p"); err != nil {
			return nil, err
		}
		if t.N, err = prefInt(fields[3], "n"); err != nil {
			return nil, err
		}
		return fields[4:], nil
	case KindBursty:
		if len(fields) < 5 {
			return nil, fmt.Errorf("serve: bursty wants bursty:r<rate>:x<factor>:on<sec>:off<sec>:n<count>")
		}
		if t.Rate, err = prefFloat(fields[0], "r"); err != nil {
			return nil, err
		}
		if t.Burst, err = prefFloat(fields[1], "x"); err != nil {
			return nil, err
		}
		if t.On, err = prefFloat(fields[2], "on"); err != nil {
			return nil, err
		}
		if t.Off, err = prefFloat(fields[3], "off"); err != nil {
			return nil, err
		}
		if t.N, err = prefInt(fields[4], "n"); err != nil {
			return nil, err
		}
		return fields[5:], nil
	case KindClosed:
		if len(fields) < 3 {
			return nil, fmt.Errorf("serve: closed wants closed:u<users>:t<think>:n<count>")
		}
		if t.Users, err = prefInt(fields[0], "u"); err != nil {
			return nil, err
		}
		if t.Think, err = prefFloat(fields[1], "t"); err != nil {
			return nil, err
		}
		if t.N, err = prefInt(fields[2], "n"); err != nil {
			return nil, err
		}
		return fields[3:], nil
	default:
		return nil, fmt.Errorf("serve: unknown traffic kind %q (want %s, %s, %s, or %s)",
			t.Kind, KindPoisson, KindDiurnal, KindBursty, KindClosed)
	}
}

// Validate checks the spec's numeric ranges.
func (t *Traffic) Validate() error {
	if t.N <= 0 {
		return fmt.Errorf("serve: traffic needs a positive request count, got n%d", t.N)
	}
	if t.Crit < 0 || t.Crit > 1 {
		return fmt.Errorf("serve: crit fraction %g outside [0, 1]", t.Crit)
	}
	switch t.Kind {
	case KindPoisson, KindDiurnal, KindBursty:
		if t.Rate <= 0 {
			return fmt.Errorf("serve: %s rate must be > 0, got r%g", t.Kind, t.Rate)
		}
	}
	switch t.Kind {
	case KindDiurnal:
		if t.Amp < 0 || t.Amp >= 1 {
			return fmt.Errorf("serve: diurnal amplitude %g outside [0, 1)", t.Amp)
		}
		if t.Period <= 0 {
			return fmt.Errorf("serve: diurnal period must be > 0, got p%g", t.Period)
		}
	case KindBursty:
		if t.Burst <= 1 {
			return fmt.Errorf("serve: burst factor must be > 1, got x%g", t.Burst)
		}
		if t.On <= 0 || t.Off <= 0 {
			return fmt.Errorf("serve: bursty windows must be > 0, got on%g off%g", t.On, t.Off)
		}
	case KindClosed:
		if t.Users <= 0 {
			return fmt.Errorf("serve: closed loop needs users, got u%d", t.Users)
		}
		if t.Think < 0 {
			return fmt.Errorf("serve: think time must be >= 0, got t%g", t.Think)
		}
	}
	return nil
}

// String renders the canonical spec; ParseTraffic(t.String()) round-trips.
func (t *Traffic) String() string {
	var b strings.Builder
	b.WriteString(t.Kind)
	switch t.Kind {
	case KindPoisson:
		fmt.Fprintf(&b, ":r%s:n%d", gfmt(t.Rate), t.N)
	case KindDiurnal:
		fmt.Fprintf(&b, ":r%s:a%s:p%s:n%d", gfmt(t.Rate), gfmt(t.Amp), gfmt(t.Period), t.N)
	case KindBursty:
		fmt.Fprintf(&b, ":r%s:x%s:on%s:off%s:n%d", gfmt(t.Rate), gfmt(t.Burst), gfmt(t.On), gfmt(t.Off), t.N)
	case KindClosed:
		fmt.Fprintf(&b, ":u%d:t%s:n%d", t.Users, gfmt(t.Think), t.N)
	}
	if t.Seed != 1 {
		fmt.Fprintf(&b, ":seed%d", t.Seed)
	}
	if t.Crit != 0 {
		fmt.Fprintf(&b, ":crit%s", gfmt(t.Crit))
	}
	return b.String()
}

// Open reports whether the generator is open-loop (arrival times independent
// of service); closed-loop traffic self-throttles with latency instead.
func (t *Traffic) Open() bool { return t.Kind != KindClosed }

// WithRate returns a copy of the spec at a different open-loop base rate —
// the knob a latency-vs-throughput curve turns. It panics on closed-loop
// specs, whose offered load is set by Users and Think instead.
func (t *Traffic) WithRate(r float64) *Traffic {
	if !t.Open() {
		panic("serve: WithRate on closed-loop traffic")
	}
	c := *t
	c.Rate = r
	return &c
}

// maxRate bounds the instantaneous open-loop rate, for thinning.
func (t *Traffic) maxRate() float64 {
	switch t.Kind {
	case KindDiurnal:
		return t.Rate * (1 + t.Amp)
	case KindBursty:
		return t.Rate * t.Burst
	default:
		return t.Rate
	}
}

// rateAt is the instantaneous open-loop rate at time s.
func (t *Traffic) rateAt(s float64) float64 {
	switch t.Kind {
	case KindDiurnal:
		return t.Rate * (1 + t.Amp*math.Sin(2*math.Pi*s/t.Period))
	case KindBursty:
		if math.Mod(s, t.On+t.Off) < t.On {
			return t.Rate * t.Burst
		}
		return t.Rate
	default:
		return t.Rate
	}
}

// Arrivals materializes the open-loop arrival process: N requests in
// non-decreasing time order, deterministically derived from the seed. The
// inhomogeneous kinds (diurnal, bursty) are generated by thinning against
// the peak rate, so the three generators share one candidate stream shape.
// Arrivals panics on closed-loop traffic — a closed loop has no arrival
// times until the requests it reacts to have been served.
func (t *Traffic) Arrivals() []Request {
	if !t.Open() {
		panic("serve: Arrivals on closed-loop traffic")
	}
	rng := rand.New(rand.NewSource(t.Seed))
	peak := t.maxRate()
	homogeneous := t.Kind == KindPoisson
	out := make([]Request, 0, t.N)
	now := 0.0
	for len(out) < t.N {
		now += rng.ExpFloat64() / peak
		if homogeneous || rng.Float64()*peak <= t.rateAt(now) {
			out = append(out, Request{At: now})
		}
	}
	if t.Crit > 0 {
		// The class stream is drawn from its own derived source so adding a
		// critical fraction never perturbs the arrival times.
		crng := rand.New(rand.NewSource(t.Seed + critSeedOffset))
		for i := range out {
			out[i].Critical = crng.Float64() < t.Crit
		}
	}
	return out
}

// critSeedOffset derives the traffic-class stream's seed from the arrival
// stream's, keeping the two draws independent.
const critSeedOffset = 0x9e3779b9

// userStream seeds closed-loop user u's private think/class source: each of
// the user's requests draws one think time (ExpFloat64 * Think) and one
// class draw (Float64 < Crit) from it, in request order. Every user owning
// its own derived stream means the draws do not depend on how users'
// requests interleave in simulated time — the property that makes
// closed-loop runs seed-deterministic — and a user that outpaces the
// average never exhausts a pre-sized pool.
func (t *Traffic) userStream(u int) *rand.Rand {
	return rand.New(rand.NewSource(t.Seed*1000003 + int64(u) + 1))
}

func prefInt(s, prefix string) (int, error) {
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("serve: field %q wants prefix %q", s, prefix)
	}
	v, err := strconv.Atoi(s[len(prefix):])
	if err != nil {
		return 0, fmt.Errorf("serve: bad integer in field %q", s)
	}
	return v, nil
}

func prefFloat(s, prefix string) (float64, error) {
	if !strings.HasPrefix(s, prefix) {
		return 0, fmt.Errorf("serve: field %q wants prefix %q", s, prefix)
	}
	v, err := strconv.ParseFloat(s[len(prefix):], 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad number in field %q", s)
	}
	return v, nil
}

// gfmt formats a float the way the fault spec language does ('g', shortest).
func gfmt(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
