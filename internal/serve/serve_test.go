package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"hetpipe/internal/core"
	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/obs"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/sim"
)

// deployment resolves a paper-cluster deployment for serving tests.
func deployment(t *testing.T, schedule string, policy hw.Policy, nm int) *core.Deployment {
	t.Helper()
	disc, err := sched.ByName(schedule)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystemSched(hw.Paper(), model.VGG19(), profile.Default(), 32, disc)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := hw.Allocate(sys.Cluster, policy)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(alloc, nm, 0, core.PlacementDefault)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func traffic(t *testing.T, spec string) *Traffic {
	t.Helper()
	tr, err := ParseTraffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestServeDrains(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	res, err := Run(context.Background(), dep, traffic(t, "poisson:r50:n400"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 400 || res.Offered != 400 {
		t.Fatalf("served %d of %d", res.Served, res.Offered)
	}
	if res.ThroughputRPS <= 0 || res.Duration <= 0 {
		t.Fatalf("degenerate throughput: %+v", res)
	}
	if res.Batches <= 0 || res.MeanBatchFill < 1 {
		t.Fatalf("degenerate batching: batches=%d fill=%g", res.Batches, res.MeanBatchFill)
	}
	if res.Latency.Count != 400 {
		t.Fatalf("latency population %d", res.Latency.Count)
	}
	if !(res.Latency.P50 <= res.Latency.P95 && res.Latency.P95 <= res.Latency.P99 && res.Latency.P99 <= res.Latency.Max) {
		t.Fatalf("percentiles not monotone: %s", res.Latency)
	}
	for i, tr := range res.Trace {
		if tr.Done < tr.At {
			t.Fatalf("request %d replied at %g before arriving at %g", i, tr.Done, tr.At)
		}
		if tr.Replica < 0 || tr.Replica >= len(res.Replicas) {
			t.Fatalf("request %d routed to replica %d of %d", i, tr.Replica, len(res.Replicas))
		}
	}
	total := 0
	for _, rs := range res.Replicas {
		total += rs.Requests
	}
	if total != res.Served {
		t.Fatalf("replica request counts sum to %d, served %d", total, res.Served)
	}
}

// TestSeedDeterminism is the serving conformance pin: the same traffic seed
// must reproduce a byte-identical request trace and latency summary on every
// run — fresh engine, warm engine, and after unrelated runs — for all three
// open-loop generators and the closed loop.
func TestSeedDeterminism(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.NodePartition, 4)
	specs := []string{
		"poisson:r80:n300:seed7:crit0.2",
		"diurnal:r80:a0.6:p4:n300:seed7:crit0.2",
		"bursty:r40:x5:on1:off3:n300:seed7:crit0.2",
		"closed:u16:t0.02:n300:seed7:crit0.2",
	}
	for _, spec := range specs {
		tr := traffic(t, spec)
		first, err := Run(context.Background(), dep, tr, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		trace, summary := first.TraceString(), first.Latency.String()

		// Run 2: fresh engine.
		again, err := Run(context.Background(), dep, tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.TraceString() != trace || again.Latency.String() != summary {
			t.Fatalf("%s: fresh-engine rerun diverged", spec)
		}

		// Run 3: warm engine that served different traffic first.
		eng := sim.New()
		if _, err := RunOn(context.Background(), eng, dep, traffic(t, "poisson:r200:n500:seed99"), Options{}); err != nil {
			t.Fatal(err)
		}
		warm, err := RunOn(context.Background(), eng, dep, tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.TraceString() != trace || warm.Latency.String() != summary {
			t.Fatalf("%s: warm-engine rerun diverged", spec)
		}
		if !reflect.DeepEqual(first, warm) {
			t.Fatalf("%s: warm-engine result differs beyond the trace", spec)
		}
	}
}

// TestEmptyFaultPlanBitIdentical mirrors the training-side golden guard: an
// empty or nil plan must take exactly the fault-free code path.
func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	tr := traffic(t, "poisson:r80:n300:crit0.1")
	clean, err := Run(context.Background(), dep, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := fault.Parse("")
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*fault.Plan{"nil": nil, "zero": {}, "parsed-empty": empty} {
		res, err := Run(context.Background(), dep, tr, Options{Faults: plan})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(clean, res) {
			t.Fatalf("%s plan diverges from the fault-free run", name)
		}
	}
}

func TestSlowdownStretchesLatency(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	tr := traffic(t, "poisson:r60:n300")
	clean, err := Run(context.Background(), dep, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("slow:w0:x4")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(context.Background(), dep, tr, Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if slow.FaultInjections == 0 {
		t.Error("no injection recorded")
	}
	if slow.Latency.Mean <= clean.Latency.Mean {
		t.Errorf("4x straggler did not stretch mean latency: %g vs %g",
			slow.Latency.Mean, clean.Latency.Mean)
	}
}

// TestCrashRecovery is the acceptance pin for fault-plan serving: the run
// completes and the recovery counters surface.
func TestCrashRecovery(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	tr := traffic(t, "poisson:r60:n300")
	plan, err := fault.Parse("crash:w1:mb3:down0.5")
	if err != nil {
		t.Fatal(err)
	}
	var injects, recovers int
	res, err := Run(context.Background(), dep, tr, Options{
		Faults: plan,
		Obs: func(e obs.Event) {
			switch e.Kind {
			case obs.KindFaultInject:
				injects++
			case obs.KindRecover:
				recovers++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != tr.N {
		t.Fatalf("crashed run served %d of %d", res.Served, tr.N)
	}
	if res.Crashes != 1 || res.Recoveries != 1 {
		t.Fatalf("crash counters: crashes=%d recoveries=%d", res.Crashes, res.Recoveries)
	}
	if injects == 0 || recovers != 1 {
		t.Fatalf("observer saw injects=%d recovers=%d", injects, recovers)
	}
}

// TestRoutingPrefersFastReplicasForCritical drives the heterogeneous NP
// deployment (replica GPU mixes VVVV > RRRR > GGGG > QQQQ) hard enough that
// bulk traffic spreads by backlog, and checks the critical class skews
// toward the fastest replica more than the bulk class does.
func TestRoutingPrefersFastReplicasForCritical(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.NodePartition, 4)
	res, err := Run(context.Background(), dep, traffic(t, "poisson:r400:n2000:crit0.3"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Under NP on the paper cluster, replica 0 is the all-V node — the
	// fastest GPU mix and the smallest pipeline fill.
	fast := 0
	var critFast, critAll, bulkFast, bulkAll int
	for _, tr := range res.Trace {
		if tr.Critical {
			critAll++
			if tr.Replica == fast {
				critFast++
			}
		} else {
			bulkAll++
			if tr.Replica == fast {
				bulkFast++
			}
		}
	}
	if critAll == 0 || bulkAll == 0 {
		t.Fatalf("degenerate class split: crit=%d bulk=%d", critAll, bulkAll)
	}
	critFrac := float64(critFast) / float64(critAll)
	bulkFrac := float64(bulkFast) / float64(bulkAll)
	if critFrac <= bulkFrac {
		t.Errorf("critical traffic does not prefer the fast replica: crit %.2f vs bulk %.2f", critFrac, bulkFrac)
	}
	served := 0
	for _, rs := range res.Replicas {
		if rs.Requests > 0 {
			served++
		}
	}
	if served < 2 {
		t.Errorf("offered load did not spread: only %d replicas served traffic", served)
	}
}

func TestClosedLoopSelfThrottles(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	res, err := Run(context.Background(), dep, traffic(t, "closed:u8:t0.01:n200"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 200 {
		t.Fatalf("closed loop served %d of 200", res.Served)
	}
	// With 8 users and one outstanding request each, no more than 8 requests
	// can ever be in the system: every batch holds at most 8.
	if res.MeanBatchFill > 8 {
		t.Errorf("closed loop over-filled batches: %g", res.MeanBatchFill)
	}
}

func TestOverlapScheduleServes(t *testing.T) {
	for _, name := range sched.Names() {
		dep := deployment(t, name, hw.EqualDistribution, 4)
		res, err := Run(context.Background(), dep, traffic(t, "poisson:r50:n200"), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Served != 200 {
			t.Fatalf("%s: served %d of 200", name, res.Served)
		}
	}
}

func TestServeObserverStream(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	var arrives, admits, replies int
	lastTime := -1.0
	_, err := Run(context.Background(), dep, traffic(t, "poisson:r50:n100"), Options{
		Obs: func(e obs.Event) {
			if e.Backend != "serve" {
				t.Fatalf("event backend %q", e.Backend)
			}
			if e.Time < lastTime {
				t.Fatalf("event time went backwards: %g after %g", e.Time, lastTime)
			}
			lastTime = e.Time
			switch e.Kind {
			case obs.KindArrive:
				arrives++
			case obs.KindAdmit:
				admits++
			case obs.KindReply:
				replies++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if arrives != 100 || replies != 100 {
		t.Fatalf("observer saw %d arrivals, %d replies; want 100 each", arrives, replies)
	}
	if admits == 0 {
		t.Fatal("no admit events")
	}
}

func TestServeContextCancel(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, dep, traffic(t, "poisson:r50:n5000"), Options{}); err == nil {
		t.Fatal("cancelled run did not fail")
	}
}

func TestCurveMonotoneOffer(t *testing.T) {
	dep := deployment(t, sched.NameFIFO, hw.EqualDistribution, 4)
	tr := traffic(t, "poisson:r1:n300")
	points, err := Curve(context.Background(), dep, tr, []float64{20, 80, 320}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d curve points", len(points))
	}
	// Higher offered load cannot lower latency percentiles on this
	// work-conserving system.
	if points[2].Latency.P95 < points[0].Latency.P95 {
		t.Errorf("p95 fell as offered load rose: %g -> %g", points[0].Latency.P95, points[2].Latency.P95)
	}
}

// TestRecorderConcurrent hammers the latency recorder from many goroutines;
// run with -race this is the concurrency pin of the serving test wall.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(0)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Add(float64(g*per+i), i%2 == 0)
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Count(); got != goroutines*per {
		t.Fatalf("recorded %d of %d", got, goroutines*per)
	}
	all, crit, bulk := rec.Summary()
	if all.Count != goroutines*per || crit.Count+bulk.Count != all.Count {
		t.Fatalf("summary counts: all=%d crit=%d bulk=%d", all.Count, crit.Count, bulk.Count)
	}
	if all.Max != float64(goroutines*per-1) {
		t.Fatalf("max %g", all.Max)
	}
}
