package serve

import (
	"strings"
	"testing"
)

func TestParseTrafficRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"poisson:r120:n2000",
		"poisson:r120:n2000:seed7",
		"poisson:r120:n2000:seed7:crit0.25",
		"diurnal:r120:a0.5:p60:n2000",
		"bursty:r60:x4:on2:off8:n2000:crit0.1",
		"closed:u64:t0.05:n2000:seed3",
	} {
		tr, err := ParseTraffic(spec)
		if err != nil {
			t.Fatalf("ParseTraffic(%q): %v", spec, err)
		}
		if got := tr.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		again, err := ParseTraffic(tr.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", tr.String(), err)
		}
		if *again != *tr {
			t.Errorf("reparse of %q differs: %+v vs %+v", spec, again, tr)
		}
	}
}

func TestParseTrafficErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"warp:r10:n5",
		"poisson:r10",
		"poisson:rX:n5",
		"poisson:r10:n0",
		"poisson:r0:n5",
		"poisson:r10:n5:bogus1",
		"poisson:r10:n5:seedX",
		"poisson:r10:n5:crit1.5",
		"diurnal:r10:a1.5:p60:n5",
		"diurnal:r10:a0.5:p0:n5",
		"bursty:r10:x1:on2:off8:n5",
		"bursty:r10:x4:on0:off8:n5",
		"closed:u0:t0.1:n5",
		"closed:u4:t-1:n5",
	} {
		if _, err := ParseTraffic(spec); err == nil {
			t.Errorf("ParseTraffic(%q) accepted", spec)
		}
	}
}

func TestArrivalsShape(t *testing.T) {
	for _, spec := range []string{
		"poisson:r100:n500",
		"diurnal:r100:a0.8:p5:n500",
		"bursty:r50:x5:on1:off4:n500",
	} {
		tr, err := ParseTraffic(spec)
		if err != nil {
			t.Fatal(err)
		}
		arr := tr.Arrivals()
		if len(arr) != tr.N {
			t.Fatalf("%s: %d arrivals, want %d", spec, len(arr), tr.N)
		}
		last := 0.0
		for i, a := range arr {
			if a.At < last {
				t.Fatalf("%s: arrival %d at %g before predecessor %g", spec, i, a.At, last)
			}
			last = a.At
			if a.Critical {
				t.Fatalf("%s: critical request without crit fraction", spec)
			}
		}
	}
}

func TestArrivalsCriticalFractionIsolated(t *testing.T) {
	base, err := ParseTraffic("poisson:r100:n2000")
	if err != nil {
		t.Fatal(err)
	}
	crit, err := ParseTraffic("poisson:r100:n2000:crit0.3")
	if err != nil {
		t.Fatal(err)
	}
	a, b := base.Arrivals(), crit.Arrivals()
	marked := 0
	for i := range a {
		if a[i].At != b[i].At {
			t.Fatalf("crit fraction perturbed arrival %d: %g vs %g", i, a[i].At, b[i].At)
		}
		if b[i].Critical {
			marked++
		}
	}
	frac := float64(marked) / float64(len(b))
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("critical fraction %g far from requested 0.3", frac)
	}
}

func TestArrivalsMeanRate(t *testing.T) {
	tr, err := ParseTraffic("poisson:r200:n4000")
	if err != nil {
		t.Fatal(err)
	}
	arr := tr.Arrivals()
	span := arr[len(arr)-1].At
	rate := float64(len(arr)) / span
	if rate < 180 || rate > 220 {
		t.Errorf("empirical rate %g far from offered 200", rate)
	}
}

func TestWithRate(t *testing.T) {
	tr, err := ParseTraffic("poisson:r100:n50:seed9")
	if err != nil {
		t.Fatal(err)
	}
	faster := tr.WithRate(400)
	if faster.Rate != 400 || faster.N != 50 || faster.Seed != 9 {
		t.Errorf("WithRate lost fields: %+v", faster)
	}
	if tr.Rate != 100 {
		t.Errorf("WithRate mutated the receiver")
	}
	closed, err := ParseTraffic("closed:u4:t0.1:n20")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("WithRate on closed-loop traffic did not panic")
		}
	}()
	closed.WithRate(10)
}

func TestUserStreamPerUserIndependence(t *testing.T) {
	tr, err := ParseTraffic("closed:u4:t0.1:n40:crit0.5")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(u, n int) []float64 {
		rng := tr.userStream(u)
		out := make([]float64, 0, 2*n)
		for i := 0; i < n; i++ {
			th := rng.ExpFloat64() * tr.Think
			if th < 0 {
				t.Fatalf("negative think time for user %d", u)
			}
			out = append(out, th, rng.Float64())
		}
		return out
	}
	// The stream is a pure function of (seed, user): re-seeding replays it.
	a, b := draw(0, 32), draw(0, 32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("user stream not deterministic at draw %d", i)
		}
	}
	// Distinct users draw distinct streams.
	c := draw(1, 32)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("users 0 and 1 share a think stream")
	}
}

func TestTrafficStringMentionsKind(t *testing.T) {
	tr, err := ParseTraffic("bursty:r60:x4:on2:off8:n100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tr.String(), "bursty:") {
		t.Errorf("canonical form %q lost its kind", tr.String())
	}
}
