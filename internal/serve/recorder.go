package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// LatencySummary condenses a latency population into the serving headline
// numbers. Percentiles use the nearest-rank method on the sorted population
// (the same definition internal/sweep's streaming summaries use), so two
// summaries over the same population are byte-identical however they were
// accumulated.
type LatencySummary struct {
	// Count is the population size; all other fields are zero when it is 0.
	Count int
	// Mean is the arithmetic mean latency in seconds.
	Mean float64
	// P50, P95, and P99 are nearest-rank percentiles in seconds.
	P50, P95, P99 float64
	// Max is the largest latency observed.
	Max float64
}

// String renders the summary in a stable, byte-comparable form — the form
// the seed-determinism tests pin.
func (l LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		l.Count, gfmt(l.Mean), gfmt(l.P50), gfmt(l.P95), gfmt(l.P99), gfmt(l.Max))
}

// Recorder accumulates per-request serving latencies, split into the
// latency-critical and bulk traffic classes. It is safe for concurrent use:
// the simulator feeds it from its single event-loop goroutine, but live
// observers and future multi-goroutine backends may Add from many goroutines
// at once (the -race test hammers exactly that).
type Recorder struct {
	mu   sync.Mutex
	lat  []float64
	crit []bool
}

// NewRecorder returns a Recorder with capacity for n latencies.
func NewRecorder(n int) *Recorder {
	return &Recorder{lat: make([]float64, 0, n), crit: make([]bool, 0, n)}
}

// Add records one request's latency and traffic class.
//
//hetlint:hotpath
func (r *Recorder) Add(lat float64, critical bool) {
	r.mu.Lock()
	r.lat = append(r.lat, lat)
	r.crit = append(r.crit, critical)
	r.mu.Unlock()
}

// Count reports how many latencies have been recorded.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.lat)
}

// Summary condenses the recorded population: the overall summary plus the
// per-class splits (a class with no requests summarizes to the zero value).
func (r *Recorder) Summary() (all, critical, bulk LatencySummary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	everything := make([]float64, 0, len(r.lat))
	crit := make([]float64, 0, len(r.lat))
	blk := make([]float64, 0, len(r.lat))
	for i, v := range r.lat {
		everything = append(everything, v)
		if r.crit[i] {
			crit = append(crit, v)
		} else {
			blk = append(blk, v)
		}
	}
	return summarize(everything), summarize(crit), summarize(blk)
}

// summarize sorts its argument in place.
func summarize(lat []float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(lat)
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	return LatencySummary{
		Count: len(lat),
		Mean:  sum / float64(len(lat)),
		P50:   nearestRank(lat, 50),
		P95:   nearestRank(lat, 95),
		P99:   nearestRank(lat, 99),
		Max:   lat[len(lat)-1],
	}
}

// nearestRank returns the p-th percentile of the sorted slice by the
// nearest-rank definition — the ceil(p/100*n)-th smallest value, matching
// internal/sweep's streaming percentile.
func nearestRank(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
