package core

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"hetpipe/internal/data"
	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
	"hetpipe/internal/train"
)

var updateGoldens = flag.Bool("update", false, "rewrite golden testdata files")

// goldenFaultSpec is the fault plan every faulted golden cell runs: a 2x
// straggler on worker 0 plus a crash of the last worker early in the run,
// with a short explicit downtime so the degradation stays in a measurable
// band on every cluster.
const goldenFaultSpec = "slow:w0:x2,crash:w0:mb9:down0.05"

// wspGolden pins one WSP (or BSP, D=0) multi-worker simulation. All floats
// are shortest round-trip decimals, so comparison is bit-exact.
type wspGolden struct {
	Cluster  string `json:"cluster"`
	Model    string `json:"model"`
	Schedule string `json:"schedule"`
	D        int    `json:"d"`
	Faults   string `json:"faults,omitempty"`

	Error            string   `json:"error,omitempty"`
	Nm               int      `json:"nm,omitempty"`
	Aggregate        string   `json:"aggregate,omitempty"`
	PerVW            []string `json:"perVW,omitempty"`
	Elapsed          string   `json:"elapsed,omitempty"`
	Waiting          string   `json:"waiting,omitempty"`
	Idle             string   `json:"idle,omitempty"`
	Pushes           int      `json:"pushes,omitempty"`
	Pulls            int      `json:"pulls,omitempty"`
	MaxClockDistance int      `json:"maxClockDistance,omitempty"`
	FaultInjections  int      `json:"faultInjections,omitempty"`
	// DegradationPct is the throughput lost to the fault plan relative to
	// the fault-free twin of the same cell (faulted cells only).
	DegradationPct string `json:"degradationPct,omitempty"`
	// WeightsDigest fingerprints the final WSP weight vector of a small
	// deterministic training run driven by this deployment's simulated
	// periods and sync times (fault-free, D-bound cells only): any drift in
	// the engine's timing numerics moves the periods and with them the
	// weights.
	WeightsDigest string `json:"weightsDigest,omitempty"`
}

func gftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// digestBits folds float64 bit patterns into an FNV-1a hex digest.
func digestBits(vals []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenDeployment resolves the golden grid's deployment for one cluster and
// schedule: VGG-19, the first feasible allocation policy, Nm=2, batch 32.
func goldenDeployment(cl *hw.Cluster, s sched.Schedule, d int) (*Deployment, error) {
	sys, err := NewSystemSched(cl, model.VGG19(), profile.Default(), 32, s)
	if err != nil {
		return nil, err
	}
	var alloc *hw.Allocation
	for _, pol := range hw.Policies() {
		if a, err := hw.Allocate(cl, pol); err == nil {
			alloc = a
			break
		}
	}
	if alloc == nil {
		return nil, fmt.Errorf("no feasible allocation policy")
	}
	return sys.Deploy(alloc, 2, d, PlacementDefault)
}

// weightsDigest runs a small deterministic logistic-regression WSP training
// job whose timing comes from the deployment's simulated periods and sync
// times, and fingerprints the final global weight vector.
func weightsDigest(dep *Deployment) (string, error) {
	ds, err := data.SyntheticClassification(7, 256, 8, 3, 0.1)
	if err != nil {
		return "", err
	}
	trainSet, evalSet, err := ds.Split(0.75)
	if err != nil {
		return "", err
	}
	task, err := train.NewLogReg(trainSet, evalSet, 16)
	if err != nil {
		return "", err
	}
	n := len(dep.VWs)
	periods := make([]float64, n)
	fill := make([]float64, n)
	for i, vp := range dep.VWs {
		periods[i] = vp.Period
		fill[i] = vp.FillLatency
	}
	stats, err := train.RunWSP(train.WSPConfig{
		Task: task, Workers: n, SLocal: dep.SLocal(), D: dep.D, LR: 0.1,
		Periods: periods, FillLatency: fill,
		PushTime: dep.PushTime, PullTime: dep.PullTime,
		Seed: 11, MaxMinibatches: 12, EvalEvery: 12 * n,
	})
	if err != nil {
		return "", err
	}
	return digestBits(stats.FinalWeights), nil
}

// goldenWSPRuns simulates the golden grid: every schedule on every catalog
// cluster, at D=0 (the BSP-like bound) and D=4 (WSP proper), fault-free and
// under goldenFaultSpec.
func goldenWSPRuns(t *testing.T) []wspGolden {
	t.Helper()
	plan, err := fault.Parse(goldenFaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	var out []wspGolden
	for _, ci := range hw.ClusterCatalog() {
		cl, err := hw.ClusterByName(ci.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range sched.Names() {
			s, err := sched.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range []int{0, 4} {
				var base float64
				for _, spec := range []string{"", goldenFaultSpec} {
					g := wspGolden{Cluster: ci.Name, Model: "vgg19", Schedule: name, D: d, Faults: spec}
					dep, err := goldenDeployment(cl, s, d)
					if err != nil {
						g.Error = err.Error()
						out = append(out, g)
						continue
					}
					fp := plan
					if spec == "" {
						fp = nil
					}
					mr, err := dep.SimulateWSPFaults(context.Background(), dep.DefaultMinibatches(), 2*dep.Nm, nil, fp, 2)
					if err != nil {
						g.Error = err.Error()
						out = append(out, g)
						continue
					}
					g.Nm = dep.Nm
					g.Aggregate = gftoa(mr.Aggregate)
					for _, v := range mr.PerVW {
						g.PerVW = append(g.PerVW, gftoa(v))
					}
					g.Elapsed = gftoa(mr.Elapsed)
					g.Waiting = gftoa(mr.Waiting)
					g.Idle = gftoa(mr.Idle)
					g.Pushes = mr.Pushes
					g.Pulls = mr.Pulls
					g.MaxClockDistance = mr.MaxClockDistance
					g.FaultInjections = mr.FaultInjections
					if spec == "" {
						base = mr.Aggregate
						if wd, err := weightsDigest(dep); err != nil {
							g.Error = err.Error()
						} else {
							g.WeightsDigest = wd
						}
					} else if base > 0 {
						g.DegradationPct = gftoa((base - mr.Aggregate) / base * 100)
					}
					out = append(out, g)
				}
			}
		}
	}
	return out
}

// TestWSPGoldens pins the full WSP simulation surface — aggregate and per-VW
// throughput, waiting/idle decomposition, protocol counters, fault-plan
// degradation, and the final weights of a deployment-timed training run — to
// the values the pre-refactor container/heap engine produced, for every
// schedule x catalog cluster x {BSP (D=0), WSP (D=4)} x {fault-free,
// goldenFaultSpec}. The pooled indexed engine must reproduce every cell bit
// for bit.
func TestWSPGoldens(t *testing.T) {
	got := goldenWSPRuns(t)
	path := filepath.Join("testdata", "wsp_goldens.json")
	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (generate with -update)", err)
	}
	var want []wspGolden
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden entries = %d, want %d (regenerate with -update only for deliberate physics changes)", len(got), len(want))
	}
	for i := range want {
		if !goldenEqual(got[i], want[i]) {
			t.Errorf("golden mismatch for %s/%s/d%d/%q:\n  got  %+v\n  want %+v",
				want[i].Cluster, want[i].Schedule, want[i].D, want[i].Faults, got[i], want[i])
		}
	}
}

// goldenEqual compares two cells through their canonical JSON forms
// (wspGolden is not comparable with == because of the PerVW slice).
func goldenEqual(a, b wspGolden) bool {
	aj, errA := json.Marshal(a)
	bj, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(aj) == string(bj)
}
