package core

import (
	"fmt"

	"hetpipe/internal/allreduce"
	"hetpipe/internal/hw"
)

// HorovodResult summarizes the all-reduce BSP baseline.
type HorovodResult struct {
	// Workers lists the GPUs that can hold the whole model; GPUs whose
	// memory is too small are excluded (the paper runs ResNet-152 Horovod
	// on only 12 of the 16 GPUs for this reason).
	Workers []*hw.GPU
	// Excluded lists the GPUs that cannot participate.
	Excluded []*hw.GPU
	// Throughput is the aggregate samples/sec: every iteration processes
	// one minibatch per worker and takes (slowest compute + all-reduce).
	Throughput float64
	// IterationTime decomposes into the straggler-paced compute time and
	// the ring all-reduce time.
	ComputeTime, AllReduceTime float64
	// CrossNodeBytesPerWorker is the one-way all-reduce wire volume per
	// iteration per worker: (N-1)/N * parameter bytes (the paper's 515 MB
	// figure for VGG-19 on 16 GPUs).
	CrossNodeBytesPerWorker int64
}

// Horovod evaluates the DP baseline on a set of GPUs (all cluster GPUs when
// gpus is nil): BSP with ring all-reduce over InfiniBand, each worker
// processing the whole model. The slowest included GPU paces every
// iteration — the straggler effect WSP is designed to avoid.
func (s *System) Horovod(gpus []*hw.GPU) (*HorovodResult, error) {
	if gpus == nil {
		gpus = s.Cluster.GPUs()
	}
	res := &HorovodResult{}
	footprint := s.Model.TrainingFootprintBytes(s.Batch)
	for _, g := range gpus {
		if footprint > g.Type.MemoryBytes {
			res.Excluded = append(res.Excluded, g)
			continue
		}
		res.Workers = append(res.Workers, g)
	}
	if len(res.Workers) == 0 {
		return nil, fmt.Errorf("core: no GPU can hold %s (footprint %d bytes)", s.Model.Name, footprint)
	}
	slowest := 0.0
	for _, g := range res.Workers {
		t, err := s.Perf.WholeModelTime(s.Model, g.Type, s.Batch)
		if err != nil {
			return nil, err
		}
		if t > slowest {
			slowest = t
		}
	}
	n := len(res.Workers)
	res.ComputeTime = slowest
	res.AllReduceTime = allreduce.Time(s.Model.ParamBytes(), n, s.Perf.IB)
	res.Throughput = float64(n*s.Batch) / (res.ComputeTime + res.AllReduceTime)
	res.CrossNodeBytesPerWorker = allreduce.BusBandwidthVolume(s.Model.ParamBytes(), n) / 2
	return res, nil
}

// HorovodPeriods returns each included worker's standalone per-minibatch
// compute time — the inputs the numeric BSP trainer needs.
func (s *System) HorovodPeriods(gpus []*hw.GPU) (periods []float64, allReduceTime float64, err error) {
	hr, err := s.Horovod(gpus)
	if err != nil {
		return nil, 0, err
	}
	for _, g := range hr.Workers {
		t, err := s.Perf.WholeModelTime(s.Model, g.Type, s.Batch)
		if err != nil {
			return nil, 0, err
		}
		periods = append(periods, t)
	}
	return periods, hr.AllReduceTime, nil
}
