// Package core is HetPipe itself: it assembles the substrates into the
// system of Figure 2. Given a cluster, a DNN model, and a resource
// allocation policy, it builds virtual workers, partitions the model onto
// each (Section 7), chooses the number of concurrent minibatches Nm
// (Section 4), and simulates data parallelism across the virtual workers
// under the WSP synchronization model (Section 5) against parameter servers
// with either the default round-robin or the ED-local shard placement.
// It also provides the Horovod (all-reduce BSP) baseline the paper compares
// against.
package core

import (
	"fmt"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/partition"
	"hetpipe/internal/pipeline"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// System bundles the fixed ingredients of an experiment.
type System struct {
	Cluster *hw.Cluster
	Model   *model.Model
	Perf    *profile.Perf
	Batch   int
	// Schedule is the pipeline execution discipline every virtual worker
	// runs; nil means sched.Default() (hetpipe-fifo, the paper's own). It
	// shapes both the partitioner's memory model and the simulated task
	// graph.
	Schedule sched.Schedule
	// Interleave is the partitioner's interleave degree V: each stage is cut
	// into V chunks forming len(stages)*V virtual stages. 0 or 1 keeps the
	// classic contiguous placement; V > 1 requires a schedule with
	// SupportsInterleave (currently "interleaved").
	Interleave int
}

// NewSystem validates and bundles the ingredients, under the default
// hetpipe-fifo schedule; assign Schedule (or use NewSystemSched) to deploy
// another discipline.
func NewSystem(c *hw.Cluster, m *model.Model, perf *profile.Perf, batch int) (*System, error) {
	if c == nil || m == nil || perf == nil {
		return nil, fmt.Errorf("core: nil system ingredient")
	}
	if batch < 1 {
		return nil, fmt.Errorf("core: batch must be >= 1, got %d", batch)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &System{Cluster: c, Model: m, Perf: perf, Batch: batch}, nil
}

// NewSystemSched is NewSystem with an explicit pipeline schedule.
func NewSystemSched(c *hw.Cluster, m *model.Model, perf *profile.Perf, batch int, s sched.Schedule) (*System, error) {
	sys, err := NewSystem(c, m, perf, batch)
	if err != nil {
		return nil, err
	}
	sys.Schedule = s
	return sys, nil
}

// schedule resolves the system's schedule, defaulting to hetpipe-fifo.
func (s *System) schedule() sched.Schedule { return sched.Or(s.Schedule) }

// partitioner builds the schedule-aware partitioner for the system.
func (s *System) partitioner() *partition.Partitioner {
	return &partition.Partitioner{Perf: s.Perf, Sched: s.schedule(), Interleave: s.Interleave}
}

// PlacementKind selects the parameter-shard placement policy (Section 8.1).
type PlacementKind int

const (
	// PlacementDefault spreads layers round-robin over parameter servers on
	// all nodes (the TensorFlow default): most synchronization traffic
	// crosses InfiniBand.
	PlacementDefault PlacementKind = iota
	// PlacementLocal co-locates each stage's parameters with the node that
	// hosts that stage in every virtual worker. Only meaningful under ED,
	// where stage s lives on node s for every VW; synchronization then
	// stays on PCIe.
	PlacementLocal
)

func (p PlacementKind) String() string {
	if p == PlacementLocal {
		return "local"
	}
	return "default"
}

// VWPlan is one virtual worker prepared for execution.
type VWPlan struct {
	VW   *hw.VirtualWorker
	Plan *partition.Plan
	// Throughput is the standalone steady-state rate (samples/sec) at the
	// deployment's Nm, from a solo pipeline simulation.
	Throughput float64
	// Period is seconds per minibatch at steady state (Batch/Throughput).
	Period float64
	// FillLatency approximates injection-to-completion latency (the serial
	// traversal time of the pipeline).
	FillLatency float64
	// MaxUtil is the maximum per-GPU utilization in the solo run.
	MaxUtil float64
}

// Deployment is a ready-to-simulate HetPipe configuration.
type Deployment struct {
	Sys       *System
	VWs       []*VWPlan
	Nm        int
	D         int
	Placement PlacementKind
	// PushTime[w] and PullTime[w] are per-wave parameter synchronization
	// transfer times for virtual worker w.
	PushTime, PullTime []float64
}

// SGlobal returns the deployment's global staleness bound: with wave size Nm
// and clock distance bound D, a minibatch may miss the updates of at most
// (D+1)*Nm + Nm - 2 other minibatches (Section 5.2).
func (d *Deployment) SGlobal() int { return (d.D+1)*d.Nm + d.Nm - 2 }

// ScheduleName reports the pipeline schedule the deployment's virtual
// workers run, e.g. "hetpipe-fifo".
func (d *Deployment) ScheduleName() string { return sched.Or(d.Sys.Schedule).Name() }

// SLocal returns the deployment's local staleness bound, Nm - 1: within a
// virtual worker, minibatch p+1 starts from weights missing at most the Nm-1
// in-flight predecessors' updates (Section 4).
func (d *Deployment) SLocal() int { return d.Nm - 1 }

// SoloVW partitions the model onto one virtual worker at the given Nm and
// simulates its pipeline alone (the Figure 3 experiment). minibatches and
// warmup control the measurement window.
func (s *System) SoloVW(vw *hw.VirtualWorker, nm, minibatches, warmup int) (*VWPlan, *pipeline.Result, error) {
	plan, err := s.partitioner().Partition(s.Cluster, s.Model, vw, nm, s.Batch)
	if err != nil {
		return nil, nil, err
	}
	res, err := pipeline.Run(pipeline.Config{
		Plan: plan, Cluster: s.Cluster, Perf: s.Perf, Schedule: s.Schedule,
		Minibatches: minibatches, Warmup: warmup,
	})
	if err != nil {
		return nil, nil, err
	}
	vp := &VWPlan{
		VW: vw, Plan: plan,
		Throughput:  res.Throughput,
		Period:      float64(s.Batch) / res.Throughput,
		FillLatency: serialTime(plan),
		MaxUtil:     res.MaxGPUUtil,
	}
	return vp, res, nil
}

// serialTime sums stage compute and receive times: the Nm=1 per-minibatch
// latency, used as the pipeline fill latency.
func serialTime(p *partition.Plan) float64 {
	var t float64
	for i := range p.Stages {
		t += p.Stages[i].ExecTime()
	}
	return t
}

// ChooseNm sweeps Nm from 1 to cap (bounded by every virtual worker's Maxm)
// and returns the value maximizing the summed standalone throughput — the
// paper's "Nm is set such that performance is maximized" rule with the
// constraint that every VW uses the same Nm.
func (s *System) ChooseNm(alloc *hw.Allocation, cap int) (int, error) {
	pt := s.partitioner()
	limit := cap
	for _, vw := range alloc.VWs {
		m := pt.MaxNm(s.Cluster, s.Model, vw, s.Batch, cap)
		if m == 0 {
			return 0, fmt.Errorf("core: %s cannot host %s at any Nm", vw.TypeString(), s.Model.Name)
		}
		if m < limit {
			limit = m
		}
	}
	bestNm, bestTp := 0, -1.0
	for nm := 1; nm <= limit; nm++ {
		total := 0.0
		ok := true
		for _, vw := range alloc.VWs {
			vp, _, err := s.SoloVW(vw, nm, measureMB(nm), warmupMB(nm))
			if err != nil {
				ok = false
				break
			}
			total += vp.Throughput
		}
		if ok && total > bestTp {
			bestNm, bestTp = nm, total
		}
	}
	if bestNm == 0 {
		return 0, fmt.Errorf("core: no feasible Nm for %s", s.Model.Name)
	}
	return bestNm, nil
}

func measureMB(nm int) int { return 40 + 10*nm }
func warmupMB(nm int) int  { return 10 + 2*nm }

// Deploy builds a HetPipe deployment over the allocation: one plan per
// virtual worker at a common Nm (chosen automatically when nm == 0), with
// parameter synchronization costs derived from the placement policy.
func (s *System) Deploy(alloc *hw.Allocation, nm, d int, placement PlacementKind) (*Deployment, error) {
	if d < 0 {
		return nil, fmt.Errorf("core: D must be >= 0")
	}
	if len(alloc.VWs) == 0 {
		return nil, fmt.Errorf("core: allocation has no virtual workers")
	}
	if placement == PlacementLocal {
		// Local placement requires every VW to map stage s to the same
		// node, which only ED guarantees.
		k := len(alloc.VWs[0].GPUs)
		for _, vw := range alloc.VWs {
			if len(vw.GPUs) != k {
				return nil, fmt.Errorf("core: local placement requires equal VW sizes")
			}
		}
		for st := 0; st < k; st++ {
			node := alloc.VWs[0].GPUs[st].Node
			for _, vw := range alloc.VWs[1:] {
				if vw.GPUs[st].Node != node {
					return nil, fmt.Errorf("core: local placement requires ED-style stage-to-node alignment")
				}
			}
		}
	}
	if nm == 0 {
		chosen, err := s.ChooseNm(alloc, 8)
		if err != nil {
			return nil, err
		}
		nm = chosen
	}
	dep := &Deployment{Sys: s, Nm: nm, D: d, Placement: placement}
	for _, vw := range alloc.VWs {
		vp, _, err := s.SoloVW(vw, nm, measureMB(nm), warmupMB(nm))
		if err != nil {
			return nil, fmt.Errorf("core: VW %s: %w", vw.TypeString(), err)
		}
		dep.VWs = append(dep.VWs, vp)
	}
	for _, vp := range dep.VWs {
		push, pull := s.syncTimes(vp, placement, len(alloc.VWs))
		dep.PushTime = append(dep.PushTime, push)
		dep.PullTime = append(dep.PullTime, pull)
	}
	return dep, nil
}

// syncTimes estimates the per-wave push and pull transfer times for one
// virtual worker under a placement policy.
//
// Default placement spreads layers round-robin over the per-node parameter
// servers — balancing layer counts, not bytes. The server that draws the
// heaviest layers (VGG-19's 411 MB fc6, say) becomes a hot spot whose NIC
// serves every virtual worker's push and pull over InfiniBand; the per-VW
// sync time is therefore the hot server's transfer time multiplied by the
// VW count. This hot-spot contention is what drops NP/ED/HD below Horovod
// for VGG-19 in Figure 4 while leaving ResNet-152 (whose shards are small
// and even) near Horovod.
//
// Local placement co-locates each stage's parameters with the stage's node:
// synchronization rides PCIe, per stage in parallel, with no cross-node NIC
// to contend on.
func (s *System) syncTimes(vp *VWPlan, placement PlacementKind, nVWs int) (push, pull float64) {
	if placement == PlacementLocal {
		var max float64
		for i := range vp.Plan.Stages {
			st := &vp.Plan.Stages[i]
			var bytes int64
			for ci := range st.Chunks {
				ch := &st.Chunks[ci]
				for li := ch.Lo; li < ch.Hi; li++ {
					bytes += s.Model.Layers[li].WeightBytes()
				}
			}
			t := s.Perf.TransferTime(bytes, hw.LinkPCIe) + float64(bytes)/s.Perf.PSProcBPS
			if t > max {
				max = t
			}
		}
		return max, max
	}
	// Round-robin layers over the node-resident servers, exactly as
	// ps.RoundRobin does, and find the hot server's byte load.
	h := len(s.Cluster.Nodes)
	perServer := make([]int64, h)
	for li := range s.Model.Layers {
		perServer[li%h] += s.Model.Layers[li].WeightBytes()
	}
	var hot int64
	for _, b := range perServer {
		if b > hot {
			hot = b
		}
	}
	// Half the virtual workers' transfers collide on the hot server on
	// average (wave boundaries are correlated but not perfectly aligned).
	t := (s.Perf.TransferTime(hot, hw.LinkInfiniBand) + float64(hot)/s.Perf.PSProcBPS) * float64(nVWs) / 2
	if nVWs == 1 {
		t = s.Perf.TransferTime(hot, hw.LinkInfiniBand) + float64(hot)/s.Perf.PSProcBPS
	}
	return t, t
}

// CrossNodeBytesPerMinibatch accounts the traffic crossing node boundaries
// per minibatch for a deployment: pipeline activations/gradients over
// InfiniBand boundaries plus the parameter synchronization share (per wave,
// amortized over the wave's Nm minibatches). This regenerates the Section
// 8.3 traffic comparison (VGG-19: 103 MB ED-local vs 515 MB Horovod).
func (d *Deployment) CrossNodeBytesPerMinibatch() int64 {
	var act int64
	for _, vp := range d.VWs {
		// Walk the virtual-stage boundaries: for contiguous plans these are
		// the k-1 adjacent stage pairs; interleaved plans add the wrap
		// boundaries from the last GPU back to the first between chunks.
		k := len(vp.Plan.Stages)
		for j := 0; j+1 < vp.Plan.VirtualStages(); j++ {
			if d.Sys.Cluster.LinkBetween(vp.Plan.Stages[j%k].GPU, vp.Plan.Stages[(j+1)%k].GPU) == hw.LinkInfiniBand {
				// Activations forward + gradients backward.
				act += 2 * d.Sys.Model.BoundaryBytes(vp.Plan.ChunkAt(j).Hi-1, d.Sys.Batch)
			}
		}
	}
	act /= int64(len(d.VWs)) // per virtual worker
	var sync int64
	if d.Placement == PlacementDefault {
		h := len(d.Sys.Cluster.Nodes)
		perWave := 2 * d.Sys.Model.ParamBytes() * int64(h-1) / int64(h) // push + pull
		sync = perWave / int64(d.Nm)
	}
	return act + sync
}
