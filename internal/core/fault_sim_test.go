package core

import (
	"context"
	"reflect"
	"testing"

	"hetpipe/internal/fault"
	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/obs"
)

// TestZeroFaultPlanBitIdentical is the golden guard of the fault subsystem:
// an empty (or nil) plan must take exactly the fault-free code path, so every
// field of the result — throughput, per-VW rates, waiting/idle decomposition,
// counts — is bit-identical to SimulateWSPContext's.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 1, PlacementDefault)
	mbs := dep.DefaultMinibatches()

	clean, err := dep.SimulateWSPContext(context.Background(), mbs, 4*dep.Nm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*fault.Plan{nil, {}} {
		faulted, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, nil, plan, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(clean, faulted) {
			t.Fatalf("empty plan diverges from the fault-free run:\nclean:   %+v\nfaulted: %+v", clean, faulted)
		}
	}
}

func TestSlowdownDegradesThroughput(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 1, PlacementDefault)
	mbs := dep.DefaultMinibatches()
	clean, err := dep.SimulateWSP(mbs, 4*dep.Nm)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("slow:w0:x3")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, nil, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Aggregate >= clean.Aggregate {
		t.Errorf("3x straggler did not degrade throughput: %g vs %g", slow.Aggregate, clean.Aggregate)
	}
	if slow.PerVW[0] >= clean.PerVW[0] {
		t.Errorf("straggler VW 0 rate %g not below clean %g", slow.PerVW[0], clean.PerVW[0])
	}
	if slow.FaultInjections == 0 {
		t.Error("no injection recorded")
	}
	// Under D=1 with a continuous straggler, WSP couples the peers to the
	// straggler's pace: their waiting time must grow.
	if slow.Waiting <= clean.Waiting {
		t.Errorf("straggler did not increase waiting: %g vs %g", slow.Waiting, clean.Waiting)
	}
	// The clock-distance bound still holds under faults.
	if slow.MaxClockDistance > dep.D+1 {
		t.Errorf("clock distance %d exceeds D+1", slow.MaxClockDistance)
	}
}

func TestCrashChargesDowntimeAndReplay(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	mbs := dep.DefaultMinibatches()
	clean, err := dep.SimulateWSP(mbs, 4*dep.Nm)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:w1:mb17:down5")
	if err != nil {
		t.Fatal(err)
	}
	// With checkpoints every 2 waves the replay is short...
	ckpt, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, nil, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ... without checkpoints the worker replays from minibatch 1.
	scratch, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, nil, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Elapsed <= clean.Elapsed {
		t.Errorf("crash did not lengthen the run: %g vs %g", ckpt.Elapsed, clean.Elapsed)
	}
	if scratch.Elapsed <= ckpt.Elapsed {
		t.Errorf("scratch replay (%g) not slower than checkpointed replay (%g)", scratch.Elapsed, ckpt.Elapsed)
	}
	if ckpt.Aggregate >= clean.Aggregate {
		t.Errorf("crash did not degrade throughput: %g vs %g", ckpt.Aggregate, clean.Aggregate)
	}
}

func TestStallAndLinkDelays(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	mbs := dep.DefaultMinibatches()
	clean, err := dep.SimulateWSP(mbs, 4*dep.Nm)
	if err != nil {
		t.Fatal(err)
	}
	// The stall targets a clock advance well past the warmup window so the
	// delay lands inside the measured steady state.
	for _, spec := range []string{"stall:s0:c12:30", "link:w0:x8"} {
		plan, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faulted, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, nil, plan, 0)
		if err != nil {
			t.Fatal(err)
		}
		if faulted.Aggregate >= clean.Aggregate {
			t.Errorf("%s did not degrade throughput: %g vs %g", spec, faulted.Aggregate, clean.Aggregate)
		}
		if faulted.FaultInjections == 0 {
			t.Errorf("%s recorded no injection", spec)
		}
	}
}

func TestSimEmitsInjectAndRecoverEvents(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	mbs := dep.DefaultMinibatches()
	plan, err := fault.Parse("crash:w0:mb9:down2,slow:w1:x2")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[obs.Kind]int{}
	var faults []string
	ob := func(e obs.Event) {
		kinds[e.Kind]++
		if e.Kind == obs.KindFaultInject {
			faults = append(faults, e.Fault)
		}
	}
	if _, err := dep.SimulateWSPFaults(context.Background(), mbs, 4*dep.Nm, ob, plan, 2); err != nil {
		t.Fatal(err)
	}
	if kinds[obs.KindFaultInject] != 2 {
		t.Errorf("inject events %d, want 2 (%v)", kinds[obs.KindFaultInject], faults)
	}
	if kinds[obs.KindRecover] != 1 {
		t.Errorf("recover events %d, want 1", kinds[obs.KindRecover])
	}
}

func TestBadFaultPlanRejected(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	plan, err := fault.Parse("slow:w99:x2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dep.SimulateWSPFaults(context.Background(), dep.DefaultMinibatches(), 4*dep.Nm, nil, plan, 0); err == nil {
		t.Error("simulation accepted a plan naming a worker outside the deployment")
	}
	if _, err := dep.SimulateWSPFaults(context.Background(), dep.DefaultMinibatches(), 4*dep.Nm, nil, nil, -1); err == nil {
		t.Error("simulation accepted a negative checkpoint interval")
	}
}
