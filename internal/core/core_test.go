package core

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
)

func sys(t *testing.T, m *model.Model) *System {
	t.Helper()
	s, err := NewSystem(hw.Paper(), m, profile.Default(), 32)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func deploy(t *testing.T, m *model.Model, policy hw.Policy, nm, d int, pl PlacementKind) *Deployment {
	t.Helper()
	s := sys(t, m)
	alloc, err := hw.Allocate(s.Cluster, policy)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := s.Deploy(alloc, nm, d, pl)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestSoloVWMatchesPipeline(t *testing.T) {
	s := sys(t, model.VGG19())
	alloc, err := hw.AllocateByTypes(s.Cluster, []string{"VVVV"})
	if err != nil {
		t.Fatal(err)
	}
	vp, res, err := s.SoloVW(alloc.VWs[0], 4, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Throughput != res.Throughput {
		t.Errorf("plan throughput %v != result %v", vp.Throughput, res.Throughput)
	}
	if vp.Period <= 0 || vp.FillLatency <= 0 {
		t.Errorf("bad timing: period %v fill %v", vp.Period, vp.FillLatency)
	}
}

func TestChooseNmPicksBestThroughput(t *testing.T) {
	s := sys(t, model.ResNet152())
	alloc, err := hw.Allocate(s.Cluster, hw.EqualDistribution)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := s.ChooseNm(alloc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nm < 2 {
		t.Errorf("chosen Nm = %d, expected pipelining to pay off (>= 2)", nm)
	}
}

func TestDeployBuildsAllVWs(t *testing.T) {
	dep := deploy(t, model.VGG19(), hw.EqualDistribution, 4, 0, PlacementLocal)
	if len(dep.VWs) != 4 {
		t.Fatalf("VWs = %d, want 4", len(dep.VWs))
	}
	for i, vp := range dep.VWs {
		if vp.Plan == nil || vp.Throughput <= 0 {
			t.Errorf("VW %d incomplete: %+v", i, vp)
		}
	}
	// ED gives identical VWs, so identical sync costs.
	for w := 1; w < 4; w++ {
		if dep.PushTime[w] != dep.PushTime[0] {
			t.Errorf("ED push times differ: %v", dep.PushTime)
		}
	}
}

func TestLocalPlacementRequiresED(t *testing.T) {
	s := sys(t, model.VGG19())
	alloc, err := hw.Allocate(s.Cluster, hw.NodePartition)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(alloc, 2, 0, PlacementLocal); err == nil {
		t.Error("local placement under NP should fail (stages map to different nodes per VW)")
	}
}

func TestLocalPlacementCheaperThanDefault(t *testing.T) {
	local := deploy(t, model.VGG19(), hw.EqualDistribution, 4, 0, PlacementLocal)
	def := deploy(t, model.VGG19(), hw.EqualDistribution, 4, 0, PlacementDefault)
	for w := range local.PushTime {
		if local.PushTime[w] >= def.PushTime[w] {
			t.Errorf("VW %d: local push %v >= default %v", w, local.PushTime[w], def.PushTime[w])
		}
	}
}

func TestSimulateWSPBasics(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 4, 0, PlacementLocal)
	res, err := dep.SimulateWSP(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVW) != 4 {
		t.Fatalf("per-VW results = %d, want 4", len(res.PerVW))
	}
	if res.Aggregate <= 0 {
		t.Fatal("aggregate throughput must be positive")
	}
	// ED: all VWs identical, so throughputs should be close.
	for _, tp := range res.PerVW {
		if tp < res.PerVW[0]*0.9 || tp > res.PerVW[0]*1.1 {
			t.Errorf("ED VW throughputs diverge: %v", res.PerVW)
		}
	}
	if res.Pushes == 0 {
		t.Error("no pushes recorded")
	}
	if res.MaxClockDistance > 1 {
		t.Errorf("D=0: clock distance %d > 1", res.MaxClockDistance)
	}
}

func TestSimulateWSPStragglerNP(t *testing.T) {
	// NP: heterogeneous VWs. With D=0 the fast VWs wait for the slow one;
	// aggregate sits near 4x the slowest VW's rate.
	dep := deploy(t, model.VGG19(), hw.NodePartition, 2, 0, PlacementDefault)
	res, err := dep.SimulateWSP(60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Waiting <= 0 {
		t.Error("NP at D=0 should induce waiting")
	}
	if res.Idle > res.Waiting {
		t.Errorf("idle %v exceeds waiting %v", res.Idle, res.Waiting)
	}
	slowest := res.PerVW[0]
	for _, tp := range res.PerVW {
		if tp < slowest {
			slowest = tp
		}
	}
	if res.Aggregate > 4*slowest*1.15 {
		t.Errorf("D=0 aggregate %v should be close to 4x slowest (%v)", res.Aggregate, 4*slowest)
	}
}

func TestLargerDReducesWaiting(t *testing.T) {
	d0 := deploy(t, model.VGG19(), hw.NodePartition, 2, 0, PlacementDefault)
	r0, err := d0.SimulateWSP(60, 10)
	if err != nil {
		t.Fatal(err)
	}
	d4 := deploy(t, model.VGG19(), hw.NodePartition, 2, 4, PlacementDefault)
	r4, err := d4.SimulateWSP(60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Waiting >= r0.Waiting {
		t.Errorf("waiting D=4 (%v) >= D=0 (%v)", r4.Waiting, r0.Waiting)
	}
	if r4.Aggregate < r0.Aggregate {
		t.Errorf("aggregate D=4 (%v) < D=0 (%v): larger D should not hurt throughput", r4.Aggregate, r0.Aggregate)
	}
}

func TestHorovodExcludesWhimpyGPUs(t *testing.T) {
	s := sys(t, model.ResNet152())
	hr, err := s.Horovod(nil)
	if err != nil {
		t.Fatal(err)
	}
	// ResNet-152 does not fit the 6 GB RTX 2060s: 12 workers, 4 excluded.
	if len(hr.Workers) != 12 {
		t.Errorf("workers = %d, want 12", len(hr.Workers))
	}
	if len(hr.Excluded) != 4 {
		t.Errorf("excluded = %d, want 4", len(hr.Excluded))
	}
	for _, g := range hr.Excluded {
		if g.Type.Code != 'G' {
			t.Errorf("excluded %s, expected only G GPUs", g.Name())
		}
	}
	// VGG-19 fits everywhere.
	s2 := sys(t, model.VGG19())
	hr2, err := s2.Horovod(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr2.Workers) != 16 {
		t.Errorf("VGG-19 workers = %d, want 16", len(hr2.Workers))
	}
}

func TestHorovodStragglerPacing(t *testing.T) {
	s := sys(t, model.VGG19())
	hr, err := s.Horovod(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The slowest GPU is the Quadro P4000 at 56 img/s (anchor): compute
	// time per iteration must be 32/56.
	if want := 32.0 / 56.0; hr.ComputeTime < want*0.99 || hr.ComputeTime > want*1.01 {
		t.Errorf("compute time = %v, want %v (Q-paced)", hr.ComputeTime, want)
	}
	if hr.AllReduceTime <= 0 {
		t.Error("all-reduce time must be positive")
	}
}

func TestHorovodTrafficMatchesPaper(t *testing.T) {
	s := sys(t, model.VGG19())
	hr, err := s.Horovod(nil)
	if err != nil {
		t.Fatal(err)
	}
	mb := float64(hr.CrossNodeBytesPerWorker) / 1e6
	if mb < 500 || mb > 560 {
		t.Errorf("Horovod VGG-19 one-way volume = %.0f MB, paper quotes 515 MB", mb)
	}
}

func TestCrossNodeTrafficEDLocalVGG(t *testing.T) {
	// Section 8.3: under ED-local, VGG-19 moves ~103 MB across nodes per
	// minibatch (activations only; parameters sync locally). Our partition
	// cuts differ from the paper's, so allow a broad band — the check that
	// matters is ED-local << Horovod's 515 MB.
	dep := deploy(t, model.VGG19(), hw.EqualDistribution, 4, 0, PlacementLocal)
	mb := float64(dep.CrossNodeBytesPerMinibatch()) / 1e6
	if mb <= 0 {
		t.Fatal("ED crosses nodes; traffic must be positive")
	}
	if mb > 400 {
		t.Errorf("ED-local VGG-19 traffic = %.0f MB/minibatch, want well under Horovod's 515", mb)
	}
	// Default placement adds parameter traffic on top.
	depDef := deploy(t, model.VGG19(), hw.EqualDistribution, 4, 0, PlacementDefault)
	if depDef.CrossNodeBytesPerMinibatch() <= dep.CrossNodeBytesPerMinibatch() {
		t.Error("default placement should move more bytes than local")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, model.VGG19(), profile.Default(), 32); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := NewSystem(hw.Paper(), model.VGG19(), profile.Default(), 0); err == nil {
		t.Error("zero batch accepted")
	}
}
