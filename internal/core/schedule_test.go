package core

import (
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/profile"
	"hetpipe/internal/sched"
)

// deploySched builds a paper-cluster ED deployment of vgg19 under a schedule.
func deploySched(t *testing.T, s sched.Schedule, nm, d int) *Deployment {
	t.Helper()
	m, err := model.ByName("vgg19")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemSched(hw.Paper(), m, profile.Default(), 32, s)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := hw.Allocate(hw.Paper(), hw.EqualDistribution)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(alloc, nm, d, PlacementDefault)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestWSPGoldenFIFO pins the multi-VW WSP co-simulation under hetpipe-fifo
// to the exact numbers the pre-refactor executor produced (vgg19, paper
// cluster, ED, Nm=2, D=1, 48 minibatches per VW, warmup 8): the schedule
// subsystem must not perturb the paper's own discipline by a single bit.
func TestWSPGoldenFIFO(t *testing.T) {
	dep := deploySched(t, sched.FIFO, 2, 1)
	mr, err := dep.SimulateWSP(48, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Aggregate != 138.10273967868486 {
		t.Errorf("aggregate = %.17g, want 138.10273967868486 (golden)", mr.Aggregate)
	}
	if mr.Waiting != 118.78768489792304 {
		t.Errorf("waiting = %.17g, want 118.78768489792304 (golden)", mr.Waiting)
	}
	if mr.Idle != 104.47736959308784 {
		t.Errorf("idle = %.17g, want 104.47736959308784 (golden)", mr.Idle)
	}
	if mr.Pushes != 96 || mr.Pulls != 88 || mr.MaxClockDistance != 1 {
		t.Errorf("pushes/pulls/maxcd = %d/%d/%d, want 96/88/1 (golden)",
			mr.Pushes, mr.Pulls, mr.MaxClockDistance)
	}
	for w, tp := range mr.PerVW {
		if tp != 34.525684919671214 {
			t.Errorf("perVW[%d] = %.17g, want 34.525684919671214 (golden)", w, tp)
		}
	}
	// A nil schedule resolves to the same discipline.
	if dep.ScheduleName() != sched.NameFIFO {
		t.Errorf("schedule name = %q, want %q", dep.ScheduleName(), sched.NameFIFO)
	}
}

// TestWSPRunsUnderEverySchedule couples all four schedules through the WSP
// protocol end to end: the run completes, throughput is positive, and the
// clock-distance bound holds.
func TestWSPRunsUnderEverySchedule(t *testing.T) {
	for _, name := range sched.Names() {
		s, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		dep := deploySched(t, s, 2, 1)
		if dep.ScheduleName() != name {
			t.Errorf("%s: deployment reports schedule %q", name, dep.ScheduleName())
		}
		mr, err := dep.SimulateWSP(48, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mr.Aggregate <= 0 {
			t.Errorf("%s: aggregate throughput %g, want > 0", name, mr.Aggregate)
		}
		if mr.MaxClockDistance > dep.D+1 {
			t.Errorf("%s: max clock distance %d exceeds D+1 = %d", name, mr.MaxClockDistance, dep.D+1)
		}
	}
}

// TestOverlapDeploymentAtLeastFIFO compares the full WSP deployment under
// overlap against fifo on every catalog cluster that can host vgg19 or
// resnet152: the Section 9 improvement must never lose.
func TestOverlapDeploymentAtLeastFIFO(t *testing.T) {
	for _, ci := range hw.ClusterCatalog() {
		cl, err := hw.ClusterByName(ci.Name)
		if err != nil {
			t.Fatal(err)
		}
		var alloc *hw.Allocation
		for _, pol := range hw.Policies() {
			if a, err := hw.Allocate(cl, pol); err == nil {
				alloc = a
				break
			}
		}
		if alloc == nil {
			t.Fatalf("%s: no feasible allocation policy", ci.Name)
		}
		compared := false
		for _, mn := range []string{"vgg19", "resnet152"} {
			m, err := model.ByName(mn)
			if err != nil {
				t.Fatal(err)
			}
			run := func(s sched.Schedule) (float64, bool) {
				sys, err := NewSystemSched(cl, m, profile.Default(), 32, s)
				if err != nil {
					t.Fatal(err)
				}
				dep, err := sys.Deploy(alloc, 2, 0, PlacementDefault)
				if err != nil {
					return 0, false // model does not fit this cluster
				}
				mr, err := dep.SimulateWSP(48, 8)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", ci.Name, mn, s.Name(), err)
				}
				return mr.Aggregate, true
			}
			fifoTP, ok1 := run(sched.FIFO)
			overlapTP, ok2 := run(sched.Overlap)
			if !ok1 || !ok2 {
				continue
			}
			if overlapTP < fifoTP*(1-1e-12) {
				t.Errorf("%s/%s: overlap aggregate %.6g < fifo %.6g", ci.Name, mn, overlapTP, fifoTP)
			}
			compared = true
		}
		if !compared {
			t.Errorf("%s: no model hosted; overlap-vs-fifo comparison skipped", ci.Name)
		}
	}
}
