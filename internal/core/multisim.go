package core

import (
	"context"
	"fmt"

	"hetpipe/internal/fault"
	"hetpipe/internal/obs"
	"hetpipe/internal/pipeline"
	"hetpipe/internal/sim"
	"hetpipe/internal/wsp"
)

// MultiResult summarizes a data-parallel HetPipe simulation.
type MultiResult struct {
	// Aggregate is the cluster-wide steady-state throughput (samples/sec).
	Aggregate float64
	// PerVW is each virtual worker's measured throughput.
	PerVW []float64
	// Elapsed is the simulated time at the last completion.
	Elapsed float64
	// Waiting is the total time injections were gated on the global clock
	// (the Section 8.4 waiting-time metric), summed over virtual workers.
	Waiting float64
	// Idle is the portion of Waiting during which a virtual worker's
	// pipeline had fully drained (no minibatch in flight).
	Idle float64
	// Pushes counts wave pushes to the parameter servers.
	Pushes int
	// Pulls counts completed pull transfers of the global weights.
	Pulls int
	// MaxClockDistance is the largest clock skew observed.
	MaxClockDistance int
	// FaultInjections counts fault-plan entries that took effect during the
	// run (zero for a fault-free or empty-plan simulation).
	FaultInjections int
}

// vwSync carries the per-VW synchronization state of the multi-VW run.
type vwSync struct {
	pullDone   int  // highest global clock whose pull transfer completed
	pullGoing  bool // a pull transfer is in flight
	blockSince sim.Time
	blocked    bool
	lastDone   sim.Time // time of the VW's most recent completion
}

// DefaultMinibatches returns the simulation budget used when a caller does
// not specify one: 24 waves, raised for large D so the budget always meets
// SimulateWSP's (D+2)-wave minimum.
func (d *Deployment) DefaultMinibatches() int {
	waves := 24
	if min := d.D + 2; min > waves {
		waves = min
	}
	return waves * d.Nm
}

// WithD returns a copy of the deployment under a different clock-distance
// bound. Partition plans, Nm, and the parameter-sync transfer times are all
// D-independent, so the copy shares them with the receiver (they are
// read-only during simulation); only the staleness bounds and the WSP gating
// of subsequent simulations change. This is what lets a sweep resolve one
// deployment per (model, cluster, policy, placement, Nm, batch) family and
// reuse it across every D value of the grid.
func (d *Deployment) WithD(dd int) (*Deployment, error) {
	if dd < 0 {
		return nil, fmt.Errorf("core: D must be >= 0")
	}
	c := *d
	c.D = dd
	return &c, nil
}

// SimulateWSP runs all virtual workers' pipelines on one discrete-event
// engine, coupled through the WSP protocol: per-wave pushes arrive at the
// parameter servers after the push transfer time, the global clock advances
// when the slowest push of a wave arrives, and a gated wave-end minibatch
// additionally waits for its pull transfer. Each virtual worker processes
// minibatchesPerVW minibatches; warmup are excluded from throughput (warmup
// is clamped below the budget, so a deliberately short simulation still
// leaves a measurement window).
func (d *Deployment) SimulateWSP(minibatchesPerVW, warmup int) (*MultiResult, error) {
	return d.SimulateWSPContext(context.Background(), minibatchesPerVW, warmup, nil)
}

// SimulateWSPContext is SimulateWSP with cancellation and streaming
// observation: the event loop polls ctx between events and aborts with
// ctx.Err() when it is cancelled or its deadline passes, and ob (when
// non-nil) receives minibatch completions, push arrivals, pull completions,
// and global-clock advances as they happen in virtual time. The observer is
// called synchronously from the single simulation goroutine.
func (d *Deployment) SimulateWSPContext(ctx context.Context, minibatchesPerVW, warmup int, ob obs.Func) (*MultiResult, error) {
	return d.SimulateWSPFaults(ctx, minibatchesPerVW, warmup, ob, nil, 0)
}

// SimulateWSPFaults is SimulateWSPContext under a fault-injection plan
// (internal/fault). An empty or nil plan takes exactly the fault-free code
// path, so its results are bit-identical to SimulateWSPContext's. A non-empty
// plan shapes the timing model deterministically:
//
//   - a Slowdown multiplies the affected virtual worker's stage-task times
//     over its minibatch range (via pipeline.Config.TaskTime);
//   - a LinkDegrade multiplies the worker's per-wave push and pull transfer
//     times;
//   - a PSStall delays the arrival of every wave push that the stalled clock
//     advance is waiting on;
//   - a Crash charges the crashed worker's first stage task of the crash
//     minibatch with the downtime plus the checkpoint-replay time —
//     (AtMinibatch-1 minus the last checkpoint boundary) minibatches at the
//     worker's bottleneck stage time, where checkpoints sit every
//     checkpointEvery waves (0 = no checkpoints: replay from minibatch 1).
//     In-flight work of other stages is not re-simulated; the crash is a
//     worker-local stall, which is the first-order throughput effect.
//
// Because WSP numerics are timing-independent, faults never change what a
// matching live run computes — only when; the live runtime (internal/cluster)
// executes the same plan's crashes for real and recovers from checkpoints.
// Fault activations are emitted to ob as KindFaultInject/KindRecover events
// and counted in MultiResult.FaultInjections.
func (d *Deployment) SimulateWSPFaults(ctx context.Context, minibatchesPerVW, warmup int, ob obs.Func, plan *fault.Plan, checkpointEvery int) (*MultiResult, error) {
	return d.SimulateWSPFaultsOn(ctx, sim.New(), minibatchesPerVW, warmup, ob, plan, checkpointEvery)
}

// SimulateWSPFaultsOn is SimulateWSPFaults on a caller-owned engine. The
// engine is Reset first, so a warm engine — one that has already grown its
// event arena and heap to a previous simulation's peak — re-simulates without
// re-growing any engine-internal storage. Callers that sweep many scenarios
// (internal/sweep keeps one engine per worker goroutine) amortize those
// allocations across the whole sweep; results are bit-identical to a fresh
// engine's.
func (d *Deployment) SimulateWSPFaultsOn(ctx context.Context, eng *sim.Engine, minibatchesPerVW, warmup int, ob obs.Func, plan *fault.Plan, checkpointEvery int) (*MultiResult, error) {
	eng.Reset()
	n := len(d.VWs)
	if n == 0 {
		return nil, fmt.Errorf("core: empty deployment")
	}
	if checkpointEvery < 0 {
		return nil, fmt.Errorf("core: checkpoint interval must be >= 0, got %d", checkpointEvery)
	}
	fp, err := plan.Materialize(n)
	if err != nil {
		return nil, err
	}
	faulty := !fp.Empty()
	// Every virtual worker must finish on a wave boundary, or its peers
	// would wait forever on a push that never comes. Round up before the
	// minimum check so a budget the round-up satisfies is not rejected.
	if rem := minibatchesPerVW % d.Nm; rem != 0 {
		minibatchesPerVW += d.Nm - rem
	}
	if minibatchesPerVW < d.Nm*(d.D+2) {
		return nil, fmt.Errorf("core: need at least %d minibatches per VW to exercise WSP", d.Nm*(d.D+2))
	}
	if warmup >= minibatchesPerVW {
		warmup = minibatchesPerVW / 2
	}
	params := wsp.Params{SLocal: d.SLocal(), D: d.D, Workers: n}
	coord, err := wsp.NewCoordinator(params)
	if err != nil {
		return nil, err
	}
	eng.SetStepLimit(uint64(n*minibatchesPerVW)*1000 + 1_000_000)

	res := &MultiResult{}
	syncs := make([]*vwSync, n)
	for i := range syncs {
		syncs[i] = &vwSync{}
	}
	pipes := make([]*pipeline.Pipeline, n)

	emit := func(e obs.Event) {
		if ob != nil {
			e.Backend = "sim"
			e.Time = float64(eng.Now())
			ob(e)
		}
	}

	pokeAll := func() {
		for _, p := range pipes {
			if p != nil {
				p.Poke()
			}
		}
	}

	// Fault bookkeeping: per-VW transfer times with link degradations folded
	// in, one-shot injection emissions, and the crash timing model. All of it
	// is inert (and the hooks nil) for an empty plan, so the fault-free path
	// is byte-for-byte the pre-fault simulation.
	pushT := append([]float64(nil), d.PushTime...)
	pullT := append([]float64(nil), d.PullTime...)
	var (
		crashes      = make([]*fault.Crash, n)
		slowEmitted  = make([]bool, n)
		linkEmitted  = make([]bool, n)
		crashCharged = make([]bool, n)
		stallEmitted = make(map[int]bool)
	)
	inject := func(vw int, f string) {
		res.FaultInjections++
		emit(obs.Event{Kind: obs.KindFaultInject, VW: vw, Fault: f})
	}
	if faulty {
		for w := 0; w < n; w++ {
			crashes[w] = fp.CrashFor(w)
			if s := fp.LinkScale(w); s > 1 {
				pushT[w] *= s
				pullT[w] *= s
			}
		}
	}
	// crashExtra is the downtime-plus-replay charge of worker w's crash: the
	// worker is down for the crash downtime and then re-executes every
	// minibatch since its last checkpoint at its bottleneck-stage pace.
	crashExtra := func(w int) float64 {
		c := crashes[w]
		ckptWave := 0
		if checkpointEvery > 0 {
			ckptWave = ((c.AtMinibatch - 1) / d.Nm / checkpointEvery) * checkpointEvery
		}
		replay := float64((c.AtMinibatch-1)-ckptWave*d.Nm) * d.VWs[w].Plan.Bottleneck
		return fault.CrashDowntime(c) + replay
	}
	// started emits the one-shot fault-injection events owed at the moment
	// minibatch mb of VW vw is admitted into the pipeline.
	started := func(vw, mb int) {
		if !faulty {
			return
		}
		if sc := fp.ComputeScale(vw, mb); sc > 1 && !slowEmitted[vw] {
			slowEmitted[vw] = true
			inject(vw, fmt.Sprintf("slow:w%d:x%g", vw, sc))
		}
		if c := crashes[vw]; c != nil && mb == c.AtMinibatch {
			inject(vw, fmt.Sprintf("crash:w%d:mb%d", vw, mb))
		}
	}
	linkInject := func(vw int) {
		if faulty && !linkEmitted[vw] {
			if s := fp.LinkScale(vw); s > 1 {
				linkEmitted[vw] = true
				inject(vw, fmt.Sprintf("link:w%d:x%g", vw, s))
			}
		}
	}

	for w := 0; w < n; w++ {
		w := w
		st := syncs[w]
		crash := crashes[w]
		var taskTime func(p, s int, base float64) float64
		if faulty {
			taskTime = func(p, s int, base float64) float64 {
				out := base * fp.ComputeScale(w, p)
				// The crash charge lands once, on the crashed minibatch's
				// first stage-0 task (its forward) — the worker-local stall.
				if crash != nil && p == crash.AtMinibatch && s == 0 && !crashCharged[w] {
					crashCharged[w] = true
					out += crashExtra(w)
				}
				return out
			}
		}
		cfg := pipeline.Config{
			Plan:        d.VWs[w].Plan,
			Cluster:     d.Sys.Cluster,
			Perf:        d.Sys.Perf,
			Schedule:    d.Sys.Schedule,
			Minibatches: minibatchesPerVW,
			Warmup:      warmup,
			TaskTime:    taskTime,
			InjectGate: func(mb int) bool {
				req := params.RequiredGlobalClock(mb)
				if req == 0 {
					coord.Start(w, mb)
					started(w, mb)
					return true
				}
				if coord.GlobalClock() >= req {
					if st.pullDone >= req {
						if st.blocked {
							res.Waiting += float64(eng.Now() - st.blockSince)
							if pipes[w] != nil && pipes[w].InFlight() == 0 {
								// The pipeline drained while the gate was
								// closed; the tail of the wait was true
								// idle time (the 18%-of-waiting effect of
								// Section 8.4).
								res.Idle += float64(eng.Now() - maxTime(st.blockSince, st.lastDone))
							}
							st.blocked = false
						}
						coord.Start(w, mb)
						started(w, mb)
						return true
					}
					if !st.pullGoing {
						st.pullGoing = true
						linkInject(w)
						target := coord.GlobalClock()
						eng.After(sim.Duration(pullT[w]), "pull", func() {
							st.pullGoing = false
							st.pullDone = target
							res.Pulls++
							emit(obs.Event{Kind: obs.KindPull, VW: w, Clock: target})
							pipes[w].Poke()
						})
					}
				}
				if !st.blocked {
					st.blocked = true
					st.blockSince = eng.Now()
				}
				return false
			},
			OnComplete: func(mb int, at sim.Time) {
				st.lastDone = at
				emit(obs.Event{Kind: obs.KindMinibatch, VW: w, Minibatch: mb, Wave: params.Wave(mb), Clock: coord.GlobalClock()})
				if crash != nil && mb == crash.AtMinibatch {
					// The charged downtime and replay have elapsed inside this
					// completion; the worker is back.
					emit(obs.Event{Kind: obs.KindRecover, VW: w, Minibatch: mb, Fault: fmt.Sprintf("crash:w%d:mb%d", w, mb)})
				}
				if params.IsWaveEnd(mb) {
					res.Pushes++
					wave := params.Wave(mb)
					linkInject(w)
					delay := sim.Duration(pushT[w])
					if faulty {
						if stall := fp.StallDelay(wave + 1); stall > 0 {
							// The stalled shard holds up the advance to clock
							// wave+1, i.e. every wave push it is waiting on.
							delay += sim.Duration(stall)
							if !stallEmitted[wave+1] {
								stallEmitted[wave+1] = true
								inject(-1, fmt.Sprintf("stall:c%d:%g", wave+1, stall))
							}
						}
					}
					eng.After(delay, "push", func() {
						before := coord.GlobalClock()
						coord.Push(w)
						after := coord.GlobalClock()
						emit(obs.Event{Kind: obs.KindPush, VW: w, Wave: wave, Clock: after})
						if after > before {
							emit(obs.Event{Kind: obs.KindClock, VW: -1, Clock: after})
							pokeAll()
						}
					})
				}
			},
		}
		p, err := pipeline.New(eng, cfg)
		if err != nil {
			return nil, err
		}
		pipes[w] = p
	}
	for _, p := range pipes {
		p.Start()
	}
	if err := eng.RunContext(ctx); err != nil {
		return nil, err
	}
	for w, p := range pipes {
		r, err := p.Result()
		if err != nil {
			return nil, fmt.Errorf("core: VW %d: %w", w, err)
		}
		res.PerVW = append(res.PerVW, r.Throughput)
		res.Aggregate += r.Throughput
		if e := float64(r.Elapsed); e > res.Elapsed {
			res.Elapsed = e
		}
	}
	res.MaxClockDistance = coord.MaxClockDistance()
	return res, nil
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
