package core

import (
	"context"
	"testing"

	"hetpipe/internal/hw"
	"hetpipe/internal/model"
	"hetpipe/internal/obs"
)

// The simulator's event stream must arrive in a coherent order: virtual time
// non-decreasing across the whole stream (events come off one engine's loop),
// each VW's minibatch numbers strictly increasing, and the global clock never
// going backwards. This is the contract observers (and the public
// WithObserver adapter) lean on, and the pooled engine rewrite must not have
// perturbed it.
func TestObserverEventOrdering(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	var rec obs.Recorder
	if _, err := dep.SimulateWSPFaults(context.Background(), dep.DefaultMinibatches(), 4*dep.Nm, rec.Func(), nil, 0); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	lastTime := -1.0
	lastClock := -1
	lastMB := map[int]int{}
	perVW := 0
	for i, e := range events {
		if e.Backend != "sim" {
			t.Fatalf("event %d backend = %q, want sim", i, e.Backend)
		}
		if e.Time < lastTime {
			t.Fatalf("event %d time %g < previous %g", i, e.Time, lastTime)
		}
		lastTime = e.Time
		if e.Kind == obs.KindClock {
			if e.Clock < lastClock {
				t.Fatalf("event %d clock %d < previous %d", i, e.Clock, lastClock)
			}
			lastClock = e.Clock
		}
		if e.Kind == obs.KindMinibatch {
			if e.Minibatch != lastMB[e.VW]+1 {
				t.Fatalf("vw %d minibatch %d after %d: not consecutive", e.VW, e.Minibatch, lastMB[e.VW])
			}
			lastMB[e.VW] = e.Minibatch
			perVW++
		}
	}
	if want := len(dep.VWs) * dep.DefaultMinibatches(); perVW != want {
		t.Errorf("minibatch events = %d, want %d", perVW, want)
	}
}

// Fanning the simulator's stream out through obs.Multi must deliver every
// event to every observer in registration order, and both fan-out arms must
// see the identical sequence.
func TestObserverFanOutFromSim(t *testing.T) {
	dep := deploy(t, model.ResNet152(), hw.EqualDistribution, 2, 0, PlacementDefault)
	var a, b obs.Recorder
	interleave := make([]byte, 0, 4096)
	ob := obs.Multi(
		nil,
		func(obs.Event) { interleave = append(interleave, 'a') },
		a.Func(),
		func(obs.Event) { interleave = append(interleave, 'b') },
		b.Func(),
	)
	if _, err := dep.SimulateWSPFaults(context.Background(), dep.DefaultMinibatches(), 4*dep.Nm, ob, nil, 0); err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 || len(ea) != len(eb) {
		t.Fatalf("recorders saw %d and %d events, want equal and non-zero", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs between fan-out arms: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	// Argument order per event: 'a' fires before 'b' for every event.
	if len(interleave) != 2*len(ea) {
		t.Fatalf("interleave saw %d calls, want %d", len(interleave), 2*len(ea))
	}
	for i := 0; i < len(interleave); i += 2 {
		if interleave[i] != 'a' || interleave[i+1] != 'b' {
			t.Fatalf("fan-out order broken at event %d: %q", i/2, interleave[i:i+2])
		}
	}
}
