package train

import (
	"fmt"
	"math"

	"hetpipe/internal/tensor"
)

// Optimizer turns gradients into parameter updates. The co-simulation
// runners use plain SGD internally; Optimizer provides the momentum and
// schedule variants for standalone training studies and the ablation
// benchmarks.
type Optimizer interface {
	// Step writes the update (to be *added* to the weights) for the given
	// gradient into out; t is the 1-based step counter.
	Step(t int, grad tensor.Vector, out tensor.Vector)
}

// SGD is plain stochastic gradient descent with an optional schedule.
type SGD struct {
	LR float64
	// Schedule maps the step counter to a multiplier (nil = constant 1).
	Schedule func(t int) float64
}

// Step implements Optimizer.
func (o *SGD) Step(t int, grad tensor.Vector, out tensor.Vector) {
	lr := o.LR
	if o.Schedule != nil {
		lr *= o.Schedule(t)
	}
	for i := range out {
		out[i] = -lr * grad[i]
	}
}

// Momentum is SGD with heavy-ball momentum.
type Momentum struct {
	LR, Beta float64
	Schedule func(t int) float64
	velocity tensor.Vector
}

// NewMomentum returns a momentum optimizer for the given dimensionality.
func NewMomentum(dim int, lr, beta float64) (*Momentum, error) {
	if beta < 0 || beta >= 1 {
		return nil, fmt.Errorf("train: momentum beta must be in [0,1), got %g", beta)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("train: learning rate must be positive")
	}
	return &Momentum{LR: lr, Beta: beta, velocity: tensor.NewVector(dim)}, nil
}

// Step implements Optimizer: v = beta*v - lr*grad; out = v.
func (o *Momentum) Step(t int, grad tensor.Vector, out tensor.Vector) {
	lr := o.LR
	if o.Schedule != nil {
		lr *= o.Schedule(t)
	}
	for i := range out {
		o.velocity[i] = o.Beta*o.velocity[i] - lr*grad[i]
		out[i] = o.velocity[i]
	}
}

// InverseSqrt is the Theorem 1 schedule: eta_t = 1/sqrt(t).
func InverseSqrt(t int) float64 {
	if t < 1 {
		t = 1
	}
	return 1 / math.Sqrt(float64(t))
}

// StepDecay halves the rate every interval steps — the classic ImageNet
// schedule (Goyal et al.).
func StepDecay(interval int) func(int) float64 {
	return func(t int) float64 {
		return math.Pow(0.5, float64(t/interval))
	}
}

// WarmupThen linearly ramps the rate over warm steps before delegating to
// next (gradual warmup, Goyal et al.).
func WarmupThen(warm int, next func(int) float64) func(int) float64 {
	return func(t int) float64 {
		if t < warm {
			return float64(t+1) / float64(warm)
		}
		if next == nil {
			return 1
		}
		return next(t - warm)
	}
}
