// Package train runs real numeric SGD under the synchronization schedules of
// the paper — WSP (pipelined virtual workers with waves and the clock
// distance bound D), BSP over all-reduce (the Horovod baseline), and SSP —
// and couples each update schedule to simulated wall-clock time
// ("co-simulation"): gradients are real, minibatch durations come from the
// cluster simulator, waiting follows the protocol. The resulting
// accuracy-versus-time curves regenerate Figures 5 and 6.
//
// The default task is multinomial logistic regression on a synthetic
// Gaussian-mixture dataset: convex with bounded (clipped) gradients, exactly
// the setting of the paper's convergence proof (Assumptions 1 and 2).
package train

import (
	"fmt"
	"math"

	"hetpipe/internal/data"
	"hetpipe/internal/tensor"
)

// Task is a differentiable training objective over an indexed minibatch
// stream. Implementations must be safe for concurrent Grad calls with
// distinct out vectors.
type Task interface {
	// Dim is the parameter vector length.
	Dim() int
	// InitWeights returns the starting parameter vector w0.
	InitWeights() tensor.Vector
	// Grad writes the minibatch-b gradient at w into out (len Dim).
	Grad(w tensor.Vector, b int, out tensor.Vector)
	// Loss evaluates the mean training loss at w.
	Loss(w tensor.Vector) float64
	// Accuracy evaluates held-out top-1 accuracy at w, in [0,1].
	Accuracy(w tensor.Vector) float64
}

// LogReg is L2-regularized multinomial logistic regression.
// Parameters are laid out as classes x (dim+1) rows (weights then bias).
type LogReg struct {
	train *data.Dataset
	eval  *data.Dataset
	batch int
	// L2 is the ridge coefficient.
	L2 float64
	// ClipNorm bounds each coordinate of the gradient (Assumption 1's
	// bounded subgradients); zero disables clipping.
	ClipNorm float64
}

// NewLogReg builds the task over a train/eval split.
func NewLogReg(train, eval *data.Dataset, batch int) (*LogReg, error) {
	if train.Classes != eval.Classes || train.Dim != eval.Dim {
		return nil, fmt.Errorf("train: mismatched datasets")
	}
	if batch < 1 || batch > train.Len() {
		return nil, fmt.Errorf("train: bad batch size %d for %d samples", batch, train.Len())
	}
	return &LogReg{train: train, eval: eval, batch: batch, L2: 1e-4, ClipNorm: 5}, nil
}

// Dim implements Task.
func (t *LogReg) Dim() int { return t.train.Classes * (t.train.Dim + 1) }

// InitWeights implements Task: zeros (a deterministic, symmetric start).
func (t *LogReg) InitWeights() tensor.Vector { return tensor.NewVector(t.Dim()) }

// row returns the parameter row of class c as a view: [w_0..w_{d-1}, bias].
func (t *LogReg) row(w tensor.Vector, c int) tensor.Vector {
	d := t.train.Dim + 1
	return w[c*d : (c+1)*d]
}

// logits computes class scores for sample x into out.
func (t *LogReg) logits(w tensor.Vector, x tensor.Vector, out tensor.Vector) {
	for c := 0; c < t.train.Classes; c++ {
		r := t.row(w, c)
		out[c] = r[:len(r)-1].Dot(x) + r[len(r)-1]
	}
}

// Grad implements Task: softmax cross-entropy gradient over minibatch b.
func (t *LogReg) Grad(w tensor.Vector, b int, out tensor.Vector) {
	out.Zero()
	probs := tensor.NewVector(t.train.Classes)
	idx := t.train.Batch(b, t.batch)
	inv := 1 / float64(len(idx))
	for _, i := range idx {
		x := t.train.X[i]
		t.logits(w, x, probs)
		tensor.Softmax(probs)
		for c := 0; c < t.train.Classes; c++ {
			coef := probs[c] * inv
			if c == t.train.Y[i] {
				coef -= inv
			}
			g := t.gradRow(out, c)
			g[:len(g)-1].AXPY(coef, x)
			g[len(g)-1] += coef
		}
	}
	if t.L2 > 0 {
		out.AXPY(t.L2, w)
	}
	if t.ClipNorm > 0 {
		tensor.Clip(out, t.ClipNorm)
	}
}

func (t *LogReg) gradRow(g tensor.Vector, c int) tensor.Vector {
	d := t.train.Dim + 1
	return g[c*d : (c+1)*d]
}

// Loss implements Task: mean cross-entropy over the training set plus the
// ridge term.
func (t *LogReg) Loss(w tensor.Vector) float64 {
	probs := tensor.NewVector(t.train.Classes)
	var sum float64
	for i := range t.train.X {
		t.logits(w, t.train.X[i], probs)
		tensor.Softmax(probs)
		p := probs[t.train.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		sum += -math.Log(p)
	}
	reg := 0.5 * t.L2 * w.Dot(w)
	return sum/float64(len(t.train.X)) + reg
}

// Accuracy implements Task over the held-out set.
func (t *LogReg) Accuracy(w tensor.Vector) float64 {
	probs := tensor.NewVector(t.eval.Classes)
	correct := 0
	for i := range t.eval.X {
		t.logits(w, t.eval.X[i], probs)
		if tensor.Argmax(probs) == t.eval.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(t.eval.X))
}

// DefaultTask builds the standard convergence-study task: 6000 samples,
// 10 classes, 40 dimensions, moderate noise, batch 32, deterministic seed.
func DefaultTask(seed int64) (*LogReg, error) {
	ds, err := data.SyntheticClassification(seed, 6000, 40, 10, 0.35)
	if err != nil {
		return nil, err
	}
	tr, ev, err := ds.Split(0.8)
	if err != nil {
		return nil, err
	}
	return NewLogReg(tr, ev, 32)
}
