package train

import (
	"math"
	"testing"

	"hetpipe/internal/data"
	"hetpipe/internal/tensor"
)

func mlpTask(t *testing.T) *MLP {
	t.Helper()
	ds, err := data.SyntheticClassification(11, 2000, 16, 4, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	tr, ev, err := ds.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLP(tr, ev, 24, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMLPGradientMatchesFiniteDifference(t *testing.T) {
	m := mlpTask(t)
	m.ClipNorm = 0
	w := m.InitWeights()
	g := tensor.NewVector(m.Dim())
	m.Grad(w, 5, g)

	loss := func(w tensor.Vector) float64 {
		idx := m.train.Batch(5, m.batch)
		hid := tensor.NewVector(m.hidden)
		probs := tensor.NewVector(m.train.Classes)
		var sum float64
		for _, i := range idx {
			m.forward(w, m.train.X[i], hid, probs)
			p := probs[m.train.Y[i]]
			if p < 1e-12 {
				p = 1e-12
			}
			sum += -math.Log(p)
		}
		return sum / float64(len(idx))
	}
	const h = 1e-6
	for _, i := range []int{0, 7, m.Dim() / 2, m.Dim() - 1} {
		wp := w.Clone()
		wp[i] += h
		wm := w.Clone()
		wm[i] -= h
		num := (loss(wp) - loss(wm)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("grad[%d] = %g, finite difference %g", i, g[i], num)
		}
	}
}

func TestMLPLearnsUnderWSP(t *testing.T) {
	m := mlpTask(t)
	stats, err := RunWSP(WSPConfig{
		Task: m, Workers: 2, SLocal: 3, D: 1, LR: 0.3,
		Periods: []float64{0.1, 0.11}, Jitter: 0.05, Seed: 5,
		MaxMinibatches: 1500, EvalEvery: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalAccuracy < 0.7 {
		t.Errorf("MLP accuracy under WSP = %.3f, want > 0.7", stats.FinalAccuracy)
	}
}

func TestMLPInitIsDeterministicAndNonZero(t *testing.T) {
	m := mlpTask(t)
	a, b := m.InitWeights(), m.InitWeights()
	var nonzero bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("init not deterministic")
		}
		if a[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("init all zero; hidden units would stay symmetric")
	}
}

func TestMLPValidation(t *testing.T) {
	ds, _ := data.SyntheticClassification(1, 100, 4, 2, 0.4)
	tr, ev, _ := ds.Split(0.5)
	if _, err := NewMLP(tr, ev, 0, 8, 1); err == nil {
		t.Error("zero hidden units accepted")
	}
	if _, err := NewMLP(tr, ev, 4, 0, 1); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestSGDOptimizerStep(t *testing.T) {
	o := &SGD{LR: 0.5}
	out := tensor.NewVector(2)
	o.Step(1, tensor.Vector{2, -4}, out)
	if out[0] != -1 || out[1] != 2 {
		t.Errorf("sgd step = %v", out)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	o, err := NewMomentum(1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewVector(1)
	o.Step(1, tensor.Vector{1}, out) // v = -1
	if out[0] != -1 {
		t.Fatalf("step 1 = %v", out[0])
	}
	o.Step(2, tensor.Vector{1}, out) // v = -0.5 - 1 = -1.5
	if out[0] != -1.5 {
		t.Fatalf("step 2 = %v", out[0])
	}
	if _, err := NewMomentum(1, 1, 1.0); err == nil {
		t.Error("beta=1 accepted")
	}
	if _, err := NewMomentum(1, 0, 0.5); err == nil {
		t.Error("lr=0 accepted")
	}
}

func TestSchedules(t *testing.T) {
	if got := InverseSqrt(4); got != 0.5 {
		t.Errorf("InverseSqrt(4) = %v, want 0.5", got)
	}
	if got := InverseSqrt(0); got != 1 {
		t.Errorf("InverseSqrt(0) = %v, want 1 (clamped)", got)
	}
	sd := StepDecay(10)
	if sd(5) != 1 || sd(10) != 0.5 || sd(25) != 0.25 {
		t.Errorf("step decay = %v %v %v", sd(5), sd(10), sd(25))
	}
	wu := WarmupThen(10, StepDecay(10))
	if wu(0) != 0.1 {
		t.Errorf("warmup(0) = %v, want 0.1", wu(0))
	}
	if wu(9) != 1.0 {
		t.Errorf("warmup(9) = %v, want 1.0", wu(9))
	}
	if wu(20) != 0.5 {
		t.Errorf("warmup(20) = %v, want 0.5 (decayed)", wu(20))
	}
	wn := WarmupThen(5, nil)
	if wn(10) != 1 {
		t.Errorf("warmup-then-nil = %v, want 1", wn(10))
	}
}

// SGD with schedule applied through the WSP runner is exercised indirectly
// by convergence.Measure; here confirm an Optimizer can drive a plain loop.
func TestOptimizerDrivesTraining(t *testing.T) {
	lt := task(t)
	w := lt.InitWeights()
	g := tensor.NewVector(lt.Dim())
	up := tensor.NewVector(lt.Dim())
	opt, err := NewMomentum(lt.Dim(), 0.2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	before := lt.Loss(w)
	for i := 0; i < 300; i++ {
		lt.Grad(w, i, g)
		opt.Step(i+1, g, up)
		w.AddInPlace(up)
	}
	after := lt.Loss(w)
	if after >= before {
		t.Errorf("momentum training did not reduce loss: %g -> %g", before, after)
	}
}
