package train

import (
	"math"
	"testing"

	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

func task(t *testing.T) *LogReg {
	t.Helper()
	lt, err := DefaultTask(7)
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestLogRegGradientMatchesFiniteDifference(t *testing.T) {
	lt := task(t)
	lt.ClipNorm = 0 // clipping would break the finite-difference check
	w := lt.InitWeights()
	for i := range w {
		w[i] = 0.01 * float64(i%7)
	}
	g := tensor.NewVector(lt.Dim())
	lt.Grad(w, 3, g)

	// Build the same minibatch loss explicitly through Loss on a task whose
	// training set is just that batch — instead, use directional finite
	// differences of the batch objective reconstructed via Grad's own
	// definition: check d/dh of f(w+h*e_i) ~ g_i for the full-batch case.
	// Use a tiny task where batch == dataset for exactness.
	probeDims := []int{0, 5, 17, lt.Dim() - 1}
	const h = 1e-6
	for _, i := range probeDims {
		wp := w.Clone()
		wp[i] += h
		wm := w.Clone()
		wm[i] -= h
		num := (batchLoss(lt, wp, 3) - batchLoss(lt, wm, 3)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("grad[%d] = %g, finite difference %g", i, g[i], num)
		}
	}
}

// batchLoss recomputes the minibatch cross-entropy + ridge objective that
// Grad differentiates.
func batchLoss(lt *LogReg, w tensor.Vector, b int) float64 {
	idx := lt.train.Batch(b, lt.batch)
	probs := tensor.NewVector(lt.train.Classes)
	var sum float64
	for _, i := range idx {
		lt.logits(w, lt.train.X[i], probs)
		tensor.Softmax(probs)
		p := probs[lt.train.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		sum += -math.Log(p)
	}
	return sum/float64(len(idx)) + 0.5*lt.L2*w.Dot(w)
}

func TestSingleWorkerWSPConverges(t *testing.T) {
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 1, SLocal: 0, D: 0, LR: 0.5,
		Periods: []float64{0.1}, Seed: 1,
		MaxMinibatches: 1500, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalAccuracy < 0.75 {
		t.Errorf("final accuracy = %.3f, want > 0.75", stats.FinalAccuracy)
	}
	first := stats.Loss.Points[0].V
	last := stats.Loss.Points[len(stats.Loss.Points)-1].V
	if last >= first {
		t.Errorf("loss did not decrease: %g -> %g", first, last)
	}
}

func TestPipelinedStalenessStillConverges(t *testing.T) {
	// slocal = 3 (Nm=4): updates apply with delay, convergence must hold
	// (the paper's core claim, Theorem 1).
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 1, SLocal: 3, D: 0, LR: 0.3,
		Periods: []float64{0.1}, Seed: 1,
		MaxMinibatches: 2000, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalAccuracy < 0.75 {
		t.Errorf("final accuracy with slocal=3: %.3f, want > 0.75", stats.FinalAccuracy)
	}
}

func TestMultiWorkerWSPConverges(t *testing.T) {
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 4, SLocal: 3, D: 0, LR: 0.25,
		Periods: []float64{0.1, 0.1, 0.1, 0.1}, Jitter: 0.05, Seed: 2,
		MaxMinibatches: 800, EvalEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalAccuracy < 0.75 {
		t.Errorf("final accuracy = %.3f, want > 0.75", stats.FinalAccuracy)
	}
	if stats.Pushes == 0 {
		t.Error("no wave pushes recorded")
	}
	if stats.MaxClockDistance > 1 {
		t.Errorf("D=0 run saw clock distance %d, want <= 1", stats.MaxClockDistance)
	}
}

func TestWSPWaveAggregationReducesPushes(t *testing.T) {
	// Pushes happen once per wave: minibatches / (slocal+1) per worker.
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 2, SLocal: 3, D: 0, LR: 0.2,
		Periods: []float64{0.1, 0.1}, Seed: 3,
		MaxMinibatches: 400, EvalEvery: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 400 / 4
	if stats.Pushes != want {
		t.Errorf("pushes = %d, want %d (one per wave)", stats.Pushes, want)
	}
}

func TestWSPDeterminism(t *testing.T) {
	lt := task(t)
	cfg := WSPConfig{
		Task: lt, Workers: 3, SLocal: 2, D: 1, LR: 0.2,
		Periods: []float64{0.1, 0.12, 0.15}, Jitter: 0.1, Seed: 11,
		MaxMinibatches: 300, EvalEvery: 100,
	}
	a, err := RunWSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy || a.Elapsed != b.Elapsed || a.Waiting != b.Waiting {
		t.Errorf("nondeterministic runs: %+v vs %+v", a, b)
	}
}

func TestLargerDReducesWaitingWithStraggler(t *testing.T) {
	// One slow worker (NP-like). D=4 must wait less than D=0.
	lt := task(t)
	base := WSPConfig{
		Task: lt, Workers: 4, SLocal: 3, LR: 0.2,
		Periods: []float64{0.08, 0.09, 0.1, 0.2}, Jitter: 0.05, Seed: 5,
		MaxMinibatches: 400, EvalEvery: 200,
	}
	d0 := base
	d0.D = 0
	r0, err := RunWSP(d0)
	if err != nil {
		t.Fatal(err)
	}
	d4 := base
	d4.D = 4
	r4, err := RunWSP(d4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Waiting >= r0.Waiting {
		t.Errorf("waiting: D=4 %.2f >= D=0 %.2f", r4.Waiting, r0.Waiting)
	}
	if r0.Waiting <= 0 {
		t.Error("straggler config should induce waiting at D=0")
	}
	// Pipelining hides most of the wait: idle is a fraction of waiting.
	if r0.Idle > r0.Waiting {
		t.Errorf("idle %.2f exceeds waiting %.2f", r0.Idle, r0.Waiting)
	}
}

func TestLazyPullCreditsOnlyVisibleClock(t *testing.T) {
	// Regression: on a lazy pull the worker used to credit itself with the
	// coordinator's instantaneous clock, which can run ahead of the clock
	// actually visible at simulated time now when pushes have asymmetric
	// latencies — so later pulls it should have paid for were skipped. With
	// only the gate's required clock credited, every gated wave-end pulls:
	// exactly GatedPulls per worker, whatever the transfer times.
	lt := task(t)
	const workers, slocal, d, maxMB = 3, 1, 1, 32
	for _, pushTimes := range [][]float64{
		{0, 0, 0},
		{0.9, 0.05, 0.3}, // strongly asymmetric arrival times
	} {
		stats, err := RunWSP(WSPConfig{
			Task: lt, Workers: workers, SLocal: slocal, D: d, LR: 0.2,
			Periods:  []float64{0.1, 0.14, 0.2},
			PushTime: pushTimes, Seed: 17,
			MaxMinibatches: maxMB, EvalEvery: 1000,
		})
		if err != nil {
			t.Fatal(err)
		}
		params := wsp.Params{SLocal: slocal, D: d, Workers: workers}
		want := workers * params.GatedPulls(maxMB)
		if stats.Pulls != want {
			t.Errorf("push times %v: pulls = %d, want %d", pushTimes, stats.Pulls, want)
		}
	}
}

func TestPullTransferWaitsForWorkerFree(t *testing.T) {
	// Regression for the stale pullReadyAt latch: the pull transfer's start
	// was latched with the slotFreeAt seen on the first gate query and never
	// refreshed, so the pull could "finish" before the worker was free to
	// issue it.
	//
	// Hand-traced schedule (2 workers, Nm=2, D=0, no jitter): worker 1 races
	// ahead (period 0.1); worker 0 (period 1) completes wave 0 at t=2, which
	// is when the global clock becomes visible. Worker 0's minibatch 3 is
	// still in flight until t=3, inside the latched pull window [2, 4). The
	// pull for the gated minibatch 4 must therefore start at t=3, finish at
	// t=5, and complete the run at t=6 — the buggy latch injected at t=4 and
	// finished at t=5.
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 2, SLocal: 1, D: 0, LR: 0.2,
		Periods:  []float64{1, 0.1},
		PullTime: []float64{2, 0}, Seed: 1,
		MaxMinibatches: 4, EvalEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Elapsed-6) > 1e-9 {
		t.Errorf("elapsed = %g, want 6 (pull start must track slotFreeAt)", stats.Elapsed)
	}
}

func TestWSPNumericsIndependentOfTiming(t *testing.T) {
	// The co-simulation separates timing from numerics: periods, jitter, and
	// transfer times decide WHEN things happen, while the update schedule —
	// snapshots at logical lag Nm, pulls of clock-versioned prefixes — is a
	// pure function of the protocol parameters. Two runs with wildly
	// different timing must produce bit-identical weights; this is also what
	// lets the live sharded-PS runtime (internal/cluster) reproduce the
	// simulator's trajectory.
	lt := task(t)
	base := WSPConfig{
		Task: lt, Workers: 3, SLocal: 2, D: 1, LR: 0.2, Seed: 5,
		MaxMinibatches: 60, EvalEvery: 25,
	}
	a := base
	a.Periods = []float64{0.1, 0.1, 0.1}
	ra, err := RunWSP(a)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Periods = []float64{0.05, 0.4, 1.3}
	b.Jitter = 0.2
	b.PushTime = []float64{0.3, 0, 0.9}
	b.PullTime = []float64{0.2, 0.7, 0}
	rb, err := RunWSP(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Minibatches != rb.Minibatches || ra.Pushes != rb.Pushes || ra.Pulls != rb.Pulls {
		t.Fatalf("counts diverge across timings: %d/%d/%d vs %d/%d/%d",
			ra.Minibatches, ra.Pushes, ra.Pulls, rb.Minibatches, rb.Pushes, rb.Pulls)
	}
	for i := range ra.FinalWeights {
		if ra.FinalWeights[i] != rb.FinalWeights[i] {
			t.Fatalf("weights diverge at %d: %g vs %g", i, ra.FinalWeights[i], rb.FinalWeights[i])
		}
	}
	if ra.Elapsed == rb.Elapsed {
		t.Error("timing configs were supposed to differ")
	}
}

func TestNoDuplicateFinalEvalPoint(t *testing.T) {
	// Regression: when the last scheduled evaluation already ran at the final
	// simulated time, RunWSP appended a second, identical point.
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 2, SLocal: 1, D: 0, LR: 0.2,
		Periods: []float64{0.1, 0.1}, Seed: 3,
		MaxMinibatches: 8, EvalEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(stats.Accuracy.Points), stats.Minibatches; got != want {
		t.Errorf("eval points = %d, want %d (one per completion, no duplicate tail)", got, want)
	}
}

func TestWSPRespectsDistanceBound(t *testing.T) {
	lt := task(t)
	for _, d := range []int{0, 2} {
		stats, err := RunWSP(WSPConfig{
			Task: lt, Workers: 3, SLocal: 1, D: d, LR: 0.2,
			Periods: []float64{0.05, 0.1, 0.3}, Seed: 9,
			MaxMinibatches: 200, EvalEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.MaxClockDistance > d+1 {
			t.Errorf("D=%d: observed distance %d > %d", d, stats.MaxClockDistance, d+1)
		}
	}
}

func TestBSPConverges(t *testing.T) {
	lt := task(t)
	stats, err := RunBSP(BSPConfig{
		Task: lt, Periods: []float64{0.1, 0.1, 0.1, 0.1},
		AllReduceTime: 0.02, LR: 0.25, Jitter: 0.05, Seed: 4,
		MaxIterations: 250, EvalEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalAccuracy < 0.75 {
		t.Errorf("BSP final accuracy = %.3f, want > 0.75", stats.FinalAccuracy)
	}
}

func TestBSPStragglerSlowsWallClock(t *testing.T) {
	lt := task(t)
	fast, err := RunBSP(BSPConfig{
		Task: lt, Periods: []float64{0.1, 0.1, 0.1, 0.1},
		AllReduceTime: 0.01, LR: 0.25, Seed: 4, MaxIterations: 100, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunBSP(BSPConfig{
		Task: lt, Periods: []float64{0.1, 0.1, 0.1, 0.3},
		AllReduceTime: 0.01, LR: 0.25, Seed: 4, MaxIterations: 100, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Elapsed <= fast.Elapsed {
		t.Errorf("straggler run %.2fs not slower than uniform %.2fs", slow.Elapsed, fast.Elapsed)
	}
	// The straggler forces everyone to its pace: 0.3 per iteration.
	if slow.Elapsed < 100*0.3 {
		t.Errorf("BSP elapsed %.2f, want >= %.2f (slowest-paced)", slow.Elapsed, 100*0.3)
	}
}

func TestSSPConvergesAndOutpacesBSPWithStraggler(t *testing.T) {
	lt := task(t)
	periods := []float64{0.1, 0.1, 0.1, 0.25}
	bsp, err := RunBSP(BSPConfig{
		Task: lt, Periods: periods, AllReduceTime: 0.01, LR: 0.2, Seed: 6,
		MaxIterations: 200, EvalEvery: 40, TargetAccuracy: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ssp, err := RunSSP(SSPConfig{
		Task: lt, Periods: periods, Staleness: 3, SyncTime: 0.01, LR: 0.2, Seed: 6,
		MaxIterations: 200, EvalEvery: 40, TargetAccuracy: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ssp.ReachedTarget {
		t.Fatalf("SSP did not reach target (final %.3f)", ssp.FinalAccuracy)
	}
	if bsp.ReachedTarget && ssp.TimeToTarget >= bsp.TimeToTarget {
		t.Errorf("SSP (%.1fs) not faster than BSP (%.1fs) under straggler", ssp.TimeToTarget, bsp.TimeToTarget)
	}
}

func TestConfigValidation(t *testing.T) {
	lt := task(t)
	bad := []WSPConfig{
		{Workers: 1, SLocal: 0, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 1},             // nil task
		{Task: lt, Workers: 0, LR: 0.1, Periods: nil, MaxMinibatches: 1, EvalEvery: 1},                       // no workers
		{Task: lt, Workers: 1, LR: 0, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 1},                // lr
		{Task: lt, Workers: 2, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 1},              // period len
		{Task: lt, Workers: 1, LR: 0.1, Periods: []float64{-1}, MaxMinibatches: 1, EvalEvery: 1},             // period sign
		{Task: lt, Workers: 1, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 0, EvalEvery: 1},              // budget
		{Task: lt, Workers: 1, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 0},              // eval
		{Task: lt, Workers: 1, SLocal: -1, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 1},  // slocal
		{Task: lt, Workers: 1, Jitter: 1.5, LR: 0.1, Periods: []float64{1}, MaxMinibatches: 1, EvalEvery: 1}, // jitter
	}
	for i, cfg := range bad {
		if _, err := RunWSP(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := RunBSP(BSPConfig{Task: lt, Periods: []float64{1}, LR: 0.1, MaxIterations: 1, EvalEvery: 1, AllReduceTime: -1}); err == nil {
		t.Error("negative all-reduce time accepted")
	}
	if _, err := RunSSP(SSPConfig{Task: lt, Periods: []float64{1}, Staleness: -1, LR: 0.1, MaxIterations: 1, EvalEvery: 1}); err == nil {
		t.Error("negative staleness accepted")
	}
}

func TestTargetAccuracyStopsEarly(t *testing.T) {
	lt := task(t)
	stats, err := RunWSP(WSPConfig{
		Task: lt, Workers: 2, SLocal: 1, D: 0, LR: 0.4,
		Periods: []float64{0.1, 0.1}, Seed: 8,
		MaxMinibatches: 5000, EvalEvery: 50, TargetAccuracy: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ReachedTarget {
		t.Fatalf("never reached 0.7 (final %.3f)", stats.FinalAccuracy)
	}
	if stats.Minibatches >= 2*5000 {
		t.Error("run did not stop early")
	}
	if stats.TimeToTarget <= 0 || stats.TimeToTarget > stats.Elapsed {
		t.Errorf("time to target %.2f outside (0, %.2f]", stats.TimeToTarget, stats.Elapsed)
	}
}
