package train

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/metrics"
	"hetpipe/internal/tensor"
)

// BSPConfig parameterizes the Horovod baseline: N single-GPU data-parallel
// workers in lockstep. Every iteration, each worker computes a gradient on
// its own minibatch at the shared weights, the gradients are averaged by
// ring all-reduce, and the step applies synchronously. Iteration time is the
// slowest worker's compute (the straggler effect of BSP on heterogeneous
// GPUs) plus the all-reduce time.
type BSPConfig struct {
	Task Task
	// Periods[w] is worker w's seconds per minibatch (whole model on one
	// GPU; workers that cannot hold the model are simply excluded, as the
	// paper excludes the 6 GB GPUs for ResNet-152).
	Periods []float64
	// AllReduceTime is the per-iteration gradient synchronization cost.
	AllReduceTime float64
	// LR is the SGD step size (applied to the averaged gradient).
	LR float64
	// Jitter is the relative per-iteration duration noise.
	Jitter float64
	Seed   int64
	// MaxIterations bounds the run; each iteration consumes one minibatch
	// per worker.
	MaxIterations int
	// EvalEvery evaluates accuracy every that many iterations.
	EvalEvery int
	// TargetAccuracy stops the run early once reached (0 disables).
	TargetAccuracy float64
	// TargetLoss stops the run early once the training loss drops to it
	// (0 disables).
	TargetLoss float64
}

func (c *BSPConfig) validate() error {
	switch {
	case c.Task == nil:
		return fmt.Errorf("train: nil task")
	case len(c.Periods) < 1:
		return fmt.Errorf("train: need at least one worker")
	case c.LR <= 0:
		return fmt.Errorf("train: learning rate must be positive")
	case c.MaxIterations < 1:
		return fmt.Errorf("train: zero iteration budget")
	case c.EvalEvery < 1:
		return fmt.Errorf("train: EvalEvery must be >= 1")
	case c.AllReduceTime < 0:
		return fmt.Errorf("train: negative all-reduce time")
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("train: jitter must be in [0,1)")
	}
	for w, p := range c.Periods {
		if p <= 0 {
			return fmt.Errorf("train: worker %d period %g", w, p)
		}
	}
	return nil
}

// RunBSP executes the Horovod baseline and reports the same statistics as
// RunWSP (Waiting aggregates straggler time: the gap between each worker's
// own compute time and the barrier).
func RunBSP(cfg BSPConfig) (*RunStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Periods)
	w := cfg.Task.InitWeights()
	grad := tensor.NewVector(len(w))
	sum := tensor.NewVector(len(w))
	rng := rand.New(rand.NewSource(cfg.Seed))

	stats := &RunStats{Accuracy: metrics.Series{Name: "accuracy"}, Loss: metrics.Series{Name: "loss"}}
	now := 0.0

	evaluate := func(t float64) bool {
		acc := cfg.Task.Accuracy(w)
		loss := cfg.Task.Loss(w)
		stats.Accuracy.Append(t, acc)
		stats.Loss.Append(t, loss)
		stats.FinalAccuracy = acc
		stats.FinalLoss = loss
		hitAcc := cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy
		hitLoss := cfg.TargetLoss > 0 && loss <= cfg.TargetLoss
		if (hitAcc || hitLoss) && !stats.ReachedTarget {
			stats.ReachedTarget = true
			stats.TimeToTarget = t
			return true
		}
		return false
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		sum.Zero()
		slowest := 0.0
		var durations []float64
		for rank := 0; rank < n; rank++ {
			d := cfg.Periods[rank]
			if cfg.Jitter > 0 {
				d *= 1 + cfg.Jitter*(2*rng.Float64()-1)
			}
			durations = append(durations, d)
			if d > slowest {
				slowest = d
			}
			cfg.Task.Grad(w, iter*n+rank, grad)
			sum.AddInPlace(grad)
		}
		for _, d := range durations {
			stats.Waiting += slowest - d // straggler wait at the barrier
		}
		stats.Idle = stats.Waiting // no pipeline to hide behind: all waiting is idle
		now += slowest + cfg.AllReduceTime
		// Synchronous step on the averaged gradient.
		w.AXPY(-cfg.LR/float64(n), sum)
		stats.Minibatches += n

		if (iter+1)%cfg.EvalEvery == 0 {
			if evaluate(now) {
				break
			}
		}
	}
	stats.Elapsed = now
	if len(stats.Accuracy.Points) == 0 || !stats.ReachedTarget {
		evaluate(now)
	}
	return stats, nil
}

// SSPConfig parameterizes a Stale Synchronous Parallel baseline: N
// single-GPU workers pushing every iteration, each allowed to lead the
// slowest by at most Staleness clocks (Ho et al.).
type SSPConfig struct {
	Task      Task
	Periods   []float64
	Staleness int
	LR        float64
	// SyncTime is the per-iteration push+pull cost with the servers.
	SyncTime float64
	Jitter   float64
	Seed     int64
	// MaxIterations bounds each worker's iteration count.
	MaxIterations  int
	EvalEvery      int
	TargetAccuracy float64
}

// RunSSP executes the SSP baseline with per-iteration pushes. Workers apply
// updates to the shared weights in completion-time order and refresh their
// local copy on every iteration; a worker blocks when it would exceed the
// staleness bound over the slowest worker.
func RunSSP(cfg SSPConfig) (*RunStats, error) {
	switch {
	case cfg.Task == nil:
		return nil, fmt.Errorf("train: nil task")
	case len(cfg.Periods) < 1:
		return nil, fmt.Errorf("train: need at least one worker")
	case cfg.Staleness < 0:
		return nil, fmt.Errorf("train: negative staleness")
	case cfg.LR <= 0:
		return nil, fmt.Errorf("train: learning rate must be positive")
	case cfg.MaxIterations < 1:
		return nil, fmt.Errorf("train: zero iteration budget")
	case cfg.EvalEvery < 1:
		return nil, fmt.Errorf("train: EvalEvery must be >= 1")
	}
	n := len(cfg.Periods)
	wglobal := cfg.Task.InitWeights()
	grad := tensor.NewVector(len(wglobal))
	rng := rand.New(rand.NewSource(cfg.Seed))

	clock := make([]int, n)     // iterations completed per worker
	tNext := make([]float64, n) // next completion time per worker
	wlocal := make([]tensor.Vector, n)
	for i := range wlocal {
		wlocal[i] = wglobal.Clone()
		tNext[i] = period(cfg.Periods[i], cfg.Jitter, rng) + cfg.SyncTime
	}

	stats := &RunStats{Accuracy: metrics.Series{Name: "accuracy"}, Loss: metrics.Series{Name: "loss"}}
	now := 0.0
	completions := 0

	evaluate := func(t float64) bool {
		acc := cfg.Task.Accuracy(wglobal)
		stats.Accuracy.Append(t, acc)
		stats.Loss.Append(t, cfg.Task.Loss(wglobal))
		stats.FinalAccuracy = acc
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy && !stats.ReachedTarget {
			stats.ReachedTarget = true
			stats.TimeToTarget = t
			return true
		}
		return false
	}

	minClock := func() int {
		m := clock[0]
		for _, c := range clock[1:] {
			if c < m {
				m = c
			}
		}
		return m
	}

	for {
		// Earliest eligible worker: staleness gate c - min <= s.
		best, bestAt := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if clock[i] >= cfg.MaxIterations {
				continue
			}
			if clock[i]-minClock() > cfg.Staleness {
				continue // blocked; its wait accrues implicitly
			}
			if tNext[i] < bestAt {
				best, bestAt = i, tNext[i]
			}
		}
		if best < 0 {
			// Either done, or every unfinished worker is blocked on one
			// that already finished.
			break
		}
		if bestAt > now {
			now = bestAt
		}
		i := best
		cfg.Task.Grad(wlocal[i], clock[i]*n+i, grad)
		wglobal.AXPY(-cfg.LR, grad)
		wlocal[i] = wglobal.Clone()
		clock[i]++
		completions++
		stats.Minibatches++
		tNext[i] = now + period(cfg.Periods[i], cfg.Jitter, rng) + cfg.SyncTime
		if completions%cfg.EvalEvery == 0 {
			if evaluate(now) {
				break
			}
		}
	}
	stats.Elapsed = now
	if len(stats.Accuracy.Points) == 0 || !stats.ReachedTarget {
		evaluate(now)
	}
	stats.Pushes = completions // SSP pushes every minibatch
	return stats, nil
}

func period(base, jitter float64, rng *rand.Rand) float64 {
	if jitter <= 0 {
		return base
	}
	return base * (1 + jitter*(2*rng.Float64()-1))
}
