package train

import (
	"testing"

	"hetpipe/internal/tensor"
)

// BenchmarkLogRegGrad measures one minibatch gradient of the convergence
// task (batch 32, 10 classes, 40 dims).
func BenchmarkLogRegGrad(b *testing.B) {
	lt, err := DefaultTask(7)
	if err != nil {
		b.Fatal(err)
	}
	w := lt.InitWeights()
	g := tensor.NewVector(lt.Dim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt.Grad(w, i, g)
	}
}

// BenchmarkWSPCoSimulation measures the full co-simulated WSP run: 4 virtual
// workers, 200 minibatches each, with wave pushes and lazy pulls.
func BenchmarkWSPCoSimulation(b *testing.B) {
	lt, err := DefaultTask(7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := WSPConfig{
		Task: lt, Workers: 4, SLocal: 3, D: 1, LR: 0.1,
		Periods: []float64{0.1, 0.11, 0.12, 0.13}, Jitter: 0.05, Seed: 1,
		MaxMinibatches: 200, EvalEvery: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunWSP(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
