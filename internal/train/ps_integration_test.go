package train

import (
	"fmt"
	"math"
	"testing"

	"hetpipe/internal/ps"
	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

// TestWSPOverRealParameterServer replays the WSP update schedule through the
// actual sharded parameter-server substrate (internal/ps) with real
// gradients, and checks that the server-held global weights equal the sum of
// every worker's wave updates — the wglobal += u~ semantics of Section 5 —
// and that training over the real substrate converges like the in-memory
// co-simulation runner.
func TestWSPOverRealParameterServer(t *testing.T) {
	lt, err := DefaultTask(13)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 3
		slocal  = 2
		d       = 1
		waves   = 40
		lr      = 0.2
		shards  = 4
		servers = 2
	)
	params := wsp.Params{SLocal: slocal, D: d, Workers: workers}
	coord, err := wsp.NewCoordinator(params)
	if err != nil {
		t.Fatal(err)
	}
	waveSize := params.WaveSize()

	// Shard the flat parameter vector over two servers, round-robin.
	dim := lt.Dim()
	chunk := (dim + shards - 1) / shards
	keys := make([]string, shards)
	ranges := make([][2]int, shards)
	for i := range keys {
		keys[i] = fmt.Sprintf("shard%d", i)
		lo := i * chunk
		hi := lo + chunk
		if hi > dim {
			hi = dim
		}
		ranges[i] = [2]int{lo, hi}
	}
	pl, err := ps.RoundRobin(keys, servers)
	if err != nil {
		t.Fatal(err)
	}
	var backends []ps.Backend
	for srv := 0; srv < servers; srv++ {
		s, err := ps.NewServer(workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range pl.KeysOn(srv) {
			var idx int
			fmt.Sscanf(k, "shard%d", &idx)
			if err := s.Register(k, make([]float64, ranges[idx][1]-ranges[idx][0])); err != nil {
				t.Fatal(err)
			}
		}
		backends = append(backends, ps.AdaptServer(s))
	}
	sh, err := ps.NewSharded(pl, backends)
	if err != nil {
		t.Fatal(err)
	}

	split := func(v tensor.Vector) map[string]tensor.Vector {
		out := make(map[string]tensor.Vector, shards)
		for i, k := range keys {
			out[k] = v[ranges[i][0]:ranges[i][1]]
		}
		return out
	}
	join := func(m map[string]tensor.Vector) tensor.Vector {
		v := tensor.NewVector(dim)
		for i, k := range keys {
			copy(v[ranges[i][0]:ranges[i][1]], m[k])
		}
		return v
	}

	// Each worker: pipelined local staleness, one aggregated push per wave
	// through the sharded client, lazy pulls under the D bound.
	type worker struct {
		wlocal     tensor.Vector
		waveAcc    tensor.Vector
		inflight   []tensor.Vector
		next       int
		lastPulled int
	}
	ws := make([]*worker, workers)
	for i := range ws {
		ws[i] = &worker{wlocal: lt.InitWeights(), waveAcc: tensor.NewVector(dim), next: 1}
	}
	grad := tensor.NewVector(dim)
	var totalPushed tensor.Vector = tensor.NewVector(dim)

	maxMB := waves * waveSize
	for done := false; !done; {
		done = true
		for wi, w := range ws {
			if w.next > maxMB {
				continue
			}
			if !coord.CanStart(wi, w.next) {
				continue
			}
			done = false
			coord.Start(wi, w.next)
			w.inflight = append(w.inflight, w.wlocal.Clone())
			mb := w.next
			w.next++
			if len(w.inflight) <= slocal {
				continue
			}
			snap := w.inflight[0]
			w.inflight = w.inflight[1:]
			lt.Grad(snap, MinibatchIndex(wi, mb-slocal, workers), grad)
			w.wlocal.AXPY(-lr, grad)
			w.waveAcc.AXPY(-lr, grad)
			if params.IsWaveEnd(mb - slocal) {
				if err := sh.Push(wi, split(w.waveAcc)); err != nil {
					t.Fatal(err)
				}
				totalPushed.AddInPlace(w.waveAcc)
				w.waveAcc = tensor.NewVector(dim)
				coord.Push(wi)
				wave := params.Wave(mb - slocal)
				if req := wave - d; req > w.lastPulled {
					weights, clock, err := sh.Pull(keys, req)
					if err != nil {
						t.Fatal(err)
					}
					w.lastPulled = clock
					w.wlocal = join(weights)
				}
			}
		}
	}

	// The server-held weights are exactly the sum of pushed wave updates
	// (w0 = 0 for this task).
	final, clock, err := sh.Pull(keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clock < waves-d-1 {
		t.Errorf("final global clock %d, want >= %d", clock, waves-d-1)
	}
	joined := join(final)
	for i := range joined {
		if math.Abs(joined[i]-totalPushed[i]) > 1e-9 {
			t.Fatalf("server weights diverge from pushed sum at %d: %g vs %g", i, joined[i], totalPushed[i])
		}
	}
	// And the model learned: accuracy on the server-held weights well above
	// chance (10 classes).
	if acc := lt.Accuracy(joined); acc < 0.6 {
		t.Errorf("accuracy over real PS = %.3f, want > 0.6", acc)
	}
}
