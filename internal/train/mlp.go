package train

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/data"
	"hetpipe/internal/tensor"
)

// MLP is a one-hidden-layer neural network with tanh activations and softmax
// cross-entropy loss — the non-convex extension of the convergence study.
// The paper's Theorem 1 covers only convex objectives; the MLP task lets the
// experiments probe staleness effects beyond the theorem's assumptions, in
// the regime where real DNN training lives.
//
// Parameter layout: [W1 (hidden x dim) | b1 (hidden) | W2 (classes x hidden)
// | b2 (classes)].
type MLP struct {
	train  *data.Dataset
	eval   *data.Dataset
	hidden int
	batch  int
	// ClipNorm bounds each gradient coordinate; zero disables.
	ClipNorm float64
	seed     int64
}

// NewMLP builds the task.
func NewMLP(train, eval *data.Dataset, hidden, batch int, seed int64) (*MLP, error) {
	if train.Classes != eval.Classes || train.Dim != eval.Dim {
		return nil, fmt.Errorf("train: mismatched datasets")
	}
	if hidden < 1 {
		return nil, fmt.Errorf("train: need at least one hidden unit")
	}
	if batch < 1 || batch > train.Len() {
		return nil, fmt.Errorf("train: bad batch size %d", batch)
	}
	return &MLP{train: train, eval: eval, hidden: hidden, batch: batch, ClipNorm: 5, seed: seed}, nil
}

// Dim implements Task.
func (t *MLP) Dim() int {
	d, h, c := t.train.Dim, t.hidden, t.train.Classes
	return h*d + h + c*h + c
}

// InitWeights implements Task: small deterministic Gaussian init (symmetric
// zero init would trap the hidden layer).
func (t *MLP) InitWeights() tensor.Vector {
	rng := rand.New(rand.NewSource(t.seed))
	w := tensor.NewVector(t.Dim())
	scale := 1 / math.Sqrt(float64(t.train.Dim))
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
	return w
}

// views splits the flat parameter vector into layer views.
func (t *MLP) views(w tensor.Vector) (w1, b1, w2, b2 tensor.Vector) {
	d, h, c := t.train.Dim, t.hidden, t.train.Classes
	o := 0
	w1 = w[o : o+h*d]
	o += h * d
	b1 = w[o : o+h]
	o += h
	w2 = w[o : o+c*h]
	o += c * h
	b2 = w[o : o+c]
	return
}

// forward computes hidden activations and class probabilities for sample x.
func (t *MLP) forward(w tensor.Vector, x tensor.Vector, hid, probs tensor.Vector) {
	w1, b1, w2, b2 := t.views(w)
	d, h, c := t.train.Dim, t.hidden, t.train.Classes
	for j := 0; j < h; j++ {
		hid[j] = math.Tanh(w1[j*d:(j+1)*d].Dot(x) + b1[j])
	}
	for k := 0; k < c; k++ {
		probs[k] = w2[k*h:(k+1)*h].Dot(hid) + b2[k]
	}
	tensor.Softmax(probs)
}

// Grad implements Task via manual backpropagation.
func (t *MLP) Grad(w tensor.Vector, b int, out tensor.Vector) {
	out.Zero()
	d, h, c := t.train.Dim, t.hidden, t.train.Classes
	w1, _, w2, _ := t.views(w)
	g1, gb1, g2, gb2 := t.views(out)
	hid := tensor.NewVector(h)
	probs := tensor.NewVector(c)
	dhid := tensor.NewVector(h)
	idx := t.train.Batch(b, t.batch)
	inv := 1 / float64(len(idx))
	_ = w1
	for _, i := range idx {
		x := t.train.X[i]
		t.forward(w, x, hid, probs)
		// dL/dlogits = probs - onehot(y).
		for k := 0; k < c; k++ {
			delta := probs[k] * inv
			if k == t.train.Y[i] {
				delta -= inv
			}
			g2[k*h:(k+1)*h].AXPY(delta, hid)
			gb2[k] += delta
		}
		// Backprop into the hidden layer: dL/dhid = W2^T (probs-onehot).
		dhid.Zero()
		for k := 0; k < c; k++ {
			delta := probs[k]
			if k == t.train.Y[i] {
				delta -= 1
			}
			dhid.AXPY(delta*inv, w2[k*h:(k+1)*h])
		}
		// Through tanh: (1 - hid^2).
		for j := 0; j < h; j++ {
			dj := dhid[j] * (1 - hid[j]*hid[j])
			g1[j*d:(j+1)*d].AXPY(dj, x)
			gb1[j] += dj
		}
	}
	if t.ClipNorm > 0 {
		tensor.Clip(out, t.ClipNorm)
	}
}

// Loss implements Task.
func (t *MLP) Loss(w tensor.Vector) float64 {
	hid := tensor.NewVector(t.hidden)
	probs := tensor.NewVector(t.train.Classes)
	var sum float64
	for i := range t.train.X {
		t.forward(w, t.train.X[i], hid, probs)
		p := probs[t.train.Y[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		sum += -math.Log(p)
	}
	return sum / float64(len(t.train.X))
}

// Accuracy implements Task over the held-out set.
func (t *MLP) Accuracy(w tensor.Vector) float64 {
	hid := tensor.NewVector(t.hidden)
	probs := tensor.NewVector(t.eval.Classes)
	correct := 0
	for i := range t.eval.X {
		t.forward(w, t.eval.X[i], hid, probs)
		if tensor.Argmax(probs) == t.eval.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(t.eval.X))
}

// DefaultMLPTask builds the standard non-convex study task: 2000 samples,
// 4 classes, 16 dimensions, 24 hidden units, batch 32, deterministic seed.
func DefaultMLPTask(seed int64) (*MLP, error) {
	ds, err := data.SyntheticClassification(seed, 2000, 16, 4, 0.45)
	if err != nil {
		return nil, err
	}
	tr, ev, err := ds.Split(0.8)
	if err != nil {
		return nil, err
	}
	return NewMLP(tr, ev, 24, 32, seed)
}
