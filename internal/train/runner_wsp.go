package train

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/metrics"
	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

// WSPConfig parameterizes a co-simulated HetPipe training run: N pipelined
// virtual workers training one Task under the WSP protocol, with per-worker
// timing taken from the cluster simulator.
type WSPConfig struct {
	Task Task
	// Workers is the number of virtual workers, N.
	Workers int
	// SLocal is the local staleness threshold (Nm-1).
	SLocal int
	// D is the clock distance bound.
	D int
	// LR is the SGD step size.
	LR float64
	// Periods[w] is worker w's steady-state seconds per minibatch.
	Periods []float64
	// FillLatency[w] is the injection-to-completion latency of worker w's
	// pipeline; zero entries default to the period.
	FillLatency []float64
	// PushTime[w] / PullTime[w] are the per-wave parameter-sync transfer
	// times between worker w and the parameter servers.
	PushTime, PullTime []float64
	// Jitter is the relative per-minibatch duration noise (e.g. 0.08).
	Jitter float64
	// Seed drives all randomness.
	Seed int64
	// MaxMinibatches bounds each worker's minibatch count.
	MaxMinibatches int
	// EvalEvery evaluates accuracy every that many global completions.
	EvalEvery int
	// TargetAccuracy stops the run early once reached (0 disables).
	TargetAccuracy float64
	// TargetLoss stops the run early once the training loss drops to it
	// (0 disables). Loss is the sharper convergence criterion for tasks
	// whose accuracy saturates early.
	TargetLoss float64
}

func (c *WSPConfig) validate() error {
	switch {
	case c.Task == nil:
		return fmt.Errorf("train: nil task")
	case c.Workers < 1:
		return fmt.Errorf("train: need at least one worker")
	case c.SLocal < 0 || c.D < 0:
		return fmt.Errorf("train: negative staleness parameters")
	case c.LR <= 0:
		return fmt.Errorf("train: learning rate must be positive")
	case len(c.Periods) != c.Workers:
		return fmt.Errorf("train: %d periods for %d workers", len(c.Periods), c.Workers)
	case c.MaxMinibatches < 1:
		return fmt.Errorf("train: zero minibatch budget")
	case c.EvalEvery < 1:
		return fmt.Errorf("train: EvalEvery must be >= 1")
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("train: jitter must be in [0,1)")
	}
	for w, p := range c.Periods {
		if p <= 0 {
			return fmt.Errorf("train: worker %d period %g", w, p)
		}
	}
	return nil
}

// RunStats summarizes a co-simulated training run.
type RunStats struct {
	// Accuracy is held-out accuracy versus simulated seconds.
	Accuracy metrics.Series
	// Loss is training loss versus simulated seconds.
	Loss metrics.Series
	// TimeToTarget is the earliest simulated time TargetAccuracy was met.
	TimeToTarget  float64
	ReachedTarget bool
	// Minibatches is the total processed across workers.
	Minibatches int
	// Elapsed is the simulated time at the end of the run.
	Elapsed float64
	// Waiting is total gate-waiting time summed over workers; Idle is the
	// portion during which a worker's pipeline had fully drained — the
	// Section 8.4 decomposition.
	Waiting, Idle float64
	// Pushes counts wave pushes (communication rounds to the PS); Pulls
	// counts lazy pulls — both shrink as D grows.
	Pushes, Pulls int
	// FinalAccuracy and FinalLoss are the last evaluated values.
	FinalAccuracy float64
	FinalLoss     float64
	// MaxClockDistance is the largest observed clock skew between workers.
	MaxClockDistance int
}

// snapshot is an in-flight minibatch: the weights it was injected with and
// its scheduled completion time.
type snapshot struct {
	mb       int
	weights  tensor.Vector
	complete float64
}

// wspWorker is one virtual worker's live state.
type wspWorker struct {
	id       int
	wlocal   tensor.Vector
	waveAcc  tensor.Vector
	grad     tensor.Vector
	inflight []snapshot
	// lastPulled is the global clock the worker last incorporated; pulls
	// are lazy — they happen only when the D-bound demands (which is why
	// larger D reduces synchronization traffic, Section 8.4).
	lastPulled int
	// pullReadyFor/pullReadyAt latch the completion time of an in-flight
	// pull transfer for the named minibatch, so the pull runs concurrently
	// with the still-draining pipeline instead of chasing it.
	pullReadyFor int
	pullReadyAt  float64
	// nextInject is the next 1-based minibatch to inject.
	nextInject int
	// lastScheduled is the completion time of the most recently scheduled
	// minibatch (sequencing successive completions one period apart).
	lastScheduled float64
	lastComplete  float64
	slotFreeAt    float64
	rng           *rand.Rand
	done          bool
}

// RunWSP executes the co-simulated HetPipe run.
func RunWSP(cfg WSPConfig) (*RunStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	coord, err := wsp.NewCoordinator(params)
	if err != nil {
		return nil, err
	}
	nm := params.WaveSize()

	fill := make([]float64, cfg.Workers)
	push := make([]float64, cfg.Workers)
	pull := make([]float64, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		fill[w] = cfg.Periods[w]
		if w < len(cfg.FillLatency) && cfg.FillLatency[w] > 0 {
			fill[w] = cfg.FillLatency[w]
		}
		if w < len(cfg.PushTime) {
			push[w] = cfg.PushTime[w]
		}
		if w < len(cfg.PullTime) {
			pull[w] = cfg.PullTime[w]
		}
	}

	wglobal := cfg.Task.InitWeights()
	dim := len(wglobal)
	workers := make([]*wspWorker, cfg.Workers)
	for w := range workers {
		workers[w] = &wspWorker{
			id:         w,
			wlocal:     wglobal.Clone(),
			waveAcc:    tensor.NewVector(dim),
			grad:       tensor.NewVector(dim),
			nextInject: 1,
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(w)*7919)),
		}
	}

	// pushVisible[c] is when the global clock reached c (the last push of
	// wave c-1 arrived at the servers); index 0 is time zero. pushArrive[w]
	// holds the arrival times of worker w's pushes, in wave order.
	pushVisible := []float64{0}
	pushArrive := make([][]float64, cfg.Workers)

	stats := &RunStats{Accuracy: metrics.Series{Name: "accuracy"}, Loss: metrics.Series{Name: "loss"}}
	completionsSinceEval := 0
	now := 0.0

	evaluate := func(t float64) bool {
		acc := cfg.Task.Accuracy(wglobal)
		loss := cfg.Task.Loss(wglobal)
		stats.Accuracy.Append(t, acc)
		stats.Loss.Append(t, loss)
		stats.FinalAccuracy = acc
		stats.FinalLoss = loss
		hitAcc := cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy
		hitLoss := cfg.TargetLoss > 0 && loss <= cfg.TargetLoss
		if (hitAcc || hitLoss) && !stats.ReachedTarget {
			stats.ReachedTarget = true
			stats.TimeToTarget = t
			return true
		}
		return false
	}

	// gateReady reports when worker w's next injection may happen, or
	// (0, false) when the required global clock has not been reached yet.
	// When the worker must actually pull (its last incorporated clock is
	// older than required), the pull transfer runs from the moment both the
	// clock and the worker are ready — so the pull latency is paid even
	// when the clock requirement was satisfied long ago.
	gateReady := func(w *wspWorker) (float64, bool) {
		req := params.RequiredGlobalClock(w.nextInject)
		if req == 0 {
			return 0, true
		}
		if req >= len(pushVisible) {
			return 0, false
		}
		ready := pushVisible[req]
		if w.lastPulled < req {
			if w.pullReadyFor != w.nextInject {
				w.pullReadyFor = w.nextInject
				w.pullReadyAt = math.Max(ready, w.slotFreeAt) + pull[w.id]
			}
			ready = w.pullReadyAt
		}
		return ready, true
	}

	// nextEvent computes worker w's earliest actionable event:
	// kind 0 = none, 1 = completion, 2 = injection.
	nextEvent := func(w *wspWorker) (kind int, at float64) {
		if len(w.inflight) > 0 {
			kind, at = 1, w.inflight[0].complete
		}
		if !w.done && len(w.inflight) < nm && w.nextInject <= cfg.MaxMinibatches {
			if ready, ok := gateReady(w); ok {
				inj := math.Max(w.slotFreeAt, ready)
				if kind == 0 || inj < at {
					kind, at = 2, inj
				}
			}
		}
		return kind, at
	}

	for {
		// Pick the globally earliest event.
		best, bestAt, bestKind := -1, math.Inf(1), 0
		for _, w := range workers {
			if kind, at := nextEvent(w); kind != 0 && at < bestAt {
				best, bestAt, bestKind = w.id, at, kind
			}
		}
		if best < 0 {
			// All workers drained their budgets, or the remaining workers
			// are gated on pushes that will never come because their peers
			// finished — the natural end of a fixed-budget run.
			break
		}
		w := workers[best]
		if bestAt < now {
			bestAt = now
		}
		now = bestAt

		if bestKind == 2 {
			// Injection of minibatch w.nextInject.
			mb := w.nextInject
			ready, _ := gateReady(w)
			natural := w.slotFreeAt
			if ready > natural {
				stats.Waiting += ready - natural
				if len(w.inflight) == 0 && ready > w.lastScheduled {
					drainFrom := math.Max(natural, w.lastScheduled)
					stats.Idle += ready - drainFrom
				}
			}
			// Lazy pull: a gated wave-end minibatch that needs updates the
			// worker has not incorporated yet triggers a pull of the global
			// weights; the worker's uncommitted wave updates are re-applied
			// on top. With D=0 this happens every wave; with larger D,
			// every ~D waves.
			if req := params.RequiredGlobalClock(mb); req > 0 && w.lastPulled < req {
				w.wlocal = wglobal.Clone()
				w.wlocal.AddInPlace(w.waveAcc)
				w.lastPulled = coord.GlobalClock()
				stats.Pulls++
			}
			coord.Start(w.id, mb)
			period := cfg.Periods[w.id]
			if cfg.Jitter > 0 {
				period *= 1 + cfg.Jitter*(2*w.rng.Float64()-1)
			}
			complete := math.Max(now+fill[w.id], w.lastScheduled+period)
			w.lastScheduled = complete
			w.inflight = append(w.inflight, snapshot{mb: mb, weights: w.wlocal.Clone(), complete: complete})
			w.nextInject++
			if w.nextInject > cfg.MaxMinibatches {
				w.done = true
			}
			continue
		}

		// Completion of the oldest in-flight minibatch.
		snap := w.inflight[0]
		w.inflight = w.inflight[1:]
		w.slotFreeAt = now
		w.lastComplete = now
		cfg.Task.Grad(snap.weights, minibatchIndex(w.id, snap.mb, cfg.Workers), w.grad)
		// Local update: wlocal += u, u = -lr * grad (Section 4).
		w.wlocal.AXPY(-cfg.LR, w.grad)
		w.waveAcc.AXPY(-cfg.LR, w.grad)
		stats.Minibatches++
		completionsSinceEval++

		if params.IsWaveEnd(snap.mb) {
			// Push the aggregated wave update (wglobal += u~) and pull the
			// current global weights as the new local copy.
			wglobal.AddInPlace(w.waveAcc)
			w.waveAcc.Zero()
			coord.Push(w.id)
			stats.Pushes++
			pushArrive[w.id] = append(pushArrive[w.id], now+push[w.id])
			// When the global clock advances, wave c becomes visible once
			// every worker's push of wave c-1 has arrived.
			for c := len(pushVisible); c <= coord.GlobalClock(); c++ {
				arrive := 0.0
				for _, arr := range pushArrive {
					if t := arr[c-1]; t > arrive {
						arrive = t
					}
				}
				pushVisible = append(pushVisible, arrive)
			}
		}

		if completionsSinceEval >= cfg.EvalEvery {
			completionsSinceEval = 0
			if evaluate(now) {
				break
			}
		}
	}

	stats.Elapsed = now
	if len(stats.Accuracy.Points) == 0 || !stats.ReachedTarget {
		evaluate(now)
	}
	stats.MaxClockDistance = coord.MaxClockDistance()
	return stats, nil
}

// minibatchIndex maps (worker, local minibatch number) to a disjoint global
// minibatch stream per worker — data parallelism splits the dataset.
func minibatchIndex(worker, mb, workers int) int {
	return (mb-1)*workers + worker
}
