package train

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/metrics"
	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

// WSPConfig parameterizes a co-simulated HetPipe training run: N pipelined
// virtual workers training one Task under the WSP protocol, with per-worker
// timing taken from the cluster simulator.
type WSPConfig struct {
	Task Task
	// Workers is the number of virtual workers, N.
	Workers int
	// SLocal is the local staleness threshold (Nm-1).
	SLocal int
	// D is the clock distance bound.
	D int
	// LR is the SGD step size.
	LR float64
	// Periods[w] is worker w's steady-state seconds per minibatch.
	Periods []float64
	// FillLatency[w] is the injection-to-completion latency of worker w's
	// pipeline; zero entries default to the period.
	FillLatency []float64
	// PushTime[w] / PullTime[w] are the per-wave parameter-sync transfer
	// times between worker w and the parameter servers.
	PushTime, PullTime []float64
	// Jitter is the relative per-minibatch duration noise (e.g. 0.08).
	Jitter float64
	// Seed drives all randomness.
	Seed int64
	// MaxMinibatches bounds each worker's minibatch count.
	MaxMinibatches int
	// EvalEvery evaluates accuracy every that many global completions.
	EvalEvery int
	// TargetAccuracy stops the run early once reached (0 disables).
	TargetAccuracy float64
	// TargetLoss stops the run early once the training loss drops to it
	// (0 disables). Loss is the sharper convergence criterion for tasks
	// whose accuracy saturates early.
	TargetLoss float64
}

func (c *WSPConfig) validate() error {
	switch {
	case c.Task == nil:
		return fmt.Errorf("train: nil task")
	case c.Workers < 1:
		return fmt.Errorf("train: need at least one worker")
	case c.SLocal < 0 || c.D < 0:
		return fmt.Errorf("train: negative staleness parameters")
	case c.LR <= 0:
		return fmt.Errorf("train: learning rate must be positive")
	case len(c.Periods) != c.Workers:
		return fmt.Errorf("train: %d periods for %d workers", len(c.Periods), c.Workers)
	case c.MaxMinibatches < 1:
		return fmt.Errorf("train: zero minibatch budget")
	case c.EvalEvery < 1:
		return fmt.Errorf("train: EvalEvery must be >= 1")
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("train: jitter must be in [0,1)")
	}
	for w, p := range c.Periods {
		if p <= 0 {
			return fmt.Errorf("train: worker %d period %g", w, p)
		}
	}
	return nil
}

// RunStats summarizes a co-simulated training run.
type RunStats struct {
	// Accuracy is held-out accuracy versus simulated seconds.
	Accuracy metrics.Series
	// Loss is training loss versus simulated seconds.
	Loss metrics.Series
	// TimeToTarget is the earliest simulated time TargetAccuracy was met.
	TimeToTarget  float64
	ReachedTarget bool
	// Minibatches is the total processed across workers.
	Minibatches int
	// Elapsed is the simulated time at the end of the run.
	Elapsed float64
	// Waiting is total gate-waiting time summed over workers; Idle is the
	// portion during which a worker's pipeline had fully drained — the
	// Section 8.4 decomposition.
	Waiting, Idle float64
	// Pushes counts wave pushes (communication rounds to the PS); Pulls
	// counts lazy pulls — both shrink as D grows.
	Pushes, Pulls int
	// FinalAccuracy and FinalLoss are the last evaluated values.
	FinalAccuracy float64
	FinalLoss     float64
	// FinalWeights is the parameter-server global weight vector at the end
	// of the run (w0 plus every pushed wave update) — the value the live
	// sharded-PS runtime (internal/cluster) must reproduce.
	FinalWeights tensor.Vector
	// MaxClockDistance is the largest observed clock skew between workers.
	MaxClockDistance int
}

// snapshot is an in-flight minibatch's timing: its scheduled completion.
type snapshot struct {
	mb       int
	complete float64
}

// pendingMB is an injected-but-not-retired minibatch's numeric state: the
// weights it was injected with. The numeric pipeline retires minibatches at
// a fixed logical lag of Nm (retiring r when r+Nm-1 is injected), so the
// weights minibatch m trains with reflect local updates through exactly
// m-Nm — the paper's slocal staleness window — independent of timing.
type pendingMB struct {
	mb      int
	weights tensor.Vector
}

// wspWorker is one virtual worker's live state.
type wspWorker struct {
	id      int
	wlocal  tensor.Vector
	waveAcc tensor.Vector
	grad    tensor.Vector
	// inflight tracks timing (completion events); pending tracks numerics
	// (the logical depth-Nm weight window). They pop at different moments:
	// inflight at completion events, pending at the fixed logical lag.
	inflight []snapshot
	pending  []pendingMB
	// waveDeltas[v] is this worker's aggregated update of wave v, recorded
	// at the numeric retirement of the wave's last minibatch. It feeds the
	// global-weight fold at the wave-end completion event, the clock-c
	// prefix snapshots pulls read, and the own-update add-back after pulls.
	waveDeltas []tensor.Vector
	// lastPulled is the snapshot clock the worker last incorporated; pulls
	// are lazy — they happen only when the D-bound demands (which is why
	// larger D reduces synchronization traffic, Section 8.4). Only the
	// clock the gate actually required (and the worker has provably seen)
	// is credited, never the coordinator's instantaneous clock, which can
	// run ahead of what has arrived at simulated time now.
	lastPulled int
	// nextInject is the next 1-based minibatch to inject.
	nextInject int
	// lastScheduled is the completion time of the most recently scheduled
	// minibatch (sequencing successive completions one period apart).
	lastScheduled float64
	lastComplete  float64
	slotFreeAt    float64
	rng           *rand.Rand
	done          bool
	// free recycles retired pendingMB weight vectors, so the steady-state
	// inject/retire loop stops allocating one dim-sized copy per minibatch.
	free []tensor.Vector
}

// getWeights returns a recycled (or fresh) vector holding a copy of src.
func (w *wspWorker) getWeights(src tensor.Vector) tensor.Vector {
	if n := len(w.free); n > 0 {
		v := w.free[n-1]
		w.free = w.free[:n-1]
		copy(v, src)
		return v
	}
	return src.Clone()
}

// RunWSP executes the co-simulated HetPipe run.
//
// Timing and numerics are deliberately decoupled: the discrete-event side
// decides WHEN injections, completions, pushes, and gate waits happen, while
// the numeric dataflow (which updates each minibatch's weights reflect) is a
// pure function of the protocol parameters — snapshots at a fixed logical
// lag of Nm, pulls that read the clock-versioned global prefix. Periods,
// jitter, and transfer times therefore shape the time axis but never the
// trajectory, and the live sharded-PS runtime (internal/cluster) reproduces
// the exact same numbers, which the conformance harness asserts.
func RunWSP(cfg WSPConfig) (*RunStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	coord, err := wsp.NewCoordinator(params)
	if err != nil {
		return nil, err
	}
	nm := params.WaveSize()

	fill := make([]float64, cfg.Workers)
	push := make([]float64, cfg.Workers)
	pull := make([]float64, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		fill[w] = cfg.Periods[w]
		if w < len(cfg.FillLatency) && cfg.FillLatency[w] > 0 {
			fill[w] = cfg.FillLatency[w]
		}
		if w < len(cfg.PushTime) {
			push[w] = cfg.PushTime[w]
		}
		if w < len(cfg.PullTime) {
			pull[w] = cfg.PullTime[w]
		}
	}

	wglobal := cfg.Task.InitWeights()
	dim := len(wglobal)
	workers := make([]*wspWorker, cfg.Workers)
	for w := range workers {
		workers[w] = &wspWorker{
			id:         w,
			wlocal:     wglobal.Clone(),
			waveAcc:    tensor.NewVector(dim),
			grad:       tensor.NewVector(dim),
			nextInject: 1,
			rng:        rand.New(rand.NewSource(cfg.Seed + int64(w)*7919)),
		}
	}

	// prefix[c] is the clock-c snapshot of the global weights: w0 plus every
	// worker's wave-v update with v < c — what ps.Server.PullAt serves in
	// the live runtime. Built lazily; a pull at clock c is only reachable
	// once every worker's wave c-1 delta has been recorded.
	prefix := []tensor.Vector{wglobal.Clone()}
	snapshotAt := func(c int) tensor.Vector {
		for len(prefix) <= c {
			wave := len(prefix) - 1
			next := prefix[wave].Clone()
			for _, w := range workers {
				next.AddInPlace(w.waveDeltas[wave])
			}
			prefix = append(prefix, next)
		}
		return prefix[c]
	}

	// pushVisible[c] is when the global clock reached c (the last push of
	// wave c-1 arrived at the servers); index 0 is time zero. pushArrive[w]
	// holds the arrival times of worker w's pushes, in wave order.
	pushVisible := []float64{0}
	pushArrive := make([][]float64, cfg.Workers)

	stats := &RunStats{Accuracy: metrics.Series{Name: "accuracy"}, Loss: metrics.Series{Name: "loss"}}
	completionsSinceEval := 0
	now := 0.0

	evaluate := func(t float64) bool {
		acc := cfg.Task.Accuracy(wglobal)
		loss := cfg.Task.Loss(wglobal)
		stats.Accuracy.Append(t, acc)
		stats.Loss.Append(t, loss)
		stats.FinalAccuracy = acc
		stats.FinalLoss = loss
		hitAcc := cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy
		hitLoss := cfg.TargetLoss > 0 && loss <= cfg.TargetLoss
		if (hitAcc || hitLoss) && !stats.ReachedTarget {
			stats.ReachedTarget = true
			stats.TimeToTarget = t
			return true
		}
		return false
	}

	// retire folds the oldest pending minibatch's gradient into the local
	// weights; at a wave end it also seals the wave's aggregated delta (the
	// push CONTENT — the push TIME is the wave-end completion event).
	retire := func(w *wspWorker) {
		p := w.pending[0]
		w.pending = w.pending[1:]
		cfg.Task.Grad(p.weights, MinibatchIndex(w.id, p.mb, cfg.Workers), w.grad)
		w.free = append(w.free, p.weights)
		// Local update: wlocal += u, u = -lr * grad (Section 4).
		w.wlocal.AXPY(-cfg.LR, w.grad)
		w.waveAcc.AXPY(-cfg.LR, w.grad)
		if params.IsWaveEnd(p.mb) {
			w.waveDeltas = append(w.waveDeltas, w.waveAcc.Clone())
			w.waveAcc.Zero()
		}
	}

	// gateReady reports when worker w's next injection may happen, or
	// (0, false) when the required global clock has not been reached yet.
	// When the worker must actually pull, the transfer starts once the
	// clock is visible AND the worker is free to issue it; both inputs are
	// re-read on every query because slotFreeAt advances as in-flight
	// minibatches complete — a latched value could let the pull "finish"
	// before the worker was free to start it.
	gateReady := func(w *wspWorker) (float64, bool) {
		req := params.RequiredGlobalClock(w.nextInject)
		if req == 0 {
			return 0, true
		}
		if req >= len(pushVisible) {
			return 0, false
		}
		ready := pushVisible[req]
		if w.lastPulled < req {
			ready = math.Max(ready, w.slotFreeAt) + pull[w.id]
		}
		return ready, true
	}

	// nextEvent computes worker w's earliest actionable event:
	// kind 0 = none, 1 = completion, 2 = injection.
	nextEvent := func(w *wspWorker) (kind int, at float64) {
		if len(w.inflight) > 0 {
			kind, at = 1, w.inflight[0].complete
		}
		if !w.done && len(w.inflight) < nm && w.nextInject <= cfg.MaxMinibatches {
			if ready, ok := gateReady(w); ok {
				inj := math.Max(w.slotFreeAt, ready)
				if kind == 0 || inj < at {
					kind, at = 2, inj
				}
			}
		}
		return kind, at
	}

	for {
		// Pick the globally earliest event.
		best, bestAt, bestKind := -1, math.Inf(1), 0
		for _, w := range workers {
			if kind, at := nextEvent(w); kind != 0 && at < bestAt {
				best, bestAt, bestKind = w.id, at, kind
			}
		}
		if best < 0 {
			// All workers drained their budgets, or the remaining workers
			// are gated on pushes that will never come because their peers
			// finished — the natural end of a fixed-budget run.
			break
		}
		w := workers[best]
		if bestAt < now {
			bestAt = now
		}
		now = bestAt

		if bestKind == 2 {
			// Injection of minibatch w.nextInject.
			mb := w.nextInject
			ready, _ := gateReady(w)
			natural := w.slotFreeAt
			if ready > natural {
				stats.Waiting += ready - natural
				if len(w.inflight) == 0 && ready > w.lastScheduled {
					drainFrom := math.Max(natural, w.lastScheduled)
					stats.Idle += ready - drainFrom
				}
			}
			// Lazy pull: a gated wave-end minibatch that needs updates the
			// worker has not incorporated yet triggers a pull of the global
			// weights. The worker is credited only with the clock the gate
			// required — what it has provably seen — and receives that
			// clock's snapshot, with its own not-yet-globally-visible wave
			// updates and the open wave's accumulator re-applied on top.
			// With D=0 this happens every wave; with larger D, every wave
			// past the first D+1.
			if req := params.RequiredGlobalClock(mb); req > 0 && w.lastPulled < req {
				copy(w.wlocal, snapshotAt(req))
				for v := req; v < len(w.waveDeltas); v++ {
					w.wlocal.AddInPlace(w.waveDeltas[v])
				}
				w.wlocal.AddInPlace(w.waveAcc)
				w.lastPulled = req
				stats.Pulls++
			}
			coord.Start(w.id, mb)
			period := cfg.Periods[w.id]
			if cfg.Jitter > 0 {
				period *= 1 + cfg.Jitter*(2*w.rng.Float64()-1)
			}
			complete := math.Max(now+fill[w.id], w.lastScheduled+period)
			w.lastScheduled = complete
			w.inflight = append(w.inflight, snapshot{mb: mb, complete: complete})
			w.pending = append(w.pending, pendingMB{mb: mb, weights: w.getWeights(w.wlocal)})
			w.nextInject++
			if w.nextInject > cfg.MaxMinibatches {
				w.done = true
			}
			// Injecting mb retires minibatch mb-Nm+1: the fixed logical lag
			// that pins each snapshot's staleness to exactly slocal.
			if mb-nm+1 >= 1 {
				retire(w)
			}
			continue
		}

		// Completion of the oldest in-flight minibatch.
		snap := w.inflight[0]
		w.inflight = w.inflight[1:]
		w.slotFreeAt = now
		w.lastComplete = now
		stats.Minibatches++
		completionsSinceEval++

		// Once the worker has no more injections, completions drive the
		// remaining retirements (the live runtime's end-of-run drain).
		if w.done {
			for len(w.pending) > 0 && w.pending[0].mb <= snap.mb {
				retire(w)
			}
		}

		if params.IsWaveEnd(snap.mb) {
			// Push the wave's aggregated update (wglobal += u~). Its content
			// was sealed at the wave-end's numeric retirement, which always
			// precedes this completion event.
			wave := params.Wave(snap.mb)
			if wave >= len(w.waveDeltas) {
				panic(fmt.Sprintf("train: worker %d pushing wave %d before its delta is sealed", w.id, wave))
			}
			wglobal.AddInPlace(w.waveDeltas[wave])
			coord.Push(w.id)
			stats.Pushes++
			pushArrive[w.id] = append(pushArrive[w.id], now+push[w.id])
			// When the global clock advances, wave c becomes visible once
			// every worker's push of wave c-1 has arrived.
			for c := len(pushVisible); c <= coord.GlobalClock(); c++ {
				arrive := 0.0
				for _, arr := range pushArrive {
					if t := arr[c-1]; t > arrive {
						arrive = t
					}
				}
				pushVisible = append(pushVisible, arrive)
			}
		}

		if completionsSinceEval >= cfg.EvalEvery {
			completionsSinceEval = 0
			if evaluate(now) {
				break
			}
		}
	}

	stats.Elapsed = now
	// Final evaluation — unless one already ran at exactly this time, which
	// would duplicate the curve's last point.
	if last, ok := stats.Accuracy.Last(); !ok || last.T != now {
		evaluate(now)
	}
	// FinalWeights carries the same pushed-update set as wglobal, but folded
	// in (wave, worker) order — the order the parameter servers' snapshots
	// use — so the value is bit-stable across timing configurations and
	// directly comparable with the live runtime's.
	final := prefix[0].Clone()
	maxPushed := 0
	for _, w := range workers {
		if c := coord.Clock(w.id); c > maxPushed {
			maxPushed = c
		}
	}
	for v := 0; v < maxPushed; v++ {
		for _, w := range workers {
			if v < coord.Clock(w.id) {
				final.AddInPlace(w.waveDeltas[v])
			}
		}
	}
	stats.FinalWeights = final
	stats.MaxClockDistance = coord.MaxClockDistance()
	return stats, nil
}

// MinibatchIndex maps (worker, local minibatch number) to a disjoint global
// minibatch stream per worker — data parallelism splits the dataset. The
// live runtime (internal/cluster) uses the same mapping so both backends
// consume identical gradients.
func MinibatchIndex(worker, mb, workers int) int {
	return (mb-1)*workers + worker
}
