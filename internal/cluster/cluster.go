// Package cluster is the live WSP training runtime: N virtual workers run as
// goroutines training a real numeric task against M real parameter-server
// shards (internal/ps), either in-process or over TCP. Where the simulator
// (internal/train.RunWSP) models the protocol's timing, this package
// executes its dataflow for real — the clock-distance bound D is enforced by
// each worker blocking on the servers' Pull(keys, minClock) wait, with no
// central coordinator anywhere.
//
// The runtime reproduces the simulator's numeric trajectory exactly: the
// same logical pipeline depth (a minibatch trains on weights missing exactly
// the last slocal local updates), the same lazy pulls of clock-versioned
// snapshots, the same gradient stream. RunConformance (conformance.go) runs
// both backends on one configuration and asserts they agree on minibatch,
// push, and pull counts, on the D-bound, and on the final weights.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hetpipe/internal/obs"
	"hetpipe/internal/ps"
	"hetpipe/internal/tensor"
	"hetpipe/internal/train"
	"hetpipe/internal/wsp"
)

// Config describes a live training run.
type Config struct {
	// Task is the training objective; gradients must be safe for concurrent
	// calls (train.LogReg and train.MLP are).
	Task train.Task
	// Workers is the number of virtual workers, N — one goroutine each.
	Workers int
	// Servers is the number of parameter-server shard hosts, M.
	Servers int
	// SLocal is the local staleness threshold (Nm-1 concurrent minibatches).
	SLocal int
	// D is the WSP clock-distance bound, enforced by blocking pulls.
	D int
	// LR is the SGD step size.
	LR float64
	// MaxMinibatches bounds each worker's minibatch count. Every worker gets
	// the same budget, which guarantees every blocking pull is eventually
	// satisfiable (no worker waits on a peer that already finished).
	MaxMinibatches int
	// Chunks is the number of named parameter shards spread over the
	// servers; 0 picks 4 per server.
	Chunks int
	// TCP runs every worker<->server interaction over real sockets
	// (ps.Serve / ps.Dial on loopback) instead of in-process calls.
	TCP bool
	// Observer, when non-nil, receives protocol events (minibatch
	// completions, pushes, pulls, observed clock advances) while the run is
	// in flight. Calls are serialized across workers; Event.Time is
	// wall-clock seconds since the worker phase started.
	Observer obs.Func
}

func (c *Config) validate() error {
	switch {
	case c.Task == nil:
		return fmt.Errorf("cluster: nil task")
	case c.Workers < 1:
		return fmt.Errorf("cluster: need at least one worker")
	case c.Servers < 1:
		return fmt.Errorf("cluster: need at least one server")
	case c.SLocal < 0 || c.D < 0:
		return fmt.Errorf("cluster: negative staleness parameters")
	case c.LR <= 0:
		return fmt.Errorf("cluster: learning rate must be positive")
	case c.MaxMinibatches < 1:
		return fmt.Errorf("cluster: zero minibatch budget")
	}
	return nil
}

// WorkerStats counts one worker's protocol actions.
type WorkerStats struct {
	Minibatches, Pushes, Pulls int
}

// Stats summarizes a live run.
type Stats struct {
	// Minibatches, Pushes, Pulls aggregate the per-worker counts.
	Minibatches, Pushes, Pulls int
	PerWorker                  []WorkerStats
	// FinalWeights is the clock-versioned snapshot at the final global
	// clock: the initial weights plus every pushed wave update, folded in
	// (wave, worker) order — directly comparable with the simulator's
	// RunStats.FinalWeights.
	FinalWeights tensor.Vector
	// GlobalClock is the final global clock (complete waves per worker).
	GlobalClock int
	// MaxClockDistance is the largest clock spread any shard observed; the
	// WSP bound guarantees <= D+1.
	MaxClockDistance int
	// Elapsed is wall-clock runtime of the worker phase.
	Elapsed time.Duration
}

// Run executes a live WSP training run and reports its statistics.
//
// The run can be cancelled or deadlined through ctx: cancellation closes the
// shard servers, which wakes every worker blocked in a D-bound pull (in
// process or over TCP), unwinds all worker goroutines, reaps the TCP
// listeners and their per-connection serve goroutines, and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	chunks := cfg.Chunks
	if chunks == 0 {
		chunks = 4 * cfg.Servers
	}
	space, err := newShardSpace(cfg.Task.Dim(), chunks)
	if err != nil {
		return nil, err
	}
	placement, err := ps.RoundRobin(space.Keys(), cfg.Servers)
	if err != nil {
		return nil, err
	}

	// Stand up the shard servers with the task's initial weights.
	w0 := cfg.Task.InitWeights()
	chunked := space.Split(w0)
	servers := make([]*ps.Server, cfg.Servers)
	for i := range servers {
		s, err := ps.NewServer(cfg.Workers)
		if err != nil {
			return nil, err
		}
		for _, key := range placement.KeysOn(i) {
			if err := s.Register(key, chunked[key]); err != nil {
				return nil, err
			}
		}
		servers[i] = s
	}

	// dial hands each worker its own backend set: shared in-process adapters,
	// or per-worker TCP clients (a ps.Client is single-caller by design).
	net, err := newNetwork(servers, cfg.TCP)
	if err != nil {
		return nil, err
	}
	defer net.shutdown()

	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			// Unblock every peer stuck in a D-bound pull; they unwind with
			// "server closed" errors which are suppressed below.
			for _, s := range servers {
				s.Close()
			}
		})
	}

	perWorker := make([]WorkerStats, cfg.Workers)
	start := time.Now()

	// emit serializes observer calls across worker goroutines and stamps
	// events with the wall clock. A nil observer costs one nil check.
	// Clock events are deduplicated under the same lock: each worker only
	// learns the global clock at its own gated pulls, so without the filter
	// a slow worker's later pull would replay an older clock value.
	var (
		obsMu        sync.Mutex
		clockEmitted int
	)
	emit := func(e obs.Event) {
		if cfg.Observer == nil {
			return
		}
		e.Backend = "live"
		e.Time = time.Since(start).Seconds()
		obsMu.Lock()
		defer obsMu.Unlock()
		if e.Kind == obs.KindClock {
			if e.Clock <= clockEmitted {
				return
			}
			clockEmitted = e.Clock
		}
		cfg.Observer(e)
	}

	// The context watcher turns cancellation into the same server-close
	// unblocking path worker failures use: every blocked pull wakes with a
	// "server closed" error and the workers unwind. firstErr records the
	// bare ctx.Err() so callers can errors.Is it. The watcher is joined
	// right after the workers, before firstErr or the servers' final state
	// is read — a cancellation from here on no longer affects this run.
	watcherStop := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-watcherStop:
		}
	}()

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			backends, err := net.dial()
			if err != nil {
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
			defer net.hangup(backends)
			sh, err := ps.NewSharded(placement, backends)
			if err != nil {
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
			st, err := runWorker(cfg, w, space, sh, emit)
			if err != nil {
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
			perWorker[w] = st
		}(w)
	}
	wg.Wait()
	close(watcherStop)
	<-watcherExited
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	// Read the final state directly off the servers we own.
	stats := &Stats{PerWorker: perWorker, Elapsed: elapsed}
	for _, st := range perWorker {
		stats.Minibatches += st.Minibatches
		stats.Pushes += st.Pushes
		stats.Pulls += st.Pulls
	}
	backends := make([]ps.Backend, len(servers))
	for i, s := range servers {
		backends[i] = ps.AdaptServer(s)
	}
	sh, err := ps.NewSharded(placement, backends)
	if err != nil {
		return nil, err
	}
	if stats.GlobalClock, err = sh.GlobalClock(); err != nil {
		return nil, err
	}
	final, err := sh.PullAt(space.Keys(), stats.GlobalClock)
	if err != nil {
		return nil, err
	}
	if stats.FinalWeights, err = space.Join(final); err != nil {
		return nil, err
	}
	if stats.MaxClockDistance, err = sh.MaxClockDistance(); err != nil {
		return nil, err
	}
	return stats, nil
}

// runWorker is one virtual worker's training loop: the same logical pipeline
// the simulator executes, against real servers. The snapshot for minibatch m
// reflects local updates through exactly m-Nm (retirement happens at a fixed
// logical lag of Nm), pushes carry one aggregated update per wave, and the
// D-bound gate is the servers' blocking snapshot pull.
func runWorker(cfg Config, id int, space *shardSpace, sh *ps.Sharded, emit obs.Func) (WorkerStats, error) {
	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return WorkerStats{}, err
	}
	dim := cfg.Task.Dim()

	var st WorkerStats
	wlocal := cfg.Task.InitWeights()
	waveAcc := tensor.NewVector(dim)
	grad := tensor.NewVector(dim)
	type pendingMB struct {
		mb      int
		weights tensor.Vector
	}
	var pending []pendingMB
	// waveDeltas[v] is this worker's pushed update of wave v, kept for the
	// own-update add-back after a pull: a clock-req snapshot excludes the
	// worker's own waves >= req, which it must not lose.
	var waveDeltas []tensor.Vector
	lastPulled := 0

	retire := func() error {
		p := pending[0]
		pending = pending[1:]
		cfg.Task.Grad(p.weights, train.MinibatchIndex(id, p.mb, cfg.Workers), grad)
		wlocal.AXPY(-cfg.LR, grad)
		waveAcc.AXPY(-cfg.LR, grad)
		st.Minibatches++
		emit(obs.Event{Kind: obs.KindMinibatch, VW: id, Minibatch: p.mb, Wave: params.Wave(p.mb)})
		if params.IsWaveEnd(p.mb) {
			delta := waveAcc.Clone()
			if err := sh.Push(id, space.Split(delta)); err != nil {
				return err
			}
			waveDeltas = append(waveDeltas, delta)
			waveAcc.Zero()
			st.Pushes++
			emit(obs.Event{Kind: obs.KindPush, VW: id, Wave: len(waveDeltas) - 1})
		}
		return nil
	}

	for mb := 1; mb <= cfg.MaxMinibatches; mb++ {
		// The WSP gate: the last minibatch of wave w may only start once the
		// global clock has reached w-D. Blocking on the servers' snapshot
		// pull IS the wait — every shard holds the worker until its clock
		// arrives, then answers from the same clock boundary.
		if req := params.RequiredGlobalClock(mb); req > 0 && lastPulled < req {
			snap, err := sh.PullAt(space.Keys(), req)
			if err != nil {
				return st, err
			}
			pulled, err := space.Join(snap)
			if err != nil {
				return st, err
			}
			wlocal = pulled
			for v := req; v < len(waveDeltas); v++ {
				wlocal.AddInPlace(waveDeltas[v])
			}
			wlocal.AddInPlace(waveAcc)
			lastPulled = req
			st.Pulls++
			// The pull's return proves the global clock reached req — the
			// only moment a live worker learns the global clock without
			// extra traffic.
			emit(obs.Event{Kind: obs.KindPull, VW: id, Clock: req})
			emit(obs.Event{Kind: obs.KindClock, VW: -1, Clock: req})
		}
		pending = append(pending, pendingMB{mb: mb, weights: wlocal.Clone()})
		if len(pending) > cfg.SLocal {
			if err := retire(); err != nil {
				return st, err
			}
		}
	}
	// End-of-run drain: retire the still-pending tail in order.
	for len(pending) > 0 {
		if err := retire(); err != nil {
			return st, err
		}
	}
	return st, nil
}
