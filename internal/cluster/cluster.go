// Package cluster is the live WSP training runtime: N virtual workers run as
// goroutines training a real numeric task against M real parameter-server
// shards (internal/ps), either in-process or over TCP. Where the simulator
// (internal/train.RunWSP) models the protocol's timing, this package
// executes its dataflow for real — the clock-distance bound D is enforced by
// each worker blocking on the servers' Pull(keys, minClock) wait, with no
// central coordinator anywhere.
//
// The runtime reproduces the simulator's numeric trajectory exactly: the
// same logical pipeline depth (a minibatch trains on weights missing exactly
// the last slocal local updates), the same lazy pulls of clock-versioned
// snapshots, the same gradient stream. RunConformance (conformance.go) runs
// both backends on one configuration and asserts they agree on minibatch,
// push, and pull counts, on the D-bound, and on the final weights.
//
// The runtime is also where fault plans (internal/fault) execute for real:
// straggler slowdowns, shard stalls, and link degradations become wall-clock
// sleeps (WSP numerics are timing-independent, so they change nothing but
// the clock), while crashes kill the worker's local state mid-run. A crashed
// worker recovers by restoring its last checkpoint (taken every
// Config.CheckpointEvery waves) and replaying forward under the same D-bound
// — pulls re-read the servers' clock-versioned snapshots and pushes of waves
// the servers already hold are suppressed — so the recovered trajectory, and
// therefore the final weights, are bit-identical to a fault-free run's.
// Config.CheckpointPath persists consistent clock-cut shard checkpoints
// (ps.Capture) for whole-process recovery, and Config.ResumeFrom restarts a
// run from such a file.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hetpipe/internal/fault"
	"hetpipe/internal/obs"
	"hetpipe/internal/ps"
	"hetpipe/internal/tensor"
	"hetpipe/internal/train"
	"hetpipe/internal/wsp"
)

// Config describes a live training run.
type Config struct {
	// Task is the training objective; gradients must be safe for concurrent
	// calls (train.LogReg and train.MLP are).
	Task train.Task
	// Workers is the number of virtual workers, N — one goroutine each.
	Workers int
	// Servers is the number of parameter-server shard hosts, M.
	Servers int
	// SLocal is the local staleness threshold (Nm-1 concurrent minibatches).
	SLocal int
	// D is the WSP clock-distance bound, enforced by blocking pulls.
	D int
	// LR is the SGD step size.
	LR float64
	// MaxMinibatches bounds each worker's minibatch count. Every worker gets
	// the same budget, which guarantees every blocking pull is eventually
	// satisfiable (no worker waits on a peer that already finished).
	MaxMinibatches int
	// Chunks is the number of named parameter shards spread over the
	// servers; 0 picks 4 per server.
	Chunks int
	// TCP runs every worker<->server interaction over real sockets
	// (ps.Serve / ps.Dial on loopback) instead of in-process calls.
	TCP bool
	// Observer, when non-nil, receives protocol events (minibatch
	// completions, pushes, pulls, observed clock advances, fault injections
	// and recoveries) while the run is in flight. Calls are serialized across
	// workers; Event.Time is wall-clock seconds since the worker phase
	// started.
	Observer obs.Func

	// Faults is the deterministic fault-injection plan (internal/fault)
	// applied to this run; nil or empty runs fault-free. Slowdowns, stalls,
	// and link degradations are wall-clock sleeps; crashes destroy the
	// worker's local state and exercise checkpoint recovery. Faults never
	// change the final weights — only the wall clock and the recovery
	// counters.
	Faults *fault.Plan
	// CheckpointEvery takes a checkpoint of each worker's local state every
	// that many pushed waves (and, with CheckpointPath set, persists a
	// consistent shard-server checkpoint at the same cadence). 0 disables
	// periodic checkpoints: a crashed worker then replays from minibatch 1.
	CheckpointEvery int
	// CheckpointPath, when non-empty, persists ps.SaveCheckpoint files of
	// the shard servers: at every CheckpointEvery cadence point (if any) and
	// once more at the end of a successful run. Each write is atomic and
	// truncated to a consistent clock cut, so the file is always resumable.
	CheckpointPath string
	// ResumeFrom, when non-empty, restores the shard servers from a
	// checkpoint file before training: workers deterministically replay their
	// minibatch streams, re-pushing only the waves at or above the
	// checkpoint's clock, and the run finishes with weights bit-identical to
	// an uninterrupted run of the same budget.
	ResumeFrom string
	// StepTime emulates per-minibatch compute time as a wall-clock sleep;
	// straggler slowdowns multiply it and link degradations scale the
	// per-transfer share. 0 (the default) runs as fast as possible, which
	// keeps timing faults invisible on the wall clock but still exercises
	// crash and recovery paths.
	StepTime time.Duration
}

func (c *Config) validate() error {
	switch {
	case c.Task == nil:
		return fmt.Errorf("cluster: nil task")
	case c.Workers < 1:
		return fmt.Errorf("cluster: need at least one worker")
	case c.Servers < 1:
		return fmt.Errorf("cluster: need at least one server")
	case c.SLocal < 0 || c.D < 0:
		return fmt.Errorf("cluster: negative staleness parameters")
	case c.LR <= 0:
		return fmt.Errorf("cluster: learning rate must be positive")
	case c.MaxMinibatches < 1:
		return fmt.Errorf("cluster: zero minibatch budget")
	case c.CheckpointEvery < 0:
		return fmt.Errorf("cluster: checkpoint interval must be >= 0")
	case c.StepTime < 0:
		return fmt.Errorf("cluster: step time must be >= 0")
	}
	return nil
}

// WorkerStats counts one worker's protocol actions.
type WorkerStats struct {
	Minibatches, Pushes, Pulls int
}

// Stats summarizes a live run.
type Stats struct {
	// Minibatches, Pushes, Pulls aggregate the per-worker counts. They are
	// logical protocol counts: a recovered or resumed run reports each
	// minibatch, push, and pull exactly once, as a fault-free run would.
	Minibatches, Pushes, Pulls int
	PerWorker                  []WorkerStats
	// FinalWeights is the clock-versioned snapshot at the final global
	// clock: the initial weights plus every pushed wave update, folded in
	// (wave, worker) order — directly comparable with the simulator's
	// RunStats.FinalWeights.
	FinalWeights tensor.Vector
	// GlobalClock is the final global clock (complete waves per worker).
	GlobalClock int
	// MaxClockDistance is the largest clock spread any shard observed; the
	// WSP bound guarantees <= D+1.
	MaxClockDistance int
	// Elapsed is wall-clock runtime of the worker phase.
	Elapsed time.Duration

	// Crashes and Recoveries count injected worker crashes and completed
	// checkpoint recoveries; ReplayedMinibatches counts the minibatches
	// re-executed between a restored checkpoint and its crash point.
	Crashes, Recoveries, ReplayedMinibatches int
	// Checkpoints counts worker-state checkpoints taken across workers.
	Checkpoints int
	// ResumedClock is the shard checkpoint's global clock when the run was
	// started with Config.ResumeFrom; 0 otherwise.
	ResumedClock int

	// ShardPushes and ShardPulls aggregate the shard servers' own operation
	// counters — the data-plane view of the run, as opposed to the logical
	// per-worker counts above (they differ under crash replay, where a
	// re-executed push hits the server but is reported logically once).
	// ShardMalformed counts protocol-level malformed TCP requests the
	// transport rejected; it is always zero for in-process runs and for any
	// healthy TCP run.
	ShardPushes, ShardPulls, ShardMalformed uint64
}

// errCrashed is the self-inflicted failure an injected crash raises; the
// worker wrapper catches it and recovers instead of poisoning the run.
var errCrashed = errors.New("cluster: worker crashed (injected fault)")

// pendingMB is an injected-but-not-retired minibatch's numeric state.
type pendingMB struct {
	mb      int
	weights tensor.Vector
}

// workerState is everything a worker's training loop owns — split out so a
// checkpoint is a deep clone and a recovery is a restore.
type workerState struct {
	nextMB     int // next 1-based minibatch to inject
	wlocal     tensor.Vector
	waveAcc    tensor.Vector
	pending    []pendingMB
	waveDeltas []tensor.Vector
	lastPulled int
	stats      WorkerStats
}

func newWorkerState(task train.Task) *workerState {
	return &workerState{
		nextMB:  1,
		wlocal:  task.InitWeights(),
		waveAcc: tensor.NewVector(task.Dim()),
	}
}

func (s *workerState) clone() *workerState {
	c := &workerState{
		nextMB:     s.nextMB,
		wlocal:     s.wlocal.Clone(),
		waveAcc:    s.waveAcc.Clone(),
		lastPulled: s.lastPulled,
		stats:      s.stats,
	}
	for _, p := range s.pending {
		c.pending = append(c.pending, pendingMB{mb: p.mb, weights: p.weights.Clone()})
	}
	for _, d := range s.waveDeltas {
		c.waveDeltas = append(c.waveDeltas, d.Clone())
	}
	return c
}

// workerRec is a worker's recovery bookkeeping. It lives outside runWorker so
// it survives a crash; it is only ever touched by the worker's own goroutine.
type workerRec struct {
	// ckpt is the last worker-state checkpoint (nil = recover from scratch).
	ckpt *workerState
	// lastCkptWave is the pushed-wave count at the last checkpoint.
	lastCkptWave int
	// pushed is the authoritative count of waves this worker has actually
	// pushed to the servers across all attempts — the clock version replay
	// suppression is keyed on.
	pushed int
	// crashed latches after the injected crash so replay does not re-fire it.
	crashed bool
	// maxRetired / maxPullClock / slowEmitted / linkEmitted dedupe observer
	// events across a recovery: a replayed retire, pull, or fault injection
	// is numerically necessary (or still in force) but was already reported
	// to the observer by the crashed attempt.
	maxRetired   int
	maxPullClock int
	slowEmitted  bool
	linkEmitted  bool

	crashes, recoveries, replayed, checkpoints int
}

// Run executes a live WSP training run and reports its statistics.
//
// The run can be cancelled or deadlined through ctx: cancellation closes the
// shard servers, which wakes every worker blocked in a D-bound pull (in
// process or over TCP), unwinds all worker goroutines, reaps the TCP
// listeners and their per-connection serve goroutines, and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fp, err := cfg.Faults.Materialize(cfg.Workers)
	if err != nil {
		return nil, err
	}
	chunks := cfg.Chunks
	if chunks == 0 {
		chunks = 4 * cfg.Servers
	}
	space, err := newShardSpace(cfg.Task.Dim(), chunks)
	if err != nil {
		return nil, err
	}
	placement, err := ps.RoundRobin(space.Keys(), cfg.Servers)
	if err != nil {
		return nil, err
	}

	// Stand up the shard servers: fresh from the task's initial weights, or
	// restored from a persisted checkpoint (Config.ResumeFrom).
	w0 := cfg.Task.InitWeights()
	chunked := space.Split(w0)
	var servers []*ps.Server
	resumedClock := 0
	if cfg.ResumeFrom != "" {
		ck, err := ps.LoadCheckpoint(cfg.ResumeFrom)
		if err != nil {
			return nil, err
		}
		if len(ck.States) != cfg.Servers {
			return nil, fmt.Errorf("cluster: checkpoint has %d shard servers, run wants %d", len(ck.States), cfg.Servers)
		}
		if got := len(ck.States[0].Clocks); got != cfg.Workers {
			return nil, fmt.Errorf("cluster: checkpoint has %d workers, run wants %d", got, cfg.Workers)
		}
		if servers, err = ck.Restore(); err != nil {
			return nil, err
		}
		// The checkpoint must describe this exact task and shard layout:
		// every placed key's initial weights must match bit for bit, or the
		// deterministic replay would diverge from the recorded prefix.
		for i, st := range ck.States {
			for _, key := range placement.KeysOn(i) {
				init, ok := st.Initial[key]
				if !ok {
					return nil, fmt.Errorf("cluster: checkpoint lacks shard %q for server %d (chunk layout mismatch?)", key, i)
				}
				want := chunked[key]
				if len(init) != len(want) {
					return nil, fmt.Errorf("cluster: checkpoint shard %q dim %d, task wants %d", key, len(init), len(want))
				}
				for j := range want {
					if init[j] != want[j] {
						return nil, fmt.Errorf("cluster: checkpoint shard %q initial weights diverge from the task (wrong task or seed?)", key)
					}
				}
			}
		}
		resumedClock = ck.Clock
		params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
		if err := params.Validate(); err != nil {
			return nil, err
		}
		if waves := params.CompleteWaves(cfg.MaxMinibatches); waves < resumedClock {
			return nil, fmt.Errorf("cluster: budget of %d waves is below the checkpoint clock %d", waves, resumedClock)
		}
	} else {
		servers = make([]*ps.Server, cfg.Servers)
		for i := range servers {
			s, err := ps.NewServer(cfg.Workers)
			if err != nil {
				return nil, err
			}
			for _, key := range placement.KeysOn(i) {
				if err := s.Register(key, chunked[key]); err != nil {
					return nil, err
				}
			}
			servers[i] = s
		}
	}

	// dial hands each worker its own backend set: shared in-process adapters,
	// or per-worker TCP clients (a ps.Client is single-caller by design).
	net, err := newNetwork(servers, cfg.TCP)
	if err != nil {
		return nil, err
	}
	defer net.shutdown()

	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			// Unblock every peer stuck in a D-bound pull; they unwind with
			// "server closed" errors which are suppressed below.
			for _, s := range servers {
				s.Close()
			}
		})
	}

	perWorker := make([]WorkerStats, cfg.Workers)
	recs := make([]*workerRec, cfg.Workers)
	start := time.Now()

	// emit serializes observer calls across worker goroutines and stamps
	// events with the wall clock. A nil observer costs one nil check.
	// Clock events are deduplicated under the same lock: each worker only
	// learns the global clock at its own gated pulls, so without the filter
	// a slow worker's later pull would replay an older clock value.
	var (
		obsMu        sync.Mutex
		clockEmitted int
	)
	emit := func(e obs.Event) {
		if cfg.Observer == nil {
			return
		}
		e.Backend = "live"
		e.Time = time.Since(start).Seconds()
		obsMu.Lock()
		defer obsMu.Unlock()
		if e.Kind == obs.KindClock {
			if e.Clock <= clockEmitted {
				return
			}
			clockEmitted = e.Clock
		}
		cfg.Observer(e)
	}

	// stallInject dedupes the cluster-wide stall injection event (several
	// workers sleep for the same stalled clock advance).
	var (
		stallMu      sync.Mutex
		stallEmitted = make(map[int]bool)
	)
	stallInject := func(clock int, delay float64) {
		stallMu.Lock()
		seen := stallEmitted[clock]
		stallEmitted[clock] = true
		stallMu.Unlock()
		if !seen {
			emit(obs.Event{Kind: obs.KindFaultInject, VW: -1, Clock: clock,
				Fault: fmt.Sprintf("stall:c%d:%g", clock, delay)})
		}
	}

	// The shard checkpointer persists a consistent clock-cut checkpoint of
	// the servers whenever a worker signals a cadence point, and once more at
	// the end of a successful run. Writes are atomic (ps.SaveCheckpoint), and
	// a capture that races the shutdown path simply fails on the closed
	// servers and is skipped.
	var (
		ckptTick chan struct{}
		ckptDone chan struct{}
	)
	saveServers := func() {
		ck, err := ps.Capture(servers)
		if err != nil {
			return // servers closing down — nothing left worth saving
		}
		if err := ps.SaveCheckpoint(cfg.CheckpointPath, ck); err != nil {
			fail(fmt.Errorf("cluster: shard checkpoint: %w", err))
		}
	}
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		ckptTick = make(chan struct{}, 1)
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			for range ckptTick {
				saveServers()
			}
		}()
	}
	notifyCkpt := func() {
		if ckptTick != nil {
			select {
			case ckptTick <- struct{}{}:
			default: // a write is already pending; the next capture covers us
			}
		}
	}

	// The context watcher turns cancellation into the same server-close
	// unblocking path worker failures use: every blocked pull wakes with a
	// "server closed" error and the workers unwind. firstErr records the
	// bare ctx.Err() so callers can errors.Is it. The watcher is joined
	// right after the workers, before firstErr or the servers' final state
	// is read — a cancellation from here on no longer affects this run.
	watcherStop := make(chan struct{})
	watcherExited := make(chan struct{})
	go func() {
		defer close(watcherExited)
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-watcherStop:
		}
	}()

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		rec := &workerRec{pushed: resumedClock}
		recs[w] = rec
		go func(w int, rec *workerRec) {
			defer wg.Done()
			backends, err := net.dial()
			if err != nil {
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
			defer net.hangup(backends)
			sh, err := ps.NewSharded(placement, backends)
			if err != nil {
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
			env := &workerEnv{
				cfg: cfg, id: w, space: space, sh: sh, emit: emit,
				faults: fp, rec: rec, stallInject: stallInject, notifyCkpt: notifyCkpt,
			}
			for {
				st, err := env.run()
				if err == nil {
					perWorker[w] = st
					return
				}
				if errors.Is(err, errCrashed) {
					// Recover: restore the last checkpoint (or scratch) and
					// replay. The crashed attempt's partial counts are
					// discarded — the restored state's counters plus the
					// replay re-count every action exactly once.
					c := fp.CrashFor(w)
					resumeMB := 1
					if rec.ckpt != nil {
						resumeMB = rec.ckpt.nextMB
					}
					rec.recoveries++
					rec.replayed += c.AtMinibatch - resumeMB
					emit(obs.Event{Kind: obs.KindRecover, VW: w, Minibatch: resumeMB,
						Clock: rec.pushed, Fault: fmt.Sprintf("crash:w%d:mb%d", w, c.AtMinibatch)})
					continue
				}
				fail(fmt.Errorf("cluster: worker %d: %w", w, err))
				return
			}
		}(w, rec)
	}
	wg.Wait()
	if ckptTick != nil {
		close(ckptTick)
		<-ckptDone
	}
	close(watcherStop)
	<-watcherExited
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	if cfg.CheckpointPath != "" {
		// Final durable checkpoint at the completed run's clock.
		saveServers()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	// Read the final state directly off the servers we own.
	stats := &Stats{PerWorker: perWorker, Elapsed: elapsed, ResumedClock: resumedClock}
	for _, st := range perWorker {
		stats.Minibatches += st.Minibatches
		stats.Pushes += st.Pushes
		stats.Pulls += st.Pulls
	}
	for _, rec := range recs {
		stats.Crashes += rec.crashes
		stats.Recoveries += rec.recoveries
		stats.ReplayedMinibatches += rec.replayed
		stats.Checkpoints += rec.checkpoints
	}
	for _, s := range servers {
		p, q := s.Stats()
		stats.ShardPushes += p
		stats.ShardPulls += q
		stats.ShardMalformed += s.MalformedRequests()
	}
	backends := make([]ps.Backend, len(servers))
	for i, s := range servers {
		backends[i] = ps.AdaptServer(s)
	}
	sh, err := ps.NewSharded(placement, backends)
	if err != nil {
		return nil, err
	}
	if stats.GlobalClock, err = sh.GlobalClock(); err != nil {
		return nil, err
	}
	final, err := sh.PullAt(space.Keys(), stats.GlobalClock)
	if err != nil {
		return nil, err
	}
	if stats.FinalWeights, err = space.Join(final); err != nil {
		return nil, err
	}
	if stats.MaxClockDistance, err = sh.MaxClockDistance(); err != nil {
		return nil, err
	}
	return stats, nil
}

// workerEnv bundles what one worker's training loop needs across attempts.
type workerEnv struct {
	cfg         Config
	id          int
	space       *shardSpace
	sh          *ps.Sharded
	emit        obs.Func
	faults      *fault.Plan
	rec         *workerRec
	stallInject func(clock int, delay float64)
	notifyCkpt  func()

	// Reusable data-plane scratch, persisting across crash-replay attempts:
	// pushVecs/pullVecs hold per-chunk views for the ps ordered APIs, and
	// freeWeights recycles retired pendingMB snapshot vectors so the
	// steady-state wave loop stops allocating one weight copy per minibatch.
	pushVecs    []tensor.Vector
	pullVecs    []tensor.Vector
	freeWeights []tensor.Vector
}

// getWeights returns a recycled (or fresh) vector holding a copy of src.
func (e *workerEnv) getWeights(src tensor.Vector) tensor.Vector {
	if n := len(e.freeWeights); n > 0 {
		v := e.freeWeights[n-1]
		e.freeWeights = e.freeWeights[:n-1]
		copy(v, src)
		return v
	}
	return src.Clone()
}

// putWeights recycles a pendingMB snapshot vector after retirement.
func (e *workerEnv) putWeights(v tensor.Vector) {
	e.freeWeights = append(e.freeWeights, v)
}

// sleep converts a fault delay in seconds into a wall-clock sleep.
func sleepSeconds(s float64) {
	if s > 0 {
		time.Sleep(time.Duration(s * float64(time.Second)))
	}
}

// run is one attempt at the worker's training loop: the same logical pipeline
// the simulator executes, against real servers. The snapshot for minibatch m
// reflects local updates through exactly m-Nm (retirement happens at a fixed
// logical lag of Nm), pushes carry one aggregated update per wave, and the
// D-bound gate is the servers' blocking snapshot pull.
//
// An attempt starts from the last checkpoint (or from scratch) and replays
// deterministically: pulls re-read clock-versioned snapshots, and pushes of
// waves the servers already hold (rec.pushed) are suppressed — counted, since
// they are logically part of the trajectory, but not re-sent. An injected
// crash aborts the attempt with errCrashed.
func (e *workerEnv) run() (WorkerStats, error) {
	cfg, id := e.cfg, e.id
	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return WorkerStats{}, err
	}
	dim := cfg.Task.Dim()

	var w *workerState
	if e.rec.ckpt != nil {
		w = e.rec.ckpt.clone()
	} else {
		w = newWorkerState(cfg.Task)
	}
	suppress := e.rec.pushed // waves the servers already hold
	crash := e.faults.CrashFor(id)
	linkScale := e.faults.LinkScale(id)
	grad := tensor.NewVector(dim)
	if len(e.pushVecs) != len(e.space.Keys()) {
		e.pushVecs = make([]tensor.Vector, len(e.space.Keys()))
		e.pullVecs = make([]tensor.Vector, len(e.space.Keys()))
	}

	// linkInject reports the degraded link once per run (not per attempt,
	// and independent of whether StepTime makes the degradation sleep).
	linkInject := func() {
		if linkScale > 1 && !e.rec.linkEmitted {
			e.rec.linkEmitted = true
			e.emit(obs.Event{Kind: obs.KindFaultInject, VW: id,
				Fault: fmt.Sprintf("link:w%d:x%g", id, linkScale)})
		}
	}

	retire := func() error {
		p := w.pending[0]
		w.pending = w.pending[1:]
		cfg.Task.Grad(p.weights, train.MinibatchIndex(id, p.mb, cfg.Workers), grad)
		e.putWeights(p.weights)
		w.wlocal.AXPY(-cfg.LR, grad)
		w.waveAcc.AXPY(-cfg.LR, grad)
		w.stats.Minibatches++
		if p.mb > e.rec.maxRetired {
			e.rec.maxRetired = p.mb
			e.emit(obs.Event{Kind: obs.KindMinibatch, VW: id, Minibatch: p.mb, Wave: params.Wave(p.mb)})
		}
		if params.IsWaveEnd(p.mb) {
			delta := w.waveAcc.Clone()
			wave := len(w.waveDeltas)
			w.waveDeltas = append(w.waveDeltas, delta)
			w.waveAcc.Zero()
			w.stats.Pushes++
			if wave < suppress {
				// Replay: the servers already hold this wave from the crashed
				// attempt (or the resumed checkpoint); re-sending it would
				// double-apply the update.
				return nil
			}
			if delay := e.faults.StallDelay(wave + 1); delay > 0 {
				e.stallInject(wave+1, delay)
				sleepSeconds(delay)
			}
			if linkScale > 1 {
				linkInject()
				sleepSeconds((linkScale - 1) * cfg.StepTime.Seconds())
			}
			e.space.SplitInto(delta, e.pushVecs)
			if err := e.sh.PushOrdered(id, e.space.Keys(), e.pushVecs); err != nil {
				return err
			}
			e.rec.pushed = wave + 1
			e.emit(obs.Event{Kind: obs.KindPush, VW: id, Wave: wave})
		}
		return nil
	}

	for ; w.nextMB <= cfg.MaxMinibatches; w.nextMB++ {
		mb := w.nextMB
		// Injected crash: fires at a minibatch boundary (never mid-push), at
		// most once. The attempt's local state is abandoned; the wrapper
		// restores the last checkpoint and replays.
		if crash != nil && !e.rec.crashed && mb == crash.AtMinibatch {
			e.rec.crashed = true
			e.rec.crashes++
			e.emit(obs.Event{Kind: obs.KindFaultInject, VW: id, Minibatch: mb,
				Fault: fmt.Sprintf("crash:w%d:mb%d", id, mb)})
			sleepSeconds(fault.CrashDowntime(crash))
			return w.stats, errCrashed
		}
		// Worker-state checkpoint at the wave cadence. The state at the top
		// of a loop iteration is self-contained, so any iteration whose
		// pushed-wave count just crossed a cadence point is a valid capture.
		if cfg.CheckpointEvery > 0 {
			if waves := len(w.waveDeltas); waves > e.rec.lastCkptWave && waves%cfg.CheckpointEvery == 0 {
				e.rec.ckpt = w.clone()
				e.rec.lastCkptWave = waves
				e.rec.checkpoints++
				e.notifyCkpt()
			}
		}
		// Emulated compute time, scaled by any straggler slowdown. The
		// injection event is per run, not per attempt — a replay after a
		// crash must not re-report a slowdown that never stopped.
		if scale := e.faults.ComputeScale(id, mb); scale > 1 {
			if !e.rec.slowEmitted {
				e.rec.slowEmitted = true
				e.emit(obs.Event{Kind: obs.KindFaultInject, VW: id, Minibatch: mb,
					Fault: fmt.Sprintf("slow:w%d:x%g", id, scale)})
			}
			sleepSeconds(cfg.StepTime.Seconds() * scale)
		} else if cfg.StepTime > 0 {
			time.Sleep(cfg.StepTime)
		}
		// The WSP gate: the last minibatch of wave w may only start once the
		// global clock has reached w-D. Blocking on the servers' snapshot
		// pull IS the wait — every shard holds the worker until its clock
		// arrives, then answers from the same clock boundary.
		if req := params.RequiredGlobalClock(mb); req > 0 && w.lastPulled < req {
			if linkScale > 1 {
				linkInject()
				sleepSeconds((linkScale - 1) * cfg.StepTime.Seconds())
			}
			// The snapshot chunks land straight in w.wlocal: pullVecs are
			// per-chunk views of it, so every shard server (or the TCP
			// decoder) writes its slice in place — no merge map, no join
			// allocation. Chunk ranges are disjoint, so the concurrent
			// fan-out writers never overlap.
			e.space.SplitInto(w.wlocal, e.pullVecs)
			if err := e.sh.PullAtInto(e.pullVecs, e.space.Keys(), req); err != nil {
				return w.stats, err
			}
			for v := req; v < len(w.waveDeltas); v++ {
				w.wlocal.AddInPlace(w.waveDeltas[v])
			}
			w.wlocal.AddInPlace(w.waveAcc)
			w.lastPulled = req
			w.stats.Pulls++
			if req > e.rec.maxPullClock {
				e.rec.maxPullClock = req
				// The pull's return proves the global clock reached req — the
				// only moment a live worker learns the global clock without
				// extra traffic.
				e.emit(obs.Event{Kind: obs.KindPull, VW: id, Clock: req})
				e.emit(obs.Event{Kind: obs.KindClock, VW: -1, Clock: req})
			}
		}
		w.pending = append(w.pending, pendingMB{mb: mb, weights: e.getWeights(w.wlocal)})
		if len(w.pending) > cfg.SLocal {
			if err := retire(); err != nil {
				return w.stats, err
			}
		}
	}
	// End-of-run drain: retire the still-pending tail in order.
	for len(w.pending) > 0 {
		if err := retire(); err != nil {
			return w.stats, err
		}
	}
	return w.stats, nil
}
