package cluster

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"hetpipe/internal/fault"
	"hetpipe/internal/obs"
	"hetpipe/internal/train"
)

// faultBase is the shared configuration of the fault tests: heterogeneous
// enough (3 workers, 2 shards, D=1, Nm=4) to exercise gated pulls and clock
// skew.
func faultBase(t *testing.T) Config {
	t.Helper()
	task, err := train.DefaultTask(17)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Task: task, Workers: 3, Servers: 2,
		SLocal: 3, D: 1, LR: 0.2, MaxMinibatches: 32,
	}
}

// identicalWeights fails the test unless a and b agree bit for bit.
func identicalWeights(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight dims %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: weights diverge at %d: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	cfg := faultBase(t)
	clean, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Plan{}
	cfg.CheckpointEvery = 2
	withEmpty, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	identicalWeights(t, "empty plan", clean.FinalWeights, withEmpty.FinalWeights)
	if clean.Minibatches != withEmpty.Minibatches || clean.Pushes != withEmpty.Pushes || clean.Pulls != withEmpty.Pulls {
		t.Fatalf("empty plan changed counts: %+v vs %+v", clean, withEmpty)
	}
	if withEmpty.Crashes != 0 || withEmpty.Recoveries != 0 {
		t.Fatalf("empty plan recorded fault activity: %+v", withEmpty)
	}
}

func TestCrashRecoveryBitIdentical(t *testing.T) {
	cfg := faultBase(t)
	clean, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := fault.Parse("crash:w1:mb18:down0.01")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.CheckpointEvery = 2
	faulted, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Crashes != 1 || faulted.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", faulted.Crashes, faulted.Recoveries)
	}
	if faulted.Checkpoints == 0 {
		t.Fatal("no worker checkpoints were taken")
	}
	if faulted.ReplayedMinibatches == 0 {
		t.Fatal("recovery replayed nothing — the crash never cost any work?")
	}
	identicalWeights(t, "crash recovery", clean.FinalWeights, faulted.FinalWeights)
	if clean.Minibatches != faulted.Minibatches || clean.Pushes != faulted.Pushes || clean.Pulls != faulted.Pulls {
		t.Fatalf("logical counts diverge: clean %d/%d/%d, faulted %d/%d/%d",
			clean.Minibatches, clean.Pushes, clean.Pulls,
			faulted.Minibatches, faulted.Pushes, faulted.Pulls)
	}
	if faulted.GlobalClock != clean.GlobalClock {
		t.Fatalf("global clock %d, want %d", faulted.GlobalClock, clean.GlobalClock)
	}
	if faulted.MaxClockDistance > cfg.D+1 {
		t.Fatalf("clock distance %d exceeds D+1=%d", faulted.MaxClockDistance, cfg.D+1)
	}
}

func TestCrashWithoutCheckpointReplaysFromScratch(t *testing.T) {
	cfg := faultBase(t)
	clean, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:w0:mb20:down0.01")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan // CheckpointEvery stays 0: recovery replays from mb 1
	faulted, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", faulted.Recoveries)
	}
	if faulted.ReplayedMinibatches != 19 {
		t.Fatalf("replayed %d minibatches, want 19 (crash at 20, restart at 1)", faulted.ReplayedMinibatches)
	}
	identicalWeights(t, "scratch recovery", clean.FinalWeights, faulted.FinalWeights)
	if clean.Pushes != faulted.Pushes || clean.Pulls != faulted.Pulls {
		t.Fatalf("counts diverge: %+v vs %+v", clean, faulted)
	}
}

func TestTimingFaultsConformExactly(t *testing.T) {
	task, err := train.DefaultTask(5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("slow:w0:x3,link:w1:x2,stall:s0:c2:0.005")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunConformance(context.Background(), ConformanceConfig{
		Task: task, Workers: 3, SLocal: 2, D: 1, LR: 0.2,
		MaxMinibatches: 24, Servers: 2, Seed: 5,
		Tolerance: -1, // exact bit-equality
		Faults:    plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatalf("timing faults broke conformance:\n%s", report)
	}
}

func TestCrashConformsExactly(t *testing.T) {
	task, err := train.DefaultTask(9)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:w2:mb15:down0.01")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunConformance(context.Background(), ConformanceConfig{
		Task: task, Workers: 4, SLocal: 3, D: 1, LR: 0.2,
		MaxMinibatches: 32, Servers: 2, Seed: 9,
		Tolerance:       -1, // exact bit-equality against the FAULT-FREE sim
		Faults:          plan,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Err(); err != nil {
		t.Fatalf("crash recovery broke conformance:\n%s", report)
	}
	if report.Crashes != 1 || report.Recoveries != 1 {
		t.Fatalf("report crashes=%d recoveries=%d, want 1/1", report.Crashes, report.Recoveries)
	}
}

func TestCrashRecoveryOverTCP(t *testing.T) {
	cfg := faultBase(t)
	clean, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("crash:w1:mb18:down0.01")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.CheckpointEvery = 2
	cfg.TCP = true
	faulted, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", faulted.Recoveries)
	}
	identicalWeights(t, "TCP crash recovery", clean.FinalWeights, faulted.FinalWeights)
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.ckpt")

	// Leg 1: a short run persists its shard state.
	cfg := faultBase(t)
	cfg.MaxMinibatches = 16
	cfg.CheckpointEvery = 2
	cfg.CheckpointPath = path
	leg1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if leg1.GlobalClock == 0 {
		t.Fatal("leg 1 pushed nothing")
	}

	// Leg 2: resume from the file with a doubled budget.
	resumed := faultBase(t)
	resumed.MaxMinibatches = 32
	resumed.ResumeFrom = path
	leg2, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if leg2.ResumedClock != leg1.GlobalClock {
		t.Fatalf("resumed at clock %d, checkpoint was at %d", leg2.ResumedClock, leg1.GlobalClock)
	}

	// The uninterrupted control run with the full budget.
	control := faultBase(t)
	control.MaxMinibatches = 32
	clean, err := Run(context.Background(), control)
	if err != nil {
		t.Fatal(err)
	}
	identicalWeights(t, "checkpoint resume", clean.FinalWeights, leg2.FinalWeights)
	if leg2.GlobalClock != clean.GlobalClock {
		t.Fatalf("resumed clock %d, uninterrupted %d", leg2.GlobalClock, clean.GlobalClock)
	}
	if leg2.Pushes != clean.Pushes || leg2.Pulls != clean.Pulls || leg2.Minibatches != clean.Minibatches {
		t.Fatalf("logical counts diverge: resumed %d/%d/%d, uninterrupted %d/%d/%d",
			leg2.Minibatches, leg2.Pushes, leg2.Pulls,
			clean.Minibatches, clean.Pushes, clean.Pulls)
	}
}

func TestResumeRejectsMismatchedRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.ckpt")
	cfg := faultBase(t)
	cfg.MaxMinibatches = 16
	cfg.CheckpointPath = path
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	// Wrong worker count.
	bad := faultBase(t)
	bad.Workers = 4
	bad.ResumeFrom = path
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("resume accepted a mismatched worker count")
	}

	// Wrong task data (different seed → different initial weights would be
	// fine for logreg's zero init, so use a budget below the checkpoint
	// clock instead, which must also be rejected).
	short := faultBase(t)
	short.MaxMinibatches = 4 // 1 wave, below the checkpoint's clock
	short.ResumeFrom = path
	if _, err := Run(context.Background(), short); err == nil {
		t.Error("resume accepted a budget below the checkpoint clock")
	}

	// A garbage file.
	bogus := faultBase(t)
	bogus.ResumeFrom = filepath.Join(dir, "missing.ckpt")
	if _, err := Run(context.Background(), bogus); err == nil {
		t.Error("resume accepted a missing checkpoint file")
	}
}

func TestFaultPlanWorkerRangeChecked(t *testing.T) {
	cfg := faultBase(t)
	plan, err := fault.Parse("slow:w7:x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("Run accepted a fault plan naming worker 7 of 3")
	}
}

func TestObserverSeesInjectAndRecover(t *testing.T) {
	cfg := faultBase(t)
	// Slowdown and crash on the SAME worker: the recovery replay passes the
	// slowed minibatches again, and must not re-report the slowdown.
	plan, err := fault.Parse("crash:w1:mb18:down0.01,slow:w1:x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cfg.CheckpointEvery = 2

	var mu sync.Mutex
	kinds := map[obs.Kind]int{}
	injects := map[string]int{}
	var crashFault, recoverFault string
	cfg.Observer = func(e obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		kinds[e.Kind]++
		switch e.Kind {
		case obs.KindFaultInject:
			injects[e.Fault]++
			if e.Fault == "crash:w1:mb18" {
				crashFault = e.Fault
			}
		case obs.KindRecover:
			recoverFault = e.Fault
		}
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if kinds[obs.KindFaultInject] != 2 {
		t.Fatalf("saw %d inject events, want exactly 2 (crash + slowdown once each): %v",
			kinds[obs.KindFaultInject], injects)
	}
	if injects["slow:w1:x2"] != 1 {
		t.Fatalf("slowdown reported %d times, want once despite the replay", injects["slow:w1:x2"])
	}
	if kinds[obs.KindRecover] != 1 {
		t.Fatalf("saw %d recover events, want 1", kinds[obs.KindRecover])
	}
	if crashFault != "crash:w1:mb18" {
		t.Errorf("crash inject fault = %q", crashFault)
	}
	if recoverFault != "crash:w1:mb18" {
		t.Errorf("recover fault = %q", recoverFault)
	}
	// Replay must not double-report progress: minibatch events are deduped,
	// so their count equals the logical budget.
	if got, want := kinds[obs.KindMinibatch], cfg.Workers*cfg.MaxMinibatches; got != want {
		t.Errorf("minibatch events %d, want %d (replay must not double-report)", got, want)
	}
}
