package cluster

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"context"
	"hetpipe/internal/obs"
	"strings"
	"testing"

	"hetpipe/internal/tensor"
	"hetpipe/internal/train"
	"hetpipe/internal/wsp"
)

func testTask(t *testing.T) *train.LogReg {
	t.Helper()
	lt, err := train.DefaultTask(21)
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestShardSpaceSplitJoinRoundTrip(t *testing.T) {
	s, err := newShardSpace(11, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.NewVector(11)
	for i := range v {
		v[i] = float64(i)
	}
	back, err := s.Join(s.Split(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("round trip diverges at %d: %g vs %g", i, back[i], v[i])
		}
	}
	// More chunks than parameters degrades gracefully.
	if _, err := newShardSpace(3, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := newShardSpace(0, 1); err == nil {
		t.Error("empty vector accepted")
	}
}

func TestLiveRunCountsAndDistanceBound(t *testing.T) {
	lt := testTask(t)
	const workers, slocal, d, maxMB = 4, 2, 1, 36
	stats, err := Run(context.Background(), Config{
		Task: lt, Workers: workers, Servers: 2, SLocal: slocal, D: d,
		LR: 0.2, MaxMinibatches: maxMB,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := wsp.Params{SLocal: slocal, D: d, Workers: workers}
	if want := workers * maxMB; stats.Minibatches != want {
		t.Errorf("minibatches = %d, want %d", stats.Minibatches, want)
	}
	if want := workers * params.CompleteWaves(maxMB); stats.Pushes != want {
		t.Errorf("pushes = %d, want %d", stats.Pushes, want)
	}
	if want := workers * params.GatedPulls(maxMB); stats.Pulls != want {
		t.Errorf("pulls = %d, want %d", stats.Pulls, want)
	}
	if want := params.CompleteWaves(maxMB); stats.GlobalClock != want {
		t.Errorf("global clock = %d, want %d", stats.GlobalClock, want)
	}
	if stats.MaxClockDistance > d+1 {
		t.Errorf("clock distance %d exceeds D+1=%d", stats.MaxClockDistance, d+1)
	}
	// The model actually learned on the live path.
	if acc := lt.Accuracy(stats.FinalWeights); acc < 0.6 {
		t.Errorf("live accuracy = %.3f, want > 0.6", acc)
	}
}

func TestLiveRunDeterministicAcrossSchedules(t *testing.T) {
	// Goroutine scheduling varies run to run; the trajectory must not.
	lt := testTask(t)
	cfg := Config{
		Task: lt, Workers: 3, Servers: 2, SLocal: 1, D: 2,
		LR: 0.25, MaxMinibatches: 24,
	}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.FinalWeights {
		if a.FinalWeights[i] != b.FinalWeights[i] {
			t.Fatalf("live runs diverge at %d: %g vs %g", i, a.FinalWeights[i], b.FinalWeights[i])
		}
	}
	if a.Pulls != b.Pulls || a.Pushes != b.Pushes {
		t.Errorf("counts diverge across runs: %d/%d vs %d/%d", a.Pushes, a.Pulls, b.Pushes, b.Pulls)
	}
}

func TestLiveRunValidation(t *testing.T) {
	lt := testTask(t)
	bad := []Config{
		{Workers: 1, Servers: 1, LR: 0.1, MaxMinibatches: 1},           // nil task
		{Task: lt, Workers: 0, Servers: 1, LR: 0.1, MaxMinibatches: 1}, // workers
		{Task: lt, Workers: 1, Servers: 0, LR: 0.1, MaxMinibatches: 1}, // servers
		{Task: lt, Workers: 1, Servers: 1, LR: 0, MaxMinibatches: 1},   // lr
		{Task: lt, Workers: 1, Servers: 1, LR: 0.1, MaxMinibatches: 0}, // budget
		{Task: lt, Workers: 1, Servers: 1, SLocal: -1, LR: 0.1, MaxMinibatches: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLiveRunShortBudgetNeverPulls(t *testing.T) {
	// A run shorter than D+1 waves has no gated wave-end: no worker ever
	// blocks, and the final weights are just the pushed-sum of local SGD.
	lt := testTask(t)
	stats, err := Run(context.Background(), Config{
		Task: lt, Workers: 2, Servers: 1, SLocal: 0, D: 0,
		LR: 0.2, MaxMinibatches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Minibatches != 2 {
		t.Errorf("minibatches = %d, want 2", stats.Minibatches)
	}
	if stats.Pulls != 0 {
		t.Errorf("pulls = %d, want 0 (run shorter than D+1 waves)", stats.Pulls)
	}
}

// brokenTask reports a dimension its weights cannot satisfy, to exercise the
// setup error path.
type brokenTask struct{ *train.LogReg }

func (b brokenTask) Dim() int { return 0 }

func TestLiveRunSetupErrors(t *testing.T) {
	lt := testTask(t)
	if _, err := Run(context.Background(), Config{
		Task: brokenTask{lt}, Workers: 1, Servers: 1, LR: 0.1, MaxMinibatches: 1,
	}); err == nil || !strings.Contains(err.Error(), "empty parameter vector") {
		t.Errorf("broken task error = %v", err)
	}
}

func TestLiveRunContextCancellation(t *testing.T) {
	lt := testTask(t)

	// Pre-cancelled: nothing starts.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := Run(pre, Config{
		Task: lt, Workers: 2, Servers: 1, SLocal: 1, D: 0,
		LR: 0.2, MaxMinibatches: 8,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run = %v, want context.Canceled", err)
	}

	// Cancelled mid-run, for both transports: the run must return
	// ctx.Err() with every worker goroutine and serve loop reaped.
	for _, tcp := range []bool{false, true} {
		name := "inprocess"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := Run(ctx, Config{
					Task: lt, Workers: 3, Servers: 2, SLocal: 1, D: 0,
					LR: 0.2, MaxMinibatches: 1_000_000, TCP: tcp,
				})
				errc <- err
			}()
			time.Sleep(30 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run(cancelled) = %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled Run did not return")
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > baseline+2 {
				if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d > baseline %d",
						runtime.NumGoroutine(), baseline)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

func TestLiveRunObserverStream(t *testing.T) {
	lt := testTask(t)
	const workers, slocal, d, maxMB = 3, 1, 1, 20
	var mu sync.Mutex
	counts := map[obs.Kind]int{}
	stats, err := Run(context.Background(), Config{
		Task: lt, Workers: workers, Servers: 2, SLocal: slocal, D: d,
		LR: 0.2, MaxMinibatches: maxMB,
		Observer: func(e obs.Event) {
			if e.Backend != "live" {
				t.Errorf("event backend = %q, want live", e.Backend)
			}
			mu.Lock()
			counts[e.Kind]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[obs.KindMinibatch] != stats.Minibatches {
		t.Errorf("minibatch events = %d, want %d", counts[obs.KindMinibatch], stats.Minibatches)
	}
	if counts[obs.KindPush] != stats.Pushes {
		t.Errorf("push events = %d, want %d", counts[obs.KindPush], stats.Pushes)
	}
	if counts[obs.KindPull] != stats.Pulls {
		t.Errorf("pull events = %d, want %d", counts[obs.KindPull], stats.Pulls)
	}
}
