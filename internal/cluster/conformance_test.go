package cluster

import (
	"context"
	"testing"

	"hetpipe/internal/train"
)

// TestSimLiveConformance is the differential acceptance suite: the same
// (task, N, Nm, D) configuration runs through the discrete-event simulator
// and the live sharded-PS runtime, and the two must agree on every protocol
// count, respect the D-bound, and land on the same weights within 1e-6 —
// across worker counts, staleness settings, shard counts, and one real-TCP
// configuration.
func TestSimLiveConformance(t *testing.T) {
	lt, err := train.DefaultTask(13)
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := train.DefaultMLPTask(31)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ConformanceConfig
	}{
		{"N2_Nm1_D0", ConformanceConfig{
			Task: lt, Workers: 2, SLocal: 0, D: 0, LR: 0.3,
			MaxMinibatches: 24, Servers: 2,
		}},
		{"N3_Nm3_D1_heterogeneous_timing", ConformanceConfig{
			Task: lt, Workers: 3, SLocal: 2, D: 1, LR: 0.2,
			MaxMinibatches: 36, Servers: 2, Chunks: 7,
			Periods:  []float64{0.05, 0.3, 1.1},
			PushTime: []float64{0.4, 0, 0.1},
			PullTime: []float64{0.2, 0.6, 0},
			Jitter:   0.15, Seed: 9,
		}},
		{"N4_Nm4_D4_many_shards", ConformanceConfig{
			Task: lt, Workers: 4, SLocal: 3, D: 4, LR: 0.2,
			MaxMinibatches: 48, Servers: 3, Chunks: 16,
		}},
		{"N3_Nm2_D0_tcp", ConformanceConfig{
			Task: lt, Workers: 3, SLocal: 1, D: 0, LR: 0.25,
			MaxMinibatches: 20, Servers: 2, TCP: true,
		}},
		{"N2_Nm2_D1_mlp", ConformanceConfig{
			Task: mlp, Workers: 2, SLocal: 1, D: 1, LR: 0.15,
			MaxMinibatches: 24, Servers: 2,
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			report, err := RunConformance(context.Background(), c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := report.Err(); err != nil {
				t.Fatalf("%v\n%s", err, report)
			}
			if report.MaxWeightDiff > 1e-9 {
				// Not a failure — the bound is 1e-6 — but worth surfacing:
				// the two backends fold identical update sets, so the drift
				// should stay in round-off territory.
				t.Logf("weight drift %g larger than round-off", report.MaxWeightDiff)
			}
		})
	}
}
