package cluster

import (
	"fmt"

	"hetpipe/internal/tensor"
)

// shardSpace chunks a flat parameter vector into named contiguous ranges —
// the unit of placement across parameter servers. The paper shards model
// layers over per-node servers; for the numeric tasks the "layers" are
// equal slices of the weight vector.
type shardSpace struct {
	dim    int
	keys   []string
	ranges [][2]int // [lo, hi) per key
}

// newShardSpace splits dim parameters into `chunks` near-equal ranges.
func newShardSpace(dim, chunks int) (*shardSpace, error) {
	if dim < 1 {
		return nil, fmt.Errorf("cluster: empty parameter vector")
	}
	if chunks < 1 {
		return nil, fmt.Errorf("cluster: need at least one chunk")
	}
	if chunks > dim {
		chunks = dim
	}
	s := &shardSpace{dim: dim}
	size := (dim + chunks - 1) / chunks
	for lo := 0; lo < dim; lo += size {
		hi := lo + size
		if hi > dim {
			hi = dim
		}
		s.ranges = append(s.ranges, [2]int{lo, hi})
		s.keys = append(s.keys, fmt.Sprintf("chunk%04d", len(s.keys)))
	}
	return s, nil
}

// Keys lists the chunk keys in range order.
func (s *shardSpace) Keys() []string { return s.keys }

// Split views a flat vector as per-chunk slices (no copies).
func (s *shardSpace) Split(v tensor.Vector) map[string]tensor.Vector {
	out := make(map[string]tensor.Vector, len(s.keys))
	for i, k := range s.keys {
		out[k] = v[s.ranges[i][0]:s.ranges[i][1]]
	}
	return out
}

// SplitInto fills vecs[i] with the chunk-i view of v (no copies) — the
// ordered, allocation-free companion of Split for the wave hot loop, shaped
// for the ps ordered APIs (vecs[i] pairs with Keys()[i]). len(vecs) must be
// len(Keys()).
//
//hetlint:hotpath
func (s *shardSpace) SplitInto(v tensor.Vector, vecs []tensor.Vector) {
	for i := range s.keys {
		vecs[i] = v[s.ranges[i][0]:s.ranges[i][1]]
	}
}

// Join assembles per-chunk slices back into a flat vector.
func (s *shardSpace) Join(m map[string]tensor.Vector) (tensor.Vector, error) {
	v := tensor.NewVector(s.dim)
	for i, k := range s.keys {
		chunk, ok := m[k]
		if !ok {
			return nil, fmt.Errorf("cluster: missing chunk %q", k)
		}
		lo, hi := s.ranges[i][0], s.ranges[i][1]
		if len(chunk) != hi-lo {
			return nil, fmt.Errorf("cluster: chunk %q length %d, want %d", k, len(chunk), hi-lo)
		}
		copy(v[lo:hi], chunk)
	}
	return v, nil
}
