package cluster

import (
	"context"
	"fmt"
	"math"

	"hetpipe/internal/fault"
	"hetpipe/internal/train"
	"hetpipe/internal/wsp"
)

// ConformanceConfig fixes one (task, N, Nm, D) configuration to run through
// both backends: the discrete-event simulator (train.RunWSP) and the live
// sharded-PS runtime (Run).
type ConformanceConfig struct {
	Task           train.Task
	Workers        int
	SLocal         int
	D              int
	LR             float64
	MaxMinibatches int
	// Servers / Chunks / TCP configure the live side.
	Servers int
	Chunks  int
	TCP     bool
	// Periods / PushTime / PullTime / Jitter / Seed configure the simulated
	// timing. Timing shapes the simulator's clock, never its numerics, so
	// ANY timing here must conform — nil Periods defaults to a deliberately
	// heterogeneous mix to make that point.
	Periods            []float64
	PushTime, PullTime []float64
	Jitter             float64
	Seed               int64
	// Tolerance bounds the final-weight disagreement; 0 means the default
	// 1e-6, negative demands exact bit-equality.
	Tolerance float64
	// Faults, when non-nil, is applied to the LIVE half only: the simulator
	// runs fault-free. This is the strongest form of the conformance claim —
	// stragglers, stalls, link degradations, and even crash-plus-recovery
	// may reshape the live run's wall clock and recovery counters, but its
	// protocol counts and final weights must still match the fault-free
	// simulation exactly.
	Faults *fault.Plan
	// CheckpointEvery is the live half's worker-checkpoint cadence in waves
	// (used by crash recovery); 0 replays crashes from minibatch 1.
	CheckpointEvery int
}

// SideCounts are one backend's protocol counters.
type SideCounts struct {
	Minibatches, Pushes, Pulls, MaxClockDistance int
}

// ConformanceReport compares the two backends on one configuration.
type ConformanceReport struct {
	Sim, Live SideCounts
	// Want holds the analytically expected counts from the protocol
	// arithmetic (wsp.Params), which both backends must hit exactly.
	Want SideCounts
	// MaxWeightDiff is the largest absolute per-coordinate difference
	// between the two final weight vectors.
	MaxWeightDiff float64
	// DBound is the protocol guarantee D+1 on the clock distance.
	DBound    int
	Tolerance float64
	// Crashes, Recoveries, and ReplayedMinibatches report the live half's
	// fault activity (zero for a fault-free configuration).
	Crashes, Recoveries, ReplayedMinibatches int
}

// Err reports nil when the backends conform: counts match the protocol
// arithmetic, neither side violates the D-bound, and the final weights agree
// within tolerance.
func (r *ConformanceReport) Err() error {
	if r.Sim.Minibatches != r.Want.Minibatches || r.Live.Minibatches != r.Want.Minibatches {
		return fmt.Errorf("cluster: minibatches sim=%d live=%d want=%d", r.Sim.Minibatches, r.Live.Minibatches, r.Want.Minibatches)
	}
	if r.Sim.Pushes != r.Want.Pushes || r.Live.Pushes != r.Want.Pushes {
		return fmt.Errorf("cluster: pushes sim=%d live=%d want=%d", r.Sim.Pushes, r.Live.Pushes, r.Want.Pushes)
	}
	if r.Sim.Pulls != r.Want.Pulls || r.Live.Pulls != r.Want.Pulls {
		return fmt.Errorf("cluster: pulls sim=%d live=%d want=%d", r.Sim.Pulls, r.Live.Pulls, r.Want.Pulls)
	}
	if r.Sim.MaxClockDistance > r.DBound {
		return fmt.Errorf("cluster: simulator clock distance %d exceeds D+1=%d", r.Sim.MaxClockDistance, r.DBound)
	}
	if r.Live.MaxClockDistance > r.DBound {
		return fmt.Errorf("cluster: live clock distance %d exceeds D+1=%d", r.Live.MaxClockDistance, r.DBound)
	}
	if r.MaxWeightDiff > r.Tolerance {
		return fmt.Errorf("cluster: final weights diverge by %g (tolerance %g)", r.MaxWeightDiff, r.Tolerance)
	}
	return nil
}

// String renders the report for CLIs.
func (r *ConformanceReport) String() string {
	verdict := "CONFORMANT"
	if err := r.Err(); err != nil {
		verdict = "DIVERGENT: " + err.Error()
	}
	faults := ""
	if r.Crashes > 0 || r.Recoveries > 0 {
		faults = fmt.Sprintf("live faults: %d crashes, %d recoveries, %d minibatches replayed\n",
			r.Crashes, r.Recoveries, r.ReplayedMinibatches)
	}
	return fmt.Sprintf(
		"sim:  minibatches=%d pushes=%d pulls=%d maxClockDistance=%d\n"+
			"live: minibatches=%d pushes=%d pulls=%d maxClockDistance=%d\n"+
			"want: minibatches=%d pushes=%d pulls=%d (D-bound %d)\n"+
			"%smax |w_sim - w_live| = %.3g (tolerance %g)\n%s",
		r.Sim.Minibatches, r.Sim.Pushes, r.Sim.Pulls, r.Sim.MaxClockDistance,
		r.Live.Minibatches, r.Live.Pushes, r.Live.Pulls, r.Live.MaxClockDistance,
		r.Want.Minibatches, r.Want.Pushes, r.Want.Pulls, r.DBound,
		faults, r.MaxWeightDiff, r.Tolerance, verdict)
}

// RunConformance executes the same configuration through the simulator and
// the live runtime and compares them. This is the differential harness that
// flushed out the clock/timing fidelity bugs this package exists to guard
// against (PipeDream and Narayanan et al. validate their schedulers the same
// way: real execution path against the analytical model). ctx cancels the
// live half (the simulator half is a bounded pure computation).
func RunConformance(ctx context.Context, cfg ConformanceConfig) (*ConformanceReport, error) {
	periods := cfg.Periods
	if periods == nil {
		periods = make([]float64, cfg.Workers)
		for w := range periods {
			// A deliberately whimpy-heterogeneous default: 1x..~3x spread.
			periods[w] = 0.1 * (1 + 0.7*float64(w%4))
		}
	}
	tol := cfg.Tolerance
	switch {
	case tol == 0:
		tol = 1e-6
	case tol < 0:
		tol = 0 // exact bit-equality
	}

	sim, err := train.RunWSP(train.WSPConfig{
		Task: cfg.Task, Workers: cfg.Workers, SLocal: cfg.SLocal, D: cfg.D,
		LR: cfg.LR, Periods: periods, PushTime: cfg.PushTime, PullTime: cfg.PullTime,
		Jitter: cfg.Jitter, Seed: cfg.Seed,
		MaxMinibatches: cfg.MaxMinibatches,
		// Evaluation cadence is irrelevant to conformance; keep it rare.
		EvalEvery: cfg.MaxMinibatches * cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: simulator: %w", err)
	}

	live, err := Run(ctx, Config{
		Task: cfg.Task, Workers: cfg.Workers, Servers: cfg.Servers,
		SLocal: cfg.SLocal, D: cfg.D, LR: cfg.LR,
		MaxMinibatches: cfg.MaxMinibatches, Chunks: cfg.Chunks, TCP: cfg.TCP,
		Faults: cfg.Faults, CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: live runtime: %w", err)
	}

	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	report := &ConformanceReport{
		Sim:  SideCounts{sim.Minibatches, sim.Pushes, sim.Pulls, sim.MaxClockDistance},
		Live: SideCounts{live.Minibatches, live.Pushes, live.Pulls, live.MaxClockDistance},
		Want: SideCounts{
			Minibatches: cfg.Workers * cfg.MaxMinibatches,
			Pushes:      cfg.Workers * params.CompleteWaves(cfg.MaxMinibatches),
			Pulls:       cfg.Workers * params.GatedPulls(cfg.MaxMinibatches),
		},
		DBound:              cfg.D + 1,
		Tolerance:           tol,
		Crashes:             live.Crashes,
		Recoveries:          live.Recoveries,
		ReplayedMinibatches: live.ReplayedMinibatches,
	}
	if len(sim.FinalWeights) != len(live.FinalWeights) {
		return nil, fmt.Errorf("cluster: weight dimensions diverge: %d vs %d", len(sim.FinalWeights), len(live.FinalWeights))
	}
	for i := range sim.FinalWeights {
		if d := math.Abs(sim.FinalWeights[i] - live.FinalWeights[i]); d > report.MaxWeightDiff {
			report.MaxWeightDiff = d
		}
	}
	return report, nil
}
