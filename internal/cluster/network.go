package cluster

import (
	"fmt"
	"net"
	"sync"

	"hetpipe/internal/ps"
)

// network hands workers their backend sets: shared in-process adapters, or
// per-worker TCP clients over loopback listeners (a ps.Client serves one
// caller at a time, so every worker dials its own connections — exactly how
// the paper's per-node servers are reached).
type network struct {
	tcp       bool
	inprocess []ps.Backend
	listeners []net.Listener
	addrs     []string
	served    sync.WaitGroup
}

func newNetwork(servers []*ps.Server, tcp bool) (*network, error) {
	n := &network{tcp: tcp}
	if !tcp {
		for _, s := range servers {
			n.inprocess = append(n.inprocess, ps.AdaptServer(s))
		}
		return n, nil
	}
	for i, s := range servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.shutdown()
			return nil, fmt.Errorf("cluster: listen for shard %d: %w", i, err)
		}
		n.listeners = append(n.listeners, l)
		n.addrs = append(n.addrs, l.Addr().String())
		n.served.Add(1)
		go func(l net.Listener, s *ps.Server) {
			defer n.served.Done()
			ps.Serve(l, s)
		}(l, s)
	}
	return n, nil
}

// dial returns one backend per shard server for a single worker.
func (n *network) dial() ([]ps.Backend, error) {
	if !n.tcp {
		return n.inprocess, nil
	}
	backends := make([]ps.Backend, 0, len(n.addrs))
	for i, addr := range n.addrs {
		c, err := ps.Dial(addr)
		if err != nil {
			n.hangup(backends)
			return nil, fmt.Errorf("cluster: dial shard %d: %w", i, err)
		}
		backends = append(backends, c)
	}
	return backends, nil
}

// hangup closes a worker's TCP clients (no-op for in-process backends).
func (n *network) hangup(backends []ps.Backend) {
	for _, b := range backends {
		if c, ok := b.(*ps.Client); ok {
			c.Close()
		}
	}
}

// shutdown closes the listeners and waits for their serve loops.
func (n *network) shutdown() {
	for _, l := range n.listeners {
		l.Close()
	}
	n.served.Wait()
}
