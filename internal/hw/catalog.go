// Package hw models the heterogeneous GPU cluster hardware of the HetPipe
// paper: the four GPU types of Table 1, nodes with homogeneous GPU sets,
// PCIe 3.0 x16 intra-node links, 56 Gbps InfiniBand inter-node links, and the
// three resource-allocation policies of Table 3 (NP, ED, HD) plus the
// incremental GPU sets of Table 4.
//
// The package carries only static hardware facts. Timing predictions built on
// top of these facts (effective compute rates, the PCIe scaling-down
// constant, the InfiniBand linear-regression model) live in internal/profile,
// mirroring the paper's split between cluster configuration and the Section 7
// performance model.
package hw

import "fmt"

// GPUType describes one row of Table 1.
type GPUType struct {
	// Name is the marketing name, e.g. "TITAN V".
	Name string
	// Code is the single-letter abbreviation the paper uses in allocation
	// strings: 'V', 'R', 'G', or 'Q'.
	Code byte
	// Arch is the microarchitecture generation.
	Arch string
	// CUDACores is the shader core count.
	CUDACores int
	// BoostMHz is the boost clock in MHz.
	BoostMHz int
	// MemoryBytes is the on-board memory capacity.
	MemoryBytes int64
	// MemBandwidth is the peak memory bandwidth in bytes/second.
	MemBandwidth float64
}

const gib = int64(1) << 30

// The four GPU types of Table 1. Memory sizes are the marketing GB figures
// interpreted as GiB; bandwidths are GB/s as printed.
var (
	TitanV = &GPUType{
		Name: "TITAN V", Code: 'V', Arch: "Volta",
		CUDACores: 5120, BoostMHz: 1455,
		MemoryBytes: 12 * gib, MemBandwidth: 653e9,
	}
	TitanRTX = &GPUType{
		Name: "TITAN RTX", Code: 'R', Arch: "Turing",
		CUDACores: 4608, BoostMHz: 1770,
		MemoryBytes: 24 * gib, MemBandwidth: 672e9,
	}
	RTX2060 = &GPUType{
		Name: "GeForce RTX 2060", Code: 'G', Arch: "Turing",
		CUDACores: 1920, BoostMHz: 1680,
		MemoryBytes: 6 * gib, MemBandwidth: 336e9,
	}
	QuadroP4000 = &GPUType{
		Name: "Quadro P4000", Code: 'Q', Arch: "Pascal",
		CUDACores: 1792, BoostMHz: 1480,
		MemoryBytes: 8 * gib, MemBandwidth: 243e9,
	}
)

// Catalog lists the four paper GPU types in the paper's V, R, G, Q order.
func Catalog() []*GPUType {
	return []*GPUType{TitanV, TitanRTX, RTX2060, QuadroP4000}
}

// TypeByCode resolves a single-letter GPU code ('V','R','G','Q').
func TypeByCode(code byte) (*GPUType, error) {
	for _, t := range Catalog() {
		if t.Code == code {
			return t, nil
		}
	}
	return nil, fmt.Errorf("hw: unknown GPU code %q", string(code))
}

func (t *GPUType) String() string { return t.Name }
