package hw

import (
	"strings"
	"testing"
)

func TestCatalogTable1(t *testing.T) {
	// Spot-check the Table 1 rows.
	cases := []struct {
		t     *GPUType
		cores int
		mhz   int
		memGB int64
		bw    float64
	}{
		{TitanV, 5120, 1455, 12, 653e9},
		{TitanRTX, 4608, 1770, 24, 672e9},
		{RTX2060, 1920, 1680, 6, 336e9},
		{QuadroP4000, 1792, 1480, 8, 243e9},
	}
	for _, c := range cases {
		if c.t.CUDACores != c.cores {
			t.Errorf("%s cores = %d, want %d", c.t.Name, c.t.CUDACores, c.cores)
		}
		if c.t.BoostMHz != c.mhz {
			t.Errorf("%s boost = %d, want %d", c.t.Name, c.t.BoostMHz, c.mhz)
		}
		if c.t.MemoryBytes != c.memGB<<30 {
			t.Errorf("%s memory = %d, want %d GiB", c.t.Name, c.t.MemoryBytes, c.memGB)
		}
		if c.t.MemBandwidth != c.bw {
			t.Errorf("%s bandwidth = %g, want %g", c.t.Name, c.t.MemBandwidth, c.bw)
		}
	}
}

func TestTypeByCode(t *testing.T) {
	for _, typ := range Catalog() {
		got, err := TypeByCode(typ.Code)
		if err != nil || got != typ {
			t.Errorf("TypeByCode(%c) = %v, %v", typ.Code, got, err)
		}
	}
	if _, err := TypeByCode('X'); err == nil {
		t.Error("TypeByCode('X') should fail")
	}
}

func TestPaperCluster(t *testing.T) {
	c := Paper()
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(c.Nodes))
	}
	if len(c.GPUs()) != 16 {
		t.Fatalf("GPUs = %d, want 16", len(c.GPUs()))
	}
	counts := c.CountByType()
	for _, code := range []byte{'V', 'R', 'G', 'Q'} {
		if counts[code] != 4 {
			t.Errorf("count[%c] = %d, want 4", code, counts[code])
		}
	}
	// IDs are dense and node-major.
	for i, g := range c.GPUs() {
		if g.ID != i {
			t.Errorf("GPU %d has ID %d", i, g.ID)
		}
		if g.Node != i/4 {
			t.Errorf("GPU %d on node %d, want %d", i, g.Node, i/4)
		}
	}
}

func TestLinkBetween(t *testing.T) {
	c := Paper()
	g := c.GPUs()
	if k := c.LinkBetween(g[0], g[0]); k != LinkLocal {
		t.Errorf("self link = %v, want local", k)
	}
	if k := c.LinkBetween(g[0], g[1]); k != LinkPCIe {
		t.Errorf("intra-node link = %v, want pcie", k)
	}
	if k := c.LinkBetween(g[0], g[4]); k != LinkInfiniBand {
		t.Errorf("inter-node link = %v, want infiniband", k)
	}
}

func TestAllocateNP(t *testing.T) {
	a, err := Allocate(Paper(), NodePartition)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"VVVV", "RRRR", "GGGG", "QQQQ"}
	if len(a.VWs) != 4 {
		t.Fatalf("VWs = %d, want 4", len(a.VWs))
	}
	for i, vw := range a.VWs {
		if vw.TypeString() != want[i] {
			t.Errorf("NP VW%d = %s, want %s", i, vw.TypeString(), want[i])
		}
		if vw.CrossNodeBoundaries() != 0 {
			t.Errorf("NP VW%d crosses nodes", i)
		}
	}
}

func TestAllocateED(t *testing.T) {
	a, err := Allocate(Paper(), EqualDistribution)
	if err != nil {
		t.Fatal(err)
	}
	for i, vw := range a.VWs {
		if vw.TypeString() != "VRGQ" {
			t.Errorf("ED VW%d = %s, want VRGQ", i, vw.TypeString())
		}
		// Every stage boundary crosses a node under ED.
		if vw.CrossNodeBoundaries() != 3 {
			t.Errorf("ED VW%d cross-node boundaries = %d, want 3", i, vw.CrossNodeBoundaries())
		}
	}
}

func TestAllocateHD(t *testing.T) {
	a, err := Allocate(Paper(), HybridDistribution)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"VVQQ", "VVQQ", "RRGG", "RRGG"}
	for i, vw := range a.VWs {
		if vw.TypeString() != want[i] {
			t.Errorf("HD VW%d = %s, want %s", i, vw.TypeString(), want[i])
		}
		// Same-type pairs share a node: exactly one cross-node boundary.
		if vw.CrossNodeBoundaries() != 1 {
			t.Errorf("HD VW%d cross-node boundaries = %d, want 1", i, vw.CrossNodeBoundaries())
		}
	}
}

func TestClusterCatalog(t *testing.T) {
	wantGPUs := map[string]int{"paper": 16, "paper-x2": 32, "mini": 8, "whimpy": 16}
	names := ClusterNames()
	if len(names) != len(wantGPUs) {
		t.Fatalf("catalog has %d entries, want %d", len(names), len(wantGPUs))
	}
	for name, n := range wantGPUs {
		c, err := ClusterByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := len(c.GPUs()); got != n {
			t.Errorf("%s: %d GPUs, want %d", name, got, n)
		}
		// Fresh inventory per call: allocations on one instance must not
		// consume another's GPUs.
		c2, _ := ClusterByName(name)
		if c == c2 || c.GPUs()[0] == c2.GPUs()[0] {
			t.Errorf("%s: ClusterByName returned a shared instance", name)
		}
	}
	if _, err := ClusterByName("dgx"); err == nil {
		t.Error("unknown cluster accepted")
	}
	if spec := ClusterCatalog()[0]; spec.Name != "paper" || spec.Description == "" {
		t.Errorf("catalog should lead with a described paper entry, got %+v", spec.Name)
	}
}

func TestAllocateHDGeneralizes(t *testing.T) {
	cases := []struct {
		cluster string
		want    []string
	}{
		{"paper", []string{"VVQQ", "VVQQ", "RRGG", "RRGG"}},
		{"mini", []string{"VQ", "VQ", "RG", "RG"}},
		{"paper-x2", []string{"VVQQ", "VVQQ", "VVQQ", "VVQQ", "RRGG", "RRGG", "RRGG", "RRGG"}},
	}
	for _, c := range cases {
		cl, err := ClusterByName(c.cluster)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Allocate(cl, HybridDistribution)
		if err != nil {
			t.Fatalf("%s: %v", c.cluster, err)
		}
		if len(a.VWs) != len(c.want) {
			t.Fatalf("%s: %d VWs, want %d", c.cluster, len(a.VWs), len(c.want))
		}
		for i, vw := range a.VWs {
			if vw.TypeString() != c.want[i] {
				t.Errorf("%s VW%d = %s, want %s", c.cluster, i, vw.TypeString(), c.want[i])
			}
		}
	}
	// HD is undefined without four distinct types.
	whimpy, _ := ClusterByName("whimpy")
	if _, err := Allocate(whimpy, HybridDistribution); err == nil {
		t.Error("HD on a two-type cluster should fail")
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]Policy{
		"NP": NodePartition, "ed": EqualDistribution, "Hd": HybridDistribution,
	} {
		got, err := PolicyByName(name)
		if err != nil || got != want {
			t.Errorf("PolicyByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := PolicyByName("XX"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAllocationsAreDisjoint(t *testing.T) {
	for _, p := range Policies() {
		a, err := Allocate(Paper(), p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		seen := make(map[int]bool)
		total := 0
		for _, vw := range a.VWs {
			for _, g := range vw.GPUs {
				if seen[g.ID] {
					t.Errorf("%v: GPU %d assigned twice", p, g.ID)
				}
				seen[g.ID] = true
				total++
			}
		}
		if total != 16 {
			t.Errorf("%v: assigned %d GPUs, want 16", p, total)
		}
	}
}

func TestAllocateByTypesExhaustion(t *testing.T) {
	c := Paper()
	// 5 V GPUs requested but only 4 exist.
	if _, err := AllocateByTypes(c, []string{"VVVVV"}); err == nil {
		t.Error("over-allocation should fail")
	}
	if _, err := AllocateByTypes(c, []string{"VX"}); err == nil {
		t.Error("unknown code should fail")
	}
	if _, err := AllocateByTypes(c, []string{""}); err == nil {
		t.Error("empty spec should fail")
	}
}

func TestSingleVWConfigs(t *testing.T) {
	c := Paper()
	for _, cfg := range SingleVWConfigs() {
		a, err := AllocateByTypes(c, []string{cfg})
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if got := a.VWs[0].TypeString(); got != cfg {
			t.Errorf("allocated %s, want %s", got, cfg)
		}
		// Fresh cluster per config: AllocateByTypes consumes inventory.
		c = Paper()
	}
}

func TestTable4Sets(t *testing.T) {
	sets := Table4Sets()
	if len(sets) != 4 {
		t.Fatalf("sets = %d, want 4", len(sets))
	}
	for _, s := range sets {
		n := 0
		for _, spec := range s.Specs {
			n += len(spec)
		}
		if n != s.TotalGPUs {
			t.Errorf("%s: specs cover %d GPUs, want %d", s.Name, n, s.TotalGPUs)
		}
		if len(s.HorovodCodes) != s.TotalGPUs {
			t.Errorf("%s: horovod codes %d, want %d", s.Name, len(s.HorovodCodes), s.TotalGPUs)
		}
		a, err := AllocateByTypes(Paper(), s.Specs)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		for i, vw := range a.VWs {
			if vw.TypeString() != s.Specs[i] {
				t.Errorf("%s VW%d = %s, want %s", s.Name, i, vw.TypeString(), s.Specs[i])
			}
		}
	}
	// The 16-GPU set uses the whole cluster.
	last := sets[len(sets)-1]
	if last.TotalGPUs != 16 || !strings.Contains(last.Name, "16") {
		t.Errorf("last set should be the 16-GPU column: %+v", last)
	}
}

func TestSameTypePairsShareNode(t *testing.T) {
	// AllocateByTypes should satisfy "VV" from one node so the pair uses PCIe.
	a, err := AllocateByTypes(Paper(), []string{"VVQQ"})
	if err != nil {
		t.Fatal(err)
	}
	g := a.VWs[0].GPUs
	if g[0].Node != g[1].Node {
		t.Error("VV pair split across nodes")
	}
	if g[2].Node != g[3].Node {
		t.Error("QQ pair split across nodes")
	}
}
