package hw

import (
	"fmt"
	"sort"
)

// ClusterSpec is one entry of the named cluster catalog: a cluster shape the
// sweep engine (and the CLIs) can select by name.
type ClusterSpec struct {
	// Name is the catalog key, e.g. "paper".
	Name string
	// Description summarizes the shape for listings.
	Description string
	// Build constructs a fresh cluster instance. Every call returns an
	// independent inventory so concurrent scenario runs never share GPUs.
	Build func() *Cluster
}

// clusterCatalog lists the shapes the sweep engine can explore. The "paper"
// entry is the Section 8.1 testbed; the others scale it down ("mini"), up
// ("paper-x2"), or strip it to whimpy parts only ("whimpy").
var clusterCatalog = []ClusterSpec{
	{
		Name:        "paper",
		Description: "4 nodes x 4 GPUs (TITAN V / TITAN RTX / RTX 2060 / Quadro P4000), 16 GPUs — the Section 8.1 testbed",
		Build:       Paper,
	},
	{
		Name:        "paper-x2",
		Description: "8 nodes x 4 GPUs (two nodes per type), 32 GPUs — the paper testbed doubled",
		Build: func() *Cluster {
			return NewCluster([]struct {
				Type  *GPUType
				Count int
			}{
				{TitanV, 4}, {TitanV, 4},
				{TitanRTX, 4}, {TitanRTX, 4},
				{RTX2060, 4}, {RTX2060, 4},
				{QuadroP4000, 4}, {QuadroP4000, 4},
			})
		},
	},
	{
		Name:        "mini",
		Description: "4 nodes x 2 GPUs (one node per type), 8 GPUs — the paper testbed halved",
		Build: func() *Cluster {
			return NewCluster([]struct {
				Type  *GPUType
				Count int
			}{
				{TitanV, 2},
				{TitanRTX, 2},
				{RTX2060, 2},
				{QuadroP4000, 2},
			})
		},
	},
	{
		Name:        "whimpy",
		Description: "4 nodes x 4 GPUs of only the two whimpy types (RTX 2060, Quadro P4000), 16 GPUs — no high-end parts (HD undefined)",
		Build: func() *Cluster {
			return NewCluster([]struct {
				Type  *GPUType
				Count int
			}{
				{RTX2060, 4},
				{QuadroP4000, 4},
				{RTX2060, 4},
				{QuadroP4000, 4},
			})
		},
	},
}

// ClusterCatalog returns the named cluster shapes in catalog order.
func ClusterCatalog() []ClusterSpec {
	return append([]ClusterSpec(nil), clusterCatalog...)
}

// ClusterNames lists the catalog keys in catalog order.
func ClusterNames() []string {
	var out []string
	for _, s := range clusterCatalog {
		out = append(out, s.Name)
	}
	return out
}

// ClusterByName builds a fresh instance of a cataloged cluster shape.
func ClusterByName(name string) (*Cluster, error) {
	for _, s := range clusterCatalog {
		if s.Name == name {
			return s.Build(), nil
		}
	}
	names := ClusterNames()
	sort.Strings(names)
	return nil, fmt.Errorf("hw: unknown cluster %q (have %v)", name, names)
}
