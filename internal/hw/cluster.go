package hw

import (
	"fmt"
	"strings"
)

// GPU is one physical device in a cluster.
type GPU struct {
	// ID is the cluster-wide index, dense from 0.
	ID int
	// Type describes the hardware model.
	Type *GPUType
	// Node is the index of the hosting node.
	Node int
	// Slot is the device index within the node.
	Slot int
}

// Name returns a stable human-readable identifier like "n1g2(R)".
func (g *GPU) Name() string {
	return fmt.Sprintf("n%dg%d(%c)", g.Node, g.Slot, g.Type.Code)
}

// Node is one machine: a homogeneous set of GPUs plus host memory.
type Node struct {
	Index       int
	GPUs        []*GPU
	HostMemory  int64
	Description string
}

// LinkKind distinguishes the two interconnect classes in the paper's testbed.
type LinkKind int

const (
	// LinkLocal means both endpoints are the same GPU; transfers are free.
	LinkLocal LinkKind = iota
	// LinkPCIe is intra-node PCIe 3.0 x16.
	LinkPCIe
	// LinkInfiniBand is inter-node 56 Gbps InfiniBand.
	LinkInfiniBand
)

func (k LinkKind) String() string {
	switch k {
	case LinkLocal:
		return "local"
	case LinkPCIe:
		return "pcie"
	case LinkInfiniBand:
		return "infiniband"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Peak raw bandwidths of the testbed interconnects.
const (
	// PCIePeakBytes is PCIe 3.0 x16: 15.75 GB/s.
	PCIePeakBytes = 15.75e9
	// InfiniBandPeakBytes is 56 Gbps FDR InfiniBand: 7 GB/s.
	InfiniBandPeakBytes = 7e9
)

// Cluster is a set of nodes. GPUs carry global IDs in node-major order.
type Cluster struct {
	Nodes []*Node
	gpus  []*GPU
}

// NewCluster builds a cluster from per-node GPU type assignments:
// nodeTypes[i] gives the (homogeneous) GPU type and count for node i.
func NewCluster(nodeTypes []struct {
	Type  *GPUType
	Count int
}) *Cluster {
	c := &Cluster{}
	id := 0
	for ni, nt := range nodeTypes {
		n := &Node{
			Index:       ni,
			HostMemory:  64 * gib,
			Description: fmt.Sprintf("node%d: %dx %s", ni, nt.Count, nt.Type.Name),
		}
		for s := 0; s < nt.Count; s++ {
			g := &GPU{ID: id, Type: nt.Type, Node: ni, Slot: s}
			id++
			n.GPUs = append(n.GPUs, g)
			c.gpus = append(c.gpus, g)
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Paper returns the evaluation cluster of Section 8.1: four nodes, each with
// four homogeneous GPUs — TITAN V, TITAN RTX, GeForce RTX 2060, Quadro P4000 —
// 16 GPUs in total.
func Paper() *Cluster {
	return NewCluster([]struct {
		Type  *GPUType
		Count int
	}{
		{TitanV, 4},
		{TitanRTX, 4},
		{RTX2060, 4},
		{QuadroP4000, 4},
	})
}

// GPUs returns all devices in ID order.
func (c *Cluster) GPUs() []*GPU { return c.gpus }

// GPU returns the device with the given cluster-wide ID.
func (c *Cluster) GPU(id int) (*GPU, error) {
	if id < 0 || id >= len(c.gpus) {
		return nil, fmt.Errorf("hw: GPU id %d out of range [0,%d)", id, len(c.gpus))
	}
	return c.gpus[id], nil
}

// LinkBetween classifies the interconnect between two devices.
func (c *Cluster) LinkBetween(a, b *GPU) LinkKind {
	switch {
	case a.ID == b.ID:
		return LinkLocal
	case a.Node == b.Node:
		return LinkPCIe
	default:
		return LinkInfiniBand
	}
}

// TypeString renders a GPU list as the paper's compact code string, e.g.
// "VRGQ" or "VVQQ".
func TypeString(gpus []*GPU) string {
	var b strings.Builder
	for _, g := range gpus {
		b.WriteByte(g.Type.Code)
	}
	return b.String()
}

// CountByType tallies devices per type code.
func (c *Cluster) CountByType() map[byte]int {
	m := make(map[byte]int)
	for _, g := range c.gpus {
		m[g.Type.Code]++
	}
	return m
}
