package hw

import (
	"fmt"
)

// Policy selects one of the Table 3 resource-allocation policies.
type Policy int

const (
	// NodePartition (NP) assigns one whole node per virtual worker:
	// homogeneous GPUs, minimal intra-VW communication, but heterogeneous
	// performance across virtual workers (straggler-prone under DP).
	NodePartition Policy = iota
	// EqualDistribution (ED) gives every virtual worker one GPU from each
	// node: identical resources per VW (no stragglers), but every pipeline
	// stage boundary crosses InfiniBand.
	EqualDistribution
	// HybridDistribution (HD) pairs GPU types so that aggregate compute and
	// memory are balanced: two VWs get VVQQ, two get RRGG.
	HybridDistribution
)

func (p Policy) String() string {
	switch p {
	case NodePartition:
		return "NP"
	case EqualDistribution:
		return "ED"
	case HybridDistribution:
		return "HD"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the three paper policies in Table 3 order.
func Policies() []Policy {
	return []Policy{NodePartition, EqualDistribution, HybridDistribution}
}

// VirtualWorker is an ordered set of GPUs acting as one DP worker; position i
// hosts pipeline stage i.
type VirtualWorker struct {
	Index int
	GPUs  []*GPU
}

// TypeString renders the VW's GPU mix, e.g. "VVQQ".
func (vw *VirtualWorker) TypeString() string { return TypeString(vw.GPUs) }

// Size reports the number of GPUs (pipeline stages) in the VW.
func (vw *VirtualWorker) Size() int { return len(vw.GPUs) }

// CrossNodeBoundaries counts adjacent stage pairs whose GPUs sit on
// different nodes (each such boundary communicates over InfiniBand).
func (vw *VirtualWorker) CrossNodeBoundaries() int {
	n := 0
	for i := 1; i < len(vw.GPUs); i++ {
		if vw.GPUs[i].Node != vw.GPUs[i-1].Node {
			n++
		}
	}
	return n
}

// Allocation is a full assignment of cluster GPUs to virtual workers.
type Allocation struct {
	Policy string
	VWs    []*VirtualWorker
}

// Allocate applies one of the Table 3 policies to the paper's 4x4 cluster
// layout. It works for any cluster whose nodes all hold the same GPU count;
// NP needs nothing more, ED needs gpusPerNode >= nodeCount divisibility as in
// the paper (4 nodes x 4 GPUs), HD is defined only for the paper cluster
// shape (V/R/G/Q nodes with 4 GPUs each).
func Allocate(c *Cluster, p Policy) (*Allocation, error) {
	switch p {
	case NodePartition:
		return allocateNP(c)
	case EqualDistribution:
		return allocateED(c)
	case HybridDistribution:
		return allocateHD(c)
	default:
		return nil, fmt.Errorf("hw: unknown policy %v", p)
	}
}

func allocateNP(c *Cluster) (*Allocation, error) {
	a := &Allocation{Policy: "NP"}
	for i, n := range c.Nodes {
		vw := &VirtualWorker{Index: i, GPUs: append([]*GPU(nil), n.GPUs...)}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

func allocateED(c *Cluster) (*Allocation, error) {
	per := len(c.Nodes[0].GPUs)
	for _, n := range c.Nodes {
		if len(n.GPUs) != per {
			return nil, fmt.Errorf("hw: ED requires equal GPU counts per node; node %d has %d, node 0 has %d",
				n.Index, len(n.GPUs), per)
		}
	}
	a := &Allocation{Policy: "ED"}
	for i := 0; i < per; i++ {
		vw := &VirtualWorker{Index: i}
		for _, n := range c.Nodes {
			vw.GPUs = append(vw.GPUs, n.GPUs[i])
		}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

// allocateHD builds the paper's hybrid allocation: VVQQ, VVQQ, RRGG, RRGG.
// Pairing rationale (Section 8.1): compute power V>R>G>Q and memory R>V>Q>G,
// so pairing the best compute with the most whimpy memory (and vice versa)
// balances aggregate capability across virtual workers.
func allocateHD(c *Cluster) (*Allocation, error) {
	return AllocateByTypes(c, []string{"VVQQ", "VVQQ", "RRGG", "RRGG"})
}

// AllocateByTypes builds virtual workers from explicit GPU type-code strings,
// consuming devices from the cluster inventory. Within one spec, requests for
// the same type come from the same node when possible (so "VV" shares PCIe).
// It powers the Figure 3 single-VW configs and the Table 4 incremental sets.
func AllocateByTypes(c *Cluster, vwSpecs []string) (*Allocation, error) {
	used := make(map[int]bool) // GPU ID -> taken
	take := func(code byte) (*GPU, error) {
		for _, g := range c.gpus {
			if !used[g.ID] && g.Type.Code == code {
				used[g.ID] = true
				return g, nil
			}
		}
		return nil, fmt.Errorf("hw: cluster has no free GPU of type %q", string(code))
	}
	a := &Allocation{Policy: "custom"}
	for i, spec := range vwSpecs {
		if spec == "" {
			return nil, fmt.Errorf("hw: empty VW spec at index %d", i)
		}
		vw := &VirtualWorker{Index: i}
		for j := 0; j < len(spec); j++ {
			if _, err := TypeByCode(spec[j]); err != nil {
				return nil, err
			}
			g, err := take(spec[j])
			if err != nil {
				return nil, fmt.Errorf("%v (allocating VW %d spec %q)", err, i, spec)
			}
			vw.GPUs = append(vw.GPUs, g)
		}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

// SingleVWConfigs lists the seven Figure 3 virtual-worker configurations.
func SingleVWConfigs() []string {
	return []string{"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"}
}

// Table4Set names one column of Table 4: a GPU budget and the VW specs
// HetPipe builds from it.
type Table4Set struct {
	// Name matches the paper's header, e.g. "8 GPUs 4[VR]".
	Name string
	// TotalGPUs is the device budget.
	TotalGPUs int
	// Specs is one type string per virtual worker.
	Specs []string
	// HorovodCodes lists the per-worker GPU codes for the DP baseline
	// (one single-GPU worker per device).
	HorovodCodes string
}

// Table4Sets returns the four incremental configurations of Table 4. The
// 4-GPU column uses a single virtual worker (VVVV); the others use four
// virtual workers of 2, 3, and 4 GPUs.
func Table4Sets() []Table4Set {
	return []Table4Set{
		{Name: "4 GPUs 4[V]", TotalGPUs: 4, Specs: []string{"VVVV"}, HorovodCodes: "VVVV"},
		{Name: "8 GPUs 4[VR]", TotalGPUs: 8, Specs: []string{"VR", "VR", "VR", "VR"}, HorovodCodes: "VVVVRRRR"},
		{Name: "12 GPUs 4[VRQ]", TotalGPUs: 12, Specs: []string{"VRQ", "VRQ", "VRQ", "VRQ"}, HorovodCodes: "VVVVRRRRQQQQ"},
		{Name: "16 GPUs 4[VRQG]", TotalGPUs: 16, Specs: []string{"VRQG", "VRQG", "VRQG", "VRQG"}, HorovodCodes: "VVVVRRRRQQQQGGGG"},
	}
}
