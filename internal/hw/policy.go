package hw

import (
	"fmt"
	"sort"
	"strings"
)

// Policy selects one of the Table 3 resource-allocation policies.
type Policy int

const (
	// NodePartition (NP) assigns one whole node per virtual worker:
	// homogeneous GPUs, minimal intra-VW communication, but heterogeneous
	// performance across virtual workers (straggler-prone under DP).
	NodePartition Policy = iota
	// EqualDistribution (ED) gives every virtual worker one GPU from each
	// node: identical resources per VW (no stragglers), but every pipeline
	// stage boundary crosses InfiniBand.
	EqualDistribution
	// HybridDistribution (HD) pairs GPU types so that aggregate compute and
	// memory are balanced: two VWs get VVQQ, two get RRGG.
	HybridDistribution
)

func (p Policy) String() string {
	switch p {
	case NodePartition:
		return "NP"
	case EqualDistribution:
		return "ED"
	case HybridDistribution:
		return "HD"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the three paper policies in Table 3 order.
func Policies() []Policy {
	return []Policy{NodePartition, EqualDistribution, HybridDistribution}
}

// PolicyByName resolves a policy abbreviation ("NP", "ED", "HD"), case
// insensitively.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToUpper(name) {
	case "NP":
		return NodePartition, nil
	case "ED":
		return EqualDistribution, nil
	case "HD":
		return HybridDistribution, nil
	default:
		return 0, fmt.Errorf("hw: unknown policy %q (want NP, ED, or HD)", name)
	}
}

// VirtualWorker is an ordered set of GPUs acting as one DP worker; position i
// hosts pipeline stage i.
type VirtualWorker struct {
	Index int
	GPUs  []*GPU
}

// TypeString renders the VW's GPU mix, e.g. "VVQQ".
func (vw *VirtualWorker) TypeString() string { return TypeString(vw.GPUs) }

// Size reports the number of GPUs (pipeline stages) in the VW.
func (vw *VirtualWorker) Size() int { return len(vw.GPUs) }

// CrossNodeBoundaries counts adjacent stage pairs whose GPUs sit on
// different nodes (each such boundary communicates over InfiniBand).
func (vw *VirtualWorker) CrossNodeBoundaries() int {
	n := 0
	for i := 1; i < len(vw.GPUs); i++ {
		if vw.GPUs[i].Node != vw.GPUs[i-1].Node {
			n++
		}
	}
	return n
}

// Allocation is a full assignment of cluster GPUs to virtual workers.
type Allocation struct {
	Policy string
	VWs    []*VirtualWorker
}

// Allocate applies one of the Table 3 policies to a cluster. NP works for
// any cluster; ED requires every node to hold the same GPU count; HD
// requires four distinct cataloged GPU types in equal numbers with a
// uniform, even per-node count (see allocateHD for the memory-ranked
// pairing rule that generalizes the paper's VVQQ/RRGG allocation).
func Allocate(c *Cluster, p Policy) (*Allocation, error) {
	switch p {
	case NodePartition:
		return allocateNP(c)
	case EqualDistribution:
		return allocateED(c)
	case HybridDistribution:
		return allocateHD(c)
	default:
		return nil, fmt.Errorf("hw: unknown policy %v", p)
	}
}

func allocateNP(c *Cluster) (*Allocation, error) {
	a := &Allocation{Policy: "NP"}
	for i, n := range c.Nodes {
		vw := &VirtualWorker{Index: i, GPUs: append([]*GPU(nil), n.GPUs...)}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

func allocateED(c *Cluster) (*Allocation, error) {
	per := len(c.Nodes[0].GPUs)
	for _, n := range c.Nodes {
		if len(n.GPUs) != per {
			return nil, fmt.Errorf("hw: ED requires equal GPU counts per node; node %d has %d, node 0 has %d",
				n.Index, len(n.GPUs), per)
		}
	}
	a := &Allocation{Policy: "ED"}
	for i := 0; i < per; i++ {
		vw := &VirtualWorker{Index: i}
		for _, n := range c.Nodes {
			vw.GPUs = append(vw.GPUs, n.GPUs[i])
		}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

// allocateHD builds the hybrid allocation. On the paper cluster it yields
// exactly Table 3's VVQQ, VVQQ, RRGG, RRGG. Pairing rationale (Section 8.1):
// compute power V>R>G>Q and memory R>V>Q>G, so pairing the strongest compute
// with the most whimpy parts (and vice versa) balances aggregate capability
// across virtual workers.
//
// The rule generalizes to any cluster with four distinct GPU types in equal
// numbers and a uniform, even per-node GPU count: rank the types by memory
// capacity and pair the extremes — (1st,4th) and (2nd,3rd) — so every
// virtual worker mixes a memory-rich type with a memory-poor one. On the
// paper types (R 24 > V 12 > Q 8 > G 6 GiB) that yields exactly the paper's
// R+G and V+Q pairings. Virtual workers are emitted with the pair whose
// weaker member has more memory first (V+Q before R+G, matching Table 3's
// row order), each spec listing the higher-memory type first. "mini" yields
// VQ,VQ,RG,RG; "paper-x2" yields four VVQQ and four RRGG virtual workers.
func allocateHD(c *Cluster) (*Allocation, error) {
	per := len(c.Nodes[0].GPUs)
	for _, n := range c.Nodes {
		if len(n.GPUs) != per {
			return nil, fmt.Errorf("hw: HD requires equal GPU counts per node; node %d has %d, node 0 has %d",
				n.Index, len(n.GPUs), per)
		}
	}
	if per%2 != 0 {
		return nil, fmt.Errorf("hw: HD requires an even per-node GPU count, got %d", per)
	}
	counts := c.CountByType()
	if len(counts) != 4 {
		return nil, fmt.Errorf("hw: HD requires exactly 4 distinct GPU types, got %d", len(counts))
	}
	var types []*GPUType
	typeCount := 0
	for _, t := range Catalog() {
		if n, ok := counts[t.Code]; ok {
			if typeCount == 0 {
				typeCount = n
			} else if n != typeCount {
				return nil, fmt.Errorf("hw: HD requires equal counts per GPU type; %c has %d, want %d",
					t.Code, n, typeCount)
			}
			types = append(types, t)
		}
	}
	if len(types) != 4 {
		return nil, fmt.Errorf("hw: HD requires the 4 cataloged GPU types, found %d in the cluster", len(types))
	}
	// Rank by memory capacity, largest first. The catalog iteration above
	// makes the pre-sort order deterministic, so equal-memory ties are
	// stable.
	sort.SliceStable(types, func(i, j int) bool {
		return types[i].MemoryBytes > types[j].MemoryBytes
	})
	pairs := [][2]*GPUType{{types[0], types[3]}, {types[1], types[2]}}
	// The pair whose weaker member has more memory leads (Table 3 lists the
	// V+Q virtual workers before R+G).
	sort.SliceStable(pairs, func(i, j int) bool {
		return pairs[i][1].MemoryBytes > pairs[j][1].MemoryBytes
	})
	half := per / 2
	var specs []string
	for _, pair := range pairs {
		spec := strings.Repeat(string(pair[0].Code), half) + strings.Repeat(string(pair[1].Code), half)
		for i := 0; i < typeCount/half; i++ {
			specs = append(specs, spec)
		}
	}
	a, err := AllocateByTypes(c, specs)
	if err != nil {
		return nil, err
	}
	a.Policy = "HD"
	return a, nil
}

// AllocateByTypes builds virtual workers from explicit GPU type-code strings,
// consuming devices from the cluster inventory. Within one spec, requests for
// the same type come from the same node when possible (so "VV" shares PCIe).
// It powers the Figure 3 single-VW configs and the Table 4 incremental sets.
func AllocateByTypes(c *Cluster, vwSpecs []string) (*Allocation, error) {
	used := make(map[int]bool) // GPU ID -> taken
	take := func(code byte) (*GPU, error) {
		for _, g := range c.gpus {
			if !used[g.ID] && g.Type.Code == code {
				used[g.ID] = true
				return g, nil
			}
		}
		return nil, fmt.Errorf("hw: cluster has no free GPU of type %q", string(code))
	}
	a := &Allocation{Policy: "custom"}
	for i, spec := range vwSpecs {
		if spec == "" {
			return nil, fmt.Errorf("hw: empty VW spec at index %d", i)
		}
		vw := &VirtualWorker{Index: i}
		for j := 0; j < len(spec); j++ {
			if _, err := TypeByCode(spec[j]); err != nil {
				return nil, err
			}
			g, err := take(spec[j])
			if err != nil {
				return nil, fmt.Errorf("%v (allocating VW %d spec %q)", err, i, spec)
			}
			vw.GPUs = append(vw.GPUs, g)
		}
		a.VWs = append(a.VWs, vw)
	}
	return a, nil
}

// SingleVWConfigs lists the seven Figure 3 virtual-worker configurations.
func SingleVWConfigs() []string {
	return []string{"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"}
}

// Table4Set names one column of Table 4: a GPU budget and the VW specs
// HetPipe builds from it.
type Table4Set struct {
	// Name matches the paper's header, e.g. "8 GPUs 4[VR]".
	Name string
	// TotalGPUs is the device budget.
	TotalGPUs int
	// Specs is one type string per virtual worker.
	Specs []string
	// HorovodCodes lists the per-worker GPU codes for the DP baseline
	// (one single-GPU worker per device).
	HorovodCodes string
}

// Table4Sets returns the four incremental configurations of Table 4. The
// 4-GPU column uses a single virtual worker (VVVV); the others use four
// virtual workers of 2, 3, and 4 GPUs.
func Table4Sets() []Table4Set {
	return []Table4Set{
		{Name: "4 GPUs 4[V]", TotalGPUs: 4, Specs: []string{"VVVV"}, HorovodCodes: "VVVV"},
		{Name: "8 GPUs 4[VR]", TotalGPUs: 8, Specs: []string{"VR", "VR", "VR", "VR"}, HorovodCodes: "VVVVRRRR"},
		{Name: "12 GPUs 4[VRQ]", TotalGPUs: 12, Specs: []string{"VRQ", "VRQ", "VRQ", "VRQ"}, HorovodCodes: "VVVVRRRRQQQQ"},
		{Name: "16 GPUs 4[VRQG]", TotalGPUs: 16, Specs: []string{"VRQG", "VRQG", "VRQG", "VRQG"}, HorovodCodes: "VVVVRRRRQQQQGGGG"},
	}
}
