package trace

import (
	"strings"
	"testing"
)

func TestTraceSpansAndEnd(t *testing.T) {
	tr := New(2)
	tr.Add(0, 1, Forward, 0, 1)
	tr.Add(0, 1, Backward, 3, 4)
	tr.Add(1, 1, Forward, 1, 2)
	tr.Add(1, 1, Backward, 2, 3)
	if got := tr.End(); got != 4 {
		t.Errorf("end = %v, want 4", got)
	}
	spans := tr.StageSpans(0)
	if len(spans) != 2 {
		t.Fatalf("stage 0 spans = %d, want 2", len(spans))
	}
	if spans[0].Kind != Forward || spans[1].Kind != Backward {
		t.Errorf("span order wrong: %+v", spans)
	}
}

func TestStageSpansExcludeTransfers(t *testing.T) {
	tr := New(1)
	tr.Add(0, 1, Forward, 0, 1)
	tr.Add(0, 1, Transfer, 1, 2)
	if got := len(tr.StageSpans(0)); got != 1 {
		t.Errorf("spans = %d, want 1 (transfer excluded)", got)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New(2)
	tr.Add(0, 1, Forward, 0, 0.5)
	tr.Add(0, 1, Backward, 1.5, 2)
	tr.Add(1, 1, Forward, 0.5, 1)
	tr.Add(1, 1, Backward, 1, 1.5)
	g := tr.Gantt(60)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 3 { // two stages + axis
		t.Fatalf("gantt lines = %d, want 3:\n%s", len(lines), g)
	}
	if !strings.HasPrefix(lines[0], "GPU1 |") || !strings.HasPrefix(lines[1], "GPU2 |") {
		t.Errorf("row labels wrong:\n%s", g)
	}
	if !strings.Contains(lines[0], "1") {
		t.Errorf("minibatch number missing from row:\n%s", g)
	}
	if !strings.Contains(lines[0], "[") {
		t.Errorf("backward bracket missing:\n%s", g)
	}
}

func TestGanttEmpty(t *testing.T) {
	tr := New(1)
	if g := tr.Gantt(40); g != "(empty trace)\n" {
		t.Errorf("empty gantt = %q", g)
	}
}

func TestSpanKindString(t *testing.T) {
	if Forward.String() != "fwd" || Backward.String() != "bwd" || Transfer.String() != "xfer" {
		t.Error("kind strings wrong")
	}
}
