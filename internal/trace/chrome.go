package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one chrome://tracing event. Complete spans use ph "X" with
// microsecond timestamp and duration on a pid/tid track; thread-name
// metadata uses ph "M". Field order is fixed by the struct and map keys are
// sorted by encoding/json, so the output is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the chrome://tracing JSON object format.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata"`
}

// transferTidBase offsets transfer spans onto their own thread per stage:
// under the overlap schedule a receive runs concurrently with compute on the
// same stage, and complete events sharing a tid must strictly nest, so
// transfers get a separate "stage N transfers" track.
const transferTidBase = 1000

// WriteChromeTrace writes the trace in the chrome://tracing (and Perfetto)
// JSON object format: one compute thread per pipeline stage plus one
// transfer thread per stage that recorded any, one complete event per span —
// forwards labeled "f<p>", backwards "b<p>", transfers "x<p>" — with one
// second of virtual time mapped to 1e6 trace microseconds. Spans are emitted
// sorted by start time, then stage, then kind, so the output is
// deterministic for a deterministic simulation. Load the file through
// chrome://tracing or https://ui.perfetto.dev.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	spans := make([]Span, len(t.Spans))
	copy(spans, t.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Stage != spans[j].Stage {
			return spans[i].Stage < spans[j].Stage
		}
		return spans[i].Kind < spans[j].Kind
	})
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+t.Stages),
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"source": "hetpipe pipeline simulation"},
	}
	// Name each stage's compute thread, plus a transfer thread for stages
	// that recorded transfer spans, so the viewer shows labeled rows.
	hasTransfers := make([]bool, t.Stages)
	for _, sp := range spans {
		if sp.Kind == Transfer && sp.Stage < t.Stages {
			hasTransfers[sp.Stage] = true
		}
	}
	for s := 0; s < t.Stages; s++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: s,
			Args: map[string]any{"name": fmt.Sprintf("stage %d (GPU%d)", s, s+1)},
		})
		if hasTransfers[s] {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: transferTidBase + s,
				Args: map[string]any{"name": fmt.Sprintf("stage %d transfers", s)},
			})
		}
	}
	const usPerSec = 1e6
	for _, sp := range spans {
		prefix, tid := "x", transferTidBase+sp.Stage
		switch sp.Kind {
		case Forward:
			prefix, tid = "f", sp.Stage
		case Backward:
			prefix, tid = "b", sp.Stage
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%s%d", prefix, sp.Minibatch),
			Cat:  sp.Kind.String(), Ph: "X",
			Ts:  float64(sp.Start) * usPerSec,
			Dur: float64(sp.End-sp.Start) * usPerSec,
			Pid: 0, Tid: tid,
			Args: map[string]any{"minibatch": sp.Minibatch, "kind": sp.Kind.String()},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
