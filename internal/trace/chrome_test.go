package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := New(2)
	tr.Add(0, 1, Forward, 0, 1)
	tr.Add(1, 1, Forward, 1, 2.5)
	tr.Add(1, 1, Backward, 2.5, 4)
	tr.Add(1, 1, Transfer, 0.5, 1)
	tr.Add(0, 1, Backward, 4, 5)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
			Args struct {
				Minibatch int    `json:"minibatch"`
				Kind      string `json:"kind"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, meta int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if e.Cat == "xfer" {
				// Transfers live on their own per-stage track so they can
				// overlap compute without breaking complete-event nesting.
				if e.Tid != 1001 {
					t.Errorf("transfer %q on tid %d, want 1001", e.Name, e.Tid)
				}
			} else if e.Tid < 0 || e.Tid >= 2 {
				t.Errorf("event %q on tid %d, want a stage thread", e.Name, e.Tid)
			}
			if e.Dur <= 0 {
				t.Errorf("event %q has non-positive duration %g", e.Name, e.Dur)
			}
			if e.Args.Minibatch != 1 {
				t.Errorf("event %q minibatch = %d, want 1", e.Name, e.Args.Minibatch)
			}
		}
	}
	if meta != 3 {
		t.Errorf("thread-name metadata events = %d, want 3 (one per stage + stage 1 transfers)", meta)
	}
	if spans != 5 {
		t.Errorf("span events = %d, want 5", spans)
	}
	// The forward at t=1s must land at ts=1e6 us with dur 1.5e6 us.
	found := false
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Name == "f1" && e.Tid == 1 {
			found = true
			if e.Ts != 1e6 || e.Dur != 1.5e6 {
				t.Errorf("f1@stage1 ts/dur = %g/%g us, want 1e6/1.5e6", e.Ts, e.Dur)
			}
			if e.Cat != "fwd" {
				t.Errorf("f1 cat = %q, want fwd", e.Cat)
			}
		}
	}
	if !found {
		t.Error("missing forward event f1 on stage 1")
	}
	if !strings.Contains(buf.String(), `"x1"`) {
		t.Error("transfer span not labeled x1")
	}

	// Deterministic: a second write produces identical bytes.
	var again bytes.Buffer
	if err := tr.WriteChromeTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("chrome trace output is not deterministic")
	}
}
