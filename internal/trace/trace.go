// Package trace records pipeline execution schedules and renders them as
// ASCII Gantt charts in the style of the paper's Figure 1: one row per GPU,
// forward and backward spans labeled with their minibatch number.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"hetpipe/internal/sim"
)

// SpanKind distinguishes forward from backward work.
type SpanKind int

const (
	// Forward is a forward-pass execution span.
	Forward SpanKind = iota
	// Backward is a backward-pass execution span.
	Backward
	// Transfer is an inter-stage communication span.
	Transfer
)

func (k SpanKind) String() string {
	switch k {
	case Forward:
		return "fwd"
	case Backward:
		return "bwd"
	case Transfer:
		return "xfer"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// Span is one scheduled execution interval.
type Span struct {
	Stage     int
	Minibatch int
	Kind      SpanKind
	Start     sim.Time
	End       sim.Time
}

// Trace accumulates spans for one virtual worker's pipeline.
type Trace struct {
	Stages int
	Spans  []Span
}

// New creates a trace for a k-stage pipeline.
func New(stages int) *Trace {
	return &Trace{Stages: stages}
}

// Add records a span.
func (t *Trace) Add(stage, minibatch int, kind SpanKind, start, end sim.Time) {
	t.Spans = append(t.Spans, Span{Stage: stage, Minibatch: minibatch, Kind: kind, Start: start, End: end})
}

// StageSpans returns the compute spans of one stage in start order.
func (t *Trace) StageSpans(stage int) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Stage == stage && s.Kind != Transfer {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// End reports the latest span end time.
func (t *Trace) End() sim.Time {
	var end sim.Time
	for _, s := range t.Spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// Gantt renders the schedule as text, one row per stage, to the given column
// width. Forward spans render as the minibatch number, backward spans as the
// number bracketed (e.g. [3]), idle time as dots.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	end := t.End()
	if end <= 0 {
		return "(empty trace)\n"
	}
	scale := float64(width) / float64(end)
	var b strings.Builder
	for stage := 0; stage < t.Stages; stage++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.StageSpans(stage) {
			lo := int(float64(s.Start) * scale)
			hi := int(float64(s.End) * scale)
			if hi >= width {
				hi = width - 1
			}
			label := fmt.Sprintf("%d", s.Minibatch)
			if s.Kind == Backward {
				label = "[" + label + "]"
			}
			for i := lo; i <= hi && i < width; i++ {
				ch := byte('#')
				if idx := i - lo; idx < len(label) {
					ch = label[idx]
				}
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "GPU%d |%s|\n", stage+1, string(row))
	}
	fmt.Fprintf(&b, "      0%sT=%.3fs\n", strings.Repeat(" ", width-len(fmt.Sprintf("T=%.3fs", float64(end)))-1), float64(end))
	return b.String()
}
