package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSerialExecution(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	var done []Time
	r.Submit(2, "a", func() { done = append(done, e.Now()) })
	r.Submit(3, "b", func() { done = append(done, e.Now()) })
	r.Submit(1, "c", func() { done = append(done, e.Now()) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{2, 5, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d, want 3", r.Served())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := New()
	r := NewResource(e, "link")
	var order []string
	for _, n := range []string{"x", "y", "z"} {
		n := n
		r.Submit(1, n, func() { order = append(order, n) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("order = %v, want [x y z]", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	r.Submit(4, "work", nil)
	e.At(10, "end", func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Utilization(); got != 0.4 {
		t.Fatalf("utilization = %v, want 0.4", got)
	}
	if got := r.BusyTime(); got != 4 {
		t.Fatalf("busy time = %v, want 4", got)
	}
}

func TestResourceBusyAndQueueLen(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	r.Submit(5, "a", nil)
	r.Submit(5, "b", nil)
	r.Submit(5, "c", nil)
	e.At(1, "probe", func() {
		if !r.Busy() {
			t.Error("resource should be busy at t=1")
		}
		if r.QueueLen() != 2 {
			t.Errorf("queue len = %d, want 2", r.QueueLen())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Busy() {
		t.Error("resource should be idle after drain")
	}
	// The first job starts immediately, so at most two jobs ever wait.
	if r.MaxQueueLen() != 2 {
		t.Errorf("max queue len = %d, want 2", r.MaxQueueLen())
	}
}

func TestResourceZeroDurationJob(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	ran := false
	r.Submit(0, "instant", func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero-duration job never completed")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced for zero-duration job: %v", e.Now())
	}
}

func TestResourceNegativeDurationPanics(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	r.Submit(-1, "bad", nil)
}

// Property: total busy time equals the sum of job durations, and the final
// clock (when only this resource is active) equals that sum — FIFO servers
// conserve work.
func TestResourceWorkConservationProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		e := New()
		r := NewResource(e, "gpu")
		var sum Duration
		for _, d := range raw {
			dur := Duration(d) / 8
			sum += dur
			r.Submit(dur, "job", nil)
		}
		if err := e.Run(); err != nil {
			return false
		}
		return r.BusyTime() == sum && e.Now() == Time(sum)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: completions are in submission order regardless of durations.
func TestResourceFIFOProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		e := New()
		r := NewResource(e, "gpu")
		var order []int
		for i, d := range raw {
			i := i
			r.Submit(Duration(d)/16, "job", func() { order = append(order, i) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return len(order) == len(raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
