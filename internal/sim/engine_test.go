package sim

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := New()
	if err := e.Run(); err != nil {
		t.Fatalf("Run on empty engine: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved on empty run: %v", e.Now())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(3, "c", func() { got = append(got, 3) })
	e.At(1, "a", func() { got = append(got, 1) })
	e.At(2, "b", func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := New()
	var got []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.At(5, name, func() { got = append(got, name) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != "first" || got[1] != "second" || got[2] != "third" {
		t.Fatalf("simultaneous events fired out of scheduling order: %v", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var trace []Time
	e.At(1, "outer", func() {
		trace = append(trace, e.Now())
		e.After(2, "inner", func() {
			trace = append(trace, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace = %v, want [1 3]", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(10, "late", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, "past", func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(1, "a", func() { fired++ })
	e.At(5, "b", func() { fired++ })
	e.At(10, "c", func() { fired++ })
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// RunUntil advances the clock to the deadline even with no events there.
	if err := e.RunUntil(7); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7 {
		t.Fatalf("now = %v, want 7", e.Now())
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := New()
	e.SetStepLimit(10)
	var loop func()
	loop = func() { e.After(1, "loop", loop) }
	e.After(1, "loop", loop)
	if err := e.Run(); err == nil {
		t.Fatal("expected step-limit error on infinite event chain")
	}
}

// Property: for any multiset of event times, the engine fires them in
// nondecreasing time order and ends with the clock at the max.
func TestEngineMonotonicClockProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, "ev", func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		max := Time(0)
		for _, r := range raw {
			if Time(r) > max {
				max = Time(r)
			}
		}
		return e.Now() == max && len(fired) == len(raw)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical schedules produce identical firing orders (determinism),
// even when many events collide at the same instant.
func TestEngineDeterminismProperty(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			e.At(Time(rng.Intn(10)), "ev", func() { order = append(order, i) })
		}
		if err := e.Run(); err != nil {
			panic(err)
		}
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineRunContextCancellation(t *testing.T) {
	// Pre-cancelled: no event fires at all.
	e := New()
	fired := 0
	e.At(1, "x", func() { fired++ })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext(cancelled) = %v, want context.Canceled", err)
	}
	if fired != 0 {
		t.Fatalf("pre-cancelled run fired %d events", fired)
	}

	// Cancelled mid-run: an event callback cancels the context; the engine
	// stops within one check interval even though the queue never drains.
	e2 := New()
	ctx2, cancel2 := context.WithCancel(context.Background())
	var reschedule func()
	count := 0
	reschedule = func() {
		count++
		if count == 10 {
			cancel2()
		}
		e2.After(1, "tick", reschedule)
	}
	e2.After(1, "tick", reschedule)
	if err := e2.RunContext(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext mid-run = %v, want context.Canceled", err)
	}
	if count >= 10+2*ctxCheckInterval {
		t.Fatalf("engine fired %d events after cancellation", count)
	}

	// A background context behaves exactly like Run.
	e3 := New()
	done := false
	e3.At(5, "y", func() { done = true })
	if err := e3.RunContext(context.Background()); err != nil || !done {
		t.Fatalf("RunContext(Background) = %v, done = %v", err, done)
	}
}
