package sim

import (
	"sort"
	"testing"
)

// oracleEvent mirrors one scheduled event in the model queue: absolute time,
// scheduling order, and lifecycle state.
type oracleEvent struct {
	at    Time
	order int
	state uint8 // 0 pending, 1 fired, 2 cancelled
}

// oracle is a sort-based reference implementation of the event queue: a flat
// list scanned for the (time, order) minimum on every step. Quadratic and
// boring on purpose.
type oracle struct {
	events []oracleEvent
	now    Time
	order  []int // firing order, by event index
}

func (o *oracle) add(at Time) int {
	o.events = append(o.events, oracleEvent{at: at, order: len(o.events)})
	return len(o.events) - 1
}

// step fires the pending event with the least (time, order) key, if any.
func (o *oracle) step() bool {
	best := -1
	for i := range o.events {
		ev := &o.events[i]
		if ev.state != 0 {
			continue
		}
		if best < 0 || ev.at < o.events[best].at ||
			(ev.at == o.events[best].at && ev.order < o.events[best].order) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	o.events[best].state = 1
	o.now = o.events[best].at
	o.order = append(o.order, best)
	return true
}

// cancel marks a pending event cancelled; it reports whether it was pending
// (the value Engine.Cancel must return for the matching handle).
func (o *oracle) cancel(i int) bool {
	if o.events[i].state != 0 {
		return false
	}
	o.events[i].state = 2
	return true
}

func (o *oracle) pending() int {
	n := 0
	for i := range o.events {
		if o.events[i].state == 0 {
			n++
		}
	}
	return n
}

// FuzzEventQueue drives random interleavings of schedule (closure and pooled
// paths), step, and cancel — including deliberately stale cancels — against
// the sort-based oracle, asserting the identical (time, seq) total order, that
// cancelled events never fire, and that generation-checked handles go stale
// exactly when the oracle says the event is no longer pending (so a recycled
// arena slot can never be cancelled through an old handle).
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 2, 3, 0})
	f.Add([]byte{1, 5, 1, 5, 1, 5, 3, 1, 4, 0, 2, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 0, 3, 0, 2, 3, 1, 0, 7, 2, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := New()
		var o oracle
		var got []int
		fireID := e.Register(func(a, _ int32, _ float64) { got = append(got, int(a)) })
		var handles []Handle // handles[i] corresponds to o.events[i]

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, data[i+1]
			switch op {
			case 0: // pooled schedule, relative time
				id := o.add(e.Now() + Time(arg))
				handles = append(handles, e.AfterID(Duration(arg), fireID, int32(id), 0, 0))
			case 1: // closure schedule, absolute time
				at := e.Now() + Time(arg)
				id := o.add(at)
				e.At(at, "ev", func() { got = append(got, id) })
				handles = append(handles, Handle{}) // closure path: no handle
			case 2: // step
				want := o.step()
				if gotStep := e.Step(); gotStep != want {
					t.Fatalf("op %d: Step() = %v, oracle %v", i, gotStep, want)
				}
			case 3, 4: // cancel (op 4 tends to pick already-dead handles)
				if len(handles) == 0 {
					continue
				}
				id := int(arg) % len(handles)
				if op == 4 {
					id = id / 2 // bias toward older, likely-consumed handles
				}
				if handles[id] == (Handle{}) {
					continue // closure-path event: no handle to cancel
				}
				want := o.cancel(id)
				if gotC := e.Cancel(handles[id]); gotC != want {
					t.Fatalf("op %d: Cancel(ev %d) = %v, oracle %v", i, id, gotC, want)
				}
				// A consumed handle must stay permanently stale.
				if e.Cancel(handles[id]) {
					t.Fatalf("op %d: second Cancel(ev %d) succeeded", i, id)
				}
			}
			if e.Pending() != o.pending() {
				t.Fatalf("op %d: Pending() = %d, oracle %d", i, e.Pending(), o.pending())
			}
		}

		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for o.step() {
		}
		if len(got) != len(o.order) {
			t.Fatalf("fired %d events, oracle fired %d", len(got), len(o.order))
		}
		for i := range got {
			if got[i] != o.order[i] {
				t.Fatalf("firing order diverged at %d: got ev %d, oracle ev %d", i, got[i], o.order[i])
			}
		}
		if e.Now() != o.now {
			t.Fatalf("final clock = %v, oracle %v", e.Now(), o.now)
		}
		if e.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", e.Pending())
		}
		// Every handle is stale after the drain: nothing is cancellable.
		for i, h := range handles {
			if h != (Handle{}) && e.Cancel(h) {
				t.Fatalf("Cancel(ev %d) succeeded after drain", i)
			}
		}
		// The firing order must match the sort-based total order over the
		// never-cancelled events.
		var want []int
		for i := range o.events {
			if o.events[i].state == 1 {
				want = append(want, i)
			}
		}
		sort.Slice(want, func(a, b int) bool {
			ea, eb := o.events[want[a]], o.events[want[b]]
			if ea.at != eb.at {
				return ea.at < eb.at
			}
			return ea.order < eb.order
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("total order diverged at %d: got ev %d, want ev %d", i, got[i], want[i])
			}
		}
	})
}
