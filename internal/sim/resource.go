package sim

// Resource models a serially shared device (a GPU execution engine, a PCIe
// lane, a network link): at most one job occupies it at a time, and queued
// jobs are served in FIFO order.
//
// Resources track their cumulative busy time so utilization can be reported
// per device, which the Figure 3 experiment needs.
type Resource struct {
	eng  *Engine
	name string

	busy      bool
	busySince Time
	busyTotal Duration
	served    uint64
	queue     []job
	maxQueue  int
}

type job struct {
	hold   Duration
	onDone func()
	name   string
}

// NewResource creates an idle resource attached to the engine.
func NewResource(eng *Engine, name string) *Resource {
	return &Resource{eng: eng, name: name}
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// Submit enqueues a job that holds the resource for d seconds; onDone fires
// at completion (it may be nil). Jobs run in submission order.
func (r *Resource) Submit(d Duration, name string, onDone func()) {
	if d < 0 {
		panic("sim: negative hold duration for " + r.name + "/" + name)
	}
	r.queue = append(r.queue, job{hold: d, onDone: onDone, name: name})
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	if !r.busy {
		r.startNext()
	}
}

func (r *Resource) startNext() {
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	j := r.queue[0]
	copy(r.queue, r.queue[1:])
	r.queue = r.queue[:len(r.queue)-1]
	r.busy = true
	r.busySince = r.eng.Now()
	r.eng.After(j.hold, r.name+"/"+j.name, func() {
		r.busyTotal += Duration(r.eng.Now() - r.busySince)
		r.served++
		done := j.onDone
		r.startNext()
		if done != nil {
			done()
		}
	})
}

// Busy reports whether a job currently occupies the resource.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen reports the number of jobs waiting (not including the running one).
func (r *Resource) QueueLen() int { return len(r.queue) }

// MaxQueueLen reports the maximum backlog observed.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// Served reports how many jobs have completed.
func (r *Resource) Served() uint64 { return r.served }

// BusyTime reports cumulative time spent serving jobs, including the
// in-progress job up to the current instant.
func (r *Resource) BusyTime() Duration {
	t := r.busyTotal
	if r.busy {
		t += Duration(r.eng.Now() - r.busySince)
	}
	return t
}

// Utilization reports BusyTime divided by elapsed virtual time in [0,1].
// It returns 0 before any time has passed.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(r.eng.Now())
}
