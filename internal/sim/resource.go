package sim

// Resource models a serially shared device (a GPU execution engine, a PCIe
// lane, a network link): at most one job occupies it at a time, and queued
// jobs are served in FIFO order.
//
// Resources track their cumulative busy time so utilization can be reported
// per device, which the Figure 3 experiment needs.
//
// The waiting queue is a head-indexed ring over a reusable backing slice of
// pointer-free job records: completion handlers are registered up front with
// Register and queued by id (SubmitID), so pushing a job copies 24 bytes with
// no write barriers and no allocation. The closure-based Submit remains for
// callers off the hot path; its callbacks ride a parallel FIFO ring.
type Resource struct {
	eng  *Engine
	name string

	busy      bool
	busySince Time
	busyTotal Duration
	served    uint64
	queue     []job
	head      int
	maxQueue  int
	cur       job
	doneID    int32       // engine handler id for jobDone
	funcs     []EventFunc // Register'd completion handlers, indexed by job.fn
	closures  []func()    // Submit callbacks, a parallel FIFO ring
	clHead    int
}

// closureJob marks a job whose completion callback lives in the closures
// ring rather than the registered-handler table.
const closureJob int32 = -1

// job is one queued unit of work. It is deliberately pointer-free so queue
// traffic stays out of the garbage collector's way.
type job struct {
	hold Duration
	a, b int32
	fn   int32 // index into funcs, or closureJob
}

// NewResource creates an idle resource attached to the engine.
func NewResource(eng *Engine, name string) *Resource {
	r := &Resource{eng: eng, name: name}
	r.doneID = eng.Register(r.jobDone)
	return r
}

// Name reports the resource name.
func (r *Resource) Name() string { return r.name }

// Register binds a completion handler to the resource and returns its id for
// SubmitID. Handlers are registered once at setup (ids are dense from 0, in
// registration order); submitting against an unregistered id panics at
// completion time.
func (r *Resource) Register(fn EventFunc) int32 {
	r.funcs = append(r.funcs, fn)
	return int32(len(r.funcs) - 1)
}

// Submit enqueues a job that holds the resource for d seconds; onDone fires
// at completion (it may be nil). Jobs run in submission order.
func (r *Resource) Submit(d Duration, name string, onDone func()) {
	if d < 0 {
		panic("sim: negative hold duration for " + r.name + "/" + name)
	}
	r.closures = append(r.closures, onDone)
	r.push(job{hold: d, fn: closureJob})
}

// SubmitID enqueues a job that holds the resource for d seconds; at
// completion the Register'd handler id fires as fn(a, b, float64(d)) — the
// hold duration rides back to the caller so span bookkeeping needs no
// closure. Jobs run in submission order, interleaving with Submit jobs by
// submission time.
func (r *Resource) SubmitID(d Duration, id, a, b int32) {
	if d < 0 {
		panic("sim: negative hold duration for " + r.name)
	}
	r.push(job{hold: d, a: a, b: b, fn: id})
}

//hetlint:hotpath
func (r *Resource) push(j job) {
	// Compact once the dead prefix dominates the live region, so a queue that
	// never fully drains (a saturated pipeline stage) still reuses its backing
	// array instead of growing by one slot per job forever. Amortized O(1).
	if r.head >= 16 && r.head >= len(r.queue)-r.head {
		n := copy(r.queue, r.queue[r.head:])
		r.queue = r.queue[:n]
		r.head = 0
	}
	r.queue = append(r.queue, j)
	if n := len(r.queue) - r.head; n > r.maxQueue {
		r.maxQueue = n
	}
	if !r.busy {
		r.startNext()
	}
}

//hetlint:hotpath
func (r *Resource) startNext() {
	if r.head == len(r.queue) {
		r.queue = r.queue[:0]
		r.head = 0
		r.busy = false
		return
	}
	j := r.queue[r.head]
	r.head++
	r.busy = true
	r.busySince = r.eng.Now()
	r.cur = j
	r.eng.AfterID(j.hold, r.doneID, 0, 0, 0)
}

// jobDone is the completion EventFunc for every job on this resource; the
// finished job lives in r.cur, not the event payload, because the resource is
// serial. Accounting and the hand-off to the next queued job happen before
// the caller's callback, matching the pre-pooling event order.
//
//hetlint:hotpath
func (r *Resource) jobDone(_, _ int32, _ float64) {
	r.busyTotal += Duration(r.eng.Now() - r.busySince)
	r.served++
	j := r.cur
	r.startNext()
	if j.fn >= 0 {
		r.funcs[j.fn](j.a, j.b, float64(j.hold))
		return
	}
	cb := r.closures[r.clHead]
	r.closures[r.clHead] = nil
	r.clHead++
	if r.clHead == len(r.closures) {
		r.closures = r.closures[:0]
		r.clHead = 0
	} else if r.clHead >= 16 && r.clHead >= len(r.closures)-r.clHead {
		n := copy(r.closures, r.closures[r.clHead:])
		for i := n; i < len(r.closures); i++ {
			r.closures[i] = nil
		}
		r.closures = r.closures[:n]
		r.clHead = 0
	}
	if cb != nil {
		cb()
	}
}

// Busy reports whether a job currently occupies the resource.
func (r *Resource) Busy() bool { return r.busy }

// QueueLen reports the number of jobs waiting (not including the running one).
func (r *Resource) QueueLen() int { return len(r.queue) - r.head }

// MaxQueueLen reports the maximum backlog observed.
func (r *Resource) MaxQueueLen() int { return r.maxQueue }

// Served reports how many jobs have completed.
func (r *Resource) Served() uint64 { return r.served }

// BusyTime reports cumulative time spent serving jobs, including the
// in-progress job up to the current instant.
func (r *Resource) BusyTime() Duration {
	t := r.busyTotal
	if r.busy {
		t += Duration(r.eng.Now() - r.busySince)
	}
	return t
}

// Utilization reports BusyTime divided by elapsed virtual time in [0,1].
// It returns 0 before any time has passed.
func (r *Resource) Utilization() float64 {
	if r.eng.Now() <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(r.eng.Now())
}
