package sim

import "testing"

func TestEngineCancel(t *testing.T) {
	e := New()
	var got []int
	fire := e.Register(func(a, _ int32, _ float64) { got = append(got, int(a)) })
	h1 := e.AtID(1, fire, 1, 0, 0)
	h2 := e.AtID(2, fire, 2, 0, 0)
	h3 := e.AtID(3, fire, 3, 0, 0)
	if !e.Cancel(h2) {
		t.Fatal("Cancel(pending) = false")
	}
	if e.Cancel(h2) {
		t.Fatal("second Cancel succeeded")
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", got)
	}
	if e.Cancel(h1) || e.Cancel(h3) {
		t.Fatal("Cancel succeeded on already-fired handle")
	}
	if e.Now() != 3 || e.Fired() != 2 {
		t.Fatalf("now = %v fired = %d, want 3, 2", e.Now(), e.Fired())
	}
}

// A handle must go stale when its arena slot is recycled: cancelling through
// the old handle must not touch the new occupant.
func TestEngineCancelStaleGeneration(t *testing.T) {
	e := New()
	fired := 0
	fire := e.Register(func(_, _ int32, _ float64) { fired++ })
	h := e.AtID(1, fire, 0, 0, 0)
	if !e.Step() {
		t.Fatal("Step = false")
	}
	// The old slot is free now; the next schedule reuses it.
	h2 := e.AtID(2, fire, 0, 0, 0)
	if h2.slot != h.slot {
		t.Fatalf("slot not recycled: old %d, new %d", h.slot, h2.slot)
	}
	if e.Cancel(h) {
		t.Fatal("stale handle cancelled the slot's new occupant")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

// RunUntil must skip over cancelled events when peeking for the next live
// timestamp.
func TestEngineCancelRunUntil(t *testing.T) {
	e := New()
	fired := 0
	fire := e.Register(func(_, _ int32, _ float64) { fired++ })
	h := e.AtID(1, fire, 0, 0, 0)
	e.AtID(5, fire, 0, 0, 0)
	e.Cancel(h)
	if err := e.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("fired = %d before deadline 3, want 0", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("now = %v, want 3", e.Now())
	}
	if err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || e.Pending() != 0 {
		t.Fatalf("fired = %d pending = %d, want 1, 0", fired, e.Pending())
	}
}

// Reset must restore a warm engine to a state indistinguishable from a fresh
// one: same firing order, same clock, and all old handles stale.
func TestEngineReset(t *testing.T) {
	run := func(e *Engine) []int {
		var got []int
		// Registered fresh each run: Reset drops handler registrations.
		fire := e.Register(func(a, _ int32, _ float64) { got = append(got, int(a)) })
		e.AtID(3, fire, 3, 0, 0)
		e.AtID(1, fire, 1, 0, 0)
		h := e.AtID(2, fire, 2, 0, 0)
		e.Cancel(h)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	e := New()
	first := run(e)
	// Leave events pending, then reset mid-flight.
	leftover := e.Register(func(_, _ int32, _ float64) { t.Error("leftover event fired after Reset") })
	h := e.AtID(e.Now()+1, leftover, 0, 0, 0)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d", e.Now(), e.Pending(), e.Fired())
	}
	if e.Cancel(h) {
		t.Fatal("handle survived Reset")
	}
	second := run(e)
	if len(first) != len(second) {
		t.Fatalf("warm run fired %d events, cold %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("warm run diverged at %d: %d vs %d", i, second[i], first[i])
		}
	}
	if e.Now() != 3 {
		t.Fatalf("warm run clock = %v, want 3", e.Now())
	}
}

// The pooled scheduling path must not allocate once the arena has grown to
// the simulation's peak pending count, and the pooled Resource path must not
// allocate per job.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := New()
	fire := e.Register(func(_, _ int32, _ float64) {})
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.AfterID(Duration(i%7), fire, int32(i), 0, 0)
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state engine allocations = %v per run, want 0", allocs)
	}

	r := NewResource(e, "dev")
	count := 0
	var id int32
	id = r.Register(func(a, _ int32, _ float64) {
		count++
		if a > 0 {
			r.SubmitID(1, id, a-1, 0)
		}
	})
	allocs = testing.AllocsPerRun(100, func() {
		r.SubmitID(1, id, 16, 0)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state resource allocations = %v per run, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("resource jobs never completed")
	}
}

// SubmitID must deliver the job's hold duration to the registered completion
// handler and preserve FIFO accounting exactly like Submit, including when
// pooled and closure jobs interleave on one resource.
func TestResourceSubmitID(t *testing.T) {
	e := New()
	r := NewResource(e, "gpu")
	type rec struct {
		a   int32
		x   float64
		end Time
	}
	var got []rec
	id := r.Register(func(a, _ int32, x float64) { got = append(got, rec{a: a, x: x, end: e.Now()}) })
	r.SubmitID(2, id, 0, 0)
	r.SubmitID(3, id, 1, 0)
	r.Submit(1, "j2", func() { got = append(got, rec{a: 2, x: -1, end: e.Now()}) })
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", r.QueueLen())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []rec{{0, 2, 2}, {1, 3, 5}, {2, -1, 6}}
	if len(got) != len(want) {
		t.Fatalf("completions = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Served() != 3 || r.BusyTime() != 6 || r.MaxQueueLen() != 2 {
		t.Fatalf("served=%d busy=%v maxq=%d, want 3, 6, 2", r.Served(), r.BusyTime(), r.MaxQueueLen())
	}
	if r.Utilization() != 1 {
		t.Fatalf("utilization = %v, want 1", r.Utilization())
	}
}
