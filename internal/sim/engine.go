// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order (a
// monotonically increasing sequence number breaks ties), which makes every
// simulation run fully reproducible.
//
// All durations and timestamps are in seconds of virtual time. The engine is
// not safe for concurrent use; simulations are single-goroutine by design so
// that results are deterministic.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
)

// Time is an instant in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = Time(math.MaxFloat64)

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	name string
	fn   func()
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	fired   uint64
	maxStep uint64 // safety bound; 0 means unlimited
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.pq) }

// SetStepLimit bounds the total number of events the engine will fire;
// Run returns an error if the limit is hit. Zero disables the limit.
func (e *Engine) SetStepLimit(n uint64) { e.maxStep = n }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a bug in the simulation, never a recoverable condition.
// The name is used only for diagnostics.
func (e *Engine) At(t Time, name string, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, &event{at: t, seq: e.seq, name: name, fn: fn})
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled with negative delay %v", name, d))
	}
	e.At(e.now+Time(d), name, fn)
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	if ev.at < e.now {
		panic("sim: clock went backwards")
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains. It returns an error if the
// configured step limit is exceeded, which usually indicates a livelock in
// the modeled system.
func (e *Engine) Run() error {
	return e.RunContext(context.Background())
}

// ctxCheckInterval is how many fired events elapse between context polls in
// RunContext. Polling a Done channel costs a select per check; amortizing it
// over a batch of events keeps the hot loop tight while still bounding
// cancellation latency to a fraction of a millisecond of real time.
const ctxCheckInterval = 256

// RunContext fires events until the queue drains or ctx is cancelled,
// whichever comes first. On cancellation it stops between events (an event
// callback is never interrupted mid-flight) and returns ctx.Err(), so a
// caller can distinguish context.Canceled / context.DeadlineExceeded from
// simulation failures. The step-limit error behaves as in Run.
func (e *Engine) RunContext(ctx context.Context) error {
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	for e.Step() {
		if e.maxStep > 0 && e.fired > e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxStep, e.now)
		}
		if done != nil && e.fired%ctxCheckInterval == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
	}
	return nil
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (even if the queue still holds later events). It returns an
// error under the same step-limit condition as Run.
func (e *Engine) RunUntil(deadline Time) error {
	for len(e.pq) > 0 && e.pq[0].at <= deadline {
		e.Step()
		if e.maxStep > 0 && e.fired > e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxStep, e.now)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
