// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order (a
// monotonically increasing sequence number breaks ties), which makes every
// simulation run fully reproducible.
//
// The queue is an index-based 4-ary min-heap over a pooled, generation-
// checked event arena: scheduling an event reuses a free arena slot instead
// of allocating, the heap orders int32 slot ids instead of pointers, and no
// interface boxing happens anywhere on the hot path. Steady-state
// simulations therefore run allocation-free inside the engine; the only
// allocations are the arena's one-time growth to the peak number of
// concurrently pending events. Callers that also want allocation-free
// callbacks Register an EventFunc once and schedule it by id (AtID/AfterID),
// threading two integers and a float through the arena instead of capturing
// them in a closure; the closure-based At/After remain for convenience.
//
// All durations and timestamps are in seconds of virtual time. The engine is
// not safe for concurrent use; simulations are single-goroutine by design so
// that results are deterministic.
package sim

import (
	"context"
	"fmt"
)

// Time is an instant in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// EventFunc is a pooled event callback. The two integers and the float are
// caller-chosen payload (typically a minibatch number, a stage index, and a
// duration or start time), carried through the event arena so that
// scheduling needs no per-event closure. Handlers are installed once with
// Register and scheduled by id (AtID/AfterID), which keeps the event arena
// free of per-event function pointers — the garbage collector never scans
// queue traffic.
type EventFunc func(a, b int32, x float64)

// Handle identifies a scheduled event for cancellation. The zero Handle is
// never valid. Handles are generation-checked: once the event has fired or
// been cancelled, the handle goes stale and Cancel on it reports false, even
// if the arena slot has been reused by a later event.
type Handle struct {
	slot int32
	gen  uint32
}

// slot states.
const (
	slotFree uint8 = iota
	slotQueued
	slotCancelled
)

// noFunc marks a slot with no registered-handler id (the closure path).
const noFunc int32 = -1

// slot is one arena entry. Exactly one of fn (closure path) and ef (a
// Register'd handler id, pooled path) is set while queued; fn is the only
// pointer in the arena.
type slot struct {
	at    Time
	x     float64
	fn    func()
	a, b  int32
	ef    int32
	gen   uint32
	state uint8
}

// heapEnt is one heap entry with the ordering key (at, seq) inlined, so
// sift-up and sift-down compare without touching the arena — the heap stays
// cache-resident even when the arena does not.
type heapEnt struct {
	at  Time
	seq uint64
	id  int32
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	maxStep uint64 // safety bound; 0 means unlimited

	slots []slot      // event arena; Handle.slot and heap entries index into it
	free  []int32     // free arena slots
	heap  []heapEnt   // 4-ary min-heap of queued (or cancelled) events
	live  int         // queued, non-cancelled events
	dead  int         // cancelled events still occupying heap entries
	funcs []EventFunc // Register'd handlers, indexed by slot.ef
}

// New returns an empty engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired
// (cancelled events do not count).
func (e *Engine) Pending() int { return e.live }

// SetStepLimit bounds the total number of events the engine will fire;
// Run returns an error if the limit is hit. Zero disables the limit.
func (e *Engine) SetStepLimit(n uint64) { e.maxStep = n }

// Reset returns the engine to the zero-clock empty state while keeping the
// arena and heap capacity, so a warm engine re-simulates without re-growing
// any internal storage. Outstanding Handles go stale, and Register'd
// handlers are dropped (re-register after Reset). The step limit is
// retained.
func (e *Engine) Reset() {
	for _, ent := range e.heap {
		if e.slots[ent.id].state != slotFree {
			e.freeSlot(ent.id)
		}
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.fired = 0, 0, 0
	e.live, e.dead = 0, 0
	e.funcs = e.funcs[:0]
}

// alloc takes a slot from the free list, growing the arena when empty.
//
//hetlint:hotpath
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	e.slots = append(e.slots, slot{})
	return int32(len(e.slots) - 1)
}

// freeSlot recycles an arena slot, bumping its generation so stale handles
// cannot touch the next occupant, and dropping callback references.
//
//hetlint:hotpath
func (e *Engine) freeSlot(id int32) {
	s := &e.slots[id]
	s.state = slotFree
	s.gen++
	if s.fn != nil {
		s.fn = nil
	}
	e.free = append(e.free, id)
}

// less orders heap entries by (time, sequence).
func less(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts an entry, sifting up through the 4-ary heap.
//
//hetlint:hotpath
func (e *Engine) heapPush(ent heapEnt) {
	e.heap = append(e.heap, ent)
	c := len(e.heap) - 1
	for c > 0 {
		p := (c - 1) / 4
		if !less(e.heap[c], e.heap[p]) {
			break
		}
		e.heap[c], e.heap[p] = e.heap[p], e.heap[c]
		c = p
	}
}

// heapPop removes and returns the minimum entry, sifting the displaced last
// element down through the 4-ary heap with the hole method.
//
//hetlint:hotpath
func (e *Engine) heapPop() heapEnt {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if less(e.heap[c], e.heap[min]) {
					min = c
				}
			}
			if !less(e.heap[min], last) {
				break
			}
			e.heap[i] = e.heap[min]
			i = min
		}
		e.heap[i] = last
	}
	return top
}

// Register installs a pooled event handler and returns its id for AtID and
// AfterID. Handlers are engine-lifetime (until Reset); scheduling against an
// unregistered id panics at fire time. Register once at setup — ids are
// dense from 0, in registration order.
func (e *Engine) Register(fn EventFunc) int32 {
	e.funcs = append(e.funcs, fn)
	return int32(len(e.funcs) - 1)
}

// schedule is the shared arena path behind At/AtID. The name is used only in
// the scheduled-in-the-past panic message; it is not retained.
func (e *Engine) schedule(t Time, name string, fn func(), ef int32, a, b int32, x float64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	e.seq++
	id := e.alloc()
	s := &e.slots[id]
	s.at = t
	if fn != nil {
		s.fn = fn
	}
	s.ef = ef
	s.a, s.b, s.x = a, b, x
	s.state = slotQueued
	e.heapPush(heapEnt{at: t, seq: e.seq, id: id})
	e.live++
	return Handle{slot: id, gen: s.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a bug in the simulation, never a recoverable condition.
// The name is used only for diagnostics.
func (e *Engine) At(t Time, name string, fn func()) {
	e.schedule(t, name, fn, noFunc, 0, 0, 0)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Duration, name string, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled with negative delay %v", name, d))
	}
	e.At(e.now+Time(d), name, fn)
}

// AtID schedules the Register'd handler id to fire as fn(a, b, x) at
// absolute time t without allocating: the payload rides in the event arena
// instead of a closure. It returns a cancellation handle. Scheduling in the
// past panics, as with At.
func (e *Engine) AtID(t Time, id, a, b int32, x float64) Handle {
	return e.schedule(t, "pooled", nil, id, a, b, x)
}

// AfterID schedules the Register'd handler id to fire as fn(a, b, x) d
// seconds from now without allocating. Negative d panics.
func (e *Engine) AfterID(d Duration, id, a, b int32, x float64) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: pooled event scheduled with negative delay %v", d))
	}
	return e.schedule(e.now+Time(d), "pooled", nil, id, a, b, x)
}

// Cancel revokes a scheduled event. It reports whether the handle named a
// still-pending event: a handle whose event already fired, was already
// cancelled, or whose arena slot has been recycled for a newer event is
// stale, and Cancel returns false without touching anything.
func (e *Engine) Cancel(h Handle) bool {
	if h.slot < 0 || int(h.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[h.slot]
	if s.state != slotQueued || s.gen != h.gen {
		return false
	}
	// The heap entry stays until popped (lazy deletion); bump the generation
	// now so the handle is immediately stale.
	s.state = slotCancelled
	s.gen++
	if s.fn != nil {
		s.fn = nil
	}
	e.live--
	e.dead++
	return true
}

// prune discards cancelled events at the top of the heap so the head is the
// next live event; it reports whether one exists. With no cancellations
// outstanding it is a pair of integer tests — the common case never loads a
// slot.
//
//hetlint:hotpath
func (e *Engine) prune() bool {
	for len(e.heap) > 0 {
		if e.dead == 0 {
			return true
		}
		id := e.heap[0].id
		if e.slots[id].state != slotCancelled {
			return true
		}
		e.heapPop()
		e.freeSlot(id)
		e.dead--
	}
	return false
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
//
//hetlint:hotpath
func (e *Engine) Step() bool {
	if !e.prune() {
		return false
	}
	ent := e.heapPop()
	if ent.at < e.now {
		panic("sim: clock went backwards")
	}
	s := &e.slots[ent.id]
	e.now = ent.at
	e.fired++
	e.live--
	// Free before firing so the callback can schedule into the slot; the
	// callback state is captured first.
	fn, ef, a, b, x := s.fn, s.ef, s.a, s.b, s.x
	e.freeSlot(ent.id)
	if fn != nil {
		fn()
	} else if ef >= 0 {
		e.funcs[ef](a, b, x)
	}
	return true
}

// Run fires events until the queue drains. It returns an error if the
// configured step limit is exceeded, which usually indicates a livelock in
// the modeled system.
func (e *Engine) Run() error {
	return e.RunContext(context.Background())
}

// ctxCheckInterval is how many fired events elapse between context polls in
// RunContext. Polling a Done channel costs a select per check; amortizing it
// over a batch of events keeps the hot loop tight while still bounding
// cancellation latency to a fraction of a millisecond of real time.
const ctxCheckInterval = 256

// RunContext fires events until the queue drains or ctx is cancelled,
// whichever comes first. On cancellation it stops between events (an event
// callback is never interrupted mid-flight) and returns ctx.Err(), so a
// caller can distinguish context.Canceled / context.DeadlineExceeded from
// simulation failures. The step-limit error behaves as in Run.
func (e *Engine) RunContext(ctx context.Context) error {
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
	}
	for e.Step() {
		if e.maxStep > 0 && e.fired > e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxStep, e.now)
		}
		if done != nil && e.fired%ctxCheckInterval == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
	}
	return nil
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (even if the queue still holds later events). It returns an
// error under the same step-limit condition as Run.
func (e *Engine) RunUntil(deadline Time) error {
	for e.prune() && e.heap[0].at <= deadline {
		e.Step()
		if e.maxStep > 0 && e.fired > e.maxStep {
			return fmt.Errorf("sim: step limit %d exceeded at t=%v", e.maxStep, e.now)
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
