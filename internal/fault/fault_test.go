package fault

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"slow:w0:x2",
		"slow:w1:x1.5:mb8-24",
		"crash:w2:mb40",
		"crash:w2:mb40:down2.5",
		"stall:s0:c3:0.05",
		"link:w3:x4",
		"rand:0.5:seed7",
		"slow:w0:x2,crash:w1:mb40,link:w2:x3,stall:s1:c2:0.1",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", spec, canon, err)
		}
		if got := p2.String(); got != canon {
			t.Errorf("%q: canonical form unstable: %q then %q", spec, canon, got)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ",", " , "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Errorf("Parse(%q) not empty: %v", spec, p)
		}
		if p.String() != "" {
			t.Errorf("Parse(%q).String() = %q, want empty", spec, p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"boom:w0:x2",                // unknown kind
		"slow:0:x2",                 // missing w prefix
		"slow:w0:2",                 // missing x prefix
		"slow:w0:x0.5",              // factor below 1
		"slow:w0:x2:8-24",           // missing mb prefix
		"slow:w0:x2:mb24-8",         // inverted range
		"crash:w0:mb0",              // minibatch below 1
		"crash:w0",                  // missing minibatch
		"crash:w0:mb4,crash:w0:mb9", // double crash
		"stall:s0:c0:0.1",           // clock below 1
		"stall:s0:c1:0",             // zero delay
		"stall:s0:c1",               // missing delay
		"link:w0:x0.9",              // factor below 1
		"rand:1.5",                  // rate above 1
		"rand:0.5,rand:0.2",         // two rand clauses
		"rand:0.5:max1.1",           // max factor below 1.5
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestComputeScale(t *testing.T) {
	p, err := Parse("slow:w0:x2,slow:w0:x3:mb5-10,slow:w1:x1.5:mb8-0")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		w, mb int
		want  float64
	}{
		{0, 1, 2}, {0, 4, 2}, {0, 5, 6}, {0, 10, 6}, {0, 11, 2},
		{1, 7, 1}, {1, 8, 1.5}, {1, 1000, 1.5},
		{2, 1, 1},
	}
	for _, c := range cases {
		if got := p.ComputeScale(c.w, c.mb); got != c.want {
			t.Errorf("ComputeScale(%d, %d) = %g, want %g", c.w, c.mb, got, c.want)
		}
	}
	var nilPlan *Plan
	if got := nilPlan.ComputeScale(0, 1); got != 1 {
		t.Errorf("nil plan ComputeScale = %g, want 1", got)
	}
}

func TestLinkScaleAndStallDelay(t *testing.T) {
	p, err := Parse("link:w1:x4,stall:s0:c3:0.05,stall:s1:c3:0.1,stall:s0:c5:0.2")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LinkScale(1); got != 4 {
		t.Errorf("LinkScale(1) = %g, want 4", got)
	}
	if got := p.LinkScale(0); got != 1 {
		t.Errorf("LinkScale(0) = %g, want 1", got)
	}
	if got := p.StallDelay(3); got != 0.15000000000000002 && got != 0.15 {
		t.Errorf("StallDelay(3) = %g, want 0.15", got)
	}
	if got := p.StallDelay(4); got != 0 {
		t.Errorf("StallDelay(4) = %g, want 0", got)
	}
}

func TestCrashFor(t *testing.T) {
	p, err := Parse("crash:w2:mb40")
	if err != nil {
		t.Fatal(err)
	}
	c := p.CrashFor(2)
	if c == nil || c.AtMinibatch != 40 {
		t.Fatalf("CrashFor(2) = %+v, want minibatch 40", c)
	}
	if CrashDowntime(c) != DefaultCrashDowntime {
		t.Errorf("CrashDowntime = %g, want default %g", CrashDowntime(c), DefaultCrashDowntime)
	}
	if p.CrashFor(0) != nil {
		t.Error("CrashFor(0) non-nil")
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	p, err := Parse("rand:0.5:seed7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Materialize(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Materialize(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("rand materialization not deterministic:\n%s\n%s", a, b)
	}
	if a.Rand != nil {
		t.Error("materialized plan still carries a Rand clause")
	}
	// With rate 0.5 over 8 workers, some but (almost surely) not all workers
	// straggle; the seeded draw pins the exact set, so just check bounds.
	if len(a.Slowdowns) == 0 || len(a.Slowdowns) == 8 {
		t.Errorf("rand:0.5 over 8 workers produced %d slowdowns", len(a.Slowdowns))
	}
	for _, s := range a.Slowdowns {
		if s.Factor < 1.5 || s.Factor > 3 {
			t.Errorf("rand slowdown factor %g outside [1.5, 3]", s.Factor)
		}
	}

	// A different seed produces a different population.
	q, err := Parse("rand:0.5:seed8")
	if err != nil {
		t.Fatal(err)
	}
	c, err := q.Materialize(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.String() == a.String() {
		t.Error("different seeds produced identical populations")
	}
}

func TestMaterializeRangeChecks(t *testing.T) {
	p, err := Parse("slow:w5:x2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize(4); err == nil {
		t.Error("Materialize(4) accepted worker 5")
	}
	if _, err := p.Materialize(6); err != nil {
		t.Errorf("Materialize(6): %v", err)
	}
	var nilPlan *Plan
	m, err := nilPlan.Materialize(3)
	if err != nil {
		t.Fatalf("nil plan Materialize: %v", err)
	}
	if !m.Empty() {
		t.Error("nil plan materialized non-empty")
	}
}

func TestEmptyPlanIsNoop(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan not empty")
	}
	if p.ComputeScale(3, 9) != 1 || p.LinkScale(2) != 1 || p.StallDelay(1) != 0 || p.CrashFor(0) != nil {
		t.Error("nil plan injects something")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("nil plan Validate: %v", err)
	}
	empty := &Plan{}
	if !empty.Empty() || empty.String() != "" {
		t.Error("zero plan not empty")
	}
}

func TestStringSortsClauses(t *testing.T) {
	p, err := Parse("link:w1:x2,crash:w0:mb4,slow:w2:x3")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.HasPrefix(s, "crash:") {
		t.Errorf("canonical form not sorted: %q", s)
	}
}
