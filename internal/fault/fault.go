// Package fault defines deterministic, seedable fault-injection plans for
// HetPipe runs: worker slowdowns (stragglers), worker crashes at a given
// minibatch, parameter-server shard stalls, and link degradations.
//
// A Plan is pure data. The two execution backends interpret it differently
// but deterministically: the discrete-event simulator (internal/core over
// internal/sim) applies slowdowns and crash downtime to stage timings and
// stall/link terms to the parameter-synchronization transfer times, while the
// live runtime (internal/cluster) applies timing faults as wall-clock sleeps
// and executes crashes for real — killing the worker goroutine and recovering
// it from its last checkpoint. Because WSP's numeric trajectory is
// deliberately timing-independent (see internal/train.RunWSP), a fault plan
// degrades throughput and exercises recovery without ever changing the final
// weights — the property the sim-vs-live conformance harness pins down.
//
// Plans are written either as Go literals or in a compact spec language made
// for CLI flags (see Parse):
//
//	slow:w0:x2              worker 0 runs 2x slower for the whole run
//	slow:w1:x1.5:mb8-24     worker 1 runs 1.5x slower for minibatches 8..24
//	crash:w2:mb40           worker 2 crashes when about to start minibatch 40
//	crash:w2:mb40:down2.5   ... and stays down for 2.5 (virtual) seconds
//	stall:s0:c3:0.05        shard 0 stalls the clock-3 advance by 50 ms
//	link:w3:x4              worker 3's PS push/pull transfers take 4x longer
//	rand:0.5:seed7          each worker straggles with probability 0.5
//
// Clauses are comma-separated: "slow:w0:x2,crash:w1:mb40". Randomized plans
// (the rand clause, or Plan.Rand) are expanded by Materialize with a seeded
// generator, so the same spec always yields the same concrete plan.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// DefaultCrashDowntime is the downtime charged for a Crash whose Downtime
// field is zero, in seconds.
const DefaultCrashDowntime = 1.0

// Slowdown makes one worker's compute slower by a constant factor over a
// minibatch range — the whimpy-straggler fault.
type Slowdown struct {
	// Worker is the 0-based virtual-worker index.
	Worker int
	// Factor multiplies the worker's per-stage compute times; must be >= 1.
	Factor float64
	// FromMinibatch and ToMinibatch bound the affected 1-based minibatch
	// range, inclusive. Zero FromMinibatch means 1; zero ToMinibatch means
	// the rest of the run.
	FromMinibatch, ToMinibatch int
}

// Crash kills one worker at a minibatch boundary. The crash fires when the
// worker is about to start AtMinibatch, so a push is never torn mid-fan-out.
// The simulator charges Downtime plus the checkpoint-replay time to the
// worker's timeline; the live runtime loses the worker's local state and
// recovers it from the last checkpoint.
type Crash struct {
	// Worker is the 0-based virtual-worker index.
	Worker int
	// AtMinibatch is the 1-based minibatch whose start triggers the crash.
	AtMinibatch int
	// Downtime is how long the worker is down, in seconds; 0 means
	// DefaultCrashDowntime.
	Downtime float64
}

// downtime resolves the crash downtime, applying the default.
func (c Crash) downtime() float64 {
	if c.Downtime == 0 {
		return DefaultCrashDowntime
	}
	return c.Downtime
}

// PSStall models a parameter-server shard going unresponsive around one
// global-clock advance: the advance to AtClock is delayed by Delay seconds
// (every wave AtClock-1 push answered by the stalled shard is held up, which
// holds up every D-bound pull gated on that clock).
type PSStall struct {
	// Shard is the 0-based shard-server index. It is descriptive — a label
	// for which shard the scenario blames. Because WSP's global clock is the
	// minimum across all shards, one stalled shard delays every worker
	// identically, so both backends treat the stall as cluster-wide and the
	// index does not change the outcome.
	Shard int
	// AtClock is the global-clock value whose advance the stall delays.
	AtClock int
	// Delay is the added latency in seconds; must be > 0.
	Delay float64
}

// LinkDegrade multiplies one worker's parameter-synchronization transfer
// times (push and pull) — a degraded NIC or oversubscribed link.
type LinkDegrade struct {
	// Worker is the 0-based virtual-worker index.
	Worker int
	// Factor multiplies the worker's push/pull transfer times; must be >= 1.
	Factor float64
}

// RandSpec declares a randomized straggler population: each worker
// independently straggles with probability Rate, with a slowdown factor drawn
// uniformly from [1.5, MaxFactor]. Expansion (Materialize) is a pure function
// of (Seed, worker count), so randomized plans are reproducible.
type RandSpec struct {
	// Rate is the per-worker straggler probability in [0, 1].
	Rate float64
	// Seed drives the generator; 0 means 1.
	Seed int64
	// MaxFactor bounds the drawn slowdown factor; 0 means 3.
	MaxFactor float64
}

// Plan is one deterministic fault-injection plan. The zero value (and nil)
// is the empty plan: a run under it is bit-identical to a fault-free run.
type Plan struct {
	Slowdowns []Slowdown
	Crashes   []Crash
	Stalls    []PSStall
	Links     []LinkDegrade
	// Rand, when non-nil, adds a randomized straggler population at
	// Materialize time.
	Rand *RandSpec
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.Slowdowns) == 0 && len(p.Crashes) == 0 &&
			len(p.Stalls) == 0 && len(p.Links) == 0 && p.Rand == nil)
}

// Validate checks value ranges that do not depend on the worker count.
// Materialize additionally checks worker indices against a concrete run.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, s := range p.Slowdowns {
		if s.Worker < 0 {
			return fmt.Errorf("fault: slowdown worker %d negative", s.Worker)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: slowdown factor %g must be >= 1", s.Factor)
		}
		if s.FromMinibatch < 0 || s.ToMinibatch < 0 {
			return fmt.Errorf("fault: slowdown minibatch range [%d,%d] negative", s.FromMinibatch, s.ToMinibatch)
		}
		if s.ToMinibatch != 0 && s.ToMinibatch < s.FromMinibatch {
			return fmt.Errorf("fault: slowdown minibatch range [%d,%d] inverted", s.FromMinibatch, s.ToMinibatch)
		}
	}
	seen := make(map[int]bool)
	for _, c := range p.Crashes {
		if c.Worker < 0 {
			return fmt.Errorf("fault: crash worker %d negative", c.Worker)
		}
		if c.AtMinibatch < 1 {
			return fmt.Errorf("fault: crash minibatch %d must be >= 1", c.AtMinibatch)
		}
		if c.Downtime < 0 {
			return fmt.Errorf("fault: crash downtime %g negative", c.Downtime)
		}
		if seen[c.Worker] {
			return fmt.Errorf("fault: worker %d crashes more than once", c.Worker)
		}
		seen[c.Worker] = true
	}
	for _, s := range p.Stalls {
		if s.Shard < 0 {
			return fmt.Errorf("fault: stall shard %d negative", s.Shard)
		}
		if s.AtClock < 1 {
			return fmt.Errorf("fault: stall clock %d must be >= 1", s.AtClock)
		}
		if s.Delay <= 0 {
			return fmt.Errorf("fault: stall delay %g must be > 0", s.Delay)
		}
	}
	for _, l := range p.Links {
		if l.Worker < 0 {
			return fmt.Errorf("fault: link worker %d negative", l.Worker)
		}
		if l.Factor < 1 {
			return fmt.Errorf("fault: link factor %g must be >= 1", l.Factor)
		}
	}
	if r := p.Rand; r != nil {
		if r.Rate < 0 || r.Rate > 1 {
			return fmt.Errorf("fault: rand rate %g outside [0,1]", r.Rate)
		}
		if r.MaxFactor != 0 && r.MaxFactor < 1.5 {
			return fmt.Errorf("fault: rand max factor %g must be >= 1.5", r.MaxFactor)
		}
	}
	return nil
}

// Materialize expands the plan for a concrete run of `workers` virtual
// workers: the Rand clause is expanded into per-worker slowdowns with a
// seeded generator, and every worker index is range-checked. The receiver is
// not modified; the result has a nil Rand. Materializing a nil or empty plan
// returns an empty plan.
func (p *Plan) Materialize(workers int) (*Plan, error) {
	if workers < 1 {
		return nil, fmt.Errorf("fault: need at least one worker, got %d", workers)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &Plan{}
	if p == nil {
		return out, nil
	}
	out.Slowdowns = append(out.Slowdowns, p.Slowdowns...)
	out.Crashes = append(out.Crashes, p.Crashes...)
	out.Stalls = append(out.Stalls, p.Stalls...)
	out.Links = append(out.Links, p.Links...)
	if r := p.Rand; r != nil {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		maxf := r.MaxFactor
		if maxf == 0 {
			maxf = 3
		}
		rng := rand.New(rand.NewSource(seed))
		for w := 0; w < workers; w++ {
			// Two draws per worker regardless of the straggle outcome, so a
			// worker's fate is independent of its predecessors' factors.
			hit := rng.Float64() < r.Rate
			f := 1.5 + (maxf-1.5)*rng.Float64()
			if hit {
				out.Slowdowns = append(out.Slowdowns, Slowdown{Worker: w, Factor: f})
			}
		}
	}
	for _, s := range out.Slowdowns {
		if s.Worker >= workers {
			return nil, fmt.Errorf("fault: slowdown worker %d out of range [0,%d)", s.Worker, workers)
		}
	}
	for _, c := range out.Crashes {
		if c.Worker >= workers {
			return nil, fmt.Errorf("fault: crash worker %d out of range [0,%d)", c.Worker, workers)
		}
	}
	for _, l := range out.Links {
		if l.Worker >= workers {
			return nil, fmt.Errorf("fault: link worker %d out of range [0,%d)", l.Worker, workers)
		}
	}
	return out, nil
}

// ComputeScale reports the compute-time multiplier for worker w's minibatch
// mb (1-based): the product of every slowdown covering it, 1 when none does.
func (p *Plan) ComputeScale(w, mb int) float64 {
	if p == nil {
		return 1
	}
	scale := 1.0
	for _, s := range p.Slowdowns {
		if s.Worker != w {
			continue
		}
		from := s.FromMinibatch
		if from == 0 {
			from = 1
		}
		if mb < from {
			continue
		}
		if s.ToMinibatch != 0 && mb > s.ToMinibatch {
			continue
		}
		scale *= s.Factor
	}
	return scale
}

// LinkScale reports the parameter-synchronization transfer-time multiplier
// for worker w: the product of its link degradations, 1 when none apply.
func (p *Plan) LinkScale(w int) float64 {
	if p == nil {
		return 1
	}
	scale := 1.0
	for _, l := range p.Links {
		if l.Worker == w {
			scale *= l.Factor
		}
	}
	return scale
}

// CrashFor reports worker w's crash, or nil. Validate guarantees at most one
// crash per worker.
func (p *Plan) CrashFor(w int) *Crash {
	if p == nil {
		return nil
	}
	for i := range p.Crashes {
		if p.Crashes[i].Worker == w {
			return &p.Crashes[i]
		}
	}
	return nil
}

// CrashDowntime reports the resolved downtime of a crash (applying
// DefaultCrashDowntime when the crash leaves it zero).
func CrashDowntime(c *Crash) float64 {
	if c == nil {
		return 0
	}
	return c.downtime()
}

// StallDelay reports the total delay injected before the global clock may
// advance to `clock`, summed over all shard stalls targeting it. The shard
// index does not change the delay a worker observes — the global clock is
// the minimum across shards, so the slowest shard's stall is the one that
// counts (see PSStall.Shard).
func (p *Plan) StallDelay(clock int) float64 {
	if p == nil {
		return 0
	}
	total := 0.0
	for _, s := range p.Stalls {
		if s.AtClock == clock {
			total += s.Delay
		}
	}
	return total
}

// String renders the plan in the Parse spec language, clauses in a canonical
// order. An empty plan renders as "".
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	var clauses []string
	for _, s := range p.Slowdowns {
		c := fmt.Sprintf("slow:w%d:x%s", s.Worker, ftoa(s.Factor))
		if s.FromMinibatch != 0 || s.ToMinibatch != 0 {
			from := s.FromMinibatch
			if from == 0 {
				from = 1
			}
			c += fmt.Sprintf(":mb%d-%d", from, s.ToMinibatch)
		}
		clauses = append(clauses, c)
	}
	for _, c := range p.Crashes {
		s := fmt.Sprintf("crash:w%d:mb%d", c.Worker, c.AtMinibatch)
		if c.Downtime != 0 {
			s += ":down" + ftoa(c.Downtime)
		}
		clauses = append(clauses, s)
	}
	for _, s := range p.Stalls {
		clauses = append(clauses, fmt.Sprintf("stall:s%d:c%d:%s", s.Shard, s.AtClock, ftoa(s.Delay)))
	}
	for _, l := range p.Links {
		clauses = append(clauses, fmt.Sprintf("link:w%d:x%s", l.Worker, ftoa(l.Factor)))
	}
	if r := p.Rand; r != nil {
		c := "rand:" + ftoa(r.Rate)
		if r.Seed != 0 {
			c += ":seed" + strconv.FormatInt(r.Seed, 10)
		}
		if r.MaxFactor != 0 {
			c += ":max" + ftoa(r.MaxFactor)
		}
		clauses = append(clauses, c)
	}
	sort.Strings(clauses)
	return strings.Join(clauses, ",")
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse builds a plan from the compact spec language (see the package
// comment for the grammar). An empty or all-whitespace spec yields the empty
// plan. The result is validated.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		var err error
		switch strings.ToLower(parts[0]) {
		case "slow":
			err = p.parseSlow(parts[1:])
		case "crash":
			err = p.parseCrash(parts[1:])
		case "stall":
			err = p.parseStall(parts[1:])
		case "link":
			err = p.parseLink(parts[1:])
		case "rand":
			err = p.parseRand(parts[1:])
		default:
			err = fmt.Errorf("unknown fault kind %q (want slow, crash, stall, link, or rand)", parts[0])
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) parseSlow(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("want slow:w<N>:x<factor>[:mb<from>-<to>]")
	}
	w, err := prefixedInt(args[0], "w")
	if err != nil {
		return err
	}
	f, err := prefixedFloat(args[1], "x")
	if err != nil {
		return err
	}
	s := Slowdown{Worker: w, Factor: f}
	if len(args) == 3 {
		rng, ok := strings.CutPrefix(args[2], "mb")
		if !ok {
			return fmt.Errorf("minibatch range %q must start with mb", args[2])
		}
		lo, hi, ok := strings.Cut(rng, "-")
		if !ok {
			return fmt.Errorf("minibatch range %q must be mb<from>-<to> (to may be empty or 0 for open-ended)", args[2])
		}
		if s.FromMinibatch, err = strconv.Atoi(lo); err != nil {
			return fmt.Errorf("minibatch range start %q: %w", lo, err)
		}
		if hi != "" {
			if s.ToMinibatch, err = strconv.Atoi(hi); err != nil {
				return fmt.Errorf("minibatch range end %q: %w", hi, err)
			}
		}
	}
	p.Slowdowns = append(p.Slowdowns, s)
	return nil
}

func (p *Plan) parseCrash(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("want crash:w<N>:mb<M>[:down<seconds>]")
	}
	w, err := prefixedInt(args[0], "w")
	if err != nil {
		return err
	}
	mb, err := prefixedInt(args[1], "mb")
	if err != nil {
		return err
	}
	c := Crash{Worker: w, AtMinibatch: mb}
	if len(args) == 3 {
		if c.Downtime, err = prefixedFloat(args[2], "down"); err != nil {
			return err
		}
	}
	p.Crashes = append(p.Crashes, c)
	return nil
}

func (p *Plan) parseStall(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("want stall:s<shard>:c<clock>:<seconds>")
	}
	s, err := prefixedInt(args[0], "s")
	if err != nil {
		return err
	}
	c, err := prefixedInt(args[1], "c")
	if err != nil {
		return err
	}
	d, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return fmt.Errorf("stall delay %q: %w", args[2], err)
	}
	p.Stalls = append(p.Stalls, PSStall{Shard: s, AtClock: c, Delay: d})
	return nil
}

func (p *Plan) parseLink(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("want link:w<N>:x<factor>")
	}
	w, err := prefixedInt(args[0], "w")
	if err != nil {
		return err
	}
	f, err := prefixedFloat(args[1], "x")
	if err != nil {
		return err
	}
	p.Links = append(p.Links, LinkDegrade{Worker: w, Factor: f})
	return nil
}

func (p *Plan) parseRand(args []string) error {
	if len(args) < 1 || len(args) > 3 {
		return fmt.Errorf("want rand:<rate>[:seed<N>][:max<factor>]")
	}
	if p.Rand != nil {
		return fmt.Errorf("at most one rand clause per plan")
	}
	rate, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return fmt.Errorf("rand rate %q: %w", args[0], err)
	}
	r := &RandSpec{Rate: rate}
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "seed"):
			if r.Seed, err = strconv.ParseInt(a[len("seed"):], 10, 64); err != nil {
				return fmt.Errorf("rand seed %q: %w", a, err)
			}
		case strings.HasPrefix(a, "max"):
			if r.MaxFactor, err = prefixedFloat(a, "max"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown rand argument %q (want seed<N> or max<factor>)", a)
		}
	}
	p.Rand = r
	return nil
}

func prefixedInt(s, prefix string) (int, error) {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("%q must start with %q", s, prefix)
	}
	v, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("%q: %w", s, err)
	}
	return v, nil
}

func prefixedFloat(s, prefix string) (float64, error) {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, fmt.Errorf("%q must start with %q", s, prefix)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return 0, fmt.Errorf("%q: %w", s, err)
	}
	return v, nil
}
