// Package convergence implements the Section 6 analysis machinery: the
// Theorem 1 regret bound for distributed pipeline-staleness SGD under WSP,
// and an empirical harness that runs the actual WSP update schedule on a
// convex L-Lipschitz problem and verifies the measured regret sits under the
// bound.
//
// Notation follows the paper: N virtual workers, s_l = slocal+1 (wave size),
// s_g = sglobal, constants L (bounded subgradients, Assumption 1) and M
// (bounded distances, Assumption 2), and step size eta_t = sigma/sqrt(t)
// with sigma = M / (L*sqrt((2 s_g + s_l) N)).
package convergence

import (
	"fmt"
	"math"
	"math/rand"

	"hetpipe/internal/tensor"
	"hetpipe/internal/wsp"
)

// Sigma is the Theorem 1 step-size constant.
func Sigma(m, l float64, sg, sl, n int) float64 {
	return m / (l * math.Sqrt(float64((2*sg+sl)*n)))
}

// Bound is the Theorem 1 regret bound: R[W] <= 4*M*L*sqrt((2 s_g + s_l)N/T).
func Bound(m, l float64, sg, sl, n, t int) float64 {
	return 4 * m * l * math.Sqrt(float64((2*sg+sl)*n)/float64(t))
}

// Config parameterizes an empirical regret measurement.
type Config struct {
	// Workers, SLocal, D define the WSP configuration.
	Workers, SLocal, D int
	// T is the total number of updates across workers.
	T int
	// Dim is the problem dimensionality.
	Dim  int
	Seed int64
}

// Result reports the measured regret against the theorem's bound.
type Result struct {
	// Regret is (1/T) sum_t f_t(w~_t) - f(w*).
	Regret float64
	// Bound is the Theorem 1 value computed with the measured M and L=1.
	Bound float64
	// M is the largest observed distance D(w~_t || w*).
	M float64
	// SGlobal echoes the WSP global staleness bound used.
	SGlobal int
	// T echoes the update count.
	T int
}

// problem is absolute-loss linear regression: f_t(w) = |a_t . w - b_t| with
// unit-norm a_t, so subgradients are bounded by L = 1 (Assumption 1) and the
// objective is convex but not smooth — the weakest setting the theorem
// covers.
type problem struct {
	a []tensor.Vector
	b []float64
}

func newProblem(t, dim int, seed int64) *problem {
	rng := rand.New(rand.NewSource(seed))
	truth := tensor.NewVector(dim)
	for i := range truth {
		truth[i] = rng.NormFloat64() * 0.5
	}
	p := &problem{}
	for i := 0; i < t; i++ {
		a := tensor.NewVector(dim)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		if n := a.Norm2(); n > 0 {
			a.Scale(1 / n)
		}
		p.a = append(p.a, a)
		p.b = append(p.b, a.Dot(truth)+0.05*rng.NormFloat64())
	}
	return p
}

func (p *problem) loss(t int, w tensor.Vector) float64 {
	return math.Abs(p.a[t].Dot(w) - p.b[t])
}

// grad writes the subgradient of f_t at w into out; its norm is <= 1.
func (p *problem) grad(t int, w tensor.Vector, out tensor.Vector) {
	copy(out, p.a[t])
	if p.a[t].Dot(w)-p.b[t] < 0 {
		out.Scale(-1)
	}
}

// fullLoss is f(w) = (1/T) sum_t f_t(w).
func (p *problem) fullLoss(w tensor.Vector) float64 {
	var sum float64
	for t := range p.a {
		sum += p.loss(t, w)
	}
	return sum / float64(len(p.a))
}

// minimize approximates w* by running many full subgradient passes with a
// decaying step — cheap and adequate for the small problems used here.
func (p *problem) minimize(dim int) tensor.Vector {
	w := tensor.NewVector(dim)
	g := tensor.NewVector(dim)
	sum := tensor.NewVector(dim)
	for pass := 1; pass <= 300; pass++ {
		sum.Zero()
		for t := range p.a {
			p.grad(t, w, g)
			sum.AddInPlace(g)
		}
		w.AXPY(-0.5/float64(len(p.a))/math.Sqrt(float64(pass)), sum)
	}
	return w
}

// Measure runs the WSP update schedule (pipelined local staleness, wave
// pushes, D-bounded pulls) on the convex problem with the Theorem 1 step
// sizes and reports measured regret versus the bound.
func Measure(cfg Config) (*Result, error) {
	if cfg.T < cfg.Workers || cfg.Workers < 1 {
		return nil, fmt.Errorf("convergence: need T >= workers >= 1")
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("convergence: dim must be positive")
	}
	params := wsp.Params{SLocal: cfg.SLocal, D: cfg.D, Workers: cfg.Workers}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	coord, err := wsp.NewCoordinator(params)
	if err != nil {
		return nil, err
	}
	prob := newProblem(cfg.T, cfg.Dim, cfg.Seed)
	wstar := prob.minimize(cfg.Dim)
	fstar := prob.fullLoss(wstar)

	sg := params.SGlobal()
	sl := params.WaveSize()
	const lipschitz = 1.0
	// sigma uses a provisional M; the bound is recomputed with the
	// observed M afterwards (the theorem holds for any valid M >= sup
	// distance, and sigma only scales the trajectory).
	sigma := Sigma(1.0, lipschitz, sg, sl, cfg.Workers)

	type worker struct {
		wlocal   tensor.Vector
		waveAcc  tensor.Vector
		inflight []tensor.Vector // snapshots awaiting completion
		next     int             // next local minibatch (1-based)
	}
	wglobal := tensor.NewVector(cfg.Dim)
	ws := make([]*worker, cfg.Workers)
	for i := range ws {
		ws[i] = &worker{
			wlocal:  tensor.NewVector(cfg.Dim),
			waveAcc: tensor.NewVector(cfg.Dim),
			next:    1,
		}
	}

	g := tensor.NewVector(cfg.Dim)
	var regretSum float64
	maxDist := 0.0
	t := 0 // global update counter

	// Round-robin over workers: inject (snapshot) then, once the pipeline
	// window fills, complete the oldest snapshot — exactly the local
	// staleness pattern of Section 4.
	for t < cfg.T {
		progressed := false
		for wi := 0; wi < cfg.Workers && t < cfg.T; wi++ {
			w := ws[wi]
			if !coord.CanStart(wi, w.next) {
				continue
			}
			coord.Start(wi, w.next)
			w.inflight = append(w.inflight, w.wlocal.Clone())
			mb := w.next
			w.next++
			progressed = true
			if len(w.inflight) <= params.SLocal {
				continue // pipeline still filling: no completion yet
			}
			// Complete the oldest in-flight minibatch.
			snap := w.inflight[0]
			w.inflight = w.inflight[1:]
			t++
			eta := sigma / math.Sqrt(float64(t))
			prob.grad(t-1, snap, g)
			regretSum += prob.loss(t-1, snap)
			if d := math.Sqrt(2 * snap.DistanceSquared(wstar)); d > maxDist {
				maxDist = d
			}
			w.wlocal.AXPY(-eta, g)
			w.waveAcc.AXPY(-eta, g)
			if params.IsWaveEnd(mb - params.SLocal) {
				// The completed minibatch closed its wave: push and pull.
				wglobal.AddInPlace(w.waveAcc)
				w.waveAcc.Zero()
				coord.Push(wi)
				w.wlocal = wglobal.Clone()
			}
		}
		if !progressed {
			return nil, fmt.Errorf("convergence: schedule deadlocked at t=%d", t)
		}
	}

	regret := regretSum/float64(cfg.T) - fstar
	m := maxDist
	if m < 1e-9 {
		m = 1e-9
	}
	return &Result{
		Regret:  regret,
		Bound:   Bound(m, lipschitz, sg, sl, cfg.Workers, cfg.T),
		M:       m,
		SGlobal: sg,
		T:       cfg.T,
	}, nil
}
