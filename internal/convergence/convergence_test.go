package convergence

import (
	"math"
	"testing"
)

func TestBoundFormula(t *testing.T) {
	// Hand-computed: 4*M*L*sqrt((2sg+sl)N/T).
	got := Bound(2, 3, 6, 4, 4, 1024)
	want := 4.0 * 2 * 3 * math.Sqrt(float64((2*6+4)*4)/1024.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Bound = %v, want %v", got, want)
	}
	// Bound shrinks with T and grows with staleness.
	if Bound(1, 1, 6, 4, 4, 4000) >= Bound(1, 1, 6, 4, 4, 1000) {
		t.Error("bound should shrink with T")
	}
	if Bound(1, 1, 22, 4, 4, 1000) <= Bound(1, 1, 6, 4, 4, 1000) {
		t.Error("bound should grow with staleness")
	}
}

func TestSigmaFormula(t *testing.T) {
	got := Sigma(2, 4, 6, 4, 4)
	want := 2 / (4 * math.Sqrt(float64((2*6+4)*4)))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Sigma = %v, want %v", got, want)
	}
}

func TestMeasureRegretUnderBound(t *testing.T) {
	// The headline Theorem 1 check: for several WSP configurations the
	// measured regret of the actual staleness schedule sits under the bound.
	configs := []Config{
		{Workers: 1, SLocal: 0, D: 0, T: 2000, Dim: 10, Seed: 1}, // plain SGD
		{Workers: 1, SLocal: 3, D: 0, T: 2000, Dim: 10, Seed: 2}, // pipeline staleness only
		{Workers: 4, SLocal: 3, D: 0, T: 4000, Dim: 10, Seed: 3}, // BSP-like waves
		{Workers: 4, SLocal: 3, D: 4, T: 4000, Dim: 10, Seed: 4}, // bounded global staleness
		{Workers: 2, SLocal: 6, D: 32, T: 4000, Dim: 8, Seed: 5}, // the Figure 6 extreme
	}
	for _, cfg := range configs {
		res, err := Measure(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if res.Regret > res.Bound {
			t.Errorf("config %+v: regret %.4f exceeds bound %.4f", cfg, res.Regret, res.Bound)
		}
		if res.Regret < -0.05 {
			t.Errorf("config %+v: regret %.4f is substantially negative (w* estimate broken?)", cfg, res.Regret)
		}
	}
}

func TestMeasureRegretShrinksWithT(t *testing.T) {
	short, err := Measure(Config{Workers: 2, SLocal: 2, D: 1, T: 500, Dim: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Measure(Config{Workers: 2, SLocal: 2, D: 1, T: 8000, Dim: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if long.Regret >= short.Regret {
		t.Errorf("regret did not shrink with T: %.4f (T=500) vs %.4f (T=8000)", short.Regret, long.Regret)
	}
}

func TestMeasureSGlobalEcho(t *testing.T) {
	res, err := Measure(Config{Workers: 4, SLocal: 3, D: 0, T: 400, Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SGlobal != 6 {
		t.Errorf("sglobal = %d, want 6", res.SGlobal)
	}
	if res.T != 400 {
		t.Errorf("T = %d, want 400", res.T)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure(Config{Workers: 0, T: 10, Dim: 2}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Measure(Config{Workers: 4, T: 2, Dim: 2}); err == nil {
		t.Error("T < workers accepted")
	}
	if _, err := Measure(Config{Workers: 1, T: 10, Dim: 0}); err == nil {
		t.Error("zero dim accepted")
	}
}
