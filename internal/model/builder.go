package model

import "fmt"

// builder tracks the spatial shape of the activation tensor while layers are
// appended, so convolution arithmetic stays in one place.
type builder struct {
	m       *Model
	h, w, c int   // current spatial shape
	flat    int64 // current vector width after flatten (0 while spatial)
}

func newBuilder(name string, h, w, c, classes int) *builder {
	return &builder{
		m: &Model{
			Name:       name,
			InputElems: int64(h) * int64(w) * int64(c),
			NumClasses: classes,
		},
		h: h, w: w, c: c,
	}
}

func (b *builder) outElems() int64 {
	if b.flat > 0 {
		return b.flat
	}
	return int64(b.h) * int64(b.w) * int64(b.c)
}

// conv appends a 2-D convolution (same/valid padding folded into outH/outW
// arithmetic with explicit pad). bias follows the architecture convention:
// true for VGG, false for ResNet convolutions (BN provides the shift).
func (b *builder) conv(name string, out, k, stride, pad int, bias bool) {
	if b.flat > 0 {
		panic("model: conv after flatten in " + b.m.Name)
	}
	outH := (b.h+2*pad-k)/stride + 1
	outW := (b.w+2*pad-k)/stride + 1
	params := int64(k) * int64(k) * int64(b.c) * int64(out)
	if bias {
		params += int64(out)
	}
	outElems := int64(outH) * int64(outW) * int64(out)
	// 2 FLOPs per multiply-accumulate.
	flops := 2 * float64(k*k*b.c) * float64(outElems)
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindConv,
		Params: params, FwdFLOPs: flops,
		OutputElems: outElems, StashElems: outElems,
	})
	b.h, b.w, b.c = outH, outW, out
}

// bn appends batch normalization over the current channel dimension.
func (b *builder) bn(name string) {
	elems := b.outElems()
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindBN,
		Params:      2 * int64(b.c),
		FwdFLOPs:    4 * float64(elems), // normalize, scale, shift
		OutputElems: elems, StashElems: elems,
	})
}

// relu appends a rectified-linear activation. ReLU runs in place, so it adds
// no stash of its own: its output overwrites the predecessor's buffer, which
// is already counted.
func (b *builder) relu(name string) {
	elems := b.outElems()
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindReLU,
		FwdFLOPs:    float64(elems),
		OutputElems: elems, StashElems: 0,
	})
}

// maxPool appends k x k max pooling with the given stride.
func (b *builder) maxPool(name string, k, stride int) {
	if b.flat > 0 {
		panic("model: pool after flatten in " + b.m.Name)
	}
	outH := b.h / stride
	outW := b.w / stride
	outElems := int64(outH) * int64(outW) * int64(b.c)
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindPool,
		FwdFLOPs:    float64(k*k) * float64(outElems),
		OutputElems: outElems, StashElems: outElems,
	})
	b.h, b.w = outH, outW
}

// globalAvgPool reduces the spatial dimensions to 1x1.
func (b *builder) globalAvgPool(name string) {
	elems := int64(b.c)
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindPool,
		FwdFLOPs:    float64(b.h * b.w * b.c),
		OutputElems: elems, StashElems: elems,
	})
	b.h, b.w = 1, 1
}

// flatten reshapes to a vector; free at runtime but a legal cut point.
func (b *builder) flatten(name string) {
	elems := b.outElems()
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindFlatten,
		FwdFLOPs:    0,
		OutputElems: elems, StashElems: 0,
	})
	b.flat = elems
}

// fc appends a fully connected layer with bias.
func (b *builder) fc(name string, out int) {
	in := b.outElems()
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindFC,
		Params:      in*int64(out) + int64(out),
		FwdFLOPs:    2 * float64(in) * float64(out),
		OutputElems: int64(out), StashElems: int64(out),
	})
	b.flat = int64(out)
	b.c = out
}

// softmax appends the classifier activation.
func (b *builder) softmax(name string) {
	elems := b.outElems()
	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindSoftmax,
		FwdFLOPs:    5 * float64(elems),
		OutputElems: elems, StashElems: elems,
	})
}

func (b *builder) build() *Model {
	if err := b.m.Validate(); err != nil {
		panic(fmt.Sprintf("model: builder produced invalid model: %v", err))
	}
	return b.m
}
