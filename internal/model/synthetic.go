package model

import "fmt"

// Synthetic builds a uniform n-layer chain for tests and microbenchmarks:
// every layer carries the same parameter count, FLOPs, and activation size.
// Uniform chains make optimal partitions easy to reason about in tests.
func Synthetic(name string, n int, paramsPer int64, flopsPer float64, elemsPer int64) *Model {
	m := &Model{Name: name, InputElems: elemsPer, NumClasses: 2}
	for i := 0; i < n; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:        fmt.Sprintf("l%d", i),
			Kind:        KindConv,
			Params:      paramsPer,
			FwdFLOPs:    flopsPer,
			OutputElems: elemsPer,
			StashElems:  elemsPer,
		})
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// Skewed builds an n-layer chain whose per-layer FLOPs follow the given
// weights while parameters stay uniform — useful for exercising the
// partitioner's load balancing away from trivial equal splits.
func Skewed(name string, flopsWeights []float64, paramsPer int64, elemsPer int64) *Model {
	m := &Model{Name: name, InputElems: elemsPer, NumClasses: 2}
	for i, w := range flopsWeights {
		if w < 0 {
			panic("model: negative FLOPs weight")
		}
		m.Layers = append(m.Layers, Layer{
			Name:        fmt.Sprintf("l%d", i),
			Kind:        KindConv,
			Params:      paramsPer,
			FwdFLOPs:    w,
			OutputElems: elemsPer,
			StashElems:  elemsPer,
		})
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// ByName resolves a zoo model by name: the two paper evaluation models
// (vgg19, resnet152) plus the smaller siblings (vgg16, resnet50, alexnet)
// used for scaling studies and sweeps. Canonical display names ("VGG-19")
// are accepted alongside the compact keys.
func ByName(name string) (*Model, error) {
	switch name {
	case "vgg19", "VGG-19", "vgg-19":
		return VGG19(), nil
	case "resnet152", "ResNet-152", "resnet-152":
		return ResNet152(), nil
	case "vgg16", "VGG-16", "vgg-16":
		return VGG16(), nil
	case "resnet50", "ResNet-50", "resnet-50":
		return ResNet50(), nil
	case "alexnet", "AlexNet":
		return AlexNet(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
}

// Names lists the zoo's compact model keys accepted by ByName, paper models
// first.
func Names() []string {
	return []string{"vgg19", "resnet152", "vgg16", "resnet50", "alexnet"}
}

// PaperModels returns the two evaluation models in the paper's order of
// presentation (ResNet-152, then VGG-19).
func PaperModels() []*Model {
	return []*Model{ResNet152(), VGG19()}
}
