package model

import "fmt"

// Synthetic builds a uniform n-layer chain for tests and microbenchmarks:
// every layer carries the same parameter count, FLOPs, and activation size.
// Uniform chains make optimal partitions easy to reason about in tests.
func Synthetic(name string, n int, paramsPer int64, flopsPer float64, elemsPer int64) *Model {
	m := &Model{Name: name, InputElems: elemsPer, NumClasses: 2}
	for i := 0; i < n; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:        fmt.Sprintf("l%d", i),
			Kind:        KindConv,
			Params:      paramsPer,
			FwdFLOPs:    flopsPer,
			OutputElems: elemsPer,
			StashElems:  elemsPer,
		})
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// Skewed builds an n-layer chain whose per-layer FLOPs follow the given
// weights while parameters stay uniform — useful for exercising the
// partitioner's load balancing away from trivial equal splits.
func Skewed(name string, flopsWeights []float64, paramsPer int64, elemsPer int64) *Model {
	m := &Model{Name: name, InputElems: elemsPer, NumClasses: 2}
	for i, w := range flopsWeights {
		if w < 0 {
			panic("model: negative FLOPs weight")
		}
		m.Layers = append(m.Layers, Layer{
			Name:        fmt.Sprintf("l%d", i),
			Kind:        KindConv,
			Params:      paramsPer,
			FwdFLOPs:    w,
			OutputElems: elemsPer,
			StashElems:  elemsPer,
		})
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// ByName resolves the two paper models by their canonical names.
func ByName(name string) (*Model, error) {
	switch name {
	case "vgg19", "VGG-19", "vgg-19":
		return VGG19(), nil
	case "resnet152", "ResNet-152", "resnet-152":
		return ResNet152(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (want vgg19 or resnet152)", name)
	}
}

// PaperModels returns the two evaluation models in the paper's order of
// presentation (ResNet-152, then VGG-19).
func PaperModels() []*Model {
	return []*Model{ResNet152(), VGG19()}
}
