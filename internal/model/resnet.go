package model

import "fmt"

// ResNet152 builds the ResNet-152 architecture (He et al.) for 224x224x3
// inputs and 1000 classes: a 7x7 stem, four stages of bottleneck blocks with
// depths [3, 8, 36, 3], global average pooling, and a 1000-way classifier.
//
// Each bottleneck block is aggregated into a single schedulable layer (the
// paper partitions at this granularity too — cutting inside a residual block
// would split its skip connection). Block totals include the three
// convolutions, their batch norms and ReLUs, and the projection shortcut
// where the block changes shape. The construction yields ~60.2 M trainable
// parameters (~230 MB in float32), matching the paper's quoted size.
func ResNet152() *Model {
	b := newBuilder("ResNet-152", 224, 224, 3, 1000)
	b.conv("conv1", 64, 7, 2, 3, false)
	b.bn("conv1_bn")
	b.relu("conv1_relu")
	b.maxPool("pool1", 3, 2)

	stage := func(idx, blocks, mid, out int, firstStride int) {
		for i := 0; i < blocks; i++ {
			stride := 1
			if i == 0 {
				stride = firstStride
			}
			bottleneck(b, fmt.Sprintf("res%db%d", idx, i), mid, out, stride)
		}
	}
	stage(2, 3, 64, 256, 1)
	stage(3, 8, 128, 512, 2)
	stage(4, 36, 256, 1024, 2)
	stage(5, 3, 512, 2048, 2)

	b.globalAvgPool("pool5")
	b.flatten("flatten")
	b.fc("fc1000", 1000)
	b.softmax("prob")
	return b.build()
}

// bottleneck appends one aggregated residual bottleneck block:
//
//	x -> 1x1 conv(in->mid), BN, ReLU
//	  -> 3x3 conv(mid->mid, stride s), BN, ReLU
//	  -> 1x1 conv(mid->out), BN
//	  (+ 1x1 projection conv(in->out, stride s) + BN when shape changes)
//	  -> add -> ReLU
//
// Parameters, FLOPs, and stash elements sum over all internal operations;
// the block's boundary output is its final post-ReLU activation.
func bottleneck(b *builder, name string, mid, out, stride int) {
	in := b.c
	inH, inW := b.h, b.w
	outH := (inH-1)/stride + 1
	outW := (inW-1)/stride + 1

	var params int64
	var flops float64
	var stash int64

	// 1x1 reduce at input resolution. Each conv+BN pair stashes two buffers
	// (the conv output feeding BN's backward, and the post-BN/post-ReLU
	// output feeding the next operator); ReLU runs in place.
	c1Out := int64(inH) * int64(inW) * int64(mid)
	params += int64(in) * int64(mid)
	flops += 2 * float64(in) * float64(c1Out)
	stash += 2 * c1Out
	params += 2 * int64(mid)
	flops += 5 * float64(c1Out) // BN (4x) + ReLU (1x)

	// 3x3 at output resolution (stride applies here, standard ResNet v1.5
	// placement used by the reference implementations).
	c2Out := int64(outH) * int64(outW) * int64(mid)
	params += 9 * int64(mid) * int64(mid)
	flops += 2 * 9 * float64(mid) * float64(c2Out)
	stash += 2 * c2Out
	params += 2 * int64(mid)
	flops += 5 * float64(c2Out)

	// 1x1 expand.
	c3Out := int64(outH) * int64(outW) * int64(out)
	params += int64(mid) * int64(out)
	flops += 2 * float64(mid) * float64(c3Out)
	stash += 2 * c3Out // conv + BN outputs
	params += 2 * int64(out)
	flops += 4 * float64(c3Out)

	// Projection shortcut when the block changes shape.
	if in != out || stride != 1 {
		params += int64(in) * int64(out)
		flops += 2 * float64(in) * float64(c3Out)
		stash += 2 * c3Out
		params += 2 * int64(out)
		flops += 4 * float64(c3Out)
	}

	// Residual add and final ReLU.
	flops += 2 * float64(c3Out)
	stash += c3Out // post-ReLU block output

	b.m.Layers = append(b.m.Layers, Layer{
		Name: name, Kind: KindBlock,
		Params: params, FwdFLOPs: flops,
		OutputElems: c3Out, StashElems: stash,
	})
	b.h, b.w, b.c = outH, outW, out
}
