package model

import (
	"math"
	"testing"
)

func TestVGG19ParamCount(t *testing.T) {
	m := VGG19()
	// Published exact count for VGG-19 with biases: 143,667,240.
	const want = 143667240
	if got := m.TotalParams(); got != want {
		t.Errorf("VGG-19 params = %d, want %d", got, want)
	}
	// The paper quotes 548 MB for the parameter set.
	mb := float64(m.ParamBytes()) / 1e6
	if mb < 540 || mb > 580 {
		t.Errorf("VGG-19 param bytes = %.1f MB, want ~548 MB", mb)
	}
}

func TestResNet152ParamCount(t *testing.T) {
	m := ResNet152()
	// Published count (torchvision): 60,192,808. Allow 1% for accounting
	// differences in batch-norm bookkeeping.
	const want = 60192808
	got := m.TotalParams()
	if math.Abs(float64(got-want))/float64(want) > 0.01 {
		t.Errorf("ResNet-152 params = %d, want ~%d", got, want)
	}
	// The paper quotes 230 MB for the parameter set.
	mb := float64(m.ParamBytes()) / 1e6
	if mb < 225 || mb > 245 {
		t.Errorf("ResNet-152 param bytes = %.1f MB, want ~230 MB", mb)
	}
}

func TestVGG19Structure(t *testing.T) {
	m := VGG19()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	convs, fcs := 0, 0
	for _, l := range m.Layers {
		switch l.Kind {
		case KindConv:
			convs++
		case KindFC:
			fcs++
		}
	}
	if convs != 16 {
		t.Errorf("VGG-19 convs = %d, want 16", convs)
	}
	if fcs != 3 {
		t.Errorf("VGG-19 FCs = %d, want 3", fcs)
	}
	// fc6 dominates the parameter count: 25088*4096 + 4096.
	var fc6 *Layer
	for i := range m.Layers {
		if m.Layers[i].Name == "fc6" {
			fc6 = &m.Layers[i]
		}
	}
	if fc6 == nil {
		t.Fatal("fc6 missing")
	}
	if want := int64(25088*4096 + 4096); fc6.Params != want {
		t.Errorf("fc6 params = %d, want %d", fc6.Params, want)
	}
}

func TestResNet152Structure(t *testing.T) {
	m := ResNet152()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for _, l := range m.Layers {
		if l.Kind == KindBlock {
			blocks++
		}
	}
	if want := 3 + 8 + 36 + 3; blocks != want {
		t.Errorf("ResNet-152 blocks = %d, want %d", blocks, want)
	}
	// Final boundary before the classifier head collapses to 2048 channels.
	last := m.Layers[len(m.Layers)-1]
	if last.Kind != KindSoftmax || last.OutputElems != 1000 {
		t.Errorf("final layer = %v/%d, want softmax/1000", last.Kind, last.OutputElems)
	}
}

func TestBoundaryElems(t *testing.T) {
	m := VGG19()
	if got := m.BoundaryElems(-1); got != 224*224*3 {
		t.Errorf("input boundary = %d, want %d", got, 224*224*3)
	}
	// First conv emits 224x224x64.
	if got := m.BoundaryElems(0); got != 224*224*64 {
		t.Errorf("conv1_1 boundary = %d, want %d", got, 224*224*64)
	}
	if got := m.BoundaryBytes(0, 32); got != 224*224*64*4*32 {
		t.Errorf("conv1_1 boundary bytes = %d", got)
	}
}

// The memory model must reproduce the paper's feasibility facts:
// ResNet-152 training at batch 32 does not fit a 6 GB RTX 2060 but fits an
// 8 GB Quadro P4000 (Horovod ran it on 12 GPUs, excluding the G node);
// VGG-19 fits all 16 GPUs including the 6 GB parts.
func TestTrainingFootprintMatchesPaperFeasibility(t *testing.T) {
	const gib = int64(1) << 30
	const batch = 32
	resnet := ResNet152().TrainingFootprintBytes(batch)
	if resnet <= 6*gib {
		t.Errorf("ResNet-152 footprint %.2f GiB should exceed 6 GiB", float64(resnet)/float64(gib))
	}
	if resnet > 8*gib {
		t.Errorf("ResNet-152 footprint %.2f GiB should fit in 8 GiB", float64(resnet)/float64(gib))
	}
	vgg := VGG19().TrainingFootprintBytes(batch)
	if vgg > 6*gib {
		t.Errorf("VGG-19 footprint %.2f GiB should fit in 6 GiB", float64(vgg)/float64(gib))
	}
}

func TestFLOPsOrdersOfMagnitude(t *testing.T) {
	// Published per-sample forward costs: VGG-19 ~19.6 GMACs, ResNet-152
	// ~11.5 GMACs; at 2 FLOPs per multiply-add that is ~39.2 and ~23.1
	// GFLOPs. Our counts add small BN/ReLU/pool overheads.
	vgg := VGG19().TotalFwdFLOPs() / 1e9
	if vgg < 38 || vgg > 42 {
		t.Errorf("VGG-19 fwd GFLOPs = %.1f, want ~39.2", vgg)
	}
	rn := ResNet152().TotalFwdFLOPs() / 1e9
	if rn < 22 || rn > 26 {
		t.Errorf("ResNet-152 fwd GFLOPs = %.1f, want ~23.1", rn)
	}
}

func TestSyntheticUniform(t *testing.T) {
	m := Synthetic("t", 8, 10, 100, 5)
	if len(m.Layers) != 8 {
		t.Fatalf("layers = %d, want 8", len(m.Layers))
	}
	if m.TotalParams() != 80 {
		t.Errorf("params = %d, want 80", m.TotalParams())
	}
	if m.TotalFwdFLOPs() != 800 {
		t.Errorf("flops = %v, want 800", m.TotalFwdFLOPs())
	}
}

func TestSkewed(t *testing.T) {
	m := Skewed("s", []float64{1, 2, 3}, 4, 5)
	if m.TotalFwdFLOPs() != 6 {
		t.Errorf("flops = %v, want 6", m.TotalFwdFLOPs())
	}
	if m.Layers[2].FwdFLOPs != 3 {
		t.Errorf("layer 2 flops = %v, want 3", m.Layers[2].FwdFLOPs)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("lenet"); err == nil {
		t.Error("ByName(lenet) should fail")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := &Model{Name: "x", InputElems: 1, Layers: []Layer{
		{Name: "a", OutputElems: 1},
		{Name: "a", OutputElems: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate layer names should fail validation")
	}
	empty := &Model{Name: "x", InputElems: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty model should fail validation")
	}
}
