package model

import "fmt"

// VGG16 builds VGG configuration D (thirteen 3x3 convolutions): the smaller
// sibling of the paper's VGG-19, useful for scaling studies and tests.
func VGG16() *Model {
	b := newBuilder("VGG-16", 224, 224, 3, 1000)
	group := func(stage, n, channels int) {
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("conv%d_%d", stage, i)
			b.conv(name, channels, 3, 1, 1, true)
			b.relu(name + "_relu")
		}
		b.maxPool(fmt.Sprintf("pool%d", stage), 2, 2)
	}
	group(1, 2, 64)
	group(2, 2, 128)
	group(3, 3, 256)
	group(4, 3, 512)
	group(5, 3, 512)
	b.flatten("flatten")
	b.fc("fc6", 4096)
	b.relu("fc6_relu")
	b.fc("fc7", 4096)
	b.relu("fc7_relu")
	b.fc("fc8", 1000)
	b.softmax("prob")
	return b.build()
}

// ResNet50 builds ResNet-50 (bottleneck depths [3,4,6,3]): the standard
// smaller residual model, ~25.6 M parameters.
func ResNet50() *Model {
	b := newBuilder("ResNet-50", 224, 224, 3, 1000)
	b.conv("conv1", 64, 7, 2, 3, false)
	b.bn("conv1_bn")
	b.relu("conv1_relu")
	b.maxPool("pool1", 3, 2)
	stage := func(idx, blocks, mid, out, firstStride int) {
		for i := 0; i < blocks; i++ {
			stride := 1
			if i == 0 {
				stride = firstStride
			}
			bottleneck(b, fmt.Sprintf("res%db%d", idx, i), mid, out, stride)
		}
	}
	stage(2, 3, 64, 256, 1)
	stage(3, 4, 128, 512, 2)
	stage(4, 6, 256, 1024, 2)
	stage(5, 3, 512, 2048, 2)
	b.globalAvgPool("pool5")
	b.flatten("flatten")
	b.fc("fc1000", 1000)
	b.softmax("prob")
	return b.build()
}

// AlexNet builds the eight-layer AlexNet (single-tower variant): the
// smallest realistic CNN in the zoo, handy for fast pipeline tests.
func AlexNet() *Model {
	b := newBuilder("AlexNet", 224, 224, 3, 1000)
	b.conv("conv1", 64, 11, 4, 2, true)
	b.relu("conv1_relu")
	b.maxPool("pool1", 3, 2)
	b.conv("conv2", 192, 5, 1, 2, true)
	b.relu("conv2_relu")
	b.maxPool("pool2", 3, 2)
	b.conv("conv3", 384, 3, 1, 1, true)
	b.relu("conv3_relu")
	b.conv("conv4", 256, 3, 1, 1, true)
	b.relu("conv4_relu")
	b.conv("conv5", 256, 3, 1, 1, true)
	b.relu("conv5_relu")
	b.maxPool("pool5", 3, 2)
	b.flatten("flatten")
	b.fc("fc6", 4096)
	b.relu("fc6_relu")
	b.fc("fc7", 4096)
	b.relu("fc7_relu")
	b.fc("fc8", 1000)
	b.softmax("prob")
	return b.build()
}
