// Package model describes DNN models as linear graphs of layers annotated
// with the quantities HetPipe's partitioner, pipeline scheduler, and
// communication model need: trainable parameter counts, forward FLOPs,
// boundary activation sizes, and backward-pass stash sizes.
//
// The package ships full analytic definitions of the two evaluation models of
// the paper — VGG-19 (Simonyan & Zisserman, ~143.7 M parameters ≈ 548 MB) and
// ResNet-152 (He et al., ~60.2 M parameters ≈ 230 MB) — built layer by layer
// from the published architectures, plus small synthetic models for tests.
//
// Conventions: all per-layer quantities are per *sample*; batch scaling
// happens at the call sites that know the minibatch size. Activations and
// weights are float32 (4 bytes), matching the paper's TensorFlow setup.
package model

import "fmt"

// BytesPerElem is the width of weights and activations (float32).
const BytesPerElem = 4

// Kind classifies a layer for reporting and cost modeling.
type Kind int

const (
	// KindConv is a 2-D convolution (possibly with bias).
	KindConv Kind = iota
	// KindBN is batch normalization.
	KindBN
	// KindReLU is a rectified-linear activation.
	KindReLU
	// KindPool is max or average pooling.
	KindPool
	// KindFC is a fully connected layer.
	KindFC
	// KindFlatten reshapes spatial activations into a vector.
	KindFlatten
	// KindSoftmax is the final classifier activation.
	KindSoftmax
	// KindBlock is an aggregated residual bottleneck block (its internal
	// convolutions, batch norms, ReLUs, and any projection shortcut are
	// summed into the block's totals).
	KindBlock
)

func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindBN:
		return "bn"
	case KindReLU:
		return "relu"
	case KindPool:
		return "pool"
	case KindFC:
		return "fc"
	case KindFlatten:
		return "flatten"
	case KindSoftmax:
		return "softmax"
	case KindBlock:
		return "block"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer is one schedulable unit of a model.
type Layer struct {
	// Name is unique within the model, e.g. "conv3_4" or "res4b17".
	Name string
	// Kind classifies the layer.
	Kind Kind
	// Params is the number of trainable parameters.
	Params int64
	// FwdFLOPs is the forward-pass floating-point operation count per sample.
	FwdFLOPs float64
	// OutputElems is the number of activation elements the layer emits per
	// sample. A partition cut after this layer transfers OutputElems
	// activations forward and the same number of gradients backward.
	OutputElems int64
	// StashElems is the number of activation elements that must stay
	// resident in GPU memory from the layer's forward pass until its
	// backward pass. For simple layers this equals OutputElems; for
	// aggregated blocks it includes every internal activation.
	StashElems int64
}

// WeightBytes is the parameter footprint in bytes.
func (l *Layer) WeightBytes() int64 { return l.Params * BytesPerElem }

// Model is a linear chain of layers. Residual models are linearized at
// bottleneck-block granularity, so every adjacent pair is a legal partition
// boundary and boundary traffic is exactly the predecessor's output.
type Model struct {
	// Name identifies the model, e.g. "VGG-19".
	Name string
	// InputElems is the per-sample input size (e.g. 224*224*3).
	InputElems int64
	// NumClasses is the classifier output width.
	NumClasses int
	// Layers is the chain in forward order.
	Layers []Layer
}

// TotalParams sums trainable parameters over all layers.
func (m *Model) TotalParams() int64 {
	var n int64
	for i := range m.Layers {
		n += m.Layers[i].Params
	}
	return n
}

// ParamBytes is the full parameter footprint in bytes (float32).
func (m *Model) ParamBytes() int64 { return m.TotalParams() * BytesPerElem }

// TotalFwdFLOPs sums per-sample forward FLOPs over all layers.
func (m *Model) TotalFwdFLOPs() float64 {
	var f float64
	for i := range m.Layers {
		f += m.Layers[i].FwdFLOPs
	}
	return f
}

// StashBytesPerSample is the per-sample activation memory needed to keep
// every layer's forward results resident for the backward pass.
func (m *Model) StashBytesPerSample() int64 {
	var n int64
	for i := range m.Layers {
		n += m.Layers[i].StashElems
	}
	return n * BytesPerElem
}

// BoundaryElems reports the activation elements crossing a cut placed after
// layer index i (0-based). Cutting before the first layer (i == -1) crosses
// the raw input.
func (m *Model) BoundaryElems(i int) int64 {
	if i < 0 {
		return m.InputElems
	}
	return m.Layers[i].OutputElems
}

// BoundaryBytes is BoundaryElems scaled to bytes for a whole minibatch.
func (m *Model) BoundaryBytes(i, batch int) int64 {
	return m.BoundaryElems(i) * BytesPerElem * int64(batch)
}

// TrainingFootprintBytes estimates the memory one GPU needs to train the
// whole model with the given batch size: weights + gradient buffer +
// a full activation stash for one in-flight minibatch. This is the quantity
// that decides whether a standalone DP worker can host the model at all
// (the paper's "too big to be loaded in four whimpy GPUs" condition for
// ResNet-152 on 6 GB devices).
func (m *Model) TrainingFootprintBytes(batch int) int64 {
	return 2*m.ParamBytes() + m.StashBytesPerSample()*int64(batch)
}

// Validate checks internal consistency of the chain.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("model: empty name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("model %s: no layers", m.Name)
	}
	if m.InputElems <= 0 {
		return fmt.Errorf("model %s: non-positive input size", m.Name)
	}
	seen := make(map[string]bool, len(m.Layers))
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Name == "" {
			return fmt.Errorf("model %s: layer %d has no name", m.Name, i)
		}
		if seen[l.Name] {
			return fmt.Errorf("model %s: duplicate layer name %q", m.Name, l.Name)
		}
		seen[l.Name] = true
		if l.Params < 0 || l.FwdFLOPs < 0 || l.OutputElems <= 0 || l.StashElems < 0 {
			return fmt.Errorf("model %s: layer %q has invalid quantities", m.Name, l.Name)
		}
	}
	return nil
}
