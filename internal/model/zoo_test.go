package model

import (
	"math"
	"testing"
)

func TestVGG16Params(t *testing.T) {
	m := VGG16()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published exact count with biases: 138,357,544.
	const want = 138357544
	if got := m.TotalParams(); got != want {
		t.Errorf("VGG-16 params = %d, want %d", got, want)
	}
}

func TestResNet50Params(t *testing.T) {
	m := ResNet50()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Published (torchvision): 25,557,032. Allow 1% for BN bookkeeping.
	const want = 25557032
	got := m.TotalParams()
	if math.Abs(float64(got-want))/float64(want) > 0.01 {
		t.Errorf("ResNet-50 params = %d, want ~%d", got, want)
	}
}

func TestAlexNetShape(t *testing.T) {
	m := AlexNet()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// AlexNet has ~61 M parameters, dominated by fc6.
	got := m.TotalParams()
	if got < 55e6 || got > 65e6 {
		t.Errorf("AlexNet params = %d, want ~61M", got)
	}
	convs := 0
	for _, l := range m.Layers {
		if l.Kind == KindConv {
			convs++
		}
	}
	if convs != 5 {
		t.Errorf("AlexNet convs = %d, want 5", convs)
	}
}

func TestZooOrdering(t *testing.T) {
	// Parameter-count sanity across the zoo.
	r50 := ResNet50().TotalParams()
	r152 := ResNet152().TotalParams()
	v16 := VGG16().TotalParams()
	v19 := VGG19().TotalParams()
	if r50 >= r152 {
		t.Error("ResNet-50 should be smaller than ResNet-152")
	}
	if v16 >= v19 {
		t.Error("VGG-16 should be smaller than VGG-19")
	}
	if r152 >= v16 {
		t.Error("ResNet-152 should be smaller than VGG-16 (FC layers dominate)")
	}
}
