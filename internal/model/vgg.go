package model

import "fmt"

// VGG19 builds the VGG-19 architecture (configuration E of Simonyan &
// Zisserman) for 224x224x3 inputs and 1000 classes: sixteen 3x3
// convolutions in five groups separated by 2x2 max pooling, then three fully
// connected layers. Every convolution and the first two FC layers are
// followed by ReLU.
//
// The construction yields exactly 143,667,240 trainable parameters
// (~548 MB in float32), matching the parameter-set size the paper quotes for
// VGG-19 — the size that makes its parameter synchronization expensive.
func VGG19() *Model {
	b := newBuilder("VGG-19", 224, 224, 3, 1000)
	group := func(stage, n, channels int) {
		for i := 1; i <= n; i++ {
			name := fmt.Sprintf("conv%d_%d", stage, i)
			b.conv(name, channels, 3, 1, 1, true)
			b.relu(name + "_relu")
		}
		b.maxPool(fmt.Sprintf("pool%d", stage), 2, 2)
	}
	group(1, 2, 64)
	group(2, 2, 128)
	group(3, 4, 256)
	group(4, 4, 512)
	group(5, 4, 512)
	b.flatten("flatten")
	b.fc("fc6", 4096)
	b.relu("fc6_relu")
	b.fc("fc7", 4096)
	b.relu("fc7_relu")
	b.fc("fc8", 1000)
	b.softmax("prob")
	return b.build()
}
