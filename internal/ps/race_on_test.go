//go:build race

package ps

const raceEnabled = true
